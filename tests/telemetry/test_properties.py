"""Hypothesis properties of the telemetry subsystem.

* spans strictly nest (any two spans on a track are disjoint or
  contained, never partially overlapping);
* a span's children's durations sum to at most its own, and its self
  time is exactly duration minus direct-children time;
* the JSONL exporter round-trips event streams losslessly;
* cross-process merging is independent of worker arrival order.
"""

import io
import random

from hypothesis import given, settings, strategies as st

from repro.telemetry.bus import TelemetryBus
from repro.telemetry.export import read_jsonl, write_jsonl
from repro.telemetry.merge import merge_runs

# A recording script: each step either opens a span, closes one, or
# emits an instant, always advancing the fake clock by ``dt``.
_steps = st.lists(
    st.tuples(st.sampled_from(["begin", "end", "instant"]),
              st.sampled_from(["a", "b", "c", "gc", "jit"]),
              st.integers(1, 50)),
    max_size=60)


def record_script(steps, pid=0):
    clock = [0.0]
    bus = TelemetryBus(clock=lambda: clock[0], pid=pid,
                       process_name="script-%d" % pid)
    for action, name, dt in steps:
        clock[0] += dt
        if action == "begin":
            bus.begin(name, "cat")
        elif action == "end":
            bus.end()
        else:
            bus.instant(name)
        bus.count("steps")
    clock[0] += 1
    bus.finish()
    return bus.events()


def spans_of(events):
    return [e for e in events if e["type"] == "span"]


@given(_steps)
@settings(max_examples=150, deadline=None)
def test_spans_strictly_nest(steps):
    spans = spans_of(record_script(steps))
    for i, a in enumerate(spans):
        for b in spans[i + 1:]:
            a0, a1 = a["ts"], a["ts"] + a["dur"]
            b0, b1 = b["ts"], b["ts"] + b["dur"]
            disjoint = a1 <= b0 or b1 <= a0
            a_in_b = b0 <= a0 and a1 <= b1
            b_in_a = a0 <= b0 and b1 <= a1
            assert disjoint or a_in_b or b_in_a, (a, b)


@given(_steps)
@settings(max_examples=150, deadline=None)
def test_child_self_times_sum_within_parent(steps):
    spans = spans_of(record_script(steps))
    for parent in spans:
        p0, p1 = parent["ts"], parent["ts"] + parent["dur"]
        children = [s for s in spans
                    if s["depth"] == parent["depth"] + 1
                    and p0 <= s["ts"] and s["ts"] + s["dur"] <= p1]
        child_time = sum(c["dur"] for c in children)
        assert child_time <= parent["dur"] + 1e-9
        assert abs(parent["self"] - (parent["dur"] - child_time)) < 1e-9
        assert parent["self"] >= -1e-9


@given(_steps)
@settings(max_examples=100, deadline=None)
def test_jsonl_round_trip_is_lossless(steps):
    events = record_script(steps)
    buffer = io.StringIO()
    write_jsonl(buffer, events)
    buffer.seek(0)
    assert read_jsonl(buffer) == events


@given(st.lists(_steps, min_size=1, max_size=4), st.randoms())
@settings(max_examples=50, deadline=None)
def test_merge_is_order_independent(scripts, rng):
    event_lists = [record_script(steps, pid=i)
                   for i, steps in enumerate(scripts)]
    labels = ["run-%d" % i for i in range(len(event_lists))]
    reference = merge_runs(event_lists, labels=labels)
    shuffled = list(zip(labels, event_lists))
    rng.shuffle(shuffled)
    merged = merge_runs([events for _, events in shuffled],
                        labels=[label for label, _ in shuffled])
    assert merged == reference


def test_merge_reassigns_pids_deterministically():
    lists = [record_script([("begin", "a", 1), ("end", "a", 2)], pid=9),
             record_script([("begin", "b", 1), ("end", "b", 2)], pid=9)]
    merged = merge_runs(lists, labels=["zzz", "aaa"])
    metas = [e for e in merged if e["type"] == "meta"]
    assert [m["process_name"] for m in metas] == ["aaa", "zzz"]
    assert [m["pid"] for m in metas] == [1, 2]
