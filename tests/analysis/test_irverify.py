"""Seeded-mutation tests for the IR trace verifier.

Each test takes a *real* compiled trace (or a hand-built minimal one),
applies one targeted corruption, and asserts the verifier reports the
expected error code — so every rule is proven to catch the class of bug
it was written for, not just to pass on clean input.
"""

import pytest

from repro.analysis import (
    verify_backend,
    verify_compilation,
    verify_recorded,
    verify_trace,
)
from repro.core.config import SystemConfig
from repro.core.errors import VerificationError
from repro.difftest.oracle import run_interp
from repro.interp.aot import AotFunction
from repro.interp.objects import W_Root
from repro.jit import ir
from repro.jit.resume import FrameState, Snapshot, VirtualSpec
from repro.jit.trace import LOOP, InputArg, Trace

LOOP_SRC = """
def work(n):
    i = 0
    acc = 0
    while i < n:
        acc = acc + i
        i = i + 1
    return acc
print(work(60))
"""


class W_Box(W_Root):
    _size_ = 16


def compiled_loop():
    """A freshly compiled loop trace plus its jit config (each test
    mutates its own copy of the registry)."""
    run = run_interp(LOOP_SRC, jit=True, threshold=7)
    assert run.error is None
    traces = [t for t in run.ctx.registry.traces
              if t.kind == LOOP and t.label_index >= 0]
    assert traces, "expected a compiled loop trace"
    return traces[0], run.ctx.config.jit


def rogue_op():
    """An IROp that is never part of any stream (always undefined)."""
    return ir.IROp(ir.INT_ADD, [ir.Const(1), ir.Const(2)])


def body_ops(trace):
    """(index, op) pairs strictly between the label and the back jump."""
    return [(i, op) for i, op in enumerate(trace.ops)
            if trace.label_index < i < len(trace.ops) - 1]


def find_body(trace, pred):
    for i, op in body_ops(trace):
        if pred(op):
            return i, op
    raise AssertionError("no body op matches")


def empty_snapshot():
    return Snapshot((FrameState("code", 0, (), ()),))


def make_call(effects="any"):
    func = AotFunction("test.clobber", "I", effects, lambda ctx: None)
    return ir.IROp(ir.CALL, [], ir.CallDescr(func))


# -- clean baselines ----------------------------------------------------------


def test_compiled_trace_is_clean():
    trace, cfg = compiled_loop()
    report = verify_trace(trace, cfg=cfg)
    report.extend(verify_backend(trace))
    assert not report.findings, [f.render() for f in report.findings]


# -- IR1xx: def-before-use and stream shape -----------------------------------


def test_ir101_use_before_definition():
    trace, cfg = compiled_loop()
    _, op = find_body(trace, lambda op: any(
        isinstance(a, (ir.IROp, InputArg)) for a in op.args))
    args = list(op.args)
    for j, arg in enumerate(args):
        if isinstance(arg, (ir.IROp, InputArg)):
            args[j] = rogue_op()
            break
    op.args = args
    assert verify_trace(trace, cfg=cfg).has("IR101")


def test_ir102_non_ir_operand():
    trace, cfg = compiled_loop()
    _, op = find_body(trace, lambda op: op.args)
    args = list(op.args)
    args[0] = 42
    op.args = args
    assert verify_trace(trace, cfg=cfg).has("IR102")


def test_ir103_ssa_result_reused():
    trace, cfg = compiled_loop()
    i, op = find_body(trace, lambda op: op.opnum not in (ir.LABEL,
                                                         ir.JUMP))
    trace.ops.insert(i + 1, op)
    assert verify_trace(trace, cfg=cfg).has("IR103")


# -- IR2xx: per-opnum specs ---------------------------------------------------


def test_ir201_wrong_arity():
    trace, cfg = compiled_loop()
    _, op = find_body(trace, lambda op: op.category == ir.CAT_INT
                      and len(op.args) == 2)
    op.args = list(op.args)[:1]
    assert verify_trace(trace, cfg=cfg).has("IR201")


def test_ir202_wrong_const_kind():
    trace, cfg = compiled_loop()
    _, op = find_body(trace, lambda op: op.category == ir.CAT_INT
                      and len(op.args) == 2)
    args = list(op.args)
    args[0] = ir.Const("not an int")
    op.args = args
    assert verify_trace(trace, cfg=cfg).has("IR202")


def test_ir203_wrong_descr_kind():
    trace, cfg = compiled_loop()
    _, guard = find_body(trace, lambda op: op.is_guard())
    guard.descr = 42  # guards carry no descr
    assert verify_trace(trace, cfg=cfg).has("IR203")


def test_ir204_opnum_out_of_range():
    trace, cfg = compiled_loop()
    _, op = find_body(trace, lambda op: op.opnum not in (ir.LABEL,
                                                         ir.JUMP))
    op.opnum = 999
    assert verify_trace(trace, cfg=cfg).has("IR204")


# -- IR3xx: resume snapshots --------------------------------------------------


def test_ir301_guard_without_snapshot():
    trace, cfg = compiled_loop()
    _, guard = find_body(trace, lambda op: op.is_guard())
    guard.snapshot = None
    assert verify_trace(trace, cfg=cfg).has("IR301")


def test_ir302_snapshot_value_not_dominating():
    trace, cfg = compiled_loop()
    _, guard = find_body(trace, lambda op: op.is_guard()
                         and op.snapshot is not None)
    assert any(True for _ in guard.snapshot.iter_values())
    undefined = rogue_op()
    guard.snapshot = guard.snapshot.map_values(lambda v: undefined)
    assert verify_trace(trace, cfg=cfg).has("IR302")


def test_ir303_virtualspec_field_not_rematerializable():
    trace, cfg = compiled_loop()
    _, guard = find_body(trace, lambda op: op.is_guard())
    descr = ir.FieldDescr.get(W_Box, "val")
    spec = VirtualSpec(W_Box, {descr: rogue_op()}, 16)
    guard.snapshot = Snapshot((FrameState("code", 0, (spec,), ()),))
    assert verify_trace(trace, cfg=cfg).has("IR303")


# -- IR4xx: loop/label/jump wiring --------------------------------------------


def test_ir401_jump_arity_mismatch():
    trace, cfg = compiled_loop()
    back = trace.ops[-1]
    assert back.opnum == ir.JUMP
    back.args = list(back.args) + [ir.Const(0)]
    assert verify_trace(trace, cfg=cfg).has("IR401")


def test_ir402_label_index_points_elsewhere():
    trace, cfg = compiled_loop()
    trace.label_index += 1  # now a non-LABEL op
    assert verify_trace(trace, cfg=cfg).has("IR402")


def test_ir403_loop_jump_targets_nothing():
    trace, cfg = compiled_loop()
    trace.ops[-1].descr = None
    assert verify_trace(trace, cfg=cfg).has("IR403")


def test_ir404_ops_after_final_jump():
    trace, cfg = compiled_loop()
    trace.ops.append(ir.IROp(ir.SAME_AS, [ir.Const(0)]))
    assert verify_trace(trace, cfg=cfg).has("IR404")


def test_ir404_control_op_in_recorded_stream():
    report = verify_recorded([ir.IROp(ir.JUMP, [])], [])
    assert report.has("IR404")


def test_ir405_entry_layout_disagrees():
    trace, cfg = compiled_loop()
    trace.entry_layout = [("code", 0, len(trace.inputargs) + 1, 0)]
    assert verify_trace(trace, cfg=cfg).has("IR405")


# -- IR5xx: effect discipline -------------------------------------------------


def test_ir501_guard_after_unsafe_call():
    dmp = ir.IROp(ir.DEBUG_MERGE_POINT, [])
    dmp.snapshot = empty_snapshot()
    call = make_call("any")
    guard = ir.IROp(ir.GUARD_TRUE, [call])
    guard.snapshot = empty_snapshot()
    report = verify_recorded([dmp, call, guard], [])
    assert report.has("IR501")


def test_ir501_merge_point_resets_hazard():
    dmp1 = ir.IROp(ir.DEBUG_MERGE_POINT, [])
    dmp1.snapshot = empty_snapshot()
    call = make_call("any")
    dmp2 = ir.IROp(ir.DEBUG_MERGE_POINT, [])
    dmp2.snapshot = empty_snapshot()
    guard = ir.IROp(ir.GUARD_TRUE, [call])
    guard.snapshot = empty_snapshot()
    report = verify_recorded([dmp1, call, dmp2, guard], [])
    assert not report.has("IR501")
    assert not report.errors


def _hazard_bridge(bridge_ops):
    """A recorded stream whose hazardous guard carries a bridge."""
    from repro.jit.trace import BRIDGE

    dmp = ir.IROp(ir.DEBUG_MERGE_POINT, [])
    dmp.snapshot = empty_snapshot()
    call = make_call("any")
    guard = ir.IROp(ir.GUARD_TRUE, [call])
    guard.snapshot = empty_snapshot()
    guard.bridge = Trace(7, BRIDGE, ("c", 0), [], bridge_ops, None)
    return [dmp, call, guard]


def test_ir501_hazard_walk_enters_bridge():
    # A guard in the bridge prefix still sits in the parent's merge
    # region: deopt through it would replay the parent's unsafe call.
    bguard = ir.IROp(ir.GUARD_FALSE, [ir.Const(0)])
    bguard.snapshot = empty_snapshot()
    report = verify_recorded(_hazard_bridge([bguard]), [])
    findings = [f for f in report.findings if f.code == "IR501"]
    assert len(findings) == 2  # parent guard + inherited bridge guard
    assert any("bridge #7" in f.where for f in findings)


def test_ir501_bridge_merge_point_resets_inherited_hazard():
    dmp = ir.IROp(ir.DEBUG_MERGE_POINT, [])
    dmp.snapshot = empty_snapshot()
    bguard = ir.IROp(ir.GUARD_FALSE, [ir.Const(0)])
    bguard.snapshot = empty_snapshot()
    report = verify_recorded(_hazard_bridge([dmp, bguard]), [])
    findings = [f for f in report.findings if f.code == "IR501"]
    assert len(findings) == 1  # only the parent guard; bridge is clean
    assert not any("bridge" in f.where for f in findings)


def test_ir501_bridge_own_call_ends_inherited_walk():
    # Past the bridge's own unsafe call the bridge's own verification
    # owns the hazard; the inherited walk must not double-report.
    bcall = make_call("any")
    bguard = ir.IROp(ir.GUARD_TRUE, [bcall])
    bguard.snapshot = empty_snapshot()
    report = verify_recorded(_hazard_bridge([bcall, bguard]), [])
    findings = [f for f in report.findings if f.code == "IR501"]
    assert len(findings) == 1
    assert not any("bridge" in f.where for f in findings)


def _heap_trace(middle):
    a = InputArg()
    descr = ir.FieldDescr.get(W_Box, "val")
    label = ir.IROp(ir.LABEL, [a])
    g1 = ir.IROp(ir.GETFIELD_GC, [a], descr)
    g2 = ir.IROp(ir.GETFIELD_GC, [a], descr)
    ops = [label, g1] + middle + [g2, ir.IROp(ir.JUMP, [a], label)]
    trace = Trace(0, LOOP, ("c", 0), [a], ops, None)
    trace.label_index = 0
    return trace


def test_ir502_redundant_heap_load_warns():
    report = verify_trace(_heap_trace([]), cfg=SystemConfig().jit)
    assert report.has("IR502")
    assert not report.errors  # warning severity, not an error


def test_ir502_call_invalidates_heap_cache():
    report = verify_trace(_heap_trace([make_call("any")]),
                          cfg=SystemConfig().jit)
    assert not report.has("IR502")


# -- IR6xx: backend numbering -------------------------------------------------


def test_ir601_broken_index_numbering():
    trace, _cfg = compiled_loop()
    trace.ops[0].index = -5
    assert verify_backend(trace).has("IR601")


def test_ir602_cost_table_length_mismatch():
    trace, _cfg = compiled_loop()
    trace.op_asm_insns = trace.op_asm_insns[:-1]
    assert verify_backend(trace).has("IR602")


def test_ir603_wrong_env_slot_count():
    trace, _cfg = compiled_loop()
    trace.n_env_slots += 7
    assert verify_backend(trace).has("IR603")


# -- the pipeline gate --------------------------------------------------------


def test_verify_compilation_raises_on_corruption():
    trace, cfg = compiled_loop()
    trace.ops.append(ir.IROp(ir.SAME_AS, [ir.Const(0)]))
    report = verify_compilation(cfg, trace)
    with pytest.raises(VerificationError) as excinfo:
        report.raise_if_errors("jit pipeline")
    assert excinfo.value.report is report
