"""Metrics registry unit + property tests."""

from hypothesis import given, settings, strategies as st

from repro.telemetry.metrics import (
    Histogram,
    MetricsRegistry,
    _bucket_index,
    bucket_bounds,
)


def test_bucket_index_powers_of_two():
    assert _bucket_index(0) == 0
    assert _bucket_index(1) == 0
    assert _bucket_index(2) == 1
    assert _bucket_index(3) == 1
    assert _bucket_index(4) == 2
    assert _bucket_index(1023) == 9
    assert _bucket_index(1024) == 10


@given(st.integers(0, 2**40))
@settings(max_examples=200, deadline=None)
def test_bucket_bounds_contain_value(value):
    lo, hi = bucket_bounds(_bucket_index(value))
    assert lo <= value < hi


def test_histogram_stats():
    histogram = Histogram()
    for value in (1, 2, 3, 100):
        histogram.record(value)
    assert histogram.count == 4
    assert histogram.total == 106
    assert histogram.min == 1
    assert histogram.max == 100
    assert histogram.mean == 26.5
    assert Histogram().mean == 0.0


@given(st.lists(st.integers(0, 10**6)), st.lists(st.integers(0, 10**6)))
@settings(max_examples=100, deadline=None)
def test_histogram_merge_equals_combined_recording(xs, ys):
    separate_a, separate_b, combined = Histogram(), Histogram(), Histogram()
    for x in xs:
        separate_a.record(x)
        combined.record(x)
    for y in ys:
        separate_b.record(y)
        combined.record(y)
    separate_a.merge(separate_b)
    assert separate_a.to_dict() == combined.to_dict()


@given(st.lists(st.integers(0, 10**6), min_size=1))
@settings(max_examples=100, deadline=None)
def test_histogram_round_trip(values):
    histogram = Histogram()
    for value in values:
        histogram.record(value)
    assert Histogram.from_dict(histogram.to_dict()).to_dict() \
        == histogram.to_dict()


def test_registry_count_gauge():
    registry = MetricsRegistry()
    registry.count("c")
    registry.count("c", 4)
    registry.gauge("g", 1)
    registry.gauge("g", 2)
    assert registry.counters == {"c": 5}
    assert registry.gauges == {"g": 2}


def test_registry_merge():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.count("shared", 1)
    b.count("shared", 2)
    b.count("only_b", 3)
    a.gauge("g", 1)
    b.gauge("g", 9)
    a.histogram("h", 4)
    b.histogram("h", 5)
    a.merge(b)
    assert a.counters == {"shared": 3, "only_b": 3}
    assert a.gauges == {"g": 9}  # last write wins
    assert a.histograms["h"].count == 2


def test_registry_round_trip():
    registry = MetricsRegistry()
    registry.count("c", 7)
    registry.gauge("g", 2.5)
    registry.histogram("h", 33)
    restored = MetricsRegistry.from_dict(registry.to_dict())
    assert restored.to_dict() == registry.to_dict()
