"""Figure 9: mean assembly instructions per IR node type."""

from conftest import save

from repro.harness import experiments


def test_fig9(benchmark, quick):
    means, text = benchmark.pedantic(
        lambda: experiments.fig9(quick=quick), rounds=1, iterations=1)
    save("fig9_asmcost.txt", text)

    # Paper shape: call_assembler is the most expensive node (>30
    # instructions); other calls are >15; most nodes are 1-2.
    if "call_assembler" in means:
        assert means["call_assembler"] > 30
    assert means.get("call", 0) > 15 or means.get("call_pure", 0) > 15
    cheap = [name for name, value in means.items() if value <= 2]
    assert len(cheap) >= len(means) * 0.4
    for name in ("getfield_gc", "setfield_gc"):
        if name in means:
            assert means[name] <= 2
