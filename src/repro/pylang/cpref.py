"""cpref: the CPython-reference interpreter.

Executes the same TinyPy bytecode with plain host values and a leaner,
hand-written-C cost model (the paper's CPython baseline: roughly 2x
faster than the RPython interpreter without its JIT, with classic
interpreter branch behaviour — one indirect dispatch jump per bytecode).

Results must match the RPython-style VM bit-for-bit: the test suite
cross-checks program output between the two.
"""

from repro.core import tags
from repro.core.errors import GuestError
from repro.isa import insns
from repro.pylang import bytecode as bc
from repro.pylang.compiler import compile_source
from repro.pylang.ops import str_format_mod
from repro.rlib import rbigint
from repro.uarch.machine import Machine

# CPython does substantial work per bytecode (refcount traffic, type
# checks, boxing): Castanos et al. report hundreds of instructions per
# Python bytecode.  These mixes model that (scaled to our workloads).
_DISPATCH_MIX = insns.mix(load=7, alu=6, store=2, br_bulk=3)
_CHEAP = insns.mix(alu=4, load=4, store=2, br_bulk=1)
_ARITH = insns.mix(alu=9, load=7, store=4, br_bulk=3)
_FARITH = insns.mix(fpu=1, alu=6, load=7, store=4, br_bulk=3)
_DIV = insns.mix(div=1, alu=7, load=7, store=4, br_bulk=3)
_ATTR = insns.mix(load=14, alu=9, store=2, br_bulk=4)
_SUBSCR = insns.mix(load=12, alu=9, store=2, br_bulk=3)
_CALL = insns.mix(load=18, store=18, alu=16, br_bulk=6)
_BUILD = insns.mix(alu=7, store=7, load=4, br_bulk=2)
_GLOBAL = insns.mix(load=11, alu=5, br_bulk=3)


class CFunction(object):
    __slots__ = ("code", "module", "defaults")

    def __init__(self, code, module, defaults):
        self.code = code
        self.module = module
        self.defaults = defaults


class CClass(object):
    def __init__(self, name, base):
        self.name = name
        self.base = base
        self.methods = {}

    def lookup(self, name):
        cls = self
        while cls is not None:
            if name in cls.methods:
                return cls.methods[name]
            cls = cls.base
        return None


class CInstance(object):
    __slots__ = ("cls", "attrs")

    def __init__(self, cls):
        self.cls = cls
        self.attrs = {}


class CBoundMethod(object):
    __slots__ = ("receiver", "func")

    def __init__(self, receiver, func):
        self.receiver = receiver
        self.func = func


class _ChargeCtx(object):
    """Minimal ctx shim so shared format helpers can charge costs."""

    def __init__(self, machine):
        self.machine = machine

    def charge(self, mix):
        self.machine.exec_mix(mix)

    def charge_branches(self, count, rate):
        self.machine.exec_bulk_branches(count, rate)


def _precharged(xm, mix, handler):
    """Restore a stripped leading charge for scaled-``_xm`` subclasses.

    Handlers in :attr:`CpRef._STATIC_CHARGE` had their leading fixed
    charge moved into the fused dispatch call; VMs that scale costs
    (``mix_scale != 1.0`` or a custom ``_xm``) get it back via this
    wrapper, preserving the original charge order.
    """
    def wrapped(stack, arg, code, module, pc):
        xm(mix)
        return handler(stack, arg, code, module, pc)
    return wrapped


#: Values outside this range take CPython's bignum path (see _num_mix).
_SMALL = 1 << 62

#: Opcodes eligible for straight-line run fusion: the handler is
#: machine-silent (its entire cost is the fixed _STATIC_CHARGE mix, no
#: dynamic charges), never jumps (always returns None), and ignores the
#: ``pc`` argument.  Runs of these retire all their dispatch events in
#: one :meth:`Machine.dispatch_run` call before the handlers execute.
_RUN_OP_NAMES = (
    "LOAD_CONST", "LOAD_FAST", "STORE_FAST", "LOAD_GLOBAL",
    "STORE_GLOBAL", "POP_TOP", "DUP_TOP", "DUP_TOP_TWO",
    "ROT_TWO", "ROT_THREE", "UNARY_NEG", "UNARY_INVERT",
    "COMPARE_LT", "COMPARE_LE", "COMPARE_EQ", "COMPARE_NE",
    "COMPARE_GT", "COMPARE_GE", "COMPARE_IS", "COMPARE_IS_NOT",
)
_RUN_OPS = frozenset(getattr(bc, name) for name in _RUN_OP_NAMES)

#: Opcodes whose arg is a bytecode jump target (run boundaries).
_JUMP_OPS = (bc.JUMP, bc.POP_JUMP_IF_FALSE, bc.POP_JUMP_IF_TRUE,
             bc.JUMP_IF_FALSE_OR_POP, bc.JUMP_IF_TRUE_OR_POP, bc.FOR_ITER)


def _build_run_table(code, op_blocks, handlers, b_dispatch):
    """Per-code table of fusable straight-line runs, indexed by pc.

    ``table[pc]`` is None or ``(items, pairs, next_pc, last_op, n_insns)``
    where ``items`` feeds :meth:`Machine.dispatch_run` and ``pairs`` is
    the ``(handler, arg)`` list to execute afterwards.  A run never
    starts at pc 0 or at a jump target, so the previous opcode — which
    the dispatch event's indirect-jump pc correlates on — is statically
    known for every item, and fused execution reproduces the exact
    per-bytecode event stream of the unfused loop.
    """
    ops = code.ops
    args = code.args
    n = len(ops)
    jump_targets = set()
    for op, arg in zip(ops, args):
        if op in _JUMP_OPS:
            jump_targets.add(arg)
    table = [None] * n
    pc = 1
    while pc < n:
        if ops[pc] not in _RUN_OPS or pc in jump_targets:
            pc += 1
            continue
        end = pc + 1
        while end < n and ops[end] in _RUN_OPS and end not in jump_targets:
            end += 1
        if end - pc >= 2:
            items = tuple(
                (0x300 + (ops[j - 1] << 3), ops[j], op_blocks[ops[j]])
                for j in range(pc, end))
            pairs = tuple(
                (handlers[ops[j]], args[j]) for j in range(pc, end))
            n_insns = sum(
                2 + b_dispatch.n_insns + b2.n_insns
                for _pc, _tgt, b2 in items)
            table[pc] = (items, pairs, end, ops[end - 1], n_insns)
        pc = end
    return table


class CpRef(object):
    """The CPython-like reference VM."""

    #: Relative per-operation cost of this VM (the Racket baseline
    #: subclasses with a smaller factor: a mature custom JIT VM).
    mix_scale = 1.0

    #: Handlers whose first machine-visible action is charging a fixed
    #: module-level mix.  On unscaled VMs the dispatch loop retires that
    #: mix fused into the dispatch event (:meth:`Machine.dispatch_event2`)
    #: and the handler body skips it; scaled VMs get the charge restored
    #: by a wrapper so the subclass ``_xm`` override still sees it.
    _STATIC_CHARGE = {
        "load_const": _CHEAP, "load_fast": _CHEAP, "store_fast": _CHEAP,
        "load_global": _GLOBAL, "store_global": _GLOBAL,
        "pop_top": _CHEAP, "dup_top": _CHEAP, "dup_top_two": _CHEAP,
        "rot_two": _CHEAP, "rot_three": _CHEAP,
        "unary_neg": _ARITH, "unary_not": _CHEAP, "unary_invert": _ARITH,
        "compare_lt": _ARITH, "compare_le": _ARITH, "compare_eq": _ARITH,
        "compare_ne": _ARITH, "compare_gt": _ARITH, "compare_ge": _ARITH,
        "compare_is": _ARITH, "compare_is_not": _ARITH,
        "load_attr": _ATTR, "store_attr": _ATTR,
        "binary_subscr": _SUBSCR, "store_subscr": _SUBSCR,
        "delete_subscr": _SUBSCR,
        "pop_jump_if_false": _CHEAP, "pop_jump_if_true": _CHEAP,
        "jump_if_false_or_pop": _CHEAP, "jump_if_true_or_pop": _CHEAP,
        "get_iter": _BUILD, "for_iter": _SUBSCR,
        "build_slice": _BUILD, "list_append": _CHEAP,
        "make_function": _BUILD, "make_class": _BUILD,
        "call_function": _CALL, "return_value": _CHEAP,
    }

    #: Descriptor for _ARITH on unscaled VMs: lets binop handlers retire
    #: the common small-int mix without going through ``_num_mix``.
    _b_arith = None

    def __init__(self, config, predictor="gshare"):
        self.machine = Machine(config, predictor=predictor)
        self._charge_ctx = _ChargeCtx(self.machine)
        self.output = []
        self._mix_carry = {}
        # Host fast paths (fused dispatch + run fusion) are the
        # quickening layer of this VM; with the knob off every bytecode
        # goes through the reference dispatch_event + _precharged path.
        self._quicken = config.quicken
        # Static verification debug gate (repro.analysis); one
        # attribute read on the off path.
        self._verify = config.verify
        # Fused-run tables per code object: id(code) -> (code, table).
        # The code object is pinned in the value so its id can't be
        # recycled while the table is alive.
        self._run_tables = {}
        self._build_handlers()
        self._builtins = self._make_builtins()
        # Pre-lowered descriptors for the static handler mixes, keyed by
        # id().  Only module-level mixes are registered: they are
        # immortal, so their ids can never be reused by a dynamic mix.
        machine = self.machine
        self._b_dispatch = machine.block(_DISPATCH_MIX)
        self._static_blocks = {
            id(m): machine.block(m)
            for m in (_CHEAP, _ARITH, _FARITH, _DIV, _ATTR, _SUBSCR,
                      _CALL, _BUILD, _GLOBAL, _DISPATCH_MIX)
        }
        self._sb_get = self._static_blocks.get
        self._mxb = machine.exec_block
        # When no subclass customizes charging, shadow _xm with a
        # closure that skips the scale check and self lookups.
        if self._fast:
            sb_get = self._static_blocks.get
            exec_block = machine.exec_block
            exec_mix = machine.exec_mix

            def _xm_fast(mix):
                b = sb_get(id(mix))
                if b is not None:
                    exec_block(b)
                else:
                    exec_mix(mix)

            self._xm = _xm_fast
            self._b_arith = machine.block(_ARITH)

    def _xm(self, mix):
        """Charge a mix, scaled by this VM's cost factor."""
        if self.mix_scale == 1.0:
            b = self._sb_get(id(mix))
            if b is not None:
                self._mxb(b)
            else:
                self.machine.exec_mix(mix)
            return
        carry = self._mix_carry
        scaled = []
        for klass, count in mix:
            exact = count * self.mix_scale + carry.get(klass, 0.0)
            whole = int(exact)
            carry[klass] = exact - whole
            if whole:
                scaled.append((klass, whole))
        if scaled:
            self.machine.exec_mix(tuple(scaled))

    # -- entry --------------------------------------------------------------------

    def run_source(self, source, module_name="__main__"):
        code = compile_source(source, module_name)
        return self.run_module_code(code)

    def run_module_code(self, code):
        if self._verify:
            from repro.analysis import verify_pycode

            verify_pycode(code).raise_if_errors("bytecode verification")
        self.machine.annot(tags.VM_START)
        module = {}
        try:
            result = self.run_frame(code, [None] * code.n_locals, module)
        finally:
            self.machine.annot(tags.VM_STOP)
        return result

    def stdout(self):
        return "\n".join(self.output) + ("\n" if self.output else "")

    # -- the evaluation loop -----------------------------------------------------------

    def _build_handlers(self):
        fast = (self._quicken and type(self)._xm is CpRef._xm
                and self.mix_scale == 1.0)
        machine = self.machine
        table = [None] * bc.N_OPS
        blocks = [None] * bc.N_OPS
        for name in dir(self):
            if name.startswith("op_"):
                opnum = getattr(bc, name[3:].upper(), None)
                if opnum is not None:
                    handler = getattr(self, name)
                    mix = self._STATIC_CHARGE.get(name[3:])
                    if mix is not None:
                        if fast:
                            blocks[opnum] = machine.block(mix)
                        else:
                            handler = _precharged(self._xm, mix, handler)
                    table[opnum] = handler
        missing = [bc.OP_NAMES[i] for i in range(bc.N_OPS)
                   if table[i] is None]
        assert not missing, missing
        self._handlers = table
        self._op_blocks = blocks
        self._fast = fast

    # -- handlers (return None = advance, int = new pc, _Return = done) ----------------

    # NOTE: handlers listed in _STATIC_CHARGE do not charge their fixed
    # mix themselves — the dispatch loop retires it fused into the
    # dispatch event (fast VMs) or a _precharged wrapper restores it
    # (scaled VMs).  Only dynamic/conditional charges remain in bodies.

    def op_load_const(self, stack, arg, code, module, pc):
        stack.append(code.consts[arg])

    def op_load_fast(self, stack, arg, code, module, pc):
        stack.append(self._locals[-1][arg])

    def op_store_fast(self, stack, arg, code, module, pc):
        self._locals[-1][arg] = stack.pop()

    def op_load_global(self, stack, arg, code, module, pc):
        name = code.names[arg]
        if name in module:
            stack.append(module[name])
        elif name in self._builtins:
            stack.append(self._builtins[name])
        else:
            raise GuestError("NameError: name %r is not defined" % name)

    def op_store_global(self, stack, arg, code, module, pc):
        module[code.names[arg]] = stack.pop()

    def op_pop_top(self, stack, arg, code, module, pc):
        stack.pop()

    def op_dup_top(self, stack, arg, code, module, pc):
        stack.append(stack[-1])

    def op_dup_top_two(self, stack, arg, code, module, pc):
        stack.extend(stack[-2:])

    def op_rot_two(self, stack, arg, code, module, pc):
        stack[-1], stack[-2] = stack[-2], stack[-1]

    def op_rot_three(self, stack, arg, code, module, pc):
        top = stack.pop()
        stack.insert(-2, top)

    def op_unpack_sequence(self, stack, arg, code, module, pc):
        self._xm(insns.scale_mix(_CHEAP, arg))
        seq = stack.pop()
        if len(seq) != arg:
            raise GuestError("unpack length mismatch")
        for item in reversed(seq):
            stack.append(item)

    # -- operators -------------------------------------------------------------------------

    def _num_mix(self, a, b=0, quadratic=False):
        if isinstance(a, float) or isinstance(b, float):
            return _FARITH
        big_a = isinstance(a, int) and (abs(a) >> 62)
        big_b = isinstance(b, int) and (abs(b) >> 62)
        if big_a or big_b:
            # CPython's C bignums: linear-time add/sub, quadratic
            # (schoolbook) multiply/divide — cost per 30-bit digit.
            digits_a = max(1, a.bit_length() // 30) \
                if isinstance(a, int) else 1
            digits_b = max(1, b.bit_length() // 30) \
                if isinstance(b, int) else 1
            work = digits_a * digits_b if quadratic \
                else max(digits_a, digits_b)
            return insns.scale_mix(
                insns.mix(alu=3, load=2, store=1, br_bulk=1), work)
        return _ARITH

    def _binop(fn, quadratic=False):  # noqa: N805
        def handler(self, stack, arg, code, module, pc):
            b = stack.pop()
            a = stack.pop()
            b_arith = self._b_arith
            if (b_arith is not None and type(a) is int and type(b) is int
                    and -_SMALL < a < _SMALL and -_SMALL < b < _SMALL):
                # Small-int common case: _num_mix would return _ARITH,
                # whose descriptor is exactly b_arith.
                self._mxb(b_arith)
            else:
                self._xm(self._num_mix(a, b, quadratic=quadratic))
            try:
                stack.append(fn(self, a, b))
            except ZeroDivisionError:
                raise GuestError("division by zero")
            except TypeError as exc:
                raise GuestError(str(exc))
        return handler

    op_binary_add = _binop(lambda self, a, b: a + b)
    op_binary_sub = _binop(lambda self, a, b: a - b)
    op_binary_mul = _binop(lambda self, a, b: a * b, quadratic=True)
    op_binary_floordiv = _binop(lambda self, a, b: a // b, quadratic=True)
    op_binary_truediv = _binop(lambda self, a, b: a / b)
    op_binary_pow = _binop(lambda self, a, b: a ** b, quadratic=True)
    op_binary_and = _binop(lambda self, a, b: a & b)
    op_binary_or = _binop(lambda self, a, b: a | b)
    op_binary_xor = _binop(lambda self, a, b: a ^ b)
    op_binary_lshift = _binop(lambda self, a, b: a << b)
    op_binary_rshift = _binop(lambda self, a, b: a >> b)

    def op_binary_mod(self, stack, arg, code, module, pc):
        b = stack.pop()
        a = stack.pop()
        if isinstance(a, str):
            values = b if isinstance(b, tuple) else (b,)
            values = tuple(self._fmt_value(v) for v in values)
            stack.append(str_format_mod.fn(self._charge_ctx, a, values))
            return
        self._xm(self._num_mix(a, b))
        if b == 0:
            raise GuestError("integer modulo by zero")
        stack.append(a % b)

    def _fmt_value(self, value):
        if isinstance(value, (int, float, str)):
            return value
        return self._str(value)

    def op_unary_neg(self, stack, arg, code, module, pc):
        stack.append(-stack.pop())

    def op_unary_not(self, stack, arg, code, module, pc):
        stack.append(not self._truth(stack.pop()))

    def op_unary_invert(self, stack, arg, code, module, pc):
        stack.append(~stack.pop())

    def _truth(self, value):
        self._xm(_CHEAP)
        return bool(value)

    def _cmpop(fn):  # noqa: N805
        def handler(self, stack, arg, code, module, pc):
            b = stack.pop()
            a = stack.pop()
            stack.append(fn(a, b))
        return handler

    op_compare_lt = _cmpop(lambda a, b: a < b)
    op_compare_le = _cmpop(lambda a, b: a <= b)
    op_compare_eq = _cmpop(lambda a, b: a == b)
    op_compare_ne = _cmpop(lambda a, b: a != b)
    op_compare_gt = _cmpop(lambda a, b: a > b)
    op_compare_ge = _cmpop(lambda a, b: a >= b)
    op_compare_is = _cmpop(lambda a, b: a is b)
    op_compare_is_not = _cmpop(lambda a, b: a is not b)

    def op_compare_in(self, stack, arg, code, module, pc):
        container = stack.pop()
        item = stack.pop()
        self._charge_contains(container)
        stack.append(item in container)

    def op_compare_not_in(self, stack, arg, code, module, pc):
        container = stack.pop()
        item = stack.pop()
        self._charge_contains(container)
        stack.append(item not in container)

    def _charge_contains(self, container):
        if isinstance(container, (list, tuple, str)):
            self._xm(
                insns.scale_mix(insns.mix(load=1, alu=1),
                                max(1, len(container) // 2)))
        else:
            self._xm(_SUBSCR)

    # -- attributes / subscripts ----------------------------------------------------------------

    def op_load_attr(self, stack, arg, code, module, pc):
        obj = stack.pop()
        name = code.names[arg]
        stack.append(self._getattr(obj, name))

    def _getattr(self, obj, name):
        if isinstance(obj, CInstance):
            if name in obj.attrs:
                return obj.attrs[name]
            func = obj.cls.lookup(name)
            if func is not None:
                if isinstance(func, CFunction):
                    return CBoundMethod(obj, func)
                return func
            raise GuestError("AttributeError: %s.%s" % (obj.cls.name, name))
        if isinstance(obj, CClass):
            value = obj.lookup(name)
            if value is None:
                raise GuestError("AttributeError: %s.%s" % (obj.name, name))
            return value
        method = _TYPE_METHODS.get((type(obj), name))
        if method is not None:
            return CBoundMethod(obj, method)
        raise GuestError("AttributeError: %s object has no attribute %r"
                         % (type(obj).__name__, name))

    def op_store_attr(self, stack, arg, code, module, pc):
        obj = stack.pop()
        value = stack.pop()
        if isinstance(obj, CInstance):
            obj.attrs[code.names[arg]] = value
        elif isinstance(obj, CClass):
            obj.methods[code.names[arg]] = value
        else:
            raise GuestError("cannot set attribute")

    def op_binary_subscr(self, stack, arg, code, module, pc):
        index = stack.pop()
        obj = stack.pop()
        try:
            if isinstance(index, slice):
                self._xm(insns.scale_mix(
                    _CHEAP, max(1, len(obj[index]) // 2)))
            stack.append(obj[index])
        except (KeyError, IndexError):
            raise GuestError("key/index error")

    def op_store_subscr(self, stack, arg, code, module, pc):
        index = stack.pop()
        obj = stack.pop()
        value = stack.pop()
        obj[index] = value

    def op_delete_subscr(self, stack, arg, code, module, pc):
        index = stack.pop()
        obj = stack.pop()
        del obj[index]

    # -- control flow ----------------------------------------------------------------------------

    def op_jump(self, stack, arg, code, module, pc):
        return arg

    def _cond_branch(self, code, pc, truthy):
        pc_id = (code.pc_seed ^ pc * 31) & 0xFFFFF
        self.machine.branch(pc_id, truthy)

    def op_pop_jump_if_false(self, stack, arg, code, module, pc):
        truthy = bool(stack.pop())
        self._cond_branch(code, pc, truthy)
        if truthy:
            return pc + 1
        return arg

    def op_pop_jump_if_true(self, stack, arg, code, module, pc):
        truthy = bool(stack.pop())
        self._cond_branch(code, pc, truthy)
        if truthy:
            return arg
        return pc + 1

    def op_jump_if_false_or_pop(self, stack, arg, code, module, pc):
        if stack[-1]:
            stack.pop()
            return pc + 1
        return arg

    def op_jump_if_true_or_pop(self, stack, arg, code, module, pc):
        if stack[-1]:
            return arg
        stack.pop()
        return pc + 1

    def op_get_iter(self, stack, arg, code, module, pc):
        stack.append(iter(stack.pop()))

    def op_for_iter(self, stack, arg, code, module, pc):
        try:
            stack.append(next(stack[-1]))
            self._cond_branch(code, pc, True)
        except StopIteration:
            self._cond_branch(code, pc, False)
            stack.pop()
            return arg

    # -- construction -------------------------------------------------------------------------------

    def op_build_list(self, stack, arg, code, module, pc):
        self._xm(insns.scale_mix(_BUILD, max(1, arg)))
        values = stack[len(stack) - arg:] if arg else []
        del stack[len(stack) - arg:]
        stack.append(list(values))

    def op_build_tuple(self, stack, arg, code, module, pc):
        self._xm(insns.scale_mix(_BUILD, max(1, arg)))
        values = tuple(stack[len(stack) - arg:]) if arg else ()
        del stack[len(stack) - arg:]
        stack.append(values)

    def op_build_map(self, stack, arg, code, module, pc):
        self._xm(insns.scale_mix(_BUILD, max(1, arg)))
        result = {}
        pairs = stack[len(stack) - 2 * arg:]
        del stack[len(stack) - 2 * arg:]
        for i in range(0, len(pairs), 2):
            result[pairs[i]] = pairs[i + 1]
        stack.append(result)

    def op_build_set(self, stack, arg, code, module, pc):
        self._xm(insns.scale_mix(_BUILD, max(1, arg)))
        values = stack[len(stack) - arg:] if arg else []
        del stack[len(stack) - arg:]
        stack.append(set(values))

    def op_build_slice(self, stack, arg, code, module, pc):
        stop = stack.pop()
        start = stack.pop()
        stack.append(slice(start, stop))

    def op_list_append(self, stack, arg, code, module, pc):
        value = stack.pop()
        target = stack.pop()
        target.append(value)

    # -- functions / classes / calls ---------------------------------------------------------------------

    def op_make_function(self, stack, arg, code, module, pc):
        spec = stack.pop()
        defaults = [stack.pop() for _ in range(arg)]
        defaults.reverse()
        stack.append(CFunction(spec.code, module, defaults))

    def op_make_class(self, stack, arg, code, module, pc):
        spec = code.consts[arg]
        base = None
        if spec.base_name is not None:
            base = module.get(spec.base_name)
            if not isinstance(base, CClass):
                raise GuestError("base is not a class")
        cls = CClass(spec.name, base)
        for method_name, method_code, defaults in spec.methods:
            cls.methods[method_name] = CFunction(
                method_code, module, list(defaults))
        stack.append(cls)

    def op_call_function(self, stack, arg, code, module, pc):
        call_args = stack[len(stack) - arg:] if arg else []
        del stack[len(stack) - arg:]
        callee = stack.pop()
        stack.append(self.call(callee, call_args))

    def call(self, callee, call_args):
        if isinstance(callee, CBoundMethod):
            return self.call(callee.func, [callee.receiver] + call_args)
        if isinstance(callee, CFunction):
            code = callee.code
            n_missing = code.argcount - len(call_args)
            if n_missing:
                if n_missing < 0 or n_missing > len(callee.defaults):
                    raise GuestError("argument count mismatch in %s"
                                     % code.name)
                call_args = call_args + callee.defaults[
                    len(callee.defaults) - n_missing:]
            locals_values = call_args + [None] * (
                code.n_locals - code.argcount)
            self._xm(_CALL)
            return self.run_frame(code, locals_values, callee.module)
        if callable(callee) and not isinstance(callee, CClass):
            return callee(self, call_args)
        if isinstance(callee, CClass):
            instance = CInstance(callee)
            init = callee.lookup("__init__")
            if init is not None:
                self.call(init, [instance] + call_args)
            elif call_args:
                raise GuestError("%s() takes no arguments" % callee.name)
            return instance
        raise GuestError("object is not callable")

    def op_return_value(self, stack, arg, code, module, pc):
        return _Return(stack.pop())

    # -- run_frame uses a locals stack for LOAD/STORE_FAST ------------------------------------------------

    _locals = None

    def run_frame(self, code, locals_values, module):  # noqa: F811
        if self._locals is None:
            self._locals = []
        self._locals.append(locals_values)
        try:
            return self._run_frame_inner(code, module)
        finally:
            self._locals.pop()

    def _run_frame_inner(self, code, module):
        machine = self.machine
        handlers = self._handlers
        op_blocks = self._op_blocks
        stack = []
        pc = 0
        ops = code.ops
        args = code.args
        prev_opcode = 0
        dispatch_event = machine.dispatch_event
        dispatch_event2 = machine.dispatch_event2
        dispatch_run = machine.dispatch_run
        b_dispatch = self._b_dispatch
        DISPATCH = tags.DISPATCH
        entry = self._run_tables.get(id(code))
        if entry is None:
            if self._fast:
                table = _build_run_table(
                    code, op_blocks, handlers, b_dispatch)
            else:
                table = (None,) * len(ops)
            entry = (code, table)
            self._run_tables[id(code)] = entry
        runs = entry[1]
        while True:
            run = runs[pc]
            if run is not None:
                # Straight-line run of machine-silent ops: retire every
                # dispatch event in one call, then execute the handlers.
                items, pairs, next_pc, last_op, n_insns = run
                dispatch_run(DISPATCH, b_dispatch, items, n_insns)
                for handler, arg in pairs:
                    handler(stack, arg, code, module, 0)
                prev_opcode = last_op
                pc = next_pc
                continue
            opcode = ops[pc]
            # Fused per-bytecode event: DISPATCH annot + dispatch mix +
            # one indirect jump per handler (computed gotos), so the BTB
            # correlates on the previous opcode.  Handlers with a fixed
            # cost mix get it retired fused into the same call.
            b_op = op_blocks[opcode]
            if b_op is not None:
                dispatch_event2(DISPATCH, b_dispatch,
                                0x300 + (prev_opcode << 3), opcode, b_op)
            else:
                dispatch_event(DISPATCH, b_dispatch,
                               0x300 + (prev_opcode << 3), opcode)
            prev_opcode = opcode
            result = handlers[opcode](stack, args[pc], code, module, pc)
            if result is None:
                pc += 1
            elif type(result) is int:
                pc = result
            else:
                return result.value

    # -- conversions / builtins -------------------------------------------------------------------------------

    def _str(self, value):
        if isinstance(value, bool):
            return "True" if value else "False"
        if isinstance(value, str):
            return value
        if isinstance(value, (int,)):
            text = rbigint.int_to_decimal(value)
            self._xm(insns.scale_mix(
                insns.mix(div=1, alu=2, store=1), len(text)))
            return text
        if isinstance(value, float):
            return repr(value)
        if value is None:
            return "None"
        return self._repr(value)

    def _repr(self, value):
        if isinstance(value, str):
            return "'" + value + "'"
        if isinstance(value, list):
            return "[" + ", ".join(self._repr(v) for v in value) + "]"
        if isinstance(value, tuple):
            if len(value) == 1:
                return "(" + self._repr(value[0]) + ",)"
            return "(" + ", ".join(self._repr(v) for v in value) + ")"
        if isinstance(value, dict):
            return "{" + ", ".join(
                "%s: %s" % (self._repr(k), self._repr(v))
                for k, v in value.items()) + "}"
        if isinstance(value, set):
            if not value:
                return "set()"
            return "{" + ", ".join(self._repr(v) for v in value) + "}"
        if isinstance(value, CInstance):
            return "<%s instance>" % value.cls.name
        if isinstance(value, CClass):
            return "<class %s>" % value.name
        if isinstance(value, CFunction):
            return "<function>"
        if isinstance(value, range):
            return "range(%d, %d)" % (value.start, value.stop)
        return self._str(value)

    def _make_builtins(self):
        def bi_print(vm, call_args):
            text = " ".join(vm._str(a) for a in call_args)
            vm._xm(insns.scale_mix(
                insns.mix(load=1, store=1), max(1, len(text) // 4)))
            vm.output.append(text)
            return None

        def charge_scan(seq):
            self._xm(insns.scale_mix(
                insns.mix(load=1, alu=1), max(1, len(seq))))

        def bi_sum(vm, call_args):
            charge_scan(call_args[0])
            return sum(call_args[0], *call_args[1:])

        def bi_min(vm, call_args):
            if len(call_args) == 1:
                charge_scan(call_args[0])
                return min(call_args[0])
            return min(call_args)

        def bi_max(vm, call_args):
            if len(call_args) == 1:
                charge_scan(call_args[0])
                return max(call_args[0])
            return max(call_args)

        def bi_isinstance(vm, call_args):
            obj, cls = call_args
            if not isinstance(obj, CInstance):
                return False
            current = obj.cls
            while current is not None:
                if current is cls:
                    return True
                current = current.base
            return False

        def bi_annotate(vm, call_args):
            vm.machine.annot(tags.APP_EVENT,
                             call_args[0] if call_args else 0)
            return None

        def simple(fn, scale=False):
            def wrapped(vm, call_args):
                if scale and call_args and hasattr(call_args[0], "__len__"):
                    charge_scan(call_args[0])
                try:
                    return fn(*call_args)
                except (ValueError, OverflowError) as exc:
                    raise GuestError(str(exc))
            return wrapped

        return {
            "print": bi_print,
            "range": simple(range),
            "len": simple(len),
            "abs": simple(abs),
            "min": bi_min,
            "max": bi_max,
            "sum": bi_sum,
            "int": simple(int),
            "float": simple(float),
            "str": lambda vm, a: vm._str(a[0]),
            "repr": lambda vm, a: vm._repr(a[0]),
            "bool": simple(bool),
            "chr": simple(chr),
            "ord": simple(ord),
            "list": simple(list, scale=True),
            "tuple": simple(tuple, scale=True),
            "dict": simple(dict),
            "set": simple(set, scale=True),
            "isinstance": bi_isinstance,
            "__annot__": bi_annotate,
        }


class _Return(object):
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


def _charge_list(vm, seq, per_item=1):
    vm._xm(insns.scale_mix(
        insns.mix(load=1, store=1), max(1, len(seq) * per_item)))


def _m(fn, scan=False):
    def method(vm, call_args):
        if scan and hasattr(call_args[0], "__len__"):
            _charge_list(vm, call_args[0])
        else:
            vm._xm(_CHEAP)
        try:
            return fn(*call_args)
        except ValueError as exc:
            raise GuestError(str(exc))
    return method


_TYPE_METHODS = {
    (list, "append"): _m(lambda s, v: s.append(v)),
    (list, "pop"): _m(lambda s, *a: s.pop(*a)),
    (list, "insert"): _m(lambda s, i, v: s.insert(i, v), scan=True),
    (list, "extend"): _m(lambda s, o: s.extend(o), scan=True),
    (list, "reverse"): _m(lambda s: s.reverse(), scan=True),
    (list, "sort"): _m(lambda s: s.sort(), scan=True),
    (list, "index"): _m(lambda s, v: s.index(v), scan=True),
    (list, "remove"): _m(lambda s, v: s.remove(v), scan=True),
    (list, "count"): _m(lambda s, v: s.count(v), scan=True),
    (dict, "get"): _m(lambda d, k, *a: d.get(k, *(a or (None,)))),
    (dict, "keys"): _m(lambda d: list(d.keys()), scan=True),
    (dict, "values"): _m(lambda d: list(d.values()), scan=True),
    (dict, "items"): _m(lambda d: [(k, v) for k, v in d.items()],
                        scan=True),
    (dict, "pop"): _m(lambda d, k, *a: d.pop(k, *a)),
    (dict, "setdefault"): _m(lambda d, k, v: d.setdefault(k, v)),
    (set, "add"): _m(lambda s, v: s.add(v)),
    (str, "join"): _m(lambda s, items: s.join(items), scan=True),
    (str, "split"): _m(lambda s, *a: s.split(*a), scan=True),
    (str, "strip"): _m(lambda s: s.strip()),
    (str, "lower"): _m(lambda s: s.lower(), scan=True),
    (str, "upper"): _m(lambda s: s.upper(), scan=True),
    (str, "replace"): _m(lambda s, a, b: s.replace(a, b), scan=True),
    (str, "find"): _m(lambda s, *a: s.find(*a), scan=True),
    (str, "startswith"): _m(lambda s, p: s.startswith(p)),
    (str, "endswith"): _m(lambda s, p: s.endswith(p)),
}
