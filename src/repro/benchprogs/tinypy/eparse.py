# eparse: recursive-descent expression parsing and evaluation — string
# scanning plus AST-building (Table III: rstr.ll_join shape; the
# sympy_str-like "very branchy, many traces" profile).
N = 120


class Parser:
    def __init__(self, text):
        self.text = text
        self.pos = 0

    def peek(self):
        if self.pos < len(self.text):
            return self.text[self.pos]
        return ""

    def advance(self):
        self.pos += 1

    def skip_spaces(self):
        while self.peek() == " ":
            self.advance()

    def parse_expression(self):
        left = self.parse_term()
        self.skip_spaces()
        while self.peek() == "+" or self.peek() == "-":
            op = self.peek()
            self.advance()
            right = self.parse_term()
            left = ["binop", op, left, right]
            self.skip_spaces()
        return left

    def parse_term(self):
        left = self.parse_factor()
        self.skip_spaces()
        while self.peek() == "*" or self.peek() == "/":
            op = self.peek()
            self.advance()
            right = self.parse_factor()
            left = ["binop", op, left, right]
            self.skip_spaces()
        return left

    def parse_factor(self):
        self.skip_spaces()
        ch = self.peek()
        if ch == "(":
            self.advance()
            inner = self.parse_expression()
            self.advance()  # ")"
            return inner
        if ch == "-":
            self.advance()
            return ["neg", self.parse_factor()]
        start = self.pos
        while self.peek() >= "0" and self.peek() <= "9":
            self.advance()
        if self.pos > start:
            return ["num", int(self.text[start:self.pos])]
        name_start = self.pos
        while self.peek() >= "a" and self.peek() <= "z":
            self.advance()
        return ["var", self.text[name_start:self.pos]]


def evaluate(node, env):
    kind = node[0]
    if kind == "num":
        return node[1]
    if kind == "var":
        return env.get(node[1], 0)
    if kind == "neg":
        return -evaluate(node[1], env)
    op = node[1]
    a = evaluate(node[2], env)
    b = evaluate(node[3], env)
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if b == 0:
        return 0
    return a // b


def to_string(node):
    kind = node[0]
    if kind == "num":
        return str(node[1])
    if kind == "var":
        return node[1]
    if kind == "neg":
        return "-" + to_string(node[1])
    return "(" + to_string(node[2]) + " " + node[1] + " " \
        + to_string(node[3]) + ")"


EXPRESSIONS = [
    "1 + 2 * 3 - x",
    "(a + b) * (c - 4) / 2",
    "-x * (y + 3) + 12 / (z + 1)",
    "10 * 10 + 20 * 20 - foo",
    "((1 + 2) * (3 + 4)) - ((5 + 6) * (7 - 8))",
    "a * a + b * b - 2 * a * b",
]


def run_eparse(iterations):
    env = {"x": 7, "y": 3, "z": 2, "a": 5, "b": 4, "c": 9, "foo": 100}
    checksum = 0
    text_len = 0
    for i in range(iterations):
        for src in EXPRESSIONS:
            tree = Parser(src).parse_expression()
            checksum = (checksum + evaluate(tree, env)) % 1000000007
            text_len += len(to_string(tree))
    print("eparse", checksum, text_len)


run_eparse(N)
