"""Cross-layer profiling of a real benchmark (the paper's methodology).

Runs the `richards` benchmark on the TinyPy VM with the meta-tracing
JIT, collecting:

* the framework-level phase breakdown (Figure 2 style),
* the AOT-compiled functions called from JIT traces (Table III style),
* the warmup break-even point against CPython (Figure 5 style),
* per-phase microarchitectural counters (Table IV style).

Run:  python examples/crosslayer_profile.py [benchmark-name]
"""

import sys

from repro.benchprogs import registry
from repro.harness.runner import run_program
from repro.pintool.bcrate import break_even_instructions
from repro.pintool.phases import PHASE_NAMES


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "richards"
    program = registry.py_program(name)
    n = program.small_n * 2

    print("running %s on pypy (meta-tracing JIT) ..." % name)
    jit = run_program(program, "pypy", n=n, timeline=True)
    print("running %s on cpython baseline ..." % name)
    cpy = run_program(program, "cpython", n=n)

    print("\n== application level ==")
    print("cpython: %.4f simulated seconds" % cpy.seconds)
    print("pypy:    %.4f simulated seconds (%.2fx)"
          % (jit.seconds, cpy.seconds / jit.seconds))

    print("\n== framework level: phases ==")
    for phase, fraction in jit.phase_breakdown.items():
        if fraction > 0.001:
            print("  %-10s %5.1f%%" % (phase, 100 * fraction))

    print("\n== framework level: AOT calls from traces ==")
    for fraction, src, fn_name, calls in jit.aot_rows[:8]:
        print("  %5.1f%%  [%s] %-40s (%d calls)"
              % (100 * fraction, src, fn_name, calls))

    print("\n== interpreter level: warmup ==")
    reference_rate = cpy.bytecodes_per_insn
    break_even = break_even_instructions(jit.bc_timeline or [],
                                         reference_rate)
    print("  bytecodes executed: %d" % jit.bytecodes)
    print("  break-even vs cpython after %s instructions" % break_even)

    print("\n== microarchitecture level ==")
    for i, phase in enumerate(PHASE_NAMES):
        window = jit.phase_windows[i]
        if window.instructions > 1000:
            print("  %-10s ipc=%.2f  branch-miss=%.1f%%"
                  % (phase, window.ipc, 100 * window.branch_miss_rate))


if __name__ == "__main__":
    main()
