"""The PinTool facade: one annotation listener feeding all profilers.

This plays the role of the paper's custom PinTool: it attaches to the
machine's annotation stream (tagged nops) and drives the phase tracker,
the bytecode-rate tracker, the AOT-call profiler, and (optionally) the
per-IR-node profiler.
"""

from repro.core import tags
from repro.pintool.aotcalls import AotCallProfiler
from repro.pintool.bcrate import BytecodeRateTracker
from repro.pintool.irprofile import IrNodeProfiler
from repro.pintool.phases import _POP, _PUSH, PhaseTracker


class PinTool:
    """Intercepts cross-layer annotations from a :class:`Machine`.

    Each profiler reacts to a small, known tag set, so the tool
    registers per-tag listeners: the machine dispatches an annotation
    only to the components that care about its tag, instead of fanning
    every event out to every profiler.
    """

    def __init__(self, machine, record_timeline=False, bucket_insns=0,
                 profile_ir_nodes=False, telemetry=None):
        self.machine = machine
        self.phases = PhaseTracker(machine, record_timeline=record_timeline,
                                   telemetry=telemetry)
        self.bcrate = BytecodeRateTracker(machine, bucket_insns=bucket_insns)
        self.aotcalls = AotCallProfiler(machine)
        self.irprofile = IrNodeProfiler() if profile_ir_nodes else None
        self._registrations = []
        for tag in set(_PUSH) | set(_POP):
            self._register(tag, self.phases.on_annot)
        if bucket_insns:
            # Timeline buckets may close mid-run, so no batched variant.
            self._register(tags.DISPATCH, self.bcrate.on_dispatch)
        else:
            self._register(tags.DISPATCH, self.bcrate.on_dispatch_count,
                           run=self.bcrate.on_dispatch_run)
        self._register(tags.JIT_CALL_START, self.aotcalls.on_annot)
        self._register(tags.JIT_CALL_STOP, self.aotcalls.on_annot)
        if self.irprofile is not None:
            self._register(tags.IR_NODE, self.irprofile.on_annot)
            self._register(tags.TRACE_ITER, self.irprofile.on_annot)

    def _register(self, tag, listener, run=None):
        self.machine.add_tag_listener(tag, listener, run=run)
        self._registrations.append((tag, listener))

    def on_annot(self, tag, payload):
        """Catch-all fan-out (kept for direct/manual use)."""
        self.phases.on_annot(tag, payload)
        self.bcrate.on_annot(tag, payload)
        self.aotcalls.on_annot(tag, payload)
        if self.irprofile is not None:
            self.irprofile.on_annot(tag, payload)

    def finish(self):
        """Close all open measurement windows; call once at end of run."""
        self.phases.finish()
        self.bcrate.finish()

    def detach(self):
        for tag, listener in self._registrations:
            self.machine.remove_tag_listener(tag, listener)
        self._registrations = []
