"""Build, cache and load the native backend's compiled C runtime.

The C source (:mod:`repro.backend.cgen`) is compiled once per content
digest with cffi in out-of-line API mode and cached as a shared object
under the user cache directory (override with ``REPRO_NATIVE_CACHE``),
so every later process — including ``run_many`` worker processes — just
dlopens it.  Concurrent first builds race benignly: each builds into a
private temp dir and installs with an atomic :func:`os.replace`.

Any failure (no cffi, no C compiler, unwritable cache, import error)
is recorded and the backend degrades to ``fast`` — selection happens in
:func:`repro.backend.machine_class`, which consults
:func:`machine_class_or_none` / :func:`unavailable_reason`.
"""

import importlib.machinery
import importlib.util
import os
import shutil
import tempfile

_EXT = importlib.machinery.EXTENSION_SUFFIXES[0]

_loaded = None        # (ffi, lib) once the runtime is up
_machine_class = None
_probed = False
_reason = None


def cache_dir():
    base = os.environ.get("REPRO_NATIVE_CACHE")
    if base:
        return base
    xdg = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache")
    return os.path.join(xdg, "repro-native")


def _import_ext(modname, path):
    spec = importlib.util.spec_from_file_location(modname, path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod.ffi, mod.lib


def load():
    """Return ``(ffi, lib)`` for the compiled runtime, building if needed."""
    global _loaded
    if _loaded is not None:
        return _loaded
    from repro.backend import cgen
    modname = "_repro_native_" + cgen.digest()
    target = os.path.join(cache_dir(), modname + _EXT)
    if not os.path.exists(target):
        _build(modname, target)
    _loaded = _import_ext(modname, target)
    return _loaded


def _build(modname, target):
    import cffi

    from repro.backend import cgen
    builder = cffi.FFI()
    builder.cdef(cgen.CDEF)
    builder.set_source(modname, cgen.SOURCE,
                       extra_compile_args=cgen.COMPILE_ARGS)
    directory = os.path.dirname(target)
    os.makedirs(directory, exist_ok=True)
    tmpdir = tempfile.mkdtemp(prefix=modname + "-build-", dir=directory)
    try:
        sofile = builder.compile(tmpdir=tmpdir, verbose=False)
        os.replace(sofile, target)
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)


def machine_class_or_none():
    """NativeMachine if the runtime builds and loads here, else None."""
    global _probed, _machine_class, _reason
    if _probed:
        return _machine_class
    _probed = True
    try:
        # Importing the module builds/loads the C runtime via load().
        from repro.backend.nativemachine import NativeMachine
        _machine_class = NativeMachine
    except Exception as exc:  # degrade to fast, keep the reason
        _reason = "%s: %s" % (type(exc).__name__, exc)
        _machine_class = None
    return _machine_class


def unavailable_reason():
    """Why the last probe failed, or None if native is available."""
    return _reason
