"""Effect/purity cross-checker (``EFF0xx``).

Statically reconciles the three places where an IR op's semantics are
declared — the ``effects=`` annotations in :mod:`repro.jit.ir`, the
concrete-semantics tables ``EVAL``/``FOLDABLE`` in
:mod:`repro.jit.semantics`, and the optimizer's heap-invalidation
behaviour — so a drive-by edit to one layer cannot silently disagree
with the others.  The fold-safety rule (``EFF003``) is checked against
a *probed* raising set (:func:`repro.analysis.opspec.compute_raising`)
rather than a hand-maintained list: an op whose concrete semantics can
raise on in-domain constants must not be const-folded at optimization
time, because the fold would crash the compiler instead of deferring
the error to execution where the guest-level handler lives.

Every input is overridable by keyword so regression tests can replay a
historical bug (e.g. the shipped ``FOLDABLE`` that included the raising
shift/sqrt/cast ops) and assert the checker catches it.
"""

from repro.analysis import opspec
from repro.analysis.diagnostics import Report
from repro.jit import ir
from repro.jit import semantics

_PASS = "effects"


def _names(opnums):
    return ", ".join(sorted(ir.OP_NAMES[opnum] for opnum in opnums))


def check_effects(report=None, *, op_effects=None, eval_map=None,
                  foldable=None, pure_ops=None, effect_ops=None,
                  ovf_ops=None, guards=None, categories=None,
                  invalidation_ops=None, raising=None):
    """Run every EFF rule; returns the :class:`Report`."""
    if report is None:
        report = Report("effect/purity declarations")
    op_effects = op_effects if op_effects is not None else ir.OP_EFFECTS
    eval_map = eval_map if eval_map is not None else semantics.EVAL
    foldable = foldable if foldable is not None else semantics.FOLDABLE
    pure_ops = pure_ops if pure_ops is not None else ir.PURE_OPS
    effect_ops = effect_ops if effect_ops is not None else ir.EFFECT_OPS
    ovf_ops = ovf_ops if ovf_ops is not None else ir.OVF_OPS
    guards = guards if guards is not None else ir.GUARDS
    categories = categories if categories is not None else ir.OP_CATEGORIES
    if invalidation_ops is None:
        invalidation_ops = opspec.OPT_INVALIDATION_OPS
    if raising is None:
        raising = (opspec.RAISING if eval_map is semantics.EVAL
                   else opspec.compute_raising(eval_map))

    def error(code, message):
        report.error(code, message, where="jit.ir/jit.semantics",
                     pass_name=_PASS)

    # EFF001: an op with declared effects has no pure concrete
    # semantics — it must appear in none of the purity tables.
    for opnum in sorted(effect_ops):
        tables = []
        if opnum in eval_map:
            tables.append("EVAL")
        if opnum in foldable:
            tables.append("FOLDABLE")
        if opnum in pure_ops and opnum != ir.CALL_PURE:
            tables.append("PURE_OPS")
        if tables:
            error("EFF001", "%s declares effects=%r but appears in %s"
                  % (ir.OP_NAMES[opnum], op_effects[opnum],
                     "/".join(tables)))

    # EFF002: FOLDABLE must be a subset of EVAL (a fold needs concrete
    # semantics) and disjoint from the effect ops.
    orphans = foldable - set(eval_map)
    if orphans:
        error("EFF002", "FOLDABLE ops without EVAL semantics: %s"
              % _names(orphans))
    overlap = foldable & effect_ops
    if overlap:
        error("EFF002", "FOLDABLE contains effectful ops: %s"
              % _names(overlap))

    # EFF003: fold safety.  Probing EVAL with adversarial witnesses
    # (zero divisors, negative shifts, inf/nan) yields the ops whose
    # fold can raise; none may be in FOLDABLE.
    for opnum in sorted(foldable & raising):
        error("EFF003", "%s is in FOLDABLE but its concrete semantics "
              "raise on in-domain constants (probed); a const-const "
              "fold would crash the optimizer" % ir.OP_NAMES[opnum])

    # EFF004: guards are control, not computation.
    for opnum in sorted(guards):
        if op_effects[opnum] != "none":
            error("EFF004", "guard %s declares effects=%r"
                  % (ir.OP_NAMES[opnum], op_effects[opnum]))
        if opnum in eval_map or opnum in foldable or opnum in pure_ops:
            error("EFF004", "guard %s appears in a purity table"
                  % ir.OP_NAMES[opnum])

    # EFF005: the optimizer's heap-invalidation points must be exactly
    # the declared effect ops — a missing invalidation is unsound
    # forwarding, an extra one is a lost optimization.
    missing = effect_ops - invalidation_ops
    if missing:
        error("EFF005", "declared effect ops the optimizer does not "
              "invalidate on: %s" % _names(missing))
    extra = invalidation_ops - effect_ops
    if extra:
        error("EFF005", "optimizer invalidates on ops declared "
              "effect-free: %s" % _names(extra))

    # EFF006: overflow-checked arithmetic must have raising concrete
    # semantics (that is its contract), stay out of FOLDABLE, and be
    # integer-category.
    for opnum in sorted(ovf_ops):
        if opnum not in eval_map:
            error("EFF006", "%s has no EVAL entry" % ir.OP_NAMES[opnum])
        elif opnum not in raising:
            error("EFF006", "%s never raised under probing — it is "
                  "not overflow-checked" % ir.OP_NAMES[opnum])
        if opnum in foldable:
            error("EFF006", "overflow-checked %s is in FOLDABLE"
                  % ir.OP_NAMES[opnum])
        if categories[opnum] != ir.CAT_INT:
            error("EFF006", "%s is overflow-checked but category %r"
                  % (ir.OP_NAMES[opnum], categories[opnum]))

    # EFF007: effects/category coherence.
    for opnum in range(ir.N_OPS):
        effects = op_effects[opnum]
        category = categories[opnum]
        if effects == "heap" and category != ir.CAT_MEMOP:
            error("EFF007", "%s declares heap effects but category %r"
                  % (ir.OP_NAMES[opnum], category))
        if effects == "any" and category != ir.CAT_CALL:
            error("EFF007", "%s declares arbitrary effects but "
                  "category %r" % (ir.OP_NAMES[opnum], category))
        if effects not in ("none", "heap", "any"):
            error("EFF007", "%s declares unknown effects %r"
                  % (ir.OP_NAMES[opnum], effects))

    # EFF008: EVAL arity must match the verifier's operand specs (they
    # are derived from EVAL for pure ops, so a mismatch means an
    # explicit spec override drifted from the semantics).
    for opnum in sorted(eval_map):
        spec = opspec.OPSPEC.get(opnum)
        if spec is None or spec.arity is None:
            continue
        arity = opspec.eval_arity(opnum, eval_map)
        if arity != spec.arity:
            error("EFF008", "%s: EVAL takes %d args but the op spec "
                  "says %d" % (ir.OP_NAMES[opnum], arity, spec.arity))
        if spec.kinds is not None and len(spec.kinds) != spec.arity:
            error("EFF008", "%s: %d operand kinds for arity %d"
                  % (ir.OP_NAMES[opnum], len(spec.kinds), spec.arity))

    # EFF010: purity tables must not intersect effects or guards.
    overlap = (pure_ops & effect_ops) - {ir.CALL_PURE}
    if overlap:
        error("EFF010", "PURE_OPS contains effectful ops: %s"
              % _names(overlap))
    overlap = pure_ops & guards
    if overlap:
        error("EFF010", "PURE_OPS contains guards: %s" % _names(overlap))
    return report
