"""Framework-facing interpreter API: LLOps, JitDriver, AOT registry."""
