"""Event-program equivalence: resident programs are bit-identical.

The event-program layer (``config.eventprog``) batches already-fused
machine event sequences — quickened dispatch runs, tier-1 threaded
runs, and compiled-trace replay — into resident programs executed by
one ``Machine.exec_program`` call each.  Like quickening and the
compiled backends, the layer must not change simulation results AT
ALL: every counter (the float ``cycles`` accumulator compared by
``==`` and ``repr``), every phase window, the jitlog event stream and
guest stdout have to match the eventprog-off run bit for bit — on real
benchmarks and generated difftest programs, on every backend, with
quickening and the tier both on and off.

Style of ``tests/backend/test_backend_equivalence.py``: run the same
workload twice with only ``config.eventprog`` flipped and compare the
full measurement set field by field.
"""

import pytest

from repro import backend as backend_pkg
from repro.backend import eventprog as eventprog_mod
from repro.benchprogs import registry
from repro.difftest import oracle
from repro.difftest.generator import generate_program
from repro.harness import runner

NATIVE_REASON = backend_pkg.native_unavailable_reason()

BACKENDS = ["python", "fast"] + (
    ["native"] if NATIVE_REASON is None else
    [pytest.param("native",
                  marks=pytest.mark.skip(reason="native backend "
                                         "unavailable: " + NATIVE_REASON))])


def _measure(program_name, language, vm_kind, backend, eventprog,
             tier1=None):
    program = (registry.py_program(program_name) if language == "python"
               else registry.rkt_program(program_name))
    result = runner.run_program(program, vm_kind, use_cache=False,
                                backend=backend, tier1=tier1,
                                eventprog=eventprog)
    phases = tuple(
        (w.instructions, w.cycles, w.branches, w.branch_misses)
        for w in result.phase_windows) if result.phase_windows else None
    jitlog = (repr(result.jitlog_obj.events)
              if result.jitlog_obj is not None else None)
    return {
        "instructions": result.instructions,
        "cycles": result.cycles,
        "cycles_repr": repr(result.cycles),
        "ipc": repr(result.ipc),
        "mpki": repr(result.mpki),
        "truncated": result.truncated,
        "bytecodes": result.bytecodes,
        "output": result.output,
        "phase_windows": phases,
        "phase_breakdown": tuple(sorted(result.phase_breakdown.items())),
        "jitlog": jitlog,
    }


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("program,language,vm_kind,tier1", [
    ("richards", "python", "pypy", None),
    ("richards", "python", "pypy_nojit", None),
    ("crypto_pyaes", "python", "cpython", None),
    ("nbody", "python", "pypy", True),
    ("fannkuch", "racket", "pycket", None),
    ("fannkuch", "racket", "racket", True),
])
def test_benchmarks_bit_identical(program, language, vm_kind, tier1,
                                  backend):
    reference = _measure(program, language, vm_kind, backend,
                         eventprog=False, tier1=tier1)
    resident = _measure(program, language, vm_kind, backend,
                        eventprog=True, tier1=tier1)
    for field in reference:
        assert resident[field] == reference[field], \
            "%s differs with event-programs on (%s backend)" \
            % (field, backend)


@pytest.mark.parametrize("quicken", [True, False],
                         ids=["quicken", "noquicken"])
@pytest.mark.parametrize("seed", range(9200, 9220))
def test_generated_programs_bit_identical(seed, quicken):
    """Difftest-generated TinyPy programs: JIT runs (the trace-codegen
    transform plus the quickened interpreter glue) with event-programs
    on must agree with the off run on every machine counter."""
    source = generate_program(seed)
    ref = oracle.run_interp(source, jit=True, threshold=7,
                            bridge_threshold=2, quicken=quicken,
                            eventprog=False)
    run = oracle.run_interp(source, jit=True, threshold=7,
                            bridge_threshold=2, quicken=quicken,
                            eventprog=True, name="eventprog")
    assert run.output == ref.output
    assert (run.error is None) == (ref.error is None)
    assert run.truncated == ref.truncated
    for field in ("instructions", "cycles", "branches", "branch_misses",
                  "loads", "stores", "annotations"):
        a = getattr(ref.machine, field)
        b = getattr(run.machine, field)
        assert a == b, (field, quicken)
        assert repr(a) == repr(b), (field, quicken)
    assert tuple(ref.machine.class_counts) == \
        tuple(run.machine.class_counts)
    assert ref.tool.bcrate.bytecodes == run.tool.bcrate.bytecodes
    if ref.ctx is not None and run.ctx is not None:
        assert repr(ref.ctx.jitlog.events) == repr(run.ctx.jitlog.events)
        a_traces = [(repr(t.greenkey), list(t.op_exec_counts))
                    for t in ref.ctx.registry.traces]
        b_traces = [(repr(t.greenkey), list(t.op_exec_counts))
                    for t in run.ctx.registry.traces]
        assert a_traces == b_traces


@pytest.mark.parametrize("backend,tier1", [
    ("python", None), ("fast", True),
] + ([("native", None), ("native", True)] if NATIVE_REASON is None
     else []))
def test_generated_tiered_runs_bit_identical(backend, tier1):
    """Direct-mode sweep over backend x tier1: the quickened-run and
    threaded-run program paths must be invisible on every backend."""
    for seed in range(9230, 9235):
        source = generate_program(seed)
        ref = oracle.run_interp(source, jit=False, backend=backend,
                                tier1=tier1, eventprog=False)
        run = oracle.run_interp(source, jit=False, backend=backend,
                                tier1=tier1, eventprog=True,
                                name="eventprog")
        assert run.output == ref.output, seed
        for field in ("instructions", "cycles", "branches",
                      "branch_misses", "loads", "stores", "annotations"):
            a = getattr(ref.machine, field)
            b = getattr(run.machine, field)
            assert a == b, (field, seed)
            assert repr(a) == repr(b), (field, seed)
        assert tuple(ref.machine.class_counts) == \
            tuple(run.machine.class_counts), seed


def test_eventprog_actually_engaged():
    """The equivalence above must compare distinct execution paths —
    guard against a silent gate making it vacuous."""
    eventprog_mod.reset_stats()
    result = runner.run_program("richards", "pypy", use_cache=False,
                                eventprog=True)
    stats = result.eventprog_stats
    assert stats is not None
    assert stats.get("programs", 0) > 0
    assert stats.get("events", 0) > 0
    # The trace transform collapsed per-event kernel calls into
    # resident program calls.
    assert stats.get("trace_segments", 0) > 0
    assert stats.get("trace_calls_after", 0) < \
        stats.get("trace_calls_before", 0)
    off = runner.run_program("richards", "pypy", use_cache=False,
                             eventprog=False)
    assert off.eventprog_stats is None
    assert off.instructions == result.instructions
    assert repr(off.cycles) == repr(result.cycles)


def test_oracle_runs_eventprog_engines():
    """check_program exercises the eventprog engines and the paired
    equivalence check end to end on a small program."""
    source = (
        "def spin(n):\n"
        "    total = 0\n"
        "    i = 0\n"
        "    while i < n:\n"
        "        total = total + i\n"
        "        i = i + 1\n"
        "    return total\n"
        "print(spin(300))\n"
    )
    report = oracle.check_program(source, thresholds=(7,),
                                  check_store=False)
    names = [run.name for run in report.runs]
    assert "eventprog" in names
    assert "eventprog-jit@7" in names
    assert report.ok, report.summary()
