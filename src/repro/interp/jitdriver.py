"""The JitDriver: hot-loop detection and tracing orchestration.

Guest interpreters call two hooks (mirroring RPython's ``jit_merge_point``
and ``can_enter_jit``):

* :meth:`loop_header` at every backward jump, *after* updating
  ``frame.pc`` to the loop-header pc.  This is where hot counters are
  bumped, compiled loops are entered, and tracing is started.

* :meth:`trace_dispatch` at the top of the dispatch loop whenever
  ``ctx.tracer`` is active.  This records a ``debug_merge_point`` with a
  resume snapshot, detects loop closure and cross-trace jumps, and
  cleanly aborts dead traces at a bytecode boundary.

The interpreter must keep an explicit frame stack in ``interp.frames``
(each frame exposing ``code``, ``pc``, ``locals``, ``stack``) so that
resume snapshots and deoptimization can be expressed as plain data.
"""

from repro.interp.objects import TBox
from repro.jit import ir
from repro.jit.executor import execute
from repro.jit.trace import BRIDGE, LOOP
from repro.jit.tracer import MetaTracer

# loop_header outcomes.
CONTINUE = 0
DEOPTED = 1


class JitDriver(object):
    """Per-VM JIT orchestration state."""

    def __init__(self, ctx):
        self.ctx = ctx
        self.cfg = ctx.config.jit
        self.registry = ctx.registry
        # Telemetry session or None; kept as a direct attribute so the
        # disabled path in hot hooks is one load + identity check.
        self.telemetry = ctx.telemetry
        self.hot_counters = {}
        self.abort_counts = {}
        # Baseline threaded-code tier (repro.interp.tier1), or None when
        # config.tier1 is off.  Installed by the guest VM constructor;
        # kept on the driver because the promotion events are the same
        # profiling events the hot counters use.
        self.tier = None
        # True while a tracer is suspended for a call_assembler body:
        # no new trace/bridge recording may start (it would unwrap the
        # suspended tracer's boxed frames).
        self.paused_tracing = False

    # -- interpreter hooks --------------------------------------------------------

    def loop_header(self, interp, frame):
        """Called at each guest backward jump (``can_enter_jit``)."""
        tier = self.tier
        if tier is not None and self.ctx.tracer is None \
                and frame.code not in tier.compiled:
            # Tier-1 promotion counting runs below the JIT (and with the
            # JIT disabled): the same profiling event, a lower threshold.
            tier.bump(interp, frame.code)
        if not self.cfg.enabled or self.ctx.tracer is not None:
            return CONTINUE
        if self.paused_tracing:
            # Inside a call_assembler body: existing traces may run, but
            # no new recording may begin.
            key = (frame.code, frame.pc)
            trace = self.registry.by_greenkey.get(key)
            if trace is not None:
                return self._run(interp, trace, frame)
            return CONTINUE
        key = (frame.code, frame.pc)
        trace = self.registry.by_greenkey.get(key)
        if trace is not None:
            return self._run(interp, trace, frame)
        if key in self.registry.blacklist:
            return CONTINUE
        count = self.hot_counters.get(key, 0) + 1
        if count >= self.cfg.hot_loop_threshold:
            self.hot_counters[key] = 0
            self._start_tracing(interp, key)
        else:
            self.hot_counters[key] = count
        return CONTINUE

    def trace_dispatch(self, interp, frame):
        """Called at every dispatch iteration while tracing."""
        tracer = self.ctx.tracer
        if tracer.dead is not None:
            self._abort(tracer, tracer.dead)
            return CONTINUE
        depth = len(interp.frames)
        root_depth = tracer.root_depth
        if depth <= root_depth:
            self._abort(tracer, "root frame returned")
            return CONTINUE
        key = (frame.code, frame.pc)
        if depth == root_depth + 1:
            if key == tracer.greenkey and tracer.merge_points_seen > 0 \
                    and tracer.kind == LOOP:
                trace = tracer.close_loop()
                return self._run(interp, trace, frame)
            other = self.registry.by_greenkey.get(key)
            if other is not None and tracer.merge_points_seen > 0:
                # The current frame state is exactly ``other``'s entry
                # state, so enter the target loop directly.
                tracer.close_to_trace(other)
                return self._run(interp, other, frame)
            if (tracer.kind == BRIDGE and key == tracer.greenkey
                    and tracer.merge_points_seen > 0):
                # A bridge that loops back to a not-yet-compiled header:
                # give up (the header's own loop will be traced later).
                self._abort(tracer, "bridge looped")
                return CONTINUE
        else:
            if len(interp.frames) - root_depth > self.cfg.max_inline_depth:
                self._abort(tracer, "inlining too deep")
                return CONTINUE
            other = self.registry.by_greenkey.get(key)
            if other is not None:
                # An already-compiled inner loop inside an inlined frame:
                # emit call_assembler — run the callee frame to
                # completion (using its compiled loop) and record the
                # call as one residual operation, exactly as RPython
                # stitches nested/recursive compiled loops together.
                if hasattr(interp, "run_frame_to_completion"):
                    self._record_call_assembler(interp, tracer, frame)
                    return DEOPTED  # frame state changed: re-dispatch
                self._abort(tracer, "inner compiled loop")
                return CONTINUE
        tracer.record_merge_point(key)
        return CONTINUE

    @property
    def tracing(self):
        return self.ctx.tracer is not None

    # -- internals -------------------------------------------------------------------

    def _start_tracing(self, interp, key):
        t = self.telemetry
        if t is not None:
            t.count("interp.jitdriver.hot_loops")
        tracer = MetaTracer(
            self.ctx, LOOP, key, root_depth=len(interp.frames) - 1,
        )
        tracer.begin(interp)

    def _start_bridge(self, interp, guard):
        # Root the bridge at the *outermost* frame of the guard's resume
        # snapshot: the bridge's virtual frame stack then matches the
        # guard's exactly (its entry values are the flattened snapshot),
        # returns from inlined frames stay above the root, and the
        # bridge can close by jumping to the enclosing loop.
        t = self.telemetry
        if t is not None:
            t.count("interp.jitdriver.hot_guards")
        n_frames = len(guard.snapshot.frames)
        key = (interp.frames[-1].code, interp.frames[-1].pc)
        tracer = MetaTracer(
            self.ctx, BRIDGE, key,
            root_depth=len(interp.frames) - n_frames,
            parent_guard=guard,
        )
        tracer.begin(interp)

    def _abort(self, tracer, reason):
        tracer.abort(reason)
        key = tracer.greenkey
        if tracer.kind == LOOP:
            count = self.abort_counts.get(key, 0) + 1
            self.abort_counts[key] = count
            if count >= self.cfg.max_aborts:
                self.registry.blacklist.add(key)
                t = self.telemetry
                if t is not None:
                    t.count("interp.jitdriver.blacklisted_loops")
                if self.tier is not None:
                    # Control flow irregular enough to defeat the tracer
                    # also defeats threaded code's monomorphic-dispatch
                    # assumption: demote the code object and re-profile.
                    self.tier.invalidate(key[0])
        else:
            guard = tracer.parent_guard
            if guard is not None and guard.bridge is None:
                guard.bridge = "blacklisted"

    def _record_call_assembler(self, interp, tracer, frame):
        """Record a call_assembler op for the current (inlined) frame.

        The tracer is suspended, the callee frame runs to completion in
        direct mode (entering its compiled loop), and the recorded op
        replays that via :class:`CallAssemblerToken` at trace-execution
        time.
        """
        ctx = self.ctx

        def ir_of(value):
            if type(value) is TBox:
                if value.owner is not tracer:
                    tracer.dead = "stale trace box"
                    return ir.Const(value.value)
                return value.ir
            return ir.Const(value)

        args = [ir_of(v) for v in frame.locals]
        args.extend(ir_of(v) for v in frame.stack)
        token = CallAssemblerToken(
            interp, frame.code, frame.pc, len(frame.locals),
            len(frame.stack), getattr(frame, "snapshot_extra", None))
        op = tracer.record(ir.CALL_ASSEMBLER, args, token)
        tracer.mark_hazard()
        tracer.invalidate_caches()
        # Suspend recording; run the callee concretely (unboxed).
        from repro.interp.objects import unwrap_frame

        unwrap_frame(frame)
        caller = interp.frames[-2] if len(interp.frames) >= 2 else None
        caller_depth = len(caller.stack) if caller is not None else 0
        ctx.tracer = None
        was_paused = self.paused_tracing
        self.paused_tracing = True
        try:
            interp.run_to_depth(len(interp.frames) - 1)
        finally:
            self.paused_tracing = was_paused
            ctx.tracer = tracer
        # The callee's return value (if any) landed on the caller's
        # stack as a raw value: link it to the call_assembler op.
        if caller is not None and len(caller.stack) == caller_depth + 1:
            caller.stack[-1] = TBox(caller.stack[-1], op, tracer)

    def _run(self, interp, trace, frame):
        """Execute a compiled trace from the current frame state."""
        t = self.telemetry
        if t is not None:
            t.count("interp.jitdriver.trace_entries")
        entry = list(frame.locals)
        entry.extend(frame.stack)
        result = execute(self.ctx, trace, entry)
        if t is not None:
            t.count("interp.jitdriver.deopts")
        self._apply_deopt(interp, result.deopt)
        if result.bridge_request is not None and self.ctx.tracer is None \
                and not self.paused_tracing:
            self._start_bridge(interp, result.bridge_request)
        return DEOPTED

    def _apply_deopt(self, interp, deopt):
        root_depth = len(interp.frames) - 1
        new_frames = [
            interp.make_frame(code, pc, locals_values, stack_values, extra)
            for code, pc, locals_values, stack_values, extra in deopt.frames
        ]
        interp.frames[root_depth:] = new_frames


class CallAssemblerToken(object):
    """Runtime payload of a call_assembler op: rebuild the callee frame
    and run it to completion (entering its compiled loop)."""

    def __init__(self, interp, code, pc, n_locals, n_stack, extra):
        self.interp = interp
        self.code = code
        self.pc = pc
        self.n_locals = n_locals
        self.n_stack = n_stack
        self.extra = extra

    def __call__(self, args):
        locals_values = list(args[:self.n_locals])
        stack_values = list(args[self.n_locals:])
        # No new trace/bridge recording may begin inside this frame
        # scope: a recording crossing the scope boundary would capture
        # state of frames that die when the call returns.
        driver = self.interp.driver
        was_paused = driver.paused_tracing
        driver.paused_tracing = True
        try:
            return self.interp.run_frame_to_completion(
                self.code, self.pc, locals_values, stack_values,
                self.extra)
        finally:
            driver.paused_tracing = was_paused

    def __repr__(self):
        return "<call_assembler %s:%d>" % (
            getattr(self.code, "name", self.code), self.pc)
