"""The ``native`` backend: machine state and hot kernels in compiled C.

A :class:`NativeMachine` keeps every piece of mutable simulation state —
counters, the gshare/bimodal table, BTB, RAS, both cache levels' tag
arrays and the per-block cost/count arrays — in one C ``SimState``
struct, and retires events by calling the cffi-compiled ``rt_*``
kernels of :mod:`repro.backend.cgen`.  Python keeps exactly the parts
that must stay Python:

* **listener and limit gating** — each event wrapper replicates the
  reference kernel's gating, calls listeners between the C primitives
  at the reference notification points, and raises
  :class:`SimulationLimitReached` from the C limit flags;
* **marshaling** — block descriptors are registered into the C cost
  arrays once (``descr.bid`` / ``descr.fid`` index them) and static
  dispatch/quicken run tables are flattened into C arrays once per
  table (identity-keyed; the cache entry pins the tuple so its ``id``
  cannot be recycled);
* **counter access** — the public counter attributes become properties
  over the struct fields, so every external reader (harness, PinTool,
  telemetry, difftest) sees the C state transparently.

Two layers: :class:`NativeMachineBase` holds the straightforward
wrappers (the reference for gating semantics), and :class:`NativeMachine`
shadows the hot ones with per-instance closures — the FastMachine trick
— that bind the struct, the C functions, the listener-gate cache
(keyed on ``_listener_epoch``) and ``max_instructions`` as closure
locals.  Listener mutations are epoch-gated; :meth:`reset`
re-specializes; mutating ``max_instructions`` mid-life requires
``_specialize()`` (nothing in the repo does — the harness and the
oracle set it on the config before construction).

The base class still builds its Python predictor/cache objects, but on
a native machine they are dead weight after construction: their state
stays frozen at reset values while the C tables evolve.  White-box
tests that introspect ``machine.cond_predictor`` etc. therefore run
under the ``python``/``fast`` backends; black-box equivalence over the
public counters is what tests/backend/ pins, bit for bit.
"""

from repro.backend import eventprog as _eventprog
from repro.backend import native
from repro.isa import insns
from repro.uarch.blocks import fold_class_counts
from repro.uarch.machine import (
    CounterSnapshot,
    Machine,
    SimulationLimitReached,
)

ffi, lib = native.load()

_PRED_KINDS = {"gshare": 0, "bimodal": 1, "always_taken": 2}
_LLONG = ffi.sizeof("long long")


class _Primitive(object):
    """Gate-cache sentinel: route this tag through the reference path."""

    __slots__ = ()


_PRIMITIVE = _Primitive()


def _st_prop(name):
    """Property redirecting a Machine slot to the SimState field."""
    def fget(self):
        return getattr(self._st, name)

    def fset(self, value):
        setattr(self._st, name, value)

    return property(fget, fset)


class NativeMachineBase(Machine):
    """Machine whose hot loop runs in compiled C (see module doc)."""

    __slots__ = (
        "_st", "_keep", "_blk_cap", "_fus_cap", "_ndescrs", "_nfused",
        "_drun_cache", "_qrun_cache", "_mix_cache", "_eprog_cache",
        "_gates",
    )

    backend = "native"

    # Counter slots of the base class redirected into the C struct.
    # Machine.__init__ / reset() write through these like any other
    # attribute; external readers never see Python-side shadows.
    instructions = _st_prop("instructions")
    cycles = _st_prop("cycles")
    branches = _st_prop("branches")
    branch_misses = _st_prop("branch_misses")
    loads = _st_prop("loads")
    stores = _st_prop("stores")
    annotations = _st_prop("annotations")
    max_instructions = _st_prop("max_instructions")
    bulk_miss_rate = _st_prop("bulk_miss_rate")
    _bulk_miss_carry = _st_prop("bulk_miss_carry")

    def __init__(self, config, predictor="gshare"):
        self._init_native(config, predictor)
        super().__init__(config, predictor)

    def _init_native(self, config, predictor):
        """Allocate and populate the C state (before Machine.__init__,
        whose counter writes already go through the struct)."""
        config.validate()
        ucfg = config.uarch
        st = ffi.new("SimState *")
        keep = {}
        self._st = st
        self._keep = keep

        st.inv_width = 1.0 / ucfg.issue_width
        st.mispredict_penalty = float(ucfg.mispredict_penalty)
        stalls = [0.0] * insns.N_CLASSES
        stalls[insns.MUL] = ucfg.stall_mul
        stalls[insns.DIV] = ucfg.stall_div
        stalls[insns.FPU] = ucfg.stall_fpu
        stalls[insns.LOAD] = ucfg.stall_load
        stalls[insns.STORE] = ucfg.stall_store
        for i, stall in enumerate(stalls):
            st.stalls[i] = stall
        st.load_cost = st.inv_width + stalls[insns.LOAD]
        st.store_cost = st.inv_width + stalls[insns.STORE]

        # Conditional predictor (unknown kinds fall through: the base
        # constructor raises before any event can run).
        st.pred_kind = _PRED_KINDS.get(predictor, 2)
        if predictor in ("gshare", "bimodal"):
            size = 1 << ucfg.gshare_bits
            st.g_mask = size - 1
            table = ffi.new("unsigned char[]", size)
            ffi.memmove(table, b"\x01" * size, size)  # weakly not-taken
            st.g_table = keep["g_table"] = table
        else:
            st.g_mask = 0
            st.g_table = ffi.NULL
        st.g_history = 0

        st.btb_mask = ucfg.btb_entries - 1
        st.btb_targets = keep["btb_targets"] = ffi.new(
            "long long[]", ucfg.btb_entries)
        st.btb_history = 0

        st.ras_entries = ucfg.ras_entries
        st.ras_stack = keep["ras_stack"] = ffi.new(
            "long long[]", ucfg.ras_entries)
        st.ras_top = 0

        # Two-level cache: same geometry derivation as SetAssocCache;
        # tag -1 marks an empty way (heap addresses are nonnegative).
        st.line_shift = ucfg.l1d_line.bit_length() - 1
        for prefix, kib, assoc in (("l1", ucfg.l1d_kib, ucfg.l1d_assoc),
                                   ("l2", ucfg.l2_kib, ucfg.l2_assoc)):
            n_sets = max(1, (kib * 1024 // ucfg.l1d_line) // assoc)
            n_ways = n_sets * assoc
            tags = ffi.new("long long[]", n_ways)
            ffi.memmove(tags, b"\xff" * (n_ways * _LLONG), n_ways * _LLONG)
            setattr(st, prefix + "_assoc", assoc)
            setattr(st, prefix + "_set_mask", n_sets - 1)
            setattr(st, prefix + "_tags", tags)
            keep[prefix + "_tags"] = tags
        st.l1_penalty = float(ucfg.l1d_miss_penalty)
        st.l2_penalty = float(ucfg.l2_miss_penalty)

        # Block/fused descriptor cost arrays (grown on demand).
        self._ndescrs = []
        self._nfused = []
        self._blk_cap = 0
        self._fus_cap = 0
        self._grow_blocks(64)
        self._grow_fused(16)
        self._drun_cache = {}
        self._qrun_cache = {}
        self._mix_cache = {}
        self._eprog_cache = {}
        # Per-tag listener-gate decisions for the specialized kernels;
        # invalidated eagerly by the listener mutators below (cheaper
        # than an epoch compare on every gated call).
        self._gates = {}

    # -- listener management (adds gate invalidation) -------------------------

    def add_annot_listener(self, listener):
        Machine.add_annot_listener(self, listener)
        self._gates.clear()

    def remove_annot_listener(self, listener):
        Machine.remove_annot_listener(self, listener)
        self._gates.clear()

    def add_tag_listener(self, tag, listener, run=None):
        Machine.add_tag_listener(self, tag, listener, run)
        self._gates.clear()

    def remove_tag_listener(self, tag, listener):
        Machine.remove_tag_listener(self, tag, listener)
        self._gates.clear()

    _BLOCK_ARRAYS = (
        ("b_n_insns", "long long[]"), ("b_insn_cycles", "double[]"),
        ("b_stall_cycles", "double[]"), ("b_flat_cycles", "double[]"),
        ("b_bulk_count", "long long[]"), ("b_count", "long long[]"),
    )
    _FUSED_ARRAYS = (
        ("f_block", "int[]"), ("f_branches", "long long[]"),
        ("f_miss_rate", "double[]"), ("f_branch_cycles", "double[]"),
        ("f_count", "long long[]"),
    )

    def _grow(self, arrays, old_cap, new_cap):
        st = self._st
        keep = self._keep
        for name, ctype in arrays:
            new = ffi.new(ctype, new_cap)
            if old_cap:
                ffi.memmove(new, getattr(st, name),
                            old_cap * ffi.sizeof(ctype[:-2]))
            setattr(st, name, new)
            keep[name] = new  # old array freed once unreferenced

    def _grow_blocks(self, new_cap=None):
        new_cap = new_cap or self._blk_cap * 2
        self._grow(self._BLOCK_ARRAYS, self._blk_cap, new_cap)
        self._blk_cap = new_cap

    def _grow_fused(self, new_cap=None):
        new_cap = new_cap or self._fus_cap * 2
        self._grow(self._FUSED_ARRAYS, self._fus_cap, new_cap)
        self._fus_cap = new_cap

    def _register_block(self, descr):
        st = self._st
        bid = st.n_blocks
        if bid >= self._blk_cap:
            self._grow_blocks()
        st.b_n_insns[bid] = descr.n_insns
        st.b_insn_cycles[bid] = descr.insn_cycles
        st.b_stall_cycles[bid] = descr.stall_cycles
        st.b_flat_cycles[bid] = descr.flat_cycles
        st.b_bulk_count[bid] = descr.bulk_count
        st.b_count[bid] = descr.count
        descr.bid = bid
        st.n_blocks = bid + 1
        self._ndescrs.append(descr)
        return bid

    def _register_fused(self, descr):
        st = self._st
        fid = st.n_fused
        if fid >= self._fus_cap:
            self._grow_fused()
        st.f_block[fid] = self._bid(descr.block)
        st.f_branches[fid] = descr.branches
        st.f_miss_rate[fid] = descr.miss_rate
        st.f_branch_cycles[fid] = descr.branch_cycles
        st.f_count[fid] = descr.count
        descr.fid = fid
        st.n_fused = fid + 1
        self._nfused.append(descr)
        return fid

    def _bid(self, descr):
        bid = descr.bid
        if bid is None:
            bid = self._register_block(descr)
        return bid

    def block(self, mix):
        descr = self._block_cache.get(mix)
        if descr is None:
            descr = Machine.block(self, mix)
            self._register_block(descr)
        return descr

    def fused_block(self, mix, branches, miss_rate):
        descr = Machine.fused_block(self, mix, branches, miss_rate)
        if descr.fid is None:
            self._register_fused(descr)
        return descr

    # -- marshaling ---------------------------------------------------------

    def _marshal_mix(self, mix):
        entry = (len(mix),
                 ffi.new("int[]", [klass for klass, _ in mix]),
                 ffi.new("long long[]", [count for _, count in mix]))
        self._mix_cache[mix] = entry
        return entry

    def _marshal_dispatch_run(self, items):
        # The entry pins the tuple, so its id cannot be recycled while
        # the marshaled arrays are alive.
        entry = (
            items, len(items),
            ffi.new("long long[]", [it[0] for it in items]),
            ffi.new("long long[]", [it[1] for it in items]),
            ffi.new("int[]", [self._bid(it[2]) for it in items]),
        )
        self._drun_cache[id(items)] = entry
        return entry

    def _marshal_quick_run(self, items):
        offs = [0]
        blkids = []
        for _, _, blocks in items:
            blkids.extend(self._bid(blk) for blk in blocks)
            offs.append(len(blkids))
        entry = (
            items, len(items),
            ffi.new("long long[]", [it[0] for it in items]),
            ffi.new("long long[]", [it[1] for it in items]),
            ffi.new("int[]", offs),
            ffi.new("int[]", blkids),
        )
        self._qrun_cache[id(items)] = entry
        return entry

    def _marshal_program(self, prog):
        """Lower an EventProgram to its flat rt_exec_program word array.

        Identity-keyed like the run-table marshals; the entry pins the
        program so its id cannot be recycled.  Survives reset (the
        lowering is config-pure, like the registered bids)."""
        words = _eventprog.lower_words(prog, self._bid)
        entry = (prog, len(words), ffi.new("long long[]", words))
        self._eprog_cache[id(prog)] = entry
        return entry

    def _sync_descr_counts(self):
        """Copy C execution counters back into the Python descriptors."""
        b_count = self._st.b_count
        for descr in self._ndescrs:
            descr.count = b_count[descr.bid]
        f_count = self._st.f_count
        for descr in self._nfused:
            descr.count = f_count[descr.fid]

    @property
    def class_counts(self):
        self._sync_descr_counts()
        return fold_class_counts(list(self._st.class_counts),
                                 self._blocks, self._fused)

    def reset(self):
        Machine.reset(self)  # descr.count, dead Python model state
        lib.rt_reset(self._st)
        # Marshaled run tables and registered bids stay valid: reset
        # clears state, not the (config-pure) lowering.

    # -- instruction-stream events ------------------------------------------

    def annot(self, tag, payload=None):
        st = self._st
        limit = lib.rt_annot(st)
        listeners = self._tag_listeners.get(tag)
        if listeners is not None:
            for listener in listeners:
                listener(tag, payload)
        if self._annot_listeners:
            for listener in self._annot_listeners:
                listener(tag, payload)
        if listeners is not None or self._annot_listeners:
            # A listener may itself retire events; re-derive the flag at
            # the reference check point (after all notifications).
            limit = (st.max_instructions
                     and st.instructions >= st.max_instructions)
        if limit:
            raise SimulationLimitReached(st.instructions)

    def annot_run(self, tag, n, payload=None):
        st = self._st
        tag_listeners = self._tag_listeners.get(tag)
        catch_all = self._annot_listeners
        max_instructions = st.max_instructions
        runners = None
        if tag_listeners is not None:
            runners = self._tag_runners.get(tag)
        if (not catch_all
                and (tag_listeners is None or runners is not None)
                and not (max_instructions
                         and st.instructions + n >= max_instructions)):
            lib.rt_annot_batch(st, n)
            if runners:
                for run in runners:
                    run(tag, payload, n)
            return
        for _ in range(n):
            limit = lib.rt_annot(st)
            if tag_listeners is not None:
                for listener in tag_listeners:
                    listener(tag, payload)
            if catch_all:
                for listener in catch_all:
                    listener(tag, payload)
                limit = (max_instructions
                         and st.instructions >= max_instructions)
            if limit:
                raise SimulationLimitReached(st.instructions)

    def exec_mix(self, mix):
        entry = self._mix_cache.get(mix) or self._marshal_mix(mix)
        if lib.rt_exec_mix(self._st, entry[0], entry[1], entry[2]):
            raise SimulationLimitReached(self._st.instructions)

    def exec_block(self, b):
        if lib.rt_exec_block(self._st, self._bid(b)):
            raise SimulationLimitReached(self._st.instructions)

    def exec_fused(self, f):
        fid = f.fid
        if fid is None:
            fid = self._register_fused(f)
        if lib.rt_exec_fused(self._st, fid):
            raise SimulationLimitReached(self._st.instructions)

    def branch(self, pc, taken):
        lib.rt_branch(self._st, pc, 1 if taken else 0)

    def branch_block(self, pc, b):
        if lib.rt_branch_block(self._st, pc, self._bid(b)):
            raise SimulationLimitReached(self._st.instructions)

    def branch_block_annot_run(self, pc, b, tag, n):
        if lib.rt_branch_block(self._st, pc, self._bid(b)):
            raise SimulationLimitReached(self._st.instructions)
        self.annot_run(tag, n)

    def indirect(self, pc, target):
        lib.rt_indirect(self._st, pc, target)

    def call(self, pc):
        lib.rt_call(self._st, pc)

    def ret(self, pc):
        lib.rt_ret(self._st, pc)

    def exec_bulk_branches(self, count, miss_rate):
        if lib.rt_exec_bulk_branches(self._st, count, miss_rate):
            raise SimulationLimitReached(self._st.instructions)

    def load(self, addr):
        lib.rt_load(self._st, addr)

    def store(self, addr):
        lib.rt_store(self._st, addr)

    def load_annot_run(self, addr, tag, n):
        lib.rt_load(self._st, addr)
        self.annot_run(tag, n)

    def store_annot_run(self, addr, tag, n):
        lib.rt_store(self._st, addr)
        self.annot_run(tag, n)

    # -- fused dispatch kernels ---------------------------------------------
    #
    # Gating mirrors the generated reference kernels: the batched C path
    # requires batched listener variants (or no listeners) and a proven
    # in-limit event; otherwise the event is composed from C primitives
    # with listener calls and limit raises at the reference points.

    def dispatch_event(self, tag, b, pc, target):
        st = self._st
        listeners = self._tag_listeners.get(tag)
        runners = None
        if listeners is not None:
            runners = self._tag_runners.get(tag)
        max_instructions = st.max_instructions
        if (self._annot_listeners
                or (listeners is not None and runners is None)
                or (max_instructions
                    and st.instructions + 2 + b.n_insns
                    >= max_instructions)):
            self._dispatch_primitive(tag, b, pc, target, listeners,
                                     max_instructions)
            return
        lib.rt_dispatch_event(st, self._bid(b), pc, target)
        if runners is not None:
            for run in runners:
                run(tag, None, 1)

    def _dispatch_primitive(self, tag, b, pc, target, listeners,
                            max_instructions):
        """annot + listeners + block + indirect, with per-primitive
        limit checks (the reference kernels' fallback sequence)."""
        st = self._st
        lib.rt_annot(st)
        if listeners is not None:
            for listener in listeners:
                listener(tag, None)
        for listener in self._annot_listeners:
            listener(tag, None)
        if max_instructions and st.instructions >= max_instructions:
            raise SimulationLimitReached(st.instructions)
        if lib.rt_exec_block(st, self._bid(b)):
            raise SimulationLimitReached(st.instructions)
        lib.rt_indirect(st, pc, target)

    def dispatch_event2(self, tag, b, pc, target, b2):
        st = self._st
        listeners = self._tag_listeners.get(tag)
        runners = None
        if listeners is not None:
            runners = self._tag_runners.get(tag)
        max_instructions = st.max_instructions
        if (self._annot_listeners
                or (listeners is not None and runners is None)
                or (max_instructions
                    and st.instructions + 2 + b.n_insns + b2.n_insns
                    >= max_instructions)):
            self._dispatch_primitive(tag, b, pc, target, listeners,
                                     max_instructions)
            if lib.rt_exec_block(st, self._bid(b2)):
                raise SimulationLimitReached(st.instructions)
            return
        lib.rt_dispatch_event2(st, self._bid(b), self._bid(b2), pc, target)
        if runners is not None:
            for run in runners:
                run(tag, None, 1)

    def dispatch_run(self, tag, b, items, n_insns):
        st = self._st
        tag_listeners = self._tag_listeners.get(tag)
        runners = None
        if tag_listeners is not None:
            runners = self._tag_runners.get(tag)
        max_instructions = st.max_instructions
        if (self._annot_listeners
                or (tag_listeners is not None and runners is None)
                or (max_instructions
                    and st.instructions + n_insns >= max_instructions)):
            dispatch_event2 = self.dispatch_event2
            for pc, target, b2 in items:
                dispatch_event2(tag, b, pc, target, b2)
            return
        entry = (self._drun_cache.get(id(items))
                 or self._marshal_dispatch_run(items))
        lib.rt_dispatch_run(st, self._bid(b), entry[1], entry[2],
                            entry[3], entry[4])
        if runners:
            for run in runners:
                run(tag, None, entry[1])

    def quick_run(self, tag, b, items, n_insns):
        st = self._st
        tag_listeners = self._tag_listeners.get(tag)
        runners = None
        if tag_listeners is not None:
            runners = self._tag_runners.get(tag)
        max_instructions = st.max_instructions
        if (self._annot_listeners
                or (tag_listeners is not None and runners is None)
                or (max_instructions
                    and st.instructions + n_insns >= max_instructions)):
            dispatch_event = self.dispatch_event
            exec_block = self.exec_block
            for pc, target, blocks in items:
                dispatch_event(tag, b, pc, target)
                for blk in blocks:
                    exec_block(blk)
            return
        entry = (self._qrun_cache.get(id(items))
                 or self._marshal_quick_run(items))
        lib.rt_quick_run(st, self._bid(b), entry[1], entry[2], entry[3],
                         entry[4], entry[5])
        if runners:
            for run in runners:
                run(tag, None, entry[1])

    # -- event programs -------------------------------------------------------

    def eventprog_operands(self, n_slots):
        # A cffi array rt_exec_program indexes directly.  Callers must
        # pass buffers from here (or another cffi long long[]); the
        # base wrapper converts plain sequences, the specialized kernel
        # does not.
        return ffi.new("long long[]", max(n_slots, 1))

    def exec_program(self, prog, operands=None):
        st = self._st
        max_instructions = st.max_instructions
        if (max_instructions
                and st.instructions + prog.n_insns >= max_instructions):
            # The program could cross the limit: replay per event so the
            # raise lands at the exact reference point.
            _eventprog.STATS["native_fallback_limit"] += 1
            _eventprog.replay(self, prog, operands)
            return
        runner_map = {}
        for tag in prog.tags:
            listeners = self._tag_listeners.get(tag)
            runners = None
            if listeners is not None:
                runners = self._tag_runners.get(tag)
            if self._annot_listeners or (listeners is not None
                                         and runners is None):
                # Some listener needs per-primitive notification.
                _eventprog.STATS["native_fallback_listener"] += 1
                _eventprog.replay(self, prog, operands)
                return
            runner_map[tag] = runners or ()
        entry = self._eprog_cache.get(id(prog)) or self._marshal_program(prog)
        if operands is None:
            operands = ffi.NULL
        elif not isinstance(operands, ffi.CData):
            operands = ffi.new("long long[]", list(operands))
        lib.rt_exec_program(st, entry[1], entry[2], operands)
        if prog.bc_totals:
            # Host-side counter bumps (EV_BC) are skipped by lower_words;
            # the precheck guaranteed no raise, so applying the totals
            # after the C call is order-equivalent.
            bc_list = prog.bc_list
            for index, count in prog.bc_totals:
                bc_list[index] += count
        for tag, n in prog.notes:
            for run in runner_map[tag]:
                run(tag, None, n)

    # -- counter access -------------------------------------------------------

    def counters(self):
        st = self._st
        return CounterSnapshot(
            instructions=st.instructions,
            cycles=st.cycles,
            branches=st.branches,
            branch_misses=st.branch_misses,
            loads=st.loads,
            stores=st.stores,
            l1d_misses=st.l1_misses,
            annotations=st.annotations,
        )


# Kernels shadowed by per-instance closures on NativeMachine.  Slot
# descriptors shadow the inherited base methods, so _specialize() MUST
# assign every name (an empty slot raises AttributeError rather than
# falling back).
_KERNEL_SLOTS = (
    "annot", "annot_run", "exec_mix", "exec_block", "exec_fused",
    "branch", "branch_block", "branch_block_annot_run",
    "indirect", "call", "ret", "exec_bulk_branches",
    "load", "store", "load_annot_run", "store_annot_run",
    "dispatch_event", "dispatch_event2", "dispatch_run", "quick_run",
    "exec_program",
)


def _make_kernels(m):
    """Build the specialized closure kernels for machine ``m``.

    Everything hot is a closure local: the C struct, the C functions,
    ``max_instructions`` (stable after construction — see module doc),
    the listener dicts, and a per-tag gate cache keyed on the
    listener epoch.  Gating outcomes mirror the base methods exactly;
    every corner case (listeners without batched variants, catch-all
    listeners, limit proximity) delegates to the unbound base method,
    which replays full reference semantics on the same C state.
    """
    st = m._st
    base = NativeMachineBase
    limit_exc = SimulationLimitReached
    max_instructions = st.max_instructions
    tag_listeners_map = m._tag_listeners
    tag_runners_map = m._tag_runners
    catch_all = m._annot_listeners
    drun_cache = m._drun_cache
    qrun_cache = m._qrun_cache
    mix_cache = m._mix_cache
    register_block = m._register_block
    gates = m._gates
    PRIM = _PRIMITIVE

    rt_annot = lib.rt_annot
    rt_annot_batch = lib.rt_annot_batch
    rt_exec_mix = lib.rt_exec_mix
    rt_exec_block = lib.rt_exec_block
    rt_exec_fused = lib.rt_exec_fused
    rt_dispatch_event = lib.rt_dispatch_event
    rt_dispatch_event2 = lib.rt_dispatch_event2
    rt_dispatch_run = lib.rt_dispatch_run
    rt_quick_run = lib.rt_quick_run
    rt_branch = lib.rt_branch
    rt_branch_block = lib.rt_branch_block
    rt_indirect = lib.rt_indirect
    rt_call = lib.rt_call
    rt_ret = lib.rt_ret
    rt_exec_bulk_branches = lib.rt_exec_bulk_branches
    rt_load = lib.rt_load
    rt_store = lib.rt_store

    def gate(tag):
        """Batched-path decision for ``tag``: a (possibly empty) tuple
        of batched listener runners, or _PRIMITIVE for the reference
        path.  Cached per tag; the listener mutators clear the cache."""
        listeners = tag_listeners_map.get(tag)
        if catch_all or (listeners is not None
                         and tag_runners_map.get(tag) is None):
            value = PRIM
        elif listeners is None:
            value = ()
        else:
            value = tuple(tag_runners_map[tag])
        gates[tag] = value
        return value

    def annot(tag, payload=None):
        runners = gates.get(tag)
        if runners is None:
            runners = gate(tag)
        # () means no listeners of any kind on this tag; tags with
        # listeners — batched or not — take the per-event base path.
        if runners == ():
            if rt_annot(st):
                raise limit_exc(st.instructions)
            return
        base.annot(m, tag, payload)

    def annot_run(tag, n, payload=None):
        if max_instructions and st.instructions + n >= max_instructions:
            base.annot_run(m, tag, n, payload)
            return
        runners = gates.get(tag)
        if runners is None:
            runners = gate(tag)
        if runners is PRIM:
            base.annot_run(m, tag, n, payload)
            return
        rt_annot_batch(st, n)
        for run in runners:
            run(tag, payload, n)

    def exec_mix(mix):
        entry = mix_cache.get(mix) or m._marshal_mix(mix)
        if rt_exec_mix(st, entry[0], entry[1], entry[2]):
            raise limit_exc(st.instructions)

    def exec_block(b):
        bid = b.bid
        if bid is None:
            bid = register_block(b)
        if rt_exec_block(st, bid):
            raise limit_exc(st.instructions)

    def exec_fused(f):
        fid = f.fid
        if fid is None:
            fid = m._register_fused(f)
        if rt_exec_fused(st, fid):
            raise limit_exc(st.instructions)

    def branch(pc, taken):
        rt_branch(st, pc, 1 if taken else 0)

    def branch_block(pc, b):
        bid = b.bid
        if bid is None:
            bid = register_block(b)
        if rt_branch_block(st, pc, bid):
            raise limit_exc(st.instructions)

    def branch_block_annot_run(pc, b, tag, n):
        bid = b.bid
        if bid is None:
            bid = register_block(b)
        if rt_branch_block(st, pc, bid):
            raise limit_exc(st.instructions)
        annot_run(tag, n)

    def indirect(pc, target):
        rt_indirect(st, pc, target)

    def call(pc):
        rt_call(st, pc)

    def ret(pc):
        rt_ret(st, pc)

    def exec_bulk_branches(count, miss_rate):
        if rt_exec_bulk_branches(st, count, miss_rate):
            raise limit_exc(st.instructions)

    def load(addr):
        rt_load(st, addr)

    def store(addr):
        rt_store(st, addr)

    def load_annot_run(addr, tag, n):
        rt_load(st, addr)
        annot_run(tag, n)

    def store_annot_run(addr, tag, n):
        rt_store(st, addr)
        annot_run(tag, n)

    def dispatch_event(tag, b, pc, target):
        if (max_instructions
                and st.instructions + 2 + b.n_insns >= max_instructions):
            base.dispatch_event(m, tag, b, pc, target)
            return
        runners = gates.get(tag)
        if runners is None:
            runners = gate(tag)
        if runners is PRIM:
            base.dispatch_event(m, tag, b, pc, target)
            return
        bid = b.bid
        if bid is None:
            bid = register_block(b)
        rt_dispatch_event(st, bid, pc, target)
        for run in runners:
            run(tag, None, 1)

    def dispatch_event2(tag, b, pc, target, b2):
        if (max_instructions
                and st.instructions + 2 + b.n_insns + b2.n_insns
                >= max_instructions):
            base.dispatch_event2(m, tag, b, pc, target, b2)
            return
        runners = gates.get(tag)
        if runners is None:
            runners = gate(tag)
        if runners is PRIM:
            base.dispatch_event2(m, tag, b, pc, target, b2)
            return
        bid = b.bid
        if bid is None:
            bid = register_block(b)
        b2id = b2.bid
        if b2id is None:
            b2id = register_block(b2)
        rt_dispatch_event2(st, bid, b2id, pc, target)
        for run in runners:
            run(tag, None, 1)

    def dispatch_run(tag, b, items, n_insns):
        if (max_instructions
                and st.instructions + n_insns >= max_instructions):
            base.dispatch_run(m, tag, b, items, n_insns)
            return
        runners = gates.get(tag)
        if runners is None:
            runners = gate(tag)
        if runners is PRIM:
            base.dispatch_run(m, tag, b, items, n_insns)
            return
        entry = drun_cache.get(id(items)) or m._marshal_dispatch_run(items)
        bid = b.bid
        if bid is None:
            bid = register_block(b)
        rt_dispatch_run(st, bid, entry[1], entry[2], entry[3], entry[4])
        for run in runners:
            run(tag, None, entry[1])

    def quick_run(tag, b, items, n_insns):
        if (max_instructions
                and st.instructions + n_insns >= max_instructions):
            base.quick_run(m, tag, b, items, n_insns)
            return
        runners = gates.get(tag)
        if runners is None:
            runners = gate(tag)
        if runners is PRIM:
            base.quick_run(m, tag, b, items, n_insns)
            return
        entry = qrun_cache.get(id(items)) or m._marshal_quick_run(items)
        bid = b.bid
        if bid is None:
            bid = register_block(b)
        rt_quick_run(st, bid, entry[1], entry[2], entry[3], entry[4],
                     entry[5])
        for run in runners:
            run(tag, None, entry[1])

    eprog_cache = m._eprog_cache
    rt_exec_program = lib.rt_exec_program
    NULL = ffi.NULL
    ep_replay = _eventprog.replay
    ep_stats = _eventprog.STATS

    def exec_program(prog, operands=None):
        if (max_instructions
                and st.instructions + prog.n_insns >= max_instructions):
            ep_stats["native_fallback_limit"] += 1
            ep_replay(m, prog, operands)
            return
        for tag in prog.tags:
            runners = gates.get(tag)
            if runners is None:
                runners = gate(tag)
            if runners is PRIM:
                ep_stats["native_fallback_listener"] += 1
                ep_replay(m, prog, operands)
                return
        entry = eprog_cache.get(id(prog)) or m._marshal_program(prog)
        rt_exec_program(st, entry[1], entry[2],
                        NULL if operands is None else operands)
        bc_totals = prog.bc_totals
        if bc_totals:
            bc_list = prog.bc_list
            for index, count in bc_totals:
                bc_list[index] += count
        for tag, n in prog.notes:
            for run in gates.get(tag, ()):
                run(tag, None, n)

    return locals()


class NativeMachine(NativeMachineBase):
    """NativeMachineBase with the hot wrappers specialized per instance."""

    __slots__ = _KERNEL_SLOTS

    def __init__(self, config, predictor="gshare"):
        super().__init__(config, predictor)
        self._specialize()

    def _specialize(self):
        kernels = _make_kernels(self)
        for name in _KERNEL_SLOTS:
            setattr(self, name, kernels[name])

    def reset(self):
        super().reset()
        # The C state reset in place keeps the closures correct; a
        # fresh specialization also clears the per-tag gate caches.
        self._specialize()
