; fasta (CLBG, Racket): DNA sequence generation; string building.
(define N 2000)

(define ALU (string-append
             "GGCCGGGCGCGGTGGCTCACGCCTGTAATCCCAGCACTTTGG"
             "GAGGCCGAGGCGGGCGGATCACCTGAGGTCAGGAGTTCGAGA"
             "CCAGCCTGGCCAACATGGTGAAACCCCGTCTCTACTAAAAAT"))

(define CODES "acgtBDHKMNRSVWY")

(define seed 42)
(define (next-random)
  (set! seed (modulo (+ (* seed 3877) 29573) 139968))
  (/ (exact->inexact seed) 139968.0))

(define (repeat-fasta src n)
  (define width (string-length src))
  (define buffer (string-append src src))
  (let loop ((written 0) (pos 0) (checksum 0))
    (if (>= written n)
        checksum
        (let* ((line-len (min 60 (- n written)))
               (chunk (substring buffer pos (+ pos line-len)))
               (pos2 (let ((p (+ pos line-len)))
                       (if (>= p width) (- p width) p))))
          (loop (+ written line-len) pos2
                (checksum-chunk chunk checksum))))))

(define (checksum-chunk chunk checksum)
  (let loop ((i 0) (cs checksum))
    (if (= i (string-length chunk))
        cs
        (loop (+ i 1)
              (modulo (+ (* cs 31) (char->integer (string-ref chunk i)))
                      1000000007)))))

(define (random-fasta n)
  (let loop ((written 0) (checksum 0))
    (if (>= written n)
        checksum
        (let ((r (next-random)))
          (let pick ((i 0) (acc 0.27))
            (if (or (>= i 14) (< r acc))
                (loop (+ written 1)
                      (modulo (+ (* checksum 31)
                                 (char->integer (string-ref CODES i)))
                              1000000007))
                (pick (+ i 1)
                      (+ acc (if (< i 3) 0.12 0.02)))))))))

(define (main n)
  (display "fasta ")
  (display (repeat-fasta ALU (* n 2)))
  (display " ")
  (display (random-fasta (* n 3)))
  (newline))

(main N)
