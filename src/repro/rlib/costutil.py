"""Cost-charging helpers for AOT-compiled runtime functions.

AOT functions run real algorithms over real data; these helpers charge
the machine an instruction stream proportional to the work performed,
with loop-shaped branch behaviour.
"""

from repro.isa import insns

LOOP_BRANCH_MISS_RATE = 0.02


def charge_loop(ctx, iterations, per_iter_mix, branch_per_iter=1,
                miss_rate=LOOP_BRANCH_MISS_RATE):
    """Charge ``iterations`` passes of a loop with the given body mix."""
    if iterations <= 0:
        return
    ctx.charge(insns.scale_mix(per_iter_mix, iterations))
    ctx.charge_branches(iterations * branch_per_iter, miss_rate)


def charge_fixed(ctx, mix):
    ctx.charge(mix)
