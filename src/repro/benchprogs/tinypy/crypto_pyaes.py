# crypto_pyaes: AES-128 in pure TinyPy (core rounds over 16-byte blocks,
# CTR-style counter encryption). Integer/bit-operation heavy; the paper's
# second-largest PyPy speedup (30x).
N = 24

SBOX_SEED = 99


def build_sbox():
    # A bijective 8-bit substitution box built from an affine-ish mix
    # (not the real Rijndael box, but the same shape of table lookups).
    box = [0] * 256
    value = SBOX_SEED
    for i in range(256):
        value = (value * 167 + 91) % 257
        box[i] = (value ^ i) % 256
    # Force bijectivity by patching duplicates deterministically.
    seen = [False] * 256
    free = []
    for v in range(256):
        seen[v] = False
    for i in range(256):
        v = box[i]
        if seen[v]:
            box[i] = -1
        else:
            seen[v] = True
    for v in range(256):
        if not seen[v]:
            free.append(v)
    k = 0
    for i in range(256):
        if box[i] == -1:
            box[i] = free[k]
            k += 1
    return box


SBOX = build_sbox()


def xtime(a):
    a = a << 1
    if a & 0x100:
        a = (a ^ 0x1B) & 0xFF
    return a


def sub_bytes(state):
    for i in range(16):
        state[i] = SBOX[state[i]]


def shift_rows(state):
    for r in range(1, 4):
        row = [state[r], state[r + 4], state[r + 8], state[r + 12]]
        for c in range(4):
            state[r + 4 * c] = row[(c + r) % 4]


def mix_columns(state):
    for c in range(4):
        i = 4 * c
        a0 = state[i]
        a1 = state[i + 1]
        a2 = state[i + 2]
        a3 = state[i + 3]
        t = a0 ^ a1 ^ a2 ^ a3
        state[i] = a0 ^ t ^ xtime(a0 ^ a1)
        state[i + 1] = a1 ^ t ^ xtime(a1 ^ a2)
        state[i + 2] = a2 ^ t ^ xtime(a2 ^ a3)
        state[i + 3] = a3 ^ t ^ xtime(a3 ^ a0)


def add_round_key(state, key, round_index):
    base = (round_index % 4) * 16
    for i in range(16):
        state[i] = state[i] ^ key[base + i]


def encrypt_block(state, key):
    add_round_key(state, key, 0)
    for round_index in range(1, 10):
        sub_bytes(state)
        shift_rows(state)
        mix_columns(state)
        add_round_key(state, key, round_index)
    sub_bytes(state)
    shift_rows(state)
    add_round_key(state, key, 10)


def run_aes(blocks):
    key = []
    for i in range(64):
        key.append((i * 73 + 11) % 256)
    checksum = 0
    counter = 0
    for b in range(blocks):
        state = []
        for i in range(16):
            state.append((counter + i * 17) % 256)
        counter += 1
        encrypt_block(state, key)
        for i in range(16):
            checksum = (checksum + state[i] * (i + 1)) % 1000000007
    print("crypto_pyaes", checksum)


run_aes(N * 8)
