# json_bench: serialize nested data to JSON with a pure-TinyPy encoder
# over a typed value tree (JNum/JStr/JList/JObj nodes). String building
# dominated (Table III: raw_encode_basestring_ascii, rbuilder.ll_append).
N = 80


class JValue:
    pass


class JNull(JValue):
    def write(self, out):
        out.append("null")


class JBool(JValue):
    def __init__(self, value):
        self.value = value

    def write(self, out):
        if self.value:
            out.append("true")
        else:
            out.append("false")


class JNum(JValue):
    def __init__(self, value):
        self.value = value

    def write(self, out):
        out.append(str(self.value))


class JStr(JValue):
    def __init__(self, value):
        self.value = value

    def write(self, out):
        out.append('"')
        for ch in self.value:
            if ch == '"':
                out.append('\\"')
            elif ch == "\\":
                out.append("\\\\")
            elif ch == "\n":
                out.append("\\n")
            else:
                out.append(ch)
        out.append('"')


class JList(JValue):
    def __init__(self, items):
        self.items = items

    def write(self, out):
        out.append("[")
        first = True
        for item in self.items:
            if not first:
                out.append(",")
            first = False
            item.write(out)
        out.append("]")


class JObj(JValue):
    def __init__(self, pairs):
        self.pairs = pairs  # list of (key, JValue)

    def write(self, out):
        out.append("{")
        first = True
        for pair in self.pairs:
            if not first:
                out.append(",")
            first = False
            out.append('"' + pair[0] + '":')
            pair[1].write(out)
        out.append("}")


def make_document(i):
    users = []
    for k in range(8):
        tags = []
        for t in range(k % 4):
            tags.append(JStr(["alpha", "beta", 'g"amma'][t % 3]))
        users.append(JObj([
            ("id", JNum(i * 100 + k)),
            ("name", JStr("user" + str(k))),
            ("email", JStr("user" + str(k) + "@example.com")),
            ("active", JBool(k % 2 == 0)),
            ("score", JNum(k * 3.5)),
            ("bio", JNull()),
            ("tags", JList(tags)),
        ]))
    return JObj([
        ("page", JNum(i)),
        ("total", JNum(8)),
        ("users", JList(users)),
    ])


def run_json(iterations):
    checksum = 0
    for i in range(iterations):
        out = []
        make_document(i).write(out)
        text = "".join(out)
        checksum = (checksum + len(text)) % 1000000007
        for ch in text[0:24]:
            checksum = (checksum * 31 + ord(ch)) % 1000000007
    print("json_bench", checksum)


run_json(N)
