"""TinyRkt language and benchmark tests.

Differential across the Pycket-style framework VM (JIT on and off) and
the Racket-baseline reference evaluator.
"""

import pytest

from repro.benchprogs import registry
from repro.core.config import SystemConfig
from repro.interp.context import VMContext
from repro.rktlang.compiler import compile_rkt
from repro.rktlang.reader import Symbol, parse_all
from repro.rktlang.vm import RacketRef, RktVM


def run_all(source, threshold=5):
    reference = RacketRef(SystemConfig())
    reference.run_source(source)
    cfg = SystemConfig.interpreter_only()
    nojit = RktVM(VMContext(cfg))
    nojit.run_source(source)
    cfg = SystemConfig()
    cfg.jit.hot_loop_threshold = threshold
    cfg.jit.bridge_threshold = 3
    ctx = VMContext(cfg)
    jit = RktVM(ctx)
    jit.run_source(source)
    assert reference.stdout() == nojit.stdout(), (
        "racket-ref vs pycket-nojit:\n%s\n----\n%s"
        % (reference.stdout(), nojit.stdout()))
    assert nojit.stdout() == jit.stdout(), (
        "pycket nojit vs jit:\n%s\n----\n%s"
        % (nojit.stdout(), jit.stdout()))
    return reference.stdout(), ctx


# -- reader ---------------------------------------------------------------------


def test_reader_atoms():
    forms = parse_all('(1 2.5 #t #f x "hi" #\\a)')
    atom_list = forms[0]
    assert atom_list[0] == 1
    assert atom_list[1] == 2.5
    assert atom_list[2] is True
    assert atom_list[3] is False
    assert isinstance(atom_list[4], Symbol)
    assert atom_list[5] == ('strlit', "hi")
    assert atom_list[6] == ('char', "a")


def test_reader_nesting_and_comments():
    forms = parse_all("; comment\n(a (b c) [d e])")
    assert len(forms) == 1
    assert len(forms[0]) == 3


def test_reader_quote():
    forms = parse_all("'()")
    assert forms[0][0] == "quote"


def test_reader_errors():
    from repro.core.errors import CompilationError

    with pytest.raises(CompilationError):
        parse_all("(a (b)")
    with pytest.raises(CompilationError):
        parse_all('"unterminated')


def test_compile_smoke():
    code = compile_rkt("(display (+ 1 2))")
    assert code.ops


# -- language -----------------------------------------------------------------------


def test_arith_and_comparisons():
    out, _ = run_all('''
(display (+ 1 2 3)) (newline)
(display (- 10 3 2)) (newline)
(display (* 2 3 4)) (newline)
(display (quotient 17 5)) (display " ") (display (remainder 17 5)) (newline)
(display (modulo -7 3)) (newline)
(display (< 1 2)) (display (> 1 2)) (display (= 3 3)) (newline)
(display (/ 1.0 4.0)) (newline)
(display (expt 2 10)) (newline)
(display (- 5)) (newline)
''')
    assert "6\n5\n24\n3 2\n2\n" in out


def test_let_forms():
    out, _ = run_all('''
(define (f)
  (let ((a 1) (b 2))
    (let* ((c (+ a b)) (d (* c 10)))
      (+ a b c d))))
(display (f)) (newline)
''')
    assert "36" in out


def test_named_let_loop():
    out, ctx = run_all('''
(define (sum-squares n)
  (let loop ((i 0) (acc 0))
    (if (= i n) acc (loop (+ i 1) (+ acc (* i i))))))
(display (sum-squares 500)) (newline)
''')
    assert "41541750" in out
    assert len(ctx.registry.traces) >= 1  # the loop got JIT-compiled


def test_recursion():
    out, _ = run_all('''
(define (fact n) (if (<= n 1) 1 (* n (fact (- n 1)))))
(display (fact 20)) (newline)
(display (fact 30)) (newline)
''')
    assert "2432902008176640000" in out
    assert "265252859812191058636308480000000" in out  # bignum


def test_pairs_and_lists():
    out, _ = run_all('''
(define p (cons 1 (cons 2 '())))
(display (car p)) (display (car (cdr p))) (newline)
(display (null? (cdr (cdr p)))) (newline)
(display (length (list 1 2 3 4))) (newline)
(define r (reverse (list 1 2 3)))
(display (car r)) (newline)
(display (pair? p)) (display (pair? 5)) (newline)
''')
    assert "12\n#t\n4\n3\n#t#f\n" in out


def test_vectors():
    out, _ = run_all('''
(define (fill v n)
  (do ((i 0 (+ i 1))) ((= i n) v)
    (vector-set! v i (* i 2))))
(define v (fill (make-vector 5 0) 5))
(display (vector-ref v 3)) (display " ")
(display (vector-length v)) (newline)
''')
    assert "6 5" in out


def test_strings_and_chars():
    out, _ = run_all('''
(display (string-append "foo" "-" "bar")) (newline)
(display (string-length "hello")) (newline)
(display (string-ref "abc" 1)) (newline)
(display (substring "hello" 1 4)) (newline)
(display (char->integer #\\a)) (display " ")
(display (integer->char 98)) (newline)
(display (number->string 42)) (newline)
(display (string=? "ab" "ab")) (newline)
''')
    assert "foo-bar\n5\nb\nell\n97 b\n42\n#t\n" in out


def test_cond_when_unless_and_or():
    out, _ = run_all('''
(define (classify n)
  (cond ((< n 0) "neg") ((= n 0) "zero") (else "pos")))
(display (classify -4)) (display (classify 0)) (display (classify 9))
(newline)
(define (f x) (when (> x 2) (display "big")) (unless (> x 2)
  (display "small")) (newline))
(f 1)
(f 5)
(display (and 1 2 3)) (display (or #f 7)) (newline)
(display (not #f)) (newline)
''')
    assert "negzeropos" in out
    assert "small" in out and "big" in out


def test_set_bang():
    out, _ = run_all('''
(define counter 0)
(define (bump!) (set! counter (+ counter 1)))
(bump!) (bump!) (bump!)
(display counter) (newline)
''')
    assert "3" in out


def test_floats():
    out, _ = run_all('''
(display (sqrt 2.0)) (newline)
(display (exact->inexact 3)) (newline)
(display (floor 2.7)) (display " ") (display (truncate 2.7)) (newline)
(display (min 3 1 2)) (display (max 3.5 1.0)) (newline)
''')
    assert "1.414" in out


# -- benchmark programs -----------------------------------------------------------------


@pytest.mark.slow
@pytest.mark.parametrize(
    "program", registry.RKT_PROGRAMS, ids=lambda p: p.name)
def test_rkt_benchmark_matches(program):
    source = program.source(n=program.small_n)
    out, _ = run_all(source)
    assert out.strip(), "benchmark printed nothing"
