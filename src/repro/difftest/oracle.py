"""The multi-engine differential oracle.

Runs one TinyPy program under every execution mode the repo models —
the CPython-reference interpreter (``cpref``), the RPython-style
interpreter with the JIT disabled (``interp``), the same interpreter
with the quickening layer off (``quicken-off``), the compiled
simulation backends (``backend-fast``, and ``backend-native`` when a C
toolchain built the runtime), the meta-tracing JIT at several
hot-loop thresholds (``jit@N``), the baseline threaded-code tier
(``tier1`` in direct mode, ``tier1-jit@7`` under the JIT, checked for
behavior- and trace-IR-equivalence by ``check_tier_invariants``), and
the resident event-program layer (``eventprog`` in direct mode,
``eventprog-jit@7`` under the JIT, held to bit-identical counters and
trace registries by ``check_eventprog_equivalence``) — and checks:

* **Agreement**: every engine prints the same stdout, and either all
  engines finish cleanly or all raise a guest-level error at the same
  point (engines word error messages differently, so only the
  output-so-far and the erroredness are compared).  The ``interp`` and
  ``quicken-off`` runs are additionally held to *bit-identical* machine
  counters — quickening must be invisible to the simulation — and the
  ``backend-*`` runs are held to the same standard against ``interp``:
  a compiled backend that drifts by one mantissa bit is a bug.
* **Counter invariants** per engine run: the PinTool's per-phase
  instruction/cycle/branch windows must sum to the machine totals, and
  on JIT runs the jitlog's compile events must match the trace registry
  (same trace count, same total IR nodes compiled).
* **Store round-trip**: a serialized result payload restored and
  re-serialized must be bit-identical (pickled bytes equal).

Native-reference kernels have no general TinyPy source form, so cross
checking against ``nativeref`` (and ``run_many`` worker agreement) is
exposed separately via :func:`check_kernel_output` /
:func:`check_run_many_agreement`, which operate on registry benchmark
programs.
"""

import gc
import pickle
import re

from repro.core.config import SystemConfig
from repro.core.errors import GuestError, ReproError
from repro.interp.context import VMContext
from repro.jit import executor
from repro.pintool.tool import PinTool
from repro.pylang.cpref import CpRef
from repro.pylang.interp import PyVM
from repro.uarch.machine import SimulationLimitReached

#: Default safety net: no generated program should come near this many
#: simulated instructions; hitting the cap marks the run inconclusive.
DEFAULT_MAX_INSTRUCTIONS = 25_000_000

#: Default hot-loop thresholds: 2 forces tracing almost immediately
#: (maximum trace/bridge/blackhole traffic), 7 is an early-JIT middle
#: ground, 39 is the paper-scaled production default.
DEFAULT_THRESHOLDS = (2, 7, 39)

_REL_TOL = 1e-6


class Divergence(object):
    """One oracle finding: either engine disagreement or a broken
    structural invariant inside a single engine's counters."""

    __slots__ = ("kind", "engines", "detail")

    def __init__(self, kind, engines, detail):
        self.kind = kind
        self.engines = tuple(engines)
        self.detail = detail

    def __repr__(self):
        return "<Divergence %s %s: %s>" % (
            self.kind, "/".join(self.engines), self.detail)


class EngineRun(object):
    """Output and measurement state of one engine execution."""

    __slots__ = ("name", "output", "error", "truncated", "machine",
                 "tool", "ctx", "tier_stats", "vm")

    def __init__(self, name):
        self.name = name
        self.output = ""
        self.error = None
        self.truncated = False
        self.machine = None
        self.tool = None
        self.ctx = None
        # TierManager.stats() when the run had the tier-1 engine on.
        self.tier_stats = None
        # The guest VM (kept for post-hoc translation validation).
        self.vm = None

    @property
    def outcome(self):
        """What the oracle compares across engines."""
        return (self.output, self.error is not None)


class OracleReport(object):
    """Everything the oracle learned about one program."""

    def __init__(self, source):
        self.source = source
        self.runs = []
        self.divergences = []
        self.inconclusive = False

    @property
    def ok(self):
        return not self.divergences

    def add(self, kind, engines, detail):
        self.divergences.append(Divergence(kind, engines, detail))

    def run_named(self, name):
        for run in self.runs:
            if run.name == name:
                return run
        return None

    def summary(self):
        if self.inconclusive:
            return "inconclusive (simulation cap hit)"
        if self.ok:
            return "ok (%d engines agree)" % len(self.runs)
        return "; ".join(
            "%s[%s]: %s" % (d.kind, "/".join(d.engines), d.detail)
            for d in self.divergences)


def _base_config(max_instructions):
    config = SystemConfig()
    config.max_instructions = max_instructions
    return config


class _pinned_host_gc(object):
    """Pin the host cyclic collector for one simulation.

    SimGC's survivor sampling watches weakrefs of live guest objects, so
    mid-run host collections — triggered by process-wide allocation
    counts — would make engine runs depend on what the process executed
    before them.  Collecting up front and disabling the collector makes
    object death refcount-driven, so every engine sees identical guest
    lifetimes (same mechanism as harness.runner.run_program)."""

    def __enter__(self):
        gc.collect()
        self._was_enabled = gc.isenabled()
        gc.disable()

    def __exit__(self, *exc):
        if self._was_enabled:
            gc.enable()
        return False


def run_cpref(source, max_instructions=DEFAULT_MAX_INSTRUCTIONS):
    """Run a program on the CPython-reference engine."""
    run = EngineRun("cpref")
    config = _base_config(max_instructions)
    config.jit.enabled = False
    vm = CpRef(config)
    tool = PinTool(vm.machine)
    try:
        with _pinned_host_gc():
            vm.run_source(source)
    except GuestError as exc:
        run.error = str(exc)
    except SimulationLimitReached:
        run.truncated = True
    tool.finish()
    run.output = vm.stdout()
    run.machine = vm.machine
    run.tool = tool
    return run


def run_interp(source, jit=False, threshold=39, bridge_threshold=3,
               max_instructions=DEFAULT_MAX_INSTRUCTIONS, quicken=None,
               backend=None, tier1=None, eventprog=None, name=None):
    """Run a program on the RPython-style VM (JIT on or off)."""
    run = EngineRun(name or ("jit@%d" % threshold if jit else "interp"))
    config = _base_config(max_instructions)
    config.jit.enabled = jit
    config.jit.hot_loop_threshold = threshold
    config.jit.bridge_threshold = bridge_threshold
    if quicken is not None:
        config.quicken = quicken
    if backend is not None:
        config.sim_backend = backend
    if tier1 is not None:
        config.tier1 = tier1
    if eventprog is not None:
        config.eventprog = eventprog
    ctx = VMContext(config)
    tool = PinTool(ctx.machine)
    vm = PyVM(ctx)
    try:
        with _pinned_host_gc():
            vm.run_source(source)
    except GuestError as exc:
        run.error = str(exc)
    except SimulationLimitReached:
        run.truncated = True
    tool.finish()
    for trace in ctx.registry.traces:
        executor.sync_exec_counts(trace)
    run.output = vm.stdout()
    run.machine = ctx.machine
    run.tool = tool
    run.ctx = ctx
    run.vm = vm
    if vm.driver.tier is not None:
        run.tier_stats = vm.driver.tier.stats()
    return run


# -- structural invariants on a single run --------------------------------------


def check_counter_invariants(run, report):
    """Phase windows must sum exactly to the machine's totals."""
    machine = run.machine
    windows = run.tool.phases.windows
    insns_sum = sum(w.instructions for w in windows)
    if insns_sum != machine.instructions:
        report.add("phase_insns", [run.name],
                   "phase windows sum to %d instructions, machine retired %d"
                   % (insns_sum, machine.instructions))
    branch_sum = sum(w.branches for w in windows)
    if branch_sum != machine.branches:
        report.add("phase_branches", [run.name],
                   "phase windows sum to %d branches, machine saw %d"
                   % (branch_sum, machine.branches))
    miss_sum = sum(w.branch_misses for w in windows)
    if miss_sum != machine.branch_misses:
        report.add("phase_misses", [run.name],
                   "phase windows sum to %d misses, machine saw %d"
                   % (miss_sum, machine.branch_misses))
    cycles_sum = sum(w.cycles for w in windows)
    if abs(cycles_sum - machine.cycles) > \
            _REL_TOL * max(1.0, abs(machine.cycles)):
        report.add("phase_cycles", [run.name],
                   "phase windows sum to %r cycles, machine has %r"
                   % (cycles_sum, machine.cycles))


def check_jitlog_invariants(run, report):
    """The jitlog event stream must match the trace registry."""
    ctx = run.ctx
    if ctx is None or ctx.jitlog is None:
        return
    compiles = [details for kind, details in ctx.jitlog.events
                if kind == "compile"]
    aborts = [details for kind, details in ctx.jitlog.events
              if kind == "abort"]
    registry = ctx.registry
    if len(compiles) != len(registry.traces):
        report.add("jitlog_traces", [run.name],
                   "jitlog has %d compile events, registry holds %d traces"
                   % (len(compiles), len(registry.traces)))
    logged_ops = sum(d["n_ops_compiled"] for d in compiles)
    registry_ops = registry.total_ops_compiled()
    if logged_ops != registry_ops:
        report.add("jitlog_ops", [run.name],
                   "jitlog compile events total %d IR nodes, registry "
                   "compiled %d" % (logged_ops, registry_ops))
    if len(aborts) != len(registry.aborts):
        report.add("jitlog_aborts", [run.name],
                   "jitlog has %d abort events, registry recorded %d"
                   % (len(aborts), len(registry.aborts)))
    for trace in registry.traces:
        for i, count in enumerate(trace.op_exec_counts):
            if count < 0:
                report.add("exec_counts", [run.name],
                           "trace #%d op %d has negative exec count %d"
                           % (trace.trace_id, i, count))
                return


def check_static_invariants(run, report):
    """Every compiled trace must pass the static verifier.

    A new invariant family (kind ``"verify"``): the fuzzer's generated
    programs reach optimizer paths the benchmark suite never exercises,
    so each JIT run's registry is re-checked by :mod:`repro.analysis`
    after the fact.  Error findings become divergences; warnings (e.g.
    a missed heap-cache forwarding) are advisory only.
    """
    ctx = run.ctx
    if ctx is None:
        return
    from repro.analysis import verify_backend, verify_trace

    for trace in ctx.registry.traces:
        result = verify_trace(trace, cfg=ctx.config.jit)
        result.extend(verify_backend(trace))
        for finding in result.errors[:4]:
            report.add("verify", [run.name], finding.render())


def check_transval_invariants(run, report):
    """Translation validation over every compiled artifact of one run.

    A second static family (kind ``"transval"``, see DESIGN.md §16):
    each trace's optimized stream is re-proven equivalent to the
    recorded stream the tracer retained on it, each resident
    event-program is statically decoded back to the call sequence it
    replaced, and — when the tier-1 engine ran — each ThreadedCode is
    replayed against the interpreter's charge summaries.
    """
    ctx = run.ctx
    if ctx is None:
        return
    from repro.analysis import (
        validate_optimization,
        validate_program,
        validate_threaded_code,
    )

    for trace in ctx.registry.traces:
        result = validate_optimization(ctx.config.jit, trace)
        for prog in getattr(trace, "_programs", None) or ():
            result.extend(validate_program(
                prog, subject="trace #%d" % trace.trace_id))
        for finding in result.errors[:4]:
            report.add("transval", [run.name], finding.render())
    vm = run.vm
    tier = getattr(vm, "driver", None) and vm.driver.tier
    if tier is not None:
        for code, tcode in tier.compiled.items():
            result = validate_threaded_code(vm, code, tcode)
            for finding in result.errors[:4]:
                report.add("transval", [run.name], finding.render())


def check_static_bytecode(source, report):
    """The compiled program itself must pass the bytecode verifier."""
    from repro.analysis import verify_pycode
    from repro.pylang.compiler import compile_source

    result = verify_pycode(compile_source(source, "difftest"))
    for finding in result.errors[:4]:
        report.add("verify", ["bytecode"], finding.render())


def check_quicken_equivalence(report):
    """Quickened and unquickened direct runs must match bit-for-bit.

    The quickening layer (superinstruction runs, inline caches, fused
    cost charging) is a pure host-side optimization: every machine
    counter — including the float ``cycles`` accumulator — must be
    exactly the value the unquickened dispatch loop produces.
    """
    quick = report.run_named("interp")
    plain = report.run_named("quicken-off")
    if quick is None or plain is None:
        return
    qm, pm = quick.machine, plain.machine
    for field in ("instructions", "cycles", "branches", "branch_misses",
                  "loads", "stores", "annotations"):
        a = getattr(qm, field)
        b = getattr(pm, field)
        if a != b or repr(a) != repr(b):
            report.add("quicken", ["interp", "quicken-off"],
                       "%s differs with quickening on: %r vs %r"
                       % (field, a, b))
    if tuple(qm.class_counts) != tuple(pm.class_counts):
        report.add("quicken", ["interp", "quicken-off"],
                   "per-class instruction histogram differs with "
                   "quickening on")
    if quick.tool.bcrate.bytecodes != plain.tool.bcrate.bytecodes:
        report.add("quicken", ["interp", "quicken-off"],
                   "bytecode count differs with quickening on: %d vs %d"
                   % (quick.tool.bcrate.bytecodes,
                      plain.tool.bcrate.bytecodes))


def check_backend_equivalence(report):
    """The compiled simulation backends must match the reference
    machine bit-for-bit.

    ``backend-fast`` (exec-specialized Python kernels) and
    ``backend-native`` (the cffi-compiled C runtime) re-run the direct
    interpreter with only ``config.sim_backend`` flipped; every machine
    counter — including the float ``cycles`` accumulator, compared by
    ``==`` and ``repr`` — must equal the reference run's value.
    """
    reference = report.run_named("interp")
    if reference is None:
        return
    rm = reference.machine
    for engine in ("backend-fast", "backend-native"):
        run = report.run_named(engine)
        if run is None:
            continue
        bm = run.machine
        for field in ("instructions", "cycles", "branches",
                      "branch_misses", "loads", "stores", "annotations"):
            a = getattr(rm, field)
            b = getattr(bm, field)
            if a != b or repr(a) != repr(b):
                report.add("backend", ["interp", engine],
                           "%s differs on the %s backend: %r vs %r"
                           % (field, type(bm).backend, a, b))
        if tuple(rm.class_counts) != tuple(bm.class_counts):
            report.add("backend", ["interp", engine],
                       "per-class instruction histogram differs on the "
                       "%s backend" % type(bm).backend)
        if reference.tool.bcrate.bytecodes != run.tool.bcrate.bytecodes:
            report.add("backend", ["interp", engine],
                       "bytecode count differs on the %s backend: "
                       "%d vs %d" % (type(bm).backend,
                                     reference.tool.bcrate.bytecodes,
                                     run.tool.bcrate.bytecodes))


def check_eventprog_equivalence(report):
    """Resident event-programs must be invisible to the simulation.

    The event-program layer batches already-fused dispatch/trace event
    sequences into replayable programs (``config.eventprog``), retiring
    the exact charge sequence the per-call path issues — so, like
    quickening and the compiled backends, it is held to *bit-identical*
    machine counters, not just behavioral agreement:

    * ``eventprog`` vs ``interp`` (direct mode): quickened runs and
      tier-adjacent dispatch go through resident programs; every
      counter, the per-class histogram and the bytecode count must be
      exactly the reference values.
    * ``eventprog-jit@7`` vs ``jit@7``: compiled traces replay their
      machine events through per-segment programs; on top of the
      counters, the whole jitlog event stream and every recorded trace
      op (greenkeys, IR, exec counts) are compared by repr — a program
      that drops, reorders or double-retires one trace event shows up
      here.
    """
    pairs = [("eventprog", "interp"), ("eventprog-jit@7", "jit@7")]
    for ep_name, ref_name in pairs:
        run = report.run_named(ep_name)
        reference = report.run_named(ref_name)
        if run is None or reference is None:
            continue
        rm, em = reference.machine, run.machine
        for field in ("instructions", "cycles", "branches",
                      "branch_misses", "loads", "stores", "annotations"):
            a = getattr(rm, field)
            b = getattr(em, field)
            if a != b or repr(a) != repr(b):
                report.add("eventprog", [ref_name, ep_name],
                           "%s differs with event-programs on: %r vs %r"
                           % (field, a, b))
        if tuple(rm.class_counts) != tuple(em.class_counts):
            report.add("eventprog", [ref_name, ep_name],
                       "per-class instruction histogram differs with "
                       "event-programs on")
        if reference.tool.bcrate.bytecodes != run.tool.bcrate.bytecodes:
            report.add("eventprog", [ref_name, ep_name],
                       "bytecode count differs with event-programs on: "
                       "%d vs %d" % (reference.tool.bcrate.bytecodes,
                                     run.tool.bcrate.bytecodes))
        if reference.ctx is None or run.ctx is None:
            continue
        if reference.ctx.jitlog is not None and run.ctx.jitlog is not None:
            if repr(reference.ctx.jitlog.events) != \
                    repr(run.ctx.jitlog.events):
                report.add("eventprog", [ref_name, ep_name],
                           "jitlog event stream differs with "
                           "event-programs on")
        a_ops = [(repr(t.greenkey), list(t.op_exec_counts),
                  [_stable_repr(op) for op in t.ops])
                 for t in reference.ctx.registry.traces]
        b_ops = [(repr(t.greenkey), list(t.op_exec_counts),
                  [_stable_repr(op) for op in t.ops])
                 for t in run.ctx.registry.traces]
        if a_ops != b_ops:
            report.add("eventprog", [ref_name, ep_name],
                       "trace registry differs with event-programs on "
                       "(%d vs %d traces)" % (len(a_ops), len(b_ops)))


def check_tier_invariants(report):
    """The threaded-code tier must change cost, never behavior.

    Two engine pairs feed this check:

    * ``interp`` vs ``tier1`` (direct mode): the tier swaps dispatch
      blocks and BTB site hashes, so cycles legitimately differ — but
      the guest-visible event stream must not: same bytecode count and
      (already checked globally) same stdout.
    * ``jit@7`` vs ``tier1-jit@7``: tracing from threaded code must
      yield exactly the IR tracing from the interpreter yields — the
      meta-interpreter always sees the unfused bytecode stream.  The
      jitlog carries no timestamps and trace/greenkey reprs are stable,
      so the whole compile/abort event stream and every recorded op are
      compared by repr.
    """
    base = report.run_named("interp")
    tiered = report.run_named("tier1")
    if base is not None and tiered is not None:
        if tiered.tier_stats is None:
            report.add("tier1", ["tier1"],
                       "tier-1 engine ran without a TierManager")
        # (When either run hits the instruction cap the cheaper one
        # simply gets further — not a behavior divergence.)
        if not base.truncated and not tiered.truncated \
                and base.tool.bcrate.bytecodes != tiered.tool.bcrate.bytecodes:
            report.add("tier1", ["interp", "tier1"],
                       "bytecode count differs with the tier on: %d vs %d"
                       % (base.tool.bcrate.bytecodes,
                          tiered.tool.bcrate.bytecodes))
    base_jit = report.run_named("jit@7")
    tier_jit = report.run_named("tier1-jit@7")
    if base_jit is None or tier_jit is None:
        return
    if base_jit.ctx is None or tier_jit.ctx is None:
        return
    if base_jit.truncated or tier_jit.truncated:
        return
    a_log = repr(base_jit.ctx.jitlog.events)
    b_log = repr(tier_jit.ctx.jitlog.events)
    if a_log != b_log:
        report.add("tier1_trace", ["jit@7", "tier1-jit@7"],
                   "jitlog event stream differs with the tier on")
    a_ops = [(repr(t.greenkey), [_stable_repr(op) for op in t.ops])
             for t in base_jit.ctx.registry.traces]
    b_ops = [(repr(t.greenkey), [_stable_repr(op) for op in t.ops])
             for t in tier_jit.ctx.registry.traces]
    if a_ops != b_ops:
        for (a_key, a_trace), (b_key, b_trace) in zip(a_ops, b_ops):
            if a_key != b_key:
                report.add("tier1_trace", ["jit@7", "tier1-jit@7"],
                           "trace greenkeys differ: %s vs %s"
                           % (a_key, b_key))
                return
            if a_trace != b_trace:
                report.add("tier1_trace", ["jit@7", "tier1-jit@7"],
                           "recorded IR differs for %s: %s"
                           % (a_key, _first_diff("\n".join(a_trace),
                                                 "\n".join(b_trace))))
                return
        report.add("tier1_trace", ["jit@7", "tier1-jit@7"],
                   "trace counts differ: %d vs %d"
                   % (len(a_ops), len(b_ops)))


_ADDR_RE = re.compile(r"0x[0-9a-f]+")


def _stable_repr(op):
    """repr with host object addresses masked.

    Most recorded values repr stably (W_Int(3), PyCode names), but
    guard descriptors can hold identity-only objects (shape version
    tags) whose default repr embeds the host address; two equivalent
    runs allocate different hosts objects, so addresses are noise.
    """
    return _ADDR_RE.sub("0xADDR", repr(op))


def check_store_roundtrip(run, report):
    """Serializing, restoring, and re-serializing must be bit-identical."""
    from repro.harness import runner

    result = runner.RunResult("difftest", "pypy", 0)
    result.output = run.output
    runner._fill_machine(result, run.machine)
    runner._fill_pintool(result, run.tool)
    if run.ctx is not None:
        result.registry = run.ctx.registry
        result.jitlog_obj = run.ctx.jitlog
        result.gc_stats = run.ctx.gc.stats()
        result.aot_rows = run.tool.aotcalls.all_rows(run.machine.cycles)
    payload = runner._result_to_payload(result)
    restored = runner._result_from_payload(payload)
    payload_again = runner._result_to_payload(restored)
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    blob_again = pickle.dumps(payload_again,
                              protocol=pickle.HIGHEST_PROTOCOL)
    if blob != blob_again:
        differing = [
            field for field in payload
            if pickle.dumps(payload[field]) !=
            pickle.dumps(payload_again.get(field))
        ]
        report.add("store_roundtrip", [run.name],
                   "result payload is not bit-identical after a "
                   "serialize/restore cycle (fields: %s)"
                   % ", ".join(differing))


# -- the oracle entry point ------------------------------------------------------


def check_program(source, thresholds=DEFAULT_THRESHOLDS,
                  max_instructions=DEFAULT_MAX_INSTRUCTIONS,
                  check_store=True):
    """Run ``source`` under every engine; return an :class:`OracleReport`.

    A :class:`repro.core.errors.CompilationError` propagates — the
    generator must only emit compilable programs, and a reproducer that
    stops compiling is a harness bug, not a divergence.
    """
    report = OracleReport(source)
    runs = []

    def _add(run):
        runs.append(run)
        report.runs = runs
        if run.truncated:
            report.inconclusive = True
        return run.truncated

    # Engines run in cost order; a truncated run makes the whole
    # program inconclusive, so bail before paying for the rest.
    if _add(run_cpref(source, max_instructions=max_instructions)):
        return report
    if _add(run_interp(source, jit=False,
                       max_instructions=max_instructions)):
        return report
    if _add(run_interp(source, jit=False, quicken=False,
                       name="quicken-off",
                       max_instructions=max_instructions)):
        return report
    if _add(run_interp(source, jit=False, backend="fast",
                       name="backend-fast",
                       max_instructions=max_instructions)):
        return report
    from repro.backend import native as _native_backend
    if _native_backend.machine_class_or_none() is not None:
        if _add(run_interp(source, jit=False, backend="native",
                           name="backend-native",
                           max_instructions=max_instructions)):
            return report
    if _add(run_interp(source, jit=False, tier1=True, name="tier1",
                       max_instructions=max_instructions)):
        return report
    if _add(run_interp(source, jit=False, eventprog=True,
                       name="eventprog",
                       max_instructions=max_instructions)):
        return report
    for threshold in thresholds:
        if _add(run_interp(
                source, jit=True, threshold=threshold,
                bridge_threshold=max(2, threshold // 3),
                max_instructions=max_instructions)):
            return report
    if 7 in thresholds:
        # Paired with jit@7 by check_tier_invariants: tracing from
        # threaded code must record exactly the interpreter's IR.
        if _add(run_interp(source, jit=True, threshold=7,
                           bridge_threshold=max(2, 7 // 3), tier1=True,
                           name="tier1-jit@7",
                           max_instructions=max_instructions)):
            return report
        # Paired with jit@7 by check_eventprog_equivalence: resident
        # event-programs must leave every counter and the whole trace
        # registry bit-identical.
        if _add(run_interp(source, jit=True, threshold=7,
                           bridge_threshold=max(2, 7 // 3),
                           eventprog=True, name="eventprog-jit@7",
                           max_instructions=max_instructions)):
            return report

    reference = runs[0]
    for run in runs[1:]:
        if run.outcome != reference.outcome:
            if run.output != reference.output:
                detail = "stdout differs: %s" % _first_diff(
                    reference.output, run.output)
            else:
                detail = ("%s errored (%s), %s finished cleanly"
                          % ((run.name, run.error, reference.name)
                             if run.error is not None else
                             (reference.name, reference.error, run.name)))
            report.add("output", [reference.name, run.name], detail)

    for run in runs:
        check_counter_invariants(run, report)
        check_jitlog_invariants(run, report)
        check_static_invariants(run, report)
        check_transval_invariants(run, report)
    check_static_bytecode(source, report)
    check_quicken_equivalence(report)
    check_backend_equivalence(report)
    check_eventprog_equivalence(report)
    check_tier_invariants(report)
    if check_store:
        check_store_roundtrip(runs[-1], report)
    return report


def _first_diff(a, b):
    a_lines = a.splitlines()
    b_lines = b.splitlines()
    for i in range(max(len(a_lines), len(b_lines))):
        left = a_lines[i] if i < len(a_lines) else "<eof>"
        right = b_lines[i] if i < len(b_lines) else "<eof>"
        if left != right:
            return "line %d: %r vs %r" % (i + 1, left, right)
    return "lengths %d vs %d" % (len(a), len(b))


# -- registry-program checks (nativeref and worker agreement) -------------------


def check_kernel_output(name, n=None, report=None):
    """Cross-check a CLBG kernel: nativeref vs cpref vs interp vs JIT.

    Native kernels print the same text the TinyPy source does (they are
    the same algorithms), so stdout must agree everywhere.  Returns an
    OracleReport (optionally extending one passed in).
    """
    from repro.benchprogs import registry
    from repro.harness.runner import run_program
    from repro.nativeref.kernels import KERNELS

    if name not in KERNELS:
        raise ReproError("%r has no native-reference kernel" % name)
    program = registry.py_program(name)
    if n is None:
        n = program.small_n
    if report is None:
        report = OracleReport("<kernel %s n=%d>" % (name, n))
    outputs = {}
    for vm_kind in ("native", "cpython", "pypy_nojit", "pypy"):
        outputs[vm_kind] = run_program(program, vm_kind, n=n,
                                       use_cache=False).output
    reference = outputs["native"]
    for vm_kind, output in outputs.items():
        if output != reference:
            report.add("kernel_output", ["native", vm_kind],
                       "%s: %s" % (name, _first_diff(reference, output)))
    return report


def check_run_many_agreement(jobs=None, workers=2, report=None):
    """Worker-process payloads must match in-process simulation exactly.

    Runs each job twice — serially in this process and through the
    ``run_many`` worker entry point (on a process pool when ``workers``
    allows) — with the cache and store disabled so both paths really
    simulate, and compares the serialized payloads field by field.
    """
    import os

    from repro.benchprogs import registry
    from repro.harness import runner, store

    if report is None:
        report = OracleReport("<run_many agreement>")
    if jobs is None:
        jobs = [runner.job("fannkuch", "pypy",
                           n=registry.py_program("fannkuch").small_n),
                runner.job("fannkuch", "cpython",
                           n=registry.py_program("fannkuch").small_n)]
    saved_store = os.environ.get("REPRO_STORE")
    os.environ["REPRO_STORE"] = "0"
    store.reset_default_store()
    try:
        direct_payloads = []
        for spec in jobs:
            result = runner.run_program(
                spec["program"], spec["vm_kind"], n=spec["n"],
                timeline=spec["timeline"],
                max_instructions=spec["max_instructions"],
                jit_overrides=spec["jit_overrides"],
                predictor=spec["predictor"], language=spec["language"],
                backend=spec.get("backend"), use_cache=False)
            direct_payloads.append(runner._result_to_payload(result))
        pooled = [runner._run_job(dict(spec)) for spec in jobs] \
            if workers <= 1 else _pool_payloads(jobs, workers)
    finally:
        if saved_store is None:
            os.environ.pop("REPRO_STORE", None)
        else:
            os.environ["REPRO_STORE"] = saved_store
        store.reset_default_store()
    for spec, direct, worker in zip(jobs, direct_payloads, pooled):
        label = "%s/%s" % (spec["program"], spec["vm_kind"])
        for field in direct:
            if pickle.dumps(direct[field]) != \
                    pickle.dumps(worker.get(field)):
                report.add("run_many", ["in-process", "worker"],
                           "%s field %r differs: %r vs %r"
                           % (label, field, direct[field],
                              worker.get(field)))
    return report


def _pool_payloads(jobs, workers):
    from concurrent.futures import ProcessPoolExecutor

    from repro.harness import runner

    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(runner._run_job, [dict(s) for s in jobs]))
