"""Numeric-aware text diffing for golden artifacts.

Rendered figures mix integer counters (exact by construction — the
simulator is deterministic), derived ratios (stable but formatted from
floats), and layout characters.  The comparison is token-wise:

* both tokens parse as int  -> exact equality (counter columns);
* both tokens parse as float -> relative tolerance (ratio columns);
* otherwise                  -> exact string equality.

A token may carry trailing punctuation (``%``, ``x``, ``:``) — the
numeric prefix is compared numerically only when the suffixes match.
"""

_SUFFIXES = ("%", "x", "s", ":", ",")


def _split_numeric(token):
    """Return (numeric_value, kind, suffix) or (None, None, token)."""
    body, suffix = token, ""
    while body and body[-1] in "%x:,s":
        suffix = body[-1] + suffix
        body = body[:-1]
    try:
        return int(body), "int", suffix
    except ValueError:
        pass
    try:
        return float(body), "float", suffix
    except ValueError:
        return None, None, token


def tokens_match(a, b, float_tol=1e-4):
    if a == b:
        return True
    va, ka, sa = _split_numeric(a)
    vb, kb, sb = _split_numeric(b)
    if ka is None or kb is None or sa != sb:
        return False
    if ka == "int" and kb == "int":
        return va == vb
    # At least one side is a float-formatted ratio: compare with a
    # relative tolerance (absolute near zero).
    scale = max(abs(va), abs(vb))
    if scale < 1e-9:
        return True
    return abs(va - vb) <= float_tol * scale


def compare_text(golden, fresh, float_tol=1e-4, max_reports=12):
    """Return a list of human-readable mismatch strings (empty = match)."""
    mismatches = []
    golden_lines = golden.rstrip("\n").split("\n")
    fresh_lines = fresh.rstrip("\n").split("\n")
    if len(golden_lines) != len(fresh_lines):
        mismatches.append("line count: golden=%d fresh=%d"
                          % (len(golden_lines), len(fresh_lines)))
    for i, (gl, fl) in enumerate(zip(golden_lines, fresh_lines), start=1):
        if gl == fl:
            continue
        gt, ft = gl.split(), fl.split()
        if len(gt) != len(ft):
            mismatches.append("line %d: token count %d != %d\n  golden: %s\n"
                              "  fresh:  %s" % (i, len(gt), len(ft), gl, fl))
        else:
            bad = [j for j, (a, b) in enumerate(zip(gt, ft))
                   if not tokens_match(a, b, float_tol)]
            if bad:
                mismatches.append(
                    "line %d: tokens %s differ\n  golden: %s\n  fresh:  %s"
                    % (i, bad, gl, fl))
        if len(mismatches) >= max_reports:
            mismatches.append("... (further mismatches suppressed)")
            break
    return mismatches
