"""The virtual ISA: instruction classes and mixes."""
