"""Per-opnum specifications for the IR verifier and effect cross-checker.

The table is *derived* from the single sources of truth — the op
registry in :mod:`repro.jit.ir` and the concrete semantics in
:mod:`repro.jit.semantics` — rather than hand-duplicated: arities come
from the ``EVAL`` lambdas where Python exposes them, operand kinds from
the op category, and the set of fold-unsafe ("raising") operations is
discovered by probing each ``EVAL`` entry with adversarial witness
inputs (negative shift counts, zero divisors, infinities, out-of-range
indices).  Only the few ops with no ``EVAL`` entry (memory, guards,
calls, control) carry explicit specs.
"""

from repro.jit import ir
from repro.jit.semantics import EVAL, INT_MIN

#: Operand kind tags.  Kind checks apply to ``Const`` operands only —
#: variables have no static type here — so they are exact, not lattice.
KIND_INT = "int"       # Python int (bool acceptable: it is an int)
KIND_NUM = "num"       # int or float
KIND_STR = "str"       # str
KIND_CLS = "cls"       # a class object (guard_class / new_with_vtable)
KIND_ANY = "any"

#: Descriptor kind tags.
DESCR_NONE = "none"        # descr must be None
DESCR_FIELD = "field"      # ir.FieldDescr
DESCR_CALL = "call"        # ir.CallDescr
DESCR_ARRAY = "array"      # the array's storage class (e.g. LLArray)
DESCR_CLASS = "class"      # new_with_vtable: the instance class
DESCR_TOKEN = "token"      # call_assembler: any non-None token
DESCR_JUMP = "jump"        # jump: a LABEL op or a target Trace
DESCR_FREE = "free"        # anything (greenkeys, labels)


class OpSpec(object):
    """Arity, operand kinds and descriptor kind for one opnum."""

    __slots__ = ("arity", "kinds", "descr")

    def __init__(self, arity, kinds, descr):
        self.arity = arity      # int, or None for variadic
        self.kinds = kinds      # tuple of kind tags (len == arity) or None
        self.descr = descr


# EVAL entries implemented by builtins expose no __code__; their arities
# are pinned here (cross-checked against OPSPEC by the effects pass).
_BUILTIN_ARITY = {
    ir.FLOAT_ABS: 1,
    ir.FLOAT_SQRT: 1,
    ir.CAST_INT_TO_FLOAT: 1,
    ir.CAST_FLOAT_TO_INT: 1,
    ir.STRLEN: 1,
    ir.UNICODELEN: 1,
}


def eval_arity(opnum, eval_map=None):
    """Arity of the concrete-semantics implementation of ``opnum``."""
    fn = (eval_map or EVAL)[opnum]
    code = getattr(fn, "__code__", None)
    if code is not None:
        return code.co_argcount
    return _BUILTIN_ARITY[opnum]


def _category_kind(opnum):
    category = ir.OP_CATEGORIES[opnum]
    if category == ir.CAT_INT:
        return KIND_INT
    if category == ir.CAT_FLOAT:
        return KIND_NUM
    if category in (ir.CAT_STR, ir.CAT_UNICODE):
        return KIND_STR
    return KIND_ANY


def _build_opspec():
    specs = {}
    # Pure ops: arity from EVAL, kinds from the category.
    for opnum in EVAL:
        arity = eval_arity(opnum)
        kind = _category_kind(opnum)
        kinds = (kind,) * arity
        specs[opnum] = OpSpec(arity, kinds, DESCR_NONE)
    # Index operands of the get-item family are ints, not strings.
    specs[ir.STRGETITEM] = OpSpec(2, (KIND_STR, KIND_INT), DESCR_NONE)
    specs[ir.UNICODEGETITEM] = OpSpec(2, (KIND_STR, KIND_INT), DESCR_NONE)
    # CAST_INT_TO_FLOAT takes an int (the category would say "num").
    specs[ir.CAST_INT_TO_FLOAT] = OpSpec(1, (KIND_INT,), DESCR_NONE)
    # Memory operations.
    specs[ir.GETFIELD_GC] = OpSpec(1, (KIND_ANY,), DESCR_FIELD)
    specs[ir.GETFIELD_GC_PURE] = OpSpec(1, (KIND_ANY,), DESCR_FIELD)
    specs[ir.SETFIELD_GC] = OpSpec(2, (KIND_ANY, KIND_ANY), DESCR_FIELD)
    specs[ir.GETARRAYITEM_GC] = OpSpec(2, (KIND_ANY, KIND_INT),
                                       DESCR_ARRAY)
    specs[ir.SETARRAYITEM_GC] = OpSpec(3, (KIND_ANY, KIND_INT, KIND_ANY),
                                       DESCR_ARRAY)
    specs[ir.ARRAYLEN_GC] = OpSpec(1, (KIND_ANY,), DESCR_ARRAY)
    # Allocation.
    specs[ir.NEW_WITH_VTABLE] = OpSpec(1, (KIND_CLS,), DESCR_CLASS)
    specs[ir.NEW_ARRAY] = OpSpec(1, (KIND_INT,), DESCR_ARRAY)
    # Guards.
    for guard in ir.GUARDS:
        specs[guard] = OpSpec(1, (KIND_ANY,), DESCR_NONE)
    specs[ir.GUARD_VALUE] = OpSpec(2, (KIND_ANY, KIND_ANY), DESCR_NONE)
    specs[ir.GUARD_CLASS] = OpSpec(2, (KIND_ANY, KIND_CLS), DESCR_NONE)
    # Calls.
    specs[ir.CALL] = OpSpec(None, None, DESCR_CALL)
    specs[ir.CALL_PURE] = OpSpec(None, None, DESCR_CALL)
    specs[ir.CALL_ASSEMBLER] = OpSpec(None, None, DESCR_TOKEN)
    # Control.
    specs[ir.LABEL] = OpSpec(None, None, DESCR_NONE)
    specs[ir.JUMP] = OpSpec(None, None, DESCR_JUMP)
    specs[ir.FINISH] = OpSpec(None, None, DESCR_FREE)
    specs[ir.DEBUG_MERGE_POINT] = OpSpec(0, (), DESCR_FREE)
    assert len(specs) == ir.N_OPS, "opnum without a spec"
    return specs


OPSPEC = _build_opspec()


# -- fold-safety probing ------------------------------------------------------

# Witness inputs per kind.  Shift counts stay <= 63 so probing never
# materializes an astronomically large integer; INT_MIN as the *count*
# still triggers Python's negative-shift ValueError.
_WITNESSES = {
    KIND_INT: (0, 1, -1, 7, 63, INT_MIN),
    KIND_NUM: (0.0, 1.5, -1.0, float("inf"), float("nan")),
    KIND_STR: ("", "a", "ab"),
    KIND_ANY: (None, 1, "x"),
}


def _witness_tuples(kinds):
    if not kinds:
        return [()]
    tuples = [()]
    for kind in kinds:
        tuples = [prefix + (value,)
                  for prefix in tuples
                  for value in _WITNESSES[kind]]
    return tuples


def compute_raising(eval_map=None):
    """Opnums whose concrete semantics can raise on in-domain inputs.

    Probes every ``EVAL`` entry with adversarial witnesses; any raise —
    ZeroDivisionError, ValueError, OverflowError, LLOverflow, ... —
    marks the op as unsafe to fold at optimization time (a const-const
    fold would crash the compiler instead of deferring the error to
    execution, where the guest-level handler lives).
    """
    eval_map = eval_map or EVAL
    raising = set()
    for opnum, fn in eval_map.items():
        spec = OPSPEC[opnum]
        kinds = spec.kinds or (KIND_ANY,) * eval_arity(opnum, eval_map)
        for args in _witness_tuples(kinds):
            try:
                fn(*args)
            except Exception:
                raising.add(opnum)
                break
    return frozenset(raising)


RAISING = compute_raising()

#: The opnums the optimizer treats as heap-invalidation points
#: (mirrors OptPass._handle_setfield/_handle_setarrayitem/_handle_call/
#: CALL_ASSEMBLER); the effects pass cross-checks this against the
#: declared ``ir.EFFECT_OPS``.
OPT_INVALIDATION_OPS = frozenset((
    ir.SETFIELD_GC,
    ir.SETARRAYITEM_GC,
    ir.CALL,
    ir.CALL_ASSEMBLER,
))
