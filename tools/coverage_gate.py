#!/usr/bin/env python
"""Line-coverage gate with a recorded baseline.

Measures line coverage of the focused unit suites over their subsystems
and fails when coverage regresses below the recorded baseline (minus a
small margin that absorbs backend differences).  Scope is deliberately
the fast, deterministic suites — the simulator integration tests are
exercised by the tier-1 job and would make tracing unaffordably slow.

Backends:

* ``coverage.py`` when importable (CI installs it; C tracer, fast);
* otherwise a dependency-free ``sys.settrace`` tracer whose executable
  -line universe is derived from compiled code objects (requires
  Python 3.10+ for ``co_lines``), measuring the same definition.

Usage (repo root):

    PYTHONPATH=src python tools/coverage_gate.py           # check
    PYTHONPATH=src python tools/coverage_gate.py --record  # new baseline
"""

import argparse
import json
import os
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

# Subsystems measured, and the suites that exercise them.
TARGETS = ("repro/telemetry", "repro/rktlang", "repro/harness",
           "repro/pintool")
TEST_DIRS = ("tests/telemetry", "tests/rktlang", "tests/harness",
             "tests/pintool")

BASELINE_PATH = os.path.join(ROOT, "tools", "coverage_baseline.json")

#: Allowed drop below the recorded percentage before the gate fails.
#: Covers the (small) definitional drift between backends.
MARGIN = 2.0


def target_files():
    files = []
    for target in TARGETS:
        base = os.path.join(ROOT, "src", target)
        for dirpath, _dirnames, filenames in os.walk(base):
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    files.append(os.path.join(dirpath, filename))
    return files


def _run_pytest():
    import pytest

    args = ["-q", "-p", "no:cacheprovider"]
    args += [os.path.join(ROOT, d) for d in TEST_DIRS]
    code = pytest.main(args)
    if code != 0:
        raise SystemExit("coverage gate: test run failed (exit %s)" % code)


# -- coverage.py backend --------------------------------------------------------


def measure_with_coverage_py():
    import coverage

    cov = coverage.Coverage(source=[os.path.join(ROOT, "src", t)
                                    for t in TARGETS])
    cov.start()
    try:
        _run_pytest()
    finally:
        cov.stop()
    covered = total = 0
    for path in target_files():
        try:
            _fn, executable, _excl, missing, _fmt = cov.analysis2(path)
        except coverage.CoverageException:
            continue
        total += len(executable)
        covered += len(executable) - len(missing)
    return covered, total


# -- stdlib fallback backend ----------------------------------------------------


def _executable_lines(path):
    """Line numbers with code, from the compiled code-object tree."""
    with open(path) as handle:
        source = handle.read()
    lines = set()
    stack = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        lines.update(line for _start, _end, line in code.co_lines()
                     if line is not None)
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    return lines


def measure_with_settrace():
    if not hasattr(sys, "version_info") or sys.version_info < (3, 10):
        raise SystemExit("coverage gate: install coverage.py on "
                         "Python < 3.10 (no co_lines support)")
    prefixes = tuple(os.path.join(ROOT, "src", t) + os.sep
                     for t in TARGETS) + tuple(
        os.path.join(ROOT, "src", t) + ".py" for t in TARGETS)
    hits = {}

    def local_trace(frame, event, _arg):
        if event == "line":
            hits[frame.f_code.co_filename].add(frame.f_lineno)
        return local_trace

    def global_trace(frame, event, _arg):
        filename = frame.f_code.co_filename
        if filename.startswith(prefixes):
            if filename not in hits:
                hits[filename] = set()
            return local_trace
        return None

    sys.settrace(global_trace)
    try:
        _run_pytest()
    finally:
        sys.settrace(None)
    covered = total = 0
    for path in target_files():
        executable = _executable_lines(path)
        total += len(executable)
        covered += len(executable & hits.get(path, set()))
    return covered, total


def measure():
    try:
        import coverage  # noqa: F401
        backend = "coverage.py"
        covered, total = measure_with_coverage_py()
    except ImportError:
        backend = "settrace"
        covered, total = measure_with_settrace()
    percent = 100.0 * covered / total if total else 0.0
    return backend, covered, total, percent


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--record", action="store_true",
                        help="record the measured percentage as the new "
                             "baseline")
    parser.add_argument("--margin", type=float, default=MARGIN,
                        help="allowed drop below baseline (default %.1f "
                             "points)" % MARGIN)
    args = parser.parse_args(argv)

    backend, covered, total, percent = measure()
    print("coverage[%s]: %d/%d lines = %.2f%%"
          % (backend, covered, total, percent))

    if args.record:
        with open(BASELINE_PATH, "w") as handle:
            json.dump({"line_percent": round(percent, 2),
                       "backend": backend,
                       "targets": list(TARGETS)}, handle, indent=2)
            handle.write("\n")
        print("recorded baseline %.2f%% -> %s" % (percent, BASELINE_PATH))
        return 0

    if not os.path.exists(BASELINE_PATH):
        raise SystemExit("no baseline recorded; run with --record first")
    with open(BASELINE_PATH) as handle:
        baseline = json.load(handle)
    floor = baseline["line_percent"] - args.margin
    delta = percent - baseline["line_percent"]
    print("baseline %.2f%% (recorded with %s), floor %.2f%%, "
          "delta %+.2f points"
          % (baseline["line_percent"], baseline.get("backend", "?"),
             floor, delta))
    if percent < floor:
        print("COVERAGE REGRESSION: %.2f%% < %.2f%% (%+.2f points vs "
              "baseline; if the drop is intentional, re-record with "
              "--record)" % (percent, floor, delta))
        return 1
    if delta > args.margin:
        print("note: coverage is %+.2f points above baseline — "
              "consider re-recording so the gate stays tight" % delta)
    print("coverage gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
