"""repro: a from-scratch reproduction of "Cross-Layer Workload
Characterization of Meta-Tracing JIT VMs" (Ilbeyi, Bolz-Tereick, Batten;
IISWC 2017).

Public entry points:

* :func:`repro.harness.runner.run_program` — run any benchmark on any of
  the seven VM configurations and get a full RunResult.
* :mod:`repro.harness.experiments` — one function per paper table/figure.
* :class:`repro.pylang.interp.PyVM` / :class:`repro.rktlang.vm.RktVM` —
  the meta-tracing guest VMs.
* :class:`repro.interp.context.VMContext` — machine + GC + JIT state for
  embedding a guest VM.

See README.md for the architecture overview and DESIGN.md for the
per-experiment index.
"""

__version__ = "1.0.0"

__all__ = [
    "core", "isa", "uarch", "pintool", "gc", "rlib", "interp", "jit",
    "pylang", "rktlang", "nativeref", "benchprogs", "harness",
]
