"""Per-run VM telemetry session: cross-layer tags become spans.

A :class:`VMTelemetry` attaches to one :class:`Machine` and converts
the paired start/stop annotations every layer already emits (tracing,
optimizer, backend, JIT enter/leave, residual AOT calls, blackhole
deoptimization, GC collections) into a strictly-nested span tree on a
**machine-cycle clock** — deterministic and exactly comparable with
:class:`repro.pintool.phases.PhaseTracker` windows.

The session registers per-tag listeners only (never a catch-all), so
the machine's batched annotation fast paths for ``DISPATCH``/``IR_NODE``
stay on their fused code paths while recording, and nothing at all is
registered when telemetry is disabled.

Layers additionally publish metrics and span arguments through the
session (``ctx.telemetry``): the GC reports surviving bytes, the tracer
reports recorded/compiled op counts, the driver reports hot-loop
triggers and deopts.  The session object forwards the bus's metric and
span API, so call sites hold a single handle.
"""

from repro.core import tags
from repro.core.config import CLOCK_HZ
from repro.telemetry.bus import TelemetryBus

CYCLES_PER_US = CLOCK_HZ / 1e6

# tag -> (span name, category) for span-opening annotations.
_OPEN = {
    tags.TRACE_START: ("trace", "jit.tracer"),
    tags.BRIDGE_START: ("bridge", "jit.tracer"),
    tags.OPT_START: ("optimize", "jit.optimizer"),
    tags.BACKEND_START: ("assemble", "jit.backend"),
    tags.JIT_ENTER: ("jit", "jit.exec"),
    tags.JIT_CALL_START: ("jit_call", "interp.aot"),
    tags.BLACKHOLE_START: ("blackhole", "jit.blackhole"),
    tags.GC_MINOR_START: ("gc_minor", "gc.heap"),
    tags.GC_MAJOR_START: ("gc_major", "gc.heap"),
    tags.TIER1_COMPILE_START: ("tier1_compile", "interp.tier1"),
}

_CLOSE = {
    tags.TRACE_STOP: "trace",
    tags.BRIDGE_STOP: "bridge",
    tags.OPT_STOP: "optimize",
    tags.BACKEND_STOP: "assemble",
    tags.JIT_LEAVE: "jit",
    tags.JIT_CALL_STOP: "jit_call",
    tags.BLACKHOLE_STOP: "blackhole",
    tags.GC_MINOR_STOP: "gc_minor",
    tags.GC_MAJOR_STOP: "gc_major",
    tags.TIER1_COMPILE_STOP: "tier1_compile",
}


class VMTelemetry(object):
    """Telemetry session bound to one simulated VM run."""

    def __init__(self, machine, label=None, pid=0):
        self.machine = machine
        self.bus = TelemetryBus(
            clock=lambda: machine.cycles,
            ticks_per_us=CYCLES_PER_US,
            pid=pid,
            process_name=label or "vm",
        )
        self._registrations = []
        for tag in _OPEN:
            self._register(tag, self._on_open)
        for tag in _CLOSE:
            self._register(tag, self._on_close)
        # The root span: everything outside a tagged phase is the
        # interpreter, exactly like PhaseTracker's bottom-of-stack.
        self.bus.begin("run", "interp.dispatch")
        self._finished = False

    def _register(self, tag, listener):
        self.machine.add_tag_listener(tag, listener)
        self._registrations.append((tag, listener))

    # -- annotation listeners ------------------------------------------------

    def _on_open(self, tag, payload):
        name, cat = _OPEN[tag]
        args = None
        if payload is not None:
            args = {"key": _payload_repr(payload)}
        self.bus.begin(name, cat, args)

    def _on_close(self, tag, payload):
        # Tolerant matching (like PhaseTracker): an unbalanced stop —
        # e.g. a simulation aborted mid-phase — is ignored.
        self.bus.end(_CLOSE[tag])

    # -- bus facade (one handle for instrumented layers) ---------------------

    def count(self, name, delta=1):
        self.bus.count(name, delta)

    def gauge(self, name, value):
        self.bus.gauge(name, value)

    def histogram(self, name, value):
        self.bus.histogram(name, value)

    def instant(self, name, cat="", args=None):
        self.bus.instant(name, cat, args)

    def annotate(self, **args):
        self.bus.annotate(**args)

    # -- lifecycle -----------------------------------------------------------

    def finish(self):
        """Detach from the machine and close the event stream."""
        if self._finished:
            return
        for tag, listener in self._registrations:
            self.machine.remove_tag_listener(tag, listener)
        self._registrations = []
        self.bus.finish()
        self._finished = True

    def events(self):
        self.finish()
        return self.bus.events()


def _payload_repr(payload):
    """A JSON-safe, compact rendering of an annotation payload."""
    if isinstance(payload, (int, float, str, bool)):
        return payload
    if isinstance(payload, tuple):
        # Greenkeys are (code, pc) pairs; render the code's name.
        parts = []
        for item in payload:
            name = getattr(item, "name", None)
            parts.append(name if name is not None else _payload_repr(item))
        return ":".join(str(p) for p in parts)
    return repr(payload)
