"""Repo-wide pytest options (this is the initial conftest, so it is the
only place ``pytest_addoption`` hooks may live)."""


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens", action="store_true", default=False,
        help="rewrite tests/golden/goldens/*.txt from this run's output "
             "instead of diffing against them")
