"""Static verification of JIT traces (recorded, optimized, backend).

Checks, over the SSA-style :class:`repro.jit.ir.IROp` stream:

* def-before-use — every ``IROp``/``InputArg`` argument must dominate
  its use (``IR1xx``),
* per-opnum arity, ``Const`` operand kinds and descriptor kinds, from
  the derived :mod:`repro.analysis.opspec` table (``IR2xx``),
* guard/resume-snapshot consistency — every guard carries a snapshot
  whose values are dominating defs or constants, and every
  :class:`VirtualSpec` field is rematerializable (``IR3xx``),
* loop/label/jump wiring incl. the loop-peeling invariant that the
  entry jump, the peeled label and the back jump agree on arity
  (``IR4xx``),
* effect discipline — no guard after a non-re-executable call in the
  same merge region (the tracer's hazard rule, ``IR501``), and no
  un-forwarded heap read while the optimizer's heap cache should have
  held the value (``IR502``, warning),
* backend numbering and cost attachment (``IR6xx``).

All passes are pure host-side analysis: they never touch the simulated
machine, so running them behind ``config.verify`` cannot perturb any
counter the paper's figures are built from.
"""

from repro.analysis import opspec
from repro.analysis.diagnostics import Report
from repro.jit import ir
from repro.jit.resume import VirtualSpec
from repro.jit.trace import InputArg, Trace

_PASS = "irverify"


def _is_class(value):
    return isinstance(value, type)


def _const_kind_ok(kind, value):
    if kind == opspec.KIND_INT:
        return isinstance(value, int)
    if kind == opspec.KIND_NUM:
        return isinstance(value, (int, float))
    if kind == opspec.KIND_STR:
        return isinstance(value, str)
    if kind == opspec.KIND_CLS:
        return _is_class(value)
    return True


def _descr_ok(op):
    """Check the descriptor kind; returns (ok, expected_description)."""
    spec = opspec.OPSPEC[op.opnum]
    descr = op.descr
    kind = spec.descr
    if kind == opspec.DESCR_NONE:
        return descr is None, "no descr"
    if kind == opspec.DESCR_FIELD:
        return isinstance(descr, ir.FieldDescr), "a FieldDescr"
    if kind == opspec.DESCR_CALL:
        return isinstance(descr, ir.CallDescr), "a CallDescr"
    if kind == opspec.DESCR_ARRAY:
        return _is_class(descr), "an array storage class"
    if kind == opspec.DESCR_CLASS:
        return _is_class(descr), "the instance class"
    if kind == opspec.DESCR_TOKEN:
        return descr is not None, "a call_assembler token"
    if kind == opspec.DESCR_JUMP:
        return (descr is None or isinstance(descr, Trace)
                or (isinstance(descr, ir.IROp)
                    and descr.opnum == ir.LABEL)), \
            "a LABEL op or a target Trace"
    return True, "anything"


def _call_effects(op):
    """The declared effects of a call op's target, or None."""
    descr = op.descr
    if isinstance(descr, ir.CallDescr):
        return getattr(descr.func, "effects", None)
    return None


class _OpStreamChecker(object):
    """Shared single-pass walk: def-before-use, specs, snapshots,
    the guard-after-unsafe-call hazard replay."""

    def __init__(self, report, where_prefix, inputargs):
        self.report = report
        self.where_prefix = where_prefix
        self.defined = set(inputargs or ())
        self.seen_ops = set()
        self.hazard = False
        self.hazard_source = None

    def where(self, i, op):
        try:
            name = op.name
        except Exception:
            name = "op#%d" % op.opnum
        return "%s op %d (%s)" % (self.where_prefix, i, name)

    def check(self, ops):
        for i, op in enumerate(ops):
            self.check_op(i, op)

    def check_op(self, i, op):
        report = self.report
        where = self.where(i, op)
        if not isinstance(op, ir.IROp):
            report.error("IR102", "stream element is %r, not an IROp"
                         % (op,), where=where, pass_name=_PASS)
            return
        if not 0 <= op.opnum < ir.N_OPS:
            report.error("IR204", "opnum %d out of range" % op.opnum,
                         where=where, pass_name=_PASS)
            return
        if op in self.seen_ops:
            report.error("IR103", "op emitted twice (SSA result reused)",
                         where=where, pass_name=_PASS)
            return
        self.seen_ops.add(op)
        if op.opnum == ir.LABEL:
            # Label arguments become definitions for the loop body.
            for arg in op.args:
                if isinstance(arg, (InputArg, ir.IROp)):
                    self.defined.add(arg)
        self._check_args(i, op)
        self._check_descr(i, op)
        self._check_snapshot(i, op)
        self._check_hazard(i, op)
        self.defined.add(op)

    def _check_args(self, i, op):
        report = self.report
        where = self.where(i, op)
        spec = opspec.OPSPEC[op.opnum]
        if spec.arity is not None and len(op.args) != spec.arity:
            report.error(
                "IR201", "%s expects %d operands, got %d"
                % (op.name, spec.arity, len(op.args)),
                where=where, pass_name=_PASS)
        for arg_i, arg in enumerate(op.args):
            if isinstance(arg, ir.Const):
                if spec.kinds is not None and arg_i < len(spec.kinds):
                    kind = spec.kinds[arg_i]
                    if not _const_kind_ok(kind, arg.value):
                        report.error(
                            "IR202",
                            "operand %d of %s is Const(%r), expected %s"
                            % (arg_i, op.name, arg.value, kind),
                            where=where, pass_name=_PASS)
            elif isinstance(arg, (ir.IROp, InputArg)):
                if arg not in self.defined:
                    report.error(
                        "IR101",
                        "operand %d of %s is used before definition"
                        % (arg_i, op.name),
                        where=where, pass_name=_PASS)
            else:
                report.error(
                    "IR102", "operand %d of %s is %r (not IROp/Const/"
                    "InputArg)" % (arg_i, op.name, arg),
                    where=where, pass_name=_PASS)
        # new_with_vtable's single operand must be the class constant,
        # and it must agree with the descr (the executor reads both).
        if op.opnum == ir.NEW_WITH_VTABLE and op.args:
            arg = op.args[0]
            if not isinstance(arg, ir.Const):
                report.error(
                    "IR202", "new_with_vtable operand must be a Const "
                    "class, got %r" % (arg,),
                    where=where, pass_name=_PASS)
            elif _is_class(op.descr) and arg.value is not op.descr:
                report.error(
                    "IR203", "new_with_vtable descr %r does not match "
                    "its class operand %r" % (op.descr, arg.value),
                    where=where, pass_name=_PASS)
        if op.opnum == ir.GUARD_CLASS and len(op.args) == 2:
            if not isinstance(op.args[1], ir.Const):
                report.error(
                    "IR202", "guard_class expected-class operand must "
                    "be a Const", where=where, pass_name=_PASS)

    def _check_descr(self, i, op):
        ok, expected = _descr_ok(op)
        if not ok:
            self.report.error(
                "IR203", "%s carries descr %r, expected %s"
                % (op.name, op.descr, expected),
                where=self.where(i, op), pass_name=_PASS)

    def _check_snapshot(self, i, op):
        report = self.report
        where = self.where(i, op)
        needs_snapshot = (op.opnum in ir.GUARDS
                          or op.opnum == ir.DEBUG_MERGE_POINT)
        if not needs_snapshot:
            return
        snapshot = op.snapshot
        if snapshot is None:
            report.error(
                "IR301", "%s has no resume snapshot" % op.name,
                where=where, pass_name=_PASS)
            return
        for value in snapshot.iter_values():
            self._check_resume_value(value, where, nested=False)

    def _check_resume_value(self, value, where, nested):
        report = self.report
        if isinstance(value, ir.Const):
            return
        if isinstance(value, VirtualSpec):
            for field_value in value.fields.values():
                self._check_resume_value(field_value, where, nested=True)
            return
        if isinstance(value, (ir.IROp, InputArg)):
            if value not in self.defined:
                code = "IR303" if nested else "IR302"
                what = ("VirtualSpec field" if nested
                        else "snapshot value")
                report.error(
                    code, "%s %r is not a dominating definition or "
                    "constant (rematerialization would read garbage)"
                    % (what, value), where=where, pass_name=_PASS)
            return
        code = "IR303" if nested else "IR302"
        report.error(code, "snapshot holds %r (not IROp/Const/InputArg/"
                     "VirtualSpec)" % (value,), where=where,
                     pass_name=_PASS)

    def _check_hazard(self, i, op):
        opnum = op.opnum
        if opnum == ir.DEBUG_MERGE_POINT:
            self.hazard = False
            self.hazard_source = None
            return
        if opnum == ir.CALL and _call_effects(op) == "any":
            self.hazard = True
            self.hazard_source = repr(op.descr)
            return
        if opnum == ir.CALL_ASSEMBLER:
            self.hazard = True
            self.hazard_source = "call_assembler"
            return
        if opnum in ir.GUARDS and self.hazard:
            self.report.error(
                "IR501", "%s recorded after non-re-executable call %s "
                "in the same merge region (deopt would replay the "
                "call's effects)" % (op.name, self.hazard_source),
                where=self.where(i, op), pass_name=_PASS)
            bridge = getattr(op, "bridge", None)
            if bridge is not None:
                self._walk_bridge_hazard(bridge)

    def _walk_bridge_hazard(self, bridge):
        """Seed the hazard walk into an attached bridge's op stream.

        A bridge continues execution from its guard's deopt point, so
        its leading ops still sit in the parent's merge region: any
        guard there is as unreplayable as one in the parent.  The walk
        stops at the bridge's first merge point (hazard reset) or its
        first own unsafe call (from there the bridge's own verification
        reports).
        """
        prefix = "%s -> bridge #%d" % (self.where_prefix, bridge.trace_id)
        for j, bop in enumerate(bridge.ops):
            if not isinstance(bop, ir.IROp):
                continue
            opnum = bop.opnum
            if opnum == ir.DEBUG_MERGE_POINT:
                return
            if ((opnum == ir.CALL and _call_effects(bop) == "any")
                    or opnum == ir.CALL_ASSEMBLER):
                return
            if opnum in ir.GUARDS:
                self.report.error(
                    "IR501", "%s inherits non-re-executable call %s "
                    "from the parent trace's merge region (deopt would "
                    "replay the call's effects)"
                    % (bop.name, self.hazard_source),
                    where="%s op %d (%s)" % (prefix, j, bop.name),
                    pass_name=_PASS)


def verify_recorded(ops, inputargs, subject="recorded trace"):
    """Verify a tracer-recorded op stream (before optimization)."""
    report = Report(subject)
    checker = _OpStreamChecker(report, subject, inputargs)
    for i, op in enumerate(ops):
        if isinstance(op, ir.IROp) and op.opnum in (ir.LABEL, ir.JUMP,
                                                    ir.FINISH):
            report.error(
                "IR404", "%s in a recorded stream (control ops are "
                "introduced by the optimizer)" % op.name,
                where=checker.where(i, op), pass_name=_PASS)
            continue
        checker.check_op(i, op)
    return report


def _check_jump_against(report, op, i, where, target_args, what):
    if len(op.args) != target_args:
        report.error(
            "IR401", "jump carries %d values but %s expects %d"
            % (len(op.args), what, target_args),
            where=where, pass_name=_PASS)


def _verify_wiring(report, trace, subject):
    """Label/jump structure: bridges end in a cross-trace jump; loops
    close on their own label; peeled loops agree across the back edge."""
    ops = trace.ops
    if not ops:
        report.error("IR402", "trace has no operations", where=subject,
                     pass_name=_PASS)
        return
    label_index = trace.label_index
    last = ops[-1]
    jump_positions = [i for i, op in enumerate(ops)
                      if isinstance(op, ir.IROp) and op.opnum == ir.JUMP]
    label_positions = [i for i, op in enumerate(ops)
                       if isinstance(op, ir.IROp)
                       and op.opnum == ir.LABEL]
    if not (isinstance(last, ir.IROp) and last.opnum in (ir.JUMP,
                                                         ir.FINISH)):
        report.error(
            "IR404", "trace does not end in jump/finish (falls off "
            "the compiled code)", where="%s op %d" % (subject,
                                                      len(ops) - 1),
            pass_name=_PASS)
        return
    if label_index < 0:
        # Straight/bridge trace: exactly one jump, targeting a Trace.
        if label_positions:
            report.error(
                "IR402", "label_index is -1 but trace holds a LABEL "
                "at op %d" % label_positions[0], where=subject,
                pass_name=_PASS)
        if jump_positions != [len(ops) - 1]:
            extra = [i for i in jump_positions if i != len(ops) - 1]
            report.error(
                "IR404", "unreachable ops after mid-trace jump at op "
                "%d" % extra[0], where=subject, pass_name=_PASS)
            return
        target = last.descr
        if not isinstance(target, Trace):
            report.error(
                "IR403", "bridge-closing jump descr is %r, expected a "
                "target Trace" % (target,),
                where="%s op %d" % (subject, len(ops) - 1),
                pass_name=_PASS)
            return
        _check_jump_against(report, last, len(ops) - 1,
                            "%s op %d" % (subject, len(ops) - 1),
                            len(target.inputargs),
                            "target trace #%d entry" % target.trace_id)
        return
    if label_index >= len(ops) or not (
            isinstance(ops[label_index], ir.IROp)
            and ops[label_index].opnum == ir.LABEL):
        report.error(
            "IR402", "label_index %d does not point at a LABEL op"
            % label_index, where=subject, pass_name=_PASS)
        return
    label = ops[label_index]
    if label_positions != [label_index]:
        extra = [i for i in label_positions if i != label_index]
        report.error(
            "IR402", "stray LABEL at op %d (label_index is %d)"
            % (extra[0], label_index), where=subject, pass_name=_PASS)
    expected_jumps = [len(ops) - 1]
    if label_index > 0:
        # Peeled loop: the op before the label is the entry jump.
        expected_jumps.insert(0, label_index - 1)
        entry = ops[label_index - 1]
        if not (isinstance(entry, ir.IROp) and entry.opnum == ir.JUMP):
            report.error(
                "IR403", "peeled loop has no entry jump immediately "
                "before its label", where="%s op %d"
                % (subject, label_index - 1), pass_name=_PASS)
        else:
            if entry.descr is not label:
                report.error(
                    "IR403", "entry jump targets %r, not the peeled "
                    "label" % (entry.descr,),
                    where="%s op %d" % (subject, label_index - 1),
                    pass_name=_PASS)
            _check_jump_against(
                report, entry, label_index - 1,
                "%s op %d" % (subject, label_index - 1),
                len(label.args), "the peeled label")
    if jump_positions != expected_jumps:
        extra = [i for i in jump_positions if i not in expected_jumps]
        if extra:
            report.error(
                "IR404", "unreachable ops after mid-trace jump at op "
                "%d" % extra[0], where=subject, pass_name=_PASS)
    back = last
    if back.opnum == ir.JUMP:
        if back.descr is not label and not isinstance(back.descr, Trace):
            report.error(
                "IR403", "loop-closing jump targets %r, not the "
                "trace's own label" % (back.descr,),
                where="%s op %d" % (subject, len(ops) - 1),
                pass_name=_PASS)
        elif back.descr is label:
            _check_jump_against(
                report, back, len(ops) - 1,
                "%s op %d" % (subject, len(ops) - 1),
                len(label.args), "the loop label")
        else:
            _check_jump_against(
                report, back, len(ops) - 1,
                "%s op %d" % (subject, len(ops) - 1),
                len(back.descr.inputargs),
                "target trace #%d entry" % back.descr.trace_id)


def _verify_heap_discipline(report, trace, cfg, subject):
    """IR502: a heap read the optimizer's caches should have forwarded.

    Replays the optimizer's heap/array cache discipline (including its
    invalidation points) over the *optimized* stream; any emitted read
    whose key is live in the shadow cache means a ``effects="heap"`` op
    did **not** intervene, so the read is redundant — either the heap
    cache missed a forwarding opportunity or an invalidation is
    misclassified.  Warning severity: redundant loads are a performance
    bug, not a soundness bug.
    """
    if cfg is None or not cfg.opt_heap_cache:
        return
    heap = {}
    array = {}

    def index_key(value):
        if isinstance(value, ir.Const):
            return ("c", value.value)
        return ("v", id(value))

    for i, op in enumerate(trace.ops):
        if not isinstance(op, ir.IROp):
            continue
        opnum = op.opnum
        if opnum == ir.LABEL:
            # The peeled body is optimized by a fresh pass with an
            # empty heap cache; mirror that.
            heap.clear()
            array.clear()
        elif opnum == ir.SETFIELD_GC:
            descr = op.descr
            stale = [k for k in heap if k[1] is descr]
            for key in stale:
                del heap[key]
            heap[(id(op.args[0]), descr)] = True
        elif opnum == ir.GETFIELD_GC:
            key = (id(op.args[0]), op.descr)
            if key in heap:
                report.warning(
                    "IR502", "redundant getfield_gc of %r: no heap "
                    "effect since the previous access, the heap cache "
                    "should have forwarded it" % (op.descr,),
                    where="%s op %d" % (subject, i), pass_name=_PASS)
            heap[key] = True
        elif opnum == ir.SETARRAYITEM_GC:
            array.clear()
            array[(id(op.args[0]), index_key(op.args[1]))] = True
        elif opnum == ir.GETARRAYITEM_GC:
            key = (id(op.args[0]), index_key(op.args[1]))
            if key in array:
                report.warning(
                    "IR502", "redundant getarrayitem_gc: no heap "
                    "effect since the previous access",
                    where="%s op %d" % (subject, i), pass_name=_PASS)
            array[key] = True
        elif opnum == ir.CALL:
            descr = op.descr
            if not isinstance(descr, ir.CallDescr) or \
                    getattr(descr.func, "invalidates_heap", True):
                heap.clear()
                array.clear()
        elif opnum == ir.CALL_ASSEMBLER:
            heap.clear()
            array.clear()


def verify_trace(trace, cfg=None, subject=None):
    """Verify one optimized trace (structure, wiring, effects)."""
    subject = subject or ("trace #%d (%s)" % (trace.trace_id,
                                              trace.kind))
    report = Report(subject)
    checker = _OpStreamChecker(report, subject, trace.inputargs)
    checker.check(trace.ops)
    _verify_wiring(report, trace, subject)
    _verify_heap_discipline(report, trace, cfg, subject)
    if trace.entry_layout is not None:
        expected = sum(n_locals + n_stack for _code, _pc, n_locals,
                       n_stack in trace.entry_layout)
        if expected != len(trace.inputargs):
            report.error(
                "IR405", "entry layout describes %d values but the "
                "trace has %d inputargs" % (expected,
                                            len(trace.inputargs)),
                where=subject, pass_name=_PASS)
    return report


def verify_backend(trace, subject=None):
    """Verify backend numbering and cost attachment (post attach_costs)."""
    subject = subject or ("trace #%d backend" % trace.trace_id)
    report = Report(subject)
    for i, arg in enumerate(trace.inputargs):
        if arg.index != i:
            report.error(
                "IR601", "inputarg %d numbered %d" % (i, arg.index),
                where=subject, pass_name=_PASS)
            break
    last_index = len(trace.inputargs) - 1
    for i, op in enumerate(trace.ops):
        if op.index <= last_index:
            report.error(
                "IR601", "op %d has index %d (not strictly increasing "
                "after %d)" % (i, op.index, last_index),
                where=subject, pass_name=_PASS)
            break
        if op.opnum == ir.LABEL:
            for arg in op.args:
                if isinstance(arg, InputArg) and arg.index < 0:
                    report.error(
                        "IR601", "label argument %r left unnumbered"
                        % (arg,), where="%s op %d" % (subject, i),
                        pass_name=_PASS)
            last_index = max([last_index]
                             + [arg.index for arg in op.args
                                if isinstance(arg, InputArg)])
        last_index = max(last_index, op.index)
    if len(trace.op_asm_insns) != len(trace.ops):
        report.error(
            "IR602", "asm-size table has %d entries for %d ops"
            % (len(trace.op_asm_insns), len(trace.ops)),
            where=subject, pass_name=_PASS)
    if len(trace.op_exec_counts) != len(trace.ops):
        report.error(
            "IR602", "exec-count table has %d entries for %d ops"
            % (len(trace.op_exec_counts), len(trace.ops)),
            where=subject, pass_name=_PASS)
    if trace.ops and trace.n_env_slots != trace.ops[-1].index + 1:
        report.error(
            "IR603", "n_env_slots is %d but the last op is numbered %d"
            % (trace.n_env_slots, trace.ops[-1].index),
            where=subject, pass_name=_PASS)
    return report


def verify_compilation(cfg, trace, recorded_ops=None, inputargs=None):
    """Full pipeline gate: recorded stream, optimized trace, backend.

    This is what the tracer's ``config.verify`` debug gate calls once
    per compiled trace; the three stages share one report so a single
    raise carries everything.
    """
    subject = "trace #%d (%s)" % (trace.trace_id, trace.kind)
    report = Report(subject)
    if recorded_ops is not None:
        report.extend(verify_recorded(
            recorded_ops, inputargs if inputargs is not None
            else trace.inputargs, subject="%s recorded" % subject))
    report.extend(verify_trace(trace, cfg=cfg, subject=subject))
    report.extend(verify_backend(trace, subject="%s backend" % subject))
    return report
