"""External C math-library calls (source tag ``C``).

``pow`` is the paper's biggest single AOT cost (44.6% of nbody);
``memcpy`` appears in twisted_tcp.  These model calls out of the
RPython world entirely.
"""

import math

from repro.interp.aot import aot
from repro.isa import insns
from repro.rlib.costutil import charge_loop


@aot("pow", "C", "pure")
def c_pow(ctx, base, exponent):
    ctx.charge(insns.mix(fpu=22, alu=10, load=4))
    ctx.charge_branches(6, 0.02)
    return math.pow(base, exponent)


@aot("sqrt", "C", "pure")
def c_sqrt(ctx, value):
    ctx.charge(insns.mix(fpu=4, alu=2))
    return math.sqrt(value)


@aot("sin", "C", "pure")
def c_sin(ctx, value):
    ctx.charge(insns.mix(fpu=14, alu=6, load=2))
    return math.sin(value)


@aot("cos", "C", "pure")
def c_cos(ctx, value):
    ctx.charge(insns.mix(fpu=14, alu=6, load=2))
    return math.cos(value)


@aot("atan2", "C", "pure")
def c_atan2(ctx, y, x):
    ctx.charge(insns.mix(fpu=18, alu=8, load=2))
    return math.atan2(y, x)


@aot("exp", "C", "pure")
def c_exp(ctx, value):
    ctx.charge(insns.mix(fpu=16, alu=6, load=2))
    return math.exp(value)


@aot("log", "C", "pure")
def c_log(ctx, value):
    ctx.charge(insns.mix(fpu=16, alu=6, load=2))
    return math.log(value)


@aot("memcpy", "C", "any")
def c_memcpy(ctx, destination, source, length):
    """Copy ``length`` items between list-like buffers."""
    charge_loop(ctx, max(1, length // 4 + 1), insns.mix(load=1, store=1))
    destination[:length] = source[:length]
    return None
