"""Cross-layer static verification (see DESIGN.md §12).

Three passes over the artifacts the simulated VMs produce:

* :mod:`repro.analysis.irverify` — JIT trace verifier (recorded,
  optimized, backend stages; ``IR1xx``–``IR6xx``),
* :mod:`repro.analysis.bcverify` — guest-bytecode abstract
  interpreter and quickening run-table checker (``BC1xx``–``BC4xx``),
* :mod:`repro.analysis.effects` — effect/purity declaration
  cross-checker (``EFF0xx``),
* :mod:`repro.analysis.transval` — cross-layer translation validation
  (optimizer ``TV1xx``, tier-1 ``TV2xx``, eventprog ``TV3xx``; see
  DESIGN.md §16),

all reporting through the shared :mod:`repro.analysis.diagnostics`
core.  Wired in as debug gates behind ``config.verify`` /
``REPRO_VERIFY=1``, as a difftest-oracle invariant family, and as the
standalone linter ``tools/lint.py``.
"""

from repro.analysis.bcverify import (
    verify_minicode,
    verify_mini_run_table,
    verify_pycode,
    verify_run_table,
)
from repro.analysis.diagnostics import ERROR, WARNING, Finding, Report
from repro.analysis.effects import check_effects
from repro.analysis.irverify import (
    verify_backend,
    verify_compilation,
    verify_recorded,
    verify_trace,
)
from repro.analysis.transval import (
    validate_optimization,
    validate_program,
    validate_run_programs,
    validate_threaded_code,
)
from repro.core.errors import VerificationError

__all__ = [
    "ERROR",
    "WARNING",
    "Finding",
    "Report",
    "VerificationError",
    "check_effects",
    "validate_optimization",
    "validate_program",
    "validate_run_programs",
    "validate_threaded_code",
    "verify_backend",
    "verify_compilation",
    "verify_minicode",
    "verify_mini_run_table",
    "verify_pycode",
    "verify_recorded",
    "verify_run_table",
    "verify_trace",
]
