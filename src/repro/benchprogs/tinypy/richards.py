# richards: the classic OS task-scheduler benchmark (Martin Richards),
# condensed TinyPy port. Object-dispatch and branch heavy; the paper's
# biggest PyPy-vs-CPython win (51x).
N = 8

I_IDLE = 1
I_WORK = 2
I_HANDLERA = 3
I_HANDLERB = 4
I_DEVA = 5
I_DEVB = 6

K_DEV = 1000
K_WORK = 1001


class Packet:
    def __init__(self, link, ident, kind):
        self.link = link
        self.ident = ident
        self.kind = kind
        self.datum = 0
        self.data = [0, 0, 0, 0]

    def append_to(self, lst):
        self.link = None
        if lst is None:
            return self
        p = lst
        while p.link is not None:
            p = p.link
        p.link = self
        return lst


class TaskRec:
    pass


class DeviceTaskRec(TaskRec):
    def __init__(self):
        self.pending = None


class IdleTaskRec(TaskRec):
    def __init__(self):
        self.control = 1
        self.count = 300


class HandlerTaskRec(TaskRec):
    def __init__(self):
        self.work_in = None
        self.device_in = None

    def work_in_add(self, packet):
        self.work_in = packet.append_to(self.work_in)
        return self.work_in

    def device_in_add(self, packet):
        self.device_in = packet.append_to(self.device_in)
        return self.device_in


class WorkerTaskRec(TaskRec):
    def __init__(self):
        self.destination = I_HANDLERA
        self.count = 0


class TaskState:
    def __init__(self):
        self.packet_pending = True
        self.task_waiting = False
        self.task_holding = False

    def packet_pending_flag(self):
        self.packet_pending = True
        self.task_waiting = False
        self.task_holding = False
        return self

    def waiting(self):
        self.packet_pending = False
        self.task_waiting = True
        self.task_holding = False
        return self

    def running(self):
        self.packet_pending = False
        self.task_waiting = False
        self.task_holding = False
        return self

    def waiting_with_packet(self):
        self.packet_pending = True
        self.task_waiting = True
        self.task_holding = False
        return self

    def is_task_holding_or_waiting(self):
        return self.task_holding or (
            not self.packet_pending and self.task_waiting)


TASKTABSIZE = 10


class Scheduler:
    def __init__(self):
        self.task_list = None
        self.current_task = None
        self.current_ident = 0
        self.hold_count = 0
        self.queue_count = 0
        self.tasktab = [None] * TASKTABSIZE

    def find_task(self, ident):
        t = self.tasktab[ident]
        if t is None:
            print("bad task id")
        return t

    def hold_current(self):
        self.hold_count += 1
        self.current_task.task_holding = True
        return self.current_task.link

    def release(self, ident):
        t = self.find_task(ident)
        t.task_holding = False
        if t.priority > self.current_task.priority:
            return t
        return self.current_task

    def wait_current(self):
        self.current_task.task_waiting = True
        return self.current_task

    def queue(self, packet):
        t = self.find_task(packet.ident)
        if t is None:
            return t
        self.queue_count += 1
        packet.link = None
        packet.ident = self.current_ident
        return t.add_packet(packet, self.current_task)

    def schedule(self):
        self.current_task = self.task_list
        while self.current_task is not None:
            t = self.current_task
            if t.is_task_holding_or_waiting():
                self.current_task = t.link
            else:
                self.current_ident = t.ident
                self.current_task = t.run_task()

    def add_task(self, task):
        self.task_list = task
        self.tasktab[task.ident] = task


class Task(TaskState):
    def __init__(self, sched, ident, priority, work, rec):
        TaskState.__init__(self)
        self.sched = sched
        self.link = sched.task_list
        self.ident = ident
        self.priority = priority
        self.input = work
        self.handle = rec
        sched.add_task(self)

    def add_packet(self, packet, old_task):
        if self.input is None:
            self.input = packet
            self.packet_pending = True
            if self.priority > old_task.priority:
                return self
        else:
            self.input = packet.append_to(self.input)
        return old_task

    def run_task(self):
        if self.is_waiting_with_packet():
            msg = self.input
            self.input = msg.link
            if self.input is None:
                self.running()
            else:
                self.packet_pending_flag()
        else:
            msg = None
        return self.fn(msg, self.handle)

    def is_waiting_with_packet(self):
        return self.packet_pending and (
            self.task_waiting and not self.task_holding)


class DeviceTask(Task):
    def fn(self, packet, rec):
        if packet is None:
            packet = rec.pending
            if packet is None:
                return self.sched.wait_current()
            rec.pending = None
            return self.sched.queue(packet)
        rec.pending = packet
        return self.sched.hold_current()


class HandlerTask(Task):
    def fn(self, packet, rec):
        if packet is not None:
            if packet.kind == K_WORK:
                rec.work_in_add(packet)
            else:
                rec.device_in_add(packet)
        work = rec.work_in
        if work is None:
            return self.sched.wait_current()
        count = work.datum
        if count >= 4:
            rec.work_in = work.link
            return self.sched.queue(work)
        dev = rec.device_in
        if dev is None:
            return self.sched.wait_current()
        rec.device_in = dev.link
        dev.datum = work.data[count]
        work.datum = count + 1
        return self.sched.queue(dev)


class IdleTask(Task):
    def fn(self, packet, rec):
        rec.count -= 1
        if rec.count == 0:
            return self.sched.hold_current()
        if rec.control & 1 == 0:
            rec.control = rec.control // 2
            return self.sched.release(I_DEVA)
        rec.control = (rec.control // 2) ^ 0xD008
        return self.sched.release(I_DEVB)


class WorkTask(Task):
    def fn(self, packet, rec):
        if packet is None:
            return self.sched.wait_current()
        if rec.destination == I_HANDLERA:
            dest = I_HANDLERB
        else:
            dest = I_HANDLERA
        rec.destination = dest
        packet.ident = dest
        packet.datum = 0
        i = 0
        while i < 4:
            rec.count += 1
            if rec.count > 26:
                rec.count = 1
            packet.data[i] = 65 + rec.count - 1
            i += 1
        return self.sched.queue(packet)


def run_richards(iterations):
    for it in range(iterations):
        sched = Scheduler()
        idle_task = IdleTask(sched, I_IDLE, 1, None, IdleTaskRec())
        idle_task.running()

        wkq = Packet(None, 0, K_WORK)
        wkq = Packet(wkq, 0, K_WORK)
        work_task = WorkTask(sched, I_WORK, 1000, wkq, WorkerTaskRec())
        work_task.waiting_with_packet()

        wkq = Packet(None, I_DEVA, K_DEV)
        wkq = Packet(wkq, I_DEVA, K_DEV)
        wkq = Packet(wkq, I_DEVA, K_DEV)
        handler_a = HandlerTask(sched, I_HANDLERA, 2000, wkq,
                                HandlerTaskRec())
        handler_a.waiting_with_packet()

        wkq = Packet(None, I_DEVB, K_DEV)
        wkq = Packet(wkq, I_DEVB, K_DEV)
        wkq = Packet(wkq, I_DEVB, K_DEV)
        handler_b = HandlerTask(sched, I_HANDLERB, 3000, wkq,
                                HandlerTaskRec())
        handler_b.waiting_with_packet()

        dev_a = DeviceTask(sched, I_DEVA, 4000, None, DeviceTaskRec())
        dev_a.waiting()
        dev_b = DeviceTask(sched, I_DEVB, 5000, None, DeviceTaskRec())
        dev_b.waiting()

        sched.schedule()

        if it == 0:
            print("richards", sched.hold_count, sched.queue_count)
    print("richards done", iterations)


run_richards(N)
