"""The jitlog: RPython's PyPy Log facility.

The paper's JIT-IR-level characterization (Figures 6, 8, 9) comes from
the PyPy Log, which records every compiled trace with its IR nodes,
assembly, and execution counts.  Our JitLog mirrors that: compile/abort
events plus aggregate statistics computed over the trace registry.
"""

from repro.jit import ir


class JitLog(object):
    """Event log of JIT compiler activity."""

    def __init__(self):
        self.events = []

    def log(self, kind, **details):
        self.events.append((kind, details))

    def count(self, kind):
        return sum(1 for k, _ in self.events if k == kind)


# -- Figure 6(a): total IR nodes compiled --------------------------------------

def total_ir_nodes_compiled(registry):
    return registry.total_ops_compiled()


# -- Figure 6(b): % of compiled nodes covering 95% of JIT execution time -------

def hot_node_fraction(registry, coverage=0.95):
    """Fraction of compiled IR nodes that account for ``coverage`` of the
    dynamic assembly instructions executed in JIT code."""
    weights = []
    total_nodes = 0
    for _trace, _i, _op, exec_count, asm_insns in registry.iter_op_records():
        total_nodes += 1
        weights.append(exec_count * asm_insns)
    if not total_nodes:
        return 0.0
    total_weight = sum(weights)
    if not total_weight:
        return 0.0
    weights.sort(reverse=True)
    acc = 0.0
    for used, weight in enumerate(weights, start=1):
        acc += weight
        if acc >= coverage * total_weight:
            return used / total_nodes
    return 1.0


# -- Figure 6(c): dynamic IR nodes executed per million instructions ------------

def ir_nodes_per_minsn(registry, total_instructions):
    if not total_instructions:
        return 0.0
    executed = sum(
        exec_count
        for _t, _i, _op, exec_count, _a in registry.iter_op_records()
    )
    return 1e6 * executed / total_instructions


# -- Figure 8: dynamic frequency per IR node type --------------------------------

def dynamic_node_type_histogram(registry, include_markers=False):
    """Dict opname -> fraction of all dynamically executed IR nodes.

    ``debug_merge_point`` markers (zero-cost bytecode-position notes)
    are excluded by default, as in the paper's Figure 8.
    """
    counts = {}
    total = 0
    for _t, _i, op, exec_count, _a in registry.iter_op_records():
        if not exec_count:
            continue
        if not include_markers and op.opnum in (ir.DEBUG_MERGE_POINT,
                                                 ir.LABEL):
            continue
        counts[op.name] = counts.get(op.name, 0) + exec_count
        total += exec_count
    if not total:
        return {}
    return {name: c / total for name, c in counts.items()}


# -- Figure 7: dynamic composition by category ------------------------------------

def dynamic_category_breakdown(registry, weight_by_asm=True):
    """Dict category -> fraction of dynamic JIT work.

    ``weight_by_asm`` weights each executed node by its assembly size
    (the paper's time-based view); otherwise by node count.
    """
    totals = {}
    grand = 0
    for _t, _i, op, exec_count, asm_insns in registry.iter_op_records():
        weight = exec_count * (asm_insns if weight_by_asm else 1)
        if not weight:
            continue
        category = op.category
        totals[category] = totals.get(category, 0) + weight
        grand += weight
    if not grand:
        return {}
    return {cat: w / grand for cat, w in totals.items()}


# -- Figure 9: mean assembly instructions per IR node type -------------------------

def asm_insns_per_node_type(registry):
    """Dict opname -> mean static assembly instructions per compiled node."""
    sums = {}
    counts = {}
    for _t, _i, op, _e, asm_insns in registry.iter_op_records():
        sums[op.name] = sums.get(op.name, 0) + asm_insns
        counts[op.name] = counts.get(op.name, 0) + 1
    return {name: sums[name] / counts[name] for name in sums}


# -- supporting detail: static category mix of compiled code ------------------------

def static_category_breakdown(registry):
    totals = {}
    grand = 0
    for _t, _i, op, _e, _a in registry.iter_op_records():
        totals[op.category] = totals.get(op.category, 0) + 1
        grand += 1
    if not grand:
        return {}
    return {cat: n / grand for cat, n in totals.items()}


def guard_failure_stats(registry):
    """Total guards compiled, failures observed, bridges attached."""
    n_guards = 0
    failures = 0
    bridges = 0
    for _t, _i, op, _e, _a in registry.iter_op_records():
        if op.opnum in ir.GUARDS:
            n_guards += 1
            failures += op.fail_count
            if op.bridge is not None and op.bridge != "blacklisted":
                bridges += 1
    return {"guards": n_guards, "failures": failures, "bridges": bridges}
