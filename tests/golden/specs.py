"""Golden-figure specs: one deterministic generator per results/ artifact.

Every artifact under ``results/`` (the paper's figures, tables, and the
ablations) has a generator here that reproduces its *shape* from a
small, pinned configuration: fixed program subsets at each program's
quick size.  The simulator is deterministic, so the rendered text is
bit-stable; the golden test diffs it against the pinned copies in
``tests/golden/goldens/`` with exact matching for integer columns and a
small relative tolerance for derived ratios.

The ``*_full`` artifacts use a strictly larger program subset than
their quick counterparts, mirroring the quick/full split of the real
``benchmarks/`` runs while staying fast enough for CI.
"""

from repro.benchprogs import registry
from repro.harness import ablations, experiments

# Pinned program subsets.  Chosen to cover the interesting simulator
# behaviors: loop-heavy JIT wins (richards, float), AOT-call-heavy
# (crypto_pyaes, pidigits), object-churny (deltablue, chaos), and a
# numeric kernel with a native reference (spectralnorm, fannkuch).
PY_SHORT = ("richards", "crypto_pyaes", "float", "pidigits", "deltablue")
PY_FULL = PY_SHORT + ("chaos", "spectralnorm", "fannkuch")

# CLBG subsets must stay within the programs that have Racket ports.
CLBG_SHORT = ("spectralnorm", "fannkuch", "nbody")
CLBG_FULL = CLBG_SHORT + ("pidigits", "mandelbrot", "binarytrees")


def _py(names):
    return [registry.py_program(name) for name in names]


def _clbg(names):
    by_name = {p.name: p for p in registry.clbg_python()}
    return [by_name[name] for name in names]


def _text(pair):
    return pair[1]


# artifact name (matching results/<name>.txt) -> zero-arg generator.
ARTIFACTS = {
    "table1": lambda: _text(
        experiments.table1(quick=True, programs=_py(PY_SHORT))),
    "table1_full": lambda: _text(
        experiments.table1(quick=True, programs=_py(PY_FULL))),
    "table2": lambda: _text(
        experiments.table2(quick=True, programs=_clbg(CLBG_SHORT))),
    "table2_full": lambda: _text(
        experiments.table2(quick=True, programs=_clbg(CLBG_FULL))),
    "table3": lambda: _text(
        experiments.table3(quick=True, programs=_py(PY_SHORT))),
    "table3_full": lambda: _text(
        experiments.table3(quick=True, programs=_py(PY_FULL))),
    "table4": lambda: _text(
        experiments.table4(quick=True, programs=_py(PY_SHORT))),
    "table4_full": lambda: _text(
        experiments.table4(quick=True, programs=_py(PY_FULL))),
    "fig2_phases": lambda: _text(
        experiments.fig2(quick=True, programs=_py(PY_SHORT))),
    "fig2_full": lambda: _text(
        experiments.fig2(quick=True, programs=_py(PY_FULL))),
    "fig3_timeline": lambda: _text(
        experiments.fig3(quick=True)),
    "fig4_clbg_phases": lambda: _text(
        experiments.fig4(quick=True, programs=_clbg(CLBG_SHORT))),
    "fig5_warmup": lambda: _text(
        experiments.fig5(quick=True,
                         programs=_py(("richards", "crypto_pyaes",
                                       "float")))),
    "fig6_irstats": lambda: _text(
        experiments.fig6(quick=True, programs=_py(PY_SHORT))),
    "fig6_full": lambda: _text(
        experiments.fig6(quick=True, programs=_py(PY_FULL))),
    "fig7_categories": lambda: _text(
        experiments.fig7(quick=True, programs=_py(PY_SHORT))),
    "fig7_full": lambda: _text(
        experiments.fig7(quick=True, programs=_py(PY_FULL))),
    "fig8_histogram": lambda: _text(
        experiments.fig8(quick=True, programs=_py(PY_SHORT))),
    "fig8_full": lambda: _text(
        experiments.fig8(quick=True, programs=_py(PY_FULL))),
    "fig9_asmcost": lambda: _text(
        experiments.fig9(quick=True, programs=_py(PY_SHORT))),
    "fig9_full": lambda: _text(
        experiments.fig9(quick=True, programs=_py(PY_FULL))),
    # Tier-dimension artifacts: every job pins ``tier1`` explicitly, so
    # these are independent of the REPRO_TIER1 env default (asserted by
    # test_tier_artifacts_ignore_env).
    "fig5_tier": lambda: _text(
        experiments.fig5_tier(quick=True,
                              programs=_py(("richards", "crypto_pyaes",
                                            "float")))),
    "fig2_tier": lambda: _text(
        experiments.fig2_tier(quick=True, programs=_py(PY_SHORT))),
    "ablation_tier": lambda: _text(
        ablations.tier_ablation(quick=True)),
    "ablation_optimizer": lambda: _text(
        ablations.optimizer_ablation(quick=True)),
    "ablation_threshold": lambda: _text(
        ablations.threshold_sweep(quick=True)),
    "ablation_bridge_threshold": lambda: _text(
        ablations.bridge_threshold_sweep(quick=True)),
    "ablation_predictor": lambda: _text(
        ablations.predictor_ablation(quick=True)),
}
