"""TinyPy compiler: a subset of Python source -> TinyPy bytecode.

Uses the host ``ast`` module for parsing only; code generation, name
resolution, and the supported-subset checks are ours.  The subset covers
what the benchmark programs need: functions (positional args + constant
defaults), single-inheritance classes with methods, loops (with
break/continue and list comprehensions), the full operator set, lists /
tuples / dicts / sets / slices, and attribute/subscript assignment.
Unsupported constructs raise :class:`CompilationError` with a message
naming the construct.
"""

import ast

from repro.core.errors import CompilationError
from repro.pylang import bytecode as bc

_BINOPS = {
    ast.Add: bc.BINARY_ADD,
    ast.Sub: bc.BINARY_SUB,
    ast.Mult: bc.BINARY_MUL,
    ast.FloorDiv: bc.BINARY_FLOORDIV,
    ast.Div: bc.BINARY_TRUEDIV,
    ast.Mod: bc.BINARY_MOD,
    ast.Pow: bc.BINARY_POW,
    ast.BitAnd: bc.BINARY_AND,
    ast.BitOr: bc.BINARY_OR,
    ast.BitXor: bc.BINARY_XOR,
    ast.LShift: bc.BINARY_LSHIFT,
    ast.RShift: bc.BINARY_RSHIFT,
}

_CMPOPS = {
    ast.Lt: bc.COMPARE_LT,
    ast.LtE: bc.COMPARE_LE,
    ast.Eq: bc.COMPARE_EQ,
    ast.NotEq: bc.COMPARE_NE,
    ast.Gt: bc.COMPARE_GT,
    ast.GtE: bc.COMPARE_GE,
    ast.Is: bc.COMPARE_IS,
    ast.IsNot: bc.COMPARE_IS_NOT,
    ast.In: bc.COMPARE_IN,
    ast.NotIn: bc.COMPARE_NOT_IN,
}


def compile_source(source, name="<module>"):
    """Compile TinyPy source text to a module PyCode."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise CompilationError("syntax error: %s" % exc)
    compiler = _UnitCompiler(name, args=[], is_module=True)
    for statement in tree.body:
        compiler.stmt(statement)
    return compiler.finish()


class _LoopFrame(object):
    def __init__(self, is_for=False):
        self.break_jumps = []
        self.continue_target = None
        self.is_for = is_for


class _UnitCompiler(object):
    """Compiles one function / module body."""

    def __init__(self, name, args, is_module):
        self.unit_name = name
        self.is_module = is_module
        self.ops = []
        self.arg_values = []
        self.consts = []
        self.const_index = {}
        self.names = []
        self.name_index = {}
        self.varnames = list(args)
        self.var_index = {n: i for i, n in enumerate(args)}
        self.argcount = len(args)
        self.globals_declared = set()
        self.loops = []
        self.temp_counter = 0

    # -- infrastructure ------------------------------------------------------

    def emit(self, op, arg=0):
        self.ops.append(op)
        self.arg_values.append(arg)
        return len(self.ops) - 1

    def here(self):
        return len(self.ops)

    def patch(self, position, target=None):
        self.arg_values[position] = self.here() if target is None else target

    def const(self, value):
        key = (type(value).__name__, value) \
            if isinstance(value, (int, float, str, bool, bytes)) else None
        if key is not None and key in self.const_index:
            return self.const_index[key]
        index = len(self.consts)
        self.consts.append(value)
        if key is not None:
            self.const_index[key] = index
        return index

    def name(self, text):
        index = self.name_index.get(text)
        if index is None:
            index = len(self.names)
            self.names.append(text)
            self.name_index[text] = index
        return index

    def local(self, text):
        index = self.var_index.get(text)
        if index is None:
            index = len(self.varnames)
            self.varnames.append(text)
            self.var_index[text] = index
        return index

    def is_local(self, text):
        if self.is_module:
            return False
        if text in self.globals_declared:
            return False
        return text in self.var_index

    def temp(self):
        self.temp_counter += 1
        return self.local("@tmp%d" % self.temp_counter)

    def fail(self, node, what):
        line = getattr(node, "lineno", "?")
        raise CompilationError(
            "unsupported in TinyPy (line %s): %s" % (line, what)
        )

    def finish(self):
        self.emit(bc.LOAD_CONST, self.const(None))
        self.emit(bc.RETURN_VALUE)
        return bc.PyCode(
            self.unit_name, self.ops, self.arg_values, self.consts,
            self.names, self.varnames, self.argcount,
        )

    # -- pre-scan: find assigned names so they become locals ---------------------

    def _collect_locals(self, body):
        # First pass: global declarations win over assignments.
        def find_globals(nodes):
            for node in nodes:
                if isinstance(node, ast.Global):
                    self.globals_declared.update(node.names)
                elif not isinstance(node, (ast.FunctionDef, ast.ClassDef)):
                    find_globals(ast.iter_child_nodes(node))

        def find_stores(nodes):
            for node in nodes:
                if isinstance(node, (ast.FunctionDef, ast.ClassDef)):
                    # The defined name is local; don't descend further.
                    if node.name not in self.globals_declared:
                        self.local(node.name)
                    continue
                if isinstance(node, ast.Name) and isinstance(
                        node.ctx, ast.Store):
                    if node.id not in self.globals_declared:
                        self.local(node.id)
                find_stores(ast.iter_child_nodes(node))

        find_globals(body)
        find_stores(body)

    # -- statements ------------------------------------------------------------------

    def stmt(self, node):
        method = getattr(self, "stmt_%s" % type(node).__name__, None)
        if method is None:
            self.fail(node, "statement %s" % type(node).__name__)
        method(node)

    def stmt_Expr(self, node):
        if isinstance(node.value, ast.Constant) and isinstance(
                node.value.value, str):
            return  # docstring
        self.expr(node.value)
        self.emit(bc.POP_TOP)

    def stmt_Pass(self, node):
        pass

    def stmt_Assign(self, node):
        self.expr(node.value)
        for i, target in enumerate(node.targets):
            if i < len(node.targets) - 1:
                self.emit(bc.DUP_TOP)
            self.store_target(target)

    def stmt_AugAssign(self, node):
        op = _BINOPS.get(type(node.op))
        if op is None:
            self.fail(node, "augmented op %s" % type(node.op).__name__)
        target = node.target
        if isinstance(target, ast.Name):
            self.load_name(target.id)
            self.expr(node.value)
            self.emit(op)
            self.store_name(target.id)
        elif isinstance(target, ast.Attribute):
            self.expr(target.value)
            self.emit(bc.DUP_TOP)
            self.emit(bc.LOAD_ATTR, self.name(target.attr))
            self.expr(node.value)
            self.emit(op)
            self.emit(bc.ROT_TWO)
            self.emit(bc.STORE_ATTR, self.name(target.attr))
        elif isinstance(target, ast.Subscript):
            self.expr(target.value)
            self._subscript_index(target)
            self.emit(bc.DUP_TOP_TWO)
            self.emit(bc.BINARY_SUBSCR)
            self.expr(node.value)
            self.emit(op)
            self.emit(bc.ROT_THREE)
            self.emit(bc.STORE_SUBSCR)
        else:
            self.fail(node, "augmented-assign target")

    def store_target(self, target):
        if isinstance(target, ast.Name):
            self.store_name(target.id)
        elif isinstance(target, ast.Attribute):
            self.expr(target.value)
            self.emit(bc.STORE_ATTR, self.name(target.attr))
        elif isinstance(target, ast.Subscript):
            self.expr(target.value)
            self._subscript_index(target)
            self.emit(bc.STORE_SUBSCR)
        elif isinstance(target, (ast.Tuple, ast.List)):
            self.emit(bc.UNPACK_SEQUENCE, len(target.elts))
            for element in target.elts:
                self.store_target(element)
        else:
            self.fail(target, "assignment target")

    def store_name(self, text):
        if self.is_local(text):
            self.emit(bc.STORE_FAST, self.local(text))
        else:
            self.emit(bc.STORE_GLOBAL, self.name(text))

    def load_name(self, text):
        if self.is_local(text):
            self.emit(bc.LOAD_FAST, self.local(text))
        else:
            self.emit(bc.LOAD_GLOBAL, self.name(text))

    def stmt_If(self, node):
        self.expr(node.test)
        jump_false = self.emit(bc.POP_JUMP_IF_FALSE)
        for statement in node.body:
            self.stmt(statement)
        if node.orelse:
            jump_end = self.emit(bc.JUMP)
            self.patch(jump_false)
            for statement in node.orelse:
                self.stmt(statement)
            self.patch(jump_end)
        else:
            self.patch(jump_false)

    def stmt_While(self, node):
        if node.orelse:
            self.fail(node, "while-else")
        loop = _LoopFrame(is_for=False)
        self.loops.append(loop)
        header = self.here()
        loop.continue_target = header
        if not (isinstance(node.test, ast.Constant) and node.test.value):
            self.expr(node.test)
            exit_jump = self.emit(bc.POP_JUMP_IF_FALSE)
        else:
            exit_jump = None
        for statement in node.body:
            self.stmt(statement)
        self.emit(bc.JUMP, header)
        if exit_jump is not None:
            self.patch(exit_jump)
        for position in loop.break_jumps:
            self.patch(position)
        self.loops.pop()

    def stmt_For(self, node):
        if node.orelse:
            self.fail(node, "for-else")
        loop = _LoopFrame(is_for=True)
        self.loops.append(loop)
        self.expr(node.iter)
        self.emit(bc.GET_ITER)
        header = self.here()
        loop.continue_target = header
        for_iter = self.emit(bc.FOR_ITER)
        self.store_target(node.target)
        for statement in node.body:
            self.stmt(statement)
        self.emit(bc.JUMP, header)
        self.patch(for_iter)
        for position in loop.break_jumps:
            self.patch(position)
        self.loops.pop()

    def stmt_Break(self, node):
        if not self.loops:
            self.fail(node, "break outside loop")
        loop = self.loops[-1]
        if loop.is_for:
            # for-loops keep the iterator on the stack: pop it on break.
            self.emit(bc.POP_TOP)
        loop.break_jumps.append(self.emit(bc.JUMP))

    def stmt_Continue(self, node):
        if not self.loops:
            self.fail(node, "continue outside loop")
        self.emit(bc.JUMP, self.loops[-1].continue_target)

    def stmt_Return(self, node):
        if self.is_module:
            self.fail(node, "return at module level")
        if node.value is None:
            self.emit(bc.LOAD_CONST, self.const(None))
        else:
            self.expr(node.value)
        self.emit(bc.RETURN_VALUE)

    def stmt_Delete(self, node):
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                self.expr(target.value)
                self._subscript_index(target)
                self.emit(bc.DELETE_SUBSCR)
            else:
                self.fail(node, "del of non-subscript")

    def stmt_Global(self, node):
        self.globals_declared.update(node.names)

    def stmt_FunctionDef(self, node):
        if node.decorator_list:
            self.fail(node, "decorators")
        code, n_defaults = self._compile_function(node)
        for default in node.args.defaults:
            self.expr(default)
        self.emit(bc.LOAD_CONST, self.const(bc.FunctionSpec(code, n_defaults)))
        self.emit(bc.MAKE_FUNCTION, n_defaults)
        self.store_name(node.name)

    def _compile_function(self, node):
        args = node.args
        if args.vararg or args.kwarg or args.kwonlyargs or args.posonlyargs:
            self.fail(node, "*args/**kwargs/keyword-only parameters")
        names = [a.arg for a in args.args]
        sub = _UnitCompiler(node.name, names, is_module=False)
        sub._collect_locals(node.body)
        for statement in node.body:
            sub.stmt(statement)
        return sub.finish(), len(args.defaults)

    def stmt_ClassDef(self, node):
        if node.decorator_list or node.keywords:
            self.fail(node, "class decorators/keywords")
        if len(node.bases) > 1:
            self.fail(node, "multiple inheritance")
        base_name = None
        if node.bases:
            if not isinstance(node.bases[0], ast.Name):
                self.fail(node, "computed base class")
            base_name = node.bases[0].id
        methods = []
        for item in node.body:
            if isinstance(item, ast.FunctionDef):
                code, n_defaults = self._compile_function(item)
                defaults = []
                for default in item.args.defaults:
                    if not isinstance(default, ast.Constant):
                        self.fail(item, "non-constant method default")
                    defaults.append(default.value)
                methods.append((item.name, code, defaults))
            elif isinstance(item, ast.Expr) and isinstance(
                    item.value, ast.Constant):
                continue  # docstring
            elif isinstance(item, ast.Pass):
                continue
            else:
                self.fail(item, "non-method class body statement")
        spec = bc.ClassSpec(node.name, base_name, methods)
        self.emit(bc.MAKE_CLASS, self.const(spec))
        self.store_name(node.name)

    # -- expressions --------------------------------------------------------------------

    def expr(self, node):
        method = getattr(self, "expr_%s" % type(node).__name__, None)
        if method is None:
            self.fail(node, "expression %s" % type(node).__name__)
        method(node)

    def expr_Constant(self, node):
        value = node.value
        if value is Ellipsis or isinstance(value, (bytes, complex)):
            self.fail(node, "constant %r" % (value,))
        self.emit(bc.LOAD_CONST, self.const(value))

    def expr_Name(self, node):
        self.load_name(node.id)

    def expr_BinOp(self, node):
        op = _BINOPS.get(type(node.op))
        if op is None:
            self.fail(node, "operator %s" % type(node.op).__name__)
        self.expr(node.left)
        self.expr(node.right)
        self.emit(op)

    def expr_UnaryOp(self, node):
        if isinstance(node.op, ast.USub):
            if isinstance(node.operand, ast.Constant) and isinstance(
                    node.operand.value, (int, float)):
                self.emit(bc.LOAD_CONST, self.const(-node.operand.value))
                return
            self.expr(node.operand)
            self.emit(bc.UNARY_NEG)
        elif isinstance(node.op, ast.Not):
            self.expr(node.operand)
            self.emit(bc.UNARY_NOT)
        elif isinstance(node.op, ast.Invert):
            self.expr(node.operand)
            self.emit(bc.UNARY_INVERT)
        else:
            self.expr(node.operand)  # unary +

    def expr_BoolOp(self, node):
        jump_op = (bc.JUMP_IF_FALSE_OR_POP if isinstance(node.op, ast.And)
                   else bc.JUMP_IF_TRUE_OR_POP)
        jumps = []
        for i, value in enumerate(node.values):
            self.expr(value)
            if i < len(node.values) - 1:
                jumps.append(self.emit(jump_op))
        for position in jumps:
            self.patch(position)

    def expr_Compare(self, node):
        if len(node.ops) != 1:
            self.fail(node, "chained comparisons")
        op = _CMPOPS.get(type(node.ops[0]))
        if op is None:
            self.fail(node, "comparison %s" % type(node.ops[0]).__name__)
        self.expr(node.left)
        self.expr(node.comparators[0])
        self.emit(op)

    def expr_IfExp(self, node):
        self.expr(node.test)
        jump_false = self.emit(bc.POP_JUMP_IF_FALSE)
        self.expr(node.body)
        jump_end = self.emit(bc.JUMP)
        self.patch(jump_false)
        self.expr(node.orelse)
        self.patch(jump_end)

    def expr_Call(self, node):
        if node.keywords:
            self.fail(node, "keyword arguments")
        self.expr(node.func)
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                self.fail(node, "*args at call site")
            self.expr(arg)
        self.emit(bc.CALL_FUNCTION, len(node.args))

    def expr_Attribute(self, node):
        self.expr(node.value)
        self.emit(bc.LOAD_ATTR, self.name(node.attr))

    def _subscript_index(self, node):
        index = node.slice
        if isinstance(index, ast.Slice):
            if index.step is not None:
                self.fail(node, "slice step")
            for bound in (index.lower, index.upper):
                if bound is None:
                    self.emit(bc.LOAD_CONST, self.const(None))
                else:
                    self.expr(bound)
            self.emit(bc.BUILD_SLICE, 2)
        else:
            self.expr(index)

    def expr_Subscript(self, node):
        self.expr(node.value)
        self._subscript_index(node)
        self.emit(bc.BINARY_SUBSCR)

    def expr_List(self, node):
        for element in node.elts:
            self.expr(element)
        self.emit(bc.BUILD_LIST, len(node.elts))

    def expr_Tuple(self, node):
        for element in node.elts:
            self.expr(element)
        self.emit(bc.BUILD_TUPLE, len(node.elts))

    def expr_Dict(self, node):
        for key, value in zip(node.keys, node.values):
            if key is None:
                self.fail(node, "dict unpacking")
            self.expr(key)
            self.expr(value)
        self.emit(bc.BUILD_MAP, len(node.keys))

    def expr_Set(self, node):
        for element in node.elts:
            self.expr(element)
        self.emit(bc.BUILD_SET, len(node.elts))

    def expr_ListComp(self, node):
        if len(node.generators) != 1:
            self.fail(node, "nested comprehensions")
        generator = node.generators[0]
        if generator.is_async:
            self.fail(node, "async comprehension")
        accumulator = self.temp()
        self.emit(bc.BUILD_LIST, 0)
        self.emit(bc.STORE_FAST, accumulator)
        loop = _LoopFrame()
        self.loops.append(loop)
        self.expr(generator.iter)
        self.emit(bc.GET_ITER)
        header = self.here()
        for_iter = self.emit(bc.FOR_ITER)
        self.store_target(generator.target)
        condition_jumps = []
        for condition in generator.ifs:
            self.expr(condition)
            condition_jumps.append(self.emit(bc.POP_JUMP_IF_FALSE))
        self.emit(bc.LOAD_FAST, accumulator)
        self.expr(node.elt)
        self.emit(bc.LIST_APPEND)
        for position in condition_jumps:
            self.patch(position, header)
        self.emit(bc.JUMP, header)
        self.patch(for_iter)
        self.loops.pop()
        self.emit(bc.LOAD_FAST, accumulator)
