"""A generational GC model in the style of RPython's incminimark.

Guest objects are real Python objects (kept alive by Python itself); what
this module models is the *cost and address behaviour* of RPython's GC:

* a bump-pointer nursery — allocations are a pointer increment until the
  nursery fills,
* minor collections that copy survivors to the old generation, with cost
  proportional to surviving bytes (survivor fraction estimated from a
  weak-reference sample of real allocations, so workloads whose objects
  die young genuinely pay less),
* major collections triggered when the old generation outgrows a
  threshold that grows geometrically (incminimark's ``major_growth``),
* cross-layer GC_MINOR/GC_MAJOR annotations bracketing each collection,
  so the PinTool attributes collector work to the GC phase.

Addresses handed out are real simulated-heap addresses fed to the cache
model, so the nursery's sequential locality and the old generation's
spread show up in the memory system.
"""

import weakref

from repro.core import tags
from repro.isa import insns

NURSERY_BASE = 0x1000_0000
OLD_BASE = 0x4000_0000

# Instruction mix shape of copying-collector work, per ~8 instructions:
# pointer loads, copies (load+store), bookkeeping ALU.
_GC_WORK_MIX = insns.mix(load=3, store=2, alu=3)
_GC_WORK_SIZE = insns.mix_size(_GC_WORK_MIX)
_GC_BRANCH_RATE = 0.18        # branches per instruction inside the collector
_GC_BRANCH_MISS_RATE = 0.012  # regular loop branches predict well (Table IV)

_SAMPLE_EVERY = 16            # one allocation in 16 is liveness-sampled


class SimGC:
    """Simulated generational collector attached to one Machine."""

    # Telemetry session (repro.telemetry.vmhook.VMTelemetry) or None;
    # attached by VMContext after construction.  The disabled path is a
    # single attribute check per collection.
    telemetry = None

    def __init__(self, machine, config):
        self._machine = machine
        self._cfg = config
        self.nursery_size = config.nursery_bytes
        self.nursery_used = 0
        self._nursery_top = NURSERY_BASE
        self.old_bytes = 0
        self._old_top = OLD_BASE
        self.major_threshold = config.min_major_threshold
        self.minor_collections = 0
        self.major_collections = 0
        self.total_allocated_bytes = 0
        self.total_allocations = 0
        self.bytes_surviving_minor = 0
        self._samples = []           # (weakref, nbytes) pairs
        self._sample_countdown = _SAMPLE_EVERY

    # -- allocation ----------------------------------------------------------

    def allocate(self, nbytes, obj=None):
        """Bump-allocate ``nbytes`` in the nursery; returns the address.

        ``obj`` (if weak-referenceable) may be liveness-sampled to
        estimate the survivor fraction at the next minor collection.
        """
        if self.nursery_used + nbytes > self.nursery_size:
            self.minor_collect()
        addr = self._nursery_top + self.nursery_used
        self.nursery_used += nbytes
        self.total_allocated_bytes += nbytes
        self.total_allocations += 1
        if obj is not None:
            self._sample_countdown -= 1
            if self._sample_countdown <= 0:
                self._sample_countdown = _SAMPLE_EVERY
                try:
                    self._samples.append((weakref.ref(obj), nbytes))
                except TypeError:
                    pass
        return addr

    def allocate_static(self, nbytes):
        """Address for a prebuilt constant: lives in the old generation,
        never collected, never charged (translation-time data)."""
        addr = self._old_top
        self._old_top += nbytes
        return addr

    # -- collections -----------------------------------------------------------

    def _survival_rate(self):
        if not self._samples:
            return self._cfg.default_survival_rate
        alive = 0
        total = 0
        for ref, nbytes in self._samples:
            total += nbytes
            if ref() is not None:
                alive += nbytes
        if not total:
            return self._cfg.default_survival_rate
        return alive / total

    def minor_collect(self):
        """Copy nursery survivors to the old generation; charge the cost."""
        machine = self._machine
        machine.annot(tags.GC_MINOR_START, self.minor_collections)
        survival = self._survival_rate()
        surviving = int(self.nursery_used * survival)
        cost = int(
            self._cfg.minor_fixed_cost
            + self._cfg.minor_cost_per_surviving_byte * surviving
        )
        self._charge(cost)
        self.bytes_surviving_minor += surviving
        self.old_bytes += surviving
        self._old_top += surviving
        nursery_used = self.nursery_used
        self.nursery_used = 0
        self.minor_collections += 1
        self._samples = []
        t = self.telemetry
        if t is not None:
            t.count("gc.minor_collections")
            t.count("gc.bytes_surviving_minor", surviving)
            t.histogram("gc.minor_surviving_bytes", surviving)
            t.gauge("gc.old_bytes", self.old_bytes)
            t.annotate(nursery_used=nursery_used, surviving=surviving,
                       cost_insns=cost)
        machine.annot(tags.GC_MINOR_STOP, self.minor_collections)
        if self.old_bytes > self.major_threshold:
            self.major_collect()

    def major_collect(self):
        """Mark-and-sweep the old generation; grow the trigger threshold."""
        machine = self._machine
        machine.annot(tags.GC_MAJOR_START, self.major_collections)
        # Assume a fraction of the old generation is still live; the rest
        # is swept.  Cost covers marking live data and sweeping all of it.
        live = int(self.old_bytes * 0.6)
        cost = int(
            self._cfg.major_fixed_cost
            + self._cfg.major_cost_per_live_byte * self.old_bytes
        )
        self._charge(cost)
        swept = self.old_bytes - live
        self.old_bytes = live
        self.major_threshold = max(
            self._cfg.min_major_threshold,
            int(live * self._cfg.major_growth_factor),
        )
        self.major_collections += 1
        t = self.telemetry
        if t is not None:
            t.count("gc.major_collections")
            t.gauge("gc.old_bytes", self.old_bytes)
            t.gauge("gc.major_threshold", self.major_threshold)
            t.annotate(live=live, swept=swept, cost_insns=cost)
        machine.annot(tags.GC_MAJOR_STOP, self.major_collections)

    def _charge(self, cost_insns):
        """Emit ``cost_insns`` worth of collector work into the stream."""
        branches = int(cost_insns * _GC_BRANCH_RATE)
        body = cost_insns - branches
        chunks, remainder = divmod(body, _GC_WORK_SIZE)
        machine = self._machine
        if chunks:
            machine.exec_mix(insns.scale_mix(_GC_WORK_MIX, chunks))
        if remainder:
            machine.exec_mix(insns.mix(alu=remainder))
        machine.exec_bulk_branches(branches, _GC_BRANCH_MISS_RATE)

    # -- statistics --------------------------------------------------------------

    def stats(self):
        return {
            "minor_collections": self.minor_collections,
            "major_collections": self.major_collections,
            "total_allocated_bytes": self.total_allocated_bytes,
            "total_allocations": self.total_allocations,
            "bytes_surviving_minor": self.bytes_surviving_minor,
            "old_bytes": self.old_bytes,
        }
