"""Clean-pass acceptance: the shipped tree produces zero findings.

Mirrors ``tools/lint.py`` inside tier-1: every benchmark program's
bytecode and quickening run tables verify clean, and the compiled
traces of a quick subset verify clean including warnings.
"""

from repro.analysis import (
    verify_backend,
    verify_pycode,
    verify_run_table,
    verify_trace,
)
from repro.benchprogs.registry import PY_PROGRAMS, RKT_PROGRAMS
from repro.core.config import SystemConfig
from repro.difftest.oracle import run_interp
from repro.interp.context import VMContext
from repro.pylang import bytecode as bc
from repro.pylang.compiler import compile_source
from repro.pylang.interp import PyVM
from repro.pylang.quicken import build_run_table

TRACE_SET = ("fannkuch", "chaos")


def all_codes(code):
    out, pending, seen = [], [code], set()
    while pending:
        current = pending.pop()
        if id(current) in seen:
            continue
        seen.add(id(current))
        out.append(current)
        for const in current.consts:
            if isinstance(const, bc.FunctionSpec):
                pending.append(const.code)
            elif isinstance(const, bc.ClassSpec):
                pending.extend(m[1] for m in const.methods)
    return out


def test_every_benchmark_program_verifies_clean():
    from repro.rktlang.compiler import compile_rkt

    vm = PyVM(VMContext(SystemConfig()))
    jobs = [(p, compile_source) for p in PY_PROGRAMS]
    jobs += [(p, compile_rkt) for p in RKT_PROGRAMS]
    assert jobs
    for program, compiler in jobs:
        code = compiler(program.source(program.small_n), program.name)
        report = verify_pycode(code)
        assert not report.findings, (
            program.name, [f.render() for f in report.findings])
        for sub in all_codes(code):
            table = build_run_table(vm, sub)
            table_report = verify_run_table(sub, table)
            assert not table_report.findings, (
                program.name, sub.name,
                [f.render() for f in table_report.findings])


def test_quickset_traces_verify_clean():
    by_name = {p.name: p for p in PY_PROGRAMS}
    for name in TRACE_SET:
        program = by_name[name]
        run = run_interp(program.source(program.small_n), jit=True,
                         threshold=7, bridge_threshold=3)
        assert run.error is None, (name, run.error)
        assert run.ctx.registry.traces, name
        for trace in run.ctx.registry.traces:
            report = verify_trace(trace, cfg=run.ctx.config.jit)
            report.extend(verify_backend(trace))
            assert not report.findings, (
                name, trace.trace_id,
                [f.render() for f in report.findings])
