"""Seeded-mutation tests for the cross-layer translation validator.

Each test takes a *real* translation artifact (an optimized trace, a
tier-1 ThreadedCode, a resident EventProgram), applies one targeted
corruption simulating a compiler bug, and asserts the validator reports
the specific ``TV`` code assigned to that bug class — so every rule is
proven to catch what it was written for, not just to pass on clean
input.  Clean-pass checks on unmutated artifacts bracket each layer.
"""

from repro.analysis import (
    validate_optimization,
    validate_program,
    validate_run_programs,
    validate_threaded_code,
)
from repro.backend import eventprog as ep
from repro.core import tags
from repro.core.config import JitConfig, SystemConfig
from repro.interp.context import VMContext
from repro.interp.objects import W_Root
from repro.jit import ir
from repro.jit.optimizer import optimize_trace
from repro.jit.resume import FrameState, Snapshot
from repro.jit.trace import LOOP, InputArg, Trace
from repro.pylang.compiler import compile_source
from repro.pylang.interp import PyVM
from repro.pylang.quicken import build_run_programs, build_run_table


class W_Box(W_Root):
    _immutable_fields_ = ("pure_field",)
    _size_ = 16


# ---------------------------------------------------------------------------
# TV1: recorded trace vs optimized trace.
# ---------------------------------------------------------------------------


def snap(values):
    return Snapshot((FrameState("code", 0, tuple(values), ()),))


def opt(ops, inputargs, jump_args=None, cfg=None):
    """Optimize a hand-built recorded stream into a simple (non-peeled)
    self-loop and return everything the validator needs."""
    cfg = cfg or JitConfig(opt_loop_peeling=False)
    trace = Trace(0, LOOP, ("code", 0), inputargs, [],
                  [("code", 0, 1, 0)])
    jump = ir.IROp(ir.JUMP, list(jump_args if jump_args is not None
                                 else inputargs), None)
    optimize_trace(cfg, trace, ops, jump, None)
    return trace, ops, jump, cfg


def validate(trace, recorded, jump, cfg):
    return validate_optimization(cfg, trace, recorded_ops=recorded,
                                 recorded_jump=jump)


def find_op(trace, name):
    for i, op in enumerate(trace.ops):
        if op.name == name:
            return i, op
    raise AssertionError("no %s in optimized trace" % name)


def guarded_read():
    """getfield -> guard_true -> setfield: one of each entry kind the
    TV1 walk distinguishes (event, guard, jump)."""
    i0 = InputArg()
    target = InputArg()
    descr = ir.FieldDescr.get(W_Box, "tv_field")
    out = ir.FieldDescr.get(W_Box, "tv_out")
    getfield = ir.IROp(ir.GETFIELD_GC, [i0], descr)
    guard = ir.IROp(ir.GUARD_TRUE, [getfield], None)
    guard.snapshot = snap([i0])
    setfield = ir.IROp(ir.SETFIELD_GC, [target, getfield], out)
    return [getfield, guard, setfield], [i0, target]


def test_tv1_clean_pass():
    ops, inputargs = guarded_read()
    trace, recorded, jump, cfg = opt(ops, inputargs)
    report = validate(trace, recorded, jump, cfg)
    assert not report.findings, [f.render() for f in report.findings]


def test_tv101_dropped_store():
    ops, inputargs = guarded_read()
    trace, recorded, jump, cfg = opt(ops, inputargs)
    i, _ = find_op(trace, "setfield_gc")
    del trace.ops[i]
    assert validate(trace, recorded, jump, cfg).has("TV101")


def test_tv101_duplicated_store():
    ops, inputargs = guarded_read()
    trace, recorded, jump, cfg = opt(ops, inputargs)
    i, op = find_op(trace, "setfield_gc")
    twin = ir.IROp(ir.SETFIELD_GC, list(op.args), op.descr)
    trace.ops.insert(i + 1, twin)
    assert validate(trace, recorded, jump, cfg).has("TV101")


def test_tv102_dropped_guard():
    ops, inputargs = guarded_read()
    trace, recorded, jump, cfg = opt(ops, inputargs)
    i, _ = find_op(trace, "guard_true")
    del trace.ops[i]
    assert validate(trace, recorded, jump, cfg).has("TV102")


def test_tv103_corrupted_store_operand():
    ops, inputargs = guarded_read()
    trace, recorded, jump, cfg = opt(ops, inputargs)
    _, op = find_op(trace, "setfield_gc")
    op.args = [op.args[0], ir.Const(999)]
    assert validate(trace, recorded, jump, cfg).has("TV103")


def test_tv104_corrupted_snapshot():
    ops, inputargs = guarded_read()
    trace, recorded, jump, cfg = opt(ops, inputargs)
    _, op = find_op(trace, "guard_true")
    op.snapshot = snap([ir.Const(123)])
    assert validate(trace, recorded, jump, cfg).has("TV104")


def test_tv105_swapped_jump_arg():
    ops, inputargs = guarded_read()
    trace, recorded, jump, cfg = opt(ops, inputargs)
    trace.ops[-1].args = [ir.Const(5)] + list(trace.ops[-1].args[1:])
    assert validate(trace, recorded, jump, cfg).has("TV105")


def test_tv107_truncated_stream():
    ops, inputargs = guarded_read()
    trace, recorded, jump, cfg = opt(ops, inputargs)
    trace.ops.pop()   # lost the loop-closing jump
    assert validate(trace, recorded, jump, cfg).has("TV107")


def test_tv108_inserted_guard():
    ops, inputargs = guarded_read()
    trace, recorded, jump, cfg = opt(ops, inputargs)
    i, getfield = find_op(trace, "getfield_gc")
    rogue = ir.IROp(ir.GUARD_FALSE, [getfield], None)
    rogue.snapshot = snap([])
    trace.ops.insert(i + 1, rogue)
    assert validate(trace, recorded, jump, cfg).has("TV108")


def test_tv1_skips_traces_without_recorded_stream():
    ops, inputargs = guarded_read()
    trace, _recorded, _jump, cfg = opt(ops, inputargs)
    report = validate_optimization(cfg, trace)   # nothing recorded
    assert not report.findings


# ---------------------------------------------------------------------------
# TV2: tier-1 threaded code vs the interpreter's charge summaries.
# ---------------------------------------------------------------------------

TIER_SRC = """
def work(n):
    i = 0
    acc = 0
    while i < n:
        acc = acc + i
        i = i + 1
    return acc
work(5)
"""


def compiled_tier(eventprog=False):
    cfg = SystemConfig()
    cfg.tier1 = True
    cfg.jit.tier1_threshold = 1
    cfg.eventprog = eventprog
    vm = PyVM(VMContext(cfg))
    module = compile_source(TIER_SRC)
    # Promote the loop body's code object through the real state
    # machine (bump compiles at the threshold).
    codes = [module] + [const.code for const in module.consts
                        if hasattr(const, "code")]
    tier = vm.driver.tier
    for code in codes:
        tier.bump(vm, code)
    code = codes[-1]
    assert code in tier.compiled
    return vm, code, tier.compiled[code]


def test_tv2_clean_pass():
    vm, code, tcode = compiled_tier(eventprog=True)
    report = validate_threaded_code(vm, code, tcode)
    assert not report.findings, [f.render() for f in report.findings]


def fused_pc(tcode):
    for pc, entry in enumerate(tcode.runs):
        if entry is not None:
            return pc, entry
    raise AssertionError("no fused run compiled")


def test_tv201_corrupted_site_hash():
    vm, code, tcode = compiled_tier()
    sites = list(tcode.sites)
    sites[0] += 1
    tcode.sites = sites
    assert validate_threaded_code(vm, code, tcode).has("TV201")


def test_tv202_corrupted_run_charges():
    vm, code, tcode = compiled_tier()
    pc, (items, pairs, end, last_op, n_insns) = fused_pc(tcode)
    items = ((items[0][0], items[0][1], ()),) + items[1:]
    runs = list(tcode.runs)
    runs[pc] = (items, pairs, end, last_op, n_insns)
    tcode.runs = runs
    assert validate_threaded_code(vm, code, tcode).has("TV202")


def test_tv203_missing_run():
    vm, code, tcode = compiled_tier()
    pc, _ = fused_pc(tcode)
    runs = list(tcode.runs)
    runs[pc] = None
    tcode.runs = runs
    assert validate_threaded_code(vm, code, tcode).has("TV203")


def test_tv204_corrupted_insn_count():
    vm, code, tcode = compiled_tier()
    pc, (items, pairs, end, last_op, n_insns) = fused_pc(tcode)
    runs = list(tcode.runs)
    runs[pc] = (items, pairs, end, last_op, n_insns + 7)
    tcode.runs = runs
    assert validate_threaded_code(vm, code, tcode).has("TV204")


def test_tv205_swapped_handler():
    vm, code, tcode = compiled_tier()
    pc, (items, pairs, end, last_op, n_insns) = fused_pc(tcode)
    pairs = ((None, pairs[0][1]),) + pairs[1:]
    runs = list(tcode.runs)
    runs[pc] = (items, pairs, end, last_op, n_insns)
    tcode.runs = runs
    assert validate_threaded_code(vm, code, tcode).has("TV205")


def test_tv206_missing_resident_program():
    vm, code, tcode = compiled_tier(eventprog=True)
    assert tcode.progs is not None
    pc, _ = fused_pc(tcode)
    progs = list(tcode.progs)
    assert progs[pc] is not None
    progs[pc] = None
    tcode.progs = progs
    assert validate_threaded_code(vm, code, tcode).has("TV206")


def test_tv206_quicken_layer_twin_mismatch():
    # Same shared check through the quickening layer's entry point.
    cfg = SystemConfig()
    cfg.eventprog = True
    vm = PyVM(VMContext(cfg))
    code = compile_source(TIER_SRC)
    table = build_run_table(vm, code)
    programs = build_run_programs(vm, table)
    report = validate_run_programs(vm, table, programs)
    assert not report.findings, [f.render() for f in report.findings]
    mutated = list(programs)
    pc = next(i for i, p in enumerate(mutated) if p is not None)
    prog = mutated[pc]
    mutated[pc] = ep.EventProgram(
        prog.events, prog.n_insns + 1, prog.notes, prog.tags,
        prog.n_slots, label=prog.label)
    report = validate_run_programs(vm, table, mutated)
    assert report.has("TV206") or report.has("TV302")


# ---------------------------------------------------------------------------
# TV3: event programs vs the word sequence they lower to.
# ---------------------------------------------------------------------------


class _Block(object):
    """Stand-in cost block: anything with an integer n_insns."""

    def __init__(self, n_insns):
        self.n_insns = n_insns


def make_program(**overrides):
    blk = _Block(3)
    events = (
        (ep.EV_EXEC_BLOCK, blk),
        (ep.EV_ANNOT_RUN, tags.DISPATCH, 2),
        (ep.EV_LOAD, 0),
        (ep.EV_STORE, 1),
        (ep.EV_BRANCH, 5, True),
    )
    fields = dict(events=events, n_insns=blk.n_insns + 2 + 1 + 1 + 1,
                  notes=((tags.DISPATCH, 2),), tags=(tags.DISPATCH,),
                  n_slots=2, bc_list=None, bc_totals=(), label="tv3")
    fields.update(overrides)
    return ep.EventProgram(**fields)


def test_tv3_clean_pass():
    report = validate_program(make_program())
    assert not report.findings, [f.render() for f in report.findings]


def test_tv301_malformed_event():
    prog = make_program()
    prog.events = prog.events + ((999, 1),)
    assert validate_program(prog).has("TV301")


def test_tv301_truncated_event():
    prog = make_program()
    prog.events = ((ep.EV_BRANCH, 5),) + prog.events[1:]
    assert validate_program(prog).has("TV301")


def test_tv302_corrupted_insn_count():
    prog = make_program()
    prog.n_insns += 1
    assert validate_program(prog).has("TV302")


def test_tv302_corrupted_notes():
    prog = make_program(notes=((tags.DISPATCH, 9),))
    assert validate_program(prog).has("TV302")


def test_tv303_lowering_desynchronized():
    # Simulate a desynchronized encode path: the lowering reads a
    # different event sequence than the metadata was computed from.
    prog = make_program()
    good = prog.events
    stale = good[:-1]   # lowering silently loses the trailing branch

    class _ShiftyProg(object):
        n_insns = prog.n_insns
        notes = prog.notes
        tags = prog.tags
        n_slots = prog.n_slots
        bc_list = prog.bc_list
        bc_totals = prog.bc_totals
        label = prog.label

        def __init__(self):
            self._reads = 0

        @property
        def events(self):
            self._reads += 1
            return good if self._reads == 1 else stale

    assert validate_program(_ShiftyProg()).has("TV303")


def test_tv304_negative_slot():
    prog = make_program()
    prog.events = prog.events[:2] + ((ep.EV_LOAD, -1),) + prog.events[3:]
    assert validate_program(prog).has("TV304")


def test_tv304_bulk_rate_out_of_range():
    prog = make_program()
    prog.events = prog.events + ((ep.EV_BULK, 4, 1.5),)
    assert validate_program(prog).has("TV304")


def test_tv305_wrong_slot_count():
    prog = make_program(n_slots=1)
    assert validate_program(prog).has("TV305")


def test_tv306_corrupted_bc_totals():
    lst = [0, 0, 0]
    prog = make_program()
    prog.events = prog.events + ((ep.EV_BC, lst, 2),)
    prog.bc_list = lst
    prog.bc_totals = ((2, 5),)   # the events bump index 2 exactly once
    assert validate_program(prog).has("TV306")
