#!/usr/bin/env python
"""Standalone static-verification linter (see DESIGN.md §12).

Runs the three repro.analysis passes over the shipped tree:

* ``--effects``  — effect/purity declaration cross-check (EFF0xx),
* ``--programs`` — compile every TinyPy and TinyRkt benchmark program
  and verify its bytecode (BC1xx-BC3xx) plus the quickening run table
  of every reachable code object (BC4xx),
* ``--traces``   — run the bench quick-set programs at a small size
  with an eager JIT and verify every compiled trace, including backend
  numbering (IR1xx-IR6xx),
* ``--transval`` — translation validation (DESIGN.md §16): re-prove
  every quick-set trace equivalent to its recorded stream (TV1xx),
  every tier-1 compilation equal to the interpreter's charge summaries
  (TV2xx), and every resident event-program decodable back to the call
  sequence it replaced (TV3xx),
* ``--all``      — everything above (the default when no pass is named).

Exit status is 0 iff no *errors* were found (warnings are advisory;
``--strict`` promotes them — and upgrades ``IR502`` un-forwarded heap
reads to hard errors unless suppressed in :data:`IR502_SUPPRESS`).  ``--json PATH`` additionally writes every
finding machine-readably for CI artifact collection.

Usage::

    PYTHONPATH=src python tools/lint.py --all
    PYTHONPATH=src python tools/lint.py --programs --json findings.json
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis import (  # noqa: E402
    check_effects,
    verify_backend,
    verify_pycode,
    verify_run_table,
    verify_trace,
)
from repro.analysis.diagnostics import Report  # noqa: E402
from repro.benchprogs.registry import (  # noqa: E402
    PY_PROGRAMS,
    RKT_PROGRAMS,
)
from repro.core.config import SystemConfig  # noqa: E402
from repro.interp.context import VMContext  # noqa: E402
from repro.pylang import bytecode as bc  # noqa: E402
from repro.pylang.compiler import compile_source  # noqa: E402
from repro.pylang.interp import PyVM  # noqa: E402
from repro.pylang.quicken import build_run_table  # noqa: E402

#: Programs whose traces the ``--traces`` pass verifies (mirrors the
#: bench quick-set plus one bridge-heavy and one allocation-heavy
#: program for optimizer-path coverage).
TRACE_SET = ("richards", "crypto_pyaes", "fannkuch", "chaos",
             "binarytrees")

#: ``where`` substrings of IR502 (un-forwarded heap read) findings that
#: are known codegen artifacts, not missed forwarding opportunities.
#: Under ``--strict`` every IR502 *not* matched here is promoted to an
#: error; suppressed sites stay warnings.  Keep entries narrow (program
#: + trace id) and justify each with a comment.
IR502_SUPPRESS = (
)


def promote_ir502(report):
    """Strict mode: un-forwarded heap reads are errors, not advisories.

    A live heap-cache key at an emitted read means the optimizer left a
    redundant load in the hot path — under ``--strict`` that fails the
    lint unless the site is a documented codegen artifact
    (:data:`IR502_SUPPRESS`).
    """
    from repro.analysis.diagnostics import ERROR

    for finding in report.findings:
        if finding.code != "IR502":
            continue
        if any(pat in finding.where for pat in IR502_SUPPRESS):
            continue
        finding.severity = ERROR


def _all_codes(code):
    """Every code object reachable from ``code`` (incl. itself)."""
    out = []
    pending = [code]
    seen = set()
    while pending:
        current = pending.pop()
        if id(current) in seen:
            continue
        seen.add(id(current))
        out.append(current)
        for const in current.consts:
            if isinstance(const, bc.FunctionSpec):
                pending.append(const.code)
            elif isinstance(const, bc.ClassSpec):
                pending.extend(m[1] for m in const.methods)
    return out


def lint_effects(report):
    check_effects(report)


def lint_programs(report, verbose=False):
    from repro.rktlang.compiler import compile_rkt

    vm = PyVM(VMContext(SystemConfig()))
    sources = [(p, compile_source) for p in PY_PROGRAMS]
    sources += [(p, compile_rkt) for p in RKT_PROGRAMS]
    for program, compiler in sources:
        if verbose:
            print("  %s/%s" % (program.language, program.name))
        code = compiler(program.source(program.small_n), program.name)
        report.extend(verify_pycode(code))
        for sub in _all_codes(code):
            table = build_run_table(vm, sub)
            report.extend(verify_run_table(
                sub, table,
                subject="%s:%s run table" % (program.name, sub.name)))


def lint_traces(report, verbose=False):
    from repro.difftest.oracle import run_interp
    from repro.rktlang.vm import run_rkt

    for program in PY_PROGRAMS:
        if program.name not in TRACE_SET:
            continue
        if verbose:
            print("  traces: %s" % program.name)
        run = run_interp(program.source(program.small_n), jit=True,
                         threshold=7, bridge_threshold=3)
        if run.error:
            report.error("IR404", "guest error while building traces: "
                         "%s" % run.error, where=program.name,
                         pass_name="lint")
            continue
        _verify_registry(report, run.ctx, program.name)
    for program in RKT_PROGRAMS:
        if program.name not in TRACE_SET:
            continue
        if verbose:
            print("  traces: rkt/%s" % program.name)
        config = SystemConfig()
        config.jit.hot_loop_threshold = 7
        config.jit.bridge_threshold = 3
        _vm, ctx = run_rkt(program.source(program.small_n), config)
        _verify_registry(report, ctx, "rkt/%s" % program.name)


def _verify_registry(report, ctx, label):
    for trace in ctx.registry.traces:
        subject = "%s trace #%d (%s)" % (label, trace.trace_id,
                                         trace.kind)
        result = verify_trace(trace, cfg=ctx.config.jit, subject=subject)
        result.extend(verify_backend(trace,
                                     subject="%s backend" % subject))
        report.extend(result)


def lint_transval(report, verbose=False):
    from repro.analysis import (
        validate_optimization,
        validate_program,
        validate_run_programs,
        validate_threaded_code,
    )
    from repro.difftest.oracle import run_interp
    from repro.pylang.quicken import build_run_programs
    from repro.rktlang.vm import run_rkt

    def transval_registry(ctx, label):
        for trace in ctx.registry.traces:
            subject = "%s trace #%d (%s)" % (label, trace.trace_id,
                                             trace.kind)
            report.extend(validate_optimization(ctx.config.jit, trace,
                                                subject=subject))
            for prog in getattr(trace, "_programs", None) or ():
                report.extend(validate_program(prog, subject=subject))

    for program in PY_PROGRAMS:
        if program.name not in TRACE_SET:
            continue
        if verbose:
            print("  transval: %s" % program.name)
        run = run_interp(program.source(program.small_n), jit=True,
                         threshold=7, bridge_threshold=3, eventprog=True)
        if run.error:
            report.error("TV109", "guest error while building traces: "
                         "%s" % run.error, where=program.name,
                         pass_name="lint")
            continue
        transval_registry(run.ctx, program.name)
        # Tier-1 compilations + the quickening layer's run programs.
        tier_run = run_interp(program.source(program.small_n), jit=False,
                              tier1=True, eventprog=True,
                              name="tier1-transval")
        vm = tier_run.vm
        tier = vm.driver.tier
        if tier is not None:
            for code, tcode in tier.compiled.items():
                report.extend(validate_threaded_code(
                    vm, code, tcode,
                    subject="%s tier1 %s" % (program.name, code.name)))
                table = build_run_table(vm, code)
                programs = build_run_programs(vm, table)
                report.extend(validate_run_programs(
                    vm, table, programs,
                    subject="%s quicken %s" % (program.name, code.name)))
    for program in RKT_PROGRAMS:
        if program.name not in TRACE_SET:
            continue
        if verbose:
            print("  transval: rkt/%s" % program.name)
        config = SystemConfig()
        config.jit.hot_loop_threshold = 7
        config.jit.bridge_threshold = 3
        config.eventprog = True
        _vm, ctx = run_rkt(program.source(program.small_n), config)
        transval_registry(ctx, "rkt/%s" % program.name)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="static verification over the shipped tree")
    parser.add_argument("--all", action="store_true",
                        help="run every pass (default)")
    parser.add_argument("--effects", action="store_true",
                        help="effect/purity cross-check")
    parser.add_argument("--programs", action="store_true",
                        help="verify benchmark bytecode + run tables")
    parser.add_argument("--traces", action="store_true",
                        help="verify compiled traces of the quick set")
    parser.add_argument("--transval", action="store_true",
                        help="translation validation over the quick set")
    parser.add_argument("--json", metavar="PATH",
                        help="write findings as JSON")
    parser.add_argument("--strict", action="store_true",
                        help="exit nonzero on warnings too")
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)

    run_all = args.all or not (args.effects or args.programs
                               or args.traces or args.transval)
    report = Report("lint")
    if run_all or args.effects:
        print("== effects cross-check ==")
        lint_effects(report)
    if run_all or args.programs:
        print("== benchmark bytecode + run tables ==")
        lint_programs(report, verbose=args.verbose)
    if run_all or args.traces:
        print("== compiled traces (quick set) ==")
        lint_traces(report, verbose=args.verbose)
    if run_all or args.transval:
        print("== translation validation (quick set) ==")
        lint_transval(report, verbose=args.verbose)

    if args.strict:
        promote_ir502(report)
    for finding in report.findings:
        print(finding.render())
    print("lint: %d errors, %d warnings"
          % (len(report.errors), len(report.warnings)))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        print("findings written to %s" % args.json)
    failed = report.errors or (args.strict and report.warnings)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
