"""The TinyPy VM: an RPython-style bytecode interpreter on the framework.

This is the reproduction's "PyPy": a flat dispatch loop over an explicit
frame stack, DISPATCH annotations per bytecode, JitDriver hooks at
backward jumps, and all value operations routed through LLOps (see
``ops.py`` / ``collections.py`` / ``instances.py`` mixins).
"""

from repro.core import tags
from repro.core.errors import GuestError
from repro.interp.jitdriver import DEOPTED, JitDriver
from repro.isa import insns
from repro.jit.semantics import INT_MAX, INT_MIN
from repro.pylang import bytecode as bc
from repro.pylang.builtins import BUILTIN_FUNCTIONS, TYPE_METHODS
from repro.pylang.collections import CollectionsMixin
from repro.pylang.compiler import compile_source
from repro.pylang.instances import InstancesMixin
from repro.pylang.objects import (
    W_BigInt,
    W_BoundMethod,
    W_Builtin,
    W_Class,
    W_Float,
    W_Function,
    W_Int,
    W_List,
    W_Module,
    W_Slice,
    W_Str,
    W_Tuple,
    w_False,
    w_None,
    w_True,
    wrap_bool,
)
from repro.interp.tier1 import TierManager
from repro.pylang.ops import OpsMixin
from repro.pylang.quicken import (build_run_programs, build_run_table,
                                  op_charges)
from repro.pylang.tier1 import PY_TIER
from repro.rlib.rbigint import BigInt

_DISPATCH_MIX = insns.mix(load=8, alu=6, store=2, br_bulk=3)
_MAKE_FUNCTION_MIX = insns.mix(alu=4, store=3)
_BUILTIN_CALL_MIX = insns.mix(alu=4, store=2, load=2)
_PUSH_FRAME_MIX = insns.mix(alu=6, store=4, load=3)
_RETURN_MIX = insns.mix(alu=3, load=2)
_FRAME_SIZE = 224


class PyFrame(object):
    __slots__ = ("code", "pc", "locals", "stack", "module",
                 "discard_return")

    def __init__(self, code, pc, locals_values, stack_values, module,
                 discard_return=False):
        self.code = code
        self.pc = pc
        self.locals = locals_values
        self.stack = stack_values
        self.module = module
        self.discard_return = discard_return

    @property
    def snapshot_extra(self):
        return (self.module, self.discard_return)

    def __repr__(self):
        return "<PyFrame %s pc=%d>" % (self.code.name, self.pc)


class PyVM(OpsMixin, CollectionsMixin, InstancesMixin):
    """One TinyPy virtual machine bound to a VM context."""

    # Tier-1 policy (subclasses override; see pylang/tier1.py).
    _tier1_spec = PY_TIER

    def __init__(self, ctx):
        self.ctx = ctx
        self.llops = ctx.llops
        self.driver = JitDriver(ctx)
        self.frames = []
        self.output = []
        self._const_cache = {}
        self._builtin_cache = {}
        self._method_cache = {}
        machine = ctx.machine
        self._b_dispatch = machine.block(_DISPATCH_MIX)
        self._b_make_function = machine.block(_MAKE_FUNCTION_MIX)
        self._b_builtin_call = machine.block(_BUILTIN_CALL_MIX)
        self._b_push_frame = machine.block(_PUSH_FRAME_MIX)
        self._b_return = machine.block(_RETURN_MIX)
        # Quickening (host fast path; see pylang/quicken.py).  The charge
        # map only references already-interned llops blocks, so building
        # it touches no machine state even when quickening is off.
        self._quicken = ctx.config.quicken
        self._quicken_tables = {}
        self._quicken_charges = op_charges(ctx.llops)
        # Resident event-programs (config.eventprog): each quickened run
        # (and each tier-1 run) is wrapped once in an EventProgram so
        # the dispatch loop retires it with a single machine call —
        # one FFI crossing on the native backend.  Programs are built
        # lazily per code object, parallel to the run tables.
        self._eventprog = ctx.config.eventprog
        self._quicken_programs = {}
        # Static verification debug gate (repro.analysis): check guest
        # bytecode at program entry and every quickening run table.  The
        # off path is this one attribute read per gate.
        self._verify = ctx.config.verify
        # Baseline threaded-code tier (tier-1 JIT; repro.interp.tier1).
        # Off by default: no blocks are interned, driver.tier stays
        # None, and the dispatch loop below is bit-identical to the
        # two-mode system.
        if ctx.config.tier1:
            self._tier1_spec.install_blocks(self)
            self.driver.tier = TierManager(ctx, self._tier1_spec)
        self._init_instance_caches(machine)
        self._build_handlers()

    # -- program entry ---------------------------------------------------------

    def run_source(self, source, module_name="__main__"):
        code = compile_source(source, module_name)
        return self.run_module_code(code, module_name)

    def run_module_code(self, code, module_name="__main__"):
        if self._verify:
            from repro.analysis import verify_pycode

            verify_pycode(code).raise_if_errors("bytecode verification")
        self.ctx.vm_start()
        w_module = W_Module(module_name)
        w_module._addr = self.ctx.gc.allocate(W_Module._size_, obj=w_module)
        code.module = w_module
        frame = PyFrame(code, 0, [w_None] * code.n_locals, [], w_module)
        self.frames.append(frame)
        try:
            result = self.run_to_depth(len(self.frames) - 1)
        finally:
            self.ctx.vm_stop()
        return result

    def make_frame(self, code, pc, locals_values, stack_values, extra):
        module, discard_return = extra
        return PyFrame(code, pc, list(locals_values), list(stack_values),
                       module, discard_return)

    def run_frame_to_completion(self, code, pc, locals_values,
                                stack_values, extra):
        """call_assembler support: run one frame to completion and
        return its value (never pushing onto the suspended caller)."""
        frame = self.make_frame(code, pc, locals_values, stack_values,
                                extra)
        frame.discard_return = True
        self.frames.append(frame)
        try:
            return self.run_to_depth(len(self.frames) - 1)
        finally:
            # A trace/bridge recording begun inside this frame scope
            # must not outlive it: its root frame is gone, so further
            # recording would capture garbage state.
            tracer = self.ctx.tracer
            if tracer is not None and tracer.interp is self and \
                    tracer.root_depth >= len(self.frames):
                tracer.abort("call_assembler scope ended")

    def stdout(self):
        return "\n".join(self.output) + ("\n" if self.output else "")

    # -- the dispatch loop ----------------------------------------------------------

    def run_to_depth(self, barrier):
        ctx = self.ctx
        machine = ctx.machine
        frames = self.frames
        handlers = self._handlers
        retval = None
        prev_opcode = 0
        dispatch_event = machine.dispatch_event
        quick_run = machine.quick_run
        exec_program = machine.exec_program
        b_dispatch = self._b_dispatch
        DISPATCH = tags.DISPATCH
        quicken = self._quicken
        tables = self._quicken_tables
        use_programs = self._eventprog
        program_tables = self._quicken_programs
        last_code = None
        runs = None
        run_programs = None
        tier = self.driver.tier
        b_tier = self._b_tier1_dispatch if tier is not None else None
        tier_code = None
        tier_epoch = -1
        tcode = None
        while len(frames) > barrier:
            frame = frames[-1]
            pc = frame.pc
            opcode = frame.code.ops[pc]
            if tier is not None and ctx.tracer is None:
                code = frame.code
                if code is not tier_code or tier.epoch != tier_epoch:
                    # Promotions and demotions bump tier.epoch, so the
                    # cached lookup revalidates at the next bytecode.
                    tier_code = code
                    tier_epoch = tier.epoch
                    tcode = tier.compiled.get(code)
                if tcode is not None:
                    entry = tcode.runs[pc]
                    if entry is not None:
                        # Fused straight-line span of threaded code:
                        # batch the site-keyed dispatches and handler
                        # charges, then run the silent micro-handlers.
                        if tcode.progs is not None:
                            exec_program(tcode.progs[pc])
                        else:
                            quick_run(DISPATCH, b_tier, entry[0],
                                      entry[4])
                        for fn, arg in entry[1]:
                            fn(self, frame, arg)
                        frame.pc = entry[2]
                        prev_opcode = entry[3]
                        continue
                    # Threaded dispatch: same DISPATCH event and the
                    # same handler, but a slim dispatch block and a
                    # per-site (near-monomorphic) indirect-branch hash.
                    dispatch_event(DISPATCH, b_tier, tcode.sites[pc],
                                   opcode)
                    prev_opcode = opcode
                    retval = handlers[opcode](frame, frame.code.args[pc])
                    continue
            if quicken and ctx.tracer is None:
                code = frame.code
                if code is not last_code:
                    runs = tables.get(code)
                    if runs is None:
                        runs = build_run_table(self, code)
                        if self._verify:
                            from repro.analysis import verify_run_table

                            verify_run_table(code, runs).raise_if_errors(
                                "quickening verification")
                        tables[code] = runs
                    if use_programs:
                        run_programs = program_tables.get(code)
                        if run_programs is None:
                            run_programs = build_run_programs(self, runs)
                            program_tables[code] = run_programs
                    last_code = code
                entry = runs[pc]
                if entry is not None and entry[5] == prev_opcode:
                    # Superinstruction: retire every DISPATCH event and
                    # handler charge of the run in one batched call,
                    # then execute the machine-silent micro-handlers.
                    # The prev_opcode check keeps the dispatch pc hashes
                    # exact; a deopt landing or call return arriving
                    # with a different predecessor takes the slow path
                    # below for one bytecode and re-synchronizes.
                    if run_programs is not None:
                        exec_program(run_programs[pc])
                    else:
                        quick_run(DISPATCH, b_dispatch, entry[0],
                                  entry[4])
                    for fn, arg in entry[1]:
                        fn(self, frame, arg)
                    frame.pc = entry[2]
                    prev_opcode = entry[3]
                    continue
            # Fused DISPATCH annot + handler-prologue block + threaded
            # dispatch jump (as the RPython translator generates).
            dispatch_event(DISPATCH, b_dispatch,
                           0x200 + (prev_opcode << 3), opcode)
            prev_opcode = opcode
            if ctx.tracer is not None:
                if self.driver.trace_dispatch(self, frame) == DEOPTED:
                    continue
                if frame is not frames[-1]:
                    continue
                opcode = frame.code.ops[frame.pc]
            retval = handlers[opcode](frame, frame.code.args[frame.pc])
        return retval

    def _build_handlers(self):
        table = [None] * bc.N_OPS
        for name in dir(self):
            if name.startswith("op_"):
                opname = name[3:].upper()
                opnum = getattr(bc, opname, None)
                if opnum is not None:
                    table[opnum] = getattr(self, name)
        missing = [bc.OP_NAMES[i] for i in range(bc.N_OPS)
                   if table[i] is None]
        assert not missing, "unimplemented opcodes: %s" % missing
        self._handlers = table

    # -- constants ---------------------------------------------------------------------

    def wrap_const(self, value):
        if isinstance(value, (bc.FunctionSpec, bc.ClassSpec)):
            return value
        if isinstance(value, bool):
            return w_True if value else w_False
        if value is None:
            return w_None
        if isinstance(value, int):
            if INT_MIN <= value <= INT_MAX:
                w_value = W_Int(value)
            else:
                w_value = W_BigInt(BigInt.fromint(value))
        elif isinstance(value, float):
            w_value = W_Float(value)
        elif isinstance(value, str):
            w_value = W_Str(value)
        elif isinstance(value, tuple):
            from repro.interp.objects import LLArray

            items = LLArray([self.wrap_const(v) for v in value])
            items._addr = self.ctx.gc.allocate_static(16 + 8 * len(value))
            w_value = W_Tuple(items)
        else:
            raise GuestError("unsupported constant %r" % (value,))
        w_value._addr = self.ctx.gc.allocate_static(w_value._size_)
        return w_value

    def consts_of(self, code):
        consts = self._const_cache.get(code)
        if consts is None:
            consts = [self.wrap_const(value) for value in code.consts]
            self._const_cache[code] = consts
        return consts

    # -- builtins ---------------------------------------------------------------------------

    def builtin_global(self, name):
        w_builtin = self._builtin_cache.get(name)
        if w_builtin is None:
            fn = BUILTIN_FUNCTIONS.get(name)
            if fn is None:
                return None
            w_builtin = W_Builtin(name, fn)
            w_builtin._addr = self.ctx.gc.allocate_static(W_Builtin._size_)
            self._builtin_cache[name] = w_builtin
        return w_builtin

    def builtin_method(self, cls, name):
        key = (cls, name)
        w_method = self._method_cache.get(key)
        if w_method is None:
            table = TYPE_METHODS.get(cls)
            if table is None:
                return None
            fn = table.get(name)
            if fn is None:
                return None
            w_method = W_Builtin("%s.%s" % (cls.__name__, name), fn)
            w_method._addr = self.ctx.gc.allocate_static(W_Builtin._size_)
            self._method_cache[key] = w_method
        return w_method

    # -- simple stack ops ---------------------------------------------------------------------

    def op_load_const(self, frame, arg):
        self.llops.stack_push(frame, self.consts_of(frame.code)[arg])
        frame.pc += 1

    def op_load_fast(self, frame, arg):
        llops = self.llops
        w_value = llops.getlocal(frame, arg)
        llops.stack_push(frame, w_value)
        frame.pc += 1

    def op_store_fast(self, frame, arg):
        llops = self.llops
        llops.setlocal(frame, arg, llops.stack_pop(frame))
        frame.pc += 1

    def op_load_global(self, frame, arg):
        name = frame.code.names[arg]
        w_value = self.global_get(frame.module, name)
        self.llops.stack_push(frame, w_value)
        frame.pc += 1

    def op_store_global(self, frame, arg):
        name = frame.code.names[arg]
        self.global_set(frame.module, name, self.llops.stack_pop(frame))
        frame.pc += 1

    def op_pop_top(self, frame, arg):
        self.llops.stack_pop(frame)
        frame.pc += 1

    def op_dup_top(self, frame, arg):
        llops = self.llops
        llops.stack_push(frame, llops.stack_peek(frame))
        frame.pc += 1

    def op_dup_top_two(self, frame, arg):
        llops = self.llops
        w_b = llops.stack_peek(frame, 0)
        w_a = llops.stack_peek(frame, 1)
        llops.stack_push(frame, w_a)
        llops.stack_push(frame, w_b)
        frame.pc += 1

    def op_rot_two(self, frame, arg):
        llops = self.llops
        w_b = llops.stack_pop(frame)
        w_a = llops.stack_pop(frame)
        llops.stack_push(frame, w_b)
        llops.stack_push(frame, w_a)
        frame.pc += 1

    def op_rot_three(self, frame, arg):
        llops = self.llops
        w_c = llops.stack_pop(frame)
        w_b = llops.stack_pop(frame)
        w_a = llops.stack_pop(frame)
        llops.stack_push(frame, w_c)
        llops.stack_push(frame, w_a)
        llops.stack_push(frame, w_b)
        frame.pc += 1

    def op_unpack_sequence(self, frame, arg):
        llops = self.llops
        w_seq = llops.stack_pop(frame)
        cls = llops.cls_of(w_seq)
        if cls is W_Tuple:
            length = self.tuple_len_raw(w_seq)
            get = self.tuple_getitem_raw
        elif cls is W_List:
            length = self.list_len_raw(w_seq)
            get = self.list_getitem
        else:
            raise GuestError("cannot unpack %s" % cls.__name__)
        if not llops.is_true(llops.int_eq(length, arg)):
            raise GuestError("unpack length mismatch")
        for i in range(arg - 1, -1, -1):
            llops.stack_push(frame, get(w_seq, i))
        frame.pc += 1

    # -- binary / unary operators --------------------------------------------------------------

    def _binop(method_name):  # noqa: N805 - descriptor factory
        def handler(self, frame, arg):
            llops = self.llops
            w_b = llops.stack_pop(frame)
            w_a = llops.stack_pop(frame)
            llops.stack_push(frame, getattr(self, method_name)(w_a, w_b))
            frame.pc += 1
        return handler

    op_binary_add = _binop("binary_add")
    op_binary_sub = _binop("binary_sub")
    op_binary_mul = _binop("binary_mul")
    op_binary_floordiv = _binop("binary_floordiv")
    op_binary_truediv = _binop("binary_truediv")
    op_binary_mod = _binop("binary_mod")
    op_binary_pow = _binop("binary_pow")
    op_binary_and = _binop("binary_and")
    op_binary_or = _binop("binary_or")
    op_binary_xor = _binop("binary_xor")
    op_binary_lshift = _binop("binary_lshift")
    op_binary_rshift = _binop("binary_rshift")

    def _cmpop(opname):  # noqa: N805
        def handler(self, frame, arg):
            llops = self.llops
            w_b = llops.stack_pop(frame)
            w_a = llops.stack_pop(frame)
            llops.stack_push(frame, self.compare(opname, w_a, w_b))
            frame.pc += 1
        return handler

    op_compare_lt = _cmpop("lt")
    op_compare_le = _cmpop("le")
    op_compare_eq = _cmpop("eq")
    op_compare_ne = _cmpop("ne")
    op_compare_gt = _cmpop("gt")
    op_compare_ge = _cmpop("ge")

    def op_compare_is(self, frame, arg):
        llops = self.llops
        w_b = llops.stack_pop(frame)
        w_a = llops.stack_pop(frame)
        llops.stack_push(frame, wrap_bool(
            llops.is_true(llops.ptr_eq(w_a, w_b))))
        frame.pc += 1

    def op_compare_is_not(self, frame, arg):
        llops = self.llops
        w_b = llops.stack_pop(frame)
        w_a = llops.stack_pop(frame)
        llops.stack_push(frame, wrap_bool(
            llops.is_true(llops.ptr_ne(w_a, w_b))))
        frame.pc += 1

    def op_compare_in(self, frame, arg):
        llops = self.llops
        w_container = llops.stack_pop(frame)
        w_item = llops.stack_pop(frame)
        llops.stack_push(frame, wrap_bool(
            self.contains(w_item, w_container)))
        frame.pc += 1

    def op_compare_not_in(self, frame, arg):
        llops = self.llops
        w_container = llops.stack_pop(frame)
        w_item = llops.stack_pop(frame)
        llops.stack_push(frame, wrap_bool(
            not self.contains(w_item, w_container)))
        frame.pc += 1

    def op_unary_neg(self, frame, arg):
        llops = self.llops
        llops.stack_push(frame, self.unary_neg(llops.stack_pop(frame)))
        frame.pc += 1

    def op_unary_not(self, frame, arg):
        llops = self.llops
        llops.stack_push(frame, wrap_bool(
            not self.is_true_w(llops.stack_pop(frame))))
        frame.pc += 1

    def op_unary_invert(self, frame, arg):
        llops = self.llops
        llops.stack_push(frame, self.unary_invert(llops.stack_pop(frame)))
        frame.pc += 1

    # -- attributes and subscripts -----------------------------------------------------------------

    def op_load_attr(self, frame, arg):
        llops = self.llops
        w_obj = llops.stack_pop(frame)
        name = frame.code.names[arg]
        llops.stack_push(frame, self.getattr_w(w_obj, name))
        frame.pc += 1

    def op_store_attr(self, frame, arg):
        llops = self.llops
        w_obj = llops.stack_pop(frame)
        w_value = llops.stack_pop(frame)
        self.setattr_w(w_obj, frame.code.names[arg], w_value)
        frame.pc += 1

    def op_binary_subscr(self, frame, arg):
        llops = self.llops
        w_index = llops.stack_pop(frame)
        w_obj = llops.stack_pop(frame)
        llops.stack_push(frame, self.getitem(w_obj, w_index))
        frame.pc += 1

    def op_store_subscr(self, frame, arg):
        llops = self.llops
        w_index = llops.stack_pop(frame)
        w_obj = llops.stack_pop(frame)
        w_value = llops.stack_pop(frame)
        self.setitem(w_obj, w_index, w_value)
        frame.pc += 1

    def op_delete_subscr(self, frame, arg):
        llops = self.llops
        w_index = llops.stack_pop(frame)
        w_obj = llops.stack_pop(frame)
        self.delitem(w_obj, w_index)
        frame.pc += 1

    # -- control flow --------------------------------------------------------------------------------

    def op_jump(self, frame, arg):
        backward = arg <= frame.pc
        frame.pc = arg
        if backward:
            self.driver.loop_header(self, frame)

    def _cond_branch(self, frame, truthy):
        pc_id = (frame.code.pc_seed ^ frame.pc * 31) & 0xFFFFF
        self.ctx.machine.branch(pc_id, truthy)

    def op_pop_jump_if_false(self, frame, arg):
        truthy = self.is_true_w(self.llops.stack_pop(frame))
        self._cond_branch(frame, truthy)
        if truthy:
            frame.pc += 1
        else:
            backward = arg <= frame.pc
            frame.pc = arg
            if backward:
                self.driver.loop_header(self, frame)

    def op_pop_jump_if_true(self, frame, arg):
        truthy = self.is_true_w(self.llops.stack_pop(frame))
        self._cond_branch(frame, truthy)
        if truthy:
            backward = arg <= frame.pc
            frame.pc = arg
            if backward:
                self.driver.loop_header(self, frame)
        else:
            frame.pc += 1

    def op_jump_if_false_or_pop(self, frame, arg):
        llops = self.llops
        w_value = llops.stack_peek(frame)
        if self.is_true_w(w_value):
            llops.stack_pop(frame)
            frame.pc += 1
        else:
            frame.pc = arg

    def op_jump_if_true_or_pop(self, frame, arg):
        llops = self.llops
        w_value = llops.stack_peek(frame)
        if self.is_true_w(w_value):
            frame.pc = arg
        else:
            llops.stack_pop(frame)
            frame.pc += 1

    def op_get_iter(self, frame, arg):
        llops = self.llops
        llops.stack_push(frame, self.get_iter(llops.stack_pop(frame)))
        frame.pc += 1

    def op_for_iter(self, frame, arg):
        llops = self.llops
        w_iter = llops.stack_peek(frame)
        w_item = self.iter_next(w_iter)
        self._cond_branch(frame, w_item is not None)
        if w_item is None:
            llops.stack_pop(frame)
            frame.pc = arg
        else:
            llops.stack_push(frame, w_item)
            frame.pc += 1

    # -- construction ----------------------------------------------------------------------------------

    def op_build_list(self, frame, arg):
        llops = self.llops
        values_w = [llops.stack_pop(frame) for _ in range(arg)]
        values_w.reverse()
        llops.stack_push(frame, self.new_list(values_w))
        frame.pc += 1

    def op_build_tuple(self, frame, arg):
        llops = self.llops
        values_w = [llops.stack_pop(frame) for _ in range(arg)]
        values_w.reverse()
        llops.stack_push(frame, self.new_tuple(values_w))
        frame.pc += 1

    def op_build_map(self, frame, arg):
        llops = self.llops
        pairs = []
        for _ in range(arg):
            w_value = llops.stack_pop(frame)
            w_key = llops.stack_pop(frame)
            pairs.append((w_key, w_value))
        pairs.reverse()
        llops.stack_push(frame, self.new_dict(pairs))
        frame.pc += 1

    def op_build_set(self, frame, arg):
        llops = self.llops
        values_w = [llops.stack_pop(frame) for _ in range(arg)]
        values_w.reverse()
        llops.stack_push(frame, self.new_set(values_w))
        frame.pc += 1

    def op_build_slice(self, frame, arg):
        llops = self.llops
        w_stop = llops.stack_pop(frame)
        w_start = llops.stack_pop(frame)
        llops.stack_push(frame, llops.new(
            W_Slice, w_start=w_start, w_stop=w_stop, w_step=w_None))
        frame.pc += 1

    def op_list_append(self, frame, arg):
        llops = self.llops
        w_value = llops.stack_pop(frame)
        w_list = llops.stack_pop(frame)
        self.list_append(w_list, w_value)
        frame.pc += 1

    # -- functions, classes, calls ------------------------------------------------------------------------

    def op_make_function(self, frame, arg):
        llops = self.llops
        spec = llops.stack_pop(frame)
        from repro.interp.objects import concrete

        spec = concrete(spec)
        defaults_w = [llops.stack_pop(frame) for _ in range(arg)]
        defaults_w.reverse()
        w_func = W_Function(spec.code, frame.module, defaults_w)
        w_func._addr = self.ctx.gc.allocate(W_Function._size_, obj=w_func)
        spec.code.module = frame.module
        self.ctx.machine.exec_block(self._b_make_function)
        llops.stack_push(frame, w_func)
        frame.pc += 1

    def op_make_class(self, frame, arg):
        spec = frame.code.consts[arg]
        w_class = self.make_class(spec, frame.module)
        for _name, code, _defaults in spec.methods:
            code.module = frame.module
        self.llops.stack_push(frame, w_class)
        frame.pc += 1

    def op_call_function(self, frame, arg):
        llops = self.llops
        args_w = [llops.stack_pop(frame) for _ in range(arg)]
        args_w.reverse()
        w_callee = llops.stack_pop(frame)
        frame.pc += 1
        self.call_function(frame, w_callee, args_w)

    def call_function(self, frame, w_callee, args_w):
        """Dispatch a call; may push a new guest frame."""
        llops = self.llops
        cls = llops.cls_of(w_callee)
        if cls is W_BoundMethod:
            w_func = llops.getfield(w_callee, "w_func")
            w_self = llops.getfield(w_callee, "w_self")
            self.call_function(frame, w_func, [w_self] + args_w)
            return
        if cls is W_Function:
            w_callee = llops.promote(w_callee)
            self.push_call_frame(w_callee, args_w, frame.module)
            return
        if cls is W_Builtin:
            w_callee = llops.promote(w_callee)
            self.ctx.machine.exec_block(self._b_builtin_call)
            w_result = w_callee.fn(self, args_w)
            llops.stack_push(frame, w_result)
            return
        if cls is W_Class:
            w_class = llops.promote(w_callee)
            w_instance = self.instantiate(w_class)
            w_init = self.class_lookup(w_class, "__init__")
            if w_init is None:
                if args_w:
                    raise GuestError("%s() takes no arguments"
                                     % w_class.name)
                llops.stack_push(frame, w_instance)
                return
            llops.stack_push(frame, w_instance)
            self.push_call_frame(w_init, [w_instance] + args_w,
                                 frame.module, discard_return=True)
            return
        raise GuestError("object is not callable")

    def push_call_frame(self, w_func, args_w, caller_module,
                        discard_return=False):
        code = w_func.code
        n_args = len(args_w)
        if n_args != code.argcount:
            n_missing = code.argcount - n_args
            defaults = w_func.defaults
            if n_missing < 0 or n_missing > len(defaults):
                raise GuestError(
                    "%s() takes %d arguments (%d given)"
                    % (code.name, code.argcount, n_args))
            args_w = args_w + defaults[len(defaults) - n_missing:]
        locals_values = args_w + [w_None] * (code.n_locals - code.argcount)
        self.ctx.machine.exec_block(self._b_push_frame)
        self.ctx.gc.allocate(_FRAME_SIZE)
        new_frame = PyFrame(code, 0, locals_values, [], w_func.module,
                            discard_return)
        self.frames.append(new_frame)
        tier = self.driver.tier
        if tier is not None and tier.entry_profiling \
                and self.ctx.tracer is None and code not in tier.compiled:
            # Entry-profiled guests (TinyScheme) promote through calls:
            # their loops are tail-recursive, not backward jumps.
            tier.bump(self, code)

    def op_return_value(self, frame, arg):
        llops = self.llops
        w_result = llops.stack_pop(frame)
        discard = frame.discard_return
        self.frames.pop()
        self.ctx.machine.exec_block(self._b_return)
        if self.frames and not discard:
            llops.stack_push(self.frames[-1], w_result)
        return w_result
