"""Generational garbage-collector model (incminimark-style)."""
