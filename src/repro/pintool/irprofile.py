"""Per-IR-node execution counting from annotations.

The backend can lower every IR node with a tagged NOP_ANNOT carrying
``(trace_id, op_index)``.  This profiler counts node executions from
those annotations.  The production path for IR statistics is the jitlog
(as in the paper, which uses the PyPy Log facility at the JIT-IR level);
this annotation-driven profiler exists to cross-validate the jitlog's
aggregated counters in tests, and as the PinTool-style alternative.
"""

from repro.core import tags


class IrNodeProfiler:
    """Counts executions of individual JIT IR nodes."""

    def __init__(self):
        self.counts = {}
        self.trace_iterations = {}

    def on_annot(self, tag, payload):
        if tag == tags.IR_NODE:
            self.counts[payload] = self.counts.get(payload, 0) + 1
        elif tag == tags.TRACE_ITER:
            self.trace_iterations[payload] = (
                self.trace_iterations.get(payload, 0) + 1
            )

    def count_for(self, trace_id, op_index):
        return self.counts.get((trace_id, op_index), 0)
