# knucleotide (CLBG): count k-mer frequencies in a DNA sequence using a
# hash table — dict-lookup dominated (Table III: ll_call_lookup_function).
N = 12000


def make_sequence(n):
    seed = 42
    bases = "acgt"
    parts = []
    for i in range(n):
        seed = (seed * 3877 + 29573) % 139968
        parts.append(bases[seed % 4])
    return "".join(parts)


def count_frequencies(seq, frame):
    counts = {}
    n = len(seq) - frame + 1
    for i in range(n):
        kmer = seq[i:i + frame]
        old = counts.get(kmer, 0)
        counts[kmer] = old + 1
    return counts


def report_frequencies(seq, frame, out):
    counts = count_frequencies(seq, frame)
    items = counts.items()
    # Sort by count descending then key, via simple selection for
    # determinism (the table is small for frame 1 and 2).
    pairs = []
    for pair in items:
        pairs.append(pair)
    n = len(pairs)
    for i in range(n):
        best = i
        for j in range(i + 1, n):
            if pairs[j][1] > pairs[best][1] or (
                    pairs[j][1] == pairs[best][1]
                    and pairs[j][0] < pairs[best][0]):
                best = j
        tmp = pairs[i]
        pairs[i] = pairs[best]
        pairs[best] = tmp
    total = len(seq) - frame + 1
    for pair in pairs:
        out.append("%s %.3f" % (pair[0].upper(),
                                100.0 * pair[1] / total))


def count_one(seq, fragment, out):
    counts = count_frequencies(seq, len(fragment))
    out.append("%d\t%s" % (counts.get(fragment, 0), fragment.upper()))


def run_knucleotide(n):
    seq = make_sequence(n)
    out = []
    report_frequencies(seq, 1, out)
    report_frequencies(seq, 2, out)
    count_one(seq, "ggt", out)
    count_one(seq, "ggta", out)
    count_one(seq, "ggtatt", out)
    for line in out:
        print(line)


run_knucleotide(N)
