"""Machine reset/reinit: counters are a pure function of the workload.

Satellite of the backend work: every backend's ``reset()`` must return
the machine to its exact post-construction state — predictor tables,
BTB, return-address stack, cache tag arrays, the bulk-miss carry, the
per-class histogram and every counter — so that a reused machine
produces bit-identical results to a fresh one, regardless of what ran
on it before (including a run that died on the instruction limit).

The drive below exercises every event kind the machine exposes
(annotations, mixes, blocks, fused blocks, conditional/indirect
branches, call/ret, bulk branches, loads/stores, and the batched
dispatch/quicken kernels) with a seeded RNG, so "same seed" means
"same workload" and any state leaking across ``reset()`` shows up as a
counter or ``repr(cycles)`` mismatch.
"""

import random

import pytest

from repro import backend as backend_pkg
from repro.core.config import SystemConfig
from repro.isa import insns
from repro.uarch.machine import Machine, SimulationLimitReached

NATIVE_REASON = backend_pkg.native_unavailable_reason()

BACKENDS = ["python", "fast"] + (
    ["native"] if NATIVE_REASON is None else
    [pytest.param("native",
                  marks=pytest.mark.skip(reason="native backend "
                                         "unavailable: " + NATIVE_REASON))])


def _machine(backend, limit=0):
    config = SystemConfig()
    config.sim_backend = backend
    config.max_instructions = limit
    return Machine(config, "gshare")


def _drive(m, seed, steps=1200):
    """Run a seeded synthetic workload; return the full counter state."""
    rng = random.Random(seed)
    tags = [3, 5, 9]
    mixes = [insns.mix(alu=3, load=2, br_bulk=4), insns.mix(alu=1),
             insns.mix(mul=2, div=1, fpu=3, store=2),
             insns.mix(alu=5, br_bulk=1)]
    blocks = [m.block(mx) for mx in mixes]
    fused = m.fused_block(mixes[0], 7, 0.031)
    items_d = tuple((rng.randrange(4096), rng.randrange(4096),
                     blocks[rng.randrange(4)]) for _ in range(9))
    items_q = tuple((rng.randrange(4096), rng.randrange(4096),
                     tuple(blocks[rng.randrange(4)]
                           for _ in range(rng.randrange(4))))
                    for _ in range(7))
    nd = sum(2 + blocks[0].n_insns + b2.n_insns for _, _, b2 in items_d)
    nq = sum(2 + blocks[0].n_insns + sum(b.n_insns for b in bs)
             for _, _, bs in items_q)
    hit = None
    try:
        for step in range(steps):
            op = rng.randrange(16)
            if op == 0:
                m.annot(rng.choice(tags), payload=step)
            elif op == 1:
                m.annot_run(rng.choice(tags), rng.randrange(1, 20))
            elif op == 2:
                m.exec_mix(mixes[rng.randrange(4)])
            elif op == 3:
                m.exec_block(blocks[rng.randrange(4)])
            elif op == 4:
                m.exec_fused(fused)
            elif op == 5:
                m.branch(rng.randrange(8192), rng.random() < 0.6)
            elif op == 6:
                m.branch_block(rng.randrange(8192),
                               blocks[rng.randrange(4)])
            elif op == 7:
                m.branch_block_annot_run(rng.randrange(8192),
                                         blocks[rng.randrange(4)],
                                         rng.choice(tags),
                                         rng.randrange(1, 9))
            elif op == 8:
                m.indirect(rng.randrange(8192), rng.randrange(64))
            elif op == 9:
                m.call(rng.randrange(8192))
                if rng.random() < 0.8:
                    m.ret(rng.randrange(8192))
            elif op == 10:
                m.exec_bulk_branches(rng.randrange(1, 50), 0.05)
            elif op == 11:
                m.load(rng.randrange(1 << 20))
            elif op == 12:
                m.store(rng.randrange(1 << 20))
            elif op == 13:
                m.load_annot_run(rng.randrange(1 << 20), rng.choice(tags),
                                 rng.randrange(1, 7))
            elif op == 14:
                k = rng.randrange(3)
                if k == 0:
                    m.dispatch_event(rng.choice(tags), blocks[0],
                                     rng.randrange(4096),
                                     rng.randrange(64))
                elif k == 1:
                    m.dispatch_event2(rng.choice(tags), blocks[0],
                                      rng.randrange(4096),
                                      rng.randrange(64),
                                      blocks[rng.randrange(4)])
                else:
                    m.store_annot_run(rng.randrange(1 << 20),
                                      rng.choice(tags),
                                      rng.randrange(1, 7))
            else:
                if rng.random() < 0.5:
                    m.dispatch_run(rng.choice(tags), blocks[0], items_d,
                                   nd)
                else:
                    m.quick_run(rng.choice(tags), blocks[0], items_q, nq)
    except SimulationLimitReached as exc:
        hit = exc.args[0]
    return {
        "instructions": m.instructions,
        "cycles_repr": repr(m.cycles),
        "branches": m.branches,
        "branch_misses": m.branch_misses,
        "loads": m.loads,
        "stores": m.stores,
        "annotations": m.annotations,
        "carry_repr": repr(m._bulk_miss_carry),
        "class_counts": tuple(m.class_counts),
        "counters": m.counters(),
        "ipc": repr(m.ipc),
        "mpki": repr(m.branch_mpki),
        "limit": hit,
    }


@pytest.mark.parametrize("backend", BACKENDS)
def test_reset_restores_construction_state(backend):
    """run A, reset, run B  ==  fresh machine running B."""
    reused = _machine(backend)
    _drive(reused, seed=1)
    reused.reset()
    warm = _drive(reused, seed=2)
    fresh = _drive(_machine(backend), seed=2)
    assert warm == fresh


@pytest.mark.parametrize("backend", BACKENDS)
def test_reset_after_limit_hit(backend):
    """A machine that died on the instruction limit resets cleanly, and
    the limit fires at the same point on the reused machine."""
    limited = _machine(backend, limit=12_000)
    first = _drive(limited, seed=3)
    assert first["limit"] is not None  # the cap really fired
    limited.reset()
    again = _drive(limited, seed=3)
    assert again == first
    assert _drive(_machine(backend, limit=12_000), seed=3) == first


@pytest.mark.parametrize("backend", BACKENDS)
def test_run_order_independence(backend):
    """Counters depend only on the workload, not on which workloads ran
    before it on other machine instances (no class-level or module
    state leaks: block descriptors are per-machine, predictor tables
    are per-instance)."""
    alone = _drive(_machine(backend), seed=7)
    _drive(_machine(backend), seed=8)
    _drive(_machine(backend), seed=9)
    after_others = _drive(_machine(backend), seed=7)
    assert after_others == alone


def test_backends_agree_on_the_drive():
    """The same synthetic workload lands on bit-identical counters
    across every available backend (a machine-level complement to the
    benchmark-level suite in test_backend_equivalence)."""
    reference = _drive(_machine("python"), seed=11)
    for backend in ("fast",) + (("native",) if NATIVE_REASON is None
                                else ()):
        assert _drive(_machine(backend), seed=11) == reference, backend
