"""Telemetry exporters: Chrome trace JSON, JSONL, self-time summaries.

Three output shapes from one event stream (see :mod:`.bus`):

* :func:`to_chrome` — the Chrome trace-event format (JSON object with a
  ``traceEvents`` array), loadable in ``chrome://tracing`` and Perfetto.
  Spans become complete (``"X"``) events, instants become ``"i"``, and
  final metric values become counter (``"C"``) samples; per-process
  metadata (``"M"``) names the tracks.
* :func:`write_jsonl` / :func:`read_jsonl` — a compact, lossless
  line-per-event stream for storage and diffing.
* :func:`self_time_summary` — per-span-name (or per-phase) totals of
  inclusive time, self time, and hit count, in native clock ticks; for
  VM sessions ticks are simulated cycles, so the per-phase rows agree
  with :mod:`repro.pintool.phases` windowed totals by construction.
"""

import json

# Span name -> pintool phase (see repro.pintool.phases.PHASE_NAMES).
# Optimizer/backend work happens while the tracer phase is open, which
# is exactly how PhaseTracker attributes it (OPT/BACKEND tags are not
# phase tags), so both map to "tracing" here.  Tier-1 compilation runs
# inside the interpreter phase the same way (TIER1_COMPILE tags are
# not phase tags), so its span folds back into "interp".
SPAN_PHASES = {
    "run": "interp",
    "tier1_compile": "interp",
    "trace": "tracing",
    "bridge": "tracing",
    "optimize": "tracing",
    "assemble": "tracing",
    "jit": "jit",
    "jit_call": "jit_call",
    "blackhole": "blackhole",
    "gc_minor": "gc",
    "gc_major": "gc",
}


# -- Chrome trace-event JSON ----------------------------------------------------


def to_chrome(events):
    """Convert event records to a Chrome trace-event JSON object."""
    trace_events = []
    scales = {}
    for record in events:
        if record["type"] == "meta":
            pid = record["pid"]
            scales[pid] = record.get("ticks_per_us") or 1.0
            name = record.get("process_name")
            if name:
                trace_events.append({
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": record["tid"],
                    "args": {"name": name},
                })
    for record in events:
        kind = record["type"]
        if kind == "meta":
            continue
        pid = record["pid"]
        scale = scales.get(pid, 1.0)
        if kind == "span":
            trace_events.append({
                "name": record["name"],
                "cat": record["cat"] or "span",
                "ph": "X",
                "ts": record["ts"] / scale,
                "dur": record["dur"] / scale,
                "pid": pid,
                "tid": record["tid"],
                "args": record["args"],
            })
        elif kind == "instant":
            trace_events.append({
                "name": record["name"],
                "cat": record["cat"] or "instant",
                "ph": "i",
                "ts": record["ts"] / scale,
                "pid": pid,
                "tid": record["tid"],
                "s": "t",
                "args": record["args"],
            })
        elif kind == "metrics":
            ts = record["ts"] / scale
            metrics = record["metrics"]
            for name, value in sorted(metrics.get("counters", {}).items()):
                trace_events.append({
                    "name": name, "ph": "C", "ts": ts, "pid": pid,
                    "tid": record["tid"], "args": {"value": value},
                })
            for name, value in sorted(metrics.get("gauges", {}).items()):
                trace_events.append({
                    "name": name, "ph": "C", "ts": ts, "pid": pid,
                    "tid": record["tid"], "args": {"value": value},
                })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome(path, events):
    with open(path, "w") as handle:
        json.dump(to_chrome(events), handle, indent=1)
        handle.write("\n")
    return path


# -- JSONL stream ---------------------------------------------------------------


def write_jsonl(path_or_file, events):
    """Write one JSON record per line (lossless round trip)."""
    if hasattr(path_or_file, "write"):
        for record in events:
            path_or_file.write(json.dumps(record, sort_keys=True) + "\n")
        return path_or_file
    with open(path_or_file, "w") as handle:
        write_jsonl(handle, events)
    return path_or_file


def read_jsonl(path_or_file):
    if hasattr(path_or_file, "read"):
        return [json.loads(line)
                for line in path_or_file if line.strip()]
    with open(path_or_file) as handle:
        return read_jsonl(handle)


# -- summaries ------------------------------------------------------------------


def self_time_summary(events, by="name"):
    """Aggregate spans into ``key -> {total, self, count}`` (clock ticks).

    ``by="name"`` groups by span name; ``by="phase"`` folds names into
    pintool phases via :data:`SPAN_PHASES` and drops spans with no phase
    mapping (harness-bus spans tick in wall-clock microseconds, not
    simulated cycles, so mixing them into the phase rows would compare
    across clock domains).  Aggregation is insensitive to event order.
    """
    summary = {}
    for record in events:
        if record["type"] != "span":
            continue
        key = record["name"]
        if by == "phase":
            key = SPAN_PHASES.get(key)
            if key is None:
                continue
        row = summary.get(key)
        if row is None:
            row = summary[key] = {"total": 0.0, "self": 0.0, "count": 0}
        row["total"] += record["dur"]
        row["self"] += record["self"]
        row["count"] += 1
    return summary


def merged_metrics(events):
    """Fold every metrics record in the stream into one registry dict."""
    from repro.telemetry.metrics import MetricsRegistry

    merged = MetricsRegistry()
    for record in events:
        if record["type"] == "metrics":
            merged.merge(MetricsRegistry.from_dict(record["metrics"]))
    return merged.to_dict()


def render_summary(summary, title=None, unit="ticks"):
    """Aligned text table of a self-time summary (largest self first)."""
    from repro.harness import report

    rows = sorted(summary.items(), key=lambda kv: -kv[1]["self"])
    total_self = sum(row["self"] for _, row in rows) or 1.0
    table_rows = [
        (key,
         row["count"],
         "%.0f" % row["total"],
         "%.0f" % row["self"],
         "%.1f%%" % (100.0 * row["self"] / total_self))
        for key, row in rows
    ]
    return report.render_table(
        ["span", "count", "total %s" % unit, "self %s" % unit, "self %"],
        table_rows, title=title)


def diff_summaries(before, after, tolerance=0.05):
    """Rows whose self time moved by more than ``tolerance`` (relative).

    Returns dicts ``{"name", "before", "after", "ratio"}`` where ratio
    is the relative change ``after/before - 1`` (``inf`` for keys that
    only exist on the after side).
    """
    moved = []
    for key in sorted(set(before) | set(after)):
        a = before.get(key, {}).get("self", 0.0)
        b = after.get(key, {}).get("self", 0.0)
        if a == 0.0 and b == 0.0:
            continue
        if a == 0.0:
            ratio = float("inf")
        else:
            ratio = b / a - 1.0
        if abs(ratio) > tolerance:
            moved.append({"name": key, "before": a, "after": b,
                          "ratio": ratio})
    return moved
