"""The trace executor: runs compiled traces over real guest values.

The backend's executable form of a trace is a generated Python function
(our stand-in for emitted machine code).  The generated code:

* computes real results (guards genuinely pass or fail, residual calls
  invoke the real runtime functions),
* charges the machine per basic block with the block's assembly mix,
* drives the branch predictor with one conditional-branch event per
  guard execution and the cache model with real heap addresses on every
  getfield/setfield/array access,
* emits DISPATCH annotations at each ``debug_merge_point`` (so bytecode
  counting keeps working inside JIT code — the paper's warmup
  methodology) and JIT_CALL annotations around residual calls.

Guard failure returns an exit record; :func:`execute` then either jumps
into an attached bridge (evaluating the guard's resume snapshot to build
the bridge's entry state) or deoptimizes: the blackhole path charges the
deopt cost, materializes :class:`VirtualSpec` objects and hands a
:class:`DeoptState` back to the interpreter driver.
"""

import hashlib
import math
import re

from repro.backend import eventprog
from repro.core import tags
from repro.interp.objects import LLArray
from repro.isa import insns
from repro.jit import costs, ir
from repro.jit.resume import DeoptState, VirtualSpec
from repro.jit.semantics import LLOverflow, _int_floordiv, _int_mod, check_ovf
from repro.jit.trace import Trace

_OVFD = object()  # overflow sentinel flowing into guard_(no_)overflow

EXIT_GUARD = 1
EXIT_JUMP = 2
EXIT_FINISH = 3

# Inline expression templates for pure operations.
_EXPR = {
    ir.INT_ADD: "({a} + {b})", ir.INT_SUB: "({a} - {b})",
    ir.INT_MUL: "({a} * {b})",
    ir.INT_FLOORDIV: "_idiv({a}, {b})", ir.INT_MOD: "_imod({a}, {b})",
    ir.INT_AND: "({a} & {b})", ir.INT_OR: "({a} | {b})",
    ir.INT_XOR: "({a} ^ {b})",
    ir.INT_LSHIFT: "({a} << {b})", ir.INT_RSHIFT: "({a} >> {b})",
    ir.INT_NEG: "(-{a})", ir.INT_INVERT: "(~{a})",
    ir.INT_LT: "({a} < {b})", ir.INT_LE: "({a} <= {b})",
    ir.INT_EQ: "({a} == {b})", ir.INT_NE: "({a} != {b})",
    ir.INT_GT: "({a} > {b})", ir.INT_GE: "({a} >= {b})",
    ir.INT_IS_TRUE: "({a} != 0)", ir.INT_IS_ZERO: "({a} == 0)",
    ir.FLOAT_ADD: "({a} + {b})", ir.FLOAT_SUB: "({a} - {b})",
    ir.FLOAT_MUL: "({a} * {b})", ir.FLOAT_TRUEDIV: "({a} / {b})",
    ir.FLOAT_NEG: "(-{a})", ir.FLOAT_ABS: "abs({a})",
    ir.FLOAT_SQRT: "_sqrt({a})",
    ir.FLOAT_LT: "({a} < {b})", ir.FLOAT_LE: "({a} <= {b})",
    ir.FLOAT_EQ: "({a} == {b})", ir.FLOAT_NE: "({a} != {b})",
    ir.FLOAT_GT: "({a} > {b})", ir.FLOAT_GE: "({a} >= {b})",
    ir.CAST_INT_TO_FLOAT: "float({a})", ir.CAST_FLOAT_TO_INT: "int({a})",
    ir.STRLEN: "len({a})", ir.STRGETITEM: "{a}[{b}]",
    ir.STR_EQ: "({a} == {b})", ir.STR_CONCAT: "({a} + {b})",
    ir.UNICODELEN: "len({a})", ir.UNICODEGETITEM: "{a}[{b}]",
    ir.UNICODE_EQ: "({a} == {b})", ir.UNICODE_CONCAT: "({a} + {b})",
    ir.PTR_EQ: "({a} is {b})", ir.PTR_NE: "({a} is not {b})",
    ir.SAME_AS: "{a}",
    ir.ARRAYLEN_GC: "len({a}.items)",
}

_OVF_EXPR = {
    ir.INT_ADD_OVF: "_ckovf({a} + {b})",
    ir.INT_SUB_OVF: "_ckovf({a} - {b})",
    ir.INT_MUL_OVF: "_ckovf({a} * {b})",
}


class _CodeGen(object):
    """Generates the Python source for one trace."""

    def __init__(self, ctx, trace):
        self.ctx = ctx
        self.trace = trace
        self.lines = []
        self.consts = {}
        self.names = {}
        self.guards = []
        self.exit_plans = []
        self.block_id = -1
        self.block_mix = {}
        self.block_mixes = []
        self._block_open = False

    # -- naming -----------------------------------------------------------------

    def name_of(self, value):
        name = self.names.get(value)
        if name is None:
            name = "v%d" % value.index
            self.names[value] = name
        return name

    def expr(self, value):
        if isinstance(value, ir.Const):
            raw = value.value
            if raw is None or raw is True or raw is False:
                return repr(raw)
            if isinstance(raw, int) and -2**40 < raw < 2**40:
                return repr(raw)
            if isinstance(raw, float):
                return repr(raw)
            if isinstance(raw, str) and len(raw) < 40 and raw.isascii():
                return repr(raw)
            return self.pool(raw)
        return self.name_of(value)

    def pool(self, obj):
        key = "K%d" % len(self.consts)
        self.consts[key] = obj
        return key

    # -- block bookkeeping --------------------------------------------------------

    def start_block(self, indent, branch_pc=None):
        self.block_id += 1
        self.block_mix = {}
        self.block_mixes.append(self.block_mix)
        self._block_open = True
        self.lines.append("%s_bc[%d] += 1" % (indent, self.block_id))
        if branch_pc is None:
            self.lines.append("%s_xb(_B%d)" % (indent, self.block_id))
        else:
            # Guard fall-through: the not-taken branch event and the
            # block it opens retire in one fused machine call.
            self.lines.append("%s_brb(%d, _B%d)"
                              % (indent, branch_pc, self.block_id))

    def add_mix(self, mix):
        for klass, count in mix:
            self.block_mix[klass] = self.block_mix.get(klass, 0) + count

    # -- emission -------------------------------------------------------------------

    def line(self, indent, text):
        self.lines.append(indent + text)

    def emit_op(self, op, i, indent):
        opnum = op.opnum
        name = "v%d" % op.index
        if self.ctx.config.annotate_ir_nodes and opnum != ir.LABEL:
            key = self.pool((self.trace.trace_id, i))
            self.line(indent, "_annot(%d, %s)" % (tags.IR_NODE, key))
        if opnum == ir.DEBUG_MERGE_POINT:
            self.line(indent, "_annot(%d)" % tags.DISPATCH)
            return
        if opnum in _EXPR:
            args = {
                "a": self.expr(op.args[0]),
                "b": self.expr(op.args[1]) if len(op.args) > 1 else "",
            }
            self.line(indent, "%s = %s" % (name, _EXPR[opnum].format(**args)))
            self.add_mix(costs.PLAIN_MIX.get(opnum, insns.mix(alu=1)))
            return
        if opnum in _OVF_EXPR:
            args = {"a": self.expr(op.args[0]), "b": self.expr(op.args[1])}
            self.line(indent, "try:")
            self.line(indent, "    %s = %s"
                      % (name, _OVF_EXPR[opnum].format(**args)))
            self.line(indent, "except _OVF:")
            self.line(indent, "    %s = _OVFD" % name)
            self.add_mix(costs.PLAIN_MIX[opnum])
            return
        if opnum in ir.GUARDS:
            self.emit_guard(op, indent)
            return
        if opnum in (ir.GETFIELD_GC, ir.GETFIELD_GC_PURE):
            obj = self.expr(op.args[0])
            self.line(indent, "%s = %s.%s" % (name, obj, op.descr.field))
            self.line(indent, "_ld(%s._addr + %d)" % (obj, op.descr.offset))
            return
        if opnum == ir.SETFIELD_GC:
            obj = self.expr(op.args[0])
            value = self.expr(op.args[1])
            self.line(indent, "%s.%s = %s" % (obj, op.descr.field, value))
            self.line(indent, "_st(%s._addr + %d)" % (obj, op.descr.offset))
            return
        if opnum == ir.GETARRAYITEM_GC:
            arr = self.expr(op.args[0])
            idx = self.expr(op.args[1])
            self.line(indent, "%s = %s.items[%s]" % (name, arr, idx))
            self.line(indent, "_ld(%s._addr + 16 + (%s << 3))" % (arr, idx))
            self.add_mix(costs.ARRAYITEM_EXTRA_MIX)
            return
        if opnum == ir.SETARRAYITEM_GC:
            arr = self.expr(op.args[0])
            idx = self.expr(op.args[1])
            value = self.expr(op.args[2])
            self.line(indent, "%s.items[%s] = %s" % (arr, idx, value))
            self.line(indent, "_st(%s._addr + 16 + (%s << 3))" % (arr, idx))
            self.add_mix(costs.ARRAYITEM_EXTRA_MIX)
            return
        if opnum == ir.NEW_WITH_VTABLE:
            helper = self.pool(_make_new_helper(self.ctx, op.descr))
            self.line(indent, "%s = %s()" % (name, helper))
            self.add_mix(costs.NEW_MIX)
            self.add_mix(insns.mix(store=1))
            return
        if opnum == ir.NEW_ARRAY:
            helper = self.pool(_make_newarray_helper(self.ctx))
            self.line(indent, "%s = %s(%s)" % (name, helper,
                                               self.expr(op.args[0])))
            self.add_mix(costs.NEW_MIX)
            return
        if opnum in (ir.CALL, ir.CALL_PURE):
            func = op.descr.func
            fref = self.pool(func)
            key = self.pool((func.name, func.src))
            args = ", ".join(self.expr(a) for a in op.args)
            pc = (self.trace.trace_id << 10 | op.index) & 0xFFFFF
            self.line(indent, "_annot(%d, %s)" % (tags.JIT_CALL_START, key))
            self.line(indent, "_mcall(%d)" % pc)
            self.line(indent, "%s = %s.call(_ctx, (%s,))"
                      % (name, fref, args) if args
                      else "%s = %s.call(_ctx, ())" % (name, fref))
            self.line(indent, "_mret(%d)" % pc)
            self.line(indent, "_annot(%d)" % tags.JIT_CALL_STOP)
            self.add_mix(costs.CALL_BASE_MIX)
            self.add_mix(insns.mix(alu=len(op.args) * costs.CALL_PER_ARG))
            return
        if opnum == ir.CALL_ASSEMBLER:
            helper = self.pool(op.descr)  # a callable set by the driver
            args = ", ".join(self.expr(a) for a in op.args)
            self.line(indent, "%s = %s((%s,))" % (name, helper, args)
                      if args else "%s = %s(())" % (name, helper))
            self.add_mix(costs.CALL_ASM_BASE_MIX)
            self.add_mix(insns.mix(alu=len(op.args) * costs.CALL_PER_ARG))
            return
        raise AssertionError("cannot codegen %s" % op.name)

    def emit_guard(self, op, indent):
        opnum = op.opnum
        a = self.expr(op.args[0])
        if opnum == ir.GUARD_TRUE:
            fail = "not %s" % a
        elif opnum == ir.GUARD_FALSE:
            fail = a
        elif opnum == ir.GUARD_VALUE:
            expected = op.args[1]
            raw = expected.value if isinstance(expected, ir.Const) else None
            if isinstance(raw, (int, float, str)) and not isinstance(raw, bool):
                fail = "%s != %s" % (a, self.expr(expected))
            else:
                fail = "%s is not %s" % (a, self.expr(expected))
        elif opnum == ir.GUARD_CLASS:
            fail = "%s.__class__ is not %s" % (a, self.expr(op.args[1]))
            self.add_mix(insns.mix(load=1))
        elif opnum == ir.GUARD_NONNULL:
            fail = "%s is None" % a
        elif opnum == ir.GUARD_ISNULL:
            fail = "%s is not None" % a
        elif opnum == ir.GUARD_NO_OVERFLOW:
            fail = "%s is _OVFD" % a
        elif opnum == ir.GUARD_OVERFLOW:
            fail = "%s is not _OVFD" % a
        else:
            raise AssertionError(op.name)
        guard_index = len(self.guards)
        self.guards.append(op)
        plan = _exit_plan(op.snapshot)
        self.exit_plans.append(plan)
        values = ", ".join(self.expr(v) for v in plan)
        pc = (self.trace.trace_id << 10 | op.index) & 0xFFFFF
        self.line(indent, "if %s:" % fail)
        self.line(indent, "    _br(%d, True)" % pc)
        self.line(indent, "    return (1, %d, (%s))"
                  % (guard_index, values + ("," if plan else "")))
        self.add_mix(costs.GUARD_MIX)
        # A new basic block begins after every guard; the not-taken
        # branch event fuses into its opening call.
        self.start_block(indent, branch_pc=pc)

    # -- whole-trace generation ---------------------------------------------------------

    def generate(self):
        trace = self.trace
        ops = trace.ops
        header = [self.name_of(arg) for arg in trace.inputargs]
        self.line("", "def _trace_fn(_entry):")
        if len(header) == 1:
            self.line("    ", "%s, = _entry" % header[0])
        elif header:
            self.line("    ", "%s = _entry" % ", ".join(header))
        label_index = trace.label_index
        indent = "    "
        self.start_block(indent)
        for i, op in enumerate(ops):
            if op.opnum == ir.LABEL:
                # Loop head: open the while and a fresh block.
                self.line(indent, "while True:")
                indent = "        "
                self.start_block(indent)
                continue
            if op.opnum == ir.JUMP:
                if self.ctx.config.annotate_ir_nodes:
                    key = self.pool((self.trace.trace_id, i))
                    self.line(indent, "_annot(%d, %s)"
                              % (tags.IR_NODE, key))
                self.emit_jump(op, i, indent, label_index)
                continue
            if op.opnum == ir.FINISH:
                values = ", ".join(self.expr(a) for a in op.args)
                self.line(indent, "return (3, (%s))"
                          % (values + ("," if op.args else "")))
                continue
            self.emit_op(op, i, indent)
        return self.build()

    def emit_jump(self, op, i, indent, label_index):
        target = op.descr
        if isinstance(target, Trace):
            args = ", ".join(self.expr(a) for a in op.args)
            tref = self.pool(target)
            self.line(indent, "return (2, %s, (%s))"
                      % (tref, args + ("," if op.args else "")))
            return
        #

        # Intra-trace jump to the label: rebind label arg names.
        label = self.trace.ops[label_index]
        targets = [self.name_of(a) for a in label.args]
        sources = [self.expr(a) for a in op.args]
        if targets:
            self.line(indent, "%s = %s"
                      % (", ".join(targets), ", ".join(sources)))
        self.add_mix(insns.mix(alu=max(1, len(op.args))))
        if i < len(self.trace.ops) - 1:
            # Entry jump (preamble -> label): fall through into the loop.
            return
        self.line(indent, "continue")

    def build(self):
        from repro.jit import backend

        machine = self.ctx.machine
        namespace = {
            "_xb": machine.exec_block,
            "_brb": machine.branch_block,
            "_br": machine.branch,
            "_ld": machine.load,
            "_st": machine.store,
            "_mcall": machine.call,
            "_mret": machine.ret,
            "_annot": machine.annot,
            "_annotn": machine.annot_run,
            "_brba": machine.branch_block_annot_run,
            "_lda": machine.load_annot_run,
            "_sta": machine.store_annot_run,
            "_ctx": self.ctx,
            "_bc": self.trace._block_counts,
            "_OVF": LLOverflow,
            "_OVFD": _OVFD,
            "_ckovf": check_ovf,
            "_idiv": _int_floordiv,
            "_imod": _int_mod,
            "_sqrt": math.sqrt,
            "abs": abs,
            "len": len,
            "float": float,
            "int": int,
        }
        # Each lowered descriptor binds to its own global name: one dict
        # load per block retire instead of a load plus a list subscript.
        for i, descr in enumerate(
                backend.lower_blocks(machine, self.block_mixes)):
            namespace["_B%d" % i] = descr
        namespace.update(self.consts)
        lines = _fuse_brb_annots(_collapse_annots(self.lines))
        if self.ctx.config.eventprog:
            lines = self._bind_eventprog(lines, namespace, machine)
        source = "\n".join(lines)
        code = compile(source, "<trace-%d>" % self.trace.trace_id, "exec")
        exec(code, namespace)
        return namespace["_trace_fn"], source

    def _bind_eventprog(self, lines, namespace, machine):
        """Rewrite the fused lines into resident event-programs and bind
        the programs, the flush entry point and the operand buffer into
        the trace namespace.  Transforms are digest-cached on disk (the
        fused source plus the block mixes fully determine the result)."""
        bc_list = self.trace._block_counts
        hasher = hashlib.sha256()
        hasher.update("\n".join(lines).encode("utf-8"))
        hasher.update(repr([tuple(sorted(m.items()))
                            for m in self.block_mixes]).encode("utf-8"))
        digest = hasher.hexdigest()[:32]
        cached = eventprog.load_cached_trace(digest)
        if cached is not None:
            new_lines = cached["lines"]
            programs = [eventprog.program_from_jsonable(obj, machine, bc_list)
                        for obj in cached["programs"]]
            n_slots = cached["n_slots"]
            meta = cached["meta"]
        else:
            new_lines, programs, n_slots, meta = _transform_eventprog(
                lines, namespace.__getitem__, bc_list)
            try:
                eventprog.store_cached_trace(digest, {
                    "lines": new_lines,
                    "programs": [eventprog.program_to_jsonable(p)
                                 for p in programs],
                    "n_slots": n_slots,
                    "meta": meta,
                })
            except ValueError:
                pass  # an in-memory-only event kind: keep it RAM-resident
        # Retained for translation validation (lint --transval) and
        # validated eagerly under config.verify: each resident program
        # must statically decode back to the call sequence it replaced.
        self.trace._programs = programs
        if self.ctx.config.verify:
            from repro.analysis import validate_program

            subject = "trace #%d" % self.trace.trace_id
            for prog in programs:
                validate_program(prog, subject=subject).raise_if_errors(
                    "eventprog translation validation")
        stats = eventprog.STATS
        stats["trace_calls_before"] += meta["calls_before"]
        stats["trace_calls_after"] += meta["calls_after"]
        stats["trace_segments"] += meta["segments"]
        namespace["_ep"] = machine.exec_program
        namespace["_o"] = machine.eventprog_operands(n_slots)
        for i, prog in enumerate(programs):
            namespace["_P%d" % i] = prog
        return new_lines


def _collapse_annots(lines):
    """Collapse runs of identical bare ``_annot(tag)`` lines.

    Bytecodes whose ops all virtualized away leave adjacent
    ``debug_merge_point`` annotations with no machine-visible code in
    between; one ``_annotn(tag, k)`` call (:meth:`Machine.annot_run`)
    retires them with identical counter and listener behavior.
    """
    out = []
    i = 0
    n = len(lines)
    while i < n:
        line = lines[i]
        stripped = line.strip()
        if stripped.startswith("_annot(") and "," not in stripped:
            j = i + 1
            while j < n and lines[j] == line:
                j += 1
            run = j - i
            if run > 1:
                indent = line[:len(line) - len(stripped)]
                tag = stripped[len("_annot("):-1]
                out.append("%s_annotn(%s, %d)" % (indent, tag, run))
                i = j
                continue
        out.append(line)
        i += 1
    return out


#: Machine-call statements that fuse with a following ``_annotn(...)``
#: line: call prefix -> (prefix length, fused call name).
_ANNOT_FUSABLE = {
    "_brb(": (len("_brb("), "_brba"),
    "_ld(": (len("_ld("), "_lda"),
    "_st(": (len("_st("), "_sta"),
}


def _fuse_brb_annots(lines):
    """Fuse bare machine calls immediately followed by ``_annotn(...)``.

    A guard's fall-through block call (``_brb``), a load, or a store
    adjacent to a collapsed annotation run becomes one fused call
    (``_brba``/``_lda``/``_sta`` — see
    :meth:`Machine.branch_block_annot_run` and friends): the exact
    concatenation of both event sequences, one Python call instead of
    two.
    """
    out = []
    for line in lines:
        stripped = line.strip()
        if stripped.startswith("_annotn(") and out:
            prev = out[-1]
            prev_stripped = prev.strip()
            for prefix, (plen, fused) in _ANNOT_FUSABLE.items():
                if (prev_stripped.startswith(prefix)
                        and prev_stripped.endswith(")")
                        and prev[:len(prev) - len(prev_stripped)]
                        == line[:len(line) - len(stripped)]):
                    indent = line[:len(line) - len(stripped)]
                    out[-1] = "%s%s(%s, %s)" % (
                        indent, fused, prev_stripped[plen:-1],
                        stripped[8:-1])
                    break
            else:
                out.append(line)
            continue
        out.append(line)
    return out


#: Minimum deferrable machine calls a segment must contain before it is
#: worth replacing them with one ``_ep(...)`` flush.
_MIN_PROGRAM_EVENTS = 2

#: Pooled-constant invocations (``K3(...)``, ``K1.call(...)``): residual
#: calls, allocation helpers and CALL_ASSEMBLER targets.  They can
#: re-enter the machine (or this very trace function), so they always
#: end a segment — the flush-before-host-call invariant is what makes
#: the shared ``_o`` operand buffer safe under recursion.
_HOST_CALL_RE = re.compile(r"\bK\d+\s*[(.]")


def _count_machine_calls(lines):
    n = 0
    for line in lines:
        stripped = line.lstrip()
        if (stripped.startswith("_")
                and not stripped.startswith(("_bc[", "_o["))):
            n += 1
    return n


def _transform_eventprog(lines, resolve, bc_list):
    """Rewrite generated trace lines into resident event-programs.

    Machine-call statements are deferred into per-segment
    :class:`~repro.backend.eventprog.EventProgram` objects: the common
    path of a loop iteration retires all of its charge events with ONE
    ``_ep(_P<i>, _o)`` call at the segment's end (native backend: one
    FFI crossing), with cache operand addresses spilled into the shared
    ``_o`` buffer at their original positions.  Guards do not end a
    segment — their fail path flushes a *prefix* program (the events
    accumulated so far) before the taken-branch event, so machine state
    at every exit is bit-identical to the per-call code.  Block exec
    counters ride along as zero-cost EV_BC events, keeping the jitlog
    exact even when a replayed program hits the instruction limit
    mid-segment.  Segments end at anything that can observe or re-enter
    the machine: residual/host calls, non-DISPATCH annotations, returns
    and the loop back-edge.

    Returns ``(new_lines, programs, n_slots, meta)`` where programs[i]
    binds to ``_P<i>``.
    """
    dispatch = tags.DISPATCH
    out = []
    programs = []
    # Buffered segment entries, replayed by flush():
    #   ("raw", line)            kept on both paths
    #   ("event", line)          dropped on convert, restored on revert
    #   ("op", new, line)        operand spill on convert, original call
    #                            on revert
    #   ("prefix", line)         guard-exit flush; dropped on revert
    pending = []
    state = {"builder": None, "slot": 0, "events": 0, "segments": 0}
    seg_indent = [4]

    def builder():
        b = state["builder"]
        if b is None:
            b = state["builder"] = eventprog.ProgramBuilder()
        return b

    def snapshot():
        programs.append(state["builder"].build())
        return "_P%d" % (len(programs) - 1)

    def flush():
        if state["builder"] is not None:
            if state["events"] >= _MIN_PROGRAM_EVENTS:
                name = snapshot()
                for entry in pending:
                    if entry[0] == "event":
                        continue
                    out.append(entry[1])
                out.append("%s_ep(%s, _o)" % (" " * seg_indent[0], name))
                state["segments"] += 1
            else:
                for entry in pending:
                    if entry[0] == "prefix":
                        continue
                    out.append(entry[-1])
        del pending[:]
        state["builder"] = None
        state["slot"] = 0
        state["events"] = 0

    def emit(line):
        if state["builder"] is not None:
            pending.append(("raw", line))
        else:
            out.append(line)

    def defer(line, parse):
        parse()
        pending.append(("event", line))
        state["events"] += 1

    for line in lines:
        stripped = line.lstrip()
        indent = len(line) - len(stripped)
        if indent > seg_indent[0]:
            # Guard and overflow bodies stay verbatim, in place; their
            # direct machine calls are the rare taken path, preceded by
            # the prefix flush injected at the owning "if".
            emit(line)
            continue
        if stripped == "while True:":
            flush()
            out.append(line)
            seg_indent[0] = 8
            continue
        if stripped.startswith("if "):
            emit(line)
            if state["builder"] is not None and len(state["builder"]):
                pending.append(("prefix", "%s_ep(%s, _o)"
                                % (" " * (indent + 4), snapshot())))
            continue
        if stripped.startswith("_bc["):
            builder().bc(bc_list, int(stripped[4:stripped.index("]")]))
            pending.append(("event", line))
            continue
        if stripped.startswith("_xb("):
            defer(line, lambda: builder().exec_block(
                resolve(stripped[4:-1])))
            continue
        if stripped.startswith("_brb("):
            pc_s, descr = stripped[5:-1].split(",")
            defer(line, lambda: builder().branch_block(
                int(pc_s), resolve(descr.strip())))
            continue
        if stripped.startswith("_brba("):
            parts = stripped[6:-1].split(",")
            if int(parts[2]) == dispatch:
                defer(line, lambda: builder().branch_block_annot_run(
                    int(parts[0]), resolve(parts[1].strip()),
                    int(parts[2]), int(parts[3])))
                continue
        if stripped.startswith("_annotn("):
            tag_s, n_s = stripped[8:-1].split(",")
            if int(tag_s) == dispatch:
                defer(line, lambda: builder().annot_run(
                    int(tag_s), int(n_s)))
                continue
        if stripped.startswith("_annot(") and "," not in stripped:
            if int(stripped[7:-1]) == dispatch:
                defer(line, lambda: builder().annot_run(dispatch, 1))
                continue
        if stripped.startswith(("_ld(", "_st(")):
            slot = state["slot"]
            state["slot"] = slot + 1
            fn = builder().load if stripped[1] == "l" else builder().store
            fn(slot)
            pending.append(("op", "%s_o[%d] = %s"
                            % (" " * indent, slot, stripped[4:-1]), line))
            state["events"] += 1
            continue
        if stripped.startswith(("_lda(", "_sta(")):
            expr, tag_s, n_s = stripped[5:-1].rsplit(",", 2)
            if int(tag_s) == dispatch:
                slot = state["slot"]
                state["slot"] = slot + 1
                b = builder()
                fn = b.load_annot_run if stripped[1] == "l" \
                    else b.store_annot_run
                fn(slot, int(tag_s), int(n_s))
                pending.append(("op", "%s_o[%d] = %s"
                                % (" " * indent, slot, expr), line))
                state["events"] += 1
                continue
        if (stripped.startswith(("_", "return", "continue", "def "))
                or _HOST_CALL_RE.search(stripped)):
            flush()
            out.append(line)
            continue
        emit(line)
    flush()
    n_slots = 0
    for prog in programs:
        if prog.n_slots > n_slots:
            n_slots = prog.n_slots
    meta = {
        "calls_before": _count_machine_calls(lines),
        "calls_after": _count_machine_calls(out),
        "segments": state["segments"],
    }
    return out, programs, n_slots, meta


def _exit_plan(snapshot):
    """Ordered unique non-const IR values a guard exit must hand back."""
    plan = []
    seen = set()

    def visit(value):
        if isinstance(value, ir.Const):
            return
        if isinstance(value, VirtualSpec):
            if id(value) in seen:
                return
            seen.add(id(value))
            for field_value in value.fields.values():
                visit(field_value)
            return
        if id(value) in seen:
            return
        seen.add(id(value))
        plan.append(value)

    if snapshot is not None:
        for value in snapshot.iter_values():
            visit(value)
    return plan


def _make_new_helper(ctx, cls):
    gc = ctx.gc
    size = getattr(cls, "_size_", 32)
    new = cls.__new__

    def _new():
        obj = new(cls)
        obj._addr = gc.allocate(size, obj=obj)
        return obj

    return _new


def _make_newarray_helper(ctx):
    gc = ctx.gc

    def _newarray(length):
        arr = LLArray([None] * length)
        arr._addr = gc.allocate(16 + 8 * length, obj=arr)
        return arr

    return _newarray


def get_compiled(ctx, trace):
    fn = getattr(trace, "_fn", None)
    if fn is None:
        trace._block_counts = []
        gen = _CodeGen(ctx, trace)
        # Pre-size the block counter list: generate() fills block ids.
        trace._block_counts.extend([0] * (len(trace.ops) + 2))
        fn, source = gen.generate()
        trace._fn = fn
        trace._source = source
        trace._guards = gen.guards
        trace._exit_plans = gen.exit_plans
        trace._op_block = _op_block_assignment(trace)
        trace._n_blocks = gen.block_id + 1
    return trace._fn


def _op_block_assignment(trace):
    """Which generated block each op belongs to (for exec counts)."""
    assignment = []
    block = 0
    for op in trace.ops:
        if op.opnum == ir.LABEL:
            block += 1
            assignment.append(block)
            continue
        assignment.append(block)
        if op.opnum in ir.GUARDS:
            block += 1
    return assignment


def sync_exec_counts(trace):
    """Fold generated-code block counters into per-op execution counts."""
    counts = getattr(trace, "_block_counts", None)
    if counts is None:
        return
    assignment = trace._op_block
    trace.op_exec_counts = [
        counts[assignment[i]] if assignment[i] < len(counts) else 0
        for i in range(len(trace.ops))
    ]
    if trace.label_index >= 0:
        label_block = assignment[trace.label_index]
        trace.iterations = counts[label_block]


# -- running ---------------------------------------------------------------------------


def _materialize(ctx, spec, mapping, memo):
    obj = memo.get(id(spec))
    if obj is not None:
        return obj
    cls = spec.cls
    obj = cls.__new__(cls)
    obj._addr = ctx.gc.allocate(spec.size or getattr(cls, "_size_", 32),
                                obj=obj)
    memo[id(spec)] = obj
    for descr, value in spec.fields.items():
        setattr(obj, descr.field, _resume_value(ctx, value, mapping, memo))
    return obj


def _resume_value(ctx, value, mapping, memo):
    if isinstance(value, ir.Const):
        return value.value
    if isinstance(value, VirtualSpec):
        return _materialize(ctx, value, mapping, memo)
    return mapping[value]


def _snapshot_to_frames(ctx, snapshot, mapping):
    memo = {}
    frames = []
    n_values = 0
    for frame_state in snapshot.frames:
        locals_values = [
            _resume_value(ctx, v, mapping, memo) for v in frame_state.locals
        ]
        stack_values = [
            _resume_value(ctx, v, mapping, memo) for v in frame_state.stack
        ]
        n_values += len(locals_values) + len(stack_values)
        frames.append(
            (frame_state.code, frame_state.pc, locals_values, stack_values,
             frame_state.extra)
        )
    return frames, n_values


def _charge_blackhole(machine, n_values):
    machine.exec_mix(costs.BLACKHOLE_BASE_MIX)
    if n_values:
        machine.exec_mix(
            insns.scale_mix(costs.BLACKHOLE_PER_VALUE_MIX, n_values)
        )
    machine.exec_bulk_branches(
        costs.BLACKHOLE_BRANCHES, costs.BLACKHOLE_BRANCH_MISS_RATE
    )


class ExecResult(object):
    """Outcome of one JIT execution: deopt state + optional bridge request."""

    __slots__ = ("deopt", "bridge_request")

    def __init__(self, deopt, bridge_request):
        self.deopt = deopt
        self.bridge_request = bridge_request


def execute(ctx, trace, entry_values):
    """Run a compiled trace (following bridges) until deoptimization."""
    machine = ctx.machine
    cfg = ctx.config.jit
    machine.annot(tags.JIT_ENTER, trace.trace_id)
    current = trace
    entry = tuple(entry_values)
    while True:
        fn = get_compiled(ctx, current)
        current.executions += 1
        result = fn(entry)
        kind = result[0]
        if kind == EXIT_JUMP:
            current = result[1]
            entry = result[2]
            continue
        if kind == EXIT_FINISH:
            raise AssertionError("finish exits are not used by loops")
        guard_index = result[1]
        values = result[2]
        guard = current._guards[guard_index]
        guard.fail_count += 1
        mapping = dict(zip(current._exit_plans[guard_index], values))
        if isinstance(guard.bridge, Trace):
            bridge = guard.bridge
            entry = tuple(_flatten_snapshot(ctx, guard.snapshot, mapping))
            current = bridge
            continue
        # No bridge: deoptimize through the blackhole interpreter.
        bridge_request = None
        if (cfg.enabled and guard.bridge is None
                and guard.fail_count >= cfg.bridge_threshold):
            bridge_request = guard
        machine.annot(tags.BLACKHOLE_START)
        frames, n_values = _snapshot_to_frames(ctx, guard.snapshot, mapping)
        _charge_blackhole(machine, n_values)
        machine.annot(tags.BLACKHOLE_STOP)
        machine.annot(tags.JIT_LEAVE, trace.trace_id)
        return ExecResult(DeoptState(frames), bridge_request)


def _flatten_snapshot(ctx, snapshot, mapping):
    memo = {}
    flat = []
    for frame_state in snapshot.frames:
        for value in frame_state.locals:
            flat.append(_resume_value(ctx, value, mapping, memo))
        for value in frame_state.stack:
            flat.append(_resume_value(ctx, value, mapping, memo))
    return flat
