"""Table IV: per-phase microarchitectural behaviour."""

from conftest import save

from repro.harness import experiments


def test_table4(benchmark, quick):
    rows, text = benchmark.pedantic(
        lambda: experiments.table4(quick=quick), rounds=1, iterations=1)
    save("table4.txt", text)

    by_phase = {r["phase"]: r for r in rows}
    # Paper shape: the JIT phase has the best branch behaviour...
    assert (by_phase["jit"]["miss_rate"]
            < by_phase["interp"]["miss_rate"])
    # ...the blackhole interpreter has the worst IPC of any phase...
    active = [r for r in rows if r["n"] >= 2]
    worst = min(active, key=lambda r: r["ipc"])
    assert worst["phase"] == "blackhole"
    # ...and the GC phase has comparatively high IPC (regular sweeps).
    assert by_phase["gc"]["ipc"] > by_phase["blackhole"]["ipc"]
    # Branch density is in the same ballpark across phases (paper: the
    # branch rate "is almost identical" across interpreters/phases).
    densities = [r["branches_per_insn"] for r in active]
    assert max(densities) < 4 * max(min(densities), 0.02)
