"""Cross-layer translation validation (DESIGN.md §16).

Three validators, one per unverified translation step, all reporting
through :mod:`repro.analysis.diagnostics`:

* ``TV1xx`` — :func:`validate_optimization`: symbolically executes a
  recorded trace and its optimized counterpart (over the
  :mod:`repro.analysis.symexec` domain) and proves them equivalent
  modulo the optimizer's legal moves: guard strengthening/dedup,
  constant folding per ``FOLDABLE``, heap-cache forwarding, CSE,
  virtual removal with rematerializable snapshots, and loop peeling.
* ``TV2xx`` — :func:`validate_threaded_code`: replays a tier-1
  :class:`ThreadedCode` and the interpreter's quickening analysis
  through the shared charge summaries (``op_charges``/``find_runs``)
  and proves the threaded segments charge a provably equal event
  sequence — without running either.
* ``TV3xx`` — :func:`validate_program`: statically decodes an
  :class:`EventProgram` back to the kernel-op sequence it encodes,
  recomputes its cost/note metadata from an independent per-kind
  table, and range-checks every operand against the ``cgen`` word
  layouts.

Code table:

===== ==============================================================
TV101 observable event missing / extra / out of order
TV102 recorded guard dropped without entailment
TV103 observable event operand mismatch
TV104 guard snapshot not equivalent / virtual not rematerializable
TV105 jump (loop-carried) value mismatch
TV106 loop-peeling virtual-state layout mismatch
TV107 optimized stream structure invalid for its kind
TV108 optimized guard with no recorded counterpart
TV109 symbolic evaluation failed (internal/unsupported)
TV201 tier-1 site table wrong (length / hash values)
TV202 tier-1 run charges diverge from the interpreter summaries
TV203 tier-1 run placement violates fusion safety / run set wrong
TV204 tier-1 run bookkeeping wrong (next_pc / last_op / n_insns)
TV205 tier-1 micro-handler pair mismatch
TV206 tier-1 resident program differs from its quick_run twin
TV301 event program: malformed event (kind / arity / types)
TV302 event program: cost or note metadata mismatch
TV303 event program: lowering does not decode to its event sequence
TV304 event program: operand out of range for the native layouts
TV305 event program: operand-slot bookkeeping wrong
TV306 event program: host-side bytecode-counter totals wrong
===== ==============================================================
"""

from repro.analysis.diagnostics import Report
from repro.analysis.symexec import (
    SymConst,
    SymEval,
    SymObj,
    Unifier,
    World,
    render_term,
)
from repro.jit import ir

_PASS = "transval"
_MAX_FINDINGS = 12

_FACT_GUARDS = (ir.GUARD_TRUE, ir.GUARD_FALSE, ir.GUARD_NONNULL,
                ir.GUARD_ISNULL)


# ---------------------------------------------------------------------------
# TV1: recorded trace vs optimized trace.
# ---------------------------------------------------------------------------


class _OptValidator(object):
    """One trace's translation-validation state (TV1xx)."""

    def __init__(self, cfg, report, where):
        self.cfg = cfg
        self.report = report
        self.where = where
        self.world = World()
        self.uni = Unifier()
        self.n_findings = 0

    # -- reporting -------------------------------------------------------

    def _error(self, code, message, phase):
        if self.n_findings >= _MAX_FINDINGS:
            return
        self.n_findings += 1
        self.report.error(code, message,
                          where="%s %s" % (self.where, phase),
                          pass_name=_PASS)

    # -- evaluation ------------------------------------------------------

    def _run(self, stream, seeds, side):
        ev = SymEval(self.world, self.cfg, side)
        for value, term in seeds.items():
            ev.seed(value, term)
        ev.run(stream)
        return ev

    def _jump_terms(self, ev, jump_args):
        return [ev.force(ev.resolve(a)) for a in jump_args]

    def _flush_errors(self, ev, phase):
        for message in ev.errors[:4]:
            self._error("TV109", "%s stream: %s" % (ev.side, message),
                        phase)

    # -- the entry walk --------------------------------------------------

    def compare(self, rec_ev, opt_ev, phase, known_class=None):
        """Walk both observable-entry lists in order.

        Events must align 1:1; recorded guards either match the next
        optimized guard or must be entailed by accumulated facts; an
        optimized guard with no recorded counterpart (and a non-constant
        condition) is an illegal strengthening.
        """
        facts = set()                  # (opnum, id(rec term))
        keep = []                      # keepalive for id()-keyed facts
        known_class = dict(known_class or {})   # id(term) -> (term, cls)
        rec_entries = rec_ev.entries
        opt_entries = opt_ev.entries
        oi = 0
        for r in rec_entries:
            if self.n_findings >= _MAX_FINDINGS:
                return known_class
            if r[0] == "guard":
                oi = self._walk_guard(r, opt_entries, oi, facts, keep,
                                      known_class, phase)
                continue
            oi = self._walk_event(r, opt_entries, oi, phase)
        while oi < len(opt_entries):
            o = opt_entries[oi]
            oi += 1
            if o[0] == "guard":
                if not isinstance(o[2][0], SymConst):
                    self._error(
                        "TV108",
                        "optimized stream emits %s with no recorded "
                        "counterpart" % ir.OP_NAMES[o[1]], phase)
            else:
                self._error(
                    "TV101",
                    "optimized stream emits extra %s event" % o[0], phase)
        return known_class

    def _walk_event(self, r, opt_entries, oi, phase):
        while oi < len(opt_entries):
            o = opt_entries[oi]
            if o[0] != "guard":
                break
            if isinstance(o[2][0], SymConst):
                oi += 1     # a guard our domain folded away: harmless
                continue
            self._error(
                "TV108",
                "optimized stream emits %s with no recorded counterpart"
                % ir.OP_NAMES[o[1]], phase)
            oi += 1
        if oi >= len(opt_entries):
            self._error(
                "TV101",
                "recorded %s event missing from optimized stream" % r[0],
                phase)
            return oi
        o = opt_entries[oi]
        if o[0] != r[0]:
            self._error(
                "TV101",
                "event order mismatch: recorded %s vs optimized %s"
                % (r[0], o[0]), phase)
            return oi + 1
        self._match_event_payload(r, o, phase)
        return oi + 1

    def _match_event_payload(self, r, o, phase):
        kind = r[0]
        uni = self.uni
        if kind == "new":
            if not uni.unify(r[1], o[1]):
                self._error(
                    "TV103",
                    "escaping allocation mismatch: %s vs %s"
                    % (render_term(r[1]), render_term(o[1])), phase)
            return
        if kind == "setfield":
            if r[2] is not o[2]:
                self._error("TV103", "store descr mismatch: %s vs %s"
                            % (r[2], o[2]), phase)
                return
            if not uni.unify(r[1], o[1]) or not uni.unify(r[3], o[3]):
                self._error(
                    "TV103",
                    "setfield %s operand mismatch: (%s, %s) vs (%s, %s)"
                    % (r[2], render_term(r[1]), render_term(r[3]),
                       render_term(o[1]), render_term(o[3])), phase)
            return
        if kind == "new_array":
            if r[2] is not o[2] or not uni.unify(r[1], o[1]):
                self._error("TV103", "new_array mismatch", phase)
            return
        if kind == "setarrayitem":
            if (r[4] is not o[4] or not uni.unify(r[1], o[1])
                    or not uni.unify(r[2], o[2])
                    or not uni.unify(r[3], o[3])):
                self._error("TV103", "setarrayitem operand mismatch",
                            phase)
            return
        if kind in ("call", "call_asm"):
            if kind == "call" and r[1] is not o[1]:
                self._error(
                    "TV103", "residual call target mismatch: %s vs %s"
                    % (r[1], o[1]), phase)
                return
            r_args, o_args = (r[2], o[2]) if kind == "call" else (r[1], o[1])
            if len(r_args) != len(o_args):
                self._error("TV103", "%s arity mismatch" % kind, phase)
                return
            for i, (x, y) in enumerate(zip(r_args, o_args)):
                if not uni.unify(x, y):
                    self._error(
                        "TV103",
                        "%s argument %d mismatch: %s vs %s"
                        % (kind, i, render_term(x), render_term(y)), phase)
                    return
            return
        if kind == "merge":
            if r[1] != o[1]:
                self._error("TV101", "merge-point greenkey mismatch",
                            phase)
                return
            if r[2] is not None and o[2] is not None:
                mark = self.uni.mark()
                if not uni.unify_frozen(r[2], o[2]):
                    self.uni.rollback(mark)
                    self._error(
                        "TV104",
                        "merge-point snapshot not equivalent", phase)
            return
        if kind == "finish":
            if len(r[1]) != len(o[1]) or not all(
                    uni.unify(x, y) for x, y in zip(r[1], o[1])):
                self._error("TV103", "finish operand mismatch", phase)
            return
        self._error("TV109", "unknown entry kind %r" % (kind,), phase)

    def _walk_guard(self, r, opt_entries, oi, facts, keep, known_class,
                    phase):
        opnum, args = r[1], r[2]
        matched = False
        if oi < len(opt_entries):
            o = opt_entries[oi]
            if o[0] == "guard" and o[1] == opnum and len(o[2]) == len(args):
                mark = self.uni.mark()
                if all(self.uni.unify(x, y) for x, y in zip(args, o[2])):
                    matched = True
                    oi += 1
                    if r[3] is not None and o[3] is not None:
                        snap_mark = self.uni.mark()
                        if not self.uni.unify_frozen(r[3], o[3]):
                            self.uni.rollback(snap_mark)
                            self._error(
                                "TV104",
                                "%s resume snapshot not equivalent (or "
                                "virtual not rematerializable)"
                                % ir.OP_NAMES[opnum], phase)
                else:
                    self.uni.rollback(mark)
        if not matched and not self._entailed(opnum, args, facts,
                                              known_class):
            self._error(
                "TV102",
                "recorded %s on %s dropped without entailment"
                % (ir.OP_NAMES[opnum], render_term(args[0])), phase)
        # The guard holds downstream either way; accumulate its facts.
        value = args[0]
        if opnum in _FACT_GUARDS:
            facts.add((opnum, id(value)))
            keep.append(value)
        elif opnum == ir.GUARD_CLASS and len(args) > 1 \
                and isinstance(args[1], SymConst):
            known_class[id(value)] = (value, args[1].value)
        return oi

    def _entailed(self, opnum, args, facts, known_class):
        value = args[0]
        if (opnum, id(value)) in facts:
            return True
        if opnum == ir.GUARD_TRUE:
            return isinstance(value, SymConst) and bool(value.value)
        if opnum == ir.GUARD_FALSE:
            return isinstance(value, SymConst) and not value.value
        if opnum == ir.GUARD_VALUE:
            expected = args[1] if len(args) > 1 else None
            return (isinstance(value, SymConst)
                    and isinstance(expected, SymConst)
                    and self.uni.unify(value, expected))
        if opnum == ir.GUARD_CLASS:
            cls = args[1].value if len(args) > 1 \
                and isinstance(args[1], SymConst) else None
            if isinstance(value, SymObj):
                return value.cls is cls
            if isinstance(value, SymConst):
                return value.value.__class__ is cls
            fact = known_class.get(id(value))
            return fact is not None and fact[1] is cls
        if opnum == ir.GUARD_NONNULL:
            if isinstance(value, SymObj):
                return True     # a fresh allocation is never null
            return isinstance(value, SymConst) and value.value is not None
        if opnum == ir.GUARD_ISNULL:
            return isinstance(value, SymConst) and value.value is None
        if opnum == ir.GUARD_NO_OVERFLOW:
            # The checked op folded to a constant: no overflow possible.
            return isinstance(value, SymConst)
        return False

    # -- jump comparison -------------------------------------------------

    def compare_jump(self, rec_terms, opt_terms, phase, code="TV105"):
        if len(rec_terms) != len(opt_terms):
            self._error(
                code,
                "jump arity mismatch: recorded %d vs optimized %d"
                % (len(rec_terms), len(opt_terms)), phase)
            return
        for i, (x, y) in enumerate(zip(rec_terms, opt_terms)):
            if not self.uni.unify(x, y):
                self._error(
                    code,
                    "jump value %d mismatch: %s vs %s"
                    % (i, render_term(x), render_term(y)), phase)
                return

    # -- loop peeling ----------------------------------------------------

    def derive_state(self, terms):
        """The validator's own virtual-state layout of a jump: a slot is
        virtual iff its recorded-side term is an unescaped allocation."""
        state = []
        for term in terms:
            if isinstance(term, SymObj) and not term.escaped:
                descrs = tuple(
                    sorted(term.fields, key=lambda d: d.offset))
                state.append(("v", term.cls, descrs))
            else:
                state.append(("p", term))
        return state

    def flatten(self, ev, terms, state, phase):
        """Expand jump terms per a virtual-state spec (forcing escapes),
        mirroring the optimizer's ``_flatten`` normal form."""
        flat = []
        for term, slot in zip(terms, state):
            if slot[0] != "v":
                flat.append(ev.force(term))
                continue
            if not (isinstance(term, SymObj) and not term.escaped):
                self._error(
                    "TV106",
                    "virtual loop slot carries non-virtual %s"
                    % render_term(term), phase)
                flat.append(ev.force(term))
                continue
            if term.cls is not slot[1] or tuple(
                    sorted(term.fields, key=lambda d: d.offset)) != slot[2]:
                self._error(
                    "TV106",
                    "virtual loop slot shape mismatch for %s"
                    % render_term(term), phase)
            for descr in slot[2]:
                field = term.fields.get(descr)
                if field is None:
                    self._error(
                        "TV106",
                        "virtual loop slot lost field %s" % (descr,),
                        phase)
                    continue
                flat.append(ev.force(ev._subst_const(field)))
        return flat


def validate_optimization(cfg, trace, recorded_ops=None, recorded_jump=None,
                          subject=None):
    """TV1: prove ``trace.ops`` equivalent to its recorded op stream."""
    report = Report(subject or "transval")
    if recorded_ops is None:
        recorded_ops = getattr(trace, "recorded_ops", None)
    if recorded_jump is None:
        recorded_jump = getattr(trace, "recorded_jump", None)
    if recorded_ops is None or recorded_jump is None:
        return report   # nothing recorded to validate against
    where = "trace #%d" % trace.trace_id
    ops = trace.ops
    tv = _OptValidator(cfg, report, where)
    if not ops or ops[-1].opnum != ir.JUMP:
        report.error("TV107", "optimized stream does not end in a jump",
                     where=where, pass_name=_PASS)
        return report
    label_index = trace.label_index
    input_seeds = {arg: tv.world.var_of(arg) for arg in trace.inputargs}
    if label_index <= 0:
        # Straight trace (bridge) or non-peeled self-loop: one pass.
        start = 1 if label_index == 0 else 0
        rec_ev = tv._run(recorded_ops, input_seeds, "recorded")
        rec_terms = tv._jump_terms(rec_ev, recorded_jump.args)
        opt_ev = tv._run(ops[start:-1], input_seeds, "optimized")
        opt_terms = tv._jump_terms(opt_ev, ops[-1].args)
        tv.compare(rec_ev, opt_ev, "(body)")
        tv.compare_jump(rec_terms, opt_terms, "(jump)")
        tv._flush_errors(rec_ev, "(body)")
        tv._flush_errors(opt_ev, "(body)")
        return report
    # Peeled loop: preamble pass, then the body re-validated with the
    # validator's own virtual-state layout seeded at the label.
    if label_index >= len(ops) - 1 \
            or ops[label_index].opnum != ir.LABEL \
            or ops[label_index - 1].opnum != ir.JUMP:
        report.error("TV107", "peeled loop wiring invalid", where=where,
                     pass_name=_PASS)
        return report
    entry_jump = ops[label_index - 1]
    label = ops[label_index]
    rec_a = tv._run(recorded_ops, input_seeds, "recorded")
    rec_jump_terms = [rec_a.resolve(a) for a in recorded_jump.args]
    state = tv.derive_state(rec_jump_terms)
    n_flat = sum(len(slot[2]) if slot[0] == "v" else 1 for slot in state)
    if n_flat != len(label.args) or len(entry_jump.args) != len(label.args):
        report.error(
            "TV106",
            "peeling layout mismatch: %d derived slots vs %d label args"
            % (n_flat, len(label.args)), where="%s (entry)" % where,
            pass_name=_PASS)
        return report
    rec_flat = tv.flatten(rec_a, rec_jump_terms, state, "(entry)")
    opt_a = tv._run(ops[:label_index - 1], input_seeds, "optimized")
    opt_entry_terms = tv._jump_terms(opt_a, entry_jump.args)
    kc = tv.compare(rec_a, opt_a, "(preamble)")
    tv.compare_jump(rec_flat, opt_entry_terms, "(entry)", code="TV106")
    tv._flush_errors(rec_a, "(preamble)")
    tv._flush_errors(opt_a, "(preamble)")
    # Pass B: replay the recorded ops with label-seeded state against
    # the peeled body.
    seeds_b = {}
    kc_b = {}
    label_vars = [tv.world.var_of(a) for a in label.args]
    li = 0
    serial = 0
    for arg, slot, term_a in zip(trace.inputargs, state, rec_jump_terms):
        if slot[0] == "v":
            serial -= 1
            obj = SymObj(slot[1], serial)
            for descr in slot[2]:
                obj.fields[descr] = label_vars[li]
                li += 1
            seeds_b[arg] = obj
        else:
            var = label_vars[li]
            li += 1
            seeds_b[arg] = var
            cls = None
            if isinstance(term_a, SymObj):
                cls = term_a.cls   # a forced virtual still knows its class
            else:
                fact = kc.get(id(term_a))
                cls = fact[1] if fact is not None else None
            if cls is not None:
                kc_b[id(var)] = (var, cls)
    rec_b = tv._run(recorded_ops, seeds_b, "recorded")
    rec_terms_b = [rec_b.resolve(a) for a in recorded_jump.args]
    rec_flat_b = tv.flatten(rec_b, rec_terms_b, state, "(back edge)")
    opt_b = tv._run(ops[label_index:-1], {}, "optimized")
    opt_back_terms = tv._jump_terms(opt_b, ops[-1].args)
    tv.compare(rec_b, opt_b, "(peeled body)", known_class=kc_b)
    tv.compare_jump(rec_flat_b, opt_back_terms, "(back edge)")
    tv._flush_errors(rec_b, "(peeled body)")
    tv._flush_errors(opt_b, "(peeled body)")
    return report


# ---------------------------------------------------------------------------
# TV2: tier-1 threaded code vs the interpreter's charge summaries.
# ---------------------------------------------------------------------------


def validate_threaded_code(vm, code, tcode, subject=None):
    """TV2: prove one ThreadedCode charges the interpreter's event
    sequence for the same quicken run analysis, by replaying both
    through the shared charge summaries (never by running them)."""
    from repro.interp.quicken import find_runs
    from repro.pylang.quicken import _HANDLERS, JUMP_OPS, op_charges
    from repro.pylang.tier1 import _site_hash

    report = Report(subject or "transval")
    name = getattr(code, "name", None) or repr(code)
    where = "tier1 %s gen=%d" % (name, tcode.generation)
    ops = code.ops
    args = code.args
    n = len(ops)
    sites = tcode.sites
    if tcode.code is not code or len(sites) != n:
        report.error(
            "TV201",
            "site table shape wrong: %d sites for %d bytecodes"
            % (len(sites), n), where=where, pass_name=_PASS)
        return report
    seed = code.pc_seed
    for pc in range(n):
        if sites[pc] != _site_hash(seed, pc):
            report.error(
                "TV201",
                "site hash at pc %d is %r, expected %r"
                % (pc, sites[pc], _site_hash(seed, pc)),
                where=where, pass_name=_PASS)
            break
    charges = op_charges(vm.ctx.llops)
    b_dispatch = vm._b_tier1_dispatch
    jump_targets = set()
    merge_targets = set()
    for pc in range(n):
        if ops[pc] in JUMP_OPS:
            target = args[pc]
            jump_targets.add(target)
            if target <= pc:
                merge_targets.add(target)
    expected = dict(find_runs(n, lambda pc: ops[pc] in charges,
                              jump_targets, merge_targets, start_pc=0))
    runs = tcode.runs
    if len(runs) != n:
        report.error("TV201", "run table length %d != %d bytecodes"
                     % (len(runs), n), where=where, pass_name=_PASS)
        return report
    for pc in range(n):
        entry = runs[pc]
        exp_end = expected.get(pc)
        loc = "%s pc %d" % (where, pc)
        if entry is None:
            if exp_end is not None:
                report.error(
                    "TV203",
                    "fusable run [%d, %d) not compiled" % (pc, exp_end),
                    where=loc, pass_name=_PASS)
            continue
        if exp_end is None:
            report.error(
                "TV203",
                "run at pc %d has no derivable fusion-safe placement"
                % pc, where=loc, pass_name=_PASS)
            continue
        if len(entry) != 5:
            report.error("TV204", "malformed run entry", where=loc,
                         pass_name=_PASS)
            continue
        items, pairs, end, last_op, n_insns = entry
        if end != exp_end:
            report.error(
                "TV203",
                "run ends at %d, fusion analysis says %d" % (end, exp_end),
                where=loc, pass_name=_PASS)
            continue
        span = range(pc, exp_end)
        exp_items = tuple(
            (sites[j], ops[j], charges[ops[j]]) for j in span)
        if items != exp_items:
            report.error(
                "TV202",
                "run charges diverge from the interpreter summaries",
                where=loc, pass_name=_PASS)
        exp_pairs = tuple((_HANDLERS[ops[j]], args[j]) for j in span)
        if pairs != exp_pairs:
            report.error(
                "TV205",
                "micro-handler pairs diverge from the handler table",
                where=loc, pass_name=_PASS)
        if last_op != ops[exp_end - 1]:
            report.error("TV204", "run last_op is %r, expected %r"
                         % (last_op, ops[exp_end - 1]), where=loc,
                         pass_name=_PASS)
        exp_insns = sum(
            2 + b_dispatch.n_insns + sum(blk.n_insns for blk in blocks)
            for _hash, _op, blocks in exp_items)
        if n_insns != exp_insns:
            report.error(
                "TV204",
                "run n_insns is %d, charge replay totals %d"
                % (n_insns, exp_insns), where=loc, pass_name=_PASS)
    _validate_tier_programs(vm, tcode, runs, b_dispatch, where, report)
    return report


def _validate_tier_programs(vm, tcode, runs, b_dispatch, where, report):
    if tcode.progs is not None:
        _validate_quickrun_programs(b_dispatch, runs, tcode.progs, where,
                                    report)


def _validate_quickrun_programs(b_dispatch, table, programs, where, report):
    """Shared TV206 check: each resident program must be the exact
    EV_QUICK_RUN twin of the run-table entry it replaces, and must
    itself decode cleanly (TV3xx)."""
    from repro.backend.eventprog import EV_QUICK_RUN
    from repro.core import tags

    if len(programs) != len(table):
        report.error("TV206", "program table length != run table length",
                     where=where, pass_name=_PASS)
        return
    for pc, entry in enumerate(table):
        prog = programs[pc]
        loc = "%s pc %d" % (where, pc)
        if entry is None:
            if prog is not None:
                report.error("TV206", "resident program with no run",
                             where=loc, pass_name=_PASS)
            continue
        if prog is None:
            report.error("TV206", "run has no resident program",
                         where=loc, pass_name=_PASS)
            continue
        expected = (EV_QUICK_RUN, tags.DISPATCH, b_dispatch,
                    entry[0], entry[4])
        if len(prog.events) != 1 or prog.events[0] != expected:
            report.error(
                "TV206",
                "resident program does not encode its quick_run call",
                where=loc, pass_name=_PASS)
            continue
        report.extend(validate_program(prog, subject=loc))


def validate_run_programs(vm, table, programs, subject=None):
    """TV2/TV3 for the interpreter's quickening layer: the per-pc event
    programs must be exact twins of the run table's quick_run calls."""
    report = Report(subject or "transval")
    where = subject or "quicken run programs"
    _validate_quickrun_programs(vm._b_dispatch, table, programs, where,
                                report)
    return report


# ---------------------------------------------------------------------------
# TV3: event programs vs the kernel-op sequence they encode.
# ---------------------------------------------------------------------------

_INT64_MAX = 2 ** 63


def _is_index(value):
    return isinstance(value, int) and not isinstance(value, bool)


def _is_pc(value):
    return (isinstance(value, int) and not isinstance(value, bool)
            and -_INT64_MAX <= value < _INT64_MAX)


def _is_descr(value):
    return isinstance(getattr(value, "n_insns", None), int)


def validate_program(prog, subject=None):
    """TV3: statically decode one EventProgram.

    Recomputes ``n_insns``/``notes``/``tags``/``n_slots``/``bc_totals``
    from the event sequence with an independent per-kind cost table,
    lowers the program to the native word ISA and decodes the words
    back through the ``cgen`` switch grammar, and range-checks every
    operand against the C struct layouts.
    """
    from repro.backend import eventprog as ep

    report = Report(subject or "transval")
    where = subject or ("program %s" % (prog.label or "?"))
    n_insns = 0
    notes = []
    tags_seen = set()
    max_slot = -1
    bc_counts = {}
    bc_lists = []
    expected = []    # primitive word-op expansion: (W_*, operands...)
    bids = {}

    def bid_of(descr):
        key = id(descr)
        got = bids.get(key)
        if got is None:
            got = (len(bids) + 1, descr)
            bids[key] = got
        return got[0]

    def bad(index, detail, code="TV301"):
        report.error(code, "event %d: %s" % (index, detail), where=where,
                     pass_name=_PASS)

    for index, event in enumerate(prog.events):
        if not isinstance(event, tuple) or not event:
            bad(index, "not a non-empty tuple")
            continue
        kind = event[0]
        if kind == ep.EV_EXEC_BLOCK:
            if len(event) != 2 or not _is_descr(event[1]):
                bad(index, "malformed exec_block")
                continue
            n_insns += event[1].n_insns
            expected.append((ep.W_EXEC_BLOCK, bid_of(event[1])))
        elif kind == ep.EV_BRANCH_BLOCK:
            if len(event) != 3 or not _is_pc(event[1]) \
                    or not _is_descr(event[2]):
                bad(index, "malformed branch_block")
                continue
            n_insns += 1 + event[2].n_insns
            expected.append((ep.W_BRANCH_BLOCK, event[1], bid_of(event[2])))
        elif kind == ep.EV_BRANCH:
            if len(event) != 3 or not _is_pc(event[1]):
                bad(index, "malformed branch")
                continue
            n_insns += 1
            expected.append((ep.W_BRANCH, event[1], 1 if event[2] else 0))
        elif kind == ep.EV_ANNOT_RUN:
            if len(event) != 3 or not _is_index(event[2]):
                bad(index, "malformed annot_run")
                continue
            if event[2] < 1:
                bad(index, "annot run length %d < 1" % event[2], "TV304")
                continue
            n_insns += event[2]
            notes.append((event[1], event[2]))
            tags_seen.add(event[1])
            expected.append((ep.W_ANNOT, event[2]))
        elif kind in (ep.EV_LOAD, ep.EV_STORE):
            if len(event) != 2 or not _is_index(event[1]):
                bad(index, "malformed load/store")
                continue
            if event[1] < 0:
                bad(index, "negative operand slot", "TV304")
                continue
            n_insns += 1
            max_slot = max(max_slot, event[1])
            word = ep.W_LOAD if kind == ep.EV_LOAD else ep.W_STORE
            expected.append((word, event[1]))
        elif kind in (ep.EV_CALL, ep.EV_RET):
            if len(event) != 2 or not _is_pc(event[1]):
                bad(index, "malformed call/ret")
                continue
            n_insns += 1
            word = ep.W_CALL if kind == ep.EV_CALL else ep.W_RET
            expected.append((word, event[1]))
        elif kind == ep.EV_DISPATCH:
            if len(event) != 5 or not _is_descr(event[2]) \
                    or not _is_pc(event[3]) or not _is_pc(event[4]):
                bad(index, "malformed dispatch_event")
                continue
            n_insns += 2 + event[2].n_insns
            notes.append((event[1], 1))
            tags_seen.add(event[1])
            expected.append((ep.W_DISPATCH, bid_of(event[2]), event[3],
                             event[4]))
        elif kind == ep.EV_DISPATCH2:
            if len(event) != 6 or not _is_descr(event[2]) \
                    or not _is_pc(event[3]) or not _is_pc(event[4]) \
                    or not _is_descr(event[5]):
                bad(index, "malformed dispatch_event2")
                continue
            n_insns += 2 + event[2].n_insns + event[5].n_insns
            notes.append((event[1], 1))
            tags_seen.add(event[1])
            expected.append((ep.W_DISPATCH2, bid_of(event[2]),
                             bid_of(event[5]), event[3], event[4]))
        elif kind == ep.EV_BULK:
            if len(event) != 3 or not _is_index(event[1]) \
                    or not isinstance(event[2], (int, float)):
                bad(index, "malformed bulk branches")
                continue
            if event[1] < 1:
                bad(index, "bulk count %d < 1" % event[1], "TV304")
                continue
            if not (0.0 <= event[2] <= 1.0):
                bad(index, "bulk miss rate %r out of [0, 1]" % (event[2],),
                    "TV304")
                continue
            n_insns += event[1]
            expected.append((ep.W_BULK, event[1],
                             ep._rate_bits(event[2])))
        elif kind == ep.EV_BRBA:
            if len(event) != 5 or not _is_pc(event[1]) \
                    or not _is_descr(event[2]) or not _is_index(event[4]):
                bad(index, "malformed branch_block_annot_run")
                continue
            n_insns += 1 + event[2].n_insns + event[4]
            notes.append((event[3], event[4]))
            tags_seen.add(event[3])
            expected.append((ep.W_BRANCH_BLOCK, event[1], bid_of(event[2])))
            expected.append((ep.W_ANNOT, event[4]))
        elif kind in (ep.EV_LOAD_ANNOT, ep.EV_STORE_ANNOT):
            if len(event) != 4 or not _is_index(event[1]) \
                    or not _is_index(event[3]):
                bad(index, "malformed load/store_annot_run")
                continue
            if event[1] < 0:
                bad(index, "negative operand slot", "TV304")
                continue
            n_insns += 1 + event[3]
            notes.append((event[2], event[3]))
            tags_seen.add(event[2])
            max_slot = max(max_slot, event[1])
            word = ep.W_LOAD if kind == ep.EV_LOAD_ANNOT else ep.W_STORE
            expected.append((word, event[1]))
            expected.append((ep.W_ANNOT, event[3]))
        elif kind == ep.EV_QUICK_RUN:
            total = _check_quick_run(event, index, bad, bid_of, expected)
            if total is None:
                continue
            if event[4] != total:
                bad(index,
                    "quick_run declares %d insns, items replay to %d"
                    % (event[4], total), "TV302")
            n_insns += event[4]
            notes.append((event[1], len(event[3])))
            tags_seen.add(event[1])
        elif kind == ep.EV_DISPATCH_RUN:
            total = _check_dispatch_run(event, index, bad, bid_of, expected)
            if total is None:
                continue
            if event[4] != total:
                bad(index,
                    "dispatch_run declares %d insns, items replay to %d"
                    % (event[4], total), "TV302")
            n_insns += event[4]
            notes.append((event[1], len(event[3])))
            tags_seen.add(event[1])
        elif kind == ep.EV_BC:
            if len(event) != 3 or not _is_index(event[2]) or event[2] < 0:
                bad(index, "malformed bc counter bump")
                continue
            bc_counts[event[2]] = bc_counts.get(event[2], 0) + 1
            bc_lists.append(event[1])
        else:
            bad(index, "unknown event kind %r" % (kind,))
    if prog.n_insns != n_insns:
        report.error(
            "TV302",
            "program declares %d insns, events recompute to %d"
            % (prog.n_insns, n_insns), where=where, pass_name=_PASS)
    if tuple(prog.notes) != tuple(notes):
        report.error("TV302", "program notes diverge from its events",
                     where=where, pass_name=_PASS)
    if frozenset(prog.tags) != frozenset(tags_seen):
        report.error("TV302", "program tag set diverges from its events",
                     where=where, pass_name=_PASS)
    n_slots = max_slot + 1
    if prog.n_slots != n_slots:
        report.error(
            "TV305",
            "program declares %d operand slots, events use %d"
            % (prog.n_slots, n_slots), where=where, pass_name=_PASS)
    elif max_slot >= prog.n_slots:
        report.error(
            "TV304",
            "operand slot %d out of range for %d slots"
            % (max_slot, prog.n_slots), where=where, pass_name=_PASS)
    if tuple(sorted(bc_counts.items())) != tuple(prog.bc_totals):
        report.error(
            "TV306", "bc totals diverge from the program's EV_BC events",
            where=where, pass_name=_PASS)
    if any(lst is not prog.bc_list for lst in bc_lists):
        report.error(
            "TV306", "EV_BC events bump a list that is not prog.bc_list",
            where=where, pass_name=_PASS)
    _check_lowering(prog, expected, bid_of, report, where)
    return report


def _check_quick_run(event, index, bad, bid_of, expected):
    if len(event) != 5 or not _is_descr(event[2]) \
            or not isinstance(event[3], tuple) or not _is_index(event[4]):
        bad(index, "malformed quick_run")
        return None
    base = event[2].n_insns
    bid = bid_of(event[2])
    total = 0
    for item in event[3]:
        if len(item) != 3 or not _is_pc(item[0]) or not _is_pc(item[1]) \
                or not isinstance(item[2], tuple) \
                or not all(_is_descr(blk) for blk in item[2]):
            bad(index, "malformed quick_run item %r" % (item,))
            return None
        total += 2 + base + sum(blk.n_insns for blk in item[2])
        expected.append((9, bid, item[0], item[1]))     # W_DISPATCH
        for blk in item[2]:
            expected.append((1, bid_of(blk)))            # W_EXEC_BLOCK
    return total


def _check_dispatch_run(event, index, bad, bid_of, expected):
    if len(event) != 5 or not _is_descr(event[2]) \
            or not isinstance(event[3], tuple) or not _is_index(event[4]):
        bad(index, "malformed dispatch_run")
        return None
    base = event[2].n_insns
    bid = bid_of(event[2])
    total = 0
    for item in event[3]:
        if len(item) != 3 or not _is_pc(item[0]) or not _is_pc(item[1]) \
                or not _is_descr(item[2]):
            bad(index, "malformed dispatch_run item %r" % (item,))
            return None
        total += 2 + base + item[2].n_insns
        expected.append((10, bid, bid_of(item[2]), item[0], item[1]))
    return total


# Word widths of the rt_exec_program switch (cgen.py): opcode + operands.
_WORD_WIDTH = {1: 2, 2: 3, 3: 3, 4: 2, 5: 2, 6: 2, 7: 2, 8: 2,
               9: 4, 10: 5, 11: 3}


def _check_lowering(prog, expected, bid_of, report, where):
    from repro.backend.eventprog import lower_words

    try:
        words = lower_words(prog, bid_of)
    except Exception as exc:
        report.error("TV303", "native lowering failed: %s" % (exc,),
                     where=where, pass_name=_PASS)
        return
    decoded = []
    i = 0
    n = len(words)
    while i < n:
        opcode = words[i]
        width = _WORD_WIDTH.get(opcode)
        if width is None or i + width > n:
            report.error(
                "TV303",
                "word stream desynchronizes at %d (opcode %r)"
                % (i, opcode), where=where, pass_name=_PASS)
            return
        decoded.append(tuple(words[i:i + width]))
        i += width
    if decoded != expected:
        report.error(
            "TV303",
            "lowered words decode to %d ops, events expand to %d "
            "(first divergence at %d)"
            % (len(decoded), len(expected),
               _first_divergence(decoded, expected)),
            where=where, pass_name=_PASS)
        return
    for word_op in decoded:
        for operand in word_op:
            if not _is_pc(operand):
                report.error(
                    "TV304",
                    "word operand %r does not fit the C int64 layout"
                    % (operand,), where=where, pass_name=_PASS)
                return
        opcode = word_op[0]
        if opcode in (5, 6) and not (0 <= word_op[1] < max(prog.n_slots, 1)):
            report.error(
                "TV304",
                "operand slot %d out of range for %d slots"
                % (word_op[1], prog.n_slots), where=where, pass_name=_PASS)
            return


def _first_divergence(decoded, expected):
    for i, (a, b) in enumerate(zip(decoded, expected)):
        if a != b:
            return i
    return min(len(decoded), len(expected))
