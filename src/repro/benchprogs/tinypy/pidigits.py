# pidigits (CLBG): unbounded spigot for digits of pi. Entirely bignum
# arithmetic — the paper's flagship JIT-call-dominated benchmark
# (Table III: rbigint.add/divmod/lshift/mul).
N = 120


def run_pidigits(ndigits):
    digits = []
    k = 1
    n1 = 4
    n2 = 3
    d = 1
    produced = 0
    while produced < ndigits:
        u = n1 // d
        v = n2 // d
        if u == v:
            digits.append(str(u))
            produced += 1
            to_minus = u * 10 * d
            n1 = n1 * 10 - to_minus
            n2 = n2 * 10 - to_minus
        else:
            k2 = k * 2
            u2 = n1 * (k2 - 1)
            v2 = n2 * 2
            w = n1 * (k - 1)
            y = n2 * (k + 2)
            n1 = u2 + v2
            n2 = w + y
            d = d * (k2 + 1)
            k += 1
    out = "".join(digits)
    i = 0
    while i < len(out):
        chunk = out[i:i + 10]
        print("%s :%d" % (chunk, i + len(chunk)))
        i += 10


run_pidigits(N)
