"""Guest-bytecode abstract interpretation (TinyPy / TinyRkt / MiniLang).

Verifies compiled guest code objects before execution:

* structural checks — jump targets in range, operand indices valid,
  every path ends in a terminator (``BC1xx``),
* operand-stack simulation over the CFG — a worklist abstract
  interpretation tracking stack depth and a tiny type lattice
  (``funcspec``/``classspec`` constants must only flow into
  ``MAKE_FUNCTION``), so underflow and merge-depth disagreements are
  static errors (``BC2xx``),
* dead-code detection — pcs no path reaches (``BC301``, warning),
* quickening run-table invariants — fused superinstruction runs must
  never cross a jump target, never start at a JitDriver merge point,
  and must replay exactly the bytecodes they cover (``BC4xx``).

TinyRkt compiles to TinyPy :class:`PyCode`, so :func:`verify_pycode`
covers both front ends.
"""

from repro.analysis.diagnostics import Report
from repro.pylang import bytecode as bc
from repro.pylang import quicken as pyquicken

_PASS = "bcverify"

#: Abstract value tags.  ``funcspec`` marks a FunctionSpec/ClassSpec
#: constant, which the interpreter leaves unwrapped on the stack; any
#: consumer other than MAKE_FUNCTION would crash on it at runtime.
_T_ANY = "any"
_T_VALUE = "value"
_T_SPEC = "funcspec"

# opcode -> (pops, pushes) for straight-line ops; variadic and control
# ops are handled explicitly in _abstract_step.
_SIMPLE_EFFECTS = {
    bc.LOAD_CONST: (0, 1),
    bc.LOAD_FAST: (0, 1),
    bc.LOAD_GLOBAL: (0, 1),
    bc.STORE_FAST: (1, 0),
    bc.STORE_GLOBAL: (1, 0),
    bc.POP_TOP: (1, 0),
    bc.LOAD_ATTR: (1, 1),
    bc.STORE_ATTR: (2, 0),
    bc.BINARY_SUBSCR: (2, 1),
    bc.STORE_SUBSCR: (3, 0),
    bc.DELETE_SUBSCR: (2, 0),
    bc.UNARY_NEG: (1, 1),
    bc.UNARY_NOT: (1, 1),
    bc.UNARY_INVERT: (1, 1),
    bc.GET_ITER: (1, 1),
    bc.DUP_TOP: (1, 2),
    bc.DUP_TOP_TWO: (2, 4),
    bc.ROT_TWO: (2, 2),
    bc.ROT_THREE: (3, 3),
    bc.BUILD_SLICE: (2, 1),
    bc.LIST_APPEND: (2, 0),
    bc.MAKE_CLASS: (0, 1),
    bc.RETURN_VALUE: (1, 0),
}
for _opnum in range(bc.BINARY_ADD, bc.BINARY_RSHIFT + 1):
    _SIMPLE_EFFECTS[_opnum] = (2, 1)
for _opnum in range(bc.COMPARE_LT, bc.COMPARE_NOT_IN + 1):
    _SIMPLE_EFFECTS[_opnum] = (2, 1)
del _opnum

_TERMINATORS = frozenset((bc.JUMP, bc.RETURN_VALUE))


def _merge(old, new):
    """Element-wise tag join; returns (merged, changed) or None on
    depth mismatch."""
    if len(old) != len(new):
        return None
    changed = False
    merged = list(old)
    for i, (a, b) in enumerate(zip(old, new)):
        if a != b and a != _T_ANY:
            merged[i] = _T_ANY
            changed = True
    return tuple(merged), changed


class _PyAbstract(object):
    """Worklist abstract interpreter for one TinyPy code object."""

    def __init__(self, code, report, subject):
        self.code = code
        self.report = report
        self.subject = subject
        self.states = {}       # pc -> abstract stack (tuple of tags)
        self.poisoned = set()  # pcs with a reported merge conflict

    def where(self, pc):
        op = self.code.ops[pc] if 0 <= pc < len(self.code.ops) else -1
        name = bc.OP_NAMES[op] if 0 <= op < bc.N_OPS else "op?%s" % op
        return "%s pc %d (%s)" % (self.subject, pc, name)

    def run(self):
        code = self.code
        n = len(code.ops)
        if len(code.args) != n:
            self.report.error(
                "BC102", "ops/args lists disagree (%d vs %d entries)"
                % (n, len(code.args)), where=self.subject,
                pass_name=_PASS)
            return
        if n == 0:
            self.report.error("BC102", "empty code object",
                              where=self.subject, pass_name=_PASS)
            return
        worklist = [0]
        self.states[0] = ()
        while worklist:
            pc = worklist.pop()
            if pc in self.poisoned:
                continue
            for succ, stack in self._abstract_step(pc):
                self._flow_to(pc, succ, stack, worklist)
        # The compiler unconditionally appends a default-return epilogue
        # (LOAD_CONST None; RETURN_VALUE); when every path already
        # returns it is dead by construction, like CPython's, so it is
        # not worth a diagnostic.
        epilogue = set()
        if (n >= 2 and code.ops[n - 2] == bc.LOAD_CONST
                and code.ops[n - 1] == bc.RETURN_VALUE):
            epilogue = {n - 2, n - 1}
        for pc in range(n):
            if pc in self.states or pc in epilogue:
                continue
            # A dead branch-join JUMP directly after a terminator is the
            # other codegen artifact (both arms of a conditional end in
            # jumps, leaving the join-skipping jump unreachable).
            if (code.ops[pc] == bc.JUMP and pc > 0
                    and code.ops[pc - 1] in _TERMINATORS):
                continue
            self.report.warning(
                "BC301", "unreachable bytecode", where=self.where(pc),
                pass_name=_PASS)

    def _flow_to(self, pc, succ, stack, worklist):
        n = len(self.code.ops)
        if succ >= n or succ < 0:
            self.report.error(
                "BC102", "control flows to pc %d (past the last "
                "bytecode — no terminator on this path)" % succ,
                where=self.where(pc), pass_name=_PASS)
            return
        old = self.states.get(succ)
        if old is None:
            self.states[succ] = stack
            worklist.append(succ)
            return
        merged = _merge(old, stack)
        if merged is None:
            if succ not in self.poisoned:
                self.poisoned.add(succ)
                self.report.error(
                    "BC201", "operand stack depth disagrees across "
                    "paths into pc %d (%d vs %d)"
                    % (succ, len(old), len(stack)),
                    where=self.where(succ), pass_name=_PASS)
            return
        merged_stack, changed = merged
        if changed:
            self.states[succ] = merged_stack
            worklist.append(succ)

    def _pop(self, pc, op, stack, pops):
        """Pop ``pops`` tags, reporting underflow and stray specs."""
        if len(stack) < pops:
            self.report.error(
                "BC202", "operand stack underflow (%s needs %d, depth "
                "is %d)" % (bc.OP_NAMES[op], pops, len(stack)),
                where=self.where(pc), pass_name=_PASS)
            return None
        popped = stack[len(stack) - pops:]
        if op != bc.MAKE_FUNCTION and _T_SPEC in popped:
            self.report.error(
                "BC203", "%s consumes a FunctionSpec/ClassSpec constant "
                "(only make_function may)" % bc.OP_NAMES[op],
                where=self.where(pc), pass_name=_PASS)
        return stack[:len(stack) - pops]

    def _check_indices(self, pc, op, arg):
        code = self.code
        report = self.report
        where = self.where(pc)
        if op == bc.LOAD_CONST:
            if not 0 <= arg < len(code.consts):
                report.error("BC103", "const index %d out of range (%d "
                             "consts)" % (arg, len(code.consts)),
                             where=where, pass_name=_PASS)
                return _T_ANY
            const = code.consts[arg]
            if isinstance(const, (bc.FunctionSpec, bc.ClassSpec)):
                return _T_SPEC
            return _T_VALUE
        if op == bc.MAKE_CLASS:
            if not 0 <= arg < len(code.consts):
                report.error("BC103", "class-spec const index %d out of "
                             "range" % arg, where=where, pass_name=_PASS)
            elif not isinstance(code.consts[arg], bc.ClassSpec):
                report.error("BC103", "make_class const %d is %r, not a "
                             "ClassSpec" % (arg, code.consts[arg]),
                             where=where, pass_name=_PASS)
        elif op in (bc.LOAD_FAST, bc.STORE_FAST):
            if not 0 <= arg < code.n_locals:
                report.error("BC104", "local index %d out of range (%d "
                             "locals)" % (arg, code.n_locals),
                             where=where, pass_name=_PASS)
        elif op in (bc.LOAD_GLOBAL, bc.STORE_GLOBAL, bc.LOAD_ATTR,
                    bc.STORE_ATTR):
            if not 0 <= arg < len(code.names):
                report.error("BC104", "name index %d out of range (%d "
                             "names)" % (arg, len(code.names)),
                             where=where, pass_name=_PASS)
        return _T_ANY

    def _jump_target_ok(self, pc, arg):
        if not 0 <= arg < len(self.code.ops):
            self.report.error(
                "BC101", "jump target %d out of range (%d bytecodes)"
                % (arg, len(self.code.ops)),
                where=self.where(pc), pass_name=_PASS)
            return False
        return True

    def _abstract_step(self, pc):
        """Execute pc abstractly; yields (successor_pc, stack_after)."""
        code = self.code
        op = code.ops[pc]
        arg = code.args[pc]
        stack = self.states[pc]
        if not isinstance(op, int) or not 0 <= op < bc.N_OPS:
            self.report.error("BC105", "unknown opcode %r" % (op,),
                              where=self.where(pc), pass_name=_PASS)
            return
        pushed_tag = self._check_indices(pc, op, arg)
        # Control flow first: asymmetric stack effects per edge.
        if op == bc.JUMP:
            if self._jump_target_ok(pc, arg):
                yield arg, stack
            return
        if op in (bc.POP_JUMP_IF_FALSE, bc.POP_JUMP_IF_TRUE):
            after = self._pop(pc, op, stack, 1)
            if after is None:
                return
            yield pc + 1, after
            if self._jump_target_ok(pc, arg):
                yield arg, after
            return
        if op in (bc.JUMP_IF_FALSE_OR_POP, bc.JUMP_IF_TRUE_OR_POP):
            after = self._pop(pc, op, stack, 1)
            if after is None:
                return
            yield pc + 1, after                   # condition popped
            if self._jump_target_ok(pc, arg):
                yield arg, stack                  # condition kept
            return
        if op == bc.FOR_ITER:
            if not stack:
                self._pop(pc, op, stack, 1)
                return
            yield pc + 1, stack + (_T_ANY,)       # next item pushed
            if self._jump_target_ok(pc, arg):
                yield arg, stack[:-1]             # iterator popped
            return
        # Variadic stack effects.
        if op == bc.CALL_FUNCTION:
            pops, pushes = arg + 1, 1
        elif op == bc.MAKE_FUNCTION:
            pops, pushes = arg + 1, 1
        elif op in (bc.BUILD_LIST, bc.BUILD_TUPLE, bc.BUILD_SET):
            pops, pushes = arg, 1
        elif op == bc.BUILD_MAP:
            pops, pushes = 2 * arg, 1
        elif op == bc.UNPACK_SEQUENCE:
            pops, pushes = 1, arg
        else:
            pops, pushes = _SIMPLE_EFFECTS[op]
        if op == bc.MAKE_FUNCTION and stack:
            if stack[-1] == _T_VALUE:
                self.report.error(
                    "BC203", "make_function on a plain constant (top "
                    "of stack is not a FunctionSpec)",
                    where=self.where(pc), pass_name=_PASS)
        after = self._pop(pc, op, stack, pops)
        if after is None:
            return
        after = after + (pushed_tag,) * pushes
        if op == bc.RETURN_VALUE:
            return
        yield pc + 1, after


def _nested_codes(code):
    """(label, PyCode) pairs for every code object reachable from the
    constants of ``code`` (function defs and class methods)."""
    out = []
    for const in code.consts:
        if isinstance(const, bc.FunctionSpec):
            out.append((const.code.name, const.code))
        elif isinstance(const, bc.ClassSpec):
            for name, method_code, _defaults in const.methods:
                out.append(("%s.%s" % (const.name, name), method_code))
    return out


def verify_pycode(code, subject=None, recurse=True):
    """Verify a TinyPy/TinyRkt code object (and, by default, every
    function/method code object reachable from its constants)."""
    subject = subject or code.name
    report = Report(subject)
    seen = set()
    pending = [(subject, code)]
    while pending:
        label, current = pending.pop(0)
        if id(current) in seen:
            continue
        seen.add(id(current))
        _PyAbstract(current, report, label).run()
        if recurse:
            pending.extend(_nested_codes(current))
    return report


# -- MiniLang -----------------------------------------------------------------

_MINI_EFFECTS = {
    "load_const": (0, 1),
    "load_local": (0, 1),
    "store_local": (1, 0),
    "pop": (1, 0),
    "add": (2, 1),
    "sub": (2, 1),
    "mul": (2, 1),
    "lt": (2, 1),
    "eq": (2, 1),
    "call": (1, 1),     # pops the argument; the callee's return pushes
    "return": (1, 0),
}
_MINI_JUMPS = ("jump", "jump_if_false")


def verify_minicode(code, subject=None):
    """Verify a MiniLang code object and every callee in ``code.codes``."""
    subject = subject or code.name
    report = Report(subject)
    seen = set()
    pending = [(subject, code)]
    while pending:
        label, current = pending.pop(0)
        if id(current) in seen:
            continue
        seen.add(id(current))
        _verify_one_minicode(current, report, label)
        pending.extend(("%s>%s" % (label, name), callee)
                       for name, callee in sorted(current.codes.items()))
    return report


def _verify_one_minicode(code, report, subject):
    ops = code.ops
    n = len(ops)

    def where(pc):
        name = ops[pc][0] if 0 <= pc < n else "?"
        return "%s pc %d (%s)" % (subject, pc, name)

    if n == 0:
        report.error("BC102", "empty code object", where=subject,
                     pass_name=_PASS)
        return
    states = {0: 0}
    poisoned = set()
    worklist = [0]

    def flow(pc, succ, depth):
        if not 0 <= succ < n:
            report.error(
                "BC102", "control flows to pc %d (past the last op)"
                % succ, where=where(pc), pass_name=_PASS)
            return
        old = states.get(succ)
        if old is None:
            states[succ] = depth
            worklist.append(succ)
        elif old != depth and succ not in poisoned:
            poisoned.add(succ)
            report.error(
                "BC201", "operand stack depth disagrees across paths "
                "into pc %d (%d vs %d)" % (succ, old, depth),
                where=where(succ), pass_name=_PASS)

    while worklist:
        pc = worklist.pop()
        if pc in poisoned:
            continue
        opname, arg = ops[pc]
        depth = states[pc]
        if opname in _MINI_JUMPS:
            if not 0 <= arg < n:
                report.error("BC101", "jump target %d out of range"
                             % arg, where=where(pc), pass_name=_PASS)
                continue
            if opname == "jump":
                flow(pc, arg, depth)
                continue
            if depth < 1:
                report.error("BC202", "operand stack underflow",
                             where=where(pc), pass_name=_PASS)
                continue
            flow(pc, pc + 1, depth - 1)
            flow(pc, arg, depth - 1)
            continue
        effect = _MINI_EFFECTS.get(opname)
        if effect is None:
            report.error("BC105", "unknown minilang op %r" % (opname,),
                         where=where(pc), pass_name=_PASS)
            continue
        pops, pushes = effect
        if opname in ("load_local", "store_local") and \
                not 0 <= arg < code.n_locals:
            report.error("BC104", "local index %d out of range (%d "
                         "locals)" % (arg, code.n_locals),
                         where=where(pc), pass_name=_PASS)
        if opname == "call" and arg not in code.codes:
            report.error("BC105", "call target %r not in code.codes"
                         % (arg,), where=where(pc), pass_name=_PASS)
        if depth < pops:
            report.error("BC202", "operand stack underflow (%s needs "
                         "%d, depth is %d)" % (opname, pops, depth),
                         where=where(pc), pass_name=_PASS)
            continue
        if opname == "return":
            continue
        flow(pc, pc + 1, depth - pops + pushes)
    for pc in range(n):
        if pc not in states:
            report.warning("BC301", "unreachable op", where=where(pc),
                           pass_name=_PASS)


# -- quickening run tables ----------------------------------------------------

def _jump_sets_py(code):
    jump_targets = set()
    merge_targets = set()
    for pc, op in enumerate(code.ops):
        if op in pyquicken.JUMP_OPS:
            target = code.args[pc]
            jump_targets.add(target)
            if target <= pc:
                merge_targets.add(target)
    return jump_targets, merge_targets


def verify_run_table(code, table, subject=None):
    """Verify a TinyPy quickening run table against its code object.

    Statically re-derives the fusion safety conditions (see
    :mod:`repro.interp.quicken`) and checks every entry against them:
    fused runs must start after pc 0 with the recorded static
    predecessor, must not start on a JitDriver merge point, must not
    cross a jump target, and must cover only fusable opcodes.
    """
    subject = subject or ("%s run table" % code.name)
    report = Report(subject)
    ops = code.ops
    n = len(ops)
    if len(table) != n:
        report.error("BC401", "run table has %d entries for %d "
                     "bytecodes" % (len(table), n), where=subject,
                     pass_name=_PASS)
        return report
    jump_targets, merge_targets = _jump_sets_py(code)
    fusable = frozenset(pyquicken._HANDLERS)

    def where(pc):
        return "%s pc %d (%s)" % (subject, pc, bc.OP_NAMES[ops[pc]])

    for pc, entry in enumerate(table):
        if entry is None:
            continue
        items, pairs, next_pc, last_op, n_insns, expected_prev = entry
        end = next_pc
        if pc < 1:
            report.error(
                "BC402", "run starts at pc 0 (no static predecessor "
                "for the dispatch hash)", where=where(pc),
                pass_name=_PASS)
            continue
        if not pc < end <= n:
            report.error("BC402", "run span [%d, %d) out of range"
                         % (pc, end), where=where(pc), pass_name=_PASS)
            continue
        if pc in merge_targets:
            report.error(
                "BC403", "run starts at a JitDriver merge point "
                "(hot-loop counting would be skipped)", where=where(pc),
                pass_name=_PASS)
        for interior in range(pc + 1, end):
            if interior in jump_targets:
                report.error(
                    "BC404", "run crosses the jump target at pc %d (a "
                    "branch would land mid-superinstruction)" % interior,
                    where=where(pc), pass_name=_PASS)
            if table[interior] is not None:
                report.error(
                    "BC404", "interior pc %d of the run has its own "
                    "table entry" % interior, where=where(pc),
                    pass_name=_PASS)
        if len(items) != end - pc or len(pairs) != end - pc:
            report.error(
                "BC405", "entry covers %d bytecodes but carries "
                "%d items / %d pairs" % (end - pc, len(items),
                                         len(pairs)),
                where=where(pc), pass_name=_PASS)
            continue
        for j in range(pc, end):
            if ops[j] not in fusable:
                report.error(
                    "BC405", "non-fusable opcode %s inside the run"
                    % bc.OP_NAMES[ops[j]], where=where(j),
                    pass_name=_PASS)
        if expected_prev != ops[pc - 1]:
            report.error(
                "BC405", "recorded static predecessor %r is not the "
                "opcode at pc %d" % (expected_prev, pc - 1),
                where=where(pc), pass_name=_PASS)
        if last_op != ops[end - 1]:
            report.error(
                "BC405", "recorded last opcode %r is not the opcode "
                "at pc %d" % (last_op, end - 1), where=where(pc),
                pass_name=_PASS)
        if not (isinstance(n_insns, int) and n_insns > 0):
            report.error("BC405", "non-positive simulated instruction "
                         "count %r" % (n_insns,), where=where(pc),
                         pass_name=_PASS)
    return report


def verify_mini_run_table(code, table, subject=None):
    """Verify a MiniLang quickening run table (4-tuple entries)."""
    subject = subject or ("%s run table" % code.name)
    report = Report(subject)
    ops = code.ops
    n = len(ops)
    if len(table) != n:
        report.error("BC401", "run table has %d entries for %d ops"
                     % (len(table), n), where=subject, pass_name=_PASS)
        return report
    jump_targets = set()
    merge_targets = set()
    for pc, (opname, arg) in enumerate(ops):
        if opname in _MINI_JUMPS:
            jump_targets.add(arg)
            if arg <= pc:
                merge_targets.add(arg)
    fusable = frozenset(("load_local", "store_local", "pop"))

    def where(pc):
        return "%s pc %d (%s)" % (subject, pc, ops[pc][0])

    for pc, entry in enumerate(table):
        if entry is None:
            continue
        items, run_ops, next_pc, n_insns = entry
        end = next_pc
        if not pc < end <= n:
            report.error("BC402", "run span [%d, %d) out of range"
                         % (pc, end), where=where(pc), pass_name=_PASS)
            continue
        if pc in merge_targets:
            report.error("BC403", "run starts at a JitDriver merge "
                         "point", where=where(pc), pass_name=_PASS)
        for interior in range(pc + 1, end):
            if interior in jump_targets:
                report.error(
                    "BC404", "run crosses the jump target at pc %d"
                    % interior, where=where(pc), pass_name=_PASS)
            if table[interior] is not None:
                report.error(
                    "BC404", "interior pc %d of the run has its own "
                    "table entry" % interior, where=where(pc),
                    pass_name=_PASS)
        if tuple(run_ops) != tuple(ops[pc:end]):
            report.error("BC405", "replayed ops do not match the "
                         "bytecode span", where=where(pc),
                         pass_name=_PASS)
        for j in range(pc, end):
            if ops[j][0] not in fusable:
                report.error("BC405", "non-fusable op %r inside the "
                             "run" % (ops[j][0],), where=where(j),
                             pass_name=_PASS)
        if len(items) != end - pc:
            report.error("BC405", "entry covers %d ops but carries %d "
                         "items" % (end - pc, len(items)),
                         where=where(pc), pass_name=_PASS)
        if not (isinstance(n_insns, int) and n_insns > 0):
            report.error("BC405", "non-positive simulated instruction "
                         "count %r" % (n_insns,), where=where(pc),
                         pass_name=_PASS)
    return report
