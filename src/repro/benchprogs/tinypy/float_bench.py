# float: the PyPy-suite "float" benchmark — allocates Point objects and
# does trig-flavoured float arithmetic over them. Stresses allocation
# removal (escape analysis) and float ops.
N = 30


def my_sin(x):
    # 7-term Taylor series (keeps everything in guest float ops).
    x2 = x * x
    return x * (1.0 - x2 / 6.0 * (1.0 - x2 / 20.0 * (1.0 - x2 / 42.0)))


def my_cos(x):
    x2 = x * x
    return 1.0 - x2 / 2.0 * (1.0 - x2 / 12.0 * (1.0 - x2 / 30.0))


class Point:
    def __init__(self, i):
        self.x = my_sin(i * 0.1)
        self.y = my_cos(i * 0.1) * 3.0
        self.z = (self.x * self.x) / 2.0

    def normalize(self):
        x = self.x
        y = self.y
        z = self.z
        norm = (x * x + y * y + z * z) ** 0.5
        self.x = x / norm
        self.y = y / norm
        self.z = z / norm

    def maximize(self, other):
        if other.x > self.x:
            self.x = other.x
        if other.y > self.y:
            self.y = other.y
        if other.z > self.z:
            self.z = other.z
        return self


def maximize(points):
    next_point = points[0]
    for i in range(1, len(points)):
        next_point = next_point.maximize(points[i])
    return next_point


def benchmark(n):
    points = []
    for i in range(n):
        points.append(Point(i))
    for p in points:
        p.normalize()
    return maximize(points)


def run_float(iterations):
    result = None
    for i in range(iterations):
        result = benchmark(500)
    print("float %.9f %.9f %.9f" % (result.x, result.y, result.z))


run_float(N)
