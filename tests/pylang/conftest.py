import pytest

from repro.core.config import SystemConfig
from repro.interp.context import VMContext
from repro.pylang.cpref import CpRef
from repro.pylang.interp import PyVM


def run_pyvm(source, jit=True, threshold=10, **cfg_kwargs):
    cfg = SystemConfig(**cfg_kwargs)
    cfg.jit.enabled = jit
    cfg.jit.hot_loop_threshold = threshold
    ctx = VMContext(cfg)
    vm = PyVM(ctx)
    vm.run_source(source)
    return vm, ctx


def run_cpref(source):
    vm = CpRef(SystemConfig())
    vm.run_source(source)
    return vm


def check_all_vms(source):
    """Run on CpRef, PyVM-nojit and PyVM-jit; outputs must agree.

    Returns (stdout, jit_ctx) for further assertions.
    """
    reference = run_cpref(source)
    nojit, _ = run_pyvm(source, jit=False)
    jit, ctx = run_pyvm(source, jit=True)
    assert reference.stdout() == nojit.stdout(), (
        "cpref vs nojit mismatch:\n%s\n-----\n%s"
        % (reference.stdout(), nojit.stdout()))
    assert nojit.stdout() == jit.stdout(), (
        "nojit vs jit mismatch:\n%s\n-----\n%s"
        % (nojit.stdout(), jit.stdout()))
    return jit.stdout(), ctx


@pytest.fixture
def vms():
    return check_all_vms
