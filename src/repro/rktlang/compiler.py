"""TinyRkt compiler: a Scheme/Racket subset -> framework bytecode.

TinyRkt compiles to the same stack bytecode the TinyPy VM executes, so
the meta-tracing JIT, the interpreter machinery and the reference cost
models are shared — this mirrors how Pycket and PyPy share the RPython
framework while implementing different languages.

Supported forms: ``define`` (functions and values), ``let``/``let*``,
*named let* in self-tail-recursive (loop) form, ``do`` loops, ``if`` /
``cond`` / ``when`` / ``unless``, ``begin``, ``set!``, ``and`` / ``or``
/ ``not``, quotation of atoms and flat lists, and the builtin operators
inlined below (fixnum/flonum arithmetic, comparisons, pairs as 2-cell
vectors, vectors, strings, display/newline).
"""

from repro.core.errors import CompilationError
from repro.pylang import bytecode as bc
from repro.rktlang.reader import Symbol, parse_all

_INLINE_BINOPS = {
    "+": bc.BINARY_ADD, "-": bc.BINARY_SUB, "*": bc.BINARY_MUL,
    "/": bc.BINARY_TRUEDIV,
    "modulo": bc.BINARY_MOD,
    "=": bc.COMPARE_EQ, "<": bc.COMPARE_LT, ">": bc.COMPARE_GT,
    "<=": bc.COMPARE_LE, ">=": bc.COMPARE_GE,
    "expt": bc.BINARY_POW,
    "eq?": bc.COMPARE_IS,
    "equal?": bc.COMPARE_EQ,
    "string=?": bc.COMPARE_EQ,
    "char=?": bc.COMPARE_EQ,
    "string<?": bc.COMPARE_LT,
    "string-append2": bc.BINARY_ADD,
    "bitwise-and": bc.BINARY_AND,
    "bitwise-ior": bc.BINARY_OR,
    "bitwise-xor": bc.BINARY_XOR,
    "arithmetic-shift-left": bc.BINARY_LSHIFT,
}


class _Loop(object):
    """An active named-let target: locals + header pc."""

    def __init__(self, name, slots, header):
        self.name = name
        self.slots = slots
        self.header = header


class _RktUnit(object):
    def __init__(self, name, params, is_module):
        self.unit_name = name
        self.is_module = is_module
        self.ops = []
        self.arg_values = []
        self.consts = []
        self.names = []
        self.name_index = {}
        self.varnames = list(params)
        self.var_index = {p: i for i, p in enumerate(params)}
        self.argcount = len(params)
        self.loops = []  # active named-let frames
        self.temp_counter = 0

    # -- infrastructure (mirrors the TinyPy compiler) --------------------------

    def emit(self, op, arg=0):
        self.ops.append(op)
        self.arg_values.append(arg)
        return len(self.ops) - 1

    def here(self):
        return len(self.ops)

    def patch(self, position, target=None):
        self.arg_values[position] = self.here() if target is None else target

    def const(self, value):
        self.consts.append(value)
        return len(self.consts) - 1

    def name(self, text):
        index = self.name_index.get(text)
        if index is None:
            index = len(self.names)
            self.names.append(text)
            self.name_index[text] = index
        return index

    def local(self, text):
        index = self.var_index.get(text)
        if index is None:
            index = len(self.varnames)
            self.varnames.append(text)
            self.var_index[text] = index
        return index

    def temp(self):
        self.temp_counter += 1
        return self.local("%loop-tmp-" + str(self.temp_counter))

    def fail(self, what):
        raise CompilationError("unsupported in TinyRkt: %s" % (what,))

    def finish(self):
        self.emit(bc.RETURN_VALUE)
        return bc.PyCode(self.unit_name, self.ops, self.arg_values,
                         self.consts, self.names, self.varnames,
                         self.argcount)

    # -- names --------------------------------------------------------------------

    def load_name(self, symbol):
        if not self.is_module and symbol in self.var_index:
            self.emit(bc.LOAD_FAST, self.var_index[symbol])
        else:
            self.emit(bc.LOAD_GLOBAL, self.name(str(symbol)))

    def store_name(self, symbol):
        if not self.is_module and symbol in self.var_index:
            self.emit(bc.STORE_FAST, self.var_index[symbol])
        else:
            self.emit(bc.STORE_GLOBAL, self.name(str(symbol)))

    # -- expressions ----------------------------------------------------------------

    def expr(self, form, tail=False):
        if isinstance(form, Symbol):
            self.load_name(form)
            return
        if isinstance(form, (int, float, bool)):
            self.emit(bc.LOAD_CONST, self.const(form))
            return
        if isinstance(form, tuple):
            kind, payload = form
            # string literal or character (both 1-char strings).
            self.emit(bc.LOAD_CONST, self.const(payload))
            return
        if not isinstance(form, list) or not form:
            self.fail("form %r" % (form,))
        head = form[0]
        if isinstance(head, Symbol):
            method = getattr(self, "form_" + _mangle(str(head)), None)
            if method is not None:
                method(form, tail)
                return
            if str(head) in _INLINE_BINOPS:
                self.inline_op(form)
                return
            if self.loops and not self.is_module:
                for loop in self.loops:
                    if loop.name == head:
                        if not tail:
                            self.fail("non-tail call to named let %r"
                                      % str(head))
                        self.named_let_jump(loop, form)
                        return
        # Generic call.
        self.expr(head)
        for argument in form[1:]:
            self.expr(argument)
        self.emit(bc.CALL_FUNCTION, len(form) - 1)

    def inline_op(self, form):
        op = _INLINE_BINOPS[str(form[0])]
        args = form[1:]
        if len(args) == 1:
            if str(form[0]) == "-":
                self.expr(args[0])
                self.emit(bc.UNARY_NEG)
                return
            if str(form[0]) == "/":
                self.emit(bc.LOAD_CONST, self.const(1.0))
                self.expr(args[0])
                self.emit(op)
                return
            self.fail("unary %s" % str(form[0]))
        self.expr(args[0])
        for argument in args[1:]:
            self.expr(argument)
            self.emit(op)

    # -- special forms ---------------------------------------------------------------

    def form_quote(self, form, tail):
        value = form[1]
        if isinstance(value, list):
            if value:
                self.fail("non-empty quoted list")
            self.emit(bc.LOAD_CONST, self.const(None))  # '() is nil
            return
        if isinstance(value, Symbol):
            self.emit(bc.LOAD_CONST, self.const(str(value)))
            return
        if isinstance(value, tuple):
            self.emit(bc.LOAD_CONST, self.const(value[1]))
            return
        self.emit(bc.LOAD_CONST, self.const(value))

    def form_if(self, form, tail):
        self.expr(form[1])
        jump_false = self.emit(bc.POP_JUMP_IF_FALSE)
        self.expr(form[2], tail)
        jump_end = self.emit(bc.JUMP)
        self.patch(jump_false)
        if len(form) > 3:
            self.expr(form[3], tail)
        else:
            self.emit(bc.LOAD_CONST, self.const(None))
        self.patch(jump_end)

    def form_cond(self, form, tail):
        end_jumps = []
        for clause in form[1:]:
            if isinstance(clause[0], Symbol) and str(clause[0]) == "else":
                self.body(clause[1:], tail)
                break
            self.expr(clause[0])
            jump_false = self.emit(bc.POP_JUMP_IF_FALSE)
            self.body(clause[1:], tail)
            end_jumps.append(self.emit(bc.JUMP))
            self.patch(jump_false)
        else:
            self.emit(bc.LOAD_CONST, self.const(None))
        for position in end_jumps:
            self.patch(position)

    def form_when(self, form, tail):
        self.expr(form[1])
        jump_false = self.emit(bc.POP_JUMP_IF_FALSE)
        self.body(form[2:], tail)
        jump_end = self.emit(bc.JUMP)
        self.patch(jump_false)
        self.emit(bc.LOAD_CONST, self.const(None))
        self.patch(jump_end)

    def form_unless(self, form, tail):
        self.expr(form[1])
        jump_true = self.emit(bc.POP_JUMP_IF_TRUE)
        self.body(form[2:], tail)
        jump_end = self.emit(bc.JUMP)
        self.patch(jump_true)
        self.emit(bc.LOAD_CONST, self.const(None))
        self.patch(jump_end)

    def form_begin(self, form, tail):
        self.body(form[1:], tail)

    def body(self, forms, tail):
        if not forms:
            self.emit(bc.LOAD_CONST, self.const(None))
            return
        for statement in forms[:-1]:
            self.expr(statement)
            self.emit(bc.POP_TOP)
        self.expr(forms[-1], tail)

    def form_and(self, form, tail):
        if len(form) == 1:
            self.emit(bc.LOAD_CONST, self.const(True))
            return
        jumps = []
        for i, value in enumerate(form[1:]):
            self.expr(value)
            if i < len(form) - 2:
                jumps.append(self.emit(bc.JUMP_IF_FALSE_OR_POP))
        for position in jumps:
            self.patch(position)

    def form_or(self, form, tail):
        if len(form) == 1:
            self.emit(bc.LOAD_CONST, self.const(False))
            return
        jumps = []
        for i, value in enumerate(form[1:]):
            self.expr(value)
            if i < len(form) - 2:
                jumps.append(self.emit(bc.JUMP_IF_TRUE_OR_POP))
        for position in jumps:
            self.patch(position)

    def form_not(self, form, tail):
        self.expr(form[1])
        self.emit(bc.UNARY_NOT)

    def form_set_bang(self, form, tail):
        self.expr(form[2])
        self.store_name(form[1])
        self.emit(bc.LOAD_CONST, self.const(None))

    def form_let(self, form, tail):
        if isinstance(form[1], Symbol):
            self.named_let(form, tail)
            return
        if self.is_module:
            self.fail("let at module level (wrap it in a define)")
        bindings = form[1]
        values = []
        for binding in bindings:
            self.expr(binding[1])
            values.append(binding[0])
        for symbol in reversed(values):
            self.emit(bc.STORE_FAST, self.local(symbol))
        # NOTE: plain let should bind simultaneously; evaluation happens
        # before any store, so the semantics hold.
        self.body(form[2:], tail)

    def form_let_star(self, form, tail):
        if self.is_module:
            self.fail("let* at module level (wrap it in a define)")
        for binding in form[1]:
            self.expr(binding[1])
            self.emit(bc.STORE_FAST, self.local(binding[0]))
        self.body(form[2:], tail)

    def named_let(self, form, tail):
        """(let loop ((v init) ...) body...): a self-tail-recursive loop."""
        if self.is_module:
            self.fail("named let at module level (wrap it in a define)")
        name = form[1]
        bindings = form[2]
        slots = []
        for binding in bindings:
            self.expr(binding[1])
        for binding in reversed(bindings):
            slot = self.local(binding[0])
            self.emit(bc.STORE_FAST, slot)
        for binding in bindings:
            slots.append(self.var_index[binding[0]])
        header = self.here()
        self.loops.append(_Loop(name, slots, header))
        self.body(form[3:], tail=True)
        self.loops.pop()

    def named_let_jump(self, loop, form):
        arguments = form[1:]
        if len(arguments) != len(loop.slots):
            self.fail("named-let arity mismatch for %r" % str(loop.name))
        for argument in arguments:
            self.expr(argument)
        for slot in reversed(loop.slots):
            self.emit(bc.STORE_FAST, slot)
        self.emit(bc.JUMP, loop.header)
        # The loop jump "produces" the body's eventual value; emit an
        # unreachable placeholder to keep stack depth bookkeeping simple.

    def form_do(self, form, tail):
        """(do ((v init step) ...) (test result...) body...)"""
        if self.is_module:
            self.fail("do at module level (wrap it in a define)")
        bindings = form[1]
        for binding in bindings:
            self.expr(binding[1])
        slots = []
        for binding in reversed(bindings):
            slot = self.local(binding[0])
            self.emit(bc.STORE_FAST, slot)
        for binding in bindings:
            slots.append(self.var_index[binding[0]])
        header = self.here()
        test_clause = form[2]
        self.expr(test_clause[0])
        exit_jump = self.emit(bc.POP_JUMP_IF_TRUE)
        for statement in form[3:]:
            self.expr(statement)
            self.emit(bc.POP_TOP)
        for i, binding in enumerate(bindings):
            if len(binding) > 2:
                self.expr(binding[2])
            else:
                self.emit(bc.LOAD_FAST, slots[i])
        for i in range(len(bindings) - 1, -1, -1):
            self.emit(bc.STORE_FAST, slots[i])
        self.emit(bc.JUMP, header)
        self.patch(exit_jump)
        self.body(test_clause[1:], tail)

    def form_define(self, form, tail):
        target = form[1]
        if isinstance(target, list):
            name = target[0]
            params = [str(p) for p in target[1:]]
            sub = _RktUnit(str(name), params, is_module=False)
            sub.body(form[2:], tail=True)
            code = sub.finish()
            self.emit(bc.LOAD_CONST, self.const(bc.FunctionSpec(code, 0)))
            self.emit(bc.MAKE_FUNCTION, 0)
            self.store_name(name)
        else:
            self.expr(form[2])
            self.store_name(target)
        self.emit(bc.LOAD_CONST, self.const(None))


def _mangle(text):
    return (text.replace("!", "_bang").replace("*", "_star")
            .replace("-", "_").replace("?", "_p"))


def compile_rkt(source, name="<rkt-module>"):
    """Compile TinyRkt source to a module PyCode."""
    unit = _RktUnit(name, [], is_module=True)
    for form in parse_all(source):
        unit.expr(form)
        unit.emit(bc.POP_TOP)
    unit.emit(bc.LOAD_CONST, unit.const(None))
    return unit.finish()
