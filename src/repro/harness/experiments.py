"""One function per paper table/figure (the per-experiment index of
DESIGN.md).  Each returns structured data plus a rendered text block.

Every experiment takes ``quick=True`` to run at test sizes; the bench
harness uses the full sizes.
"""

import functools
import math

from repro import telemetry
from repro.benchprogs import registry
from repro.harness import report
from repro.harness.runner import (
    asm_per_node,
    category_breakdown,
    ir_stats,
    job,
    node_histogram,
    run_many,
    run_program,
)
from repro.jit import ir as irdefs
from repro.pintool.bcrate import break_even_instructions
from repro.pintool.phases import PHASE_NAMES

# Benchmarks with a native (C/C++) reference kernel.
from repro.nativeref.kernels import KERNELS as NATIVE_KERNELS


def _traced(fn):
    """Wrap an experiment in a ``harness.experiments`` telemetry span.

    A no-op when telemetry is disabled (one module-attribute check per
    experiment call, nowhere near any hot path).
    """
    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        bus = telemetry.BUS
        if bus is None:
            return fn(*args, **kwargs)
        with bus.span(fn.__name__, "harness.experiments",
                      {"quick": bool(kwargs.get("quick", False))}):
            return fn(*args, **kwargs)
    return wrapper


def _n(program, quick):
    return program.small_n if quick else program.default_n


def _jit_suite_jobs(programs, quick):
    """The one-run-per-benchmark job list shared by fig2/6/7/8/9 etc."""
    return [job(p, "pypy", n=_n(p, quick)) for p in programs]


def _sorted_by_speedup(rows, index):
    return sorted(rows, key=lambda r: -r[index])


# -- Table I: PyPy Benchmark Suite performance ---------------------------------


@_traced
def table1(quick=False, programs=None):
    """CPython vs PyPy-nojit vs PyPy-jit: time, speedup, IPC, MPKI."""
    programs = programs or registry.pypy_suite()
    run_many([job(p, vm, n=_n(p, quick))
              for p in programs
              for vm in ("cpython", "pypy_nojit", "pypy")])
    rows = []
    for program in programs:
        n = _n(program, quick)
        cpy = run_program(program, "cpython", n=n)
        nojit = run_program(program, "pypy_nojit", n=n)
        jit = run_program(program, "pypy", n=n)
        assert cpy.output == nojit.output == jit.output, program.name
        rows.append({
            "benchmark": program.name,
            "cpython_s": cpy.seconds, "cpython_ipc": cpy.ipc,
            "cpython_mpki": cpy.mpki,
            "nojit_s": nojit.seconds,
            "nojit_vc": cpy.seconds / nojit.seconds,
            "nojit_ipc": nojit.ipc, "nojit_mpki": nojit.mpki,
            "jit_s": jit.seconds,
            "jit_vc": cpy.seconds / jit.seconds,
            "jit_ipc": jit.ipc, "jit_mpki": jit.mpki,
        })
    rows.sort(key=lambda r: -r["jit_vc"])
    table_rows = [
        (r["benchmark"],
         "%.4f" % r["cpython_s"], "%.2f" % r["cpython_ipc"],
         "%.1f" % r["cpython_mpki"],
         "%.4f" % r["nojit_s"], "%.2f" % r["nojit_vc"],
         "%.2f" % r["nojit_ipc"], "%.1f" % r["nojit_mpki"],
         "%.4f" % r["jit_s"], "%.2f" % r["jit_vc"],
         "%.2f" % r["jit_ipc"], "%.1f" % r["jit_mpki"])
        for r in rows
    ]
    text = report.render_table(
        ["benchmark", "cpy t(s)", "ipc", "mpki",
         "nojit t(s)", "vC", "ipc", "mpki",
         "jit t(s)", "vC", "ipc", "mpki"],
        table_rows,
        title="Table I: PyPy Benchmark Suite (vC = speedup vs CPython)",
    )
    return rows, text


# -- Table II: CLBG cross-language --------------------------------------------------


@_traced
def table2(quick=False, programs=None):
    """CPython / PyPy / Racket / Pycket / native on the CLBG programs."""
    programs = programs or registry.clbg_python()
    rows = []
    rkt_names = {p.name: p for p in registry.RKT_PROGRAMS}
    jobs = []
    for program in programs:
        n = _n(program, quick)
        jobs.append(job(program, "cpython", n=n))
        jobs.append(job(program, "pypy", n=n))
        rkt = rkt_names.get(program.name)
        if rkt is not None:
            rn = _n(rkt, quick)
            jobs.append(job(rkt, "racket", n=rn))
            jobs.append(job(rkt, "pycket", n=rn))
        if program.name in NATIVE_KERNELS:
            jobs.append(job(program, "native", n=n))
    run_many(jobs)
    for program in programs:
        n = _n(program, quick)
        cpy = run_program(program, "cpython", n=n)
        pypy = run_program(program, "pypy", n=n)
        assert cpy.output == pypy.output, program.name
        row = {
            "benchmark": program.name,
            "cpython_s": cpy.seconds,
            "pypy_s": pypy.seconds,
            "racket_s": None, "pycket_s": None, "native_s": None,
        }
        rkt = rkt_names.get(program.name)
        if rkt is not None:
            rn = _n(rkt, quick)
            racket = run_program(rkt, "racket", n=rn)
            pycket = run_program(rkt, "pycket", n=rn)
            assert racket.output == pycket.output, rkt.name
            row["racket_s"] = racket.seconds
            row["pycket_s"] = pycket.seconds
        if program.name in NATIVE_KERNELS:
            native = run_program(program, "native", n=n)
            row["native_s"] = native.seconds
        rows.append(row)

    def fmt(value):
        return "%.4f" % value if value is not None else "-"

    table_rows = [
        (r["benchmark"], fmt(r["cpython_s"]), fmt(r["pypy_s"]),
         fmt(r["racket_s"]), fmt(r["pycket_s"]), fmt(r["native_s"]))
        for r in rows
    ]
    text = report.render_table(
        ["benchmark", "cpython", "pypy", "racket", "pycket", "C/C++"],
        table_rows, title="Table II: CLBG performance (seconds)")
    return rows, text


# -- Figure 2: phase breakdown per PyPy benchmark ------------------------------------


@_traced
def fig2(quick=False, programs=None):
    programs = programs or registry.pypy_suite()
    run_many(_jit_suite_jobs(programs, quick))
    rows = []
    for program in programs:
        result = run_program(program, "pypy", n=_n(program, quick))
        rows.append((program.name, result.phase_breakdown))
    rows.sort(key=lambda r: -r[1].get("jit", 0.0))
    text = report.render_stacked(
        rows, PHASE_NAMES,
        title="Figure 2: time-per-phase breakdown (PyPy suite)")
    return rows, text


# -- Figure 3: phase timelines for best/worst benchmarks ------------------------------


@_traced
def fig3(quick=False, best="richards", worst="eparse"):
    blocks = []
    data = {}
    jobs = []
    for name in (best, worst):
        program = registry.py_program(name)
        n = program.small_n * 3 if quick else program.default_n
        jobs.append(job(program, "pypy", n=n, timeline=True))
    run_many(jobs)
    for name in (best, worst):
        program = registry.py_program(name)
        # Timelines need a few warm iterations even in quick mode.
        n = program.small_n * 3 if quick else program.default_n
        result = run_program(program, "pypy", n=n, timeline=True)
        segments = result.timeline_segments or []
        data[name] = segments
        rows = [("%4.0f%%" % (100.0 * i / max(1, len(segments))), seg)
                for i, seg in enumerate(segments)]
        blocks.append(report.render_stacked(
            rows, PHASE_NAMES,
            title="Figure 3 (%s): phases over time" % name))
    return data, "\n\n".join(blocks)


# -- Figure 4: PyPy vs Pycket phase breakdown on CLBG ----------------------------------


@_traced
def fig4(quick=False, programs=None):
    programs = programs or registry.clbg_python()
    rkt_names = {p.name: p for p in registry.RKT_PROGRAMS}
    rows = []
    jobs = []
    for program in programs:
        rkt = rkt_names.get(program.name)
        if rkt is None:
            continue
        jobs.append(job(program, "pypy", n=_n(program, quick)))
        jobs.append(job(rkt, "pycket", n=_n(rkt, quick)))
    run_many(jobs)
    for program in programs:
        rkt = rkt_names.get(program.name)
        if rkt is None:
            continue
        pypy = run_program(program, "pypy", n=_n(program, quick))
        pycket = run_program(rkt, "pycket", n=_n(rkt, quick))
        rows.append((program.name + "/pypy", pypy.phase_breakdown))
        rows.append((program.name + "/pycket", pycket.phase_breakdown))
    text = report.render_stacked(
        rows, PHASE_NAMES,
        title="Figure 4: phase breakdown, PyPy vs Pycket (CLBG)")
    return rows, text


# -- Table III: significant AOT-compiled functions --------------------------------------


@_traced
def table3(quick=False, threshold=0.10, programs=None):
    programs = programs or registry.pypy_suite()
    run_many(_jit_suite_jobs(programs, quick))
    rows = []
    for program in programs:
        result = run_program(program, "pypy", n=_n(program, quick))
        for fraction, src, name, _calls in result.aot_rows:
            if fraction >= threshold:
                rows.append((program.name, 100.0 * fraction, src, name))
    rows.sort(key=lambda r: (r[0], -r[1]))
    table_rows = [(b, "%.1f" % pct, src, fn) for b, pct, src, fn in rows]
    text = report.render_table(
        ["benchmark", "%", "src", "function"], table_rows,
        title="Table III: significant AOT functions called from traces "
              "(>%d%% of execution)" % int(threshold * 100))
    return rows, text


# -- Figure 5: JIT warmup curves and break-even points ------------------------------------


@_traced
def fig5(quick=False, programs=None, max_instructions=4_000_000):
    """Bytecode-rate warmup curves vs CPython (first K instructions)."""
    programs = programs or registry.pypy_suite()
    jobs = []
    for program in programs:
        n = _n(program, quick)
        jobs.append(job(program, "pypy", n=n, timeline=True,
                        max_instructions=max_instructions))
        jobs.append(job(program, "cpython", n=n,
                        max_instructions=max_instructions))
        jobs.append(job(program, "pypy_nojit", n=n,
                        max_instructions=max_instructions))
    run_many(jobs)
    rows = []
    blocks = []
    for program in programs:
        n = _n(program, quick)
        jit = run_program(program, "pypy", n=n, timeline=True,
                          max_instructions=max_instructions)
        cpy = run_program(program, "cpython", n=n,
                          max_instructions=max_instructions)
        nojit = run_program(program, "pypy_nojit", n=n,
                            max_instructions=max_instructions)
        cpy_rate = cpy.bytecodes_per_insn
        nojit_rate = nojit.bytecodes_per_insn
        timeline = jit.bc_timeline or []
        break_even_cpy = break_even_instructions(timeline, cpy_rate)
        break_even_nojit = break_even_instructions(timeline, nojit_rate)
        final_speedup = (jit.bytecodes_per_insn / cpy_rate
                         if cpy_rate else 0.0)
        rows.append({
            "benchmark": program.name,
            "break_even_vs_cpython": break_even_cpy,
            "break_even_vs_nojit": break_even_nojit,
            "rate_ratio_vs_cpython": final_speedup,
            "timeline": timeline,
        })
        if timeline:
            curve = [(i, 1000.0 * b / i) for i, b in timeline if i]
            blocks.append(report.render_series(
                curve, title="Figure 5 (%s): bytecodes/kinsn over time; "
                "break-even vs cpython at %s, vs nojit at %s"
                % (program.name, break_even_cpy, break_even_nojit)))
    return rows, "\n\n".join(blocks)


# -- Figure 5, tier dimension: break-even with the threaded-code tier ---------------------


@_traced
def fig5_tier(quick=False, programs=None, max_instructions=4_000_000):
    """Fig 5's break-even analysis under tier ``off`` vs ``tier1``.

    The tier targets exactly the window Fig 5 measures: before traces
    are hot, every bytecode still pays interpreter dispatch.  With the
    baseline threaded-code tier on, warming code dispatches through
    cheap site-keyed threaded sequences, so the cumulative bytecode
    rate crosses the CPython reference earlier — fewer instructions to
    break even.  Reference rates (CPython, PyPy-no-JIT) are measured
    once, tier off, so both tier rows chase the same target.
    """
    programs = programs or registry.pypy_suite()
    jobs = []
    for program in programs:
        n = _n(program, quick)
        for tier1 in (False, True):
            jobs.append(job(program, "pypy", n=n, timeline=True,
                            max_instructions=max_instructions,
                            tier1=tier1))
        jobs.append(job(program, "cpython", n=n,
                        max_instructions=max_instructions, tier1=False))
        jobs.append(job(program, "pypy_nojit", n=n,
                        max_instructions=max_instructions, tier1=False))
    run_many(jobs)
    rows = []
    for program in programs:
        n = _n(program, quick)
        cpy = run_program(program, "cpython", n=n,
                          max_instructions=max_instructions, tier1=False)
        nojit = run_program(program, "pypy_nojit", n=n,
                            max_instructions=max_instructions,
                            tier1=False)
        cpy_rate = cpy.bytecodes_per_insn
        nojit_rate = nojit.bytecodes_per_insn
        row = {"benchmark": program.name}
        for tier1, label in ((False, "off"), (True, "tier1")):
            result = run_program(program, "pypy", n=n, timeline=True,
                                 max_instructions=max_instructions,
                                 tier1=tier1)
            timeline = result.bc_timeline or []
            row["break_even_vs_cpython_%s" % label] = \
                break_even_instructions(timeline, cpy_rate)
            row["break_even_vs_nojit_%s" % label] = \
                break_even_instructions(timeline, nojit_rate)
            row["rate_ratio_%s" % label] = (
                result.bytecodes_per_insn / cpy_rate if cpy_rate else 0.0)
            if tier1:
                row["tier_stats"] = result.tier_stats
        off = row["break_even_vs_cpython_off"]
        tier = row["break_even_vs_cpython_tier1"]
        if off is not None and tier is not None and off > 0:
            row["break_even_reduction"] = 1.0 - tier / off
        else:
            row["break_even_reduction"] = None
        rows.append(row)

    def fmt(value):
        return str(value) if value is not None else "-"

    table_rows = [
        (r["benchmark"],
         fmt(r["break_even_vs_cpython_off"]),
         fmt(r["break_even_vs_cpython_tier1"]),
         "%.1f%%" % (100.0 * r["break_even_reduction"])
         if r["break_even_reduction"] is not None else "-",
         "%.2f" % r["rate_ratio_off"],
         "%.2f" % r["rate_ratio_tier1"],
         (r.get("tier_stats") or {}).get("promotions", 0))
        for r in rows
    ]
    text = report.render_table(
        ["benchmark", "break-even off", "break-even tier1", "reduction",
         "rate off", "rate tier1", "promotions"],
        table_rows,
        title="Figure 5 (tier dimension): instructions to break even vs "
              "CPython, threaded-code tier off vs on")
    return rows, text


# -- Figure 2, tier dimension: phase breakdown with the tier ------------------------------


@_traced
def fig2_tier(quick=False, programs=None):
    """Fig 2's phase breakdown under tier ``off`` vs ``tier1``.

    The tier shifts time *within* the interp phase (cheaper dispatch),
    so its effect shows as the interpreter fraction shrinking relative
    to GC and JIT phases — paired rows make the shift legible.
    """
    programs = programs or registry.pypy_suite()
    run_many([job(p, "pypy", n=_n(p, quick), tier1=tier1)
              for p in programs for tier1 in (False, True)])
    rows = []
    for program in programs:
        n = _n(program, quick)
        for tier1, label in ((False, "off"), (True, "tier1")):
            result = run_program(program, "pypy", n=n, tier1=tier1)
            rows.append(("%s/%s" % (program.name, label),
                         result.phase_breakdown))
    text = report.render_stacked(
        rows, PHASE_NAMES,
        title="Figure 2 (tier dimension): phase breakdown, tier off vs "
              "tier1")
    return rows, text


# -- Figure 6: JIT IR compilation/usage statistics -------------------------------------------


@_traced
def fig6(quick=False, programs=None):
    programs = programs or registry.pypy_suite()
    run_many(_jit_suite_jobs(programs, quick))
    rows = []
    for program in programs:
        result = run_program(program, "pypy", n=_n(program, quick))
        stats = ir_stats(result)
        stats["benchmark"] = program.name
        rows.append(stats)
    part_a = report.render_bars(
        [(r["benchmark"], math.log10(max(1, r["nodes_compiled"])))
         for r in rows],
        title="Figure 6a: log10(IR nodes compiled)")
    part_b = report.render_bars(
        [(r["benchmark"], 100.0 * r["hot_fraction"]) for r in rows],
        title="Figure 6b: %% of compiled nodes covering 95%% of JIT time",
        fmt="%.1f")
    part_c = report.render_bars(
        [(r["benchmark"], r["nodes_per_minsn"]) for r in rows],
        title="Figure 6c: dynamic IR nodes per million instructions",
        fmt="%.0f")
    return rows, "\n\n".join([part_a, part_b, part_c])


# -- Figure 7: trace composition by category ----------------------------------------------------


@_traced
def fig7(quick=False, programs=None):
    programs = programs or registry.pypy_suite()
    run_many(_jit_suite_jobs(programs, quick))
    rows = []
    totals = {}
    for program in programs:
        result = run_program(program, "pypy", n=_n(program, quick))
        breakdown = category_breakdown(result)
        rows.append((program.name, breakdown))
        for category, fraction in breakdown.items():
            totals[category] = totals.get(category, 0.0) + fraction
    if rows:
        mean = {c: v / len(rows) for c, v in totals.items()}
        rows.append(("MEAN", mean))
    text = report.render_stacked(
        rows, list(irdefs.CATEGORIES),
        title="Figure 7: dynamic trace composition by IR category")
    return rows, text


# -- Figure 8: dynamic IR node type histogram ------------------------------------------------------


@_traced
def fig8(quick=False, programs=None, top=18):
    programs = programs or registry.pypy_suite()
    run_many(_jit_suite_jobs(programs, quick))
    totals = {}
    for program in programs:
        result = run_program(program, "pypy", n=_n(program, quick))
        for opname, fraction in node_histogram(result).items():
            totals[opname] = totals.get(opname, 0.0) + fraction
    n_programs = max(1, len(programs))
    histogram = {name: value / n_programs for name, value in totals.items()}
    items = sorted(histogram.items(), key=lambda kv: -kv[1])[:top]
    text = report.render_bars(
        [(name, 100.0 * value) for name, value in items],
        title="Figure 8: dynamic IR node type frequency (%)", fmt="%.2f")
    return histogram, text


# -- Figure 9: assembly instructions per IR node type -----------------------------------------------


@_traced
def fig9(quick=False, programs=None, top=18):
    programs = programs or registry.pypy_suite()
    run_many(_jit_suite_jobs(programs, quick))
    sums = {}
    counts = {}
    for program in programs:
        result = run_program(program, "pypy", n=_n(program, quick))
        for opname, mean in asm_per_node(result).items():
            sums[opname] = sums.get(opname, 0.0) + mean
            counts[opname] = counts.get(opname, 0) + 1
    means = {name: sums[name] / counts[name] for name in sums}
    items = sorted(means.items(), key=lambda kv: -kv[1])[:top]
    text = report.render_bars(
        items, title="Figure 9: mean assembly instructions per IR node",
        fmt="%.1f")
    return means, text


# -- Table IV: per-phase microarchitectural behaviour -------------------------------------------------


@_traced
def table4(quick=False, programs=None):
    programs = programs or registry.pypy_suite()
    run_many(_jit_suite_jobs(programs, quick))
    samples = {name: {"ipc": [], "bpi": [], "miss": []}
               for name in PHASE_NAMES}
    for program in programs:
        result = run_program(program, "pypy", n=_n(program, quick))
        for i, name in enumerate(PHASE_NAMES):
            window = result.phase_windows[i]
            if window.instructions < 2000:
                continue  # too small a sample for stable ratios
            samples[name]["ipc"].append(window.ipc)
            samples[name]["bpi"].append(window.branches_per_insn)
            samples[name]["miss"].append(window.branch_miss_rate)

    def mean_std(values):
        if not values:
            return 0.0, 0.0
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        return mean, variance ** 0.5

    rows = []
    for name in PHASE_NAMES:
        ipc_m, ipc_s = mean_std(samples[name]["ipc"])
        bpi_m, bpi_s = mean_std(samples[name]["bpi"])
        miss_m, miss_s = mean_std(samples[name]["miss"])
        rows.append({
            "phase": name, "ipc": ipc_m, "ipc_std": ipc_s,
            "branches_per_insn": bpi_m, "bpi_std": bpi_s,
            "miss_rate": miss_m, "miss_std": miss_s,
            "n": len(samples[name]["ipc"]),
        })
    table_rows = [
        (r["phase"], r["n"],
         "%.2f +- %.2f" % (r["ipc"], r["ipc_std"]),
         "%.3f +- %.3f" % (r["branches_per_insn"], r["bpi_std"]),
         "%.3f +- %.3f" % (r["miss_rate"], r["miss_std"]))
        for r in rows
    ]
    text = report.render_table(
        ["phase", "n", "IPC", "branches/insn", "miss rate"], table_rows,
        title="Table IV: microarchitectural behaviour by phase")
    return rows, text
