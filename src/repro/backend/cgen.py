"""C source for the native backend's simulation runtime.

The entire mutable machine state lives in one C ``SimState`` struct
(counters, predictor/BTB/RAS tables, two-level cache tags, per-block
cost arrays) and every hot event kernel is a C function over it.  The
Python side (:mod:`repro.backend.nativemachine`) keeps only the
listener/limit gating and marshals block descriptors and quickened run
tables into C arrays once.

Bit-identity contract (mirrors :mod:`repro.backend.kernelspec`):

* identical IEEE-754 double operations in the reference order — the
  shared bulk-miss-carry fragment is the ``BULK_CHARGE`` macro, the
  block charge is ``exec_block_inner``, the inlined BTB is
  ``indirect_inner`` — compiled with ``-ffp-contract=off`` so no FMA
  contraction can change rounding, and never with ``-ffast-math``;
* ``(long long)x`` truncation-toward-zero matches Python ``int(x)`` for
  the nonnegative miss counts involved;
* integer counts convert to double exactly (all < 2**53);
* cache penalties are exact small integers, so ``l1_penalty +
  l2_penalty`` is the same double as Python's int sum, and the
  ``cycles += 0.0`` on a zero-penalty access is a bitwise no-op for the
  nonnegative cycle accumulator.

Limit semantics: kernels whose reference counterpart checks
``max_instructions`` return an ``int`` flag (1 = limit reached); the
Python wrapper raises :class:`SimulationLimitReached` so exception
semantics stay on the Python side.  Batched kernels (the ``rt_*_batch``
and run loops) are only entered after the Python-side precheck proved
the limit cannot be crossed, exactly like the reference batched paths,
so they perform no checks.
"""

import hashlib

from repro.isa import insns

N_CLASSES = insns.N_CLASSES

# cffi cdef: the subset of the source the Python side touches directly.
CDEF = """
typedef struct {
    long long instructions;
    double    cycles;
    long long branches;
    long long branch_misses;
    long long loads;
    long long stores;
    long long annotations;
    long long max_instructions;
    double    bulk_miss_carry;
    double    bulk_miss_rate;
    double    inv_width;
    double    load_cost;
    double    store_cost;
    double    mispredict_penalty;
    double    stalls[%(n_classes)d];
    long long class_counts[%(n_classes)d];
    int       pred_kind;
    long long g_mask;
    long long g_history;
    unsigned char *g_table;
    long long btb_mask;
    long long btb_history;
    long long *btb_targets;
    int       ras_entries;
    int       ras_top;
    long long *ras_stack;
    int       line_shift;
    int       l1_assoc;
    int       l2_assoc;
    long long l1_set_mask;
    long long l2_set_mask;
    long long *l1_tags;
    long long *l2_tags;
    long long l1_hits;
    long long l1_misses;
    long long l2_hits;
    long long l2_misses;
    double    l1_penalty;
    double    l2_penalty;
    int       n_blocks;
    long long *b_n_insns;
    double    *b_insn_cycles;
    double    *b_stall_cycles;
    double    *b_flat_cycles;
    long long *b_bulk_count;
    long long *b_count;
    int       n_fused;
    int       *f_block;
    long long *f_branches;
    double    *f_miss_rate;
    double    *f_branch_cycles;
    long long *f_count;
} SimState;

int  rt_annot(SimState *st);
void rt_annot_batch(SimState *st, long long n);
int  rt_exec_mix(SimState *st, int n, int *klasses, long long *counts);
int  rt_exec_block(SimState *st, int bid);
int  rt_exec_fused(SimState *st, int fid);
void rt_dispatch_event(SimState *st, int bid, long long pc,
                       long long target);
void rt_dispatch_event2(SimState *st, int bid, int b2id, long long pc,
                        long long target);
void rt_dispatch_run(SimState *st, int bid, long long n, long long *pcs,
                     long long *targets, int *b2ids);
void rt_quick_run(SimState *st, int bid, long long n, long long *pcs,
                  long long *targets, int *offs, int *blkids);
void rt_branch(SimState *st, long long pc, int taken);
int  rt_branch_block(SimState *st, long long pc, int bid);
void rt_indirect(SimState *st, long long pc, long long target);
void rt_call(SimState *st, long long pc);
void rt_ret(SimState *st, long long pc);
int  rt_exec_bulk_branches(SimState *st, long long count, double rate);
void rt_load(SimState *st, long long addr);
void rt_store(SimState *st, long long addr);
void rt_exec_program(SimState *st, long long n, const long long *words,
                     const long long *operands);
void rt_reset(SimState *st);
""" % {"n_classes": N_CLASSES}

SOURCE = CDEF.replace("typedef struct {", "typedef struct SimState_ {") + r"""

enum {
    K_ALU = %(ALU)d, K_MUL = %(MUL)d, K_DIV = %(DIV)d, K_FPU = %(FPU)d,
    K_LOAD = %(LOAD)d, K_STORE = %(STORE)d, K_BR_COND = %(BR_COND)d,
    K_BR_IND = %(BR_IND)d, K_CALL = %(CALL)d, K_RET = %(RET)d,
    K_NOP_ANNOT = %(NOP_ANNOT)d, K_BR_BULK = %(BR_BULK)d
};

/* The shared bulk-branch miss-carry fragment (Python mirror:
 * repro.backend.kernelspec.emit_bulk_miss_carry): misses_exact =
 * count * rate + carry; misses = int(misses_exact); carry =
 * misses_exact - misses; branch_misses += misses.  Same double ops in
 * the same order; the (long long) cast is Python's int() truncation
 * for these nonnegative values. */
#define BULK_CHARGE(st, countv, rate, misses_out) do {                  \
    double misses_exact_ =                                              \
        (double)(countv) * (rate) + (st)->bulk_miss_carry;              \
    long long misses_ = (long long)misses_exact_;                       \
    (st)->bulk_miss_carry = misses_exact_ - (double)misses_;            \
    (st)->branch_misses += misses_;                                     \
    (misses_out) = misses_;                                             \
} while (0)

static int limit_hit(SimState *st)
{
    return st->max_instructions && st->instructions >= st->max_instructions;
}

/* Block charge (kernelspec.emit_block_charge): count, instructions,
 * then either the bulk-carry branch charge or the flat cycle cost. */
static void exec_block_nolimit(SimState *st, int bid)
{
    long long bulk;
    st->b_count[bid] += 1;
    st->instructions += st->b_n_insns[bid];
    bulk = st->b_bulk_count[bid];
    if (bulk) {
        long long misses;
        st->branches += bulk;
        BULK_CHARGE(st, bulk, st->bulk_miss_rate, misses);
        st->cycles += st->b_insn_cycles[bid] + (
            st->b_stall_cycles[bid] +
            (double)misses * st->mispredict_penalty);
    } else {
        st->cycles += st->b_flat_cycles[bid];
    }
}

/* Inlined BTB indirect jump (kernelspec.emit_btb_jump). */
static void indirect_inner(SimState *st, long long pc, long long target)
{
    long long index;
    st->instructions += 1;
    st->branches += 1;
    st->class_counts[K_BR_IND] += 1;
    st->cycles += st->inv_width;
    index = (pc ^ st->btb_history) & st->btb_mask;
    if (st->btb_targets[index] != target) {
        st->branch_misses += 1;
        st->cycles += st->mispredict_penalty;
    }
    st->btb_targets[index] = target;
    st->btb_history = ((st->btb_history << 3) ^ (target & 0x3FF))
        & st->btb_mask;
}

/* Conditional predictor predict_and_update; kind 0 = gshare,
 * 1 = bimodal, 2 = always-taken (uarch/branch.py mirrors). */
static int cond_predict(SimState *st, long long pc, int taken)
{
    long long index;
    int counter;
    if (st->pred_kind == 2)
        return !taken;
    if (st->pred_kind == 0) {
        index = (pc ^ st->g_history) & st->g_mask;
        counter = st->g_table[index];
        if (taken) {
            if (counter < 3)
                st->g_table[index] = (unsigned char)(counter + 1);
            st->g_history = ((st->g_history << 1) | 1) & st->g_mask;
        } else {
            if (counter > 0)
                st->g_table[index] = (unsigned char)(counter - 1);
            st->g_history = (st->g_history << 1) & st->g_mask;
        }
        return (counter >= 2) != taken;
    }
    index = pc & st->g_mask;
    counter = st->g_table[index];
    if (taken) {
        if (counter < 3)
            st->g_table[index] = (unsigned char)(counter + 1);
    } else {
        if (counter > 0)
            st->g_table[index] = (unsigned char)(counter - 1);
    }
    return (counter >= 2) != taken;
}

/* One level of the LRU set-associative cache (uarch/cache.py): tag
 * lists in LRU order, -1 = empty way; move-to-front on hit, shift-in
 * on miss.  The Python transient assoc+1 list length before pop() is
 * unobservable, so the fixed-width shift is state-identical. */
static int cache_access(long long *tags, int assoc, long long set_index,
                        long long line)
{
    long long *ways = tags + set_index * assoc;
    int i;
    for (i = 0; i < assoc; i++) {
        if (ways[i] == line) {
            for (; i > 0; i--)
                ways[i] = ways[i - 1];
            ways[0] = line;
            return 1;
        }
    }
    for (i = assoc - 1; i > 0; i--)
        ways[i] = ways[i - 1];
    ways[0] = line;
    return 0;
}

/* CacheHierarchy.access: returns the double penalty (exact small
 * integers in the reference, so the sum is the same double). */
static double dc_access(SimState *st, long long addr)
{
    long long line = addr >> st->line_shift;
    if (cache_access(st->l1_tags, st->l1_assoc, line & st->l1_set_mask,
                     line)) {
        st->l1_hits += 1;
        return 0.0;
    }
    st->l1_misses += 1;
    if (cache_access(st->l2_tags, st->l2_assoc, line & st->l2_set_mask,
                     line)) {
        st->l2_hits += 1;
        return st->l1_penalty;
    }
    st->l2_misses += 1;
    return st->l1_penalty + st->l2_penalty;
}

int rt_annot(SimState *st)
{
    st->instructions += 1;
    st->annotations += 1;
    st->class_counts[K_NOP_ANNOT] += 1;
    st->cycles += st->inv_width;
    return limit_hit(st);
}

void rt_annot_batch(SimState *st, long long n)
{
    long long i;
    st->instructions += n;
    st->annotations += n;
    st->class_counts[K_NOP_ANNOT] += n;
    /* Per-annotation float adds in order (a single multiply would
     * round differently at binade crossings). */
    for (i = 0; i < n; i++)
        st->cycles += st->inv_width;
}

int rt_exec_mix(SimState *st, int n, int *klasses, long long *counts)
{
    long long total = 0;
    double extra = 0.0;
    int i;
    for (i = 0; i < n; i++) {
        int klass = klasses[i];
        long long count = counts[i];
        total += count;
        st->class_counts[klass] += count;
        if (klass == K_BR_BULK) {
            long long misses;
            st->branches += count;
            BULK_CHARGE(st, count, st->bulk_miss_rate, misses);
            extra += (double)misses * st->mispredict_penalty;
            continue;
        }
        if (st->stalls[klass] != 0.0)
            extra += st->stalls[klass] * (double)count;
    }
    st->instructions += total;
    st->cycles += (double)total * st->inv_width + extra;
    return limit_hit(st);
}

int rt_exec_block(SimState *st, int bid)
{
    exec_block_nolimit(st, bid);
    return limit_hit(st);
}

int rt_exec_fused(SimState *st, int fid)
{
    long long count, misses;
    exec_block_nolimit(st, st->f_block[fid]);
    if (limit_hit(st))
        return 1;
    count = st->f_branches[fid];
    if (count <= 0)
        return 0;
    st->f_count[fid] += 1;
    st->instructions += count;
    st->branches += count;
    BULK_CHARGE(st, count, st->f_miss_rate[fid], misses);
    st->cycles += st->f_branch_cycles[fid]
        + (double)misses * st->mispredict_penalty;
    return limit_hit(st);
}

/* Batched dispatch event: annot + dispatch block + BTB jump in the
 * reference float order.  No limit checks — the Python gate's
 * precheck proved the event cannot cross (kernelspec drops the same
 * unreachable checks in its batched paths). */
void rt_dispatch_event(SimState *st, int bid, long long pc,
                       long long target)
{
    st->instructions += 1;
    st->annotations += 1;
    st->class_counts[K_NOP_ANNOT] += 1;
    st->cycles += st->inv_width;
    exec_block_nolimit(st, bid);
    indirect_inner(st, pc, target);
}

void rt_dispatch_event2(SimState *st, int bid, int b2id, long long pc,
                        long long target)
{
    rt_dispatch_event(st, bid, pc, target);
    exec_block_nolimit(st, b2id);
}

void rt_dispatch_run(SimState *st, int bid, long long n, long long *pcs,
                     long long *targets, int *b2ids)
{
    long long i;
    for (i = 0; i < n; i++)
        rt_dispatch_event2(st, bid, b2ids[i], pcs[i], targets[i]);
}

/* Quickened run: per item, a dispatch event plus the handler's block
 * charges blkids[offs[i] .. offs[i+1]) in order. */
void rt_quick_run(SimState *st, int bid, long long n, long long *pcs,
                  long long *targets, int *offs, int *blkids)
{
    long long i;
    int j;
    for (i = 0; i < n; i++) {
        rt_dispatch_event(st, bid, pcs[i], targets[i]);
        for (j = offs[i]; j < offs[i + 1]; j++)
            exec_block_nolimit(st, blkids[j]);
    }
}

void rt_branch(SimState *st, long long pc, int taken)
{
    st->instructions += 1;
    st->branches += 1;
    st->class_counts[K_BR_COND] += 1;
    st->cycles += st->inv_width;
    if (cond_predict(st, pc, taken)) {
        st->branch_misses += 1;
        st->cycles += st->mispredict_penalty;
    }
}

int rt_branch_block(SimState *st, long long pc, int bid)
{
    st->instructions += 1;
    st->branches += 1;
    st->class_counts[K_BR_COND] += 1;
    st->cycles += st->inv_width;
    if (cond_predict(st, pc, 0)) {
        st->branch_misses += 1;
        st->cycles += st->mispredict_penalty;
    }
    exec_block_nolimit(st, bid);
    return limit_hit(st);
}

void rt_indirect(SimState *st, long long pc, long long target)
{
    indirect_inner(st, pc, target);
}

void rt_call(SimState *st, long long pc)
{
    st->instructions += 1;
    st->branches += 1;
    st->class_counts[K_CALL] += 1;
    st->cycles += st->inv_width;
    st->ras_top = (st->ras_top + 1) %% st->ras_entries;
    st->ras_stack[st->ras_top] = pc + 1;
}

void rt_ret(SimState *st, long long pc)
{
    long long predicted;
    st->instructions += 1;
    st->branches += 1;
    st->class_counts[K_RET] += 1;
    st->cycles += st->inv_width;
    predicted = st->ras_stack[st->ras_top];
    st->ras_top = (st->ras_top + st->ras_entries - 1) %% st->ras_entries;
    if (predicted != pc + 1) {
        st->branch_misses += 1;
        st->cycles += st->mispredict_penalty;
    }
}

int rt_exec_bulk_branches(SimState *st, long long count, double rate)
{
    long long misses;
    if (count <= 0)
        return 0;
    st->instructions += count;
    st->branches += count;
    st->class_counts[K_BR_COND] += count;
    BULK_CHARGE(st, count, rate, misses);
    st->cycles += (double)count * st->inv_width
        + (double)misses * st->mispredict_penalty;
    return limit_hit(st);
}

/* load/store: the MRU-hit fast path of the reference adds no penalty;
 * the generic path adds dc_access() which is 0.0 on any L1 hit, and
 * x + 0.0 is a bitwise no-op for the nonnegative cycle accumulator,
 * so one uniform dc_access call is bit-identical. */
void rt_load(SimState *st, long long addr)
{
    st->instructions += 1;
    st->loads += 1;
    st->class_counts[K_LOAD] += 1;
    st->cycles += st->load_cost;
    st->cycles += dc_access(st, addr);
}

void rt_store(SimState *st, long long addr)
{
    st->instructions += 1;
    st->stores += 1;
    st->class_counts[K_STORE] += 1;
    st->cycles += st->store_cost;
    st->cycles += 0.3 * dc_access(st, addr);
}

/* Event-program replayer (repro.backend.eventprog): a flat word array
 * encoding an ordered event sequence, retired in one FFI call.  Word
 * opcodes mirror eventprog.W_*; fused Python-side events were lowered
 * to their primitive concatenation before marshaling.  No limit checks
 * — the Python gate's program-level precheck proved the whole program
 * cannot cross, and instructions only grows, so every intermediate
 * batched precheck would pass too (same argument as the run loops
 * above).  Dynamic load/store addresses are read from operands[slot],
 * written by the generated driver immediately before the call.  The
 * bulk rate travels as its IEEE-754 bit pattern so it round-trips
 * exactly. */
void rt_exec_program(SimState *st, long long n, const long long *words,
                     const long long *operands)
{
    long long i = 0;
    while (i < n) {
        switch ((int)words[i]) {
        case 1:  /* W_EXEC_BLOCK bid */
            exec_block_nolimit(st, (int)words[i + 1]);
            i += 2;
            break;
        case 2:  /* W_BRANCH_BLOCK pc bid */
            st->instructions += 1;
            st->branches += 1;
            st->class_counts[K_BR_COND] += 1;
            st->cycles += st->inv_width;
            if (cond_predict(st, words[i + 1], 0)) {
                st->branch_misses += 1;
                st->cycles += st->mispredict_penalty;
            }
            exec_block_nolimit(st, (int)words[i + 2]);
            i += 3;
            break;
        case 3:  /* W_BRANCH pc taken */
            rt_branch(st, words[i + 1], (int)words[i + 2]);
            i += 3;
            break;
        case 4:  /* W_ANNOT n */
            rt_annot_batch(st, words[i + 1]);
            i += 2;
            break;
        case 5:  /* W_LOAD slot */
            rt_load(st, operands[words[i + 1]]);
            i += 2;
            break;
        case 6:  /* W_STORE slot */
            rt_store(st, operands[words[i + 1]]);
            i += 2;
            break;
        case 7:  /* W_CALL pc */
            rt_call(st, words[i + 1]);
            i += 2;
            break;
        case 8:  /* W_RET pc */
            rt_ret(st, words[i + 1]);
            i += 2;
            break;
        case 9:  /* W_DISPATCH bid pc target */
            rt_dispatch_event(st, (int)words[i + 1], words[i + 2],
                              words[i + 3]);
            i += 4;
            break;
        case 10:  /* W_DISPATCH2 bid b2id pc target */
            rt_dispatch_event2(st, (int)words[i + 1], (int)words[i + 2],
                               words[i + 3], words[i + 4]);
            i += 5;
            break;
        case 11: {  /* W_BULK count rate_bits */
            union { long long bits; double rate; } pun;
            pun.bits = words[i + 2];
            st->instructions += words[i + 1];
            st->branches += words[i + 1];
            st->class_counts[K_BR_COND] += words[i + 1];
            {
                long long misses;
                BULK_CHARGE(st, words[i + 1], pun.rate, misses);
                st->cycles += (double)words[i + 1] * st->inv_width
                    + (double)misses * st->mispredict_penalty;
            }
            i += 3;
            break;
        }
        default:
            return;  /* unreachable for well-formed programs */
        }
    }
}

void rt_reset(SimState *st)
{
    long long i;
    st->instructions = 0;
    st->cycles = 0.0;
    st->branches = 0;
    st->branch_misses = 0;
    st->loads = 0;
    st->stores = 0;
    st->annotations = 0;
    st->bulk_miss_carry = 0.0;
    for (i = 0; i < %(n_classes)d; i++)
        st->class_counts[i] = 0;
    if (st->g_table)
        for (i = 0; i <= st->g_mask; i++)
            st->g_table[i] = 1;
    st->g_history = 0;
    for (i = 0; i <= st->btb_mask; i++)
        st->btb_targets[i] = 0;
    st->btb_history = 0;
    for (i = 0; i < st->ras_entries; i++)
        st->ras_stack[i] = 0;
    st->ras_top = 0;
    for (i = 0; i < (st->l1_set_mask + 1) * st->l1_assoc; i++)
        st->l1_tags[i] = -1;
    for (i = 0; i < (st->l2_set_mask + 1) * st->l2_assoc; i++)
        st->l2_tags[i] = -1;
    st->l1_hits = st->l1_misses = 0;
    st->l2_hits = st->l2_misses = 0;
    for (i = 0; i < st->n_blocks; i++)
        st->b_count[i] = 0;
    for (i = 0; i < st->n_fused; i++)
        st->f_count[i] = 0;
}
""" % {
    "ALU": insns.ALU, "MUL": insns.MUL, "DIV": insns.DIV,
    "FPU": insns.FPU, "LOAD": insns.LOAD, "STORE": insns.STORE,
    "BR_COND": insns.BR_COND, "BR_IND": insns.BR_IND,
    "CALL": insns.CALL, "RET": insns.RET,
    "NOP_ANNOT": insns.NOP_ANNOT, "BR_BULK": insns.BR_BULK,
    "n_classes": N_CLASSES,
}

# No FMA contraction (would change double rounding vs the reference)
# and certainly no -ffast-math; -O2 on strict IEEE semantics.
COMPILE_ARGS = ["-O2", "-ffp-contract=off"]


def digest():
    """Content digest keying the compiled-module cache."""
    h = hashlib.sha256()
    h.update(CDEF.encode())
    h.update(SOURCE.encode())
    h.update(" ".join(COMPILE_ARGS).encode())
    return h.hexdigest()[:16]
