# pyflate-fast: bit-stream reading and Huffman-style decoding in pure
# TinyPy (Table III: rstr.ll_find_char, BytesListStrategy.setslice).
N = 90


class BitReader:
    def __init__(self, data):
        self.data = data
        self.pos = 0
        self.bit = 0

    def read_bit(self):
        byte = self.data[self.pos]
        value = (byte >> self.bit) & 1
        self.bit += 1
        if self.bit == 8:
            self.bit = 0
            self.pos += 1
        return value

    def read_bits(self, n):
        value = 0
        for i in range(n):
            value |= self.read_bit() << i
        return value


def make_data(n):
    seed = 99
    data = []
    for i in range(n):
        seed = (seed * 1103515245 + 12345) % 2147483648
        data.append(seed % 256)
    return data


class HuffmanTable:
    def __init__(self, lengths):
        # Canonical Huffman codes from code lengths.
        self.lengths = lengths
        max_len = 0
        for length in lengths:
            if length > max_len:
                max_len = length
        counts = [0] * (max_len + 1)
        for length in lengths:
            counts[length] += 1
        counts[0] = 0
        code = 0
        first_codes = [0] * (max_len + 1)
        for length in range(1, max_len + 1):
            code = (code + counts[length - 1]) << 1
            first_codes[length] = code
        self.max_len = max_len
        codes = [0] * len(lengths)
        next_code = first_codes[0:max_len + 1]
        for symbol in range(len(lengths)):
            length = lengths[symbol]
            if length != 0:
                codes[symbol] = next_code[length]
                next_code[length] = next_code[length] + 1
        self.codes = codes

    def decode(self, reader):
        code = 0
        length = 0
        while True:
            code = (code << 1) | reader.read_bit()
            length += 1
            for symbol in range(len(self.lengths)):
                if self.lengths[symbol] == length and \
                        self.codes[symbol] == code:
                    return symbol
            if length >= self.max_len:
                return -1


def run_pyflate(blocks):
    table = HuffmanTable([3, 3, 3, 3, 3, 2, 4, 4])
    data = make_data(blocks * 64)
    reader = BitReader(data)
    output = []
    checksum = 0
    for b in range(blocks * 40):
        symbol = table.decode(reader)
        if symbol < 0:
            symbol = 7
        output.append(symbol)
        checksum = (checksum * 31 + symbol) % 1000000007
        if reader.pos >= len(data) - 4:
            reader.pos = 0
            reader.bit = 0
    print("pyflate", len(output), checksum)


run_pyflate(N)
