"""The RPython-style runtime library (AOT-compiled functions)."""
