"""Event programs: pre-compiled machine-event sequences replayed in one call.

The compiled backends (DESIGN.md SS13) made the individual Machine kernels
cheap, but every hot driver loop -- a JIT trace iteration, a tier-1
threaded block, a quickened interpreter run -- still crosses from Python
into the kernels dozens of times per pass, so the crossings themselves
became the wall (ROADMAP "Amdahl wall" item).  An *event program* closes
that gap: it encodes an ordered sequence of already-shipped kernel
operations as a compact bytecode built once per hot site, then replays
the whole sequence with a single ``machine.exec_program`` call.  On the
native backend that is one FFI crossing per program (``rt_exec_program``
walks a flat word array inside C); on the fast backend one pre-bound
thunk list; on the reference backend the program is replayed through the
ordinary public kernel methods, so python-backend semantics stay the
single source of truth.

Bit-identity is by construction: a program stores the *same* events, in
the *same* order, with the *same* arguments as the direct calls it
replaces, and every replayer retires them through kernels already proven
bit-identical (tests/backend/).  The only behavioral latitude -- batching
runner notifications after the charges instead of interleaved -- is
exactly the latitude the batched kernels of DESIGN.md SS11/SS13 already
took, and is guarded by the same gates: a program whose tags face
non-batched listeners, or whose total ``n_insns`` could cross
``max_instructions``, is replayed through the reference path instead
(with the fallback recorded in :data:`STATS`).

Event tuples are ``(kind, ...)`` with the kinds below; ``ProgramBuilder``
is the one place that knows each event's instruction cost and runner
notification, so encoders cannot drift from the replayers.
"""

import json
import os
import struct

# ---------------------------------------------------------------------------
# Event kinds.  Tuple layouts (descr = BlockDescr):
#
#   (EV_EXEC_BLOCK, descr)
#   (EV_BRANCH_BLOCK, pc, descr)
#   (EV_BRANCH, pc, taken)
#   (EV_ANNOT_RUN, tag, n)
#   (EV_LOAD, slot)                      operand address in operands[slot]
#   (EV_STORE, slot)
#   (EV_CALL, pc)
#   (EV_RET, pc)
#   (EV_DISPATCH, tag, descr, pc, target)
#   (EV_DISPATCH2, tag, descr, pc, target, descr2)
#   (EV_BULK, count, rate)
#   (EV_BRBA, pc, descr, tag, n)         branch_block_annot_run
#   (EV_LOAD_ANNOT, slot, tag, n)
#   (EV_STORE_ANNOT, slot, tag, n)
#   (EV_QUICK_RUN, tag, descr, items, n_insns)
#   (EV_DISPATCH_RUN, tag, descr, items, n_insns)
#   (EV_BC, counts_list, index)          zero-cost host-side counter bump
# ---------------------------------------------------------------------------

(EV_EXEC_BLOCK,
 EV_BRANCH_BLOCK,
 EV_BRANCH,
 EV_ANNOT_RUN,
 EV_LOAD,
 EV_STORE,
 EV_CALL,
 EV_RET,
 EV_DISPATCH,
 EV_DISPATCH2,
 EV_BULK,
 EV_BRBA,
 EV_LOAD_ANNOT,
 EV_STORE_ANNOT,
 EV_QUICK_RUN,
 EV_DISPATCH_RUN,
 EV_BC) = range(17)


# Native word opcodes (cgen.py rt_exec_program's switch).  Fused events
# lower to the concatenation of their primitive words -- the batched
# kernels are documented (kernelspec) as exactly that concatenation, so
# the word stream retires bit-identically.
W_EXEC_BLOCK = 1
W_BRANCH_BLOCK = 2
W_BRANCH = 3
W_ANNOT = 4
W_LOAD = 5
W_STORE = 6
W_CALL = 7
W_RET = 8
W_DISPATCH = 9
W_DISPATCH2 = 10
W_BULK = 11


STATS = {
    "programs": 0,           # EventPrograms built this process
    "events": 0,             # events across built programs
    "native_fallback_limit": 0,     # native replays: limit could cross
    "native_fallback_listener": 0,  # native replays: per-primitive listener
    "cache_hits": 0,         # trace-program disk cache
    "cache_misses": 0,
    "cache_errors": 0,       # unreadable/stale cache entries (recounted as miss)
    "trace_calls_before": 0,  # per-line machine calls a trace body made
    "trace_calls_after": 0,   # calls left after segmenting (flushes + kept)
    "trace_segments": 0,      # segments converted to programs
}


def reset_stats():
    for key in STATS:
        STATS[key] = 0


def stats_snapshot():
    return dict(STATS)


class EventProgram(object):
    """An immutable ordered sequence of machine events.

    ``n_insns`` is the exact total instruction count the program retires,
    ``notes`` the ordered ``(tag, n)`` runner notifications the reference
    replay would emit, ``tags`` every annotation tag the program touches
    (the listener gate checks these), and ``n_slots`` how many operand
    slots (dynamic load/store addresses) the caller must supply.
    """

    __slots__ = ("events", "n_insns", "notes", "tags", "n_slots",
                 "bc_list", "bc_totals", "label")

    def __init__(self, events, n_insns, notes, tags, n_slots,
                 bc_list=None, bc_totals=(), label=None):
        self.events = tuple(events)
        self.n_insns = n_insns
        self.notes = tuple(notes)
        self.tags = frozenset(tags)
        self.n_slots = n_slots
        # EV_BC bookkeeping: the host-side counter list the program bumps
        # (the trace's per-block exec counts) and the aggregated
        # (index, count) totals the native path applies after the C call
        # — ordering vs charges only matters across a limit raise, and
        # the native path is only taken when no raise is possible.
        self.bc_list = bc_list
        self.bc_totals = tuple(bc_totals)
        self.label = label

    def __len__(self):
        return len(self.events)

    def __repr__(self):
        return "<EventProgram %s: %d events, %d insns, %d slots>" % (
            self.label or "?", len(self.events), self.n_insns, self.n_slots)


class ProgramBuilder(object):
    """Accumulates events; the single authority on per-event costs/notes."""

    def __init__(self, label=None):
        self.label = label
        self._events = []
        self._n_insns = 0
        self._notes = []
        self._tags = set()
        self._n_slots = 0
        self._bc_list = None
        self._bc_counts = {}

    def __len__(self):
        return len(self._events)

    # -- primitive events ---------------------------------------------------

    def exec_block(self, descr):
        self._events.append((EV_EXEC_BLOCK, descr))
        self._n_insns += descr.n_insns

    def branch_block(self, pc, descr):
        self._events.append((EV_BRANCH_BLOCK, pc, descr))
        self._n_insns += 1 + descr.n_insns

    def branch(self, pc, taken):
        self._events.append((EV_BRANCH, pc, taken))
        self._n_insns += 1

    def annot(self, tag):
        # annot(tag) == annot_run(tag, 1) in every gate case (the batched
        # kernel's per-primitive path loops over annot), so bare annots
        # encode as one-element runs.
        self.annot_run(tag, 1)

    def annot_run(self, tag, n):
        self._events.append((EV_ANNOT_RUN, tag, n))
        self._n_insns += n
        self._notes.append((tag, n))
        self._tags.add(tag)

    def load(self, slot):
        self._events.append((EV_LOAD, slot))
        self._n_insns += 1
        self._track_slot(slot)

    def store(self, slot):
        self._events.append((EV_STORE, slot))
        self._n_insns += 1
        self._track_slot(slot)

    def call(self, pc):
        self._events.append((EV_CALL, pc))
        self._n_insns += 1

    def ret(self, pc):
        self._events.append((EV_RET, pc))
        self._n_insns += 1

    def dispatch_event(self, tag, descr, pc, target):
        self._events.append((EV_DISPATCH, tag, descr, pc, target))
        self._n_insns += 2 + descr.n_insns
        self._notes.append((tag, 1))
        self._tags.add(tag)

    def dispatch_event2(self, tag, descr, pc, target, descr2):
        self._events.append((EV_DISPATCH2, tag, descr, pc, target, descr2))
        self._n_insns += 2 + descr.n_insns + descr2.n_insns
        self._notes.append((tag, 1))
        self._tags.add(tag)

    def exec_bulk_branches(self, count, rate):
        if count <= 0:
            return  # the reference kernel is a no-op for empty bulks
        self._events.append((EV_BULK, count, rate))
        self._n_insns += count

    # -- fused events -------------------------------------------------------

    def branch_block_annot_run(self, pc, descr, tag, n):
        self._events.append((EV_BRBA, pc, descr, tag, n))
        self._n_insns += 1 + descr.n_insns + n
        self._notes.append((tag, n))
        self._tags.add(tag)

    def load_annot_run(self, slot, tag, n):
        self._events.append((EV_LOAD_ANNOT, slot, tag, n))
        self._n_insns += 1 + n
        self._notes.append((tag, n))
        self._tags.add(tag)
        self._track_slot(slot)

    def store_annot_run(self, slot, tag, n):
        self._events.append((EV_STORE_ANNOT, slot, tag, n))
        self._n_insns += 1 + n
        self._notes.append((tag, n))
        self._tags.add(tag)
        self._track_slot(slot)

    def quick_run(self, tag, descr, items, n_insns):
        self._events.append((EV_QUICK_RUN, tag, descr, tuple(items), n_insns))
        self._n_insns += n_insns
        self._notes.append((tag, len(items)))
        self._tags.add(tag)

    def dispatch_run(self, tag, descr, items, n_insns):
        self._events.append((EV_DISPATCH_RUN, tag, descr, tuple(items),
                             n_insns))
        self._n_insns += n_insns
        self._notes.append((tag, len(items)))
        self._tags.add(tag)

    def bc(self, counts_list, index):
        """Zero-cost bump of a host-side counter (trace block counts),
        kept ordered with the charges so a mid-replay limit raise leaves
        the counters exactly where the per-call path would."""
        self._events.append((EV_BC, counts_list, index))
        self._bc_list = counts_list
        self._bc_counts[index] = self._bc_counts.get(index, 0) + 1

    def _track_slot(self, slot):
        if slot >= self._n_slots:
            self._n_slots = slot + 1

    def build(self, label=None):
        """Snapshot the accumulated events as an immutable program.

        Does not reset the builder: calling mid-accumulation yields a
        prefix program sharing the event tuples built so far (the
        executor's guard-exit flushes)."""
        if not self._events:
            return None
        STATS["programs"] += 1
        STATS["events"] += len(self._events)
        return EventProgram(self._events, self._n_insns, self._notes,
                            self._tags, self._n_slots, self._bc_list,
                            sorted(self._bc_counts.items()),
                            label or self.label)


def quick_run_program(tag, descr, items, n_insns, label=None):
    """One-event program wrapping a quickened/tier-1 superinstruction run."""
    builder = ProgramBuilder(label)
    builder.quick_run(tag, descr, items, n_insns)
    return builder.build()


# ---------------------------------------------------------------------------
# Reference replayer: the python-backend semantics of a program, and the
# fallback every other backend gates to.  Calls only public Machine
# kernels, so listener notification, limit raises, and float order are
# the reference ones by construction.
# ---------------------------------------------------------------------------

def replay(machine, prog, operands=None):
    for ev in prog.events:
        kind = ev[0]
        if kind == EV_BC:
            ev[1][ev[2]] += 1
        elif kind == EV_BRBA:
            machine.branch_block_annot_run(ev[1], ev[2], ev[3], ev[4])
        elif kind == EV_LOAD:
            machine.load(operands[ev[1]])
        elif kind == EV_BRANCH_BLOCK:
            machine.branch_block(ev[1], ev[2])
        elif kind == EV_EXEC_BLOCK:
            machine.exec_block(ev[1])
        elif kind == EV_LOAD_ANNOT:
            machine.load_annot_run(operands[ev[1]], ev[2], ev[3])
        elif kind == EV_STORE_ANNOT:
            machine.store_annot_run(operands[ev[1]], ev[2], ev[3])
        elif kind == EV_STORE:
            machine.store(operands[ev[1]])
        elif kind == EV_ANNOT_RUN:
            machine.annot_run(ev[1], ev[2])
        elif kind == EV_BRANCH:
            machine.branch(ev[1], ev[2])
        elif kind == EV_CALL:
            machine.call(ev[1])
        elif kind == EV_RET:
            machine.ret(ev[1])
        elif kind == EV_QUICK_RUN:
            machine.quick_run(ev[1], ev[2], ev[3], ev[4])
        elif kind == EV_DISPATCH_RUN:
            machine.dispatch_run(ev[1], ev[2], ev[3], ev[4])
        elif kind == EV_DISPATCH:
            machine.dispatch_event(ev[1], ev[2], ev[3], ev[4])
        elif kind == EV_DISPATCH2:
            machine.dispatch_event2(ev[1], ev[2], ev[3], ev[4], ev[5])
        elif kind == EV_BULK:
            machine.exec_bulk_branches(ev[1], ev[2])
        else:
            raise ValueError("unknown event kind %r" % (kind,))


def _bc_inc(counts_list, index):
    counts_list[index] += 1


def compile_thunks(machine, prog):
    """Interpreted twin for the fast backend: pre-bind each event to its
    (already exec-specialized) kernel once, so replay is a flat loop of
    ``fn(*args)`` calls with no per-event decoding.

    Returns ``[(fn, args, slot)]`` where ``slot`` is None for events with
    static arguments, or the operand slot whose runtime value must be
    passed (load/store family; args then holds the trailing arguments).
    """
    thunks = []
    for ev in prog.events:
        kind = ev[0]
        if kind == EV_EXEC_BLOCK:
            thunks.append((machine.exec_block, (ev[1],), None))
        elif kind == EV_BRANCH_BLOCK:
            thunks.append((machine.branch_block, (ev[1], ev[2]), None))
        elif kind == EV_BRANCH:
            thunks.append((machine.branch, (ev[1], ev[2]), None))
        elif kind == EV_ANNOT_RUN:
            thunks.append((machine.annot_run, (ev[1], ev[2]), None))
        elif kind == EV_LOAD:
            thunks.append((machine.load, (), ev[1]))
        elif kind == EV_STORE:
            thunks.append((machine.store, (), ev[1]))
        elif kind == EV_CALL:
            thunks.append((machine.call, (ev[1],), None))
        elif kind == EV_RET:
            thunks.append((machine.ret, (ev[1],), None))
        elif kind == EV_DISPATCH:
            thunks.append((machine.dispatch_event, ev[1:], None))
        elif kind == EV_DISPATCH2:
            thunks.append((machine.dispatch_event2, ev[1:], None))
        elif kind == EV_BULK:
            thunks.append((machine.exec_bulk_branches, (ev[1], ev[2]), None))
        elif kind == EV_BRBA:
            thunks.append((machine.branch_block_annot_run, ev[1:], None))
        elif kind == EV_LOAD_ANNOT:
            thunks.append((machine.load_annot_run, (ev[2], ev[3]), ev[1]))
        elif kind == EV_STORE_ANNOT:
            thunks.append((machine.store_annot_run, (ev[2], ev[3]), ev[1]))
        elif kind == EV_QUICK_RUN:
            thunks.append((machine.quick_run, ev[1:], None))
        elif kind == EV_DISPATCH_RUN:
            thunks.append((machine.dispatch_run, ev[1:], None))
        elif kind == EV_BC:
            thunks.append((_bc_inc, (ev[1], ev[2]), None))
        else:
            raise ValueError("unknown event kind %r" % (kind,))
    return thunks


# ---------------------------------------------------------------------------
# Native lowering: flatten a program to the rt_exec_program word ISA.
# ``bid_of`` maps a BlockDescr to its registered native block id.
# ---------------------------------------------------------------------------

def _rate_bits(rate):
    """IEEE-754 bit pattern of a double, as a signed 64-bit int (the C
    side type-puns it back, so the bulk-miss rate round-trips exactly)."""
    return struct.unpack("<q", struct.pack("<d", rate))[0]


def lower_words(prog, bid_of):
    words = []
    append = words.extend
    for ev in prog.events:
        kind = ev[0]
        if kind == EV_EXEC_BLOCK:
            append((W_EXEC_BLOCK, bid_of(ev[1])))
        elif kind == EV_BRANCH_BLOCK:
            append((W_BRANCH_BLOCK, ev[1], bid_of(ev[2])))
        elif kind == EV_BRANCH:
            append((W_BRANCH, ev[1], 1 if ev[2] else 0))
        elif kind == EV_ANNOT_RUN:
            append((W_ANNOT, ev[2]))
        elif kind == EV_LOAD:
            append((W_LOAD, ev[1]))
        elif kind == EV_STORE:
            append((W_STORE, ev[1]))
        elif kind == EV_CALL:
            append((W_CALL, ev[1]))
        elif kind == EV_RET:
            append((W_RET, ev[1]))
        elif kind == EV_DISPATCH:
            append((W_DISPATCH, bid_of(ev[2]), ev[3], ev[4]))
        elif kind == EV_DISPATCH2:
            append((W_DISPATCH2, bid_of(ev[2]), bid_of(ev[5]), ev[3], ev[4]))
        elif kind == EV_BULK:
            append((W_BULK, ev[1], _rate_bits(ev[2])))
        elif kind == EV_BRBA:
            append((W_BRANCH_BLOCK, ev[1], bid_of(ev[2]), W_ANNOT, ev[4]))
        elif kind == EV_LOAD_ANNOT:
            append((W_LOAD, ev[1], W_ANNOT, ev[3]))
        elif kind == EV_STORE_ANNOT:
            append((W_STORE, ev[1], W_ANNOT, ev[3]))
        elif kind == EV_QUICK_RUN:
            # quick_run == per item dispatch_event(tag, b, pc, target)
            # then exec_block per handler charge (kernelspec docstring);
            # the batched form only hoists the associative integer adds,
            # so the expanded word stream retires bit-identically.
            bid = bid_of(ev[2])
            for pc, target, blocks in ev[3]:
                append((W_DISPATCH, bid, pc, target))
                for blk in blocks:
                    append((W_EXEC_BLOCK, bid_of(blk)))
        elif kind == EV_DISPATCH_RUN:
            # dispatch_run == per item dispatch_event2(tag, b, pc, target, b2).
            bid = bid_of(ev[2])
            for pc, target, b2 in ev[3]:
                append((W_DISPATCH2, bid, bid_of(b2), pc, target))
        elif kind == EV_BC:
            pass  # host-side; the caller applies prog.bc_totals
        else:
            raise ValueError("unknown event kind %r" % (kind,))
    return words


# ---------------------------------------------------------------------------
# Serialization + digest-keyed disk cache (trace programs).
#
# Events referencing BlockDescrs store the descr's frozen mix; loading
# rebuilds the descr through machine.block(mix), which memoizes, so a
# cached program shares descriptors (and their exec counts) with the
# rest of the run exactly as a freshly encoded one would.  Only the
# executor's event subset is serializable -- run-table programs are
# rebuilt in-memory (a single tuple; a disk round-trip costs more than
# re-encoding them).
# ---------------------------------------------------------------------------

_CACHE_VERSION = 1

# event kind -> positions holding a BlockDescr
_DESCR_SLOTS = {
    EV_EXEC_BLOCK: (1,),
    EV_BRANCH_BLOCK: (2,),
    EV_BRBA: (2,),
    EV_DISPATCH: (2,),
    EV_DISPATCH2: (2, 5),
}

_SERIALIZABLE = frozenset([
    EV_EXEC_BLOCK, EV_BRANCH_BLOCK, EV_BRANCH, EV_ANNOT_RUN, EV_LOAD,
    EV_STORE, EV_CALL, EV_RET, EV_DISPATCH, EV_DISPATCH2, EV_BULK,
    EV_BRBA, EV_LOAD_ANNOT, EV_STORE_ANNOT, EV_BC,
])


def program_to_jsonable(prog):
    events = []
    for ev in prog.events:
        kind = ev[0]
        if kind not in _SERIALIZABLE:
            raise ValueError("event kind %r is in-memory only" % (kind,))
        ev = list(ev)
        if kind == EV_BC:
            ev[1] = 0  # the counts list is reattached on load
        for pos in _DESCR_SLOTS.get(kind, ()):
            ev[pos] = [list(pair) for pair in ev[pos].mix]
        events.append(ev)
    return {
        "events": events,
        "n_insns": prog.n_insns,
        "notes": [list(pair) for pair in prog.notes],
        "tags": sorted(prog.tags),
        "n_slots": prog.n_slots,
        "bc_totals": [list(pair) for pair in prog.bc_totals],
        "label": prog.label,
    }


def program_from_jsonable(obj, machine, bc_list=None):
    events = []
    for ev in obj["events"]:
        ev = list(ev)
        if ev[0] == EV_BC:
            ev[1] = bc_list
        for pos in _DESCR_SLOTS.get(ev[0], ()):
            mix = tuple((pair[0], pair[1]) for pair in ev[pos])
            ev[pos] = machine.block(mix)
        events.append(tuple(ev))
    return EventProgram(events, obj["n_insns"],
                        [tuple(pair) for pair in obj["notes"]],
                        obj["tags"], obj["n_slots"], bc_list,
                        [tuple(pair) for pair in obj.get("bc_totals", ())],
                        obj.get("label"))


def _cache_path(digest):
    from repro.backend import native
    return os.path.join(native.cache_dir(), "eventprog-%s.json" % digest)


def load_cached_trace(digest):
    """Return the cached ``{"lines", "programs", "n_slots", "meta"}``
    payload for a transformed trace, or None (counting hit/miss)."""
    path = _cache_path(digest)
    try:
        with open(path, "r") as handle:
            payload = json.load(handle)
    except (OSError, IOError, ValueError):
        if os.path.exists(path):
            STATS["cache_errors"] += 1
        STATS["cache_misses"] += 1
        return None
    if payload.get("version") != _CACHE_VERSION:
        STATS["cache_errors"] += 1
        STATS["cache_misses"] += 1
        return None
    STATS["cache_hits"] += 1
    return payload


def store_cached_trace(digest, payload):
    path = _cache_path(digest)
    payload = dict(payload, version=_CACHE_VERSION)
    try:
        directory = os.path.dirname(path)
        if not os.path.isdir(directory):
            os.makedirs(directory)
        tmp = "%s.tmp.%d" % (path, os.getpid())
        with open(tmp, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
    except (OSError, IOError):
        STATS["cache_errors"] += 1
