"""TinyRkt reader unit tests: tokenizer and s-expression parser."""

import pytest

from repro.core.errors import CompilationError
from repro.rktlang.reader import Symbol, parse_all, tokenize


# -- tokenizer ------------------------------------------------------------------


def test_tokenize_skips_whitespace_and_comments():
    tokens = tokenize("  1 ; a comment\n 2 ;; another\n")
    assert tokens == [("atom", "1"), ("atom", "2")]


def test_tokenize_comment_at_eof_without_newline():
    assert tokenize("1 ; trailing") == [("atom", "1")]


def test_tokenize_brackets_normalize_to_parens():
    assert tokenize("[a]") == ["(", ("atom", "a"), ")"]


def test_tokenize_string_escapes():
    tokens = tokenize(r'"a\nb\t\"q\\z"')
    assert tokens == [("str", 'a\nb\t"q\\z')]


def test_tokenize_unknown_escape_passes_through():
    assert tokenize(r'"a\qb"') == [("str", "aqb")]


def test_tokenize_unterminated_string_raises():
    with pytest.raises(CompilationError):
        tokenize('"never closed')


def test_tokenize_atom_stops_at_delimiters():
    tokens = tokenize('(fn"s")')
    assert tokens == ["(", ("atom", "fn"), ("str", "s"), ")"]


# -- parser ---------------------------------------------------------------------


def test_parse_atoms():
    forms = parse_all("1 2.5 -3 #t #f hello")
    assert forms[0] == 1 and isinstance(forms[0], int)
    assert forms[1] == 2.5 and isinstance(forms[1], float)
    assert forms[2] == -3
    assert forms[3] is True
    assert forms[4] is False
    assert isinstance(forms[5], Symbol)
    assert forms[5] == "hello"


def test_parse_char_literals():
    assert parse_all(r"#\a")[0] == ("char", "a")
    assert parse_all(r"#\space")[0] == ("char", " ")
    assert parse_all(r"#\newline")[0] == ("char", "\n")


def test_parse_string_literal_is_tagged():
    assert parse_all('"hi"')[0] == ("strlit", "hi")


def test_parse_nested_lists():
    (form,) = parse_all("(a (b (c)) d)")
    assert isinstance(form, list)
    assert form[0] == "a"
    assert form[1] == ["b", ["c"]]
    assert form[2] == "d"


def test_parse_quote_sugar():
    (form,) = parse_all("'(1 2)")
    assert form[0] == "quote"
    assert isinstance(form[0], Symbol)
    assert form[1] == [1, 2]


def test_parse_quote_of_atom():
    (form,) = parse_all("'x")
    assert form == [Symbol("quote"), Symbol("x")]


def test_parse_multiple_toplevel_forms():
    forms = parse_all("(define x 1) (display x)")
    assert len(forms) == 2


def test_parse_missing_close_paren_raises():
    with pytest.raises(CompilationError):
        parse_all("(a (b)")


def test_parse_unexpected_close_paren_raises():
    with pytest.raises(CompilationError):
        parse_all(")")


def test_parse_quote_at_eof_raises():
    with pytest.raises(CompilationError):
        parse_all("'")


def test_symbol_distinct_from_string_literal():
    sym, lit = parse_all('abc "abc"')
    assert isinstance(sym, Symbol)
    assert lit == ("strlit", "abc")
    assert sym != lit
