; spectralnorm (CLBG, Racket): power iteration, pure float arithmetic.
(define N 50)

(define (eval-a i j)
  (/ 1.0 (+ (/ (* (+ i j) (+ i j 1)) 2.0) i 1.0)))

(define (eval-a-times-u u out n)
  (do ((i 0 (+ i 1))) ((= i n) #t)
    (let loop ((j 0) (total 0.0))
      (if (= j n)
          (vector-set! out i total)
          (loop (+ j 1) (+ total (* (eval-a i j) (vector-ref u j))))))))

(define (eval-at-times-u u out n)
  (do ((i 0 (+ i 1))) ((= i n) #t)
    (let loop ((j 0) (total 0.0))
      (if (= j n)
          (vector-set! out i total)
          (loop (+ j 1) (+ total (* (eval-a j i) (vector-ref u j))))))))

(define (eval-ata-times-u u out tmp n)
  (eval-a-times-u u tmp n)
  (eval-at-times-u tmp out n))

(define (main n)
  (define u (make-vector n 1.0))
  (define v (make-vector n 0.0))
  (define tmp (make-vector n 0.0))
  (do ((i 0 (+ i 1))) ((= i 10) #t)
    (eval-ata-times-u u v tmp n)
    (eval-ata-times-u v u tmp n))
  (let loop ((i 0) (vbv 0.0) (vv 0.0))
    (if (= i n)
        (begin
          (display "spectralnorm ")
          (display (sqrt (/ vbv vv)))
          (newline))
        (loop (+ i 1)
              (+ vbv (* (vector-ref u i) (vector-ref v i)))
              (+ vv (* (vector-ref v i) (vector-ref v i)))))))

(main N)
