# spambayes: naive-Bayes spam scoring — tokenization, dict-counted
# training, and float probability combination. Dict + string + float mix.
N = 60

SPAM_WORDS = ["buy", "free", "offer", "winner", "cash", "click",
              "now", "deal", "prize", "urgent"]
HAM_WORDS = ["meeting", "report", "project", "review", "data",
             "schedule", "notes", "team", "draft", "plan"]


def make_message(seed, spammy):
    words = []
    state = seed
    for i in range(30):
        state = (state * 1103515245 + 12345) % 2147483648
        roll = state % 10
        if spammy:
            if roll < 7:
                words.append(SPAM_WORDS[state % 10])
            else:
                words.append(HAM_WORDS[state % 10])
        else:
            if roll < 7:
                words.append(HAM_WORDS[state % 10])
            else:
                words.append(SPAM_WORDS[state % 10])
    return " ".join(words)


def tokenize(text):
    return text.split(" ")


class Classifier:
    def __init__(self):
        self.spam_counts = {}
        self.ham_counts = {}
        self.n_spam = 0
        self.n_ham = 0

    def train(self, text, is_spam):
        for token in tokenize(text):
            if is_spam:
                self.spam_counts[token] = \
                    self.spam_counts.get(token, 0) + 1
            else:
                self.ham_counts[token] = \
                    self.ham_counts.get(token, 0) + 1
        if is_spam:
            self.n_spam += 1
        else:
            self.n_ham += 1

    def spamprob(self, text):
        # Combine per-token spam probabilities (Robinson-style).
        product = 1.0
        inverse = 1.0
        count = 0
        for token in tokenize(text):
            spam_count = self.spam_counts.get(token, 0)
            ham_count = self.ham_counts.get(token, 0)
            total = spam_count + ham_count
            if total == 0:
                p = 0.5
            else:
                p = (spam_count + 0.45) / (total + 0.9)
            product *= p
            inverse *= 1.0 - p
            count += 1
        if count == 0:
            return 0.5
        return product / (product + inverse)


def run_spambayes(rounds):
    classifier = Classifier()
    for i in range(rounds):
        classifier.train(make_message(i * 3 + 1, True), True)
        classifier.train(make_message(i * 5 + 2, False), False)
    correct = 0
    tests = 0
    score_sum = 0.0
    for i in range(rounds * 2):
        spammy = i % 2 == 0
        prob = classifier.spamprob(make_message(i * 7 + 3, spammy))
        score_sum += prob
        tests += 1
        if (prob > 0.5) == spammy:
            correct += 1
    print("spambayes %d/%d %.6f" % (correct, tests, score_sum))


run_spambayes(N)
