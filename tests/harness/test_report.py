import os

from repro.harness import report


def test_render_table_alignment():
    text = report.render_table(
        ["name", "value"], [("a", 1), ("long-name", 22)], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "long-name" in text
    assert all(len(line) >= 4 for line in lines[1:])


def test_render_bars():
    text = report.render_bars([("x", 1.0), ("y", 0.5)], width=10)
    lines = text.splitlines()
    assert lines[0].count("#") == 10
    assert lines[1].count("#") == 5


def test_render_bars_empty():
    assert report.render_bars([], title="nothing") == "nothing"


def test_render_stacked():
    text = report.render_stacked(
        [("row", {"a": 0.5, "b": 0.5})], ["a", "b"], width=10)
    assert "legend" in text
    assert "#####" in text


def test_render_series():
    points = [(0, 0.0), (50, 5.0), (100, 10.0)]
    text = report.render_series(points, width=20, height=5, title="S")
    assert text.startswith("S")
    assert "*" in text


def test_render_series_empty():
    assert report.render_series([], title="S") == "S"


def test_save_text_and_csv(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    path = report.save_text("out.txt", "hello")
    assert os.path.exists(path)
    with open(path) as handle:
        assert handle.read() == "hello\n"
    csv_path = report.save_csv("out.csv", ["a", "b"], [(1, 2), (3, 4)])
    with open(csv_path) as handle:
        assert handle.read() == "a,b\n1,2\n3,4\n"
