"""The experiment runner: one entry point for every VM configuration.

Runs a benchmark program on one of the seven VM configurations the paper
compares and returns a :class:`RunResult` with every measurement the
tables/figures need (times, counters, phase windows, warmup timelines,
AOT-call profiles, JIT-IR statistics).  Results are cached at two
levels, like the paper's single instrumented runs feeding every table:

* in-process (``_CACHE``), holding the live RunResult;
* on disk (:mod:`repro.harness.store`), holding the serialized
  measurements plus compact registry/jitlog summaries, keyed by the run
  parameters and a digest of the simulator source tree.

Independent simulations can be fanned out over worker processes with
:func:`run_many`; workers ship the same serialized payload back that
the store persists.
"""

import gc
import os
from concurrent.futures import ProcessPoolExecutor

from repro import telemetry
from repro.benchprogs import registry
from repro.backend import eventprog as eventprog_mod
from repro.core.config import (CLOCK_HZ, SystemConfig, _default_backend,
                               _default_eventprog, _default_quicken,
                               _default_tier1)
from repro.harness import store
from repro.interp.context import VMContext
from repro.jit import executor, jitlog
from repro.nativeref.kernels import run_native
from repro.pintool.tool import PinTool
from repro.pylang.cpref import CpRef
from repro.pylang.interp import PyVM
from repro.rktlang.vm import RacketRef, RktVM
from repro.uarch.machine import SimulationLimitReached

VM_KINDS = ("cpython", "pypy_nojit", "pypy", "racket", "pycket_nojit",
            "pycket", "native")

_JIT_VMS = {"pypy": PyVM, "pypy_nojit": PyVM,
            "pycket": RktVM, "pycket_nojit": RktVM}
_REF_VMS = {"cpython": CpRef, "racket": RacketRef}


class RunResult(object):
    """Everything measured from one simulated benchmark run."""

    def __init__(self, program, vm_kind, n):
        self.program = program
        self.vm_kind = vm_kind
        self.n = n
        # Which simulation backend actually ran (the machine class's
        # ``backend`` attribute, so a native->fast degrade is visible).
        self.backend = None
        self.output = ""
        self.cycles = 0.0
        self.instructions = 0
        self.ipc = 0.0
        self.mpki = 0.0
        self.truncated = False
        self.phase_windows = None
        self.phase_breakdown = None
        self.timeline_segments = None
        self.bytecodes = 0
        self.bc_timeline = None
        self.aot_rows = []
        # Tier-1 promotion summary (TierManager.stats()) or None when
        # the baseline threaded-code tier was off for this run.
        self.tier_stats = None
        # Event-program subsystem deltas for this run (programs built,
        # events encoded, native fallbacks, trace-transform cache
        # hits/misses) or None when config.eventprog was off.
        self.eventprog_stats = None
        self.registry = None
        self.jitlog_obj = None
        self.gc_stats = None
        # Compact summaries standing in for the live registry when the
        # result was restored from the store or a worker process.
        self.ir_summary = None
        self.category_summary = None
        self.node_hist_summary = None
        self.asm_per_node_summary = None
        self.registry_summary = None
        # Telemetry event stream of the run's VM session (only set when
        # telemetry was enabled while the simulation actually executed).
        self.telemetry_events = None

    @property
    def seconds(self):
        return self.cycles / CLOCK_HZ

    @property
    def bytecodes_per_insn(self):
        if not self.instructions:
            return 0.0
        return self.bytecodes / self.instructions

    def __repr__(self):
        return "<RunResult %s/%s t=%.4fs>" % (
            self.program, self.vm_kind, self.seconds)


_CACHE = {}

# Number of real simulations executed in this process (store hits and
# in-process cache hits do not count).
_SIM_COUNT = 0


def clear_cache():
    _CACHE.clear()


def simulation_count():
    """How many real simulations this process has executed."""
    return _SIM_COUNT


def _resolve_program(program, language=None):
    if not isinstance(program, str):
        return program
    if language in ("python", "tinypy"):
        return registry.py_program(program)
    if language in ("racket", "tinyrkt"):
        return registry.rkt_program(program)
    try:
        return registry.py_program(program)
    except KeyError:
        return registry.rkt_program(program)


def _base_config(max_instructions, jit_enabled, overrides, quicken=None,
                 backend=None, tier1=None, eventprog=None):
    config = SystemConfig()
    config.max_instructions = max_instructions
    config.jit.enabled = jit_enabled
    if quicken is not None:
        config.quicken = bool(quicken)
    if backend is not None:
        config.sim_backend = backend
    if tier1 is not None:
        config.tier1 = bool(tier1)
    if eventprog is not None:
        config.eventprog = bool(eventprog)
    if overrides:
        for key, value in overrides.items():
            if hasattr(config.jit, key):
                setattr(config.jit, key, value)
            elif hasattr(config.uarch, key):
                setattr(config.uarch, key, value)
            elif hasattr(config.gc, key):
                setattr(config.gc, key, value)
            else:
                raise KeyError(key)
    return config


def _result_key(program, vm_kind, n, timeline, max_instructions,
                jit_overrides, predictor, quicken=None, backend=None,
                tier1=None, eventprog=None):
    overrides_key = tuple(sorted((jit_overrides or {}).items()))
    # Quickening is proven counter-neutral, but on/off runs must not
    # share cache entries: the equivalence suite relies on both actually
    # simulating.  Same story for the backend: the compiled backends are
    # proven bit-identical, but the equivalence suite compares real runs.
    # Event-programs are in the same family (counter-neutral by
    # construction, cache-keyed so equivalence runs are real).  The
    # tier, by contrast, *changes* simulated results, so it keys the
    # caches for correctness, not just hygiene.
    if quicken is None:
        quicken = _default_quicken()
    if backend is None:
        backend = _default_backend()
    if tier1 is None:
        tier1 = _default_tier1()
    if eventprog is None:
        eventprog = _default_eventprog()
    return (program.language, program.name, vm_kind, n, timeline,
            max_instructions, overrides_key, predictor, bool(quicken),
            backend, bool(tier1), bool(eventprog))


# -- result serialization (store payloads and worker IPC) -----------------------

_PLAIN_FIELDS = (
    "program", "vm_kind", "n", "backend", "output", "cycles",
    "instructions", "ipc",
    "mpki", "truncated", "phase_windows", "phase_breakdown",
    "timeline_segments", "bytecodes", "bc_timeline", "aot_rows", "gc_stats",
    "tier_stats", "eventprog_stats", "telemetry_events",
)

_SUMMARY_FIELDS = (
    "ir_summary", "category_summary", "node_hist_summary",
    "asm_per_node_summary", "registry_summary",
)


def _result_to_payload(result):
    """Serialize a RunResult to a plain picklable dict.

    Live objects (trace registry, jitlog, GC) are replaced by the
    compact summaries every downstream consumer reads.
    """
    payload = {field: getattr(result, field) for field in _PLAIN_FIELDS}
    if result.registry is not None:
        payload["ir_summary"] = ir_stats(result)
        payload["category_summary"] = category_breakdown(result)
        payload["node_hist_summary"] = node_histogram(result)
        payload["asm_per_node_summary"] = asm_per_node(result)
        kinds = {}
        for trace in result.registry.traces:
            kinds[trace.kind] = kinds.get(trace.kind, 0) + 1
        payload["registry_summary"] = {
            "n_traces": len(result.registry.traces),
            "bridges": kinds.get("bridge", 0),
            "kinds": kinds,
        }
    else:
        for field in _SUMMARY_FIELDS:
            payload[field] = getattr(result, field)
    return payload


def _result_from_payload(payload):
    result = RunResult(payload["program"], payload["vm_kind"], payload["n"])
    for field in _PLAIN_FIELDS + _SUMMARY_FIELDS:
        if field in payload:
            setattr(result, field, payload[field])
    return result


def _store_probe(key):
    store_obj = store.default_store()
    if store_obj is None:
        return None
    payload = store_obj.get(key)
    if payload is None:
        return None
    return _result_from_payload(payload)


def _simulate(result, program, vm_kind, n, source, timeline,
              max_instructions, jit_overrides, predictor, quicken,
              backend, tier1, eventprog, label, bus):
    """Run one simulation, filling ``result``; returns the telemetry
    session (or None).  Callers hold the host GC pinned."""
    session = None
    if vm_kind == "native":
        # The reference VMs have no dispatch loop to thread: tier1 is a
        # meta-tracing-framework knob and is ignored here.
        config = _base_config(max_instructions, False, jit_overrides,
                              quicken=quicken, backend=backend)
        native = run_native(program.name, n, config, predictor=predictor)
        result.truncated = native.truncated
        result.output = native.stdout()
        _fill_machine(result, native.machine)
    elif vm_kind in _REF_VMS:
        config = _base_config(max_instructions, False, jit_overrides,
                              quicken=quicken, backend=backend)
        vm = _REF_VMS[vm_kind](config, predictor=predictor)
        if bus is not None:
            from repro.telemetry.vmhook import VMTelemetry

            session = VMTelemetry(vm.machine, label=label)
        tool = PinTool(vm.machine, record_timeline=timeline,
                       bucket_insns=config.timeline_bucket_insns
                       if timeline else 0, telemetry=session)
        try:
            vm.run_source(source)
        except SimulationLimitReached:
            result.truncated = True
        tool.finish()
        result.output = vm.stdout()
        _fill_machine(result, vm.machine)
        _fill_pintool(result, tool)
    else:
        jit_enabled = not vm_kind.endswith("_nojit")
        config = _base_config(max_instructions, jit_enabled, jit_overrides,
                              quicken=quicken, backend=backend,
                              tier1=tier1, eventprog=eventprog)
        eventprog_before = (eventprog_mod.stats_snapshot()
                            if config.eventprog else None)
        ctx = VMContext(config, predictor=predictor, telemetry_label=label)
        session = ctx.telemetry
        tool = PinTool(ctx.machine, record_timeline=timeline,
                       bucket_insns=config.timeline_bucket_insns
                       if timeline else 0, telemetry=session)
        vm = _JIT_VMS[vm_kind](ctx)
        try:
            vm.run_source(source)
        except SimulationLimitReached:
            result.truncated = True
        tool.finish()
        for trace in ctx.registry.traces:
            executor.sync_exec_counts(trace)
        result.output = vm.stdout()
        _fill_machine(result, ctx.machine)
        _fill_pintool(result, tool)
        result.registry = ctx.registry
        result.jitlog_obj = ctx.jitlog
        result.gc_stats = ctx.gc.stats()
        if vm.driver.tier is not None:
            result.tier_stats = vm.driver.tier.stats()
        if eventprog_before is not None:
            after = eventprog_mod.stats_snapshot()
            result.eventprog_stats = {
                key: after[key] - eventprog_before[key]
                for key in after}
        result.aot_rows = tool.aotcalls.all_rows(ctx.machine.cycles)
    return session


def run_program(program, vm_kind, n=None, timeline=False,
                max_instructions=0, jit_overrides=None,
                predictor="gshare", use_cache=True, language=None,
                quicken=None, backend=None, tier1=None, eventprog=None):
    """Run ``program`` (a BenchProgram or name) on one VM configuration.

    ``quicken`` forces the host quickening fast path on/off for this run
    (None: the config default, i.e. on unless REPRO_QUICKEN=0).
    ``backend`` selects the simulation backend — "python", "fast" or
    "native" (None: the config default, i.e. REPRO_BACKEND or
    "python").  The backend is a host-side implementation detail proven
    counter-neutral; it still keys the result caches so equivalence
    suites compare real runs.
    ``tier1`` forces the baseline threaded-code tier on/off (None: the
    config default, i.e. off unless REPRO_TIER1=1).  Unlike the two
    knobs above the tier changes *simulated* results — that is the
    measurement.
    ``eventprog`` forces resident event-programs on/off (None: the
    config default, i.e. off unless REPRO_EVENTPROG=1).  Like the
    backend it is a host-side detail proven counter-neutral, and like
    the backend it keys the result caches.
    """
    global _SIM_COUNT
    program = _resolve_program(program, language)
    if n is None:
        n = program.default_n
    bus = telemetry.BUS
    if bus is not None:
        # A telemetry recording is a measurement run: never serve it
        # from (or publish it to) the result caches — the cached
        # payloads carry no event streams.
        use_cache = False
    key = _result_key(program, vm_kind, n, timeline, max_instructions,
                      jit_overrides, predictor, quicken, backend, tier1,
                      eventprog)
    if use_cache:
        if key in _CACHE:
            return _CACHE[key]
        restored = _store_probe(key)
        if restored is not None:
            _CACHE[key] = restored
            return restored

    source = program.source(n=n)
    result = RunResult(program.name, vm_kind, n)
    _SIM_COUNT += 1
    label = "%s/%s" % (program.name, vm_kind)
    session = None
    # SimGC estimates nursery survival by weakref-sampling live guest
    # objects, so sampled-object death must be refcount-driven to be
    # deterministic: if the *host* cyclic collector ran mid-simulation
    # it would fire at process-allocation-count boundaries, making the
    # survivor estimate — and thus cycles and instruction counts —
    # depend on whatever else the process allocated before this run.
    # Collect to a clean slate, then keep the host collector off for
    # the duration of the simulation.
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    if bus is not None:
        bus.begin("run_program", "harness.runner",
                  {"program": program.name, "vm": vm_kind, "n": n,
                   "backend": backend or _default_backend(),
                   "tier": "tier1" if (tier1 if tier1 is not None
                                      else _default_tier1()) else "off",
                   "eventprog": bool(eventprog if eventprog is not None
                                     else _default_eventprog())})

    try:
        session = _simulate(result, program, vm_kind, n, source, timeline,
                            max_instructions, jit_overrides, predictor,
                            quicken, backend, tier1, eventprog, label, bus)
    finally:
        if gc_was_enabled:
            gc.enable()

    if bus is not None:
        if session is not None:
            session.finish()
            result.telemetry_events = session.events()
        bus.count("harness.runner.simulations")
        bus.end("run_program", args={
            "cycles": result.cycles,
            "instructions": result.instructions,
            "truncated": result.truncated,
        })

    if use_cache:
        _CACHE[key] = result
        store_obj = store.default_store()
        if store_obj is not None:
            store_obj.put(key, _result_to_payload(result))
    return result


# -- parallel fan-out -----------------------------------------------------------


def job(program, vm_kind, n=None, timeline=False, max_instructions=0,
        jit_overrides=None, predictor="gshare", language=None,
        quicken=None, backend=None, tier1=None, eventprog=None):
    """Build a picklable job spec for :func:`run_many`."""
    program = _resolve_program(program, language)
    return {
        "language": program.language,
        "program": program.name,
        "vm_kind": vm_kind,
        "n": n if n is not None else program.default_n,
        "timeline": timeline,
        "max_instructions": max_instructions,
        "jit_overrides": dict(jit_overrides or {}),
        "predictor": predictor,
        "quicken": quicken,
        "backend": backend,
        "tier1": tier1,
        "eventprog": eventprog,
    }


def _job_key(spec):
    program = _resolve_program(spec["program"], spec["language"])
    return _result_key(program, spec["vm_kind"], spec["n"],
                       spec["timeline"], spec["max_instructions"],
                       spec["jit_overrides"], spec["predictor"],
                       spec.get("quicken"), spec.get("backend"),
                       spec.get("tier1"), spec.get("eventprog"))


def _run_job(spec):
    """Worker-process entry: simulate one job, return its payload.

    The backend travels in the spec, not the environment: a worker
    process re-probes native availability itself (the compiled runtime
    is dlopened from the digest-keyed cache, so only the very first
    build ever pays the compiler).
    """
    if spec.pop("telemetry", False):
        # The parent is recording: re-enable telemetry in this worker so
        # the payload ships an event stream back for merging.
        telemetry.enable()
    result = run_program(
        spec["program"], spec["vm_kind"], n=spec["n"],
        timeline=spec["timeline"],
        max_instructions=spec["max_instructions"],
        jit_overrides=spec["jit_overrides"],
        predictor=spec["predictor"], language=spec["language"],
        quicken=spec.get("quicken"), backend=spec.get("backend"),
        tier1=spec.get("tier1"), eventprog=spec.get("eventprog"))
    return _result_to_payload(result)


def run_many(jobs, workers=None):
    """Run many jobs (see :func:`job`), fanning misses out to workers.

    Deduplicates jobs, serves what it can from the in-process cache and
    the persistent store, and simulates only the rest — in this process
    when ``workers <= 1``, otherwise on a process pool.  Results enter
    ``_CACHE``, so later ``run_program`` calls are free.  Returns one
    RunResult per input job, in order.

    When telemetry is enabled every job is simulated fresh (no cache or
    store probes) and workers record their own event streams, which come
    back attached to each RunResult for :func:`merged_timeline`.
    """
    recording = telemetry.BUS is not None
    specs = [dict(spec) for spec in jobs]
    keys = [_job_key(spec) for spec in specs]
    if recording:
        telemetry.BUS.begin("run_many", "harness.runner",
                            {"jobs": len(specs)})
    results = {}
    pending = {}
    for spec, key in zip(specs, keys):
        if key in results or key in pending:
            continue
        cached = None
        if not recording:
            cached = _CACHE.get(key)
            if cached is None:
                cached = _store_probe(key)
                if cached is not None:
                    _CACHE[key] = cached
        if cached is not None:
            results[key] = cached
        else:
            pending[key] = spec
    if pending:
        if workers is None:
            workers = os.cpu_count() or 1
        items = list(pending.items())
        if workers <= 1 or len(items) == 1:
            for key, spec in items:
                results[key] = run_program(
                    spec["program"], spec["vm_kind"], n=spec["n"],
                    timeline=spec["timeline"],
                    max_instructions=spec["max_instructions"],
                    jit_overrides=spec["jit_overrides"],
                    predictor=spec["predictor"],
                    language=spec["language"],
                    quicken=spec.get("quicken"),
                    backend=spec.get("backend"),
                    tier1=spec.get("tier1"),
                    eventprog=spec.get("eventprog"))
        else:
            job_specs = [dict(spec) for _, spec in items]
            if recording:
                for spec in job_specs:
                    spec["telemetry"] = True
            with ProcessPoolExecutor(
                    max_workers=min(workers, len(items))) as pool:
                payloads = list(pool.map(_run_job, job_specs))
            store_obj = None if recording else store.default_store()
            for (key, _spec), payload in zip(items, payloads):
                result = _result_from_payload(payload)
                if not recording:
                    _CACHE[key] = result
                if store_obj is not None:
                    store_obj.put(key, payload)
                results[key] = result
    if recording:
        telemetry.BUS.end("run_many", args={"simulated": len(pending)})
    return [results[key] for key in keys]


def merged_timeline(results, include_harness=True):
    """Merge the per-run telemetry streams of ``results`` into one
    event list (one Chrome-trace pid per run), optionally including the
    harness process's own bus stream."""
    from repro.telemetry.merge import merge_runs

    event_lists = []
    labels = []
    for result in results:
        if result.telemetry_events:
            event_lists.append(result.telemetry_events)
            labels.append("%s/%s" % (result.program, result.vm_kind))
    merged = merge_runs(event_lists, labels=labels)
    if include_harness and telemetry.BUS is not None:
        merged = list(telemetry.BUS.events()) + merged
    return merged


def _fill_machine(result, machine):
    result.backend = type(machine).backend
    result.cycles = machine.cycles
    result.instructions = machine.instructions
    result.ipc = machine.ipc
    result.mpki = machine.branch_mpki


def _fill_pintool(result, tool):
    result.phase_windows = tool.phases.windows
    result.phase_breakdown = tool.phases.breakdown()
    if tool.phases.record_timeline:
        result.timeline_segments = tool.phases.timeline_segments()
    result.bytecodes = tool.bcrate.bytecodes
    if tool.bcrate.bucket_insns:
        result.bc_timeline = list(tool.bcrate.timeline)


# -- JIT-IR statistics helpers (jitlog- or summary-backed) ----------------------


def ir_stats(result):
    """Figure 6 statistics for a JIT run."""
    reg = result.registry
    if reg is None:
        return dict(result.ir_summary or {
            "nodes_compiled": 0, "hot_fraction": 0.0,
            "nodes_per_minsn": 0.0})
    return {
        "nodes_compiled": jitlog.total_ir_nodes_compiled(reg),
        "hot_fraction": jitlog.hot_node_fraction(reg),
        "nodes_per_minsn": jitlog.ir_nodes_per_minsn(
            reg, result.instructions),
    }


def category_breakdown(result):
    if result.registry is None:
        return dict(result.category_summary or {})
    return jitlog.dynamic_category_breakdown(result.registry)


def node_histogram(result):
    if result.registry is None:
        return dict(result.node_hist_summary or {})
    return jitlog.dynamic_node_type_histogram(result.registry)


def asm_per_node(result):
    if result.registry is None:
        return dict(result.asm_per_node_summary or {})
    return jitlog.asm_insns_per_node_type(result.registry)


def bridge_count(result):
    """Number of compiled bridges (live registry or stored summary)."""
    if result.registry is None:
        return (result.registry_summary or {}).get("bridges", 0)
    return sum(1 for t in result.registry.traces if t.kind == "bridge")
