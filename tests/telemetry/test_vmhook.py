"""VM-session telemetry integration: spans from annotation tags.

Runs a small hot loop on the framework VM with a VMTelemetry session
attached and checks the recorded stream: span names per JIT phase,
metric counters consistent with the trace registry, phase self-times
agreeing with the PinTool phase windows, and the disabled path staying
listener-free.
"""

import pytest

from repro import telemetry
from repro.core.config import SystemConfig
from repro.interp.context import VMContext
from repro.pintool.tool import PinTool
from repro.pylang.interp import PyVM
from repro.telemetry.export import self_time_summary
from repro.telemetry.vmhook import VMTelemetry

SOURCE = """
acc = 0
data = []
for i in range(600):
    acc = acc + i * 3 - (acc >> 2)
    if i % 3 == 0:
        acc = acc ^ 5
    data.append(i)
    if len(data) > 64:
        data = []
print(acc)
"""


@pytest.fixture
def recorded():
    cfg = SystemConfig()
    cfg.jit.hot_loop_threshold = 8
    cfg.jit.bridge_threshold = 3
    ctx = VMContext(cfg)
    session = VMTelemetry(ctx.machine, label="unit/pypy")
    ctx.telemetry = session
    ctx.gc.telemetry = session
    tool = PinTool(ctx.machine, telemetry=session)
    vm = PyVM(ctx)
    vm.driver.telemetry = session
    vm.run_source(SOURCE)
    tool.finish()
    session.finish()
    return ctx, session.events()


def test_span_names_cover_jit_phases(recorded):
    ctx, events = recorded
    names = {e["name"] for e in events if e["type"] == "span"}
    assert {"run", "trace", "optimize", "assemble", "jit"} <= names


def test_counters_match_registry(recorded):
    ctx, events = recorded
    (metrics,) = [e for e in events if e["type"] == "metrics"]
    counters = metrics["metrics"]["counters"]
    assert counters["jit.tracer.traces_compiled"] == \
        len(ctx.registry.traces)
    assert counters["interp.jitdriver.trace_entries"] >= 1
    assert counters["jit.optimizer.ops_out"] <= \
        counters["jit.optimizer.ops_in"]


def test_phase_self_times_agree_with_pintool_windows(recorded):
    ctx, events = recorded
    summary = self_time_summary(events, by="phase")
    (windows,) = [e for e in events
                  if e["type"] == "instant" and e["name"] == "phase_windows"]
    for phase, row in summary.items():
        expected = windows["args"][phase]["cycles"]
        assert abs(row["self"] - expected) <= \
            max(1.0, 1e-6 * abs(expected)), phase


def test_spans_timestamped_in_machine_cycles(recorded):
    ctx, events = recorded
    spans = [e for e in events if e["type"] == "span"]
    assert max(e["ts"] + e["dur"] for e in spans) <= ctx.machine.cycles
    meta = events[0]
    assert meta["ticks_per_us"] == pytest.approx(3200.0)
    assert meta["process_name"] == "unit/pypy"


def test_session_finish_detaches_listeners():
    cfg = SystemConfig()
    ctx = VMContext(cfg)
    baseline = sum(len(v) for v in ctx.machine._tag_listeners.values())
    session = VMTelemetry(ctx.machine, label="x")
    attached = sum(len(v) for v in ctx.machine._tag_listeners.values())
    assert attached > baseline
    session.finish()
    detached = sum(len(v) for v in ctx.machine._tag_listeners.values())
    assert detached == baseline


def test_disabled_telemetry_registers_nothing():
    assert telemetry.BUS is None  # default state in the test process
    cfg = SystemConfig()
    ctx = VMContext(cfg)
    assert ctx.telemetry is None
    assert ctx.gc.telemetry is None


def test_enable_disable_toggle():
    try:
        telemetry.enable()
        assert telemetry.BUS is not None
        assert telemetry.enabled()
        ctx = VMContext(SystemConfig())
        assert ctx.telemetry is not None
        ctx.telemetry.finish()
    finally:
        telemetry.disable()
    assert telemetry.BUS is None
    assert not telemetry.enabled()
