"""The ``fast`` backend: exec-specialized Python kernels per machine.

A :class:`FastMachine` is a :class:`~repro.uarch.machine.Machine` whose
hot event methods are replaced, per instance, by closures compiled from
:mod:`repro.backend.kernelspec`.  The specialization wins come from
three places:

* **constant binding** — issue width, penalties, the bulk miss rate,
  the class-count list, predictor tables and L1 internals are closure
  locals instead of per-call ``self`` attribute loads;
* **cached listener gating** — the reference kernels re-derive the
  listener/runner routing from two dict lookups on every call; the
  specialized kernels cache the decision per tag, keyed on the
  machine's ``_listener_epoch`` (bumped by every listener add/remove);
* **no bound-method dispatch** — the kernels are installed in instance
  slots, so call sites reach the closure directly.

Every corner case (catch-all listeners, tag listeners without batched
``run`` variants, ``max_instructions`` proximity) delegates to the
unbound reference method, which replays exact per-primitive semantics
on the same machine state.  The batched paths are bit-identical by
construction: they are generated from the same fragment emitters as the
reference kernels.

Constants are baked at specialization time; the only supported mid-life
mutations are listener changes (epoch-gated) and :meth:`reset` (which
re-specializes).  Nothing in the repo mutates ``mispredict_penalty`` or
``bulk_miss_rate`` after construction; call :meth:`respecialize` if an
experiment ever does.
"""

from repro.backend import eventprog as _eventprog
from repro.backend.kernelspec import fast_kernel_factory
from repro.uarch.machine import Machine, SimulationLimitReached

# Instance slots holding the specialized kernels.  Slot descriptors on
# the subclass shadow the inherited methods, so every name listed here
# MUST be assigned by respecialize() — an empty slot would not fall back
# to the base method, it would raise AttributeError.
_KERNEL_SLOTS = (
    "dispatch_event", "dispatch_event2", "dispatch_run", "quick_run",
    "exec_block", "annot_run", "load", "store",
    "load_annot_run", "store_annot_run",
    "branch_block", "branch_block_annot_run",
)

# Kernels where the reference method measures faster than the
# specialized closure, so respecialize() binds the reference instead.
# exec_block has no constants worth baking (flat_cycles and n_insns
# live on the block descriptor) and no listener gate to cache, so the
# closure only trades the bound method's LOAD_FAST self for LOAD_DEREF
# cell loads; the memory kernels' baked L1 internals do not offset
# their per-call epoch check on workloads with stable listeners.
# Measured by interleaved min-of-N runs of the quick set (ratio vs the
# python backend, full specialization -> this set): richards 1.030 ->
# 1.034, crypto_pyaes 1.042 -> 1.073, fannkuch 0.979 -> 0.999.  The
# dispatch/run/branch kernels stay specialized — dropping gshare
# branch_block costs 7% on fannkuch.  Re-derive by measurement before
# editing; the factory still emits every kernel so the microbenchmark
# tooling can compare both variants.
_REFERENCE_PREFERRED = frozenset({
    "exec_block", "load", "store", "load_annot_run", "store_annot_run",
})


class FastMachine(Machine):
    """Machine with exec-compiled specialized kernels (see module doc)."""

    __slots__ = _KERNEL_SLOTS + ("_eprog_thunks",)

    backend = "fast"

    def __init__(self, config, predictor="gshare"):
        super().__init__(config, predictor)
        self._eprog_thunks = {}
        self.respecialize()

    def exec_program(self, prog, operands=None):
        """Interpreted twin of the native rt_exec_program: each event is
        pre-bound to its specialized kernel once (eventprog.compile_thunks,
        identity-keyed; the entry pins the program), so replay is a flat
        loop with no per-event decoding.  Events still run through the
        gated kernels, so listener/limit corner cases keep reference
        semantics without a separate precheck here."""
        entry = self._eprog_thunks.get(id(prog))
        if entry is None:
            entry = (prog, _eventprog.compile_thunks(self, prog))
            self._eprog_thunks[id(prog)] = entry
        for fn, args, slot in entry[1]:
            if slot is None:
                fn(*args)
            else:
                fn(operands[slot], *args)

    def respecialize(self):
        """(Re)build the specialized kernels against current constants."""
        kernels = fast_kernel_factory()(self, Machine,
                                        SimulationLimitReached)
        for name in _KERNEL_SLOTS:
            kernel = kernels.get(name)
            if kernel is None or name in _REFERENCE_PREFERRED:
                # No specialization for this machine shape (e.g. the
                # gshare-only kernels on a bimodal machine), or one the
                # reference method beats (_REFERENCE_PREFERRED): bind
                # the reference method so the slot never shadows it
                # away.
                kernel = getattr(Machine, name).__get__(self)
            setattr(self, name, kernel)

    def reset(self):
        super().reset()
        # Tables and the counts list are reset in place (identity
        # preserved), so the old kernels would still be correct; a fresh
        # specialization also clears the per-tag gate caches.
        self.respecialize()
