"""Property tests: event programs replay bit-identically on every backend.

Hypothesis generates random event sequences over the full event
vocabulary of :mod:`repro.backend.eventprog` and checks, on every
available backend, that

* encoding the sequence into an :class:`EventProgram` and replaying it
  with one ``machine.exec_program`` call lands on exactly the counters
  the direct per-call kernel sequence produces (cycles compared by
  ``repr`` — not even the last mantissa bit may differ);
* a ``max_instructions`` limit placed mid-program raises at the same
  event with the same final state on both paths (the native precheck
  falls back to reference replay whenever the limit could cross);
* ``Machine.reset()`` returns a program-driven machine to construction
  state (a reused machine replays bit-identically to a fresh one); and
* the disk-cache serialization round-trips programs without changing
  replay results.

The suite complements ``test_eventprog_equivalence.py`` the way
``test_reset_determinism.py`` complements the benchmark suite: machine
level, synthetic workloads, every event kind — including interleavings
no current driver emits.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import backend as backend_pkg
from repro.backend import eventprog
from repro.core.config import SystemConfig
from repro.isa import insns
from repro.uarch.machine import Machine, SimulationLimitReached

NATIVE_REASON = backend_pkg.native_unavailable_reason()

BACKENDS = ["python", "fast"] + (
    ["native"] if NATIVE_REASON is None else
    [pytest.param("native",
                  marks=pytest.mark.skip(reason="native backend "
                                         "unavailable: " + NATIVE_REASON))])

MIXES = (
    insns.mix(alu=3, load=2, br_bulk=4),
    insns.mix(alu=1),
    insns.mix(mul=2, div=1, fpu=3, store=2),
    insns.mix(alu=5, br_bulk=1),
)

TAGS = (3, 5, 9)

_SETTINGS = settings(max_examples=25, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])

# Number of host-side counters EV_BC events may bump.
_N_BC = 4


def _machine(backend, limit=0):
    config = SystemConfig()
    config.sim_backend = backend
    config.max_instructions = limit
    return Machine(config, "gshare")


# -- event-sequence strategy ------------------------------------------------

_pcs = st.integers(0, 8191)
_targets = st.integers(0, 63)
_addrs = st.integers(0, (1 << 20) - 1)
_tags = st.sampled_from(TAGS)
_bi = st.integers(0, len(MIXES) - 1)
_runs = st.integers(1, 9)

_run_items = st.lists(
    st.tuples(_pcs, _targets, st.lists(_bi, max_size=3).map(tuple)),
    min_size=1, max_size=5).map(tuple)
_dispatch_items = st.lists(st.tuples(_pcs, _targets, _bi),
                           min_size=1, max_size=5).map(tuple)

_event = st.one_of(
    st.tuples(st.just("exec_block"), _bi),
    st.tuples(st.just("branch_block"), _pcs, _bi),
    st.tuples(st.just("branch"), _pcs, st.booleans()),
    st.tuples(st.just("annot_run"), _tags, _runs),
    st.tuples(st.just("load"), _addrs),
    st.tuples(st.just("store"), _addrs),
    st.tuples(st.just("call"), _pcs),
    st.tuples(st.just("ret"), _pcs),
    st.tuples(st.just("dispatch"), _tags, _bi, _pcs, _targets),
    st.tuples(st.just("dispatch2"), _tags, _bi, _pcs, _targets, _bi),
    st.tuples(st.just("bulk"), st.integers(1, 40),
              st.floats(0.0, 0.5, allow_nan=False)),
    st.tuples(st.just("brba"), _pcs, _bi, _tags, _runs),
    st.tuples(st.just("load_annot"), _addrs, _tags, _runs),
    st.tuples(st.just("store_annot"), _addrs, _tags, _runs),
    st.tuples(st.just("quick_run"), _tags, _bi, _run_items),
    st.tuples(st.just("dispatch_run"), _tags, _bi, _dispatch_items),
    st.tuples(st.just("bc"), st.integers(0, _N_BC - 1)),
)

_events = st.lists(_event, min_size=1, max_size=40)

# The disk cache only serializes the executor's event subset.
_SERIALIZABLE_KINDS = frozenset((
    "exec_block", "branch_block", "branch", "annot_run", "load", "store",
    "call", "ret", "dispatch", "dispatch2", "bulk", "brba", "load_annot",
    "store_annot", "bc"))


def _run_n_insns(blocks, dispatch_bi, items):
    return sum(2 + blocks[dispatch_bi].n_insns +
               sum(blocks[j].n_insns for j in bis)
               for _pc, _target, bis in items)


def _dispatch_n_insns(blocks, dispatch_bi, items):
    return sum(2 + blocks[dispatch_bi].n_insns + blocks[j].n_insns
               for _pc, _target, j in items)


def _apply_direct(m, blocks, events, bc_counts):
    """The per-call kernel sequence a driver would issue without the
    event-program layer — the reference the program replay must match."""
    for ev in events:
        kind = ev[0]
        if kind == "exec_block":
            m.exec_block(blocks[ev[1]])
        elif kind == "branch_block":
            m.branch_block(ev[1], blocks[ev[2]])
        elif kind == "branch":
            m.branch(ev[1], ev[2])
        elif kind == "annot_run":
            m.annot_run(ev[1], ev[2])
        elif kind == "load":
            m.load(ev[1])
        elif kind == "store":
            m.store(ev[1])
        elif kind == "call":
            m.call(ev[1])
        elif kind == "ret":
            m.ret(ev[1])
        elif kind == "dispatch":
            m.dispatch_event(ev[1], blocks[ev[2]], ev[3], ev[4])
        elif kind == "dispatch2":
            m.dispatch_event2(ev[1], blocks[ev[2]], ev[3], ev[4],
                              blocks[ev[5]])
        elif kind == "bulk":
            m.exec_bulk_branches(ev[1], ev[2])
        elif kind == "brba":
            m.branch_block_annot_run(ev[1], blocks[ev[2]], ev[3], ev[4])
        elif kind == "load_annot":
            m.load_annot_run(ev[1], ev[2], ev[3])
        elif kind == "store_annot":
            m.store_annot_run(ev[1], ev[2], ev[3])
        elif kind == "quick_run":
            items = tuple((pc, t, tuple(blocks[j] for j in bis))
                          for pc, t, bis in ev[3])
            m.quick_run(ev[1], blocks[ev[2]], items,
                        _run_n_insns(blocks, ev[2], ev[3]))
        elif kind == "dispatch_run":
            items = tuple((pc, t, blocks[j]) for pc, t, j in ev[3])
            m.dispatch_run(ev[1], blocks[ev[2]], items,
                           _dispatch_n_insns(blocks, ev[2], ev[3]))
        elif kind == "bc":
            bc_counts[ev[1]] += 1
        else:
            raise AssertionError(kind)


def _encode(blocks, events, bc_counts):
    """Encode the same sequence as an EventProgram; returns
    ``(program, operand_addresses)``."""
    builder = eventprog.ProgramBuilder("property-fuzz")
    addrs = []
    for ev in events:
        kind = ev[0]
        if kind == "exec_block":
            builder.exec_block(blocks[ev[1]])
        elif kind == "branch_block":
            builder.branch_block(ev[1], blocks[ev[2]])
        elif kind == "branch":
            builder.branch(ev[1], ev[2])
        elif kind == "annot_run":
            builder.annot_run(ev[1], ev[2])
        elif kind == "load":
            builder.load(len(addrs))
            addrs.append(ev[1])
        elif kind == "store":
            builder.store(len(addrs))
            addrs.append(ev[1])
        elif kind == "call":
            builder.call(ev[1])
        elif kind == "ret":
            builder.ret(ev[1])
        elif kind == "dispatch":
            builder.dispatch_event(ev[1], blocks[ev[2]], ev[3], ev[4])
        elif kind == "dispatch2":
            builder.dispatch_event2(ev[1], blocks[ev[2]], ev[3], ev[4],
                                    blocks[ev[5]])
        elif kind == "bulk":
            builder.exec_bulk_branches(ev[1], ev[2])
        elif kind == "brba":
            builder.branch_block_annot_run(ev[1], blocks[ev[2]], ev[3],
                                           ev[4])
        elif kind == "load_annot":
            builder.load_annot_run(len(addrs), ev[2], ev[3])
            addrs.append(ev[1])
        elif kind == "store_annot":
            builder.store_annot_run(len(addrs), ev[2], ev[3])
            addrs.append(ev[1])
        elif kind == "quick_run":
            items = tuple((pc, t, tuple(blocks[j] for j in bis))
                          for pc, t, bis in ev[3])
            builder.quick_run(ev[1], blocks[ev[2]], items,
                              _run_n_insns(blocks, ev[2], ev[3]))
        elif kind == "dispatch_run":
            items = tuple((pc, t, blocks[j]) for pc, t, j in ev[3])
            builder.dispatch_run(ev[1], blocks[ev[2]], items,
                                 _dispatch_n_insns(blocks, ev[2], ev[3]))
        elif kind == "bc":
            builder.bc(bc_counts, ev[1])
        else:
            raise AssertionError(kind)
    return builder.build(), addrs


def _exec_program(m, prog, addrs):
    operands = m.eventprog_operands(max(prog.n_slots, 1))
    for i, addr in enumerate(addrs):
        operands[i] = addr
    m.exec_program(prog, operands)


def _snapshot(m, bc_counts, limit_hit):
    return {
        "instructions": m.instructions,
        "cycles_repr": repr(m.cycles),
        "branches": m.branches,
        "branch_misses": m.branch_misses,
        "loads": m.loads,
        "stores": m.stores,
        "annotations": m.annotations,
        "class_counts": tuple(m.class_counts),
        "counters": m.counters(),
        "ipc": repr(m.ipc),
        "mpki": repr(m.branch_mpki),
        "bc_counts": tuple(bc_counts),
        "limit": limit_hit,
    }


def _drive_direct(backend, events, limit=0):
    m = _machine(backend, limit)
    blocks = [m.block(mx) for mx in MIXES]
    bc_counts = [0] * _N_BC
    hit = None
    try:
        _apply_direct(m, blocks, events, bc_counts)
    except SimulationLimitReached as exc:
        hit = exc.args[0]
    return _snapshot(m, bc_counts, hit)


def _drive_program(backend, events, limit=0, roundtrip=False):
    m = _machine(backend, limit)
    blocks = [m.block(mx) for mx in MIXES]
    bc_counts = [0] * _N_BC
    prog, addrs = _encode(blocks, events, bc_counts)
    if roundtrip:
        obj = eventprog.program_to_jsonable(prog)
        prog = eventprog.program_from_jsonable(obj, m, bc_list=bc_counts)
    hit = None
    try:
        _exec_program(m, prog, addrs)
    except SimulationLimitReached as exc:
        hit = exc.args[0]
    return _snapshot(m, bc_counts, hit)


# -- the properties ---------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
@_SETTINGS
@given(events=_events)
def test_replay_matches_direct_calls(backend, events):
    """One exec_program call == the direct kernel sequence, bit for bit."""
    assert _drive_program(backend, events) == \
        _drive_direct(backend, events)


@pytest.mark.parametrize("backend", BACKENDS)
@_SETTINGS
@given(events=_events, split=st.integers(1, 99))
def test_truncation_matches_direct_calls(backend, events, split):
    """An instruction limit landing mid-program raises at the same event
    with the same final counters (including EV_BC bumps issued before
    the raise) as the per-call path."""
    reference = _drive_direct(backend, events)
    limit = max(1, reference["instructions"] * split // 100)
    direct = _drive_direct(backend, events, limit=limit)
    program = _drive_program(backend, events, limit=limit)
    assert program == direct


@pytest.mark.parametrize("backend", BACKENDS)
@_SETTINGS
@given(events=_events)
def test_reset_restores_program_state(backend, events):
    """run program, reset, run again == fresh machine running it once."""
    m = _machine(backend)
    blocks = [m.block(mx) for mx in MIXES]
    bc_counts = [0] * _N_BC
    prog, addrs = _encode(blocks, events, bc_counts)
    _exec_program(m, prog, addrs)
    first = _snapshot(m, bc_counts, None)
    m.reset()
    bc_counts[:] = [0] * _N_BC
    _exec_program(m, prog, addrs)
    assert _snapshot(m, bc_counts, None) == first
    assert _drive_program(backend, events) == first


@pytest.mark.parametrize("backend", BACKENDS)
@_SETTINGS
@given(events=_events.map(
    lambda evs: [ev for ev in evs if ev[0] in _SERIALIZABLE_KINDS]))
def test_serialization_roundtrip(backend, events):
    """A program rebuilt from its jsonable form replays identically."""
    if not events:
        return
    assert _drive_program(backend, events, roundtrip=True) == \
        _drive_direct(backend, events)


def test_backends_agree_on_programs():
    """The same generated program lands on bit-identical counters across
    every available backend (seeded, not Hypothesis-driven, so the
    cross-backend comparison is on one fixed corpus)."""
    import random

    rng = random.Random(20260808)
    corpus = []
    for _ in range(10):
        events = []
        for _ in range(rng.randrange(5, 30)):
            events.append(_sample_event(rng))
        corpus.append(events)
    for events in corpus:
        reference = _drive_program("python", events)
        assert _drive_direct("python", events) == reference
        for backend in ("fast",) + (("native",) if NATIVE_REASON is None
                                    else ()):
            assert _drive_program(backend, events) == reference, backend


def _sample_event(rng):
    kind = rng.choice((
        "exec_block", "branch_block", "branch", "annot_run", "load",
        "store", "call", "ret", "dispatch", "dispatch2", "bulk", "brba",
        "load_annot", "store_annot", "quick_run", "dispatch_run", "bc"))
    bi = rng.randrange(len(MIXES))
    pc = rng.randrange(8192)
    tag = rng.choice(TAGS)
    if kind == "exec_block":
        return (kind, bi)
    if kind == "branch_block":
        return (kind, pc, bi)
    if kind == "branch":
        return (kind, pc, rng.random() < 0.6)
    if kind == "annot_run":
        return (kind, tag, rng.randrange(1, 9))
    if kind in ("load", "store"):
        return (kind, rng.randrange(1 << 20))
    if kind in ("call", "ret"):
        return (kind, pc)
    if kind == "dispatch":
        return (kind, tag, bi, pc, rng.randrange(64))
    if kind == "dispatch2":
        return (kind, tag, bi, pc, rng.randrange(64),
                rng.randrange(len(MIXES)))
    if kind == "bulk":
        return (kind, rng.randrange(1, 40), rng.random() * 0.5)
    if kind == "brba":
        return (kind, pc, bi, tag, rng.randrange(1, 9))
    if kind in ("load_annot", "store_annot"):
        return (kind, rng.randrange(1 << 20), tag, rng.randrange(1, 7))
    if kind == "quick_run":
        items = tuple(
            (rng.randrange(4096), rng.randrange(64),
             tuple(rng.randrange(len(MIXES))
                   for _ in range(rng.randrange(3))))
            for _ in range(rng.randrange(1, 5)))
        return (kind, tag, bi, items)
    if kind == "dispatch_run":
        items = tuple(
            (rng.randrange(4096), rng.randrange(64),
             rng.randrange(len(MIXES)))
            for _ in range(rng.randrange(1, 5)))
        return (kind, tag, bi, items)
    return ("bc", rng.randrange(_N_BC))
