#!/usr/bin/env python
"""Harness-speed benchmark: wall time to simulate the quick set.

Times three representative simulations (one per VM family) and writes
``BENCH_1.json`` with wall seconds and simulated-instructions-per-second
for the current tree, next to the frozen seed-tree baseline measured on
the same machine.  Run from the repo root:

    PYTHONPATH=src python tools/bench.py
"""

import json
import os
import sys
import time

os.environ.setdefault("REPRO_STORE", "0")  # measure real simulations

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.benchprogs import registry  # noqa: E402
from repro.harness.runner import clear_cache, run_program  # noqa: E402

# Wall seconds for the identical quick set on the seed tree (commit
# f8ad5af), single-core container, best of the observed runs at the
# time the fast-path work started.
SEED_SECONDS = {
    "richards/pypy": 5.75,
    "crypto_pyaes/cpython": 8.59,
    "fannkuch/pycket": 4.32,
}

# The same seed tree re-measured interleaved with the optimized tree in
# one session (min of 3 alternating runs per benchmark).  The container
# was under less load than when SEED_SECONDS was recorded, so this is
# the conservative baseline: speedups against it are what the machine
# delivers under identical conditions.
SEED_SECONDS_REMEASURED = {
    "richards/pypy": 2.92,
    "crypto_pyaes/cpython": 4.31,
    "fannkuch/pycket": 2.38,
}

QUICK_SET = (
    ("richards", "python", "pypy"),
    ("crypto_pyaes", "python", "cpython"),
    ("fannkuch", "racket", "pycket"),
)

TRIALS = 3  # report min-of-N to suppress scheduler noise


def time_one(name, language, vm_kind):
    best = None
    instructions = 0
    for _ in range(TRIALS):
        clear_cache()
        t0 = time.perf_counter()
        result = run_program(name, vm_kind, language=language,
                             use_cache=False)
        elapsed = time.perf_counter() - t0
        instructions = result.instructions
        if best is None or elapsed < best:
            best = elapsed
    return best, instructions


def main():
    rows = []
    total = 0.0
    seed_total = sum(SEED_SECONDS.values())
    seed_rem_total = sum(SEED_SECONDS_REMEASURED.values())
    for name, language, vm_kind in QUICK_SET:
        label = "%s/%s" % (name, vm_kind)
        seconds, instructions = time_one(name, language, vm_kind)
        total += seconds
        rows.append({
            "benchmark": label,
            "wall_s": round(seconds, 3),
            "sim_instructions": instructions,
            "sim_insns_per_sec": round(instructions / seconds),
            "seed_wall_s": SEED_SECONDS[label],
            "speedup_vs_seed": round(SEED_SECONDS[label] / seconds, 2),
            "seed_remeasured_wall_s": SEED_SECONDS_REMEASURED[label],
            "speedup_vs_seed_remeasured": round(
                SEED_SECONDS_REMEASURED[label] / seconds, 2),
        })
        print("%-22s %6.2fs  (seed %5.2fs, %0.2fx; same-session seed "
              "%5.2fs, %0.2fx)  %.1fM insns/s"
              % (label, seconds, SEED_SECONDS[label],
                 SEED_SECONDS[label] / seconds,
                 SEED_SECONDS_REMEASURED[label],
                 SEED_SECONDS_REMEASURED[label] / seconds,
                 instructions / seconds / 1e6))
    report = {
        "trials": TRIALS,
        "benchmarks": rows,
        "total_wall_s": round(total, 3),
        "seed_total_wall_s": round(seed_total, 3),
        "speedup_vs_seed": round(seed_total / total, 2),
        "seed_remeasured_total_wall_s": round(seed_rem_total, 3),
        "speedup_vs_seed_remeasured": round(seed_rem_total / total, 2),
    }
    out_path = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_1.json")
    with open(out_path, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print("TOTAL %.2fs vs seed %.2fs -> %.2fx  (wrote %s)"
          % (total, seed_total, seed_total / total, out_path))


if __name__ == "__main__":
    main()
