"""Figure 3: phase timelines of a fast-warming and slow-warming benchmark."""

from conftest import save

from repro.harness import experiments


def test_fig3(benchmark, quick):
    data, text = benchmark.pedantic(
        lambda: experiments.fig3(quick=quick), rounds=1, iterations=1)
    save("fig3_timeline.txt", text)

    for name, segments in data.items():
        assert segments, name
        # Early execution is interpreter/tracing dominated...
        early = segments[0]
        assert early["interp"] + early["tracing"] > 0.4, name
    # ...and the fast-warming benchmark becomes JIT-dominated late in
    # the run (the very last buckets may be interpreter teardown/prints,
    # so look at the best bucket in the final third).
    tail = data["richards"][-max(1, len(data["richards"]) // 3):]
    best = max(seg["jit"] + seg["jit_call"] for seg in tail)
    assert best > 0.35
