"""Replay every checked-in reproducer through the oracle.

Fixed entries must agree everywhere; ``xfail`` entries must STILL
diverge (a silent behavior change is itself worth noticing).  Each
reproducer is shrunken, so replays stay well under a second.
"""

import pytest

from repro.difftest.corpus import load_corpus
from repro.difftest.oracle import DEFAULT_THRESHOLDS, check_program

ENTRIES = load_corpus()


def _thresholds_for(entry):
    """Replay only the JIT thresholds the entry names (plus defaults if
    it names none), to keep per-entry replay cost minimal."""
    named = sorted(int(e.split("@", 1)[1]) for e in entry.engines
                   if e.startswith("jit@"))
    return tuple(named) or DEFAULT_THRESHOLDS


def test_corpus_is_not_empty():
    assert ENTRIES, "corpus directory missing or empty"


@pytest.mark.parametrize("entry", ENTRIES, ids=lambda e: e.name)
def test_replay(entry):
    report = check_program(entry.source, thresholds=_thresholds_for(entry))
    assert not report.inconclusive, report.summary()
    if entry.xfail:
        assert not report.ok, (
            "xfail entry %s no longer diverges (%s) — the bug may have "
            "been fixed; promote the entry" % (entry.name,
                                               entry.xfail_reason))
    else:
        assert report.ok, report.summary()
