"""Effect/purity cross-checker tests, including the regression replay
of the fold-safety bug the checker originally surfaced (EFF003)."""

from repro.analysis import check_effects
from repro.analysis.opspec import OPT_INVALIDATION_OPS
from repro.jit import ir
from repro.jit import semantics


def test_shipped_declarations_are_clean():
    report = check_effects()
    assert not report.findings, [f.render() for f in report.findings]


def test_eff003_replays_the_original_foldable_bug():
    # The FOLDABLE set as shipped before the checker existed: it
    # excluded the division ops and the getitem family but still
    # contained int_lshift/int_rshift (negative counts raise),
    # float_sqrt (negative operands) and cast_float_to_int (inf/nan).
    # A const-const fold of any of them crashes the optimizer.
    buggy = frozenset(
        opnum for opnum in semantics.EVAL
        if opnum not in ir.OVF_OPS
        and opnum not in (ir.INT_FLOORDIV, ir.INT_MOD,
                          ir.FLOAT_TRUEDIV, ir.STRGETITEM,
                          ir.UNICODEGETITEM)
    )
    report = check_effects(foldable=buggy)
    caught = [f.message for f in report.findings if f.code == "EFF003"]
    for name in ("int_lshift", "int_rshift", "float_sqrt",
                 "cast_float_to_int"):
        assert any(name in message for message in caught), name


def test_eff001_eff002_effectful_op_in_foldable():
    report = check_effects(
        foldable=semantics.FOLDABLE | {ir.SETFIELD_GC})
    assert report.has("EFF001")
    assert report.has("EFF002")


def test_eff002_foldable_without_eval_semantics():
    report = check_effects(foldable=semantics.FOLDABLE | {ir.LABEL})
    assert report.has("EFF002")


def test_eff004_guard_with_declared_effects():
    effects = list(ir.OP_EFFECTS)
    effects[ir.GUARD_TRUE] = "heap"
    report = check_effects(op_effects=tuple(effects))
    assert report.has("EFF004")


def test_eff005_missing_invalidation_point():
    report = check_effects(
        invalidation_ops=OPT_INVALIDATION_OPS - {ir.SETFIELD_GC})
    assert report.has("EFF005")


def test_eff005_spurious_invalidation_point():
    report = check_effects(
        invalidation_ops=OPT_INVALIDATION_OPS | {ir.INT_ADD})
    assert report.has("EFF005")


def test_eff006_overflow_op_that_never_raises():
    eval_map = dict(semantics.EVAL)
    eval_map[ir.INT_ADD_OVF] = lambda a, b: a + b  # unchecked add
    report = check_effects(eval_map=eval_map)
    assert report.has("EFF006")


def test_eff008_eval_arity_drift():
    eval_map = dict(semantics.EVAL)
    eval_map[ir.INT_NEG] = lambda a, b: -a  # spec says arity 1
    report = check_effects(eval_map=eval_map)
    assert report.has("EFF008")


def test_eff010_pure_set_contaminated():
    report = check_effects(pure_ops=ir.PURE_OPS | {ir.SETFIELD_GC})
    assert report.has("EFF010")
