"""rstr / runicode: string runtime functions.

These are the AOT-compiled entry points that dominate string-heavy
benchmarks in the paper's Table III: ``rstr.ll_join``,
``rstr.ll_find_char``, ``rstr.ll_strhash``, ``rstring.replace``,
``ll_str.ll_int2dec``, ``arithmetic.string_to_int``, and the runicode
encoding helper.  All operate on raw Python strings (the VM-level string
payload) and charge per-character costs.
"""

from repro.core.errors import GuestError
from repro.interp.aot import aot
from repro.isa import insns
from repro.rlib.costutil import charge_loop

_CHAR_MIX = insns.mix(alu=2, load=1, br_bulk=1)
_COPY_MIX = insns.mix(alu=1, load=1, store=1, br_bulk=1)


@aot("rstr.ll_join", "R", "pure")
def ll_join(ctx, separator, items):
    total = sum(len(item) for item in items) + max(0, len(items) - 1)
    charge_loop(ctx, max(1, total), _COPY_MIX)
    return separator.join(items)


@aot("rstr.ll_find_char", "R", "pure")
def ll_find_char(ctx, text, char, start):
    index = text.find(char, start)
    scanned = (index - start + 1) if index >= 0 else (len(text) - start)
    charge_loop(ctx, max(1, scanned), _CHAR_MIX)
    return index

@aot("rstr.ll_find", "R", "pure")
def ll_find(ctx, text, needle, start):
    index = text.find(needle, start)
    scanned = (index - start + 1) if index >= 0 else (len(text) - start)
    charge_loop(ctx, max(1, scanned * max(1, len(needle) // 2)), _CHAR_MIX)
    return index


@aot("rstr.ll_strhash", "R", "pure")
def ll_strhash(ctx, text):
    charge_loop(ctx, max(1, len(text)), _CHAR_MIX)
    # djb2-style, deterministic across runs (unlike Python's str hash).
    value = 5381
    for char in text:
        value = ((value * 33) ^ ord(char)) & 0xFFFFFFFFFFFFFFF
    return value


@aot("rstring.replace", "L", "pure")
def ll_replace(ctx, text, old, new):
    charge_loop(ctx, max(1, len(text)), _COPY_MIX)
    return text.replace(old, new)


@aot("rstr.ll_split", "R", "pure")
def ll_split(ctx, text, separator):
    charge_loop(ctx, max(1, len(text)), _CHAR_MIX)
    if separator is None:
        return text.split()
    return text.split(separator)


@aot("rstr.ll_contains", "R", "pure")
def ll_contains(ctx, text, needle):
    charge_loop(ctx, max(1, len(text)), _CHAR_MIX)
    return needle in text


@aot("rstr.ll_startswith", "R", "pure")
def ll_startswith(ctx, text, prefix):
    charge_loop(ctx, max(1, len(prefix)), _CHAR_MIX)
    return text.startswith(prefix)


@aot("rstr.ll_endswith", "R", "pure")
def ll_endswith(ctx, text, suffix):
    charge_loop(ctx, max(1, len(suffix)), _CHAR_MIX)
    return text.endswith(suffix)


@aot("rstr.ll_lower", "R", "pure")
def ll_lower(ctx, text):
    charge_loop(ctx, max(1, len(text)), _COPY_MIX)
    return text.lower()


@aot("rstr.ll_upper", "R", "pure")
def ll_upper(ctx, text):
    charge_loop(ctx, max(1, len(text)), _COPY_MIX)
    return text.upper()


@aot("rstr.ll_strip", "R", "pure")
def ll_strip(ctx, text):
    charge_loop(ctx, max(1, len(text)), _CHAR_MIX)
    return text.strip()


@aot("rstr.ll_slice", "R", "pure")
def ll_slice(ctx, text, start, stop):
    start = max(0, min(start, len(text)))
    stop = max(start, min(stop, len(text)))
    charge_loop(ctx, max(1, stop - start), _COPY_MIX)
    return text[start:stop]


@aot("rstr.ll_mul", "R", "pure")
def ll_mul(ctx, text, count):
    charge_loop(ctx, max(1, len(text) * max(0, count)), _COPY_MIX)
    return text * count


@aot("ll_str.ll_int2dec", "L", "pure")
def ll_int2dec(ctx, value):
    text = str(value)
    charge_loop(ctx, len(text) * 2, insns.mix(div=1, alu=3, store=1))
    return text


@aot("rfloat.float_to_str", "L", "pure")
def ll_float2str(ctx, value):
    charge_loop(ctx, 24, insns.mix(fpu=1, alu=4, store=1))
    return repr(value)


@aot("arithmetic.string_to_int", "L", "pure")
def string_to_int(ctx, text):
    charge_loop(ctx, max(1, len(text)), insns.mix(mul=1, alu=4, load=1))
    stripped = text.strip()
    sign = 1
    if stripped.startswith(("-", "+")):
        sign = -1 if stripped[0] == "-" else 1
        stripped = stripped[1:]
    if not stripped or not all("0" <= c <= "9" for c in stripped):
        raise GuestError("invalid literal for int(): %r" % text)
    value = 0
    for char in stripped:
        value = value * 10 + (ord(char) - 48)
    return sign * value


@aot("arithmetic.string_to_float", "L", "pure")
def string_to_float(ctx, text):
    charge_loop(ctx, max(1, len(text)), insns.mix(fpu=1, alu=4, load=1))
    try:
        return float(text)
    except ValueError:
        raise GuestError("invalid literal for float(): %r" % text)


@aot("runicode.unicode_encode_ucs1_helper", "L", "pure")
def unicode_encode_ascii(ctx, text):
    charge_loop(ctx, max(1, len(text)), _COPY_MIX)
    return text.encode("ascii", "replace")


@aot("rstr.ll_char_in_set", "R", "pure")
def ll_char_in_set(ctx, char, charset):
    charge_loop(ctx, 2, _CHAR_MIX)
    return char in charset


@aot("W_UnicodeObject.descr_translate", "I", "pure")
def descr_translate(ctx, text, table):
    """Per-char table translation (html5lib/revcomp-style workloads)."""
    charge_loop(ctx, max(1, len(text)), insns.mix(alu=2, load=2, store=1))
    return "".join(table.get(c, c) for c in text)
