import pytest

from repro.core.config import GcConfig, JitConfig, SystemConfig, UarchConfig
from repro.core.errors import ConfigError


def test_default_config_valid():
    SystemConfig().validate()


def test_interpreter_only_factory():
    cfg = SystemConfig.interpreter_only()
    assert not cfg.jit.enabled
    assert SystemConfig().jit.enabled


def test_jit_config_rejects_bad_threshold():
    cfg = JitConfig(hot_loop_threshold=0)
    with pytest.raises(ConfigError):
        cfg.validate()


def test_jit_config_rejects_bad_trace_limit():
    with pytest.raises(ConfigError):
        JitConfig(trace_limit=5).validate()


def test_gc_config_rejects_tiny_nursery():
    with pytest.raises(ConfigError):
        GcConfig(nursery_bytes=16).validate()


def test_gc_config_rejects_bad_survival():
    with pytest.raises(ConfigError):
        GcConfig(default_survival_rate=1.5).validate()


def test_uarch_config_rejects_zero_width():
    with pytest.raises(ConfigError):
        UarchConfig(issue_width=0).validate()


def test_configs_are_independent():
    a = SystemConfig()
    b = SystemConfig()
    a.jit.hot_loop_threshold = 7
    assert b.jit.hot_loop_threshold != 7
