"""Unit tests for the jitlog statistics over hand-built registries."""

from repro.jit import ir, jitlog
from repro.jit.trace import LOOP, InputArg, Trace, TraceRegistry


def make_registry():
    registry = TraceRegistry()
    i0 = InputArg()
    ops = [
        ir.IROp(ir.GETFIELD_GC, [i0], None),
        ir.IROp(ir.GUARD_TRUE, [i0], None),
        ir.IROp(ir.INT_ADD, [i0, ir.Const(1)], None),
        ir.IROp(ir.JUMP, [i0], None),
    ]
    trace = Trace(0, LOOP, ("k", 0), [i0], ops, [("k", 0, 1, 0)])
    trace.op_exec_counts = [1000, 1000, 1000, 1000]
    trace.op_asm_insns = [1, 2, 1, 2]
    registry.register(trace)
    cold_ops = [ir.IROp(ir.INT_MUL, [i0, i0], None)]
    cold = Trace(1, "bridge", None, [i0], cold_ops, [("k", 0, 1, 0)])
    cold.op_exec_counts = [1]
    cold.op_asm_insns = [1]
    registry.register(cold)
    return registry


def test_total_nodes():
    registry = make_registry()
    assert jitlog.total_ir_nodes_compiled(registry) == 5


def test_hot_fraction():
    registry = make_registry()
    fraction = jitlog.hot_node_fraction(registry, coverage=0.95)
    # 4 hot nodes dominate; the cold bridge node is in the tail.
    assert 0 < fraction <= 4 / 5


def test_nodes_per_minsn():
    registry = make_registry()
    assert jitlog.ir_nodes_per_minsn(registry, 1_000_000) == 4001
    assert jitlog.ir_nodes_per_minsn(registry, 0) == 0.0


def test_histogram():
    registry = make_registry()
    histogram = jitlog.dynamic_node_type_histogram(registry)
    assert abs(sum(histogram.values()) - 1.0) < 1e-9
    assert histogram["getfield_gc"] > histogram["int_mul"]


def test_category_breakdown():
    registry = make_registry()
    breakdown = jitlog.dynamic_category_breakdown(registry)
    assert abs(sum(breakdown.values()) - 1.0) < 1e-9
    assert breakdown[ir.CAT_GUARD] > 0
    assert breakdown[ir.CAT_MEMOP] > 0


def test_static_breakdown():
    registry = make_registry()
    breakdown = jitlog.static_category_breakdown(registry)
    assert abs(sum(breakdown.values()) - 1.0) < 1e-9


def test_asm_per_node_type():
    registry = make_registry()
    means = jitlog.asm_insns_per_node_type(registry)
    assert means["guard_true"] == 2.0
    assert means["int_add"] == 1.0


def test_guard_failure_stats():
    registry = make_registry()
    registry.traces[0].ops[1].fail_count = 7
    stats = jitlog.guard_failure_stats(registry)
    assert stats == {"guards": 1, "failures": 7, "bridges": 0}


def test_empty_registry():
    registry = TraceRegistry()
    assert jitlog.total_ir_nodes_compiled(registry) == 0
    assert jitlog.hot_node_fraction(registry) == 0.0
    assert jitlog.dynamic_node_type_histogram(registry) == {}
    assert jitlog.dynamic_category_breakdown(registry) == {}


def test_jitlog_events():
    log = jitlog.JitLog()
    log.log("compile", trace_kind="loop")
    log.log("abort", reason="x")
    log.log("compile", trace_kind="bridge")
    assert log.count("compile") == 2
    assert log.count("abort") == 1
