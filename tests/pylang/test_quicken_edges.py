"""Quickening edge cases: fusion boundaries and inline-cache invalidation.

Three hazards the quickening layer must survive without changing a
single counter or output byte:

* a jump *into the middle* of a would-be fused region — interior pcs of
  a run carry no table entry, so control transfers land on the ordinary
  unfused dispatch;
* a JitDriver merge point (backward-jump target) — runs never start
  there, because hot-loop counting and compiled-loop entry interpose
  between dispatches;
* inline-cache invalidation — rebinding a module global or mutating a
  class bumps the version tag the ICs key on, so stale entries miss and
  the slow path re-fills with the new value.
"""

from repro.core.config import SystemConfig
from repro.interp.context import VMContext
from repro.interp.minilang import Code, MiniInterp, W_Int
from repro.interp.quicken import find_runs
from repro.pylang import bytecode as bc
from repro.pylang.compiler import compile_source
from repro.pylang.interp import PyVM
from repro.pylang.quicken import JUMP_OPS, build_run_table


def _run_py(source, quicken):
    cfg = SystemConfig()
    cfg.jit.enabled = False
    cfg.quicken = quicken
    ctx = VMContext(cfg)
    vm = PyVM(ctx)
    vm.run_source(source)
    return vm, ctx


def _assert_bit_identical(source):
    """Quickened on vs off: same stdout, bit-identical counters."""
    vm_on, ctx_on = _run_py(source, quicken=True)
    vm_off, ctx_off = _run_py(source, quicken=False)
    assert vm_on.stdout() == vm_off.stdout()
    on = ctx_on.machine.counters()
    off = ctx_off.machine.counters()
    for field, a, b in zip(on._fields, on, off):
        assert a == b, field
        assert repr(a) == repr(b), field
    return vm_on, vm_off


# -- find_runs boundary behaviour --------------------------------------------

def test_find_runs_never_crosses_jump_target():
    # pcs 1..6 all fusable, but pc 4 is a jump target: the span splits.
    runs = find_runs(7, lambda pc: True, jump_targets={4},
                     merge_targets=set())
    assert runs == [(1, 4), (4, 7)]


def test_find_runs_never_starts_at_merge_point():
    # pc 1 is a backward-jump target: no run may start there, and the
    # remaining span (2..5) still fuses.
    runs = find_runs(5, lambda pc: True, jump_targets={1},
                     merge_targets={1})
    assert runs == [(2, 5)]


def test_find_runs_respects_min_run_and_start_pc():
    assert find_runs(3, lambda pc: True, set(), set()) == [(1, 3)]
    # A single fusable pc is not worth a table entry.
    assert find_runs(2, lambda pc: True, set(), set()) == []
    # start_pc=0 (MiniLang: dispatch hash has no prev-op component).
    assert find_runs(2, lambda pc: True, set(), set(),
                     start_pc=0) == [(0, 2)]


# -- TinyPy run tables --------------------------------------------------------

_LOOP_SOURCE = '''
i = 0
total = 0
while i < 50:
    a = i
    b = a
    c = b
    total = total + c
    i = i + 1
print(total)
'''


def test_run_table_interior_pcs_stay_unfused():
    """table[pc] is None for every pc strictly inside a run, so a jump
    into the middle of a fused region lands on ordinary dispatch."""
    vm, _ = _run_py(_LOOP_SOURCE, quicken=True)
    code = compile_source(_LOOP_SOURCE)
    table = build_run_table(vm, code)
    starts = [pc for pc, entry in enumerate(table) if entry is not None]
    assert starts, "loop body should produce at least one run"
    for pc in starts:
        end = table[pc][2]
        assert end - pc >= 2
        for interior in range(pc + 1, end):
            assert table[interior] is None
    # No jump target is strictly inside any run.
    jump_targets = {code.args[pc] for pc in range(len(code.ops))
                    if code.ops[pc] in JUMP_OPS}
    for pc in starts:
        end = table[pc][2]
        assert not any(pc < t < end for t in jump_targets)


def test_run_table_skips_jit_merge_points():
    """No run starts at a backward-jump target (JitDriver merge point)."""
    vm, _ = _run_py(_LOOP_SOURCE, quicken=True)
    code = compile_source(_LOOP_SOURCE)
    table = build_run_table(vm, code)
    merge_targets = {code.args[pc] for pc in range(len(code.ops))
                     if code.ops[pc] in JUMP_OPS and code.args[pc] <= pc}
    assert merge_targets, "the while loop must have a backward jump"
    for target in merge_targets:
        assert table[target] is None


def test_jump_into_straightline_code_bit_identical():
    """Loops whose bodies are fusable straight-line spans: every
    iteration re-enters via the merge point and leaves mid-table, and
    counters still match the unquickened run exactly."""
    vm_on, _ = _assert_bit_identical(_LOOP_SOURCE)
    assert "1225" in vm_on.stdout()


# -- inline-cache invalidation ------------------------------------------------

def test_global_rebinding_invalidates_ic():
    source = '''
x = 1

def f():
    return x

print(f())
x = 2
print(f())
x = x + 40
print(f())
'''
    vm_on, vm_off = _assert_bit_identical(source)
    assert vm_on.stdout() == "1\n2\n42\n"
    # The quickened VM really used the global IC; the reference VM
    # never touched it.
    assert vm_on._ic_global
    assert not vm_off._ic_global


def test_class_mutation_invalidates_ic():
    source = '''
class C:
    def m(self):
        return 1

def g(self):
    return 2

c = C()
print(c.m())
C.m = g
print(c.m())
'''
    vm_on, vm_off = _assert_bit_identical(source)
    assert vm_on.stdout() == "1\n2\n"
    assert vm_on._ic_class
    assert not vm_off._ic_class


def test_attr_ic_survives_shape_transitions():
    source = '''
class P:
    def __init__(self):
        self.x = 1

p = P()
q = P()
print(p.x + q.x)
q.y = 10
print(p.x + q.x + q.y)
'''
    vm_on, vm_off = _assert_bit_identical(source)
    assert vm_on.stdout() == "2\n12\n"
    assert vm_on._ic_attr
    assert not vm_off._ic_attr


# -- MiniLang ----------------------------------------------------------------

def _mini_loop_code():
    # total = 0; n = 5; while n: total += n; n -= 1  — the loop header
    # (pc 4) is a backward-jump target, the body a fusable span.
    ops = [
        ("load_const", 0), ("store_local", 0),       # 0-1: total = 0
        ("load_const", 5), ("store_local", 1),       # 2-3: n = 5
        ("load_local", 1), ("jump_if_false", 14),    # 4-5: while n
        ("load_local", 0), ("load_local", 1),        # 6-7
        ("add", None), ("store_local", 0),           # 8-9: total += n
        ("load_local", 1), ("load_const", 1),        # 10-11
        ("sub", None), ("store_local", 1),           # 12-13: n -= 1
        ("jump", 4),                                 # 14 is exit target
        ("load_local", 0), ("return", None),         # 15-16
    ]
    # pc 14 is the jump, 15 the exit target
    ops[5] = ("jump_if_false", 15)
    return Code("loop", ops, 2)


def _run_mini(quicken):
    cfg = SystemConfig()
    cfg.jit.enabled = False
    cfg.quicken = quicken
    ctx = VMContext(cfg)
    interp = MiniInterp(ctx)
    result = interp.run(_mini_loop_code())
    return result, ctx, interp


def test_minilang_loop_bit_identical():
    res_on, ctx_on, interp_on = _run_mini(quicken=True)
    res_off, ctx_off, _ = _run_mini(quicken=False)
    assert isinstance(res_on, W_Int) and res_on.intval == 15
    assert isinstance(res_off, W_Int) and res_off.intval == 15
    on = ctx_on.machine.counters()
    off = ctx_off.machine.counters()
    for field, a, b in zip(on._fields, on, off):
        assert a == b, field
        assert repr(a) == repr(b), field
    # The quickened interpreter really fused the body: its run table
    # has entries, none at the merge point (pc 4), none interior.
    table = interp_on._build_run_table(_mini_loop_code())
    starts = [pc for pc, e in enumerate(table) if e is not None]
    assert starts
    assert table[4] is None
    for pc in starts:
        end = table[pc][2]
        for interior in range(pc + 1, end):
            assert table[interior] is None
