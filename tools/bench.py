#!/usr/bin/env python
"""Harness-speed benchmark: wall time to simulate the quick set.

Times three representative simulations (one per VM family) and writes
``BENCH_<n>.json`` — numbered one past the highest existing report —
with wall seconds and simulated-instructions-per-second for the current
tree.  Each report records three baselines: the frozen seed tree, the
seed tree re-measured under the session's load, and the previous
``BENCH_<n-1>.json`` report (the prior PR's tree), so per-PR speedups
compose without re-running old code.  Run from the repo root:

    PYTHONPATH=src python tools/bench.py
    PYTHONPATH=src python tools/bench.py --trials 5
    PYTHONPATH=src python tools/bench.py --backend native  # one backend
    PYTHONPATH=src python tools/bench.py --eventprog both  # on/off axis
    PYTHONPATH=src python tools/bench.py --profile   # cProfile top-20

``--eventprog on|both`` times the resident event-program layer
(``config.eventprog``); its rows carry the per-iteration FFI-crossings
estimate from the trace transform (static machine calls per trace body
before/after segmenting) alongside the wall-time speedup over the
matching eventprog-off row.

``--backend all`` (the default) times every available simulation
backend — the reference machine (``python``), the exec-specialized
kernels (``fast``) and the cffi-compiled C runtime (``native``, when a
C toolchain is present) — and reports each compiled backend's speedup
over the reference rows.  Seed/previous-report comparisons are only
attached to the ``python`` rows, which measure the same default path
every earlier report measured.
"""

import argparse
import glob
import json
import os
import re
import sys
import time

os.environ.setdefault("REPRO_STORE", "0")  # measure real simulations

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.benchprogs import registry  # noqa: E402,F401
from repro.harness.runner import clear_cache, run_program  # noqa: E402

# Wall seconds for the identical quick set on the seed tree (commit
# f8ad5af), single-core container, best of the observed runs at the
# time the fast-path work started.
SEED_SECONDS = {
    "richards/pypy": 5.75,
    "crypto_pyaes/cpython": 8.59,
    "fannkuch/pycket": 4.32,
}

# The same seed tree re-measured interleaved with the optimized tree in
# one session (min of 3 alternating runs per benchmark).  The container
# was under less load than when SEED_SECONDS was recorded, so this is
# the conservative baseline: speedups against it are what the machine
# delivers under identical conditions.
SEED_SECONDS_REMEASURED = {
    "richards/pypy": 2.92,
    "crypto_pyaes/cpython": 4.31,
    "fannkuch/pycket": 2.38,
}

QUICK_SET = (
    ("richards", "python", "pypy"),
    ("crypto_pyaes", "python", "cpython"),
    ("fannkuch", "racket", "pycket"),
)

DEFAULT_TRIALS = 3  # report min-of-N to suppress scheduler noise

# Short-running workloads for the tier-1 break-even section: programs
# where warmup is a visible fraction of the run, so the threaded-code
# tier has a window to shrink.
TIER_SET = ("richards", "crypto_pyaes", "float", "chaos", "spitfire",
            "telco")


def _find_reports():
    """All existing BENCH_<n>.json reports as sorted (n, path) pairs."""
    reports = []
    for path in glob.glob(os.path.join(_ROOT, "BENCH_*.json")):
        match = re.match(r"BENCH_(\d+)\.json$", os.path.basename(path))
        if match:
            reports.append((int(match.group(1)), path))
    return sorted(reports)


def _prior_walls():
    """Per-benchmark wall seconds from the newest existing report.

    Only ``python``-backend rows compare across reports: they measure
    the same default simulation path every earlier report measured
    (reports written before the backend column existed are all-python).
    """
    reports = _find_reports()
    if not reports:
        return None, None
    number, path = reports[-1]
    with open(path) as f:
        report = json.load(f)
    walls = {row["benchmark"]: row["wall_s"]
             for row in report.get("benchmarks", ())
             if row.get("backend", "python") == "python"}
    return number, walls


def _resolve_backends(requested):
    """The backend names to time, warning when native is degraded."""
    from repro.backend import native_unavailable_reason

    if requested != "all":
        if requested == "native" and native_unavailable_reason():
            print("warning: native backend unavailable (%s); timing the "
                  "fast fallback" % native_unavailable_reason())
        return [requested]
    backends = ["python", "fast"]
    reason = native_unavailable_reason()
    if reason is None:
        backends.append("native")
    else:
        print("skipping native backend: %s" % reason)
    return backends


def time_grid(name, language, vm_kind, cells, trials):
    """Min-of-N walls for every (backend, eventprog) cell of one
    benchmark, with trials *interleaved* round-robin across the cells.

    The report's headline columns are ratios between cells of the same
    benchmark (fast vs python, eventprog on vs off); timing each cell's
    trials back-to-back lets minutes of scheduler drift between cell
    groups masquerade as backend speedups or regressions.  Round-robin
    keeps every ratio's numerator and denominator seconds apart, so the
    min-of-N cells see the same machine.
    """
    best = {cell: (None, 0, None) for cell in cells}
    for _ in range(trials):
        for backend, eventprog in cells:
            clear_cache()
            t0 = time.perf_counter()
            result = run_program(name, vm_kind, language=language,
                                 use_cache=False, backend=backend,
                                 eventprog=eventprog)
            elapsed = time.perf_counter() - t0
            prior = best[(backend, eventprog)][0]
            if prior is None or elapsed < prior:
                best[(backend, eventprog)] = (
                    elapsed, result.instructions, result.eventprog_stats)
    return best


def tier_break_even():
    """Per-tier warmup rows: instructions to break even vs CPython with
    the threaded-code tier off and on (see experiments.fig5_tier)."""
    from repro.harness import experiments

    programs = [registry.py_program(name) for name in TIER_SET]
    rows, _text = experiments.fig5_tier(quick=True, programs=programs)
    out = []
    for row in rows:
        stats = row.get("tier_stats") or {}
        out.append({
            "benchmark": row["benchmark"],
            "break_even_off": row["break_even_vs_cpython_off"],
            "break_even_tier1": row["break_even_vs_cpython_tier1"],
            "break_even_reduction": (
                round(row["break_even_reduction"], 4)
                if row["break_even_reduction"] is not None else None),
            "rate_ratio_off": round(row["rate_ratio_off"], 3),
            "rate_ratio_tier1": round(row["rate_ratio_tier1"], 3),
            "promotions": stats.get("promotions", 0),
        })
        print("tier %-14s break-even off %-9s tier1 %-9s reduction %s"
              % (row["benchmark"],
                 row["break_even_vs_cpython_off"] or "-",
                 row["break_even_vs_cpython_tier1"] or "-",
                 "%.1f%%" % (100.0 * row["break_even_reduction"])
                 if row["break_even_reduction"] is not None else "-"))
    return out


def profile_quick_set():
    """cProfile each quick-set benchmark; print the top 20 by tottime."""
    import cProfile
    import pstats

    for name, language, vm_kind in QUICK_SET:
        print("== %s/%s ==" % (name, vm_kind))
        clear_cache()
        profiler = cProfile.Profile()
        profiler.enable()
        run_program(name, vm_kind, language=language, use_cache=False)
        profiler.disable()
        pstats.Stats(profiler).sort_stats("tottime").print_stats(20)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=DEFAULT_TRIALS,
                        help="min-of-N trials per benchmark")
    parser.add_argument("--profile", action="store_true",
                        help="cProfile the quick set instead of timing it")
    parser.add_argument("--backend", default="all",
                        choices=("python", "fast", "native", "all"),
                        help="simulation backend(s) to time "
                             "(default: every available backend)")
    parser.add_argument("--eventprog", default="off",
                        choices=("off", "on", "both"),
                        help="also time with resident event-programs on "
                             "(rows gain an FFI-crossings-per-iteration "
                             "estimate from the trace transform)")
    args = parser.parse_args(argv)
    if args.profile:
        profile_quick_set()
        return

    backends = _resolve_backends(args.backend)
    ep_modes = {"off": (False,), "on": (True,),
                "both": (False, True)}[args.eventprog]
    prev_number, prev_walls = _prior_walls()
    rows = []
    total = 0.0
    prev_total = 0.0
    python_walls = {}
    off_walls = {}
    seed_total = sum(SEED_SECONDS.values())
    seed_rem_total = sum(SEED_SECONDS_REMEASURED.values())
    for name, language, vm_kind in QUICK_SET:
        label = "%s/%s" % (name, vm_kind)
        cells = [(b, e) for b in backends for e in ep_modes]
        grid = time_grid(name, language, vm_kind, cells, args.trials)
        for backend, eventprog in cells:
            seconds, instructions, ep_stats = grid[(backend, eventprog)]
            row = {
                "benchmark": label,
                "backend": backend,
                "eventprog": eventprog,
                "wall_s": round(seconds, 3),
                "sim_instructions": instructions,
                "sim_insns_per_sec": round(instructions / seconds),
            }
            line = "%-22s %-10s %6.2fs" % (
                label, backend + ("+ep" if eventprog else ""), seconds)
            if eventprog:
                off_wall = off_walls.get((label, backend))
                if off_wall is not None:
                    row["speedup_vs_eventprog_off"] = round(
                        off_wall / seconds, 2)
                if ep_stats:
                    # Static machine-call counts of the transformed trace
                    # bodies: each executes once per loop iteration, so
                    # before/after is the per-iteration FFI-crossings
                    # estimate the event-program layer removes.
                    before = ep_stats.get("trace_calls_before", 0)
                    after = ep_stats.get("trace_calls_after", 0)
                    row["trace_ffi_per_iter_before"] = before
                    row["trace_ffi_per_iter_after"] = after
                    row["eventprog_programs"] = ep_stats.get("programs", 0)
                    if before:
                        row["trace_ffi_reduction"] = round(
                            1.0 - after / float(before), 3)
                        line += "  ffi/iter %d->%d" % (before, after)
            else:
                off_walls[(label, backend)] = seconds
            if backend == "python" and not eventprog:
                # Seed/previous-report baselines all measured the
                # reference path, so only python rows compare to them.
                total += seconds
                python_walls[label] = seconds
                row["seed_wall_s"] = SEED_SECONDS[label]
                row["speedup_vs_seed"] = round(
                    SEED_SECONDS[label] / seconds, 2)
                row["seed_remeasured_wall_s"] = \
                    SEED_SECONDS_REMEASURED[label]
                row["speedup_vs_seed_remeasured"] = round(
                    SEED_SECONDS_REMEASURED[label] / seconds, 2)
                line += "  (seed %5.2fs, %0.2fx" % (
                    SEED_SECONDS[label], SEED_SECONDS[label] / seconds)
                if prev_walls and label in prev_walls:
                    prev_total += prev_walls[label]
                    row["prev_wall_s"] = prev_walls[label]
                    row["speedup_vs_prev"] = round(
                        prev_walls[label] / seconds, 2)
                    line += "; prev %5.2fs, %0.2fx" % (
                        prev_walls[label], prev_walls[label] / seconds)
                line += ")"
            elif label in python_walls:
                row["python_wall_s"] = round(python_walls[label], 3)
                row["speedup_vs_python_backend"] = round(
                    python_walls[label] / seconds, 2)
                line += "  (python %5.2fs, %0.2fx)" % (
                    python_walls[label], python_walls[label] / seconds)
            rows.append(row)
            print(line + "  %.1fM insns/s" % (instructions / seconds / 1e6))
    report = {
        "trials": args.trials,
        "backends": backends,
        "eventprog": args.eventprog,
        "benchmarks": rows,
        "tier_break_even": tier_break_even(),
    }
    if python_walls:
        report.update({
            "total_wall_s": round(total, 3),
            "seed_total_wall_s": round(seed_total, 3),
            "speedup_vs_seed": round(seed_total / total, 2),
            "seed_remeasured_total_wall_s": round(seed_rem_total, 3),
            "speedup_vs_seed_remeasured": round(seed_rem_total / total, 2),
        })
    if prev_walls and prev_total:
        report["prev_report"] = "BENCH_%d.json" % prev_number
        report["prev_total_wall_s"] = round(prev_total, 3)
        report["speedup_vs_prev"] = round(prev_total / total, 2)
    out_number = (prev_number or 0) + 1
    out_path = os.path.join(_ROOT, "BENCH_%d.json" % out_number)
    with open(out_path, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    if python_walls:
        summary = "TOTAL (python rows) %.2fs vs seed %.2fs -> %.2fx" % (
            total, seed_total, seed_total / total)
        if prev_walls and prev_total:
            summary += "  (vs prev %.2fs -> %.2fx)" % (
                prev_total, prev_total / total)
    else:
        summary = "TOTAL %.2fs" % sum(r["wall_s"] for r in rows)
    print(summary + "  (wrote %s)" % out_path)


if __name__ == "__main__":
    main()
