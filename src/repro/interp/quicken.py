"""Quickening: per-code-object superinstruction discovery (host fast path).

Real VMs rewrite hot bytecode at first execution — CPython 3.11's
adaptive specializing interpreter, classic threaded-code
superinstructions — to cut per-bytecode dispatch overhead.  We apply the
same family of techniques one level down: the *simulated* instruction
stream (the scientific output) is untouched, but the host-side Python
loop that produces it collapses straight-line spans of machine-silent
bytecodes into one :meth:`Machine.quick_run` call plus a batch of
equally-silent semantic micro-handlers.

This module holds the interpreter-independent piece: scanning a bytecode
stream for fusable straight-line runs.  Each guest VM supplies its own
notion of "fusable" (a handler whose entire machine footprint is a fixed
sequence of block charges) and its own jump/merge-point analysis, then
builds per-code run tables from the spans returned here.

Safety rules (shared by every interpreter, enforced here):

* a run never *crosses* a jump target — a jump into the middle of a
  would-be fused region must land on an ordinary unfused dispatch, so
  runs are recorded only at their first pc and interior pcs stay None in
  the run table;
* a run never *starts* at a JitDriver merge point (a backward-jump
  target), where hot-loop counting, tracing, and compiled-loop entry
  interpose between dispatches;
* runs are only taken while ``ctx.tracer is None`` (callers check): the
  meta-interpreter always sees the original un-fused bytecode stream,
  so traces, jitlogs, and resume snapshots are unchanged.
"""


def find_runs(n_ops, fusable, jump_targets, merge_targets, min_run=2,
              start_pc=1):
    """Maximal straight-line fusable runs over a bytecode stream.

    Returns a list of half-open pc ranges ``(start, end)`` such that

    * ``start >= start_pc`` (interpreters whose dispatch correlates on
      the previous opcode pass 1 so every run has a static predecessor),
    * every pc in ``[start, end)`` satisfies ``fusable(pc)``,
    * no pc strictly inside the run is in ``jump_targets`` (fusion never
      crosses a branch target),
    * ``start`` is not in ``merge_targets`` (no fusion at JitDriver
      merge points),
    * ``end - start >= min_run`` (shorter spans are not worth a table
      entry).
    """
    runs = []
    pc = start_pc
    while pc < n_ops:
        if not fusable(pc) or pc in merge_targets:
            pc += 1
            continue
        end = pc + 1
        while end < n_ops and fusable(end) and end not in jump_targets:
            end += 1
        if end - pc >= min_run:
            runs.append((pc, end))
        pc = end
    return runs
