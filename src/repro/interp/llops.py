"""LLOps: the low-level operation layer guest interpreters are written
against.

This is the reproduction's equivalent of RPython's translation boundary.
Guest interpreters perform *all* work on runtime-varying ("red") values
through these methods.  The layer has two modes:

* **direct mode** (``ctx.tracer is None``): operations execute
  immediately on raw values and charge interpreter-level instruction
  costs to the machine.

* **tracing mode**: the meta-interpreter is recording.  Red values are
  :class:`TBox` handles carrying both the concrete value and the IR
  value; each operation executes concretely *and* records an IR op
  (with promotion guards capturing observed constants/classes), while
  charging meta-interpretation costs — which is precisely how RPython
  traces the interpreter rather than the application.

Raw (non-TBox) values in tracing mode are trace *constants* — this is
what makes the interpreter's green state (bytecode, pc, code objects)
melt away from traces.
"""

from repro.interp.objects import (
    LLArray,
    TBox,
    concrete,
    sizeof_array,
    sizeof_instance,
)
from repro.isa import insns
from repro.jit import costs, ir
from repro.jit.semantics import EVAL, LLOverflow

# -- direct-mode interpreter cost mixes ---------------------------------------
# These model the AOT-compiled RPython interpreter's handler bodies:
# heavier than hand-written C (CPython) by design — the paper measures
# CPython about 2x faster than PyPy-without-JIT.

_D_FRAME = insns.mix(load=5, store=2, alu=4, br_bulk=2)
_D_ARITH = insns.mix(alu=8, load=8, store=3, br_bulk=3)
_D_CMP = insns.mix(alu=8, load=8, br_bulk=3)
_D_DIV = insns.mix(div=1, alu=8, load=8, store=3, br_bulk=3)
_D_MUL = insns.mix(mul=1, alu=7, load=8, store=3, br_bulk=3)
_D_FARITH = insns.mix(fpu=1, alu=7, load=8, store=3, br_bulk=3)
_D_FIELD = insns.mix(alu=4, load=3, br_bulk=1)
_D_NEW = insns.mix(alu=9, store=5, load=6, br_bulk=3)
_D_ARRAY = insns.mix(alu=5, load=3, br_bulk=2)
_D_STR = insns.mix(alu=5, load=6, br_bulk=2)
_D_CALL = insns.mix(alu=8, store=5, load=7, br_bulk=3)
_D_MISC = insns.mix(alu=4, load=2, br_bulk=1)
_D_CLS = insns.mix(load=1, alu=1)

_OVERFLOWED = object()  # sentinel stored by failed ovf ops (executor use)


class LLOps(object):
    """The operation layer; one instance per VM context."""

    def __init__(self, ctx):
        self.ctx = ctx
        self.machine = ctx.machine
        self.gc = ctx.gc
        # Pre-lowered block descriptors for every handler cost mix: the
        # direct-mode hot path retires them in O(1) via exec_block.
        machine = ctx.machine
        self._xb = machine.exec_block
        self._b_frame = machine.block(_D_FRAME)
        self._b_arith = machine.block(_D_ARITH)
        self._b_cmp = machine.block(_D_CMP)
        self._b_div = machine.block(_D_DIV)
        self._b_mul = machine.block(_D_MUL)
        self._b_farith = machine.block(_D_FARITH)
        self._b_field = machine.block(_D_FIELD)
        self._b_new = machine.block(_D_NEW)
        self._b_array = machine.block(_D_ARRAY)
        self._b_str = machine.block(_D_STR)
        self._b_call = machine.block(_D_CALL)
        self._b_misc = machine.block(_D_MISC)
        self._b_cls = machine.block(_D_CLS)
        self._f_trace = machine.fused_block(
            costs.TRACE_RECORD_MIX,
            costs.TRACE_RECORD_BRANCHES,
            costs.TRACE_RECORD_BRANCH_MISS_RATE,
        )

    # -- tracing helpers ------------------------------------------------------

    def _ir(self, value):
        if type(value) is TBox:
            tracer = self.ctx.tracer
            if value.owner is not tracer:
                # Stale box from an abandoned recording: its dataflow
                # link is meaningless here.  Kill this trace cleanly and
                # keep executing on the concrete value.
                tracer.dead = "stale trace box"
                return ir.Const(value.value)
            return value.ir
        return ir.Const(value)

    def _charge_trace(self, n_ops=1):
        self.machine.exec_fused(self._f_trace)

    def _pure2(self, opnum, a, b, direct_block):
        """Binary pure op: execute, record when tracing."""
        tracer = self.ctx.tracer
        av = concrete(a)
        bv = concrete(b)
        result = EVAL[opnum](av, bv)
        if tracer is None:
            self._xb(direct_block)
            return result
        self._charge_trace()
        if type(a) is not TBox and type(b) is not TBox:
            return result  # constant-folded at record time
        op = tracer.record(opnum, [self._ir(a), self._ir(b)], None)
        return TBox(result, op, tracer)

    def _pure1(self, opnum, a, direct_block):
        tracer = self.ctx.tracer
        result = EVAL[opnum](concrete(a))
        if tracer is None:
            self._xb(direct_block)
            return result
        self._charge_trace()
        if type(a) is not TBox:
            return result
        op = tracer.record(opnum, [self._ir(a)], None)
        return TBox(result, op, tracer)

    # -- frame operations (virtualized: no IR is ever recorded) -----------------

    def stack_push(self, frame, value):
        frame.stack.append(value)
        self._xb(self._b_frame)

    def stack_pop(self, frame):
        self._xb(self._b_frame)
        return frame.stack.pop()

    def stack_peek(self, frame, depth=0):
        self._xb(self._b_frame)
        return frame.stack[-1 - depth]

    def getlocal(self, frame, index):
        self._xb(self._b_frame)
        return frame.locals[index]

    def setlocal(self, frame, index, value):
        self._xb(self._b_frame)
        frame.locals[index] = value

    # -- promotion and type dispatch ----------------------------------------------

    def promote(self, value):
        """Make a red value green: guard_value and return it raw."""
        tracer = self.ctx.tracer
        if tracer is None:
            self._xb(self._b_misc)
            return concrete(value)
        self._charge_trace()
        if type(value) is not TBox:
            return value
        if value.owner is not tracer:
            tracer.dead = "stale trace box"
            return value.value
        if value.ir.is_constant():
            return value.value
        tracer.record_guard(
            ir.GUARD_VALUE, [value.ir, ir.Const(value.value)], None
        )
        value.ir = ir.Const(value.value)
        return value.value

    def cls_of(self, value):
        """The class of a boxed value; records guard_class when tracing."""
        tracer = self.ctx.tracer
        if tracer is None:
            self._xb(self._b_cls)
            # concrete(): a stale trace box (from an abandoned
            # recording) is just its value in direct mode.
            return concrete(value).__class__
        self._charge_trace()
        if type(value) is not TBox:
            return value.__class__
        cls = value.value.__class__
        tracer.guard_class(self._ir(value), cls)
        return cls

    def is_true(self, value):
        """Branch on a red boolean; records guard_true/guard_false."""
        tracer = self.ctx.tracer
        if tracer is None:
            self._xb(self._b_misc)
            return bool(concrete(value))
        self._charge_trace()
        if type(value) is not TBox:
            return bool(value)
        result = bool(value.value)
        ir_value = self._ir(value)
        if not ir_value.is_constant():
            guard = ir.GUARD_TRUE if result else ir.GUARD_FALSE
            tracer.record_guard(guard, [ir_value], None)
        return result

    def is_null(self, value):
        """Branch on pointer nullness; records guard_isnull/nonnull."""
        tracer = self.ctx.tracer
        if tracer is None:
            self._xb(self._b_misc)
            return concrete(value) is None
        self._charge_trace()
        if type(value) is not TBox:
            return value is None
        result = value.value is None
        ir_value = self._ir(value)
        if not ir_value.is_constant():
            guard = ir.GUARD_ISNULL if result else ir.GUARD_NONNULL
            tracer.record_guard(guard, [ir_value], None)
        return result

    # -- integer arithmetic ----------------------------------------------------------

    def int_add(self, a, b):
        return self._pure2(ir.INT_ADD, a, b, self._b_arith)

    def int_sub(self, a, b):
        return self._pure2(ir.INT_SUB, a, b, self._b_arith)

    def int_mul(self, a, b):
        return self._pure2(ir.INT_MUL, a, b, self._b_mul)

    def int_floordiv(self, a, b):
        return self._pure2(ir.INT_FLOORDIV, a, b, self._b_div)

    def int_mod(self, a, b):
        return self._pure2(ir.INT_MOD, a, b, self._b_div)

    def int_and(self, a, b):
        return self._pure2(ir.INT_AND, a, b, self._b_arith)

    def int_or(self, a, b):
        return self._pure2(ir.INT_OR, a, b, self._b_arith)

    def int_xor(self, a, b):
        return self._pure2(ir.INT_XOR, a, b, self._b_arith)

    def int_lshift(self, a, b):
        return self._pure2(ir.INT_LSHIFT, a, b, self._b_arith)

    def int_rshift(self, a, b):
        return self._pure2(ir.INT_RSHIFT, a, b, self._b_arith)

    def int_neg(self, a):
        return self._pure1(ir.INT_NEG, a, self._b_arith)

    def int_invert(self, a):
        return self._pure1(ir.INT_INVERT, a, self._b_arith)

    def int_is_true(self, a):
        return self._pure1(ir.INT_IS_TRUE, a, self._b_arith)

    def int_lt(self, a, b):
        return self._pure2(ir.INT_LT, a, b, self._b_cmp)

    def int_le(self, a, b):
        return self._pure2(ir.INT_LE, a, b, self._b_cmp)

    def int_eq(self, a, b):
        return self._pure2(ir.INT_EQ, a, b, self._b_cmp)

    def int_ne(self, a, b):
        return self._pure2(ir.INT_NE, a, b, self._b_cmp)

    def int_gt(self, a, b):
        return self._pure2(ir.INT_GT, a, b, self._b_cmp)

    def int_ge(self, a, b):
        return self._pure2(ir.INT_GE, a, b, self._b_cmp)

    def _ovf(self, opnum, guardnum_ok, a, b):
        tracer = self.ctx.tracer
        av = concrete(a)
        bv = concrete(b)
        try:
            result = EVAL[opnum](av, bv)
            overflowed = False
        except LLOverflow:
            result = _OVERFLOWED
            overflowed = True
        if tracer is None:
            self._xb(self._b_arith)
            if overflowed:
                raise LLOverflow
            return result
        self._charge_trace()
        if type(a) is not TBox and type(b) is not TBox:
            if overflowed:
                raise LLOverflow
            return result
        op = tracer.record(opnum, [self._ir(a), self._ir(b)], None)
        if overflowed:
            tracer.record_guard(ir.GUARD_OVERFLOW, [op], None)
            raise LLOverflow
        tracer.record_guard(guardnum_ok, [op], None)
        return TBox(result, op, tracer)

    def int_add_ovf(self, a, b):
        return self._ovf(ir.INT_ADD_OVF, ir.GUARD_NO_OVERFLOW, a, b)

    def int_sub_ovf(self, a, b):
        return self._ovf(ir.INT_SUB_OVF, ir.GUARD_NO_OVERFLOW, a, b)

    def int_mul_ovf(self, a, b):
        return self._ovf(ir.INT_MUL_OVF, ir.GUARD_NO_OVERFLOW, a, b)

    # -- float arithmetic ---------------------------------------------------------------

    def float_add(self, a, b):
        return self._pure2(ir.FLOAT_ADD, a, b, self._b_farith)

    def float_sub(self, a, b):
        return self._pure2(ir.FLOAT_SUB, a, b, self._b_farith)

    def float_mul(self, a, b):
        return self._pure2(ir.FLOAT_MUL, a, b, self._b_farith)

    def float_truediv(self, a, b):
        return self._pure2(ir.FLOAT_TRUEDIV, a, b, self._b_farith)

    def float_neg(self, a):
        return self._pure1(ir.FLOAT_NEG, a, self._b_farith)

    def float_abs(self, a):
        return self._pure1(ir.FLOAT_ABS, a, self._b_farith)

    def float_sqrt(self, a):
        return self._pure1(ir.FLOAT_SQRT, a, self._b_farith)

    def float_lt(self, a, b):
        return self._pure2(ir.FLOAT_LT, a, b, self._b_farith)

    def float_le(self, a, b):
        return self._pure2(ir.FLOAT_LE, a, b, self._b_farith)

    def float_eq(self, a, b):
        return self._pure2(ir.FLOAT_EQ, a, b, self._b_farith)

    def float_ne(self, a, b):
        return self._pure2(ir.FLOAT_NE, a, b, self._b_farith)

    def float_gt(self, a, b):
        return self._pure2(ir.FLOAT_GT, a, b, self._b_farith)

    def float_ge(self, a, b):
        return self._pure2(ir.FLOAT_GE, a, b, self._b_farith)

    def cast_int_to_float(self, a):
        return self._pure1(ir.CAST_INT_TO_FLOAT, a, self._b_farith)

    def cast_float_to_int(self, a):
        return self._pure1(ir.CAST_FLOAT_TO_INT, a, self._b_farith)

    # -- pointer ops -------------------------------------------------------------------------

    def ptr_eq(self, a, b):
        tracer = self.ctx.tracer
        result = concrete(a) is concrete(b)
        if tracer is None:
            self._xb(self._b_misc)
            return result
        self._charge_trace()
        if type(a) is not TBox and type(b) is not TBox:
            return result
        op = tracer.record(ir.PTR_EQ, [self._ir(a), self._ir(b)], None)
        return TBox(result, op, tracer)

    def ptr_ne(self, a, b):
        tracer = self.ctx.tracer
        result = concrete(a) is not concrete(b)
        if tracer is None:
            self._xb(self._b_misc)
            return result
        self._charge_trace()
        if type(a) is not TBox and type(b) is not TBox:
            return result
        op = tracer.record(ir.PTR_NE, [self._ir(a), self._ir(b)], None)
        return TBox(result, op, tracer)

    # -- string ops (interpreter-internal byte strings) --------------------------------

    def strlen(self, s):
        return self._pure1(ir.STRLEN, s, self._b_str)

    def strgetitem(self, s, i):
        return self._pure2(ir.STRGETITEM, s, i, self._b_str)

    def str_eq(self, a, b):
        return self._pure2(ir.STR_EQ, a, b, self._b_str)

    def str_concat(self, a, b):
        return self._pure2(ir.STR_CONCAT, a, b, self._b_str)

    # -- unicode ops (guest-level strings) ------------------------------------------------

    def unicodelen(self, s):
        return self._pure1(ir.UNICODELEN, s, self._b_str)

    def unicodegetitem(self, s, i):
        return self._pure2(ir.UNICODEGETITEM, s, i, self._b_str)

    def unicode_eq(self, a, b):
        return self._pure2(ir.UNICODE_EQ, a, b, self._b_str)

    def unicode_concat(self, a, b):
        return self._pure2(ir.UNICODE_CONCAT, a, b, self._b_str)

    # -- heap operations ---------------------------------------------------------------------

    def new(self, cls, **fields):
        """Allocate a boxed guest object with the given fields."""
        obj = cls.__new__(cls)
        size = sizeof_instance(cls)
        addr = self.gc.allocate(size, obj=obj)
        obj._addr = addr
        tracer = self.ctx.tracer
        if tracer is None:
            self._xb(self._b_new)
            for name, value in fields.items():
                setattr(obj, name, concrete(value))
                self.machine.store(addr)
            return obj
        self._charge_trace()
        op = tracer.record(ir.NEW_WITH_VTABLE, [ir.Const(cls)], cls)
        for name, value in fields.items():
            setattr(obj, name, concrete(value))
            descr = ir.FieldDescr.get(cls, name)
            tracer.record(ir.SETFIELD_GC, [op, self._ir(value)], descr)
        tracer.set_known_class(op, cls)
        return TBox(obj, op, tracer)

    def getfield(self, obj, name):
        tracer = self.ctx.tracer
        if tracer is None:
            obj = concrete(obj)
            value = getattr(obj, name)
            descr = ir.FieldDescr.get(obj.__class__, name)
            self._xb(self._b_field)
            self.machine.load(obj._addr + descr.offset)
            return value
        self._charge_trace()
        raw = concrete(obj)
        value = getattr(raw, name)
        descr = ir.FieldDescr.get(raw.__class__, name)
        if type(obj) is not TBox or obj.ir.is_constant():
            if descr.immutable:
                return value  # pure load from a constant object: folded
            opnum = ir.GETFIELD_GC
        else:
            opnum = ir.GETFIELD_GC_PURE if descr.immutable else ir.GETFIELD_GC
        op = tracer.record(opnum, [self._ir(obj)], descr)
        return TBox(value, op, tracer)

    def setfield(self, obj, name, value):
        tracer = self.ctx.tracer
        if tracer is None:
            obj = concrete(obj)
            descr = ir.FieldDescr.get(obj.__class__, name)
            setattr(obj, name, concrete(value))
            self._xb(self._b_field)
            self.machine.store(obj._addr + descr.offset)
            return
        self._charge_trace()
        raw = concrete(obj)
        descr = ir.FieldDescr.get(raw.__class__, name)
        setattr(raw, name, concrete(value))
        tracer.record(
            ir.SETFIELD_GC, [self._ir(obj), self._ir(value)], descr
        )

    # -- arrays ---------------------------------------------------------------------------------

    def newarray(self, length, fill=None):
        items = [fill] * length
        arr = LLArray(items)
        arr._addr = self.gc.allocate(sizeof_array(length), obj=arr)
        tracer = self.ctx.tracer
        if tracer is None:
            self._xb(self._b_new)
            return arr
        self._charge_trace()
        op = tracer.record(
            ir.NEW_ARRAY, [self._ir(length)], LLArray
        )
        return TBox(arr, op, tracer)

    def newarray_from(self, values):
        """Allocate an LLArray initialized from concrete values."""
        items = [concrete(v) for v in values]
        arr = LLArray(items)
        arr._addr = self.gc.allocate(sizeof_array(len(items)), obj=arr)
        tracer = self.ctx.tracer
        if tracer is None:
            self._xb(self._b_new)
            self.machine.exec_mix(insns.mix(store=len(items)))
            return arr
        self._charge_trace()
        op = tracer.record(
            ir.NEW_ARRAY, [ir.Const(len(items))], LLArray
        )
        result = TBox(arr, op, tracer)
        for i, value in enumerate(values):
            tracer.record(
                ir.SETARRAYITEM_GC,
                [op, ir.Const(i), self._ir(value)],
                LLArray,
            )
        return result

    def getarrayitem(self, arr, index):
        tracer = self.ctx.tracer
        if tracer is None:
            arr = concrete(arr)
            index = concrete(index)
            self._xb(self._b_array)
            self.machine.load(arr._addr + 16 + 8 * index)
            return arr.items[index]
        self._charge_trace()
        raw = concrete(arr)
        value = raw.items[concrete(index)]
        if type(arr) is not TBox and type(index) is not TBox:
            # Even a constant array's contents are mutable: record a load
            # from a constant array.
            pass
        op = tracer.record(
            ir.GETARRAYITEM_GC, [self._ir(arr), self._ir(index)], LLArray
        )
        return TBox(value, op, tracer)

    def setarrayitem(self, arr, index, value):
        tracer = self.ctx.tracer
        if tracer is None:
            arr = concrete(arr)
            index = concrete(index)
            self._xb(self._b_array)
            self.machine.store(arr._addr + 16 + 8 * index)
            arr.items[index] = concrete(value)
            return
        self._charge_trace()
        raw = concrete(arr)
        raw.items[concrete(index)] = concrete(value)
        tracer.record(
            ir.SETARRAYITEM_GC,
            [self._ir(arr), self._ir(index), self._ir(value)],
            LLArray,
        )

    def arraylen(self, arr):
        tracer = self.ctx.tracer
        if tracer is None:
            self._xb(self._b_array)
            return len(concrete(arr).items)
        self._charge_trace()
        raw = concrete(arr)
        if type(arr) is not TBox:
            return len(raw.items)
        op = tracer.record(ir.ARRAYLEN_GC, [self._ir(arr)], LLArray)
        return TBox(len(raw.items), op, tracer)

    # -- residual calls -----------------------------------------------------------------------------

    def residual_call(self, func, *args):
        """Call an AOT-compiled runtime function.

        In direct mode this is a plain interpreter-level call.  In
        tracing mode a ``call``/``call_pure`` IR op is recorded; at JIT
        execution time the op re-invokes the same implementation under
        JIT_CALL annotations (the paper's JIT-call phase).
        """
        tracer = self.ctx.tracer
        if tracer is None:
            self._xb(self._b_call)
            pc = func.pc
            self.machine.call(pc)
            result = func.call(self.ctx, args)
            self.machine.ret(pc)
            return result
        self._charge_trace()
        raw_args = [concrete(a) for a in args]
        all_const = all(type(a) is not TBox for a in args)
        # Run the AOT body with tracing suspended: its internals are
        # opaque to the JIT (that is the point of a residual call), and
        # callbacks into guest code (sort comparators) must execute in
        # direct mode.
        self.ctx.tracer = None
        try:
            result = func.call(self.ctx, raw_args)
        finally:
            self.ctx.tracer = tracer
        if func.effects == "pure" and all_const:
            return result
        opnum = ir.CALL_PURE if func.effects == "pure" else ir.CALL
        op = tracer.record(
            opnum,
            [self._ir(a) for a in args],
            ir.CallDescr(func),
        )
        if not func.reexec_safe:
            tracer.mark_hazard()
        if func.invalidates_heap:
            tracer.invalidate_caches()
        # None results are boxed too: for functions like dict lookup,
        # None is *data* (present/absent), and folding it to a trace
        # constant would compile the miss path without a guard.
        return TBox(result, op, tracer)

    # -- application-level annotations ------------------------------------------------------------------

    def app_annotation(self, payload):
        """Emit an application-layer cross-layer annotation."""
        from repro.core import tags

        self.machine.annot(tags.APP_EVENT, payload)
