"""Quickstart: run a guest program on the meta-tracing framework.

Builds a tiny program for MiniLang (the framework's tutorial VM), runs
it with the meta-tracing JIT off and on, and prints what the cross-layer
tooling observed: simulated time, phase breakdown, and the compiled
trace.

Run:  python examples/quickstart.py
"""

from repro.core.config import SystemConfig
from repro.interp.context import VMContext
from repro.interp.minilang import Code, MiniInterp
from repro.pintool.tool import PinTool

# sum the integers 1..N with a countdown loop:
#   local0 = n; local1 = 0
#   while local0 != 0: local1 += local0; local0 -= 1
PROGRAM = Code("sum_to_n", [
    ("load_const", 0),      # 0
    ("store_local", 1),     # 1
    ("load_local", 0),      # 2: loop header
    ("load_const", 0),      # 3
    ("eq", None),           # 4
    ("jump_if_false", 7),   # 5
    ("jump", 16),           # 6 -> exit
    ("load_local", 1),      # 7
    ("load_local", 0),      # 8
    ("add", None),          # 9
    ("store_local", 1),     # 10
    ("load_local", 0),      # 11
    ("load_const", 1),      # 12
    ("sub", None),          # 13
    ("store_local", 0),     # 14
    ("jump", 2),            # 15: backward jump -> can_enter_jit
    ("load_local", 1),      # 16
    ("return", None),       # 17
], n_locals=2)


def run(jit_enabled):
    config = SystemConfig()
    config.jit.enabled = jit_enabled
    ctx = VMContext(config)
    tool = PinTool(ctx.machine)
    interp = MiniInterp(ctx)
    result = interp.run(PROGRAM, args=(10_000,))
    tool.finish()
    return result, ctx, tool


def main():
    result, ctx, tool = run(jit_enabled=False)
    print("interpreter only: result=%d  cycles=%.0f"
          % (result.intval, ctx.machine.cycles))
    interp_cycles = ctx.machine.cycles

    result, ctx, tool = run(jit_enabled=True)
    print("with meta-JIT:    result=%d  cycles=%.0f  (%.1fx faster)"
          % (result.intval, ctx.machine.cycles,
             interp_cycles / ctx.machine.cycles))

    print("\nphase breakdown (fraction of cycles):")
    for phase, fraction in tool.phases.breakdown().items():
        if fraction > 0.001:
            print("  %-10s %.3f" % (phase, fraction))

    loop = ctx.registry.traces[0]
    print("\ncompiled loop: %d IR ops -> %d virtual-ISA instructions"
          % (loop.n_ops, loop.asm_size))
    print("optimized trace (loop body after the LABEL):")
    for op in loop.ops[loop.label_index:]:
        if op.name != "debug_merge_point":
            print("   ", op)


if __name__ == "__main__":
    main()
