#!/usr/bin/env python
"""Bench regression gate: fail CI when a bench-smoke row got slower.

Reads the newest ``BENCH_<n>.json`` (the report the preceding
``tools/bench.py`` step just wrote) and checks one benchmark/backend
row's ``sim_insns_per_sec`` against a baseline:

* with ``--eventprog`` (the default for the eventprog CI job), the
  baseline is the eventprog-*off* row of the same report — both rows
  were timed on the same runner seconds apart, so the comparison is
  machine-independent: the resident-program layer must never cost more
  than ``--max-regression`` (default 10%) of the plain backend's
  simulation rate;
* without it, the baseline is the same row in the previous (committed)
  report — a tree-over-tree gate for rows the repo tracks.

Exit status 1 on regression, 0 otherwise (missing rows are an error:
a gate that silently skips is no gate).

    python tools/bench_gate.py --benchmark richards/pypy --backend native
"""

import argparse
import glob
import json
import os
import re
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _reports():
    found = []
    for path in glob.glob(os.path.join(_ROOT, "BENCH_*.json")):
        match = re.match(r"BENCH_(\d+)\.json$", os.path.basename(path))
        if match:
            found.append((int(match.group(1)), path))
    return sorted(found)


def _row(report, benchmark, backend, eventprog):
    for row in report.get("benchmarks", ()):
        if (row.get("benchmark") == benchmark
                and row.get("backend", "python") == backend
                and bool(row.get("eventprog")) == eventprog):
            return row
    return None


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="richards/pypy")
    parser.add_argument("--backend", default="native")
    parser.add_argument("--eventprog", action="store_true",
                        help="gate the eventprog-on row against the "
                             "eventprog-off row of the same report")
    parser.add_argument("--max-regression", type=float, default=0.10,
                        help="largest tolerated fractional drop in "
                             "sim_insns_per_sec (default 0.10)")
    args = parser.parse_args(argv)

    reports = _reports()
    if not reports:
        print("bench gate: no BENCH_*.json reports found")
        return 1
    newest_number, newest_path = reports[-1]
    with open(newest_path) as handle:
        newest = json.load(handle)

    if args.eventprog:
        row = _row(newest, args.benchmark, args.backend, True)
        base = _row(newest, args.benchmark, args.backend, False)
        base_desc = "%s eventprog-off row" % os.path.basename(newest_path)
    else:
        row = _row(newest, args.benchmark, args.backend, False)
        base, base_desc = None, None
        if len(reports) >= 2:
            _, prev_path = reports[-2]
            with open(prev_path) as handle:
                base = _row(json.load(handle), args.benchmark,
                            args.backend, False)
            base_desc = os.path.basename(prev_path)
    if row is None:
        print("bench gate: %s/%s%s row missing from %s"
              % (args.benchmark, args.backend,
                 "+eventprog" if args.eventprog else "",
                 os.path.basename(newest_path)))
        return 1
    if base is None:
        print("bench gate: no baseline row for %s/%s (%s)"
              % (args.benchmark, args.backend, base_desc or "no report"))
        return 1

    rate = row["sim_insns_per_sec"]
    base_rate = base["sim_insns_per_sec"]
    drop = 1.0 - rate / float(base_rate)
    verdict = "FAIL" if drop > args.max_regression else "ok"
    print("bench gate [%s]: %s/%s%s %d insns/s vs %d (%s) -> %+.1f%%"
          % (verdict, args.benchmark, args.backend,
             "+eventprog" if args.eventprog else "", rate, base_rate,
             base_desc, -100.0 * drop))
    return 1 if drop > args.max_regression else 0


if __name__ == "__main__":
    sys.exit(main())
