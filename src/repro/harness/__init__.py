"""Experiment runner, per-table/figure functions, reporting."""
