# deltablue: the classic one-way constraint solver benchmark.
# Pointer-chasing, polymorphic method dispatch, linked structures.
N = 40

REQUIRED = 0
STRONG_PREFERRED = 1
PREFERRED = 2
STRONG_DEFAULT = 3
NORMAL = 4
WEAK_DEFAULT = 5
WEAKEST = 6


def weaker(s1, s2):
    return s1 > s2


def stronger(s1, s2):
    return s1 < s2


class Planner:
    def __init__(self):
        self.current_mark = 0

    def new_mark(self):
        self.current_mark += 1
        return self.current_mark

    def incremental_add(self, constraint):
        mark = self.new_mark()
        overridden = constraint.satisfy(mark, self)
        while overridden is not None:
            overridden = overridden.satisfy(self.new_mark(), self)

    def incremental_remove(self, constraint):
        out_var = constraint.output()
        constraint.mark_unsatisfied()
        constraint.remove_from_graph()
        unsatisfied = self.remove_propagate_from(out_var)
        i = 0
        strength = REQUIRED
        while strength <= WEAKEST:
            for u in unsatisfied:
                if u.strength == strength:
                    self.incremental_add(u)
            strength += 1

    def remove_propagate_from(self, out_var):
        unsatisfied = []
        out_var.determined_by = None
        out_var.walk_strength = WEAKEST
        out_var.stay = True
        todo = [out_var]
        while len(todo) > 0:
            v = todo.pop()
            for c in v.constraints:
                if not c.is_satisfied():
                    unsatisfied.append(c)
            determining = v.determined_by
            for next_c in v.constraints:
                if next_c is not determining and next_c.is_satisfied():
                    next_c.recalculate()
                    todo.append(next_c.output())
        return unsatisfied

    def add_propagate(self, c, mark):
        todo = [c]
        while len(todo) > 0:
            d = todo.pop()
            if d.output().mark == mark:
                self.incremental_remove(c)
                return False
            d.recalculate()
            for e in self.consuming_constraints(d.output()):
                todo.append(e)
        return True

    def consuming_constraints(self, v):
        result = []
        determining = v.determined_by
        for c in v.constraints:
            if c is not determining and c.is_satisfied():
                result.append(c)
        return result

    def make_plan(self, sources):
        mark = self.new_mark()
        plan = []
        todo = sources
        while len(todo) > 0:
            c = todo.pop()
            if c.output().mark != mark and c.inputs_known(mark):
                plan.append(c)
                c.output().mark = mark
                for next_c in self.consuming_constraints(c.output()):
                    todo.append(next_c)
        return plan

    def extract_plan_from_constraints(self, constraints):
        sources = []
        for c in constraints:
            if c.is_input() and c.is_satisfied():
                sources.append(c)
        return self.make_plan(sources)


class Variable:
    def __init__(self, name, value):
        self.name = name
        self.value = value
        self.constraints = []
        self.determined_by = None
        self.mark = 0
        self.walk_strength = WEAKEST
        self.stay = True

    def add_constraint(self, c):
        self.constraints.append(c)

    def remove_constraint(self, c):
        new_list = []
        for x in self.constraints:
            if x is not c:
                new_list.append(x)
        self.constraints = new_list
        if self.determined_by is c:
            self.determined_by = None


class Constraint:
    def __init__(self, strength, planner):
        self.strength = strength
        self.planner = planner

    def add_constraint(self):
        self.add_to_graph()
        self.planner.incremental_add(self)

    def satisfy(self, mark, planner):
        self.choose_method(mark)
        if not self.is_satisfied():
            if self.strength == REQUIRED:
                print("deltablue: required constraint unsatisfiable")
            return None
        self.mark_inputs(mark)
        out = self.output()
        overridden = out.determined_by
        if overridden is not None:
            overridden.mark_unsatisfied()
        out.determined_by = self
        if not planner.add_propagate(self, mark):
            print("deltablue: cycle")
        out.mark = mark
        return overridden

    def destroy_constraint(self):
        if self.is_satisfied():
            self.planner.incremental_remove(self)
        self.remove_from_graph()


class UnaryConstraint(Constraint):
    def __init__(self, v, strength, planner):
        Constraint.__init__(self, strength, planner)
        self.my_output = v
        self.satisfied = False
        self.add_constraint()

    def add_to_graph(self):
        self.my_output.add_constraint(self)
        self.satisfied = False

    def choose_method(self, mark):
        if self.my_output.mark != mark and \
                stronger(self.strength, self.my_output.walk_strength):
            self.satisfied = True
        else:
            self.satisfied = False

    def is_satisfied(self):
        return self.satisfied

    def mark_inputs(self, mark):
        pass

    def output(self):
        return self.my_output

    def recalculate(self):
        self.my_output.walk_strength = self.strength
        self.my_output.stay = not self.is_input()
        if self.my_output.stay:
            self.execute()

    def mark_unsatisfied(self):
        self.satisfied = False

    def inputs_known(self, mark):
        return True

    def remove_from_graph(self):
        if self.my_output is not None:
            self.my_output.remove_constraint(self)
        self.satisfied = False


class StayConstraint(UnaryConstraint):
    def execute(self):
        pass

    def is_input(self):
        return False


class EditConstraint(UnaryConstraint):
    def execute(self):
        pass

    def is_input(self):
        return True


FORWARD = 1
BACKWARD = 2
NONE_DIR = 0


class BinaryConstraint(Constraint):
    def __init__(self, v1, v2, strength, planner):
        Constraint.__init__(self, strength, planner)
        self.v1 = v1
        self.v2 = v2
        self.direction = NONE_DIR
        self.add_constraint()

    def choose_method(self, mark):
        if self.v1.mark == mark:
            if self.v2.mark != mark and \
                    stronger(self.strength, self.v2.walk_strength):
                self.direction = FORWARD
            else:
                self.direction = NONE_DIR
        elif self.v2.mark == mark:
            if self.v1.mark != mark and \
                    stronger(self.strength, self.v1.walk_strength):
                self.direction = BACKWARD
            else:
                self.direction = NONE_DIR
        elif weaker(self.v1.walk_strength, self.v2.walk_strength):
            if stronger(self.strength, self.v1.walk_strength):
                self.direction = BACKWARD
            else:
                self.direction = NONE_DIR
        else:
            if stronger(self.strength, self.v2.walk_strength):
                self.direction = FORWARD
            else:
                self.direction = NONE_DIR

    def add_to_graph(self):
        self.v1.add_constraint(self)
        self.v2.add_constraint(self)
        self.direction = NONE_DIR

    def is_satisfied(self):
        return self.direction != NONE_DIR

    def mark_inputs(self, mark):
        self.input().mark = mark

    def input(self):
        if self.direction == FORWARD:
            return self.v1
        return self.v2

    def output(self):
        if self.direction == FORWARD:
            return self.v2
        return self.v1

    def recalculate(self):
        ihn = self.input()
        out = self.output()
        out.walk_strength = max2(self.strength, ihn.walk_strength)
        out.stay = ihn.stay
        if out.stay:
            self.execute()

    def mark_unsatisfied(self):
        self.direction = NONE_DIR

    def inputs_known(self, mark):
        i = self.input()
        return i.mark == mark or i.stay or i.determined_by is None

    def remove_from_graph(self):
        if self.v1 is not None:
            self.v1.remove_constraint(self)
        if self.v2 is not None:
            self.v2.remove_constraint(self)
        self.direction = NONE_DIR

    def is_input(self):
        return False


def max2(a, b):
    if a > b:
        return a
    return b


class ScaleConstraint(BinaryConstraint):
    def __init__(self, src, scale, offset, dest, strength, planner):
        self.scale = scale
        self.offset = offset
        BinaryConstraint.__init__(self, src, dest, strength, planner)

    def add_to_graph(self):
        BinaryConstraint.add_to_graph(self)
        self.scale.add_constraint(self)
        self.offset.add_constraint(self)

    def remove_from_graph(self):
        BinaryConstraint.remove_from_graph(self)
        if self.scale is not None:
            self.scale.remove_constraint(self)
        if self.offset is not None:
            self.offset.remove_constraint(self)

    def mark_inputs(self, mark):
        BinaryConstraint.mark_inputs(self, mark)
        self.scale.mark = mark
        self.offset.mark = mark

    def execute(self):
        if self.direction == FORWARD:
            self.v2.value = self.v1.value * self.scale.value \
                + self.offset.value
        else:
            self.v1.value = (self.v2.value - self.offset.value) \
                // self.scale.value

    def recalculate(self):
        ihn = self.input()
        out = self.output()
        out.walk_strength = max2(self.strength, ihn.walk_strength)
        out.stay = ihn.stay and self.scale.stay and self.offset.stay
        if out.stay:
            self.execute()


class EqualityConstraint(BinaryConstraint):
    def execute(self):
        self.output().value = self.input().value


def change(planner, v, new_value):
    edit = EditConstraint(v, PREFERRED, planner)
    plan = planner.extract_plan_from_constraints([edit])
    for i in range(10):
        v.value = new_value
        for c in plan:
            c.execute()
    edit.destroy_constraint()


def chain_test(n):
    planner = Planner()
    prev = None
    first = None
    last = None
    for i in range(n + 1):
        v = Variable("v" + str(i), 0)
        if prev is not None:
            EqualityConstraint(prev, v, REQUIRED, planner)
        if i == 0:
            first = v
        if i == n:
            last = v
        prev = v
    StayConstraint(last, STRONG_DEFAULT, planner)
    edit = EditConstraint(first, PREFERRED, planner)
    plan = planner.extract_plan_from_constraints([edit])
    total = 0
    for i in range(20):
        first.value = i
        for c in plan:
            c.execute()
        total += last.value
    edit.destroy_constraint()
    return total


def projection_test(n):
    planner = Planner()
    scale = Variable("scale", 10)
    offset = Variable("offset", 1000)
    src = None
    dst = None
    dests = []
    for i in range(n):
        src = Variable("src" + str(i), i)
        dst = Variable("dst" + str(i), i)
        dests.append(dst)
        StayConstraint(src, NORMAL, planner)
        ScaleConstraint(src, scale, offset, dst, REQUIRED, planner)
    change(planner, src, 17)
    total = dst.value
    change(planner, scale, 5)
    for d in dests:
        total += d.value
    change(planner, offset, 2000)
    for d in dests:
        total += d.value
    return total


def run_deltablue(n):
    a = chain_test(n)
    b = projection_test(n)
    print("deltablue", a, b)


run_deltablue(N)
