"""Table III: significant AOT-compiled functions called from traces."""

from conftest import save

from repro.harness import experiments


def test_table3(benchmark, quick):
    rows, text = benchmark.pedantic(
        lambda: experiments.table3(quick=quick), rounds=1, iterations=1)
    save("table3.txt", text)

    assert rows, "no AOT function exceeded the 10% threshold anywhere"
    functions = {name for _b, _pct, _src, name in rows}
    sources = {src for _b, _pct, src, _name in rows}
    # Paper shape: pidigits is dominated by rbigint entry points.
    pidigits = [r for r in rows if r[0] == "pidigits"]
    assert pidigits
    assert any("rbigint" in r[3] for r in pidigits)
    # Paper shape: the dict lookup function is prominent somewhere
    # (needs full-size runs for the dict-heavy benchmarks to warm up).
    if not quick:
        assert any("ll_call_lookup_function" in f or "ll_dict" in f
                   for f in functions)
    # Multiple source layers appear (R/L/C/I/M tags) at full size.
    if not quick:
        assert len(sources) >= 2
    else:
        assert sources
