"""TinyRkt: the Pycket-analogue guest VM plus the Racket reference."""
