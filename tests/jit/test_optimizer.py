"""Unit tests for the trace optimizer, on hand-built IR."""

import pytest

from repro.core.config import JitConfig
from repro.interp.objects import W_Root
from repro.jit import ir
from repro.jit.optimizer import optimize_trace
from repro.jit.resume import FrameState, Snapshot, VirtualSpec
from repro.jit.trace import LOOP, InputArg, Trace


class W_Box(W_Root):
    _immutable_fields_ = ("pure_field",)
    _size_ = 16


def make_trace(inputargs):
    return Trace(0, LOOP, ("code", 0), inputargs, [], [("code", 0, 1, 0)])


def snap(values):
    return Snapshot((FrameState("code", 0, tuple(values), ()),))


def opt(ops, inputargs, jump_args=None, cfg=None, target=None):
    cfg = cfg or JitConfig()
    trace = make_trace(inputargs)
    jump = ir.IROp(ir.JUMP, jump_args if jump_args is not None
                   else list(inputargs), None)
    optimize_trace(cfg, trace, ops, jump, target)
    return trace


def names(trace):
    return [op.name for op in trace.ops]


def test_constant_folding():
    add = ir.IROp(ir.INT_ADD, [ir.Const(2), ir.Const(3)], None)
    i0 = InputArg()
    use = ir.IROp(ir.INT_MUL, [add, i0], None)
    trace = opt([add, use], [i0], jump_args=[i0])
    assert "int_add" not in names(trace)
    mul = next(op for op in trace.ops if op.name == "int_mul")
    assert isinstance(mul.args[0], ir.Const)
    assert mul.args[0].value == 5


def test_cse_merges_pure_ops():
    i0 = InputArg()
    a = ir.IROp(ir.INT_ADD, [i0, ir.Const(1)], None)
    b = ir.IROp(ir.INT_ADD, [i0, ir.Const(1)], None)
    use = ir.IROp(ir.INT_MUL, [a, b], None)
    trace = opt([a, b, use], [i0], jump_args=[i0])
    assert names(trace).count("int_add") == 1
    mul = next(op for op in trace.ops if op.name == "int_mul")
    assert mul.args[0] is mul.args[1]


def test_cse_disabled():
    cfg = JitConfig(opt_cse=False, opt_loop_peeling=False)
    i0 = InputArg()
    a = ir.IROp(ir.INT_ADD, [i0, ir.Const(1)], None)
    b = ir.IROp(ir.INT_ADD, [i0, ir.Const(1)], None)
    use = ir.IROp(ir.INT_MUL, [a, b], None)
    trace = opt([a, b, use], [i0], jump_args=[i0], cfg=cfg)
    assert names(trace).count("int_add") == 2


def test_guard_class_dedup():
    i0 = InputArg()
    g1 = ir.IROp(ir.GUARD_CLASS, [i0, ir.Const(W_Box)], None)
    g1.snapshot = snap([i0])
    g2 = ir.IROp(ir.GUARD_CLASS, [i0, ir.Const(W_Box)], None)
    g2.snapshot = snap([i0])
    trace = opt([g1, g2], [i0], jump_args=[i0])
    assert names(trace).count("guard_class") == 1


def test_guard_value_constifies_downstream():
    i0 = InputArg()
    guard = ir.IROp(ir.GUARD_VALUE, [i0, ir.Const(7)], None)
    guard.snapshot = snap([i0])
    add = ir.IROp(ir.INT_ADD, [i0, ir.Const(1)], None)
    store_target = InputArg()
    effect = ir.IROp(ir.SETFIELD_GC, [store_target, add],
                     ir.FieldDescr.get(W_Box, "field_a"))
    trace = opt([guard, add, effect], [i0, store_target],
                jump_args=[i0, store_target])
    setfield = next(op for op in trace.ops if op.name == "setfield_gc")
    assert isinstance(setfield.args[1], ir.Const)
    assert setfield.args[1].value == 8


def test_heapcache_forwards_getfield():
    i0 = InputArg()
    descr = ir.FieldDescr.get(W_Box, "field_b")
    get1 = ir.IROp(ir.GETFIELD_GC, [i0], descr)
    get2 = ir.IROp(ir.GETFIELD_GC, [i0], descr)
    use = ir.IROp(ir.INT_ADD, [get1, get2], None)
    trace = opt([get1, get2, use], [i0], jump_args=[i0])
    assert names(trace).count("getfield_gc") == 1


def test_setfield_then_getfield_forwards():
    i0 = InputArg()
    i1 = InputArg()
    descr = ir.FieldDescr.get(W_Box, "field_c")
    setfield = ir.IROp(ir.SETFIELD_GC, [i0, i1], descr)
    getfield = ir.IROp(ir.GETFIELD_GC, [i0], descr)
    use = ir.IROp(ir.INT_ADD, [getfield, ir.Const(1)], None)
    target = InputArg()
    effect = ir.IROp(ir.SETFIELD_GC, [target, use],
                     ir.FieldDescr.get(W_Box, "field_d"))
    trace = opt([setfield, getfield, use, effect], [i0, i1, target],
                jump_args=[i0, i1, target])
    assert "getfield_gc" not in names(trace)


def test_call_invalidates_heap_cache():
    from repro.interp.aot import AotFunction

    func = AotFunction("f", "R", "any", lambda ctx: None)
    i0 = InputArg()
    descr = ir.FieldDescr.get(W_Box, "field_e")
    get1 = ir.IROp(ir.GETFIELD_GC, [i0], descr)
    call = ir.IROp(ir.CALL, [], ir.CallDescr(func))
    get2 = ir.IROp(ir.GETFIELD_GC, [i0], descr)
    use = ir.IROp(ir.INT_ADD, [get1, get2], None)
    target = InputArg()
    effect = ir.IROp(ir.SETFIELD_GC, [target, use],
                     ir.FieldDescr.get(W_Box, "field_f"))
    trace = opt([get1, call, get2, use, effect], [i0, target],
                jump_args=[i0, target])
    assert names(trace).count("getfield_gc") == 2


def test_virtual_allocation_removed():
    i0 = InputArg()
    new = ir.IROp(ir.NEW_WITH_VTABLE, [ir.Const(W_Box)], W_Box)
    descr = ir.FieldDescr.get(W_Box, "field_g")
    setfield = ir.IROp(ir.SETFIELD_GC, [new, i0], descr)
    getfield = ir.IROp(ir.GETFIELD_GC, [new], descr)
    add = ir.IROp(ir.INT_ADD, [getfield, ir.Const(1)], None)
    target = InputArg()
    effect = ir.IROp(ir.SETFIELD_GC, [target, add],
                     ir.FieldDescr.get(W_Box, "field_h"))
    trace = opt([new, setfield, getfield, add, effect], [i0, target],
                jump_args=[i0, target])
    assert "new_with_vtable" not in names(trace)


def test_escaping_virtual_is_forced():
    i0 = InputArg()
    target = InputArg()
    new = ir.IROp(ir.NEW_WITH_VTABLE, [ir.Const(W_Box)], W_Box)
    descr = ir.FieldDescr.get(W_Box, "field_i")
    setfield = ir.IROp(ir.SETFIELD_GC, [new, i0], descr)
    escape = ir.IROp(ir.SETFIELD_GC, [target, new],
                     ir.FieldDescr.get(W_Box, "field_j"))
    trace = opt([new, setfield, escape], [i0, target],
                jump_args=[i0, target])
    ops = names(trace)
    assert "new_with_vtable" in ops
    # The forced allocation writes its fields before escaping.
    assert ops.index("new_with_vtable") < ops.index("setfield_gc")


def test_virtual_in_snapshot_becomes_spec():
    i0 = InputArg()
    new = ir.IROp(ir.NEW_WITH_VTABLE, [ir.Const(W_Box)], W_Box)
    descr = ir.FieldDescr.get(W_Box, "field_k")
    setfield = ir.IROp(ir.SETFIELD_GC, [new, i0], descr)
    guard = ir.IROp(ir.GUARD_TRUE, [i0], None)
    guard.snapshot = snap([new])
    trace = opt([new, setfield, guard], [i0], jump_args=[i0])
    out_guard = next(op for op in trace.ops if op.is_guard())
    leaf = out_guard.snapshot.frames[0].locals[0]
    assert isinstance(leaf, VirtualSpec)
    assert leaf.cls is W_Box
    assert "new_with_vtable" not in names(trace)


def test_loop_peeling_unboxes_loop_args():
    # i0 is a box: each iteration loads its field, adds 1, reboxes.
    i0 = InputArg()
    descr = ir.FieldDescr.get(W_Box, "field_l")
    getfield = ir.IROp(ir.GETFIELD_GC, [i0], descr)
    add = ir.IROp(ir.INT_ADD, [getfield, ir.Const(1)], None)
    new = ir.IROp(ir.NEW_WITH_VTABLE, [ir.Const(W_Box)], W_Box)
    setfield = ir.IROp(ir.SETFIELD_GC, [new, add], descr)
    trace = opt([getfield, add, new, setfield], [i0], jump_args=[new])
    assert trace.label_index > 0  # peeled: preamble + label + body
    body = trace.ops[trace.label_index:]
    body_names = [op.name for op in body]
    assert "new_with_vtable" not in body_names
    assert "getfield_gc" not in body_names
    assert "int_add" in body_names


def test_no_peeling_when_disabled():
    cfg = JitConfig(opt_loop_peeling=False)
    i0 = InputArg()
    descr = ir.FieldDescr.get(W_Box, "field_m")
    getfield = ir.IROp(ir.GETFIELD_GC, [i0], descr)
    add = ir.IROp(ir.INT_ADD, [getfield, ir.Const(1)], None)
    new = ir.IROp(ir.NEW_WITH_VTABLE, [ir.Const(W_Box)], W_Box)
    setfield = ir.IROp(ir.SETFIELD_GC, [new, add], descr)
    trace = opt([getfield, add, new, setfield], [i0], jump_args=[new],
                cfg=cfg)
    assert trace.label_index == 0
    assert "new_with_vtable" in names(trace)


def test_ptr_eq_on_virtual_folds():
    i0 = InputArg()
    new = ir.IROp(ir.NEW_WITH_VTABLE, [ir.Const(W_Box)], W_Box)
    same = ir.IROp(ir.PTR_EQ, [new, new], None)
    different = ir.IROp(ir.PTR_EQ, [new, i0], None)
    guard = ir.IROp(ir.GUARD_TRUE, [same], None)
    guard.snapshot = snap([i0])
    guard2 = ir.IROp(ir.GUARD_FALSE, [different], None)
    guard2.snapshot = snap([i0])
    trace = opt([new, same, different, guard, guard2], [i0],
                jump_args=[i0])
    assert "ptr_eq" not in names(trace)
    assert "guard_true" not in names(trace)  # folded to const True
    assert "guard_false" not in names(trace)


def test_bridge_target_forces_everything():
    # A straight (bridge) trace jumping to another trace must pass real
    # values, not virtuals.
    i0 = InputArg()
    target_trace = make_trace([InputArg()])
    new = ir.IROp(ir.NEW_WITH_VTABLE, [ir.Const(W_Box)], W_Box)
    descr = ir.FieldDescr.get(W_Box, "field_n")
    setfield = ir.IROp(ir.SETFIELD_GC, [new, i0], descr)
    trace = opt([new, setfield], [i0], jump_args=[new],
                target=target_trace)
    assert trace.label_index == -1
    assert "new_with_vtable" in names(trace)
    assert trace.ops[-1].name == "jump"
    assert trace.ops[-1].descr is target_trace


def test_guard_on_constant_dropped():
    guard = ir.IROp(ir.GUARD_TRUE, [ir.Const(True)], None)
    i0 = InputArg()
    trace = opt([guard], [i0], jump_args=[i0])
    assert "guard_true" not in names(trace)
