# django: template-rendering benchmark — a miniature template engine
# with variable substitution, filters and loops over a context. String
# building + dict lookups (Table III: rstring.replace, dict lookup).
N = 150


class Template:
    def __init__(self, source):
        self.nodes = self.parse(source)

    def parse(self, source):
        nodes = []
        i = 0
        n = len(source)
        while i < n:
            start = source.find("{{", i)
            if start < 0:
                nodes.append(("text", source[i:n]))
                break
            if start > i:
                nodes.append(("text", source[i:start]))
            end = source.find("}}", start)
            expr = source[start + 2:end].strip()
            if "|" in expr:
                parts = expr.split("|")
                nodes.append(("var", parts[0].strip(), parts[1].strip()))
            else:
                nodes.append(("var", expr, ""))
            i = end + 2
        return nodes

    def render(self, context):
        out = []
        for node in self.nodes:
            if node[0] == "text":
                out.append(node[1])
            else:
                value = context.get(node[1], "")
                text = str(value)
                filter_name = node[2]
                if filter_name == "upper":
                    text = text.upper()
                elif filter_name == "lower":
                    text = text.lower()
                elif filter_name == "escape":
                    text = text.replace("&", "&amp;")
                    text = text.replace("<", "&lt;")
                    text = text.replace(">", "&gt;")
                out.append(text)
        return "".join(out)


ROW_TEMPLATE = ("<tr><td>{{ name|escape }}</td><td>{{ score }}</td>"
                "<td>{{ grade|upper }}</td><td>{{ note|lower }}</td></tr>")

PAGE_HEADER = "<html><body><h1>{{ title|escape }}</h1><table>"
PAGE_FOOTER = "</table></body></html>"


def run_django(iterations):
    row_tpl = Template(ROW_TEMPLATE)
    header_tpl = Template(PAGE_HEADER)
    grades = ["a", "b", "c", "d", "f"]
    checksum = 0
    for it in range(iterations):
        parts = [header_tpl.render({"title": "Results <" + str(it) + ">"})]
        for i in range(20):
            context = {
                "name": "student&" + str(i),
                "score": i * 7 % 100,
                "grade": grades[i % 5],
                "note": "OK" if i % 3 else "RETRY",
            }
            parts.append(row_tpl.render(context))
        parts.append(PAGE_FOOTER)
        page = "".join(parts)
        for ch in page[0:40]:
            checksum = (checksum * 31 + ord(ch)) % 1000000007
        checksum = (checksum + len(page)) % 1000000007
    print("django", checksum)


run_django(N)
