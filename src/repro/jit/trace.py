"""Compiled traces and the trace registry (the JIT's code cache)."""


class InputArg(object):
    """A trace input variable (bound at trace entry)."""

    __slots__ = ("index",)

    def __init__(self):
        self.index = -1

    def is_constant(self):
        return False

    def __repr__(self):
        return "i%d" % self.index


LOOP = "loop"
BRIDGE = "bridge"


class Trace(object):
    """One compiled unit: a loop or a bridge.

    After compilation:

    * ``inputargs`` — :class:`InputArg` list; the entry env slots.
    * ``ops`` — optimized IR operations in order.
    * ``entry_layout`` — (code, pc, n_locals, stack_depth): how the
      interpreter's frame state maps onto ``inputargs`` at entry.
    * ``label_index`` — position of the loop-closing LABEL op (loops).
    * ``op_exec_counts`` — dynamic execution count per op (jitlog data).
    * ``op_asm_insns`` — static assembly instructions per op (backend).
    """

    def __init__(self, trace_id, kind, greenkey, inputargs, ops,
                 entry_layout):
        self.trace_id = trace_id
        self.kind = kind
        self.greenkey = greenkey
        self.inputargs = inputargs
        self.ops = ops
        self.entry_layout = entry_layout
        self.label_index = 0
        self.op_exec_counts = [0] * len(ops)
        self.op_asm_insns = [0] * len(ops)
        self.executions = 0
        self.iterations = 0
        self.n_env_slots = 0
        # Pre-optimization stream, retained for translation validation
        # (analysis/transval.py); None for hand-built traces.
        self.recorded_ops = None
        self.recorded_jump = None

    @property
    def n_ops(self):
        return len(self.ops)

    @property
    def asm_size(self):
        return sum(self.op_asm_insns)

    def __repr__(self):
        return "<Trace #%d %s %d ops>" % (
            self.trace_id, self.kind, len(self.ops),
        )


class TraceRegistry(object):
    """All traces compiled during one VM run."""

    def __init__(self):
        self.traces = []
        self.by_greenkey = {}
        self.aborts = []          # (greenkey, reason) log
        self.blacklist = set()

    def new_trace_id(self):
        return len(self.traces)

    def register(self, trace):
        self.traces.append(trace)
        if trace.kind == LOOP:
            self.by_greenkey[trace.greenkey] = trace

    def lookup_loop(self, greenkey):
        return self.by_greenkey.get(greenkey)

    def record_abort(self, greenkey, reason):
        self.aborts.append((greenkey, reason))

    # -- aggregate statistics (feeds the jitlog reports) -------------------------

    def total_ops_compiled(self):
        return sum(t.n_ops for t in self.traces)

    def total_asm_size(self):
        return sum(t.asm_size for t in self.traces)

    def iter_op_records(self):
        """Yield (trace, op_index, op, exec_count, asm_insns) for all ops."""
        for trace in self.traces:
            counts = trace.op_exec_counts
            asm = trace.op_asm_insns
            for i, op in enumerate(trace.ops):
                yield trace, i, op, counts[i], asm[i]
