"""Exporter unit tests: Chrome trace JSON, summaries, diffs."""

import json

from repro.telemetry.bus import TelemetryBus
from repro.telemetry import export


def sample_events(ticks_per_us=1.0):
    clock = [0.0]
    bus = TelemetryBus(clock=lambda: clock[0], pid=5,
                       ticks_per_us=ticks_per_us, process_name="samp")
    bus.begin("run", "interp.dispatch")
    clock[0] += 10
    bus.begin("jit", "jit.exec")
    clock[0] += 20
    bus.begin("gc_minor", "gc.heap")
    clock[0] += 5
    bus.end("gc_minor")
    bus.end("jit")
    clock[0] += 15
    bus.instant("mark", "cat")
    bus.count("c", 3)
    bus.gauge("g", 2.0)
    bus.end("run")
    bus.finish()
    return bus.events()


def test_to_chrome_shapes_and_scaling():
    chrome = export.to_chrome(sample_events(ticks_per_us=2.0))
    json.dumps(chrome)  # must be JSON-serializable
    events = chrome["traceEvents"]
    phases = {e["ph"] for e in events}
    assert phases == {"M", "X", "i", "C"}
    (process_meta,) = [e for e in events if e["ph"] == "M"]
    assert process_meta["args"]["name"] == "samp"
    run = [e for e in events if e.get("name") == "run"][0]
    # 50 ticks at 2 ticks/us -> 25 us.
    assert run["dur"] == 25.0
    counters = [e for e in events if e["ph"] == "C"]
    assert {c["name"] for c in counters} == {"c", "g"}


def test_to_chrome_unknown_pid_defaults_to_unit_scale():
    events = sample_events()
    body = [dict(e) for e in events if e["type"] != "meta"]
    chrome = export.to_chrome(body)
    run = [e for e in chrome["traceEvents"] if e.get("name") == "run"][0]
    assert run["dur"] == 50.0


def test_self_time_summary_by_name():
    summary = export.self_time_summary(sample_events(), by="name")
    assert summary["run"]["total"] == 50
    assert summary["run"]["self"] == 25  # 50 - 25 (jit incl. gc)
    assert summary["jit"]["self"] == 20
    assert summary["gc_minor"]["self"] == 5
    assert summary["run"]["count"] == 1


def test_self_time_summary_by_phase_drops_unmapped_spans():
    clock = [0.0]
    bus = TelemetryBus(clock=lambda: clock[0])
    bus.begin("run_program", "harness.runner")  # no phase mapping
    clock[0] += 4
    bus.end()
    bus.finish()
    summary = export.self_time_summary(bus.events(), by="phase")
    assert summary == {}
    vm_summary = export.self_time_summary(sample_events(), by="phase")
    assert set(vm_summary) == {"interp", "jit", "gc"}
    assert vm_summary["interp"]["self"] == 25


def test_merged_metrics_folds_all_records():
    events = sample_events() + sample_events()
    merged = export.merged_metrics(events)
    assert merged["counters"] == {"c": 6}
    assert merged["gauges"] == {"g": 2.0}


def test_render_summary_orders_by_self_time():
    text = export.render_summary(
        export.self_time_summary(sample_events()), title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    body = [line.split()[0] for line in lines[3:]]
    assert body == ["run", "jit", "gc_minor"]


def test_diff_summaries_tolerance_and_new_keys():
    before = {"a": {"self": 100.0}, "b": {"self": 50.0}}
    after = {"a": {"self": 103.0}, "b": {"self": 80.0},
             "c": {"self": 10.0}}
    moved = export.diff_summaries(before, after, tolerance=0.05)
    names = {m["name"] for m in moved}
    assert names == {"b", "c"}
    b_row = [m for m in moved if m["name"] == "b"][0]
    assert abs(b_row["ratio"] - 0.6) < 1e-9
    c_row = [m for m in moved if m["name"] == "c"][0]
    assert c_row["ratio"] == float("inf")


def test_write_read_jsonl_path(tmp_path):
    events = sample_events()
    path = tmp_path / "t.jsonl"
    export.write_jsonl(str(path), events)
    assert export.read_jsonl(str(path)) == events
