"""Figure 4: phase breakdowns, PyPy vs Pycket, on shared CLBG programs."""

from conftest import save

from repro.harness import experiments


def test_fig4(benchmark, quick):
    rows, text = benchmark.pedantic(
        lambda: experiments.fig4(quick=quick), rounds=1, iterations=1)
    save("fig4_clbg_phases.txt", text)

    assert len(rows) >= 8  # at least 4 shared benchmarks, 2 VMs each
    by_label = dict(rows)
    # Paper shape: the two meta-tracing VMs show similar phase trends on
    # the same program (both JIT-heavy on numeric kernels).
    for kernel in ("spectralnorm", "nbody", "mandelbrot"):
        pypy = by_label.get(kernel + "/pypy")
        pycket = by_label.get(kernel + "/pycket")
        if pypy is None or pycket is None:
            continue
        pypy_compiled = pypy["jit"] + pypy["jit_call"]
        pycket_compiled = pycket["jit"] + pycket["jit_call"]
        floor = 0.15 if quick else 0.25
        assert pypy_compiled > floor
        assert pycket_compiled > floor
    # binarytrees stresses the GC on both VMs (paper: "large usage of GC
    # in binarytrees").
    bt_pypy = by_label.get("binarytrees/pypy")
    if bt_pypy is not None:
        assert bt_pypy["gc"] > (0.01 if quick else 0.02)
