"""Property tests for the tier-1 promotion state machine.

Three invariants the threaded-code tier must hold for *any* workload:

* **Monotonic promotion** — a code object is promoted exactly when its
  loop-header count reaches ``tier1_threshold``, never before, and the
  counter resets on promotion.
* **Demotion on invalidation** — invalidating a promoted code object
  demotes it (new generation, bumped epoch, counter reset) and the next
  promotion compiles a fresh :class:`ThreadedCode`; invalidating a cold
  code object is a no-op.
* **Tracing supremacy** — the meta-tracer always sees the unfused
  interpreter stream, so tracing out of threaded code records exactly
  the IR tracing out of the interpreter records.
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import SystemConfig
from repro.difftest import oracle
from repro.interp.context import VMContext
from repro.pylang.compiler import compile_source
from repro.pylang.interp import PyVM


def _fresh_vm(threshold):
    cfg = SystemConfig()
    cfg.tier1 = True
    cfg.jit.tier1_threshold = threshold
    return PyVM(VMContext(cfg))


@given(st.integers(1, 50), st.integers(0, 120))
@settings(max_examples=60, deadline=None)
def test_promotion_is_monotonic_at_threshold(threshold, visits):
    vm = _fresh_vm(threshold)
    tier = vm.driver.tier
    code = compile_source("x = 1\n")
    # Replay the jitdriver's loop-header protocol: bump until promoted,
    # then stop profiling (the driver skips compiled code objects).
    for _ in range(visits):
        if code not in tier.compiled:
            tier.bump(vm, code)
    promoted = code in tier.compiled
    assert promoted == (visits >= threshold)
    assert tier.promotions == (1 if promoted else 0)
    if promoted:
        assert tier.counters[code] == 0
        assert tier.compiled[code].generation == 0
    else:
        assert tier.counters.get(code, 0) == visits


@given(st.integers(1, 30))
@settings(max_examples=30, deadline=None)
def test_invalidation_demotes_and_recompiles(threshold):
    vm = _fresh_vm(threshold)
    tier = vm.driver.tier
    code = compile_source("y = 2\n")

    # Cold invalidation is a no-op.
    assert tier.invalidate(code) is False
    assert tier.demotions == 0

    for _ in range(threshold):
        tier.bump(vm, code)
    first = tier.compiled[code]
    epoch_before = tier.epoch

    assert tier.invalidate(code) is True
    assert code not in tier.compiled
    assert tier.demotions == 1
    assert tier.epoch > epoch_before  # busts interpreter-local caches
    assert tier.counters[code] == 0   # must re-earn its heat

    for _ in range(threshold):
        tier.bump(vm, code)
    second = tier.compiled[code]
    assert second is not first
    assert second.generation == first.generation + 1
    assert tier.promotions == 2


_trace_programs = st.builds(
    lambda iters, mult, bias: (
        "acc = 0\n"
        "for i in range(%d):\n"
        "    acc = acc + i * %d - (acc >> 2) + %d\n"
        "print(acc)\n" % (iters, mult, bias)),
    st.integers(30, 120), st.integers(1, 9), st.integers(-5, 5))


@given(_trace_programs)
@settings(max_examples=12, deadline=None)
def test_trace_from_tier1_matches_trace_from_interp(source):
    # Threshold 7 with the tier's default promotion threshold (13)
    # interleaves both orders: sometimes tracing starts from threaded
    # code, sometimes the tier promotes code the tracer already owns.
    on = oracle.run_interp(source, jit=True, threshold=7,
                           bridge_threshold=2, tier1=True, name="t1jit")
    off = oracle.run_interp(source, jit=True, threshold=7,
                            bridge_threshold=2, tier1=False)
    assert on.output == off.output
    assert on.error is None and off.error is None
    assert repr(on.ctx.jitlog.events) == repr(off.ctx.jitlog.events)
    a_ops = [(repr(t.greenkey), [oracle._stable_repr(op) for op in t.ops])
             for t in on.ctx.registry.traces]
    b_ops = [(repr(t.greenkey), [oracle._stable_repr(op) for op in t.ops])
             for t in off.ctx.registry.traces]
    assert a_ops == b_ops
