"""The ``fast`` backend: exec-specialized Python kernels per machine.

A :class:`FastMachine` is a :class:`~repro.uarch.machine.Machine` whose
hot event methods are replaced, per instance, by closures compiled from
:mod:`repro.backend.kernelspec`.  The specialization wins come from
three places:

* **constant binding** — issue width, penalties, the bulk miss rate,
  the class-count list, predictor tables and L1 internals are closure
  locals instead of per-call ``self`` attribute loads;
* **cached listener gating** — the reference kernels re-derive the
  listener/runner routing from two dict lookups on every call; the
  specialized kernels cache the decision per tag, keyed on the
  machine's ``_listener_epoch`` (bumped by every listener add/remove);
* **no bound-method dispatch** — the kernels are installed in instance
  slots, so call sites reach the closure directly.

Every corner case (catch-all listeners, tag listeners without batched
``run`` variants, ``max_instructions`` proximity) delegates to the
unbound reference method, which replays exact per-primitive semantics
on the same machine state.  The batched paths are bit-identical by
construction: they are generated from the same fragment emitters as the
reference kernels.

Constants are baked at specialization time; the only supported mid-life
mutations are listener changes (epoch-gated) and :meth:`reset` (which
re-specializes).  Nothing in the repo mutates ``mispredict_penalty`` or
``bulk_miss_rate`` after construction; call :meth:`respecialize` if an
experiment ever does.
"""

from repro.backend.kernelspec import fast_kernel_factory
from repro.uarch.machine import Machine, SimulationLimitReached

# Instance slots holding the specialized kernels.  Slot descriptors on
# the subclass shadow the inherited methods, so every name listed here
# MUST be assigned by respecialize() — an empty slot would not fall back
# to the base method, it would raise AttributeError.
_KERNEL_SLOTS = (
    "dispatch_event", "dispatch_event2", "dispatch_run", "quick_run",
    "exec_block", "annot_run", "load", "store",
    "load_annot_run", "store_annot_run",
    "branch_block", "branch_block_annot_run",
)


class FastMachine(Machine):
    """Machine with exec-compiled specialized kernels (see module doc)."""

    __slots__ = _KERNEL_SLOTS

    backend = "fast"

    def __init__(self, config, predictor="gshare"):
        super().__init__(config, predictor)
        self.respecialize()

    def respecialize(self):
        """(Re)build the specialized kernels against current constants."""
        kernels = fast_kernel_factory()(self, Machine,
                                        SimulationLimitReached)
        for name in _KERNEL_SLOTS:
            kernel = kernels.get(name)
            if kernel is None:
                # No specialization for this machine shape (e.g. the
                # gshare-only kernels on a bimodal machine): bind the
                # reference method so the slot never shadows it away.
                kernel = getattr(Machine, name).__get__(self)
            setattr(self, name, kernel)

    def reset(self):
        super().reset()
        # Tables and the counts list are reset in place (identity
        # preserved), so the old kernels would still be correct; a fresh
        # specialization also clears the per-tag gate caches.
        self.respecialize()
