"""Golden-figure regression suite.

Each test regenerates one ``results/`` artifact from a small pinned
configuration (see :mod:`tests.golden.specs`) and diffs it against the
copy committed under ``tests/golden/goldens/``.  Integer counters must
match exactly; float-formatted ratios get a small relative tolerance.

Any change to the simulator that moves a figure — a cost-table edit, an
optimizer tweak, a GC parameter — fails here with a line-level diff.
Refresh the pins after an intentional change with:

    PYTHONPATH=src python -m pytest tests/golden -q --update-goldens
"""

import os

import pytest

from tests.golden import specs
from tests.golden.golden_diff import compare_text

pytestmark = pytest.mark.golden

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")


@pytest.fixture(scope="session")
def update_goldens(request):
    return request.config.getoption("--update-goldens")


# Artifacts whose jobs pin the tier explicitly (see specs.py); the
# classic artifacts instead inherit the REPRO_TIER1 env default.
TIER_ARTIFACTS = ("fig5_tier", "fig2_tier", "ablation_tier")


# Every artifact is regenerated twice — quickened interpreters on and
# off — against the SAME pinned golden: the quickening layer (DESIGN.md
# §11) must be invisible in every figure, not just in raw counters.
@pytest.mark.parametrize("quicken", ["on", "off"])
@pytest.mark.parametrize("name", sorted(specs.ARTIFACTS))
def test_golden(name, quicken, update_goldens, monkeypatch):
    monkeypatch.setenv("REPRO_QUICKEN", "1" if quicken == "on" else "0")
    # The classic figures pin the paper's two-mode system: the
    # threaded-code tier stays off regardless of the ambient env, so
    # running this suite under REPRO_TIER1=1 (the CI tier job) cannot
    # drift them.  The tier-dimension artifacts carry the knob in
    # their job specs instead.
    monkeypatch.setenv("REPRO_TIER1", "0")
    fresh = specs.ARTIFACTS[name]()
    if not fresh.endswith("\n"):
        fresh += "\n"
    path = os.path.join(GOLDEN_DIR, name + ".txt")
    if update_goldens:
        if quicken == "off":
            return  # the quickened variant already refreshed this pin
        with open(path, "w") as handle:
            handle.write(fresh)
        return
    assert os.path.exists(path), (
        "no golden for %r — run with --update-goldens to create it" % name)
    with open(path) as handle:
        golden = handle.read()
    mismatches = compare_text(golden, fresh)
    assert not mismatches, (
        "golden %r drifted (%d mismatch(es)); rerun with --update-goldens "
        "if intentional:\n%s" % (name, len(mismatches),
                                 "\n".join(mismatches)))


@pytest.mark.parametrize("name", TIER_ARTIFACTS)
def test_tier_artifacts_ignore_env(name, monkeypatch):
    """The tier artifacts must render identically under REPRO_TIER1=1:
    every job in their generators pins ``tier1`` explicitly, so the env
    default has nothing left to decide."""
    monkeypatch.setenv("REPRO_TIER1", "1")
    fresh = specs.ARTIFACTS[name]()
    if not fresh.endswith("\n"):
        fresh += "\n"
    path = os.path.join(GOLDEN_DIR, name + ".txt")
    assert os.path.exists(path), (
        "no golden for %r — run with --update-goldens first" % name)
    with open(path) as handle:
        golden = handle.read()
    mismatches = compare_text(golden, fresh)
    assert not mismatches, (
        "tier artifact %r depends on the REPRO_TIER1 env:\n%s"
        % (name, "\n".join(mismatches)))


def test_goldens_cover_every_results_artifact():
    """Every committed results/*.txt artifact has a pinned golden."""
    results_dir = os.path.join(os.path.dirname(__file__), os.pardir,
                               os.pardir, "results")
    artifacts = {os.path.splitext(entry)[0]
                 for entry in os.listdir(results_dir)
                 if entry.endswith(".txt")}
    assert artifacts == set(specs.ARTIFACTS)
