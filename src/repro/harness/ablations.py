"""Ablation experiments beyond the paper's measurements.

The paper's discussion attributes performance to specific JIT design
elements (escape analysis, guards, warmup thresholds, branch
prediction); these ablations measure each attribution directly by
switching the mechanism off.
"""

from repro.benchprogs import registry
from repro.harness import report
from repro.harness.runner import bridge_count, job, run_many, run_program

DEFAULT_PROGRAMS = ("richards", "float", "chaos", "spitfire")

OPT_PASSES = ("opt_virtuals", "opt_loop_peeling", "opt_heap_cache",
              "opt_cse", "opt_guard_dedup", "opt_constfold")


def optimizer_ablation(quick=True, programs=DEFAULT_PROGRAMS):
    """Slowdown from disabling each optimizer pass (and all of them)."""
    jobs = []
    for name in programs:
        program = registry.py_program(name)
        n = program.small_n if quick else program.default_n
        jobs.append(job(program, "pypy", n=n))
        for pass_name in OPT_PASSES:
            jobs.append(job(program, "pypy", n=n,
                            jit_overrides={pass_name: False}))
        jobs.append(job(program, "pypy", n=n,
                        jit_overrides={p: False for p in OPT_PASSES}))
    run_many(jobs)
    rows = []
    for name in programs:
        program = registry.py_program(name)
        n = program.small_n if quick else program.default_n
        base = run_program(program, "pypy", n=n)
        row = {"benchmark": name, "base_s": base.seconds}
        for pass_name in OPT_PASSES:
            ablated = run_program(program, "pypy", n=n,
                                  jit_overrides={pass_name: False})
            assert ablated.output == base.output, (name, pass_name)
            row[pass_name] = ablated.seconds / base.seconds
        ablated = run_program(
            program, "pypy", n=n,
            jit_overrides={p: False for p in OPT_PASSES})
        assert ablated.output == base.output
        row["all_off"] = ablated.seconds / base.seconds
        rows.append(row)
    table_rows = [
        tuple([r["benchmark"]] + ["%.2fx" % r[p] for p in OPT_PASSES]
              + ["%.2fx" % r["all_off"]])
        for r in rows
    ]
    text = report.render_table(
        ["benchmark"] + [p.replace("opt_", "") for p in OPT_PASSES]
        + ["all off"],
        table_rows,
        title="Ablation: slowdown with optimizer passes disabled")
    return rows, text


def threshold_sweep(quick=True, program_name="richards",
                    thresholds=(3, 13, 39, 121, 363)):
    """Hot-loop threshold sweep (the paper's warmup discussion)."""
    program = registry.py_program(program_name)
    n = program.small_n if quick else program.default_n
    run_many([job(program, "pypy", n=n,
                  jit_overrides={"hot_loop_threshold": t})
              for t in thresholds])
    rows = []
    for threshold in thresholds:
        result = run_program(
            program, "pypy", n=n,
            jit_overrides={"hot_loop_threshold": threshold})
        rows.append((threshold, result.seconds,
                     result.phase_breakdown.get("jit", 0.0),
                     result.phase_breakdown.get("tracing", 0.0)))
    table_rows = [
        (t, "%.4f" % s, "%.2f" % j, "%.3f" % tr)
        for t, s, j, tr in rows
    ]
    text = report.render_table(
        ["threshold", "t(s)", "jit frac", "tracing frac"], table_rows,
        title="Ablation: hot-loop threshold sweep (%s)" % program_name)
    return rows, text


def bridge_threshold_sweep(quick=True, program_name="richards",
                           thresholds=(2, 5, 11, 31, 101)):
    """Guard-failure threshold before bridge compilation."""
    program = registry.py_program(program_name)
    n = program.small_n if quick else program.default_n
    run_many([job(program, "pypy", n=n,
                  jit_overrides={"bridge_threshold": t})
              for t in thresholds])
    rows = []
    for threshold in thresholds:
        result = run_program(
            program, "pypy", n=n,
            jit_overrides={"bridge_threshold": threshold})
        bridges = bridge_count(result)
        rows.append((threshold, result.seconds, bridges,
                     result.phase_breakdown.get("blackhole", 0.0)))
    table_rows = [
        (t, "%.4f" % s, b, "%.3f" % bh) for t, s, b, bh in rows
    ]
    text = report.render_table(
        ["bridge threshold", "t(s)", "bridges", "blackhole frac"],
        table_rows,
        title="Ablation: bridge threshold sweep (%s)" % program_name)
    return rows, text


# The execution-tier axis: one tier (interpreter only), two tiers
# (+ threaded code), three tiers (+ the tracing JIT on top).
TIER_DIMS = (("off", "pypy_nojit", False),
             ("tier1", "pypy_nojit", True),
             ("full", "pypy", True))


def tier_ablation(quick=True, programs=DEFAULT_PROGRAMS):
    """Speedup from each execution tier (off | tier1 | full).

    ``off`` is the plain interpreter, ``tier1`` adds the baseline
    threaded-code tier, ``full`` runs all three tiers with the tracing
    JIT on top — the multi-tier progression of Izawa & Bolz-Tereick
    measured on our workloads.
    """
    jobs = []
    for name in programs:
        program = registry.py_program(name)
        n = program.small_n if quick else program.default_n
        for _label, vm_kind, tier1 in TIER_DIMS:
            jobs.append(job(program, vm_kind, n=n, tier1=tier1))
    run_many(jobs)
    rows = []
    for name in programs:
        program = registry.py_program(name)
        n = program.small_n if quick else program.default_n
        base = None
        for label, vm_kind, tier1 in TIER_DIMS:
            result = run_program(program, vm_kind, n=n, tier1=tier1)
            if base is None:
                base = result
            else:
                assert result.output == base.output, (name, label)
            stats = result.tier_stats or {}
            rows.append({
                "benchmark": name, "tier": label,
                "seconds": result.seconds,
                "speedup_vs_off": base.seconds / result.seconds,
                "ipc": result.ipc, "mpki": result.mpki,
                "promotions": stats.get("promotions", 0),
                "demotions": stats.get("demotions", 0),
            })
    table_rows = [
        (r["benchmark"], r["tier"], "%.4f" % r["seconds"],
         "%.2fx" % r["speedup_vs_off"], "%.2f" % r["ipc"],
         "%.1f" % r["mpki"], r["promotions"], r["demotions"])
        for r in rows
    ]
    text = report.render_table(
        ["benchmark", "tier", "t(s)", "vs off", "ipc", "mpki",
         "promoted", "demoted"],
        table_rows,
        title="Ablation: execution tiers (off | tier1 | full)")
    return rows, text


def predictor_ablation(quick=True, programs=("richards", "crypto_pyaes")):
    """Branch-predictor sensitivity (Rohou et al. discussion)."""
    jobs = []
    for name in programs:
        program = registry.py_program(name)
        n = program.small_n if quick else program.default_n
        for vm in ("cpython", "pypy"):
            for predictor in ("gshare", "bimodal", "always_taken"):
                jobs.append(job(program, vm, n=n, predictor=predictor))
    run_many(jobs)
    rows = []
    for name in programs:
        program = registry.py_program(name)
        n = program.small_n if quick else program.default_n
        for vm in ("cpython", "pypy"):
            for predictor in ("gshare", "bimodal", "always_taken"):
                result = run_program(program, vm, n=n,
                                     predictor=predictor)
                rows.append((name, vm, predictor, result.seconds,
                             result.mpki))
    table_rows = [
        (b, vm, p, "%.4f" % s, "%.1f" % mpki)
        for b, vm, p, s, mpki in rows
    ]
    text = report.render_table(
        ["benchmark", "vm", "predictor", "t(s)", "mpki"], table_rows,
        title="Ablation: conditional branch predictor")
    return rows, text
