"""The Machine: execution target for the virtual instruction stream.

Every layer of the simulated system (interpreter handlers, the JIT
backend's lowered traces, the GC, AOT runtime functions) ultimately emits
instruction-stream events into one :class:`Machine`.  The machine:

* retires instructions and accumulates cycles with a deterministic
  superscalar timing model (issue width + per-class stalls + branch
  mispredict penalties from real predictors + cache miss penalties),
* maintains PAPI-style counters that can be snapshotted at any point
  (the paper reads performance counters on cross-layer annotations),
* dispatches ``NOP_ANNOT`` annotations to registered listeners (the
  PinTool attaches here, exactly as Pin intercepts tagged nops).

This mirrors the paper's measurement stack: the "hardware" is the timing
model, "PAPI" is :meth:`counters`, and "Pin" is the listener interface.
"""

from collections import namedtuple

from repro.core.errors import ReproError
from repro.isa import insns
from repro.uarch.branch import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    Btb,
    GsharePredictor,
    ReturnAddressStack,
)
from repro.uarch.cache import CacheHierarchy


class SimulationLimitReached(ReproError):
    """Raised when ``max_instructions`` is exceeded (the paper's 10B cap)."""


CounterSnapshot = namedtuple(
    "CounterSnapshot",
    [
        "instructions",
        "cycles",
        "branches",
        "branch_misses",
        "loads",
        "stores",
        "l1d_misses",
        "annotations",
    ],
)


def _make_cond_predictor(kind, bits):
    if kind == "gshare":
        return GsharePredictor(bits)
    if kind == "bimodal":
        return BimodalPredictor(bits)
    if kind == "always_taken":
        return AlwaysTakenPredictor()
    raise ReproError("unknown predictor kind %r" % kind)


class Machine:
    """Retires instruction-stream events and keeps the clock."""

    def __init__(self, config, predictor="gshare"):
        config.validate()
        self.config = config
        ucfg = config.uarch
        self.issue_width = ucfg.issue_width
        self.mispredict_penalty = ucfg.mispredict_penalty
        self.cond_predictor = _make_cond_predictor(predictor, ucfg.gshare_bits)
        self.btb = Btb(ucfg.btb_entries)
        self.ras = ReturnAddressStack(ucfg.ras_entries)
        self.dcache = CacheHierarchy(ucfg)
        # Per-class stall weights, indexed by instruction class.
        stalls = [0.0] * insns.N_CLASSES
        stalls[insns.MUL] = ucfg.stall_mul
        stalls[insns.DIV] = ucfg.stall_div
        stalls[insns.FPU] = ucfg.stall_fpu
        stalls[insns.LOAD] = ucfg.stall_load
        stalls[insns.STORE] = ucfg.stall_store
        self._stalls = stalls
        self._inv_width = 1.0 / self.issue_width
        # Counters.
        self.instructions = 0
        self.cycles = 0.0
        self.branches = 0
        self.branch_misses = 0
        self.loads = 0
        self.stores = 0
        self.annotations = 0
        self.class_counts = [0] * insns.N_CLASSES
        self.max_instructions = config.max_instructions
        self._annot_listeners = []
        self._bulk_miss_carry = 0.0
        # Miss rate for br_bulk mix entries (interpreter/runtime code).
        self.bulk_miss_rate = 0.045

    # -- listener management ------------------------------------------------

    def add_annot_listener(self, listener):
        """Register a callable ``listener(tag, payload)``."""
        self._annot_listeners.append(listener)

    def remove_annot_listener(self, listener):
        self._annot_listeners.remove(listener)

    # -- instruction-stream events -------------------------------------------

    def annot(self, tag, payload=None):
        """Execute one tagged NOP_ANNOT and notify listeners."""
        self.instructions += 1
        self.annotations += 1
        self.class_counts[insns.NOP_ANNOT] += 1
        self.cycles += self._inv_width
        for listener in self._annot_listeners:
            listener(tag, payload)
        if self.max_instructions and self.instructions >= self.max_instructions:
            raise SimulationLimitReached(self.instructions)

    def exec_mix(self, mix):
        """Retire a bulk mix of instructions.

        ``br_bulk`` entries are conditional branches charged at the
        machine's calibrated bulk miss rate (see exec_bulk_branches).
        """
        total = 0
        extra = 0.0
        stalls = self._stalls
        counts = self.class_counts
        for klass, count in mix:
            total += count
            counts[klass] += count
            if klass == 11:  # insns.BR_BULK
                self.branches += count
                misses_exact = count * self.bulk_miss_rate \
                    + self._bulk_miss_carry
                misses = int(misses_exact)
                self._bulk_miss_carry = misses_exact - misses
                self.branch_misses += misses
                extra += misses * self.mispredict_penalty
                continue
            stall = stalls[klass]
            if stall:
                extra += stall * count
        self.instructions += total
        self.cycles += total * self._inv_width + extra
        if self.max_instructions and self.instructions >= self.max_instructions:
            raise SimulationLimitReached(self.instructions)

    def branch(self, pc, taken):
        """Retire one conditional branch with a real outcome."""
        self.instructions += 1
        self.branches += 1
        self.class_counts[insns.BR_COND] += 1
        self.cycles += self._inv_width
        if self.cond_predictor.predict_and_update(pc, taken):
            self.branch_misses += 1
            self.cycles += self.mispredict_penalty

    def indirect(self, pc, target):
        """Retire one indirect jump (e.g. interpreter dispatch)."""
        self.instructions += 1
        self.branches += 1
        self.class_counts[insns.BR_IND] += 1
        self.cycles += self._inv_width
        if self.btb.predict_and_update(pc, target):
            self.branch_misses += 1
            self.cycles += self.mispredict_penalty

    def call(self, pc):
        """Retire one direct call; pushes the return address on the RAS."""
        self.instructions += 1
        self.branches += 1
        self.class_counts[insns.CALL] += 1
        self.cycles += self._inv_width
        self.ras.push(pc + 1)

    def ret(self, pc):
        """Retire one return; mispredicts when the RAS has been clobbered."""
        self.instructions += 1
        self.branches += 1
        self.class_counts[insns.RET] += 1
        self.cycles += self._inv_width
        if self.ras.predict_and_pop(pc + 1):
            self.branch_misses += 1
            self.cycles += self.mispredict_penalty

    def exec_bulk_branches(self, count, miss_rate):
        """Retire ``count`` loop-style branches with a calibrated miss rate.

        Bulk code (GC sweeps, AOT-compiled runtime functions) would cost
        one predictor call per branch; since its branches are regular
        loop branches, we charge an aggregate miss rate instead.  The
        fractional remainder is carried so long runs are exact.
        """
        if count <= 0:
            return
        self.instructions += count
        self.branches += count
        self.class_counts[insns.BR_COND] += count
        misses_exact = count * miss_rate + self._bulk_miss_carry
        misses = int(misses_exact)
        self._bulk_miss_carry = misses_exact - misses
        self.branch_misses += misses
        self.cycles += (
            count * self._inv_width + misses * self.mispredict_penalty
        )
        if self.max_instructions and self.instructions >= self.max_instructions:
            raise SimulationLimitReached(self.instructions)

    def load(self, addr):
        """Retire one load with a concrete (simulated-heap) address."""
        self.instructions += 1
        self.loads += 1
        self.class_counts[insns.LOAD] += 1
        self.cycles += self._inv_width + self._stalls[insns.LOAD]
        self.cycles += self.dcache.access(addr)

    def store(self, addr):
        """Retire one store with a concrete (simulated-heap) address.

        Write-allocate misses are largely hidden by the store buffer, so
        only a fraction of the miss penalty reaches the critical path.
        """
        self.instructions += 1
        self.stores += 1
        self.class_counts[insns.STORE] += 1
        self.cycles += self._inv_width + self._stalls[insns.STORE]
        self.cycles += 0.3 * self.dcache.access(addr)

    # -- PAPI-style counter access --------------------------------------------

    def counters(self):
        """Snapshot the counters (the paper's PAPI-on-annotation reads)."""
        return CounterSnapshot(
            instructions=self.instructions,
            cycles=self.cycles,
            branches=self.branches,
            branch_misses=self.branch_misses,
            loads=self.loads,
            stores=self.stores,
            l1d_misses=self.dcache.l1.misses,
            annotations=self.annotations,
        )

    @property
    def ipc(self):
        """Overall instructions per cycle so far."""
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def branch_mpki(self):
        """Branch misses per 1000 instructions (the paper's M column)."""
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.branch_misses / self.instructions


def delta(after, before):
    """Counter delta between two snapshots (windowed PAPI read)."""
    return CounterSnapshot(*(a - b for a, b in zip(after, before)))


def window_ipc(window):
    return window.instructions / window.cycles if window.cycles else 0.0


def window_branch_miss_rate(window):
    return window.branch_misses / window.branches if window.branches else 0.0


def window_branches_per_insn(window):
    if not window.instructions:
        return 0.0
    return window.branches / window.instructions
