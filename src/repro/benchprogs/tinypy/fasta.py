# fasta (CLBG): generate DNA sequences — repeated sequence copying and
# weighted random selection; string building dominates.
N = 3000

ALU = ("GGCCGGGCGCGGTGGCTCACGCCTGTAATCCCAGCACTTTGG"
       "GAGGCCGAGGCGGGCGGATCACCTGAGGTCAGGAGTTCGAGA"
       "CCAGCCTGGCCAACATGGTGAAACCCCGTCTCTACTAAAAAT")

IUB_CODES = "acgtBDHKMNRSVWY"
IUB_WEIGHTS = [0.27, 0.12, 0.12, 0.27,
               0.02, 0.02, 0.02, 0.02, 0.02, 0.02, 0.02, 0.02,
               0.02, 0.02, 0.02]

LINE = 60


class Random:
    def __init__(self):
        self.seed = 42

    def next(self):
        self.seed = (self.seed * 3877 + 29573) % 139968
        return self.seed / 139968.0


def repeat_fasta(src, n, out):
    width = len(src)
    buffer = src + src
    pos = 0
    written = 0
    while written < n:
        line_len = LINE
        if n - written < LINE:
            line_len = n - written
        out.append(buffer[pos:pos + line_len])
        pos += line_len
        if pos >= width:
            pos -= width
        written += line_len


def random_fasta(codes, weights, n, rng, out):
    # Cumulative distribution.
    cumulative = []
    total = 0.0
    for w in weights:
        total += w
        cumulative.append(total)
    ncodes = len(codes)
    written = 0
    line = []
    while written < n:
        r = rng.next()
        i = 0
        while i < ncodes - 1 and r >= cumulative[i]:
            i += 1
        line.append(codes[i])
        written += 1
        if len(line) == LINE:
            out.append("".join(line))
            line = []
    if len(line) > 0:
        out.append("".join(line))


def run_fasta(n):
    out = []
    rng = Random()
    out.append(">ONE Homo sapiens alu")
    repeat_fasta(ALU, n * 2, out)
    out.append(">TWO IUB ambiguity codes")
    random_fasta(IUB_CODES, IUB_WEIGHTS, n * 3, rng, out)
    checksum = 0
    for chunk in out:
        for ch in chunk:
            checksum = (checksum * 31 + ord(ch)) % 1000000007
    print("fasta", len(out), checksum)


run_fasta(N)
