# mandelbrot (CLBG): escape-time iteration over the complex plane.
# Pure float arithmetic in a tight nested loop.
N = 120


def run_mandelbrot(size):
    limit = 4.0
    checksum = 0
    bit = 0
    byte = 0
    for y in range(size):
        ci = 2.0 * y / size - 1.0
        for x in range(size):
            cr = 2.0 * x / size - 1.5
            zr = 0.0
            zi = 0.0
            inside = 1
            for i in range(50):
                zr2 = zr * zr
                zi2 = zi * zi
                if zr2 + zi2 > limit:
                    inside = 0
                    break
                zi = 2.0 * zr * zi + ci
                zr = zr2 - zi2 + cr
            byte = byte * 2 + inside
            bit += 1
            if bit == 8:
                checksum = (checksum * 31 + byte) % 1000000007
                bit = 0
                byte = 0
    if bit > 0:
        checksum = (checksum * 31 + byte) % 1000000007
    print("mandelbrot", checksum)


run_mandelbrot(N)
