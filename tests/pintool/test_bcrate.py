import pytest

from repro.core import tags
from repro.core.config import SystemConfig
from repro.isa import insns
from repro.pintool.bcrate import (
    BytecodeRateTracker,
    break_even_instructions,
    rate_curve,
)
from repro.uarch.machine import Machine


def make():
    machine = Machine(SystemConfig())
    tracker = BytecodeRateTracker(machine, bucket_insns=100)
    machine.add_annot_listener(tracker.on_annot)
    return machine, tracker


def test_counts_dispatches():
    machine, tracker = make()
    for _ in range(10):
        machine.annot(tags.DISPATCH)
    machine.annot(tags.JIT_ENTER)  # ignored
    assert tracker.bytecodes == 10


def test_timeline_monotone():
    machine, tracker = make()
    for _ in range(50):
        machine.exec_mix(insns.mix(alu=20))
        machine.annot(tags.DISPATCH)
    tracker.finish()
    timeline = tracker.timeline
    assert len(timeline) > 2
    insn_points = [p[0] for p in timeline]
    bc_points = [p[1] for p in timeline]
    assert insn_points == sorted(insn_points)
    assert bc_points == sorted(bc_points)
    assert bc_points[-1] == 50


def test_no_timeline_when_bucket_zero():
    machine = Machine(SystemConfig())
    tracker = BytecodeRateTracker(machine, bucket_insns=0)
    machine.add_annot_listener(tracker.on_annot)
    machine.annot(tags.DISPATCH)
    tracker.finish()
    assert tracker.timeline == []
    assert tracker.bytecodes == 1


def test_break_even_simple():
    # VM executes 1 bc / 10 insns after a slow start; reference does 1/20.
    timeline = [(0, 0), (100, 1), (200, 20), (300, 40)]
    point = break_even_instructions(timeline, reference_rate=1 / 20)
    assert point == 200


def test_break_even_requires_staying_ahead():
    # Crosses briefly, falls behind, crosses again for good.
    timeline = [(0, 0), (100, 10), (200, 10), (300, 40)]
    point = break_even_instructions(timeline, reference_rate=1 / 10)
    assert point == 300


def test_break_even_never():
    timeline = [(0, 0), (100, 1), (200, 2)]
    assert break_even_instructions(timeline, reference_rate=1.0) is None


def test_break_even_empty():
    assert break_even_instructions([], reference_rate=1.0) is None


def test_rate_curve():
    timeline = [(0, 0), (1000, 10), (2000, 40)]
    curve = rate_curve(timeline)
    assert curve == [(1000, pytest.approx(10.0)), (2000, pytest.approx(30.0))]
