import pytest

from repro.core.errors import IsaError
from repro.isa import insns


def test_mix_builds_pairs():
    m = insns.mix(alu=3, load=2)
    assert dict(m) == {insns.ALU: 3, insns.LOAD: 2}


def test_mix_drops_zero_counts():
    assert insns.mix(alu=0, store=1) == ((insns.STORE, 1),)


def test_mix_rejects_unknown_class():
    with pytest.raises(IsaError):
        insns.mix(bogus=1)


def test_mix_rejects_negative():
    with pytest.raises(IsaError):
        insns.mix(alu=-1)


def test_mix_rejects_branch_classes():
    with pytest.raises(IsaError):
        insns.mix(br_cond=1)
    with pytest.raises(IsaError):
        insns.mix(call=1)


def test_mix_size():
    assert insns.mix_size(insns.mix(alu=3, fpu=4)) == 7
    assert insns.mix_size(insns.EMPTY_MIX) == 0


def test_scale_mix():
    m = insns.scale_mix(insns.mix(alu=2), 3)
    assert insns.mix_size(m) == 6


def test_scale_mix_rejects_negative():
    with pytest.raises(IsaError):
        insns.scale_mix(insns.mix(alu=1), -1)


def test_add_mixes():
    total = insns.add_mixes(insns.mix(alu=1, load=2), insns.mix(alu=4))
    assert dict(total) == {insns.ALU: 5, insns.LOAD: 2}


def test_class_names_cover_all_classes():
    assert len(insns.CLASS_NAMES) == insns.N_CLASSES


def test_is_branch_class():
    assert insns.is_branch_class(insns.BR_COND)
    assert insns.is_branch_class(insns.RET)
    assert not insns.is_branch_class(insns.ALU)
    assert not insns.is_branch_class(insns.NOP_ANNOT)
