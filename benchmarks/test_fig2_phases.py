"""Figure 2: time-per-phase breakdown across the PyPy suite."""

from conftest import save

from repro.harness import experiments


def test_fig2(benchmark, quick):
    rows, text = benchmark.pedantic(
        lambda: experiments.fig2(quick=quick), rounds=1, iterations=1)
    save("fig2_phases.txt", text)

    breakdowns = dict(rows)
    # Every benchmark's fractions sum to ~1.
    for name, breakdown in breakdowns.items():
        assert abs(sum(breakdown.values()) - 1.0) < 1e-6, name
    # Paper shape: phases differ wildly across benchmarks; at least the
    # interp and jit phases each dominate somewhere.
    assert any(b["jit"] > 0.4 for b in breakdowns.values())
    assert any(b["interp"] > 0.4 for b in breakdowns.values())
    # Paper shape: deoptimization (blackhole) exceeds 1% somewhere but
    # never dominates a benchmark.
    assert any(b["blackhole"] > 0.01 for b in breakdowns.values())
    assert all(b["blackhole"] < 0.5 for b in breakdowns.values())
    # JIT-call phase exists (residual AOT calls from compiled code).
    assert any(b["jit_call"] > 0.05 for b in breakdowns.values())
