"""Benchmark program registry and guest-language sources."""
