"""TinyPy language feature tests, differential across all three VMs."""


def test_arithmetic(vms):
    out, _ = vms('''
print(1 + 2, 7 - 10, 6 * 7, 7 // 2, -7 // 2, 7 % 3, -7 % 3)
print(2 ** 10, 7 / 2, 1 << 5, 1024 >> 3, 5 & 3, 5 | 3, 5 ^ 3, ~5, -(3))
print(1.5 + 2.25, 3.0 * 2.0, 7.0 / 2.0, 2.0 ** 0.5 > 1.41)
print(10 % 4, 10.5 % 3.0)
''')
    assert "3 -3 42 3 -4 1 2" in out
    assert "1024" in out


def test_comparisons_and_bools(vms):
    out, _ = vms('''
print(1 < 2, 2 <= 2, 3 == 3, 3 != 4, 5 > 4, 5 >= 6)
print(1 < 2 and 3 < 4, 1 > 2 or 3 < 4, not (1 == 1))
print("abc" < "abd", "a" + "b" == "ab", "x" * 3)
print(True + True, True == 1, False == 0)
print(None is None, [] is not None)
''')
    assert "True True True True True False" in out


def test_big_integers(vms):
    out, _ = vms('''
x = 2 ** 70
y = x + 1
print(x, y, y - x, x * 3, x // 7, x % 7)
print(x > 2 ** 69, x == 2 ** 70, -x)
n = 1
i = 0
while i < 30:
    n = n * 10
    i = i + 1
print(n)
''')
    assert "1180591620717411303424" in out
    assert "1" + "0" * 30 in out


def test_string_operations(vms):
    out, _ = vms('''
s = "hello world"
print(len(s), s[0], s[-1], s[2:5], s[:5], s[6:])
print(s.upper(), "ABC".lower(), "  x  ".strip())
print(s.replace("world", "there"), s.find("world"), s.find("zz"))
print(s.split(" "), "a,b,c".split(","))
print("-".join(["x", "y", "z"]), s.startswith("hell"), s.endswith("ld"))
print("lo" in s, "zz" in s)
print(ord("A"), chr(66))
''')
    assert "11 h d llo hello world" in out


def test_string_formatting(vms):
    out, _ = vms('''
print("%d items" % 3)
print("%s=%d, %.2f" % ("x", 42, 3.14159))
print("100%% sure" % ())
''')
    assert "x=42, 3.14" in out
    assert "100% sure" in out


def test_lists(vms):
    out, _ = vms('''
xs = [3, 1, 2]
xs.append(4)
print(xs, len(xs), xs[0], xs[-1], xs[1:3])
xs.sort()
print(xs)
xs.reverse()
print(xs, xs.index(2), xs.count(3))
xs.insert(0, 9)
print(xs.pop(), xs.pop(0), xs)
ys = [0] * 3 + [1, 2]
print(ys, sum(ys), min(ys), max(ys))
zs = [x * x for x in range(6) if x % 2 == 0]
print(zs)
mixed = [1, "a", 2.5]
print(mixed, mixed[1])
xs.remove(2)
print(xs)
xs.extend([7, 8])
print(xs)
''')
    assert "[3, 1, 2, 4] 4 3 4 [1, 2]" in out
    assert "[0, 4, 16]" in out


def test_dicts(vms):
    out, _ = vms('''
d = {"a": 1, "b": 2}
d["c"] = 3
print(d["a"], d.get("b"), d.get("z", -1), len(d))
print("a" in d, "z" in d, "z" not in d)
print(d.keys(), d.values(), d.items())
d["a"] = 10
print(d)
del d["b"]
print(d, len(d))
e = {}
e[1] = "one"
e[(1, 2)] = "pair"
print(e[1], e[(1, 2)])
print(d.setdefault("x", 99), d.setdefault("x", 5))
''')
    assert "1 2 -1 3" in out
    assert "one pair" in out


def test_sets(vms):
    out, _ = vms('''
s = {1, 2, 3}
s.add(4)
print(len(s), 2 in s, 9 in s)
t = set([3, 4, 5])
print(len(s & t), len(s | t), len(s - t), len(s ^ t))
''')
    assert "4 True False" in out
    assert "2 5 2 3" in out


def test_tuples(vms):
    out, _ = vms('''
t = (1, 2, 3)
print(t, t[0], t[-1], len(t), t[1:])
a, b = (10, 20)
print(a, b)
x, y, z = [7, 8, 9]
print(x + y + z)
print((1, 2) + (3,), (1, 2) == (1, 2), (1, 2) < (1, 3))
print((5,))
''')
    assert "(1, 2, 3) 1 3 3 (2, 3)" in out
    assert "(5,)" in out


def test_control_flow(vms):
    out, _ = vms('''
total = 0
for i in range(10):
    if i == 3:
        continue
    if i == 7:
        break
    total += i
print(total)
n = 0
while True:
    n += 1
    if n >= 5:
        break
print(n)
x = 10 if total > 5 else -10
print(x)
for c in "abc":
    print(c)
''')
    assert out.splitlines()[0] == "18"


def test_functions(vms):
    out, _ = vms('''
def add(a, b=10, c=100):
    return a + b + c

print(add(1), add(1, 2), add(1, 2, 3))

def fact(n):
    if n <= 1:
        return 1
    return n * fact(n - 1)

print(fact(10))

def apply_twice(f, x):
    return f(f(x))

def inc(v):
    return v + 1

print(apply_twice(inc, 5))

def nothing():
    pass

print(nothing())
''')
    assert "111 103 6" in out
    assert "3628800" in out
    assert "None" in out


def test_classes(vms):
    out, _ = vms('''
class Animal:
    def __init__(self, name):
        self.name = name
    def speak(self):
        return self.name + " makes a sound"
    def kind(self):
        return "animal"

class Dog(Animal):
    def speak(self):
        return self.name + " barks"

a = Animal("cat")
d = Dog("rex")
print(a.speak(), d.speak(), d.kind())
print(isinstance(d, Dog), isinstance(d, Animal), isinstance(a, Dog))
d.age = 5
d.age += 1
print(d.age, d.name)
print(a, repr(d))
''')
    assert "cat makes a sound rex barks animal" in out
    assert "True True False" in out
    assert "6 rex" in out


def test_global_statement(vms):
    out, _ = vms('''
counter = 0

def bump():
    global counter
    counter = counter + 1

for i in range(5):
    bump()
print(counter)
''')
    assert "5" in out


def test_iteration_protocols(vms):
    out, _ = vms('''
d = {"x": 1, "y": 2}
keys = []
for k in d:
    keys.append(k)
print(keys)
for pair in d.items():
    print(pair[0], pair[1])
total = 0
for v in d.values():
    total += v
print(total)
for i in range(10, 0, -2):
    print(i)
''')
    assert "['x', 'y']" in out


def test_nested_data(vms):
    out, _ = vms('''
grid = [[i * 3 + j for j in range(3)] for i in range(3)] if False else []
for i in range(3):
    row = []
    for j in range(3):
        row.append(i * 3 + j)
    grid.append(row)
print(grid)
print(grid[1][2])
grid[2][0] = 99
print(grid[2])
table = {"a": [1, 2], "b": [3]}
table["a"].append(5)
print(table)
''')
    assert "[[0, 1, 2], [3, 4, 5], [6, 7, 8]]" in out
    assert "[99, 7, 8]" in out


def test_conversions(vms):
    out, _ = vms('''
print(int("42"), int(-3.7), int(3.7), float("2.5"), float(7))
print(str(42), str(3.5), str(True), str(None), str([1, 2]))
print(bool(0), bool(3), bool(""), bool("x"), bool([]))
print(abs(-5), abs(5.5), abs(-2 ** 70) == 2 ** 70)
''')
    assert "42 -3 3 2.5 7.0" in out


def test_hot_loop_with_jit_compiles(vms):
    out, ctx = vms('''
total = 0
for i in range(500):
    total += i * i
print(total)
''')
    assert "41541750" in out
    assert len(ctx.registry.traces) >= 1


def test_polymorphic_loop_bridges(vms):
    out, ctx = vms('''
values = []
for i in range(300):
    if i % 2 == 0:
        values.append(i)
    else:
        values.append(i * 2)
total = 0
for v in values:
    total += v
print(total)
''')
    assert out.strip().isdigit()


def test_method_calls_in_hot_loop(vms):
    out, ctx = vms('''
class Acc:
    def __init__(self):
        self.total = 0
    def add(self, v):
        self.total = self.total + v

acc = Acc()
for i in range(400):
    acc.add(i)
print(acc.total)
''')
    assert "79800" in out
    assert len(ctx.registry.traces) >= 1
