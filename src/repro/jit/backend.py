"""The JIT backend: numbering and assembly-cost attachment.

Lowers each optimized IR operation to its virtual-ISA footprint
(:mod:`repro.jit.costs`) and assigns environment slots.  The executable
form of the trace is produced lazily by :mod:`repro.jit.executor`.
"""

from repro.jit import costs, ir
from repro.jit.trace import InputArg


def attach_costs(trace):
    """Assign op indices/env slots and static assembly sizes."""
    index = 0
    for arg in trace.inputargs:
        arg.index = index
        index += 1
    asm = []
    for op in trace.ops:
        if op.opnum == ir.LABEL:
            for arg in op.args:
                if isinstance(arg, InputArg) and arg.index < 0:
                    arg.index = index
                    index += 1
        op.index = index
        index += 1
        asm.append(costs.asm_size(op))
    trace.n_env_slots = index
    trace.op_asm_insns = asm
    trace.op_exec_counts = [0] * len(trace.ops)
