"""Concrete semantics of pure IR operations.

Shared by the trace executor (to run optimized traces over real values)
and by the optimizer (to constant-fold pure operations with constant
arguments).  Machine integers are 64-bit signed: the ``_ovf`` variants
raise :class:`LLOverflow` outside that range, which the interpreters use
to fall back to rbigint arithmetic exactly as PyPy does.
"""

import math

from repro.jit import ir

INT_MIN = -(1 << 63)
INT_MAX = (1 << 63) - 1


class LLOverflow(Exception):
    """64-bit signed overflow in checked arithmetic."""


def check_ovf(value):
    if value < INT_MIN or value > INT_MAX:
        raise LLOverflow
    return value


def _int_add_ovf(a, b):
    return check_ovf(a + b)


def _int_sub_ovf(a, b):
    return check_ovf(a - b)


def _int_mul_ovf(a, b):
    return check_ovf(a * b)


def _int_floordiv(a, b):
    # C-like division truncating toward zero (RPython ll semantics).
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _int_mod(a, b):
    return a - _int_floordiv(a, b) * b


def _wrap64(value):
    value &= (1 << 64) - 1
    if value > INT_MAX:
        value -= 1 << 64
    return value


EVAL = {
    ir.INT_ADD: lambda a, b: _wrap64(a + b),
    ir.INT_SUB: lambda a, b: _wrap64(a - b),
    ir.INT_MUL: lambda a, b: _wrap64(a * b),
    ir.INT_FLOORDIV: _int_floordiv,
    ir.INT_MOD: _int_mod,
    ir.INT_AND: lambda a, b: a & b,
    ir.INT_OR: lambda a, b: a | b,
    ir.INT_XOR: lambda a, b: a ^ b,
    ir.INT_LSHIFT: lambda a, b: _wrap64(a << b),
    ir.INT_RSHIFT: lambda a, b: a >> b,
    ir.INT_NEG: lambda a: _wrap64(-a),
    ir.INT_INVERT: lambda a: _wrap64(~a),
    ir.INT_ADD_OVF: _int_add_ovf,
    ir.INT_SUB_OVF: _int_sub_ovf,
    ir.INT_MUL_OVF: _int_mul_ovf,
    ir.INT_LT: lambda a, b: a < b,
    ir.INT_LE: lambda a, b: a <= b,
    ir.INT_EQ: lambda a, b: a == b,
    ir.INT_NE: lambda a, b: a != b,
    ir.INT_GT: lambda a, b: a > b,
    ir.INT_GE: lambda a, b: a >= b,
    ir.INT_IS_TRUE: lambda a: a != 0,
    ir.INT_IS_ZERO: lambda a: a == 0,
    ir.FLOAT_ADD: lambda a, b: a + b,
    ir.FLOAT_SUB: lambda a, b: a - b,
    ir.FLOAT_MUL: lambda a, b: a * b,
    ir.FLOAT_TRUEDIV: lambda a, b: a / b,
    ir.FLOAT_NEG: lambda a: -a,
    ir.FLOAT_ABS: abs,
    ir.FLOAT_SQRT: math.sqrt,
    ir.FLOAT_LT: lambda a, b: a < b,
    ir.FLOAT_LE: lambda a, b: a <= b,
    ir.FLOAT_EQ: lambda a, b: a == b,
    ir.FLOAT_NE: lambda a, b: a != b,
    ir.FLOAT_GT: lambda a, b: a > b,
    ir.FLOAT_GE: lambda a, b: a >= b,
    ir.CAST_INT_TO_FLOAT: float,
    ir.CAST_FLOAT_TO_INT: int,
    ir.STRLEN: len,
    ir.STRGETITEM: lambda s, i: s[i],
    ir.STR_EQ: lambda a, b: a == b,
    ir.STR_CONCAT: lambda a, b: a + b,
    ir.UNICODELEN: len,
    ir.UNICODEGETITEM: lambda s, i: s[i],
    ir.UNICODE_EQ: lambda a, b: a == b,
    ir.UNICODE_CONCAT: lambda a, b: a + b,
    ir.PTR_EQ: lambda a, b: a is b,
    ir.PTR_NE: lambda a, b: a is not b,
    ir.SAME_AS: lambda a: a,
}

# Ops safe to fold at trace-record/optimization time when args are const.
# Any op whose concrete semantics can raise on in-domain constants is
# excluded (the fold would raise inside the optimizer instead of at
# execution, where the guest-level handler lives): overflow-checked and
# division ops, but also shifts (negative counts), float_sqrt (negative
# operands) and cast_float_to_int (inf/nan).  Cross-checked against a
# probed raising set by repro.analysis.effects (rule EFF003).
FOLDABLE = frozenset(
    opnum for opnum in EVAL
    if opnum not in ir.OVF_OPS
    and opnum not in (ir.INT_FLOORDIV, ir.INT_MOD, ir.INT_LSHIFT,
                      ir.INT_RSHIFT, ir.FLOAT_TRUEDIV, ir.FLOAT_SQRT,
                      ir.CAST_FLOAT_TO_INT, ir.STRGETITEM,
                      ir.UNICODEGETITEM)
)
