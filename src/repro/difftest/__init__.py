"""Differential fuzzing of the simulated VM stack.

The paper's cross-layer numbers are only meaningful if every execution
mode computes the same answers: the CPython-reference interpreter
(cpref), the RPython-style interpreter with the JIT off, the meta-traced
JIT at any hot-loop threshold, and the native-reference kernels must all
agree on program output — and the cross-layer counters each run produces
must be internally consistent (phase windows summing to machine totals,
jitlog compile events matching the trace registry, store payloads
round-tripping bit-identically, worker processes agreeing with
in-process runs).

This package is the automated adversary that keeps that agreement
honest:

* :mod:`repro.difftest.generator` — a seeded random TinyPy program
  generator with tunable size/feature knobs;
* :mod:`repro.difftest.oracle` — runs one program under every engine
  configuration and checks output equality plus structural counter
  invariants;
* :mod:`repro.difftest.shrinker` — delta-debugs a failing program down
  to a minimal reproducer;
* :mod:`repro.difftest.corpus` — reads/writes the checked-in corpus of
  shrunken reproducers under ``tests/difftest/corpus/``;
* :mod:`repro.difftest.campaign` — drives N seeded iterations (serial
  or fanned out over worker processes) and aggregates divergences.

``tools/fuzz.py`` is the command-line front end.
"""

from repro.difftest.campaign import run_campaign, run_iteration
from repro.difftest.generator import (GenConfig, ProgramGenerator,
                                      generate_program)
from repro.difftest.oracle import Divergence, OracleReport, check_program
from repro.difftest.shrinker import shrink

__all__ = [
    "GenConfig",
    "ProgramGenerator",
    "generate_program",
    "Divergence",
    "OracleReport",
    "check_program",
    "shrink",
    "run_campaign",
    "run_iteration",
]
