"""Tier-1 equivalence battery: the threaded-code tier changes cost,
never behavior — and off means bit-for-bit off.

Three claims, mirroring tests/interp/test_quicken_equivalence.py:

* **Off is really off**: with ``tier1=False`` the tier constructs
  nothing (``driver.tier is None``, no blocks interned) and every
  counter is bit-identical to a run where the knob was never mentioned
  — the default simulation stays the paper's two-mode system.  (The
  golden suite separately pins that the classic artifacts are unchanged
  under ``REPRO_TIER1=0``.)

* **On changes cost only**: tier1-on vs tier1-off agree exactly on
  guest stdout, bytecode (DISPATCH) counts, truncation, and the jitlog
  event stream (hot-loop counting and trace recording are tier-blind);
  cycles *differ* — that is the measurement — and on dispatch-dominated
  no-JIT runs they must drop.  On the reference VMs (cpython/racket),
  which have no dispatch loop to thread, the knob is inert and
  everything is bit-identical.

* **On is deterministic across the host matrix**: with the tier on,
  every counter — cycles by ``==`` and ``repr``, phase windows, jitlog
  — is identical across quicken on/off and across every simulation
  backend.  The tier charges through the same fused ``Machine`` entry
  points, so host-side fast paths still cannot drift.
"""

import pytest

from repro.benchprogs import registry
from repro.difftest import oracle
from repro.difftest.generator import generate_program
from repro.harness import runner
from repro.uarch.machine import Machine

BENCH_CONFIGS = [
    ("richards", "python", "pypy"),
    ("richards", "python", "pypy_nojit"),
    ("crypto_pyaes", "python", "cpython"),
    ("nbody", "python", "pypy"),
    ("fannkuch", "racket", "pycket"),
    ("fannkuch", "racket", "racket"),
]

# VM kinds whose dispatch loop the tier actually threads.
TIERED_VMS = ("pypy", "pypy_nojit", "pycket", "pycket_nojit")


def _backends():
    from repro.backend import native as native_backend

    backends = ["python", "fast"]
    if native_backend.machine_class_or_none() is not None:
        backends.append("native")
    return backends


def _measure(program_name, language, vm_kind, tier1, quicken=None,
             backend=None):
    program = (registry.py_program(program_name) if language == "python"
               else registry.rkt_program(program_name))
    result = runner.run_program(program, vm_kind, use_cache=False,
                                tier1=tier1, quicken=quicken,
                                backend=backend)
    phases = tuple(
        (w.instructions, w.cycles, w.branches, w.branch_misses)
        for w in result.phase_windows) if result.phase_windows else None
    jitlog = (repr(result.jitlog_obj.events)
              if result.jitlog_obj is not None else None)
    return {
        "instructions": result.instructions,
        "cycles": result.cycles,
        "cycles_repr": repr(result.cycles),
        "ipc": repr(result.ipc),
        "mpki": repr(result.mpki),
        "truncated": result.truncated,
        "bytecodes": result.bytecodes,
        "output": result.output,
        "phase_windows": phases,
        "phase_breakdown": tuple(sorted(result.phase_breakdown.items())),
        "jitlog": jitlog,
        "tier_stats": result.tier_stats,
    }


# What must agree between tier-on and tier-off runs: the guest-visible
# event stream, not the costs.
BEHAVIOR_FIELDS = ("output", "truncated", "bytecodes", "jitlog")


@pytest.mark.parametrize("program,language,vm_kind", BENCH_CONFIGS)
def test_benchmarks_behavior_identical(program, language, vm_kind):
    on = _measure(program, language, vm_kind, tier1=True)
    off = _measure(program, language, vm_kind, tier1=False)
    for field in BEHAVIOR_FIELDS:
        assert on[field] == off[field], field
    assert off["tier_stats"] is None
    if vm_kind in TIERED_VMS:
        # The tier must have engaged (these benchmarks all have hot
        # code objects) and changed simulated cost.
        assert on["tier_stats"]["promotions"] > 0
        assert on["cycles"] != off["cycles"]
        if vm_kind.endswith("_nojit"):
            # Dispatch-dominated: threading the dispatch must pay even
            # after the per-bytecode compile charges.
            assert on["cycles"] < off["cycles"]
    else:
        # Reference VMs have no dispatch loop to thread: the knob is
        # inert and everything — cycles to the last bit — matches.
        assert on == off


@pytest.mark.parametrize("program,language,vm_kind", BENCH_CONFIGS)
def test_tier_on_bit_identical_across_host_matrix(program, language,
                                                  vm_kind):
    """quicken x backend must not perturb a tier-on run by one bit."""
    baseline = _measure(program, language, vm_kind, tier1=True,
                        quicken=True, backend="python")
    for backend in _backends():
        for quicken in (True, False):
            if quicken and backend == "python":
                continue
            other = _measure(program, language, vm_kind, tier1=True,
                             quicken=quicken, backend=backend)
            for field in baseline:
                assert baseline[field] == other[field], (
                    field, quicken, backend)


def test_tier_actually_engages(monkeypatch):
    """The tier-on run must dispatch through the threaded path —
    otherwise the equivalence above is vacuous."""
    monkeypatch.setenv("REPRO_BACKEND", "python")
    # Count batched quick_run calls issued with the tier's slim dispatch
    # block (3 insns) rather than the interpreter's (19 insns).
    tier_batches = [0]
    orig = Machine.quick_run

    def counting(self, tag, b, items, n_insns):
        if b.n_insns == 3:
            tier_batches[0] += 1
        return orig(self, tag, b, items, n_insns)

    monkeypatch.setattr(Machine, "quick_run", counting)
    on = _measure("richards", "python", "pypy_nojit", tier1=True)
    assert on["tier_stats"]["promotions"] > 0
    assert tier_batches[0] > 100  # real threaded execution, not strays

    tier_batches[0] = 0
    off = _measure("richards", "python", "pypy_nojit", tier1=False)
    assert off["tier_stats"] is None
    assert tier_batches[0] == 0  # the knob really disables the layer


@pytest.mark.parametrize("seed", range(9400, 9420))
def test_generated_programs_behavior_identical(seed):
    """Difftest-generated TinyPy programs: direct-mode runs with the
    tier on vs off agree on the guest-visible event stream, and the
    tier-on run is itself bit-stable under quickening."""
    source = generate_program(seed)
    cap = 60_000_000
    on = oracle.run_interp(source, jit=False, tier1=True,
                           max_instructions=cap, name="tier1")
    off = oracle.run_interp(source, jit=False, tier1=False,
                            max_instructions=cap)
    if on.truncated or off.truncated:
        # The instruction cap bites at different simulated costs, so
        # the cheaper run gets further; behavior agreement degrades to
        # the shared prefix of the event stream.
        shorter, longer = sorted((on.output, off.output), key=len)
        assert longer.startswith(shorter)
    else:
        assert on.output == off.output
        assert (on.error is None) == (off.error is None)
        assert on.tool.bcrate.bytecodes == off.tool.bcrate.bytecodes

    # Bit-identity within the tier: quickening must stay invisible even
    # when the tier rewrote the hot code objects.
    on_noquicken = oracle.run_interp(source, jit=False, tier1=True,
                                     max_instructions=cap,
                                     quicken=False, name="tier1-nq")
    for field in ("instructions", "cycles", "branches", "branch_misses",
                  "loads", "stores", "annotations"):
        a = getattr(on.machine, field)
        b = getattr(on_noquicken.machine, field)
        assert a == b, field
        assert repr(a) == repr(b), field
    assert tuple(on.machine.class_counts) == \
        tuple(on_noquicken.machine.class_counts)
