"""Phase tracking from cross-layer annotations (paper Section V-B).

The RPython framework emits paired start/stop annotations around tracing,
JIT execution, residual AOT calls, GC, and blackhole deoptimization.  The
PinTool derives the current phase from those events with a phase stack
(GC can interrupt any phase; residual calls nest inside JIT execution)
and attributes windowed counter deltas to phases — this regenerates the
paper's Figures 2/3/4 and Table IV.
"""

from repro.core import tags

# Phase identifiers (order used in reports).
INTERP = 0
TRACING = 1
JIT = 2
JIT_CALL = 3
GC = 4
BLACKHOLE = 5

N_PHASES = 6

PHASE_NAMES = ("interp", "tracing", "jit", "jit_call", "gc", "blackhole")

_PUSH = {
    tags.TRACE_START: TRACING,
    tags.BRIDGE_START: TRACING,
    tags.JIT_ENTER: JIT,
    tags.JIT_CALL_START: JIT_CALL,
    tags.BLACKHOLE_START: BLACKHOLE,
    tags.GC_MINOR_START: GC,
    tags.GC_MAJOR_START: GC,
}

_POP = {
    tags.TRACE_STOP: TRACING,
    tags.BRIDGE_STOP: TRACING,
    tags.JIT_LEAVE: JIT,
    tags.JIT_CALL_STOP: JIT_CALL,
    tags.BLACKHOLE_STOP: BLACKHOLE,
    tags.GC_MINOR_STOP: GC,
    tags.GC_MAJOR_STOP: GC,
}


class PhaseWindow:
    """Accumulated counters for one phase."""

    __slots__ = ("instructions", "cycles", "branches", "branch_misses")

    def __init__(self):
        self.instructions = 0
        self.cycles = 0.0
        self.branches = 0
        self.branch_misses = 0

    @property
    def ipc(self):
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def branches_per_insn(self):
        if not self.instructions:
            return 0.0
        return self.branches / self.instructions

    @property
    def branch_miss_rate(self):
        return self.branch_misses / self.branches if self.branches else 0.0


class PhaseTracker:
    """Attributes machine-counter windows to framework phases."""

    def __init__(self, machine, record_timeline=False, telemetry=None):
        self._machine = machine
        self._stack = [INTERP]
        self.windows = [PhaseWindow() for _ in range(N_PHASES)]
        self.telemetry = telemetry
        self.record_timeline = record_timeline
        # Timeline of (start_cycles, end_cycles, phase) segments (Figure 3).
        self.timeline = []
        self._mark_insns = machine.instructions
        self._mark_cycles = machine.cycles
        self._mark_branches = machine.branches
        self._mark_misses = machine.branch_misses
        self._finished = False

    @property
    def current_phase(self):
        return self._stack[-1]

    def on_annot(self, tag, payload):
        push_phase = _PUSH.get(tag)
        if push_phase is not None:
            self._attribute()
            self._stack.append(push_phase)
            return
        pop_phase = _POP.get(tag)
        if pop_phase is not None:
            self._attribute()
            if len(self._stack) > 1 and self._stack[-1] == pop_phase:
                self._stack.pop()
            # Unbalanced stop (e.g. simulation aborted mid-phase) is
            # tolerated: stay at the current phase.

    def _attribute(self):
        machine = self._machine
        window = self.windows[self._stack[-1]]
        insns_now = machine.instructions
        cycles_now = machine.cycles
        window.instructions += insns_now - self._mark_insns
        window.cycles += cycles_now - self._mark_cycles
        window.branches += machine.branches - self._mark_branches
        window.branch_misses += machine.branch_misses - self._mark_misses
        if self.record_timeline and insns_now > self._mark_insns:
            self.timeline.append(
                (self._mark_insns, insns_now, self._stack[-1])
            )
        self._mark_insns = insns_now
        self._mark_cycles = cycles_now
        self._mark_branches = machine.branches
        self._mark_misses = machine.branch_misses

    def finish(self):
        """Attribute the final open window (call once at end of run)."""
        if not self._finished:
            self._attribute()
            self._finished = True
            t = self.telemetry
            if t is not None:
                # Publish the windowed totals into the telemetry stream
                # so trace consumers can cross-check span self-times
                # against the offline phase attribution.
                t.instant("phase_windows", "pintool.phases", {
                    name: {
                        "cycles": self.windows[i].cycles,
                        "instructions": self.windows[i].instructions,
                        "branches": self.windows[i].branches,
                        "branch_misses": self.windows[i].branch_misses,
                    }
                    for i, name in enumerate(PHASE_NAMES)
                })
                for i, name in enumerate(PHASE_NAMES):
                    t.gauge("phase.%s.cycles" % name,
                            self.windows[i].cycles)

    # -- reporting -----------------------------------------------------------

    def breakdown(self):
        """Fraction of total cycles per phase, as a dict name -> fraction."""
        total = sum(w.cycles for w in self.windows)
        if not total:
            return {name: 0.0 for name in PHASE_NAMES}
        return {
            PHASE_NAMES[i]: self.windows[i].cycles / total
            for i in range(N_PHASES)
        }

    def insn_breakdown(self):
        """Fraction of retired instructions per phase."""
        total = sum(w.instructions for w in self.windows)
        if not total:
            return {name: 0.0 for name in PHASE_NAMES}
        return {
            PHASE_NAMES[i]: self.windows[i].instructions / total
            for i in range(N_PHASES)
        }

    def timeline_segments(self, n_buckets=60):
        """Downsample the timeline into per-bucket phase fractions.

        Returns a list of dicts (one per bucket) mapping phase name to the
        fraction of the bucket's instructions spent in that phase — the
        data behind the paper's Figure 3 stacked timelines.
        """
        if not self.timeline:
            return []
        end = self.timeline[-1][1]
        if not end:
            return []
        bucket_size = max(1, end // n_buckets)
        buckets = [[0] * N_PHASES for _ in range(n_buckets + 1)]
        for start, stop, phase in self.timeline:
            position = start
            while position < stop:
                index = min(position // bucket_size, n_buckets)
                bucket_end = (index + 1) * bucket_size
                chunk = min(stop, bucket_end) - position
                buckets[index][phase] += chunk
                position += chunk
        result = []
        for counts in buckets:
            total = sum(counts)
            if not total:
                continue
            result.append(
                {
                    PHASE_NAMES[i]: counts[i] / total
                    for i in range(N_PHASES)
                }
            )
        return result
