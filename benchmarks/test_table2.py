"""Table II: CLBG cross-language performance."""

from conftest import save

from repro.harness import experiments


def test_table2(benchmark, quick):
    rows, text = benchmark.pedantic(
        lambda: experiments.table2(quick=quick), rounds=1, iterations=1)
    save("table2.txt", text)

    by_name = {r["benchmark"]: r for r in rows}
    # Paper shape: the C/C++ reference beats every dynamic-language VM.
    for row in rows:
        if row["native_s"] is not None:
            assert row["native_s"] < row["cpython_s"]
            assert row["native_s"] < row["pypy_s"]
    # Paper shape: Pycket is within 0.3x-2x-ish of Racket (sometimes
    # faster, sometimes slower — never another order of magnitude).
    for row in rows:
        if row["pycket_s"] is not None:
            ratio = row["racket_s"] / row["pycket_s"]
            # Paper range is 0.3x-2x; our TinyRkt shares the full trace
            # optimizer (2017 Pycket was less mature), so it wins by
            # more on numeric kernels — see EXPERIMENTS.md.
            assert 0.15 < ratio < 10.0, (row["benchmark"], ratio)
    # pidigits: CPython's (GMP-like) bignums keep it competitive.
    pidigits = by_name["pidigits"]
    assert pidigits["pypy_s"] > pidigits["cpython_s"] * 0.5
