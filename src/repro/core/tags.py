"""Cross-layer annotation tags.

The paper's cross-layer methodology encodes each annotation as an x86
``nop`` whose (ignored) address operand carries a tag.  Our virtual ISA
does the same: a ``NOP_ANNOT`` instruction carries an integer tag plus an
optional payload.  This module is the single registry of tag values so
that every layer (application, interpreter, framework, JIT backend) and
every collector (PinTool, PAPI windows, perf sampler) agrees on them.

Tags are grouped in blocks of 0x100 by the layer that emits them.
"""

# --- framework layer (RPython-equivalent) -------------------------------
TRACE_START = 0x100        # meta-interpreter starts recording a loop trace
TRACE_STOP = 0x101         # recording finished (compiled or aborted)
BRIDGE_START = 0x102       # meta-interpreter starts recording a bridge
BRIDGE_STOP = 0x103
OPT_START = 0x104          # trace optimizer entered
OPT_STOP = 0x105
BACKEND_START = 0x106      # IR -> assembly lowering
BACKEND_STOP = 0x107
JIT_ENTER = 0x110          # execution transferred to JIT-compiled code
JIT_LEAVE = 0x111          # execution left JIT-compiled code
JIT_CALL_START = 0x112     # residual call to AOT-compiled function begins
JIT_CALL_STOP = 0x113
BLACKHOLE_START = 0x114    # deoptimization via the blackhole interpreter
BLACKHOLE_STOP = 0x115
GC_MINOR_START = 0x120
GC_MINOR_STOP = 0x121
GC_MAJOR_START = 0x122
GC_MAJOR_STOP = 0x123

# --- interpreter layer ---------------------------------------------------
DISPATCH = 0x200           # one iteration of the dispatch loop (one bytecode)
FRAME_ENTER = 0x201        # a guest frame was pushed
FRAME_LEAVE = 0x202
TIER1_COMPILE_START = 0x210  # tier-1 threaded-code compilation begins
TIER1_COMPILE_STOP = 0x211   # (interpreter-layer work: not a phase tag)

# --- JIT-IR layer --------------------------------------------------------
IR_NODE = 0x300            # payload: (opnum, trace_id) for the node being run
TRACE_ITER = 0x301         # payload: trace_id; one pass over a compiled loop

# --- application layer ---------------------------------------------------
APP_EVENT = 0x400          # payload: guest-supplied small integer / string

# --- VM lifecycle --------------------------------------------------------
VM_START = 0x500
VM_STOP = 0x501

_NAMES = {
    value: name
    for name, value in list(globals().items())
    if name.isupper() and isinstance(value, int)
}


def tag_name(tag):
    """Return the symbolic name for ``tag`` (for logs and reports)."""
    return _NAMES.get(tag, "UNKNOWN_0x%x" % tag)


def is_phase_tag(tag):
    """True if the tag participates in phase accounting (Section V-B)."""
    return tag < 0x200 or tag in (BLACKHOLE_START, BLACKHOLE_STOP)
