"""Every TinyPy benchmark must produce identical output on host Python,
CpRef, PyVM-interp, and PyVM-JIT (at a reduced problem size)."""

import contextlib
import io

import pytest

from repro.benchprogs import registry
from repro.core.config import SystemConfig
from repro.interp.context import VMContext
from repro.pylang.cpref import CpRef
from repro.pylang.interp import PyVM


def host_python_output(source):
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        exec(compile(source, "<bench>", "exec"), {})
    return buffer.getvalue()


@pytest.mark.slow
@pytest.mark.parametrize(
    "program", registry.PY_PROGRAMS, ids=lambda p: p.name)
def test_benchmark_output_matches_everywhere(program):
    source = program.source(n=program.small_n)
    expected = host_python_output(source)
    assert expected.strip(), "benchmark printed nothing"

    reference = CpRef(SystemConfig())
    reference.run_source(source)
    assert reference.stdout() == expected, "cpref diverges from host"

    cfg = SystemConfig.interpreter_only()
    nojit = PyVM(VMContext(cfg))
    nojit.run_source(source)
    assert nojit.stdout() == expected, "pyvm-nojit diverges"

    cfg = SystemConfig()
    cfg.jit.hot_loop_threshold = 5
    cfg.jit.bridge_threshold = 3
    ctx = VMContext(cfg)
    jit = PyVM(ctx)
    jit.run_source(source)
    assert jit.stdout() == expected, "pyvm-jit diverges"


def test_registry_lookup():
    assert registry.py_program("richards").name == "richards"
    with pytest.raises(KeyError):
        registry.py_program("nonexistent")
    assert len(registry.pypy_suite()) >= 15
    assert len(registry.clbg_python()) >= 8


def test_source_scaling():
    program = registry.py_program("telco")
    assert "N = 3000" in program.source()
    assert "N = 7" in program.source(n=7)
