"""AOT-compiled runtime functions.

In RPython, interpreter/runtime functions that cannot be inlined into a
trace (typically because they contain loops with data-dependent bounds)
are compiled ahead of time and *called* from JIT code — the paper's
"JIT call" phase and Table III.  Here, an :class:`AotFunction` wraps a
Python implementation that charges a work-proportional instruction cost
through the context.

``src`` uses the paper's Table III source tags:

* ``R`` — RPython type-system intrinsics (dicts, lists, ...)
* ``L`` — the RPython standard library (rbigint, rstring, ...)
* ``C`` — external C library calls (pow, memcpy, ...)
* ``I`` — interpreter-defined helpers (list strategies, ...)
* ``M`` — VM module helpers (json encoding, ...)

``effects`` describes two independent properties the tracer needs:

* ``pure``      — no heap effects; CSE/fold candidates (call_pure).
* ``readonly``  — reads the heap, writes nothing; safe to re-execute.
* ``idempotent``— writes the heap, but re-executing with the same
                  arguments is harmless (e.g. dict setitem).
* ``any``       — arbitrary effects; re-execution is unsafe, so a guard
                  recorded after such a call in the same merge region
                  forces a trace abort (deopt soundness).
"""

import zlib

from repro.core.errors import ReproError

EFFECTS = ("pure", "readonly", "idempotent", "any")


class AotFunction(object):
    """One AOT-compiled entry point callable from traces."""

    __slots__ = ("name", "src", "effects", "fn", "pc")

    def __init__(self, name, src, effects, fn):
        if src not in ("R", "L", "C", "I", "M"):
            raise ReproError("bad src tag %r" % src)
        if effects not in EFFECTS:
            raise ReproError("bad effects %r" % effects)
        self.name = name
        self.src = src
        self.effects = effects
        self.fn = fn
        # Deterministic simulated call-site pc (id() would vary between
        # processes and break run reproducibility).
        self.pc = zlib.crc32(name.encode()) & 0xFFFF

    @property
    def reexec_safe(self):
        return self.effects != "any"

    @property
    def invalidates_heap(self):
        return self.effects in ("idempotent", "any")

    def call(self, ctx, args):
        """Invoke the implementation (charges its own costs via ctx)."""
        return self.fn(ctx, *args)

    def __repr__(self):
        return "<AotFunction %s (%s)>" % (self.name, self.src)


def aot(name, src, effects):
    """Decorator: wrap a function as an AotFunction.

    >>> @aot("rstr.ll_join", "R", "pure")
    ... def ll_join(ctx, sep, items): ...
    """
    def wrap(fn):
        return AotFunction(name, src, effects, fn)
    return wrap
