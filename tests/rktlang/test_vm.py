"""TinyRkt VM builtin coverage: differential across all three VMs.

Every builtin in ``RKT_BUILTINS`` is exercised through the reference
evaluator, the JIT-less framework VM, and the JIT VM; the three outputs
must agree (the ``vms`` fixture asserts this).
"""

import pytest

from repro.core.errors import GuestError
from repro.rktlang.vm import RKT_BUILTINS

from .conftest import run_rktvm


def test_pairs_and_lists(vms):
    out, _ = vms("""
(define p (cons 1 2))
(display (car p)) (newline)
(display (cdr p)) (newline)
(set-car! p 10)
(set-cdr! p 20)
(display (car p)) (display " ") (display (cdr p)) (newline)
(display (pair? p)) (newline)
(display (null? '())) (newline)
(display (null? p)) (newline)
(define l (list 1 2 3))
(display (length l)) (newline)
(display (car (reverse l))) (newline)
""")
    assert out.splitlines() == [
        "1", "2", "10 20", "#t", "#t", "#f", "3", "3"]


def test_vectors(vms):
    out, _ = vms("""
(define v (make-vector 3 7))
(display (vector-length v)) (newline)
(vector-set! v 1 42)
(display (vector-ref v 0)) (display " ")
(display (vector-ref v 1)) (newline)
(define w (vector 1 2 3))
(display (vector-ref w 2)) (newline)
""")
    assert out.splitlines() == ["3", "7 42", "3"]


def test_integer_division_truncates_toward_zero(vms):
    out, _ = vms("""
(display (quotient 7 2)) (newline)
(display (quotient -7 2)) (newline)
(display (remainder 7 2)) (newline)
(display (remainder -7 2)) (newline)
(display (modulo 7 2)) (newline)
""")
    assert out.splitlines() == ["3", "-3", "1", "-1", "1"]


def test_numeric_builtins(vms):
    out, _ = vms("""
(display (abs -5)) (newline)
(display (min 3 1 2)) (newline)
(display (max 3 1 2)) (newline)
(display (zero? 0)) (display (zero? 1)) (newline)
(display (even? 4)) (display (odd? 4)) (newline)
(display (floor 2.5)) (newline)
(display (truncate -2.5)) (newline)
(display (sqrt 16)) (newline)
""")
    lines = out.splitlines()
    assert lines[0] == "5"
    assert lines[1] == "1"
    assert lines[2] == "3"
    assert lines[3] == "#t#f"
    assert lines[4] == "#t#f"


def test_exactness_conversions(vms):
    out, _ = vms("""
(display (exact->inexact 3)) (newline)
(display (inexact->exact 3.7)) (newline)
""")
    assert out.splitlines() == ["3.0", "3"]


def test_strings(vms):
    out, _ = vms("""
(define s "hello")
(display (string-length s)) (newline)
(display (string-ref s 1)) (newline)
(display (substring s 1 3)) (newline)
(display (string-append "ab" "cd" "ef")) (newline)
(display (number->string 42)) (newline)
(display (string=? "ab" "ab")) (newline)
(display (string<? "ab" "ac")) (newline)
""")
    assert out.splitlines() == ["5", "e", "el", "abcdef", "42", "#t", "#t"]


def test_chars(vms):
    out, _ = vms("""
(display (char->integer #\\a)) (newline)
(display (integer->char 98)) (newline)
(display (char=? #\\x #\\x)) (newline)
""")
    assert out.splitlines() == ["97", "b", "#t"]


def test_arithmetic_shift_both_directions(vms):
    out, _ = vms("""
(display (arithmetic-shift 1 4)) (newline)
(display (arithmetic-shift 256 -4)) (newline)
""")
    assert out.splitlines() == ["16", "16"]


def test_display_conventions(vms):
    out, _ = vms("""
(display '()) (newline)
(display #t) (display #f) (newline)
(display 2.5) (newline)
""")
    assert out.splitlines() == ["()", "#t#f", "2.5"]


def test_named_let_loop_jits(vms):
    out, ctx = vms("""
(define (sum-to n)
  (let loop ((i 0) (acc 0))
    (if (< i n) (loop (+ i 1) (+ acc i)) acc)))
(display (sum-to 200)) (newline)
""")
    assert out == "19900\n"
    # The loop is hot enough to compile at the fixture's threshold.
    assert len(ctx.registry.traces) >= 1


def test_do_loop_runs(vms):
    out, _ = vms("""
(define (fact n)
  (do ((i 1 (+ i 1)) (acc 1 (* acc i))) ((> i n) acc)))
(display (fact 10)) (newline)
""")
    assert out == "3628800\n"


def test_deep_recursion_via_define(vms):
    out, _ = vms("""
(define (fib n)
  (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
(display (fib 15)) (newline)
""")
    assert out == "610\n"


def test_unknown_global_raises_guest_error():
    with pytest.raises(GuestError):
        run_rktvm("(display (no-such-function 1))", jit=False)


def test_every_builtin_is_exercised_somewhere():
    """Guard list: new builtins must come with a differential test."""
    tested = {
        "display", "newline", "cons", "car", "cdr", "set-car!", "set-cdr!",
        "null?", "pair?", "list", "length", "reverse", "make-vector",
        "vector", "vector-ref", "vector-set!", "vector-length", "quotient",
        "remainder", "sqrt", "abs", "min", "max", "floor", "truncate",
        "zero?", "even?", "odd?", "number->string", "string-length",
        "string-ref", "substring", "string-append", "exact->inexact",
        "inexact->exact", "char->integer", "integer->char",
        "arithmetic-shift",
    }
    assert set(RKT_BUILTINS) == tested
