import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import SystemConfig
from repro.interp.context import VMContext
from repro.rlib import rordereddict as rd


@pytest.fixture
def ctx():
    return VMContext(SystemConfig())


def test_set_get(ctx):
    d = rd.RDict()
    rd.ll_dict_setitem.fn(ctx, d, "a", 1)
    rd.ll_dict_setitem.fn(ctx, d, "b", 2)
    assert rd.ll_dict_lookup.fn(ctx, d, "a") == 1
    assert rd.ll_dict_lookup.fn(ctx, d, "b") == 2
    assert rd.ll_dict_lookup.fn(ctx, d, "c") is None
    assert rd.ll_dict_len.fn(ctx, d) == 2


def test_overwrite(ctx):
    d = rd.RDict()
    rd.ll_dict_setitem.fn(ctx, d, "k", 1)
    rd.ll_dict_setitem.fn(ctx, d, "k", 2)
    assert rd.ll_dict_lookup.fn(ctx, d, "k") == 2
    assert rd.ll_dict_len.fn(ctx, d) == 1


def test_delete(ctx):
    d = rd.RDict()
    rd.ll_dict_setitem.fn(ctx, d, "k", 1)
    assert rd.ll_dict_delitem.fn(ctx, d, "k") is True
    assert rd.ll_dict_delitem.fn(ctx, d, "k") is False
    assert rd.ll_dict_lookup.fn(ctx, d, "k") is None
    assert rd.ll_dict_len.fn(ctx, d) == 0


def test_insertion_order_preserved(ctx):
    d = rd.RDict()
    keys = ["z", "a", "m", "b"]
    for i, key in enumerate(keys):
        rd.ll_dict_setitem.fn(ctx, d, key, i)
    assert rd.ll_dict_keys.fn(ctx, d) == keys
    assert rd.ll_dict_values.fn(ctx, d) == [0, 1, 2, 3]
    assert rd.ll_dict_items.fn(ctx, d)[0] == ("z", 0)


def test_resize_keeps_contents(ctx):
    d = rd.RDict()
    for i in range(500):
        rd.ll_dict_setitem.fn(ctx, d, "key%d" % i, i)
    assert len(d.indexes) > 8
    for i in range(500):
        assert rd.ll_dict_lookup.fn(ctx, d, "key%d" % i) == i


def test_contains(ctx):
    d = rd.RDict()
    rd.ll_dict_setitem.fn(ctx, d, 7, "x")
    assert rd.ll_dict_contains.fn(ctx, d, 7)
    assert not rd.ll_dict_contains.fn(ctx, d, 8)


def test_clear(ctx):
    d = rd.RDict()
    rd.ll_dict_setitem.fn(ctx, d, "a", 1)
    rd.ll_dict_clear.fn(ctx, d)
    assert rd.ll_dict_len.fn(ctx, d) == 0
    assert rd.ll_dict_lookup.fn(ctx, d, "a") is None


def test_custom_hash_eq(ctx):
    # Case-insensitive string keys.
    d = rd.RDict(hash_fn=lambda k: hash(k.lower()),
                 eq_fn=lambda a, b: a.lower() == b.lower())
    rd.ll_dict_setitem.fn(ctx, d, "Key", 1)
    assert rd.ll_dict_lookup.fn(ctx, d, "KEY") == 1


def test_collisions_still_work(ctx):
    d = rd.RDict(hash_fn=lambda k: 42, eq_fn=lambda a, b: a == b)
    for i in range(40):
        rd.ll_dict_setitem.fn(ctx, d, i, i * 10)
    for i in range(40):
        assert rd.ll_dict_lookup.fn(ctx, d, i) == i * 10


def test_lookup_cost_scales_with_probes(ctx):
    collider = rd.RDict(hash_fn=lambda k: 0, eq_fn=lambda a, b: a == b)
    for i in range(64):
        rd.ll_dict_setitem.fn(ctx, collider, i, i)
    before = ctx.machine.cycles
    rd.ll_dict_lookup.fn(ctx, collider, 63)
    collision_cost = ctx.machine.cycles - before
    fast = rd.RDict()
    rd.ll_dict_setitem.fn(ctx, fast, 63, 63)
    before = ctx.machine.cycles
    rd.ll_dict_lookup.fn(ctx, fast, 63)
    fast_cost = ctx.machine.cycles - before
    assert collision_cost > fast_cost * 3


@given(st.lists(st.tuples(st.sampled_from("abcdefgh"),
                          st.integers(0, 100), st.booleans()), max_size=200))
@settings(max_examples=100, deadline=None)
def test_matches_python_dict(operations):
    ctx = VMContext(SystemConfig())
    d = rd.RDict()
    model = {}
    for key, value, is_delete in operations:
        if is_delete:
            present = rd.ll_dict_delitem.fn(ctx, d, key)
            assert present == (key in model)
            model.pop(key, None)
        else:
            rd.ll_dict_setitem.fn(ctx, d, key, value)
            model[key] = value
        assert rd.ll_dict_len.fn(ctx, d) == len(model)
    for key, value in model.items():
        assert rd.ll_dict_lookup.fn(ctx, d, key) == value
    assert set(rd.ll_dict_keys.fn(ctx, d)) == set(model)
