"""Profiling of residual AOT-compiled calls from JIT traces (Table III).

When JIT-compiled code performs a residual call, the runtime emits
JIT_CALL_START with payload ``(function_name, source_tag)`` and a paired
JIT_CALL_STOP.  This profiler attributes the windowed instruction counts
to the *entry-point* function, matching the paper's methodology ("if
these functions call other functions, the time spent in the called
functions is also counted as part of these entry points").
"""

from repro.core import tags


class AotCallProfiler:
    """Tracks time spent per AOT-compiled entry point."""

    def __init__(self, machine):
        self._machine = machine
        # name -> [calls, instructions, cycles]; src kept separately.
        self.by_function = {}
        self.sources = {}
        self._stack = []  # (name, start_insns, start_cycles, nested_insns)

    def on_annot(self, tag, payload):
        if tag == tags.JIT_CALL_START:
            name, src = payload
            self.sources[name] = src
            self._stack.append(
                [name, self._machine.instructions, self._machine.cycles]
            )
        elif tag == tags.JIT_CALL_STOP:
            if not self._stack:
                return
            name, start_insns, start_cycles = self._stack.pop()
            # Entry-point accounting: only attribute at the outermost call.
            if self._stack:
                return
            record = self.by_function.get(name)
            if record is None:
                record = [0, 0, 0.0]
                self.by_function[name] = record
            record[0] += 1
            record[1] += self._machine.instructions - start_insns
            record[2] += self._machine.cycles - start_cycles

    def significant(self, total_cycles, threshold=0.10):
        """Functions above ``threshold`` of total time (Table III rows).

        Returns a list of (fraction, source_tag, name, calls), sorted by
        descending fraction.
        """
        if not total_cycles:
            return []
        rows = []
        for name, (calls, _insns, cycles) in self.by_function.items():
            fraction = cycles / total_cycles
            if fraction >= threshold:
                rows.append((fraction, self.sources.get(name, "?"), name, calls))
        rows.sort(reverse=True)
        return rows

    def all_rows(self, total_cycles):
        """Every profiled function as (fraction, src, name, calls)."""
        rows = [
            (cycles / total_cycles if total_cycles else 0.0,
             self.sources.get(name, "?"), name, calls)
            for name, (calls, _insns, cycles) in self.by_function.items()
        ]
        rows.sort(reverse=True)
        return rows
