"""Inspect what the meta-tracing JIT actually compiles.

Runs a small TinyPy hot loop, then dumps: the recorded/optimized IR of
the compiled loop, its resume-snapshot guards, the generated executable
form (our stand-in for machine code), and the jitlog events.

Run:  python examples/inspect_jit.py
"""

from repro.core.config import SystemConfig
from repro.interp.context import VMContext
from repro.jit.executor import get_compiled
from repro.pylang.interp import PyVM

SOURCE = '''
class Point:
    def __init__(self, x, y):
        self.x = x
        self.y = y

total = 0
p = Point(0, 1)
for i in range(2000):
    p.x = p.x + p.y
    total = total + p.x % 7
print(total)
'''


def main():
    config = SystemConfig()
    config.jit.hot_loop_threshold = 13
    ctx = VMContext(config)
    vm = PyVM(ctx)
    vm.run_source(SOURCE)
    print("guest output:", vm.stdout().strip())

    loop = next(t for t in ctx.registry.traces if t.kind == "loop")
    print("\noptimized loop %r: %d IR ops, %d asm instructions"
          % (loop.greenkey, loop.n_ops, loop.asm_size))
    print("\nIR (peeled loop body):")
    for op in loop.ops[loop.label_index:]:
        if op.name == "debug_merge_point":
            continue
        note = ""
        if op.is_guard() and op.snapshot is not None:
            frame = op.snapshot.innermost
            note = "   ; resume at pc=%d" % frame.pc
        print("    %-60s%s" % (op, note))

    get_compiled(ctx, loop)
    print("\ngenerated executable form (first 30 lines):")
    for line in loop._source.splitlines()[:30]:
        print("   ", line)

    print("\njitlog events:")
    for kind, details in ctx.jitlog.events:
        line = {k: v for k, v in details.items()
                if k in ("trace_kind", "n_ops_compiled", "asm_size",
                         "reason")}
        print("   ", kind, line)


if __name__ == "__main__":
    main()
