"""call_assembler: traces calling other compiled loops (nested loops)."""

from repro.core.config import SystemConfig
from repro.interp.context import VMContext
from repro.jit import ir, jitlog
from repro.pylang.cpref import CpRef
from repro.pylang.interp import PyVM

NESTED = '''
def inner(k):
    total = 0
    i = 0
    while i < 60:
        total = total + i * k
        i = i + 1
    return total

acc = 0
j = 0
while j < 400:
    acc = acc + inner(j % 5)
    j = j + 1
print(acc)
'''


def run_jit(source, **overrides):
    cfg = SystemConfig()
    cfg.jit.hot_loop_threshold = 7
    cfg.jit.bridge_threshold = 3
    for key, value in overrides.items():
        setattr(cfg.jit, key, value)
    ctx = VMContext(cfg)
    vm = PyVM(ctx)
    vm.run_source(source)
    return vm, ctx


def test_nested_loops_emit_call_assembler():
    reference = CpRef(SystemConfig())
    reference.run_source(NESTED)
    vm, ctx = run_jit(NESTED)
    assert vm.stdout() == reference.stdout()
    ops = [op for t in ctx.registry.traces for op in t.ops]
    call_asm = [op for op in ops if op.opnum == ir.CALL_ASSEMBLER]
    assert call_asm, "outer loop did not stitch to the inner loop"
    # The outer loop compiled despite containing a compiled inner loop.
    outer_keys = {t.greenkey[0].name for t in ctx.registry.traces
                  if t.kind == "loop"}
    assert "__main__" in outer_keys
    assert "inner" in outer_keys


def test_call_assembler_is_expensive_in_figure9():
    _vm, ctx = run_jit(NESTED)
    means = jitlog.asm_insns_per_node_type(ctx.registry)
    assert means["call_assembler"] > 30


def test_recursive_function_with_inner_loop():
    source = '''
def work(depth):
    total = 0
    i = 0
    while i < 40:
        total += i
        i += 1
    if depth > 0:
        total += work(depth - 1)
    return total

acc = 0
for j in range(200):
    acc += work(2)
print(acc)
'''
    reference = CpRef(SystemConfig())
    reference.run_source(source)
    vm, ctx = run_jit(source)
    assert vm.stdout() == reference.stdout()


def test_call_assembler_result_flows_into_trace():
    # The call's result participates in later arithmetic: linkage must
    # be live, not constant-captured.
    source = '''
def inner(k):
    s = 0
    i = 0
    while i < 30:
        s += k
        i += 1
    return s

values = []
for j in range(300):
    values.append(inner(j % 7) * 2)
print(values[0], values[8], values[299], sum(values))
'''
    reference = CpRef(SystemConfig())
    reference.run_source(source)
    vm, ctx = run_jit(source)
    assert vm.stdout() == reference.stdout()
