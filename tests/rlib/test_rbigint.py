"""rbigint correctness, cross-checked against Python's own integers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import SystemConfig
from repro.interp.context import VMContext
from repro.rlib import rbigint
from repro.rlib.rbigint import BigInt


@pytest.fixture
def ctx():
    return VMContext(SystemConfig())


ints = st.integers(min_value=-(10 ** 40), max_value=10 ** 40)
small_ints = st.integers(min_value=-(2 ** 62), max_value=2 ** 62)


def to_py(value):
    if isinstance(value, tuple):
        return tuple(to_py(v) for v in value)
    text = rbigint._to_decimal(value)
    return int(text)


def test_fromint_roundtrip():
    for value in (0, 1, -1, 12345, -99999, 2 ** 70, -(2 ** 70)):
        assert to_py(BigInt.fromint(value)) == value


def test_toint_range():
    assert BigInt.fromint(2 ** 62).toint() == 2 ** 62
    with pytest.raises(Exception):
        BigInt.fromint(2 ** 70).toint()
    assert not BigInt.fromint(2 ** 70).fits_int()
    assert BigInt.fromint(-5).toint() == -5


@given(ints, ints)
@settings(max_examples=200, deadline=None)
def test_add_matches_python(a, b):
    ctx = VMContext(SystemConfig())
    result = rbigint.big_add.fn(ctx, BigInt.fromint(a), BigInt.fromint(b))
    assert to_py(result) == a + b


@given(ints, ints)
@settings(max_examples=200, deadline=None)
def test_sub_matches_python(a, b):
    ctx = VMContext(SystemConfig())
    result = rbigint.big_sub.fn(ctx, BigInt.fromint(a), BigInt.fromint(b))
    assert to_py(result) == a - b


@given(ints, ints)
@settings(max_examples=200, deadline=None)
def test_mul_matches_python(a, b):
    ctx = VMContext(SystemConfig())
    result = rbigint.big_mul.fn(ctx, BigInt.fromint(a), BigInt.fromint(b))
    assert to_py(result) == a * b


@given(ints, ints.filter(lambda v: v != 0))
@settings(max_examples=300, deadline=None)
def test_divmod_matches_python(a, b):
    ctx = VMContext(SystemConfig())
    q, r = rbigint.big_divmod.fn(ctx, BigInt.fromint(a), BigInt.fromint(b))
    expected_q, expected_r = divmod(a, b)
    assert to_py(q) == expected_q
    assert to_py(r) == expected_r


def test_divmod_by_zero(ctx):
    with pytest.raises(ZeroDivisionError):
        rbigint.big_divmod.fn(ctx, BigInt.fromint(5), BigInt.fromint(0))


@given(ints, st.integers(min_value=0, max_value=200))
@settings(max_examples=150, deadline=None)
def test_lshift_matches_python(a, count):
    ctx = VMContext(SystemConfig())
    result = rbigint.big_lshift.fn(ctx, BigInt.fromint(a), count)
    assert to_py(result) == a << count


@given(ints, st.integers(min_value=0, max_value=200))
@settings(max_examples=150, deadline=None)
def test_rshift_matches_python(a, count):
    ctx = VMContext(SystemConfig())
    result = rbigint.big_rshift.fn(ctx, BigInt.fromint(a), count)
    assert to_py(result) == a >> count


@given(ints, ints)
@settings(max_examples=150, deadline=None)
def test_cmp_matches_python(a, b):
    ctx = VMContext(SystemConfig())
    big_a, big_b = BigInt.fromint(a), BigInt.fromint(b)
    assert rbigint.big_eq.fn(ctx, big_a, big_b) == (a == b)
    assert rbigint.big_lt.fn(ctx, big_a, big_b) == (a < b)


@given(ints)
@settings(max_examples=100, deadline=None)
def test_str_matches_python(a):
    ctx = VMContext(SystemConfig())
    assert rbigint.big_str.fn(ctx, BigInt.fromint(a)) == str(a)


@given(ints)
@settings(max_examples=100, deadline=None)
def test_fromstr_roundtrip(a):
    ctx = VMContext(SystemConfig())
    assert to_py(rbigint.big_fromstr.fn(ctx, str(a))) == a


@given(small_ints, st.integers(min_value=0, max_value=12))
@settings(max_examples=60, deadline=None)
def test_pow_matches_python(a, e):
    ctx = VMContext(SystemConfig())
    result = rbigint.big_pow.fn(ctx, BigInt.fromint(a), e)
    assert to_py(result) == a ** e


def test_neg_abs(ctx):
    assert to_py(rbigint.big_neg.fn(ctx, BigInt.fromint(5))) == -5
    assert to_py(rbigint.big_abs.fn(ctx, BigInt.fromint(-5))) == 5
    assert to_py(rbigint.big_neg.fn(ctx, BigInt.fromint(0))) == 0


def test_costs_scale_with_size(ctx):
    small_cost_start = ctx.machine.cycles
    rbigint.big_mul.fn(ctx, BigInt.fromint(10), BigInt.fromint(10))
    small_cost = ctx.machine.cycles - small_cost_start
    big_value = BigInt.fromint(10 ** 300)
    big_cost_start = ctx.machine.cycles
    rbigint.big_mul.fn(ctx, big_value, big_value)
    big_cost = ctx.machine.cycles - big_cost_start
    assert big_cost > small_cost * 50


@given(ints, ints)
@settings(max_examples=100, deadline=None)
def test_bitwise_matches_python(a, b):
    ctx = VMContext(SystemConfig())
    big_a, big_b = BigInt.fromint(a), BigInt.fromint(b)
    assert to_py(rbigint.big_and.fn(ctx, big_a, big_b)) == a & b
    assert to_py(rbigint.big_or.fn(ctx, big_a, big_b)) == a | b
    assert to_py(rbigint.big_xor.fn(ctx, big_a, big_b)) == a ^ b


def test_int_to_decimal_ignores_host_digit_cap():
    import sys

    value = -(10 ** 6000 + 12345)
    limit = sys.get_int_max_str_digits()
    sys.set_int_max_str_digits(640)
    try:
        text = rbigint.int_to_decimal(value)
    finally:
        sys.set_int_max_str_digits(max(limit, 10000))
    assert text == str(value)
    sys.set_int_max_str_digits(limit)
    assert rbigint.int_to_decimal(0) == "0"
