# telco: the telco billing benchmark — fixed-point (hundredths of a
# cent) decimal arithmetic with rounding and tax, plus output
# formatting. Arithmetic + string formatting mix.
N = 3000

RATE_BASIC = 640        # 0.0064 per second, scaled by 1e5
RATE_DISTANCE = 1300    # 0.0130
BTAX = 651              # 6.51% scaled by 1e4
DTAX = 341              # 3.41%


def round_half_even(value, unit):
    q = value // unit
    r = value - q * unit
    half = unit // 2
    if r > half:
        q += 1
    elif r == half:
        if q % 2 == 1:
            q += 1
    return q


def run_telco(calls):
    state = 42
    sumt = 0
    sumb = 0
    sumd = 0
    for i in range(calls):
        state = (state * 1103515245 + 12345) % 2147483648
        duration = state % 2400
        is_distance = (state >> 12) & 1
        if is_distance:
            rate = RATE_DISTANCE
        else:
            rate = RATE_BASIC
        price = round_half_even(duration * rate, 100)  # to 0.01 cents
        btax = round_half_even(price * BTAX, 10000)
        sumb += btax
        total = price + btax
        if is_distance:
            dtax = round_half_even(price * DTAX, 10000)
            sumd += dtax
            total += dtax
        sumt += total
    print("telco %d.%02d %d.%02d %d.%02d" % (
        sumt // 10000, (sumt % 10000) // 100,
        sumb // 10000, (sumb % 10000) // 100,
        sumd // 10000, (sumd % 10000) // 100))


run_telco(N)
