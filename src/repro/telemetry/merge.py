"""Merging telemetry streams from many processes into one timeline.

``run_many`` fans simulations out over worker processes; each worker
ships its VM session's event records back inside the result payload.
:func:`merge_runs` reassigns process ids and produces one canonical
event list, sorted so the merge is **order-independent**: feeding the
same payloads in any order yields byte-identical output.
"""


def _canonical_order(record):
    # Meta records lead their pid; then events by timestamp, with ties
    # broken by longest span first (parents before children) and name.
    kind_rank = {"meta": 0, "span": 1, "instant": 1, "metrics": 2}
    return (
        record["pid"],
        kind_rank.get(record["type"], 3),
        record.get("ts", 0.0),
        -record.get("dur", 0.0),
        record.get("depth", 0),
        record.get("name", ""),
    )


def _label_of(events, default):
    for record in events:
        if record["type"] == "meta" and record.get("process_name"):
            return record["process_name"]
    return default


def merge_runs(event_lists, labels=None, base_pid=1):
    """Merge per-run event lists into one timeline.

    Each input list becomes its own Chrome-trace process (``pid``),
    labelled from ``labels`` or its own meta record.  Inputs are first
    sorted by label so that the output does not depend on arrival
    order (workers finish in nondeterministic order).
    """
    tagged = []
    for index, events in enumerate(event_lists):
        if labels is not None and index < len(labels):
            label = labels[index]
        else:
            label = _label_of(events, "run-%d" % index)
        tagged.append((label, events))
    tagged.sort(key=lambda pair: pair[0])

    merged = []
    for offset, (label, events) in enumerate(tagged):
        pid = base_pid + offset
        for record in events:
            copied = dict(record)
            copied["pid"] = pid
            if copied["type"] == "meta":
                copied["process_name"] = label
            merged.append(copied)
    merged.sort(key=_canonical_order)
    return merged
