"""TinyPy bytecode: opcodes and code objects."""

import zlib

_OPS = []


def _op(name):
    opnum = len(_OPS)
    _OPS.append(name)
    return opnum


LOAD_CONST = _op("LOAD_CONST")
LOAD_FAST = _op("LOAD_FAST")
STORE_FAST = _op("STORE_FAST")
LOAD_GLOBAL = _op("LOAD_GLOBAL")
STORE_GLOBAL = _op("STORE_GLOBAL")
LOAD_ATTR = _op("LOAD_ATTR")
STORE_ATTR = _op("STORE_ATTR")
BINARY_SUBSCR = _op("BINARY_SUBSCR")
STORE_SUBSCR = _op("STORE_SUBSCR")
DELETE_SUBSCR = _op("DELETE_SUBSCR")

BINARY_ADD = _op("BINARY_ADD")
BINARY_SUB = _op("BINARY_SUB")
BINARY_MUL = _op("BINARY_MUL")
BINARY_FLOORDIV = _op("BINARY_FLOORDIV")
BINARY_TRUEDIV = _op("BINARY_TRUEDIV")
BINARY_MOD = _op("BINARY_MOD")
BINARY_POW = _op("BINARY_POW")
BINARY_AND = _op("BINARY_AND")
BINARY_OR = _op("BINARY_OR")
BINARY_XOR = _op("BINARY_XOR")
BINARY_LSHIFT = _op("BINARY_LSHIFT")
BINARY_RSHIFT = _op("BINARY_RSHIFT")

UNARY_NEG = _op("UNARY_NEG")
UNARY_NOT = _op("UNARY_NOT")
UNARY_INVERT = _op("UNARY_INVERT")

COMPARE_LT = _op("COMPARE_LT")
COMPARE_LE = _op("COMPARE_LE")
COMPARE_EQ = _op("COMPARE_EQ")
COMPARE_NE = _op("COMPARE_NE")
COMPARE_GT = _op("COMPARE_GT")
COMPARE_GE = _op("COMPARE_GE")
COMPARE_IS = _op("COMPARE_IS")
COMPARE_IS_NOT = _op("COMPARE_IS_NOT")
COMPARE_IN = _op("COMPARE_IN")
COMPARE_NOT_IN = _op("COMPARE_NOT_IN")

JUMP = _op("JUMP")
POP_JUMP_IF_FALSE = _op("POP_JUMP_IF_FALSE")
POP_JUMP_IF_TRUE = _op("POP_JUMP_IF_TRUE")
JUMP_IF_FALSE_OR_POP = _op("JUMP_IF_FALSE_OR_POP")
JUMP_IF_TRUE_OR_POP = _op("JUMP_IF_TRUE_OR_POP")

CALL_FUNCTION = _op("CALL_FUNCTION")
RETURN_VALUE = _op("RETURN_VALUE")
MAKE_FUNCTION = _op("MAKE_FUNCTION")
MAKE_CLASS = _op("MAKE_CLASS")

BUILD_LIST = _op("BUILD_LIST")
BUILD_TUPLE = _op("BUILD_TUPLE")
BUILD_MAP = _op("BUILD_MAP")
BUILD_SET = _op("BUILD_SET")
BUILD_SLICE = _op("BUILD_SLICE")
LIST_APPEND = _op("LIST_APPEND")

GET_ITER = _op("GET_ITER")
FOR_ITER = _op("FOR_ITER")

POP_TOP = _op("POP_TOP")
DUP_TOP = _op("DUP_TOP")
DUP_TOP_TWO = _op("DUP_TOP_TWO")
ROT_TWO = _op("ROT_TWO")
ROT_THREE = _op("ROT_THREE")
UNPACK_SEQUENCE = _op("UNPACK_SEQUENCE")

N_OPS = len(_OPS)
OP_NAMES = tuple(_OPS)


class PyCode(object):
    """A compiled TinyPy code object."""

    _immutable_fields_ = ("name", "ops", "args", "consts", "names",
                          "varnames", "argcount", "n_locals")

    def __init__(self, name, ops, args, consts, names, varnames, argcount):
        self.name = name
        self.ops = ops          # list of opcode ints
        self.args = args        # parallel list of int args (or 0)
        self.consts = consts    # raw constant descriptors
        self.names = names      # attribute/global name strings
        self.varnames = varnames
        self.argcount = argcount
        self.n_locals = len(varnames)
        # Deterministic simulated-PC seed for branch events.  Derived
        # from the code *content*, never from id(): memory addresses
        # differ between processes, which would make branch-predictor
        # streams (and so cycles/miss counts) non-reproducible across
        # runs and parallel workers.
        self.pc_seed = zlib.crc32(
            ("%s|%r|%r" % (name, ops, args)).encode()) & 0xFFFFF

    def dis(self):
        """Human-readable disassembly (for tests and debugging)."""
        lines = []
        for pc, (op, arg) in enumerate(zip(self.ops, self.args)):
            lines.append("%4d %-22s %s" % (pc, OP_NAMES[op], arg))
        return "\n".join(lines)

    def __repr__(self):
        return "<PyCode %s>" % self.name


class ClassSpec(object):
    """Compile-time description of a ``class`` statement."""

    def __init__(self, name, base_name, methods):
        self.name = name
        self.base_name = base_name  # global name of the base or None
        self.methods = methods      # list of (name, PyCode, default_consts)

    def __repr__(self):
        return "<ClassSpec %s>" % self.name


class FunctionSpec(object):
    """Compile-time description of a ``def`` statement (const payload)."""

    def __init__(self, code, n_defaults):
        self.code = code
        self.n_defaults = n_defaults
