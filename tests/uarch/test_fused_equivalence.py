"""Fused-path equivalence: bit-identical counters vs the unbatched engine.

The fast-path engine — block descriptors (`exec_block`/`exec_fused`),
fused dispatch events (`dispatch_event`/`dispatch_event2`), straight-line
run batching (`dispatch_run`), collapsed annotations (`annot_run`), the
fused guard fall-through (`branch_block`), and the inlined BTB/gshare
updates inside them — must not change simulation results AT ALL.  Every
:class:`CounterSnapshot` field, including the float ``cycles``, has to be
bit-identical to what the naive per-event reference engine produces,
because float addition is not associative and the cycle accumulator is
mantissa-full on real runs.

These tests monkeypatch every fused Machine entry point back to its
unbatched composition of primitive events and compare full benchmark
runs (one interpreter-only VM, one tracing-JIT VM) field for field.
"""

import pytest

from repro.benchprogs import registry
from repro.harness import runner
from repro.interp.context import VMContext
from repro.pintool.tool import PinTool
from repro.pylang.cpref import CpRef
from repro.pylang.interp import PyVM
from repro.uarch.machine import Machine


# -- the unbatched reference engine -------------------------------------------
#
# Each function is the exact event sequence the fused method replaces,
# expressed through the primitive Machine ops (annot / exec_mix /
# branch / indirect / exec_bulk_branches), which use the generic
# predictor/cache call paths rather than any inlined fast path.

def _ref_exec_block(self, b):
    self.exec_mix(b.mix)


def _ref_exec_fused(self, f):
    self.exec_mix(f.block.mix)
    self.exec_bulk_branches(f.branches, f.miss_rate)


def _ref_dispatch_event(self, tag, b, pc, target):
    self.annot(tag)
    self.exec_mix(b.mix)
    self.indirect(pc, target)


def _ref_dispatch_event2(self, tag, b, pc, target, b2):
    self.annot(tag)
    self.exec_mix(b.mix)
    self.indirect(pc, target)
    self.exec_mix(b2.mix)


def _ref_dispatch_run(self, tag, b, items, n_insns):
    for pc, target, b2 in items:
        self.dispatch_event2(tag, b, pc, target, b2)


def _ref_quick_run(self, tag, b, items, n_insns):
    for pc, target, blocks in items:
        self.dispatch_event(tag, b, pc, target)
        for blk in blocks:
            self.exec_block(blk)


def _ref_branch_block(self, pc, b):
    self.branch(pc, False)
    self.exec_mix(b.mix)


def _ref_branch_block_annot_run(self, pc, b, tag, n):
    self.branch(pc, False)
    self.exec_mix(b.mix)
    for _ in range(n):
        self.annot(tag)


def _ref_load_annot_run(self, addr, tag, n):
    self.load(addr)
    for _ in range(n):
        self.annot(tag)


def _ref_store_annot_run(self, addr, tag, n):
    self.store(addr)
    for _ in range(n):
        self.annot(tag)


def _ref_annot_run(self, tag, n, payload=None):
    for _ in range(n):
        self.annot(tag, payload)


_REFERENCE = {
    "exec_block": _ref_exec_block,
    "exec_fused": _ref_exec_fused,
    "dispatch_event": _ref_dispatch_event,
    "dispatch_event2": _ref_dispatch_event2,
    "dispatch_run": _ref_dispatch_run,
    "quick_run": _ref_quick_run,
    "branch_block": _ref_branch_block,
    "branch_block_annot_run": _ref_branch_block_annot_run,
    "load_annot_run": _ref_load_annot_run,
    "store_annot_run": _ref_store_annot_run,
    "annot_run": _ref_annot_run,
}


def _simulate(program_name, vm_kind, n):
    """Run one benchmark at the VM level; return the full measurement set."""
    program = registry.py_program(program_name)
    source = program.source(n=n)
    if vm_kind == "cpython":
        config = runner._base_config(0, False, None)
        vm = CpRef(config)
        machine = vm.machine
        tool = PinTool(machine)
        vm.run_source(source)
    else:
        config = runner._base_config(0, True, None)
        ctx = VMContext(config)
        machine = ctx.machine
        tool = PinTool(machine)
        vm = PyVM(ctx)
        vm.run_source(source)
    tool.finish()
    descr_retires = sum(b.count for b in machine._blocks)
    descr_retires += sum(f.count for f in machine._fused)
    return (machine.counters(), tuple(machine.class_counts),
            tool.bcrate.bytecodes, descr_retires)


@pytest.mark.parametrize("program,vm_kind,n", [
    ("crypto_pyaes", "cpython", 2),
    ("richards", "pypy", 1),
])
def test_counters_bit_identical_to_unbatched(monkeypatch, program,
                                             vm_kind, n):
    # Pin the reference backend: this test patches Machine methods at
    # the class level and reads descriptor counts white-box, neither of
    # which reaches the compiled backends' per-instance kernels (their
    # own bit-identity is proven by tests/backend/).
    monkeypatch.setenv("REPRO_BACKEND", "python")
    fused_counters, fused_classes, fused_bc, fused_retires = _simulate(
        program, vm_kind, n)
    for name, ref in _REFERENCE.items():
        monkeypatch.setattr(Machine, name, ref)
    ref_counters, ref_classes, ref_bc, ref_retires = _simulate(
        program, vm_kind, n)

    # The fused run actually exercised descriptors; the patched run
    # cannot have (reference compositions never touch descr.count).
    assert fused_retires > 0
    assert ref_retires == 0

    # Bit-identical: == on floats is exact, and repr() double-checks
    # that no field differs even in the last mantissa bit.
    for field, fused, ref in zip(fused_counters._fields,
                                 fused_counters, ref_counters):
        assert fused == ref, field
        assert repr(fused) == repr(ref), field
    assert fused_classes == ref_classes
    assert fused_bc == ref_bc
    assert fused_counters.instructions > 100_000  # a real run, not a toy
