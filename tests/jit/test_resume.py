"""Unit tests for jit.resume: snapshots, virtuals, and deopt state."""

from repro.jit.resume import DeoptState, FrameState, Snapshot, VirtualSpec


def make_frame(code="code0", pc=3, locals_values=(1, 2), stack=(9,),
               extra=None):
    return FrameState(code, pc, locals_values, stack, extra)


class TestFrameState:
    def test_holds_state_verbatim(self):
        frame = make_frame(extra=("mod", True))
        assert frame.code == "code0"
        assert frame.pc == 3
        assert frame.locals == (1, 2)
        assert frame.stack == (9,)
        assert frame.extra == ("mod", True)

    def test_map_values_transforms_locals_and_stack(self):
        frame = make_frame(locals_values=(1, 2), stack=(3,))
        mapped = frame.map_values(lambda v: v * 10)
        assert mapped.locals == (10, 20)
        assert mapped.stack == (30,)

    def test_map_values_preserves_code_pc_extra(self):
        frame = make_frame(extra="opaque")
        mapped = frame.map_values(lambda v: v)
        assert mapped.code is frame.code
        assert mapped.pc == frame.pc
        assert mapped.extra == "opaque"

    def test_map_values_returns_new_frame(self):
        frame = make_frame()
        mapped = frame.map_values(lambda v: v)
        assert mapped is not frame

    def test_repr_names_code_and_pc(self):
        assert "pc=3" in repr(make_frame())


class TestSnapshot:
    def test_innermost_is_last_frame(self):
        outer = make_frame(pc=1)
        inner = make_frame(pc=2)
        snap = Snapshot((outer, inner))
        assert snap.innermost is inner

    def test_map_values_maps_every_frame(self):
        snap = Snapshot((make_frame(locals_values=(1,), stack=()),
                         make_frame(locals_values=(2,), stack=(3,))))
        mapped = snap.map_values(lambda v: v + 100)
        assert mapped.frames[0].locals == (101,)
        assert mapped.frames[1].locals == (102,)
        assert mapped.frames[1].stack == (103,)

    def test_iter_values_walks_outer_to_inner_locals_then_stack(self):
        snap = Snapshot((make_frame(locals_values=(1, 2), stack=(3,)),
                         make_frame(locals_values=(4,), stack=(5, 6))))
        assert list(snap.iter_values()) == [1, 2, 3, 4, 5, 6]

    def test_iter_values_empty_frames(self):
        snap = Snapshot((make_frame(locals_values=(), stack=()),))
        assert list(snap.iter_values()) == []


class TestVirtualSpec:
    def test_holds_class_fields_size(self):
        class W_Point(object):
            pass

        spec = VirtualSpec(W_Point, {"x": 1}, 24)
        assert spec.cls is W_Point
        assert spec.fields == {"x": 1}
        assert spec.size == 24
        assert "W_Point" in repr(spec)

    def test_nested_virtuals(self):
        class W_Node(object):
            pass

        inner = VirtualSpec(W_Node, {}, 16)
        outer = VirtualSpec(W_Node, {"next": inner}, 16)
        assert outer.fields["next"] is inner


class TestDeoptState:
    def test_frames_round_trip(self):
        frames = [("code0", 7, [1, 2], [3])]
        state = DeoptState(frames)
        assert state.frames is frames


class TestSnapshotInTracer:
    """Snapshots recorded by the real tracer deoptimize correctly:
    a guard failing mid-loop resumes the interpreter with the right
    values, so the program's output is unchanged."""

    def test_guard_failure_resumes_interpreter(self):
        from repro.core.config import SystemConfig
        from repro.interp.context import VMContext
        from repro.pylang.interp import PyVM

        source = (
            "total = 0\n"
            "for i in range(80):\n"
            "    if i < 60:\n"
            "        total = total + i\n"
            "    else:\n"
            "        total = total + 2 * i\n"
            "print(total)\n"
        )
        config = SystemConfig()
        config.jit.enabled = True
        config.jit.hot_loop_threshold = 5
        ctx = VMContext(config)
        vm = PyVM(ctx)
        vm.run_source(source)
        expected = sum(i if i < 60 else 2 * i for i in range(80))
        assert vm.stdout() == "%d\n" % expected
        # The i<60 guard fails after the loop got hot, so at least one
        # trace was compiled and executed.
        assert ctx.registry.traces
        assert any(t.executions for t in ctx.registry.traces)
