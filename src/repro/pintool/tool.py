"""The PinTool facade: one annotation listener feeding all profilers.

This plays the role of the paper's custom PinTool: it attaches to the
machine's annotation stream (tagged nops) and drives the phase tracker,
the bytecode-rate tracker, the AOT-call profiler, and (optionally) the
per-IR-node profiler.
"""

from repro.pintool.aotcalls import AotCallProfiler
from repro.pintool.bcrate import BytecodeRateTracker
from repro.pintool.irprofile import IrNodeProfiler
from repro.pintool.phases import PhaseTracker


class PinTool:
    """Intercepts cross-layer annotations from a :class:`Machine`."""

    def __init__(self, machine, record_timeline=False, bucket_insns=0,
                 profile_ir_nodes=False):
        self.machine = machine
        self.phases = PhaseTracker(machine, record_timeline=record_timeline)
        self.bcrate = BytecodeRateTracker(machine, bucket_insns=bucket_insns)
        self.aotcalls = AotCallProfiler(machine)
        self.irprofile = IrNodeProfiler() if profile_ir_nodes else None
        machine.add_annot_listener(self.on_annot)

    def on_annot(self, tag, payload):
        self.phases.on_annot(tag, payload)
        self.bcrate.on_annot(tag, payload)
        self.aotcalls.on_annot(tag, payload)
        if self.irprofile is not None:
            self.irprofile.on_annot(tag, payload)

    def finish(self):
        """Close all open measurement windows; call once at end of run."""
        self.phases.finish()
        self.bcrate.finish()

    def detach(self):
        self.machine.remove_annot_listener(self.on_annot)
