"""TinyPy: the PyPy-analogue guest VM plus the CPython reference."""
