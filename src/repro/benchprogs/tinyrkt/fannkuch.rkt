; fannkuchredux (CLBG, Racket): pancake flips over permutations.
(define N 7)

(define (vector-reverse! v k)
  (let loop ((lo 0) (hi k))
    (when (< lo hi)
      (let ((tmp (vector-ref v lo)))
        (vector-set! v lo (vector-ref v hi))
        (vector-set! v hi tmp))
      (loop (+ lo 1) (- hi 1)))))

(define (count-flips perm)
  (let loop ((flips 0))
    (let ((k (vector-ref perm 0)))
      (if (= k 0)
          flips
          (begin
            (vector-reverse! perm k)
            (loop (+ flips 1)))))))

(define (copy-vector! dst src n)
  (do ((i 0 (+ i 1))) ((= i n) #t)
    (vector-set! dst i (vector-ref src i))))

(define (fannkuch n)
  (define perm1 (make-vector n 0))
  (define perm (make-vector n 0))
  (define count (make-vector n 0))
  (do ((i 0 (+ i 1))) ((= i n) #t)
    (vector-set! perm1 i i))
  (let outer ((r n) (max-flips 0) (checksum 0) (sign 1) (done #f))
    (if done
        (begin
          (display "fannkuch ") (display checksum)
          (display " ") (display max-flips) (newline))
        (let ((r2 (let fix ((r r))
                    (if (= r 1)
                        1
                        (begin (vector-set! count (- r 1) (- r 1))
                               (fix (- r 1)))))))
          (copy-vector! perm perm1 n)
          (let ((flips (if (= (vector-ref perm1 0) 0)
                           0
                           (count-flips perm))))
            (let ((new-max (max max-flips flips))
                  (new-checksum (+ checksum (* sign flips))))
              (let rotate ((r r2))
                (if (= r n)
                    (outer r new-max new-checksum (- 0 sign) #t)
                    (let ((first (vector-ref perm1 0)))
                      (do ((i 0 (+ i 1))) ((= i r) #t)
                        (vector-set! perm1 i (vector-ref perm1 (+ i 1))))
                      (vector-set! perm1 r first)
                      (vector-set! count r (- (vector-ref count r) 1))
                      (if (> (vector-ref count r) 0)
                          (outer r new-max new-checksum (- 0 sign) #f)
                          (rotate (+ r 1))))))))))))

(fannkuch N)
