"""Persistent result store for simulated benchmark runs.

Simulations are deterministic: the same program, VM configuration, and
simulator source always produce the same RunResult.  The store
serializes each result's plain measurements (counters, phase windows,
timelines, compact registry/jitlog summaries — never live VM objects)
under ``results/.cache/`` keyed by the run parameters plus a digest of
the simulator source tree, so editing any ``src/repro`` module
invalidates every stored result automatically.

Environment knobs:

* ``REPRO_STORE=0`` disables the store entirely.
* ``REPRO_STORE_DIR`` overrides the cache directory.
"""

import hashlib
import os
import pickle
import tempfile

#: Bump to invalidate every stored payload after a format change.
FORMAT_VERSION = 1

_SRC_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_REPO_ROOT = os.path.dirname(os.path.dirname(_SRC_ROOT))
_DEFAULT_DIR = os.path.join(_REPO_ROOT, "results", ".cache")

_code_digest_cache = None


def code_digest():
    """Digest of every simulator source file (``src/repro/**/*.py``).

    Computed once per process; any source change yields a new digest,
    which orphans (rather than corrupts) previously stored results.
    """
    global _code_digest_cache
    if _code_digest_cache is None:
        h = hashlib.sha1()
        paths = []
        for dirpath, dirnames, filenames in os.walk(_SRC_ROOT):
            dirnames.sort()
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    paths.append(os.path.join(dirpath, filename))
        for path in paths:
            h.update(os.path.relpath(path, _SRC_ROOT).encode("utf-8"))
            h.update(b"\0")
            with open(path, "rb") as f:
                h.update(f.read())
            h.update(b"\0")
        _code_digest_cache = h.hexdigest()
    return _code_digest_cache


class ResultStore(object):
    """Pickle-backed result cache with hit/miss accounting."""

    def __init__(self, root=None):
        self.root = root or _DEFAULT_DIR
        self.hits = 0
        self.misses = 0
        self.puts = 0

    def _path(self, key):
        digest = hashlib.sha1(
            (repr(key) + "|" + code_digest()).encode("utf-8")).hexdigest()
        # Key fields: (language, program, vm_kind, n, ...) — lead the
        # filename with the human-relevant parts for debuggability.
        stem = "%s-%s-%s" % (key[1], key[2], digest[:16])
        return os.path.join(self.root, stem + ".pkl")

    def get(self, key):
        """Return the stored payload for ``key`` or None."""
        path = self._path(key)
        try:
            with open(path, "rb") as f:
                envelope = pickle.load(f)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            self.misses += 1
            return None
        if (envelope.get("version") != FORMAT_VERSION
                or envelope.get("key") != key
                or envelope.get("digest") != code_digest()):
            self.misses += 1
            return None
        self.hits += 1
        return envelope["payload"]

    def put(self, key, payload):
        """Atomically persist ``payload`` for ``key``."""
        path = self._path(key)
        envelope = {
            "version": FORMAT_VERSION,
            "key": key,
            "digest": code_digest(),
            "payload": payload,
        }
        os.makedirs(self.root, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump(envelope, f, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, path)
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            return
        self.puts += 1


_UNSET = object()
_default = _UNSET


def default_store():
    """The process-wide store, or None when disabled via REPRO_STORE=0."""
    global _default
    if _default is _UNSET:
        if os.environ.get("REPRO_STORE", "1").lower() in ("0", "false", "no"):
            _default = None
        else:
            _default = ResultStore(os.environ.get("REPRO_STORE_DIR"))
    return _default


def reset_default_store():
    """Forget the cached default store (re-reads the environment)."""
    global _default
    _default = _UNSET
