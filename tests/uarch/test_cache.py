import pytest
from hypothesis import given, strategies as st

from repro.core.config import UarchConfig
from repro.uarch.cache import CacheHierarchy, SetAssocCache


def test_cold_miss_then_hit():
    cache = SetAssocCache(32, 8, 64)
    assert not cache.access(0x1000)
    assert cache.access(0x1000)
    assert cache.access(0x103F)  # same line
    assert not cache.access(0x1040)  # next line


def test_lru_eviction():
    cache = SetAssocCache(1, 2, 64)  # 1 KiB, 2-way: 8 sets
    set_stride = 8 * 64  # addresses mapping to the same set
    a, b, c = 0, set_stride, 2 * set_stride
    cache.access(a)
    cache.access(b)
    cache.access(c)  # evicts a (LRU)
    assert cache.access(b)
    assert cache.access(c)
    assert not cache.access(a)


def test_rejects_non_power_of_two_line():
    with pytest.raises(ValueError):
        SetAssocCache(32, 8, 60)


def test_hierarchy_penalties():
    cfg = UarchConfig()
    hierarchy = CacheHierarchy(cfg)
    # Cold access misses both levels.
    assert hierarchy.access(0x5000) == cfg.l1d_miss_penalty + cfg.l2_miss_penalty
    # Now it hits L1.
    assert hierarchy.access(0x5000) == 0


def test_hierarchy_l2_hit():
    cfg = UarchConfig()
    hierarchy = CacheHierarchy(cfg)
    hierarchy.access(0x5000)
    # Evict from L1 by streaming through > 32 KiB mapping widely.
    for i in range(4096):
        hierarchy.access(0x100000 + i * 64)
    penalty = hierarchy.access(0x5000)
    assert penalty in (cfg.l1d_miss_penalty,
                       cfg.l1d_miss_penalty + cfg.l2_miss_penalty)


@given(st.lists(st.integers(0, 1 << 24), max_size=500))
def test_hits_plus_misses_equals_accesses(addresses):
    cache = SetAssocCache(4, 4, 64)
    for addr in addresses:
        cache.access(addr)
    assert cache.hits + cache.misses == len(addresses)


def test_streaming_has_no_reuse_hits():
    cache = SetAssocCache(32, 8, 64)
    for i in range(1000):
        cache.access(i * 64)
    assert cache.hits == 0
