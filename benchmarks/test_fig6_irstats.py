"""Figure 6: JIT IR compilation burden and trace hotness."""

from conftest import save

from repro.harness import experiments


def test_fig6(benchmark, quick):
    rows, text = benchmark.pedantic(
        lambda: experiments.fig6(quick=quick), rounds=1, iterations=1)
    save("fig6_irstats.txt", text)

    compiled = [r["nodes_compiled"] for r in rows if r["nodes_compiled"]]
    assert compiled
    # Paper shape: compiled IR node counts vary by orders of magnitude
    # across benchmarks (figure is drawn in log scale).
    assert max(compiled) / max(1, min(compiled)) > 8
    # Paper shape: some benchmarks have exceptionally hot regions —
    # a small fraction of nodes covers 95% of JIT time.
    fractions = [r["hot_fraction"] for r in rows if r["nodes_compiled"]]
    assert min(fractions) < 0.5
    assert max(fractions) > min(fractions)
    # Dynamic node rate is nonzero wherever a JIT compiled anything hot.
    assert any(r["nodes_per_minsn"] > 1000 for r in rows)
