"""The JIT backend: numbering and assembly-cost attachment.

Lowers each optimized IR operation to its virtual-ISA footprint
(:mod:`repro.jit.costs`) and assigns environment slots.  The executable
form of the trace is produced lazily by :mod:`repro.jit.executor`.
"""

from repro.jit import costs, ir
from repro.jit.trace import InputArg


def freeze_mix(mix_dict):
    """Canonical immutable form of an accumulated basic-block mix."""
    return tuple(sorted(mix_dict.items()))


def lower_blocks(machine, block_mixes):
    """Lower a trace's accumulated basic-block mixes to block descriptors.

    Each per-block ``{klass: count}`` dict (accumulated while the
    executor generated the trace body) is frozen to its canonical tuple
    and memoized on the machine: identical blocks across traces and
    bridges share one :class:`repro.uarch.blocks.BlockDescr`, so
    steady-state JIT execution retires each block in O(1) instead of
    re-walking its per-class expansion.
    """
    return [machine.block(freeze_mix(m)) for m in block_mixes]


def attach_costs(trace, telemetry=None):
    """Assign op indices/env slots and static assembly sizes."""
    index = 0
    for arg in trace.inputargs:
        arg.index = index
        index += 1
    asm = []
    for op in trace.ops:
        if op.opnum == ir.LABEL:
            for arg in op.args:
                if isinstance(arg, InputArg) and arg.index < 0:
                    arg.index = index
                    index += 1
        op.index = index
        index += 1
        asm.append(costs.asm_size(op))
    trace.n_env_slots = index
    trace.op_asm_insns = asm
    trace.op_exec_counts = [0] * len(trace.ops)
    if telemetry is not None:
        asm_size = sum(asm)
        telemetry.count("jit.backend.asm_insns", asm_size)
        telemetry.count("jit.backend.traces_assembled")
        telemetry.histogram("jit.backend.asm_per_trace", asm_size)
