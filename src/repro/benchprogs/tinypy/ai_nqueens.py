# ai: the PyPy-suite "ai" benchmark core — n-queens solving with
# constraint propagation over candidate lists. Recursion + list heavy.
N = 8


def solve(n, row, cols, diag1, diag2):
    if row == n:
        return 1
    found = 0
    for col in range(n):
        d1 = row + col
        d2 = row - col + n
        if cols[col] == 0 and diag1[d1] == 0 and diag2[d2] == 0:
            cols[col] = 1
            diag1[d1] = 1
            diag2[d2] = 1
            found += solve(n, row + 1, cols, diag1, diag2)
            cols[col] = 0
            diag1[d1] = 0
            diag2[d2] = 0
    return found


def permutations_count(items):
    # Count permutations whose adjacent difference is never 1
    # (a second, branchy search phase).
    return perm_rec(items, [])


def perm_rec(remaining, chosen):
    if len(remaining) == 0:
        return 1
    total = 0
    for i in range(len(remaining)):
        item = remaining[i]
        if len(chosen) > 0:
            d = chosen[len(chosen) - 1] - item
            if d == 1 or d == -1:
                continue
        rest = remaining[0:i] + remaining[i + 1:len(remaining)]
        chosen.append(item)
        total += perm_rec(rest, chosen)
        chosen.pop()
    return total


def run_ai(n):
    queens = solve(n, 0, [0] * n, [0] * (2 * n), [0] * (2 * n))
    perms = permutations_count([0, 1, 2, 3, 4, 5, 6])
    print("ai", queens, perms)


run_ai(N)
