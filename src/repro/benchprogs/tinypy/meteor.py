# meteor_contest: exact-cover puzzle search over bitmask placements.
# Set operations dominate (Table III: BytesSetStrategy difference /
# issubset helpers).
N = 60


def make_pieces():
    # Synthetic "pieces": each a set of cell offsets on a 5x4 board.
    base = [
        [0, 1, 2, 5],
        [0, 1, 5, 6],
        [0, 5, 6, 7],
        [0, 1, 2, 3],
        [0, 1, 6, 7],
    ]
    pieces = []
    for shape in base:
        variants = []
        for shift in range(12):
            cells = []
            ok = True
            for cell in shape:
                pos = cell + shift
                if pos >= 20:
                    ok = False
                    break
                if (cell % 5) + (shift % 5) >= 5:
                    ok = False
                    break
                cells.append(pos)
            if ok:
                variants.append(set(cells))
        pieces.append(variants)
    return pieces


def search(pieces, index, used, solutions, limit):
    if len(solutions) >= limit:
        return
    if index == len(pieces):
        solutions.append(len(used))
        return
    for variant in pieces[index]:
        if len(variant & used) == 0:
            search(pieces, index + 1, used | variant, solutions, limit)


def run_meteor(limit):
    pieces = make_pieces()
    solutions = []
    search(pieces, 0, set([]), solutions, limit)
    print("meteor", len(solutions))


run_meteor(N)
