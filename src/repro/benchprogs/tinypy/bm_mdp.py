# bm_mdp: Markov-decision-process value iteration over a grid world —
# dict lookups (Table III: ll_call_lookup_function) and float math.
N = 50

SIZE = 12
ACTIONS = [(0, 1), (0, -1), (1, 0), (-1, 0)]


def build_rewards():
    rewards = {}
    seed = 5
    for x in range(SIZE):
        for y in range(SIZE):
            seed = (seed * 1103515245 + 12345) % 2147483648
            if seed % 7 == 0:
                rewards[(x, y)] = (seed % 100) / 10.0 - 5.0
    return rewards


def value_iteration(rewards, sweeps):
    values = {}
    for x in range(SIZE):
        for y in range(SIZE):
            values[(x, y)] = 0.0
    gamma = 0.9
    for sweep in range(sweeps):
        new_values = {}
        for x in range(SIZE):
            for y in range(SIZE):
                best = -1000000.0
                for a in ACTIONS:
                    nx = x + a[0]
                    ny = y + a[1]
                    if nx < 0 or nx >= SIZE or ny < 0 or ny >= SIZE:
                        nx = x
                        ny = y
                    r = rewards.get((nx, ny), -0.1)
                    q = r + gamma * values[(nx, ny)]
                    if q > best:
                        best = q
                new_values[(x, y)] = best
        values = new_values
    return values


def run_mdp(sweeps):
    rewards = build_rewards()
    values = value_iteration(rewards, sweeps)
    total = 0.0
    for x in range(SIZE):
        for y in range(SIZE):
            total += values[(x, y)]
    print("bm_mdp %.6f" % total)


run_mdp(N)
