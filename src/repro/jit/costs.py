"""Assembly lowering costs: how many virtual-ISA instructions each IR
node expands to (the data behind the paper's Figure 9).

The shape mirrors the paper's measurements on x86: ``call_assembler``
lowers to >30 instructions (register save/restore, frame switch),
residual ``call``s to 15+ (saving volatile registers, argument shuffling),
guards to 1-2 (compare + conditional jump, with side-exit metadata kept
off the hot path), and most other nodes — including the dominant
``getfield_gc``/``setfield_gc`` — to 1-2 instructions.
"""

from repro.isa import insns
from repro.jit import ir

# Static (mix, extra-branch-count) per opnum.  Branches are charged via
# the predictor at execution time, not through the mix.
_M = insns.mix

PLAIN_MIX = {
    ir.INT_ADD: _M(alu=1), ir.INT_SUB: _M(alu=1), ir.INT_MUL: _M(mul=1),
    ir.INT_FLOORDIV: _M(div=1), ir.INT_MOD: _M(div=1, alu=1),
    ir.INT_AND: _M(alu=1), ir.INT_OR: _M(alu=1), ir.INT_XOR: _M(alu=1),
    ir.INT_LSHIFT: _M(alu=1), ir.INT_RSHIFT: _M(alu=1),
    ir.INT_NEG: _M(alu=1), ir.INT_INVERT: _M(alu=1),
    ir.INT_ADD_OVF: _M(alu=1), ir.INT_SUB_OVF: _M(alu=1),
    ir.INT_MUL_OVF: _M(mul=1),
    ir.INT_LT: _M(alu=1), ir.INT_LE: _M(alu=1), ir.INT_EQ: _M(alu=1),
    ir.INT_NE: _M(alu=1), ir.INT_GT: _M(alu=1), ir.INT_GE: _M(alu=1),
    ir.INT_IS_TRUE: _M(alu=1), ir.INT_IS_ZERO: _M(alu=1),
    ir.FLOAT_ADD: _M(fpu=1), ir.FLOAT_SUB: _M(fpu=1),
    ir.FLOAT_MUL: _M(fpu=1), ir.FLOAT_TRUEDIV: _M(fpu=2),
    ir.FLOAT_NEG: _M(fpu=1), ir.FLOAT_ABS: _M(fpu=1),
    ir.FLOAT_SQRT: _M(fpu=3),
    ir.FLOAT_LT: _M(fpu=1, alu=1), ir.FLOAT_LE: _M(fpu=1, alu=1),
    ir.FLOAT_EQ: _M(fpu=1, alu=1), ir.FLOAT_NE: _M(fpu=1, alu=1),
    ir.FLOAT_GT: _M(fpu=1, alu=1), ir.FLOAT_GE: _M(fpu=1, alu=1),
    ir.CAST_INT_TO_FLOAT: _M(fpu=1), ir.CAST_FLOAT_TO_INT: _M(fpu=1),
    ir.STRLEN: _M(load=1), ir.STRGETITEM: _M(load=1, alu=1),
    ir.STR_EQ: _M(alu=2, load=2), ir.STR_CONCAT: _M(alu=3, load=2, store=2),
    ir.UNICODELEN: _M(load=1), ir.UNICODEGETITEM: _M(load=1, alu=1),
    ir.UNICODE_EQ: _M(alu=2, load=2),
    ir.UNICODE_CONCAT: _M(alu=3, load=2, store=2),
    ir.PTR_EQ: _M(alu=1), ir.PTR_NE: _M(alu=1), ir.SAME_AS: _M(alu=1),
    ir.ARRAYLEN_GC: _M(load=1),
}

# Guards: compare + conditional jump (the branch itself is charged via
# the predictor; the mix carries the compare).
GUARD_MIX = _M(alu=1)

# getfield/setfield: address computation folded into the access; the
# addressed load/store is charged separately through the cache model.
FIELD_EXTRA_MIX = insns.EMPTY_MIX
ARRAYITEM_EXTRA_MIX = _M(alu=1)  # index scaling

# Allocation: nursery bump + limit check + header store.
NEW_MIX = _M(load=1, alu=2)  # plus header store and a branch at runtime
NEW_ASM_SIZE = 6

# Residual call overhead (excluding the callee body): spill volatiles,
# shuffle args, call, restore.  Per the paper's Figure 9: >15 insns.
CALL_BASE_MIX = _M(alu=4, store=5, load=5)
CALL_PER_ARG = 1  # one arg-shuffle alu per argument

# call_assembler: full frame switch into another JIT-compiled loop
# (>30 insns in Figure 9).
CALL_ASM_BASE_MIX = _M(alu=8, store=11, load=11)

JUMP_PER_ARG = 1
FINISH_MIX = _M(alu=2, store=2)


def asm_size(op):
    """Static number of assembly instructions ``op`` lowers to."""
    opnum = op.opnum
    if opnum in PLAIN_MIX:
        return insns.mix_size(PLAIN_MIX[opnum])
    if opnum in ir.GUARDS:
        return insns.mix_size(GUARD_MIX) + 1  # + conditional jump
    if opnum in (ir.GETFIELD_GC, ir.GETFIELD_GC_PURE, ir.SETFIELD_GC):
        return 1
    if opnum in (ir.GETARRAYITEM_GC, ir.SETARRAYITEM_GC):
        return 1 + insns.mix_size(ARRAYITEM_EXTRA_MIX)
    if opnum in (ir.NEW_WITH_VTABLE, ir.NEW_ARRAY):
        return NEW_ASM_SIZE
    if opnum == ir.CALL or opnum == ir.CALL_PURE:
        return (insns.mix_size(CALL_BASE_MIX)
                + CALL_PER_ARG * len(op.args) + 2)  # + call/ret
    if opnum == ir.CALL_ASSEMBLER:
        return (insns.mix_size(CALL_ASM_BASE_MIX)
                + CALL_PER_ARG * len(op.args) + 2)
    if opnum == ir.JUMP:
        return JUMP_PER_ARG * len(op.args) + 1
    if opnum == ir.LABEL:
        return 0
    if opnum == ir.FINISH:
        return insns.mix_size(FINISH_MIX)
    if opnum == ir.DEBUG_MERGE_POINT:
        return 1  # the DISPATCH annotation nop
    raise AssertionError("no asm cost for op %s" % op.name)


# -- compilation-time cost model (charged to the tracing phase) ---------------

# Meta-interpreter work per recorded operation: the meta-interpreter
# decodes jitcodes, boxes values and appends to the trace — dominated by
# dependent loads and poorly-predicted dispatch.
TRACE_RECORD_MIX = _M(load=16, alu=14, store=7)
TRACE_RECORD_BRANCHES = 5
TRACE_RECORD_BRANCH_MISS_RATE = 0.06

# Optimizer cost per input operation.
OPT_MIX = _M(load=6, alu=8, store=2)
OPT_BRANCHES = 2
OPT_BRANCH_MISS_RATE = 0.03

# Backend (register allocation + encoding) cost per emitted operation.
BACKEND_MIX = _M(load=5, alu=9, store=3)
BACKEND_BRANCHES = 2
BACKEND_BRANCH_MISS_RATE = 0.03

# Blackhole deoptimization: fixed frame-reconstruction cost plus work
# proportional to the resume-data size; dependent loads dominate and the
# branches predict poorly (the paper's Table IV: worst IPC of any phase).
BLACKHOLE_BASE_MIX = _M(load=60, alu=40, store=25)
BLACKHOLE_PER_VALUE_MIX = _M(load=3, alu=2, store=2)
BLACKHOLE_BRANCHES = 28
BLACKHOLE_BRANCH_MISS_RATE = 0.16
