"""Property-based differential tests: random guest programs must match
host Python exactly (with and without the JIT)."""

import contextlib
import io

from hypothesis import given, settings, strategies as st

from repro.core.config import SystemConfig
from repro.difftest.generator import GenConfig, generate_program
from repro.interp.context import VMContext
from repro.pylang.interp import PyVM


def host_output(source):
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        exec(compile(source, "<prop>", "exec"), {})
    return buffer.getvalue()


def jit_output(source, threshold=4):
    cfg = SystemConfig()
    cfg.jit.hot_loop_threshold = threshold
    cfg.jit.bridge_threshold = 2
    vm = PyVM(VMContext(cfg))
    vm.run_source(source)
    return vm.stdout()


@given(st.lists(st.integers(-10**9, 10**9), min_size=1, max_size=8),
       st.integers(20, 60))
@settings(max_examples=25, deadline=None)
def test_arith_loop_matches_host(seeds, iterations):
    source = "vals = %r\n" % (seeds,)
    source += """
acc = 0
for it in range(%d):
    for v in vals:
        acc = acc + v * 3 - (acc >> 2) + (v ^ it)
        if acc > 2 ** 40:
            acc = acc %% 12345577
print(acc)
""" % iterations
    assert jit_output(source) == host_output(source)


@given(st.lists(st.sampled_from("abcdef"), min_size=1, max_size=6),
       st.integers(10, 40))
@settings(max_examples=20, deadline=None)
def test_dict_counter_matches_host(keys, iterations):
    source = "keys = %r\n" % (keys,)
    source += """
counts = {}
for it in range(%d):
    for k in keys:
        counts[k] = counts.get(k, 0) + it
total = 0
for k in counts:
    total += counts[k]
print(total, len(counts))
""" % iterations
    assert jit_output(source) == host_output(source)


@given(st.lists(st.integers(-100, 100), min_size=1, max_size=10))
@settings(max_examples=20, deadline=None)
def test_list_pipeline_matches_host(values):
    source = "xs = %r\n" % (values,)
    source += """
ys = []
for it in range(30):
    for x in xs:
        ys.append(x * it)
ys.sort()
ys.reverse()
print(ys[0], ys[-1], len(ys), sum(ys))
"""
    assert jit_output(source) == host_output(source)


@given(st.integers(2, 40), st.integers(2, 9))
@settings(max_examples=15, deadline=None)
def test_bignum_growth_matches_host(iterations, base):
    source = """
n = 1
for i in range(%d):
    n = n * %d + i
print(n)
print(n %% 1000003, n // 7)
""" % (iterations, base)
    assert jit_output(source) == host_output(source)


# --- Whole-program properties via the difftest generator ------------
#
# Instead of hand-written templates, let Hypothesis drive the seeded
# difftest generator: it picks the seed and a few feature knobs, the
# generator emits a closed, terminating TinyPy program, and we require
# the PyVM (interpreter and JIT) to match host Python exactly.  A
# bounded profile keeps each example fast enough for tier-1.

_bounded_profiles = st.builds(
    GenConfig,
    max_toplevel_stmts=st.integers(4, 8),
    max_block_stmts=st.integers(2, 3),
    max_depth=st.integers(1, 2),
    max_expr_depth=st.integers(1, 2),
    max_loop_iters=st.integers(3, 8),
    hot_loop_iters=st.integers(12, 30),
    n_functions=st.integers(0, 2),
    big_ints=st.booleans(),
    floats=st.booleans(),
    strings=st.booleans(),
    lists=st.booleans(),
    dicts=st.booleans(),
    functions=st.booleans(),
    classes=st.booleans(),
)


def interp_output(source):
    cfg = SystemConfig()
    cfg.jit.enabled = False
    vm = PyVM(VMContext(cfg))
    vm.run_source(source)
    return vm.stdout()


@given(st.integers(0, 2**32 - 1), _bounded_profiles)
@settings(max_examples=20, deadline=None)
def test_generated_program_interp_matches_host(seed, profile):
    source = generate_program(seed, profile)
    assert interp_output(source) == host_output(source)


@given(st.integers(0, 2**32 - 1), st.integers(2, 12))
@settings(max_examples=12, deadline=None)
def test_generated_program_jit_matches_host(seed, threshold):
    source = generate_program(seed, GenConfig.small())
    assert jit_output(source, threshold=threshold) == host_output(source)


@given(st.floats(min_value=-100, max_value=100,
                 allow_nan=False, allow_infinity=False),
       st.integers(10, 50))
@settings(max_examples=15, deadline=None)
def test_float_loop_matches_host(start, iterations):
    source = """
x = %r
acc = 0.0
for i in range(%d):
    acc = acc + x * 0.5 - i * 0.25
    x = x * 0.99
print("%%.9f %%.9f" %% (acc, x))
""" % (start, iterations)
    assert jit_output(source) == host_output(source)
