"""Regression: the bulk-branch class is the named constant, not magic 11."""

from repro.core.config import SystemConfig
from repro.isa import insns
from repro.uarch import machine as machine_mod
from repro.uarch.machine import Machine


def test_machine_uses_named_bulk_class():
    # exec_mix used to compare against a literal 11; it must track the
    # ISA constant so a renumbering cannot silently break bulk charging.
    assert machine_mod._BR_BULK == insns.BR_BULK


def test_bulk_entries_charge_branches_at_calibrated_rate():
    m = Machine(SystemConfig())
    mix = insns.mix(alu=2, br_bulk=10)
    before = m.counters()
    m.exec_mix(mix)
    after = m.counters()
    assert after.instructions - before.instructions == 12
    assert after.branches - before.branches == 10
    expected_misses = int(10 * m.bulk_miss_rate)
    assert after.branch_misses - before.branch_misses == expected_misses


def test_block_descriptor_matches_exec_mix_for_bulk():
    mix = insns.mix(alu=3, load=1, br_bulk=7)
    m1 = Machine(SystemConfig())
    m2 = Machine(SystemConfig())
    m1.exec_mix(mix)
    m2.exec_block(m2.block(mix))
    assert m1.counters() == m2.counters()
    assert repr(m1.cycles) == repr(m2.cycles)
    assert tuple(m1.class_counts) == tuple(m2.class_counts)
