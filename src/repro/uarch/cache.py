"""A two-level set-associative data-cache model with LRU replacement.

Fed real simulated heap addresses (the GC assigns object addresses), so
locality differences between, say, pointer-chasing interpreter code and
the GC's sequential nursery sweeps show up in the miss rates.
"""


class SetAssocCache:
    """One cache level. Addresses are byte addresses."""

    __slots__ = ("line_shift", "n_sets", "set_mask", "assoc", "sets",
                 "hits", "misses")

    def __init__(self, size_kib, assoc, line_bytes):
        self.line_shift = line_bytes.bit_length() - 1
        if (1 << self.line_shift) != line_bytes:
            raise ValueError("line size must be a power of two")
        n_lines = (size_kib * 1024) // line_bytes
        self.n_sets = max(1, n_lines // assoc)
        if self.n_sets & (self.n_sets - 1):
            raise ValueError("set count must be a power of two")
        self.set_mask = self.n_sets - 1
        self.assoc = assoc
        # Each set is a list of tags in LRU order (front = MRU).
        self.sets = [[] for _ in range(self.n_sets)]
        self.hits = 0
        self.misses = 0

    def reset(self):
        """Empty every set in place (set-list identities are stable)."""
        for ways in self.sets:
            del ways[:]
        self.hits = 0
        self.misses = 0

    def access(self, addr):
        """Return True on hit; update LRU state either way."""
        line = addr >> self.line_shift
        ways = self.sets[line & self.set_mask]
        tag = line >> 0  # full line id as tag (set bits redundant but fine)
        # MRU hit: remove+reinsert at the front would be a no-op.
        if ways and ways[0] == tag:
            self.hits += 1
            return True
        try:
            ways.remove(tag)
            ways.insert(0, tag)
            self.hits += 1
            return True
        except ValueError:
            ways.insert(0, tag)
            if len(ways) > self.assoc:
                ways.pop()
            self.misses += 1
            return False


class CacheHierarchy:
    """L1D + unified L2; returns the cycle penalty of an access."""

    __slots__ = ("l1", "l2", "l1_penalty", "l2_penalty")

    def __init__(self, cfg):
        self.l1 = SetAssocCache(cfg.l1d_kib, cfg.l1d_assoc, cfg.l1d_line)
        self.l2 = SetAssocCache(cfg.l2_kib, cfg.l2_assoc, cfg.l1d_line)
        self.l1_penalty = cfg.l1d_miss_penalty
        self.l2_penalty = cfg.l2_miss_penalty

    def reset(self):
        self.l1.reset()
        self.l2.reset()

    def access(self, addr):
        if self.l1.access(addr):
            return 0
        if self.l2.access(addr):
            return self.l1_penalty
        return self.l1_penalty + self.l2_penalty
