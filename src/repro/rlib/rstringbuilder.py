"""rstringbuilder: incremental string building (rbuilder.ll_append).

Template-engine benchmarks (spitfire, django, json_bench) are dominated
by these entry points in the paper's Table III.
"""

from repro.interp.aot import aot
from repro.isa import insns
from repro.rlib.costutil import charge_loop

_COPY_MIX = insns.mix(load=1, store=1, alu=1)


class StringBuilder(object):
    __slots__ = ("chunks", "length", "_addr")
    _size_ = 64

    def __init__(self):
        self.chunks = []
        self.length = 0


@aot("rbuilder.ll_append", "R", "any")
def ll_append(ctx, builder, text):
    charge_loop(ctx, max(1, len(text) // 4 + 1), _COPY_MIX)
    builder.chunks.append(text)
    builder.length += len(text)
    return None


@aot("rbuilder.ll_append_char", "R", "any")
def ll_append_char(ctx, builder, char):
    ctx.charge(insns.mix(store=1, alu=2, load=1))
    builder.chunks.append(char)
    builder.length += 1
    return None


@aot("rbuilder.ll_build", "R", "any")
def ll_build(ctx, builder):
    charge_loop(ctx, max(1, builder.length // 4 + 1), _COPY_MIX)
    result = "".join(builder.chunks)
    builder.chunks = [result]
    return result


@aot("rbuilder.ll_getlength", "R", "readonly")
def ll_getlength(ctx, builder):
    ctx.charge(insns.mix(load=1))
    return builder.length
