# spitfire_cstringio: template rendering into a string buffer — the big
# table-generation benchmark. Dominated by string building and joins
# (Table III: rstr.ll_join, rbuilder.ll_append, ll_int2dec).
N = 50


def render_table(rows, cols):
    out = []
    out.append("<table>")
    for i in range(rows):
        row = []
        row.append("<tr>")
        for j in range(cols):
            row.append("<td>")
            row.append(str(i * cols + j))
            row.append("</td>")
        row.append("</tr>")
        out.append("".join(row))
    out.append("</table>")
    return "\n".join(out)


def run_spitfire(iterations):
    checksum = 0
    for i in range(iterations):
        text = render_table(50, 10)
        checksum = (checksum + len(text)) % 1000000007
        checksum = (checksum * 31 + ord(text[i % len(text)])) % 1000000007
    print("spitfire", checksum)


run_spitfire(N)
