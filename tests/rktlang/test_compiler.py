"""TinyRkt compiler unit tests: bytecode shapes and rejection paths."""

import pytest

from repro.core.errors import CompilationError
from repro.pylang import bytecode as bc
from repro.rktlang.compiler import compile_rkt


def compile_fn(body, params="()"):
    """Compile a one-function module and return the function's PyCode."""
    code = compile_rkt("(define (f %s) %s)" % (params.strip("()"), body))
    for const in code.consts:
        if isinstance(const, bc.FunctionSpec):
            return const.code
    raise AssertionError("no function compiled")


def test_module_code_shape():
    code = compile_rkt("(display 1)")
    assert code.name == "<rkt-module>"
    assert code.argcount == 0
    assert code.ops[-1] == bc.RETURN_VALUE
    # Module ends by returning None.
    assert None in code.consts


def test_inline_binop_chain():
    code = compile_fn("(+ a b c)", params="(a b c)")
    # n-ary + folds left: two BINARY_ADDs, no CALL_FUNCTION.
    assert code.ops.count(bc.BINARY_ADD) == 2
    assert bc.CALL_FUNCTION not in code.ops


def test_unary_minus_and_reciprocal():
    neg = compile_fn("(- a)", params="(a)")
    assert bc.UNARY_NEG in neg.ops
    inv = compile_fn("(/ a)", params="(a)")
    assert bc.BINARY_TRUEDIV in inv.ops
    assert 1.0 in inv.consts


def test_unary_unsupported_inline_op_rejected():
    with pytest.raises(CompilationError):
        compile_fn("(modulo a)", params="(a)")


def test_generic_call_uses_call_function():
    code = compile_fn("(g a 1)", params="(a)")
    assert bc.CALL_FUNCTION in code.ops
    assert code.args[code.ops.index(bc.CALL_FUNCTION)] == 2


def test_define_function_closes_over_params():
    code = compile_fn("(+ x y)", params="(x y)")
    assert code.argcount == 2
    assert code.varnames[:2] == ["x", "y"]
    assert bc.LOAD_FAST in code.ops


def test_define_value_stores_global():
    code = compile_rkt("(define x 42)")
    assert bc.STORE_GLOBAL in code.ops
    assert 42 in code.consts


def test_let_binds_locals_inside_function():
    code = compile_fn("(let ((x 1) (y 2)) (+ x y))")
    assert bc.STORE_FAST in code.ops
    assert "x" in code.varnames and "y" in code.varnames


def test_let_at_module_level_rejected():
    with pytest.raises(CompilationError):
        compile_rkt("(let ((x 1)) x)")


def test_let_star_sequential_bindings():
    code = compile_fn("(let* ((x 1) (y (+ x 1))) y)")
    assert "x" in code.varnames and "y" in code.varnames


def test_named_let_compiles_to_backward_jump():
    code = compile_fn(
        "(let loop ((i 0) (acc 0))"
        " (if (< i n) (loop (+ i 1) (+ acc i)) acc))",
        params="(n)")
    jumps = [(i, code.args[i]) for i, op in enumerate(code.ops)
             if op == bc.JUMP]
    # The loop call jumps backwards to the header.
    assert any(target <= i for i, target in jumps), jumps


def test_named_let_non_tail_call_rejected():
    with pytest.raises(CompilationError):
        compile_fn(
            "(let loop ((i 0)) (+ 1 (loop (+ i 1))))")


def test_named_let_arity_mismatch_rejected():
    with pytest.raises(CompilationError):
        compile_fn("(let loop ((i 0)) (loop 1 2))")


def test_do_loop_shape():
    code = compile_fn(
        "(do ((i 0 (+ i 1)) (acc 0 (+ acc i))) ((= i n) acc))",
        params="(n)")
    assert bc.POP_JUMP_IF_TRUE in code.ops
    assert bc.JUMP in code.ops


def test_do_binding_without_step_keeps_value():
    code = compile_fn("(do ((i 0 (+ i 1)) (k 7)) ((= i 3) k))")
    assert bc.LOAD_FAST in code.ops


def test_cond_with_else():
    code = compile_fn(
        "(cond ((< a 0) 0) ((= a 0) 1) (else 2))", params="(a)")
    assert code.ops.count(bc.POP_JUMP_IF_FALSE) == 2


def test_cond_without_else_yields_none():
    code = compile_fn("(cond ((< a 0) 0))", params="(a)")
    assert None in code.consts


def test_when_unless():
    when = compile_fn("(when (< a 0) 1)", params="(a)")
    assert bc.POP_JUMP_IF_FALSE in when.ops
    unless = compile_fn("(unless (< a 0) 1)", params="(a)")
    assert bc.POP_JUMP_IF_TRUE in unless.ops


def test_and_or_short_circuit_ops():
    both = compile_fn("(and a b c)", params="(a b c)")
    assert both.ops.count(bc.JUMP_IF_FALSE_OR_POP) == 2
    either = compile_fn("(or a b)", params="(a b)")
    assert either.ops.count(bc.JUMP_IF_TRUE_OR_POP) == 1
    assert compile_fn("(and)").consts.count(True) == 1
    assert compile_fn("(or)").consts.count(False) == 1


def test_not_is_unary():
    code = compile_fn("(not a)", params="(a)")
    assert bc.UNARY_NOT in code.ops


def test_set_bang_stores_and_yields_none():
    code = compile_fn("(set! a 5)", params="(a)")
    assert bc.STORE_FAST in code.ops
    assert None in code.consts


def test_quote_forms():
    assert "sym" in compile_fn("'sym").consts  # symbols quote to strings
    assert None in compile_fn("'()").consts    # '() is nil
    assert 3 in compile_fn("'3").consts


def test_quote_nonempty_list_rejected():
    with pytest.raises(CompilationError):
        compile_fn("'(1 2 3)")


def test_empty_form_rejected():
    with pytest.raises(CompilationError):
        compile_rkt("()")


def test_string_and_char_literals_are_consts():
    code = compile_fn('(string-append2 "ab" #\\c)')
    assert "ab" in code.consts
    assert "c" in code.consts
