"""The telemetry bus: nested spans with per-span counter deltas.

A bus records a strictly-nested span tree per (pid, tid) track, driven
by a monotonic clock.  Two clock domains are used in practice:

* VM-run sessions tick in **simulated machine cycles** (deterministic,
  reproducible across runs — see :mod:`repro.telemetry.vmhook`);
* the harness-level bus ticks in wall-clock microseconds.

``ticks_per_us`` records the domain so exporters can place both on a
Chrome-trace timeline.  Spans store their *self time* online (duration
minus the summed durations of direct children), which makes the
per-phase self-time summary a pure aggregation over finished records.

Events are plain dicts, ready for lossless JSONL round-tripping.
"""

import time

from repro.telemetry.metrics import MetricsRegistry


def _wall_clock_us():
    return time.perf_counter() * 1e6


class _OpenSpan(object):
    __slots__ = ("name", "cat", "ts", "args", "child_ticks")

    def __init__(self, name, cat, ts, args):
        self.name = name
        self.cat = cat
        self.ts = ts
        self.args = args
        self.child_ticks = 0.0


class _SpanContext(object):
    """Context-manager handle returned by :meth:`TelemetryBus.span`."""

    __slots__ = ("_bus", "_name", "_cat", "_args")

    def __init__(self, bus, name, cat, args):
        self._bus = bus
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self):
        self._bus.begin(self._name, self._cat, self._args)
        return self._bus

    def __exit__(self, exc_type, exc, tb):
        self._bus.end(self._name)
        return False


class TelemetryBus(object):
    """One event stream: spans, instants, and a metrics registry."""

    def __init__(self, clock=None, ticks_per_us=1.0, pid=0, tid=0,
                 process_name=None):
        self.clock = clock if clock is not None else _wall_clock_us
        self.ticks_per_us = ticks_per_us
        self.pid = pid
        self.tid = tid
        self.process_name = process_name
        self.metrics = MetricsRegistry()
        self._stack = []
        self._events = []
        self._finished = False

    # -- spans ---------------------------------------------------------------

    @property
    def depth(self):
        return len(self._stack)

    def begin(self, name, cat="", args=None):
        """Open a nested span."""
        self._stack.append(
            _OpenSpan(name, cat, self.clock(), dict(args) if args else {}))

    def end(self, name=None, args=None):
        """Close the innermost span.

        If ``name`` is given and does not match the open span, the call
        is a tolerated no-op (mirrors the phase tracker's handling of
        unbalanced stop annotations from aborted runs).
        """
        if not self._stack:
            return None
        if name is not None and self._stack[-1].name != name:
            return None
        span = self._stack.pop()
        now = self.clock()
        duration = now - span.ts
        if self._stack:
            self._stack[-1].child_ticks += duration
        if args:
            span.args.update(args)
        record = {
            "type": "span",
            "name": span.name,
            "cat": span.cat,
            "ts": span.ts,
            "dur": duration,
            "self": duration - span.child_ticks,
            "depth": len(self._stack),
            "pid": self.pid,
            "tid": self.tid,
            "args": span.args,
        }
        self._events.append(record)
        return record

    def span(self, name, cat="", **args):
        """``with bus.span("minor", "gc.heap", n=3): ...``"""
        return _SpanContext(self, name, cat, args)

    def annotate(self, **args):
        """Merge key/value arguments into the innermost open span.

        Lets the layer that owns a span's content (e.g. the GC knows
        surviving bytes) enrich a span that was opened by the tag
        bridge, without threading span handles across layers.
        """
        if self._stack:
            self._stack[-1].args.update(args)

    def instant(self, name, cat="", args=None):
        self._events.append({
            "type": "instant",
            "name": name,
            "cat": cat,
            "ts": self.clock(),
            "pid": self.pid,
            "tid": self.tid,
            "args": dict(args) if args else {},
        })

    # -- metrics (delegates, so call sites hold one handle) ------------------

    def count(self, name, delta=1):
        self.metrics.count(name, delta)

    def gauge(self, name, value):
        self.metrics.gauge(name, value)

    def histogram(self, name, value):
        self.metrics.histogram(name, value)

    # -- lifecycle -----------------------------------------------------------

    def finish(self):
        """Close any open spans and flush metrics into the stream."""
        if self._finished:
            return
        while self._stack:
            self.end()
        self._events.append({
            "type": "metrics",
            "ts": self.clock(),
            "pid": self.pid,
            "tid": self.tid,
            "metrics": self.metrics.to_dict(),
        })
        self._finished = True

    def events(self):
        """The finished event records (plus a leading meta record)."""
        meta = {
            "type": "meta",
            "pid": self.pid,
            "tid": self.tid,
            "process_name": self.process_name,
            "ticks_per_us": self.ticks_per_us,
        }
        return [meta] + list(self._events)
