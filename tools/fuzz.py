#!/usr/bin/env python
"""Differential fuzzing CLI.

Runs N seeded iterations of the difftest campaign — generate a TinyPy
program, run it under every engine configuration, check agreement and
counter invariants, shrink any failure — and reports divergences.
Exit status is 0 when every iteration agrees, 1 otherwise.

    PYTHONPATH=src python tools/fuzz.py --iters 200 --seed 2017
    PYTHONPATH=src python tools/fuzz.py --iters 60 --seed 2017 -j 4
    PYTHONPATH=src python tools/fuzz.py --iters 20 --save-corpus

``--save-corpus`` writes each shrunken reproducer to
``tests/difftest/corpus/`` where tier-1 pytest replays it forever.
"""

import argparse
import os
import sys
import time

os.environ.setdefault("REPRO_STORE", "0")  # fuzzing wants real runs

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.difftest import GenConfig, run_campaign  # noqa: E402
from repro.difftest import corpus as corpus_mod  # noqa: E402


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="differential fuzzing of the simulated VM stack")
    parser.add_argument("--iters", type=int, default=100,
                        help="number of seeded iterations (default 100)")
    parser.add_argument("--seed", type=int, default=2017,
                        help="base seed; iteration i uses seed+i")
    parser.add_argument("-j", "--workers", type=int, default=1,
                        help="worker processes (default 1: serial)")
    parser.add_argument("--thresholds", type=str, default=None,
                        help="comma-separated hot-loop thresholds "
                             "(default 2,7,39)")
    parser.add_argument("--small", action="store_true",
                        help="use the small generator profile")
    parser.add_argument("--allow-errors", action="store_true",
                        help="let generated programs raise guest errors")
    parser.add_argument("--no-shrink", action="store_true",
                        help="report raw failures without shrinking")
    parser.add_argument("--save-corpus", action="store_true",
                        help="write shrunken reproducers to the corpus")
    parser.add_argument("--quiet", action="store_true",
                        help="only print the final summary")
    args = parser.parse_args(argv)

    thresholds = None
    if args.thresholds:
        thresholds = tuple(
            int(t) for t in args.thresholds.split(",") if t)
    profile = GenConfig.small if args.small else GenConfig
    gen_config = profile(allow_errors=args.allow_errors)

    start = time.time()
    done = [0]

    def progress(seed, status):
        done[0] += 1
        if args.quiet:
            return
        if status != "ok":
            print("  seed %d: %s" % (seed, status.upper()))
        if done[0] % 25 == 0:
            print("  ... %d/%d iterations (%.1fs)"
                  % (done[0], args.iters, time.time() - start))

    result = run_campaign(
        args.iters, args.seed, gen_config=gen_config,
        thresholds=thresholds, workers=args.workers,
        shrink_failures=not args.no_shrink, progress=progress)

    elapsed = time.time() - start
    print("%d iterations in %.1fs: %d ok, %d inconclusive, "
          "%d divergent"
          % (result.iterations,
             elapsed,
             result.iterations - result.inconclusive
             - len(result.findings),
             result.inconclusive, len(result.findings)))
    for finding in result.findings:
        print("=" * 60)
        print("seed %d: %s between %s"
              % (finding.seed, ",".join(finding.kinds),
                 "/".join(finding.engines)))
        for detail in finding.details:
            print("  " + detail)
        print("-" * 60)
        print(finding.shrunk.rstrip("\n"))
        if args.save_corpus:
            entry = corpus_mod.CorpusEntry(
                "seed%d" % finding.seed, finding.shrunk,
                {"seed": str(finding.seed),
                 "kinds": ",".join(finding.kinds),
                 "engines": "/".join(finding.engines)})
            path = corpus_mod.write_entry(entry)
            print("-> wrote %s" % os.path.relpath(path))
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
