"""The checked-in corpus of shrunken reproducers.

Every divergence the fuzzer ever finds becomes a permanent regression
test: the shrunken program is written to ``tests/difftest/corpus/`` with
a metadata header and replayed through the oracle by
``tests/difftest/test_corpus.py`` on every tier-1 run.

Corpus files are plain TinyPy sources with ``# difftest:`` header
comments::

    # difftest: seed=1234
    # difftest: kinds=output
    # difftest: engines=cpref/jit@2
    # difftest: xfail=known divergence in X, see ISSUE-n
    x = 1
    print(x)

``xfail`` marks reproducers whose fix is out of scope — the replay test
then asserts the divergence is STILL there (so a silent behavior change
is noticed) instead of asserting agreement.  Files use the ``.tinypy``
extension so pytest never mistakes one for a test module.
"""

import os
import re

#: Repo-relative default corpus directory, resolved from this file.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))))
DEFAULT_CORPUS_DIR = os.path.join(_REPO_ROOT, "tests", "difftest", "corpus")

_HEADER_RE = re.compile(r"^#\s*difftest:\s*(\w+)=(.*)$")


class CorpusEntry(object):
    """One reproducer: its program text plus header metadata."""

    def __init__(self, name, source, meta):
        self.name = name
        self.source = source
        self.meta = dict(meta)

    @property
    def seed(self):
        value = self.meta.get("seed")
        return int(value) if value is not None else None

    @property
    def kinds(self):
        value = self.meta.get("kinds", "")
        return tuple(k for k in value.split(",") if k)

    @property
    def engines(self):
        value = self.meta.get("engines", "")
        return tuple(e for e in value.split("/") if e)

    @property
    def xfail(self):
        return "xfail" in self.meta

    @property
    def xfail_reason(self):
        return self.meta.get("xfail", "")

    def __repr__(self):
        flag = " xfail" if self.xfail else ""
        return "<CorpusEntry %s%s>" % (self.name, flag)


def parse_entry(name, text):
    """Split a corpus file into metadata header and program source."""
    meta = {}
    body = []
    in_header = True
    for line in text.splitlines():
        match = _HEADER_RE.match(line) if in_header else None
        if match:
            meta[match.group(1)] = match.group(2).strip()
        else:
            if line.strip():
                in_header = False
            if not in_header and not body and not line.strip():
                continue
            body.append(line)
    return CorpusEntry(name, "\n".join(body).rstrip("\n") + "\n", meta)


def format_entry(entry):
    lines = []
    for key in sorted(entry.meta):
        lines.append("# difftest: %s=%s" % (key, entry.meta[key]))
    lines.append("")
    lines.append(entry.source.rstrip("\n"))
    return "\n".join(lines) + "\n"


def load_corpus(directory=None):
    """Read every reproducer in the corpus directory, sorted by name."""
    directory = directory or DEFAULT_CORPUS_DIR
    entries = []
    if not os.path.isdir(directory):
        return entries
    for filename in sorted(os.listdir(directory)):
        if not filename.endswith(".tinypy"):
            continue
        path = os.path.join(directory, filename)
        with open(path, "r") as handle:
            text = handle.read()
        entries.append(parse_entry(filename[:-len(".tinypy")], text))
    return entries


def write_entry(entry, directory=None):
    """Write one reproducer; returns the path written."""
    directory = directory or DEFAULT_CORPUS_DIR
    if not os.path.isdir(directory):
        os.makedirs(directory)
    path = os.path.join(directory, entry.name + ".tinypy")
    with open(path, "w") as handle:
        handle.write(format_entry(entry))
    return path


def entry_from_report(name, report, seed=None, xfail=None):
    """Build a CorpusEntry out of an oracle report's divergences."""
    kinds = sorted({d.kind for d in report.divergences})
    engines = sorted({e for d in report.divergences for e in d.engines})
    meta = {"kinds": ",".join(kinds), "engines": "/".join(engines)}
    if seed is not None:
        meta["seed"] = str(seed)
    if xfail:
        meta["xfail"] = xfail
    return CorpusEntry(name, report.source, meta)
