# binarytrees (CLBG): allocate and walk perfect binary trees.
# GC-dominated in the paper's Figure 4.
N = 8


class Node:
    def __init__(self, left, right):
        self.left = left
        self.right = right


def make_tree(depth):
    if depth == 0:
        return Node(None, None)
    return Node(make_tree(depth - 1), make_tree(depth - 1))


def check_tree(node):
    if node.left is None:
        return 1
    return 1 + check_tree(node.left) + check_tree(node.right)


def run_binarytrees(max_depth):
    min_depth = 4
    if max_depth < min_depth + 2:
        max_depth = min_depth + 2
    stretch_depth = max_depth + 1
    print("stretch tree of depth %d check: %d"
          % (stretch_depth, check_tree(make_tree(stretch_depth))))
    long_lived = make_tree(max_depth)
    depth = min_depth
    while depth <= max_depth:
        iterations = 1 << (max_depth - depth + min_depth)
        check = 0
        for i in range(iterations):
            check += check_tree(make_tree(depth))
        print("%d trees of depth %d check: %d" % (iterations, depth, check))
        depth += 2
    print("long lived tree of depth %d check: %d"
          % (max_depth, check_tree(long_lived)))


run_binarytrees(N)
