import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import SystemConfig
from repro.core.errors import GuestError
from repro.interp.context import VMContext
from repro.rlib import cmath, rlist, rstr
from repro.rlib.rstringbuilder import (
    StringBuilder,
    ll_append,
    ll_append_char,
    ll_build,
    ll_getlength,
)


@pytest.fixture
def ctx():
    return VMContext(SystemConfig())


# -- rstr -----------------------------------------------------------------------


def test_join(ctx):
    assert rstr.ll_join.fn(ctx, ", ", ["a", "b", "c"]) == "a, b, c"
    assert rstr.ll_join.fn(ctx, "", []) == ""


def test_find_char(ctx):
    assert rstr.ll_find_char.fn(ctx, "hello", "l", 0) == 2
    assert rstr.ll_find_char.fn(ctx, "hello", "l", 3) == 3
    assert rstr.ll_find_char.fn(ctx, "hello", "z", 0) == -1


def test_find(ctx):
    assert rstr.ll_find.fn(ctx, "hello world", "world", 0) == 6
    assert rstr.ll_find.fn(ctx, "hello", "xyz", 0) == -1


def test_strhash_deterministic(ctx):
    h1 = rstr.ll_strhash.fn(ctx, "spam")
    h2 = rstr.ll_strhash.fn(ctx, "spam")
    h3 = rstr.ll_strhash.fn(ctx, "spam!")
    assert h1 == h2
    assert h1 != h3


def test_replace_split_strip(ctx):
    assert rstr.ll_replace.fn(ctx, "a-b-c", "-", "+") == "a+b+c"
    assert rstr.ll_split.fn(ctx, "a b  c", None) == ["a", "b", "c"]
    assert rstr.ll_split.fn(ctx, "a,b", ",") == ["a", "b"]
    assert rstr.ll_strip.fn(ctx, "  hi  ") == "hi"


def test_case_and_predicates(ctx):
    assert rstr.ll_lower.fn(ctx, "AbC") == "abc"
    assert rstr.ll_upper.fn(ctx, "AbC") == "ABC"
    assert rstr.ll_startswith.fn(ctx, "hello", "he")
    assert rstr.ll_endswith.fn(ctx, "hello", "lo")
    assert rstr.ll_contains.fn(ctx, "hello", "ell")


def test_slice_and_mul(ctx):
    assert rstr.ll_slice.fn(ctx, "hello", 1, 3) == "el"
    assert rstr.ll_slice.fn(ctx, "hello", 3, 99) == "lo"
    assert rstr.ll_mul.fn(ctx, "ab", 3) == "ababab"


def test_int2dec_and_float2str(ctx):
    assert rstr.ll_int2dec.fn(ctx, -123) == "-123"
    assert rstr.ll_float2str.fn(ctx, 0.5) == "0.5"


@given(st.integers(-10**15, 10**15))
@settings(max_examples=80, deadline=None)
def test_string_to_int_roundtrip(value):
    ctx = VMContext(SystemConfig())
    assert rstr.string_to_int.fn(ctx, str(value)) == value


def test_string_to_int_rejects_garbage(ctx):
    with pytest.raises(GuestError):
        rstr.string_to_int.fn(ctx, "12x")
    with pytest.raises(GuestError):
        rstr.string_to_int.fn(ctx, "")


def test_string_to_float(ctx):
    assert rstr.string_to_float.fn(ctx, "2.5") == 2.5
    with pytest.raises(GuestError):
        rstr.string_to_float.fn(ctx, "nope")


def test_translate(ctx):
    table = {"a": "t", "t": "a"}
    assert rstr.descr_translate.fn(ctx, "atg", table) == "tag"


def test_encode_ascii(ctx):
    assert rstr.unicode_encode_ascii.fn(ctx, "hi") == b"hi"


# -- rlist -----------------------------------------------------------------------


def test_append_and_pop(ctx):
    items = []
    for i in range(10):
        rlist.ll_append.fn(ctx, items, i)
    assert items == list(range(10))
    assert rlist.ll_pop.fn(ctx, items, 0) == 0
    assert rlist.ll_pop.fn(ctx, items, len(items) - 1) == 9


def test_insert_extend_reverse(ctx):
    items = [1, 3]
    rlist.ll_insert.fn(ctx, items, 1, 2)
    rlist.ll_extend.fn(ctx, items, [4, 5])
    rlist.ll_reverse.fn(ctx, items)
    assert items == [5, 4, 3, 2, 1]


def test_slices(ctx):
    items = list(range(10))
    rlist.ll_setslice.fn(ctx, items, 2, 5, [99])
    assert items == [0, 1, 99, 5, 6, 7, 8, 9]
    assert rlist.ll_getslice.fn(ctx, items, 1, 3) == [1, 99]


def test_find_contains_count(ctx):
    eq = lambda a, b: a == b  # noqa: E731
    items = [5, 7, 5]
    assert rlist.ll_find.fn(ctx, items, 7, eq) == 1
    assert rlist.ll_find.fn(ctx, items, 8, eq) == -1
    assert rlist.ll_contains.fn(ctx, items, 5, eq)
    assert rlist.ll_count.fn(ctx, items, 5, eq) == 2


def test_list_mul(ctx):
    assert rlist.ll_mul.fn(ctx, [0], 3) == [0, 0, 0]


@given(st.lists(st.integers(-100, 100), max_size=60))
@settings(max_examples=100, deadline=None)
def test_sort_matches_sorted(values):
    ctx = VMContext(SystemConfig())
    items = list(values)
    rlist.ll_sort.fn(ctx, items, lambda a, b: a < b)
    assert items == sorted(values)


def test_sort_is_stable(ctx):
    items = [(1, "a"), (0, "b"), (1, "c"), (0, "d")]
    rlist.ll_sort.fn(ctx, items, lambda a, b: a[0] < b[0])
    assert items == [(0, "b"), (0, "d"), (1, "a"), (1, "c")]


# -- string builder ---------------------------------------------------------------


def test_builder(ctx):
    builder = StringBuilder()
    ll_append.fn(ctx, builder, "hello")
    ll_append_char.fn(ctx, builder, " ")
    ll_append.fn(ctx, builder, "world")
    assert ll_getlength.fn(ctx, builder) == 11
    assert ll_build.fn(ctx, builder) == "hello world"
    # Building twice is fine.
    assert ll_build.fn(ctx, builder) == "hello world"


# -- C math ------------------------------------------------------------------------


def test_cmath(ctx):
    assert cmath.c_pow.fn(ctx, 2.0, 10.0) == 1024.0
    assert cmath.c_sqrt.fn(ctx, 9.0) == 3.0
    assert abs(cmath.c_sin.fn(ctx, 0.0)) == 0.0
    assert cmath.c_cos.fn(ctx, 0.0) == 1.0
    assert cmath.c_exp.fn(ctx, 0.0) == 1.0
    assert cmath.c_log.fn(ctx, 1.0) == 0.0
    buffer_out = [0] * 4
    cmath.c_memcpy.fn(ctx, buffer_out, [1, 2, 3, 4], 3)
    assert buffer_out == [1, 2, 3, 0]


def test_pow_is_expensive(ctx):
    before = ctx.machine.cycles
    cmath.c_pow.fn(ctx, 2.0, 0.5)
    pow_cost = ctx.machine.cycles - before
    before = ctx.machine.cycles
    cmath.c_sqrt.fn(ctx, 2.0)
    sqrt_cost = ctx.machine.cycles - before
    assert pow_cost > sqrt_cost * 3
