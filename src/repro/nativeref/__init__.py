"""Statically-compiled (C/C++) reference kernels."""
