"""Seeded random TinyPy program generator.

Emits well-formed TinyPy source (the subset ``pylang.compiler``
accepts) from a :class:`random.Random` stream, so the same seed always
yields the same program.  Generated programs are closed — every name is
defined before use, every loop is bounded, every division/shift operand
is guarded — so a well-behaved engine runs them to completion; with
``allow_errors`` the generator may additionally plant one possibly
erroring operation (division by a value that can be zero) to exercise
the guest-error paths.

The generator tracks a type environment (int/float/str/bool/list/dict
variables, plus int-returning functions) and builds expressions bottom-up
per type, so programs type-check by construction while still covering
arithmetic (including bigint spills), string building, list/dict
traffic, nested control flow, and function calls.  A configurable "hot
loop" wraps part of the program body so the meta-tracing JIT compiles
traces even at high hot-loop thresholds.
"""

import random

#: Constant pool for dict keys / string literals (kept short so string
#: costs stay bounded and repr output stays readable in reproducers).
_STR_POOL = ("a", "bc", "def", "gh", "xyz", "q", "longer", "0k")
_DICT_KEYS = ("k0", "k1", "k2", "k3")

_INT_VARS = "int"
_FLOAT_VARS = "float"
_STR_VARS = "str"
_BOOL_VARS = "bool"
_LIST_VARS = "list"
_DICT_VARS = "dict"

_AUG_OPS = ("+=", "-=", "*=", "|=", "^=", "&=")
_INT_BINOPS = ("+", "-", "*", "&", "|", "^")
_CMP_OPS = ("<", "<=", "==", "!=", ">", ">=")


class GenConfig(object):
    """Size and feature knobs for :class:`ProgramGenerator`."""

    def __init__(self,
                 max_toplevel_stmts=12,
                 max_block_stmts=5,
                 max_depth=3,
                 max_expr_depth=3,
                 max_loop_iters=12,
                 hot_loop_iters=60,
                 n_functions=2,
                 big_ints=True,
                 floats=True,
                 strings=True,
                 lists=True,
                 dicts=True,
                 functions=True,
                 classes=True,
                 allow_errors=False):
        self.max_toplevel_stmts = max_toplevel_stmts
        self.max_block_stmts = max_block_stmts
        self.max_depth = max_depth
        self.max_expr_depth = max_expr_depth
        self.max_loop_iters = max_loop_iters
        self.hot_loop_iters = hot_loop_iters
        self.n_functions = n_functions
        self.big_ints = big_ints
        self.floats = floats
        self.strings = strings
        self.lists = lists
        self.dicts = dicts
        self.functions = functions
        self.classes = classes
        self.allow_errors = allow_errors

    def as_kwargs(self):
        """Constructor kwargs for this config (picklable, for workers)."""
        return {
            "max_toplevel_stmts": self.max_toplevel_stmts,
            "max_block_stmts": self.max_block_stmts,
            "max_depth": self.max_depth,
            "max_expr_depth": self.max_expr_depth,
            "max_loop_iters": self.max_loop_iters,
            "hot_loop_iters": self.hot_loop_iters,
            "n_functions": self.n_functions,
            "big_ints": self.big_ints,
            "floats": self.floats,
            "strings": self.strings,
            "lists": self.lists,
            "dicts": self.dicts,
            "functions": self.functions,
            "classes": self.classes,
            "allow_errors": self.allow_errors,
        }

    @classmethod
    def small(cls, **kwargs):
        """A profile that keeps programs tiny (fast property tests)."""
        defaults = dict(max_toplevel_stmts=6, max_block_stmts=3,
                        max_depth=2, max_expr_depth=2, max_loop_iters=8,
                        hot_loop_iters=24, n_functions=1, classes=False)
        defaults.update(kwargs)
        return cls(**defaults)


class _Scope(object):
    """Names visible at one nesting level, by type tag."""

    def __init__(self):
        self.vars = {
            _INT_VARS: [], _FLOAT_VARS: [], _STR_VARS: [],
            _BOOL_VARS: [], _LIST_VARS: [], _DICT_VARS: [],
        }

    def pick(self, rng, kind):
        names = self.vars[kind]
        return rng.choice(names) if names else None

    def add(self, kind, name):
        if name not in self.vars[kind]:
            self.vars[kind].append(name)


class ProgramGenerator(object):
    """One deterministic program per (seed, config)."""

    def __init__(self, seed, config=None):
        self.seed = seed
        self.config = config or GenConfig()
        self.rng = random.Random(seed)
        self.lines = []
        self.indent = 0
        self.scope = _Scope()
        self.functions = []       # (name, n_params) int-valued functions
        self.classes = []         # class names with .step(int) -> int
        self.counter = 0
        self.loop_depth = 0
        # Names that statements must not rebind or grow while a loop
        # depends on them: while-loop counters (rebinding one can make
        # the loop unbounded) and lists currently being iterated
        # (appending would grow the iteration itself).
        self.protected = set()

    # -- emission helpers ---------------------------------------------------

    def emit(self, text):
        self.lines.append("    " * self.indent + text)

    def fresh(self, prefix="v"):
        self.counter += 1
        return "%s%d" % (prefix, self.counter)

    # -- expressions --------------------------------------------------------

    def int_expr(self, depth=0):
        rng = self.rng
        cfg = self.config
        choices = ["lit", "lit"]
        if self.scope.vars[_INT_VARS]:
            choices += ["var", "var", "var"]
        if depth < cfg.max_expr_depth:
            choices += ["bin", "bin", "neg", "shift", "divmod"]
            if cfg.big_ints:
                choices.append("biglit")
            if self.scope.vars[_LIST_VARS]:
                choices += ["len", "sum", "index"]
            if self.scope.vars[_STR_VARS]:
                choices.append("strlen")
            if self.scope.vars[_DICT_VARS]:
                choices.append("dget")
            if self.functions:
                choices.append("call")
            if self.scope.vars[_BOOL_VARS]:
                choices.append("boolint")
            if cfg.floats and self.scope.vars[_FLOAT_VARS]:
                choices.append("trunc")
        kind = rng.choice(choices)
        if kind == "lit":
            return str(rng.randint(-50, 50))
        if kind == "biglit":
            # Large constants overflow int64 once multiplied; some are
            # born big (> 2**63) to hit the bigint constant path.
            magnitude = rng.choice((32, 40, 64, 70))
            value = rng.getrandbits(magnitude) + 3
            return str(value if rng.random() < 0.8 else -value)
        if kind == "var":
            return self.scope.pick(rng, _INT_VARS)
        if kind == "neg":
            return "(-%s)" % self.int_expr(depth + 1)
        if kind == "bin":
            op = rng.choice(_INT_BINOPS)
            return "(%s %s %s)" % (self.int_expr(depth + 1), op,
                                   self.int_expr(depth + 1))
        if kind == "shift":
            op = rng.choice(("<<", ">>"))
            return "(%s %s (%s %% 17))" % (
                self.int_expr(depth + 1), op,
                "abs(%s)" % self.int_expr(depth + 1))
        if kind == "divmod":
            op = rng.choice(("//", "%"))
            # Denominator x % K + 1 is always in 1..K (Python mod with a
            # positive rhs is non-negative), so never zero.
            return "(%s %s (%s %% %d + 1))" % (
                self.int_expr(depth + 1), op, self.int_expr(depth + 1),
                rng.randint(2, 19))
        if kind == "len":
            return "len(%s)" % self.scope.pick(rng, _LIST_VARS)
        if kind == "sum":
            return "sum(%s)" % self.scope.pick(rng, _LIST_VARS)
        if kind == "index":
            name = self.scope.pick(rng, _LIST_VARS)
            return "%s[%s %% len(%s)]" % (name, self.int_expr(depth + 1),
                                          name)
        if kind == "strlen":
            return "len(%s)" % self.scope.pick(rng, _STR_VARS)
        if kind == "dget":
            name = self.scope.pick(rng, _DICT_VARS)
            return "%s.get(%r, %d)" % (name, rng.choice(_DICT_KEYS),
                                       rng.randint(-9, 9))
        if kind == "call":
            name, n_params = rng.choice(self.functions)
            args = ", ".join(self.int_expr(depth + 1)
                             for _ in range(n_params))
            return "%s(%s)" % (name, args)
        if kind == "boolint":
            return "int(%s)" % self.scope.pick(rng, _BOOL_VARS)
        if kind == "trunc":
            return "int(%s)" % self.scope.pick(rng, _FLOAT_VARS)
        raise AssertionError(kind)

    def float_expr(self, depth=0):
        rng = self.rng
        choices = ["lit", "lit"]
        if self.scope.vars[_FLOAT_VARS]:
            choices += ["var", "var"]
        if depth < self.config.max_expr_depth:
            choices += ["bin", "div", "cast", "neg"]
        kind = rng.choice(choices)
        if kind == "lit":
            return repr(round(rng.uniform(-40.0, 40.0), 3))
        if kind == "var":
            return self.scope.pick(rng, _FLOAT_VARS)
        if kind == "neg":
            return "(-%s)" % self.float_expr(depth + 1)
        if kind == "bin":
            op = rng.choice(("+", "-", "*"))
            return "(%s %s %s)" % (self.float_expr(depth + 1), op,
                                   self.float_expr(depth + 1))
        if kind == "div":
            return "(%s / (abs(%s) + 0.5))" % (self.float_expr(depth + 1),
                                               self.float_expr(depth + 1))
        if kind == "cast":
            return "float(%s %% 1000)" % self.int_expr(depth + 1)
        raise AssertionError(kind)

    def str_expr(self, depth=0):
        rng = self.rng
        choices = ["lit", "lit"]
        if self.scope.vars[_STR_VARS]:
            choices += ["var", "var"]
        if depth < self.config.max_expr_depth:
            choices += ["concat", "repeat", "method", "ofint"]
        kind = rng.choice(choices)
        if kind == "lit":
            return repr(rng.choice(_STR_POOL))
        if kind == "var":
            return self.scope.pick(rng, _STR_VARS)
        if kind == "concat":
            return "(%s + %s)" % (self.str_expr(depth + 1),
                                  self.str_expr(depth + 1))
        if kind == "repeat":
            return "(%s * %d)" % (self.str_expr(depth + 1),
                                  rng.randint(0, 3))
        if kind == "method":
            method = rng.choice(("upper()", "lower()", "strip()",
                                 "replace('a', 'o')"))
            return "%s.%s" % (self.str_expr(depth + 1), method)
        if kind == "ofint":
            return "str(%s)" % self.int_expr(depth + 1)
        raise AssertionError(kind)

    def bool_expr(self, depth=0):
        rng = self.rng
        choices = ["cmp", "cmp"]
        if self.scope.vars[_BOOL_VARS]:
            choices.append("var")
        if depth < 2:
            choices += ["and", "or", "not"]
        if self.scope.vars[_LIST_VARS]:
            choices.append("inlist")
        if self.config.dicts and self.scope.vars[_DICT_VARS]:
            choices.append("indict")
        kind = rng.choice(choices)
        if kind == "var":
            return self.scope.pick(rng, _BOOL_VARS)
        if kind == "cmp":
            op = rng.choice(_CMP_OPS)
            if self.config.strings and self.scope.vars[_STR_VARS] and \
                    rng.random() < 0.25:
                return "(%s %s %s)" % (self.str_expr(depth + 1), op,
                                       self.str_expr(depth + 1))
            return "(%s %s %s)" % (self.int_expr(depth + 1), op,
                                   self.int_expr(depth + 1))
        if kind == "and":
            return "(%s and %s)" % (self.bool_expr(depth + 1),
                                    self.bool_expr(depth + 1))
        if kind == "or":
            return "(%s or %s)" % (self.bool_expr(depth + 1),
                                   self.bool_expr(depth + 1))
        if kind == "not":
            return "(not %s)" % self.bool_expr(depth + 1)
        if kind == "inlist":
            return "(%s in %s)" % (self.int_expr(depth + 1),
                                   self.scope.pick(rng, _LIST_VARS))
        if kind == "indict":
            return "(%r in %s)" % (rng.choice(_DICT_KEYS),
                                   self.scope.pick(rng, _DICT_VARS))
        raise AssertionError(kind)

    # -- statements ---------------------------------------------------------

    def statement(self, depth):
        rng = self.rng
        cfg = self.config
        choices = ["int_assign", "int_assign", "aug", "print"]
        if cfg.floats:
            choices.append("float_assign")
        if cfg.strings:
            choices.append("str_assign")
        choices.append("bool_assign")
        if cfg.lists:
            choices += ["list_new", "list_op"]
        if cfg.dicts:
            choices += ["dict_new", "dict_op"]
        if depth < cfg.max_depth:
            choices += ["if", "for_range", "for_list", "while"]
        getattr(self, "_stmt_" + rng.choice(choices))(depth)

    def _stmt_int_assign(self, depth):
        rng = self.rng
        existing = self.scope.pick(rng, _INT_VARS)
        if existing in self.protected:
            existing = None
        name = existing if existing and rng.random() < 0.5 \
            else self.fresh("i")
        self.emit("%s = %s" % (name, self.int_expr()))
        self.scope.add(_INT_VARS, name)

    def _stmt_float_assign(self, depth):
        rng = self.rng
        existing = self.scope.pick(rng, _FLOAT_VARS)
        name = existing if existing and rng.random() < 0.5 \
            else self.fresh("f")
        self.emit("%s = %s" % (name, self.float_expr()))
        self.scope.add(_FLOAT_VARS, name)

    def _stmt_str_assign(self, depth):
        rng = self.rng
        existing = self.scope.pick(rng, _STR_VARS)
        name = existing if existing and rng.random() < 0.5 \
            else self.fresh("s")
        self.emit("%s = %s" % (name, self.str_expr()))
        self.scope.add(_STR_VARS, name)

    def _stmt_bool_assign(self, depth):
        name = self.fresh("b")
        self.emit("%s = %s" % (name, self.bool_expr()))
        self.scope.add(_BOOL_VARS, name)

    def _stmt_aug(self, depth):
        rng = self.rng
        name = self.scope.pick(rng, _INT_VARS)
        if name is None or name in self.protected:
            return self._stmt_int_assign(depth)
        self.emit("%s %s %s" % (name, rng.choice(_AUG_OPS),
                                self.int_expr()))

    def _stmt_list_new(self, depth):
        rng = self.rng
        name = self.fresh("L")
        items = [self.int_expr() for _ in range(rng.randint(1, 5))]
        if rng.random() < 0.3:
            self.emit("%s = [%s for _c in range(%d)]"
                      % (name, self.int_expr(), rng.randint(1, 6)))
        else:
            self.emit("%s = [%s]" % (name, ", ".join(items)))
        self.scope.add(_LIST_VARS, name)

    def _stmt_list_op(self, depth):
        rng = self.rng
        name = self.scope.pick(rng, _LIST_VARS)
        if name is None:
            return self._stmt_list_new(depth)
        kinds = ("append", "setitem", "sort", "reverse")
        if name in self.protected:
            kinds = ("setitem", "sort", "reverse")
        kind = rng.choice(kinds)
        if kind == "append":
            # Length-capped: appends sit inside nested loops, and an
            # unbounded list makes every later sum()/iteration
            # quadratic, blowing the oracle's instruction budget.
            self.emit("if len(%s) < 24:" % name)
            self.indent += 1
            self.emit("%s.append(%s)" % (name, self.int_expr()))
            self.indent -= 1
        elif kind == "setitem":
            self.emit("%s[%s %% len(%s)] = %s"
                      % (name, self.int_expr(), name, self.int_expr()))
        elif kind == "sort":
            self.emit("%s.sort()" % name)
        else:
            self.emit("%s.reverse()" % name)

    def _stmt_dict_new(self, depth):
        rng = self.rng
        name = self.fresh("D")
        keys = list(_DICT_KEYS)
        rng.shuffle(keys)
        pairs = ", ".join("%r: %s" % (k, self.int_expr())
                          for k in keys[:rng.randint(1, len(keys))])
        self.emit("%s = {%s}" % (name, pairs))
        self.scope.add(_DICT_VARS, name)

    def _stmt_dict_op(self, depth):
        rng = self.rng
        name = self.scope.pick(rng, _DICT_VARS)
        if name is None:
            return self._stmt_dict_new(depth)
        key = rng.choice(_DICT_KEYS)
        if rng.random() < 0.7:
            self.emit("%s[%r] = %s" % (name, key, self.int_expr()))
        else:
            self.emit("%s[%r] = %s.get(%r, 0) + %s"
                      % (name, key, name, key, self.int_expr()))

    def _stmt_print(self, depth):
        rng = self.rng
        kinds = [(_INT_VARS, "%s"), (_BOOL_VARS, "%s")]
        if self.config.strings:
            kinds.append((_STR_VARS, "%s"))
        if self.config.floats:
            kinds.append((_FLOAT_VARS, "%s"))
        if self.config.lists:
            kinds.append((_LIST_VARS, "len(%s)"))
        rng.shuffle(kinds)
        for kind, template in kinds:
            name = self.scope.pick(rng, kind)
            if name is not None:
                self.emit("print(%s)" % (template % name))
                return
        self.emit("print(%s)" % self.int_expr())

    def _block(self, depth, min_stmts=1):
        self.indent += 1
        for _ in range(self.rng.randint(min_stmts,
                                        self.config.max_block_stmts)):
            self.statement(depth)
        self.indent -= 1

    def _snapshot(self):
        return {kind: list(names)
                for kind, names in self.scope.vars.items()}

    def _restore(self, snapshot):
        # Names first defined inside a conditional body may be unbound
        # at runtime if the branch wasn't taken; hide them again.
        self.scope.vars = snapshot

    def _stmt_if(self, depth):
        saved = self._snapshot()
        self.emit("if %s:" % self.bool_expr())
        self._block(depth + 1)
        self._restore({k: list(v) for k, v in saved.items()})
        if self.rng.random() < 0.5:
            self.emit("else:")
            self._block(depth + 1)
            self._restore(saved)

    def _stmt_for_range(self, depth):
        name = self.fresh("i")
        self.emit("for %s in range(%d):"
                  % (name, self.rng.randint(1, self.config.max_loop_iters)))
        self.scope.add(_INT_VARS, name)
        self.loop_depth += 1
        self._block(depth + 1)
        self.loop_depth -= 1

    def _stmt_for_list(self, depth):
        rng = self.rng
        lst = self.scope.pick(rng, _LIST_VARS)
        if lst is None:
            return self._stmt_for_range(depth)
        name = self.fresh("e")
        self.emit("for %s in %s:" % (name, lst))
        self.scope.add(_INT_VARS, name)
        self.loop_depth += 1
        was_protected = lst in self.protected
        self.protected.add(lst)
        self._block(depth + 1)
        if not was_protected:
            self.protected.discard(lst)
        # `break` only from a loop over a list: the iterator is popped
        # by the compiler's break handling, exercising that path.
        if rng.random() < 0.3:
            self.indent += 1
            self.emit("if %s:" % self.bool_expr())
            self.indent += 1
            self.emit("break")
            self.indent -= 2
        self.loop_depth -= 1

    def _stmt_while(self, depth):
        name = self.fresh("w")
        limit = self.rng.randint(2, self.config.max_loop_iters)
        self.emit("%s = 0" % name)
        self.scope.add(_INT_VARS, name)
        self.emit("while %s < %d:" % (name, limit))
        self.loop_depth += 1
        self.indent += 1
        self.emit("%s = %s + 1" % (name, name))
        self.protected.add(name)
        for _ in range(self.rng.randint(0, self.config.max_block_stmts - 1)):
            self.statement(depth + 1)
        self.protected.discard(name)
        if self.rng.random() < 0.25:
            self.emit("if %s > %d:" % (name, limit // 2))
            self.indent += 1
            self.emit("continue")
            self.indent -= 1
        self.indent -= 1
        self.loop_depth -= 1

    # -- functions and classes ----------------------------------------------

    def _gen_function(self):
        rng = self.rng
        name = self.fresh("fn")
        n_params = rng.randint(1, 3)
        params = ["p%d" % i for i in range(n_params)]
        # Optionally give the last parameter a constant default.
        header = ", ".join(params)
        if rng.random() < 0.4:
            header = ", ".join(params[:-1] + ["%s=%d" % (
                params[-1], rng.randint(-5, 5))])
            n_params -= 1  # callers may omit the defaulted arg
        self.emit("def %s(%s):" % (name, header))
        outer = self.scope
        self.scope = _Scope()
        for p in params:
            self.scope.add(_INT_VARS, p)
        self.indent += 1
        for _ in range(rng.randint(1, 3)):
            self.statement(self.config.max_depth - 1)
        self.emit("return %s" % self.int_expr())
        self.indent -= 1
        self.scope = outer
        self.functions.append((name, n_params))

    def _gen_class(self):
        rng = self.rng
        name = "C%d" % (self.counter + 1)
        self.counter += 1
        factor = rng.randint(2, 9)
        offset = rng.randint(-20, 20)
        self.emit("class %s:" % name)
        self.indent += 1
        self.emit("def __init__(self, x):")
        self.indent += 1
        self.emit("self.x = x")
        self.emit("self.n = 0")
        self.indent -= 1
        self.emit("def step(self, d):")
        self.indent += 1
        self.emit("self.n = self.n + 1")
        self.emit("self.x = self.x * %d + d + %d" % (factor, offset))
        self.emit("return self.x")
        self.indent -= 1
        self.indent -= 1
        self.classes.append(name)

    def _use_class(self):
        rng = self.rng
        cls = rng.choice(self.classes)
        obj = self.fresh("o")
        acc = self.fresh("i")
        self.emit("%s = %s(%s)" % (obj, cls, self.int_expr()))
        self.emit("%s = 0" % acc)
        self.scope.add(_INT_VARS, acc)
        loop = self.fresh("i")
        self.emit("for %s in range(%d):"
                  % (loop, rng.randint(3, self.config.max_loop_iters)))
        self.indent += 1
        self.emit("%s = %s %% 9973 + %s.step(%s)"
                  % (acc, acc, obj, loop))
        self.indent -= 1
        self.emit("print(%s.n, %s %% 100003)" % (obj, acc))

    # -- program assembly ---------------------------------------------------

    def generate(self):
        """Return the program source text for this generator's seed."""
        rng = self.rng
        cfg = self.config
        if cfg.functions:
            for _ in range(rng.randint(0, cfg.n_functions)):
                self._gen_function()
        if cfg.classes and rng.random() < 0.6:
            self._gen_class()
        # Seed a couple of variables so early expressions have material.
        self.emit("x0 = %d" % rng.randint(-40, 40))
        self.scope.add(_INT_VARS, "x0")
        for _ in range(rng.randint(2, cfg.max_toplevel_stmts)):
            self.statement(0)
        self._hot_loop()
        if cfg.classes and self.classes and rng.random() < 0.7:
            self._use_class()
        if cfg.allow_errors and rng.random() < 0.5:
            # One possibly-raising statement: the divisor can be zero.
            self.emit("print(%s // (%s %% 3))"
                      % (self.int_expr(), self.int_expr()))
        self._epilogue()
        return "\n".join(self.lines) + "\n"

    def _hot_loop(self):
        """A loop hot enough to trigger tracing at every threshold."""
        rng = self.rng
        acc = self.fresh("h")
        self.emit("%s = 1" % acc)
        self.scope.add(_INT_VARS, acc)
        name = self.fresh("i")
        self.emit("for %s in range(%d):"
                  % (name, self.config.hot_loop_iters))
        self.scope.add(_INT_VARS, name)
        self.loop_depth += 1
        self.indent += 1
        self.emit("%s = (%s * 3 + %s) %% 1000003"
                  % (acc, acc, name))
        for _ in range(rng.randint(0, 2)):
            self.statement(self.config.max_depth - 1)
        # A data-dependent branch inside the hot loop forces guard
        # failures and (often) bridge compilation.
        self.emit("if %s & 1:" % name)
        self.indent += 1
        self.emit("%s = %s + %s" % (acc, acc, self.int_expr(1)))
        self.indent -= 1
        self.indent -= 1
        self.loop_depth -= 1
        self.emit("print(%s)" % acc)

    def _epilogue(self):
        """Print every live variable: the program's checksum."""
        for kind in (_INT_VARS, _BOOL_VARS, _STR_VARS, _FLOAT_VARS):
            for name in self.scope.vars[kind]:
                self.emit("print(%s)" % name)
        for name in self.scope.vars[_LIST_VARS]:
            self.emit("print(len(%s), sum(%s))" % (name, name))
        for name in self.scope.vars[_DICT_VARS]:
            self.emit("print(len(%s))" % name)


def generate_program(seed, config=None):
    """Convenience: the program text for one seed."""
    return ProgramGenerator(seed, config).generate()
