"""The trace optimizer.

Implements (each independently switchable for the ablation benches):

* constant folding of pure ops (promotion guards constify downstream),
* guard strengthening/deduplication (known-class and known-value facts),
* heap caching (getfield/setfield and array item forwarding),
* CSE over pure operations,
* virtuals / partial escape analysis: allocations whose objects do not
  escape are removed; their fields are forwarded; guards' resume
  snapshots reference :class:`VirtualSpec` so deoptimization can
  rematerialize the objects — this is what makes boxing disappear from
  hot loops (and what the paper credits for reduced GC pressure in the
  JIT phase),
* loop peeling (RPython's unroll): the first iteration becomes a
  preamble and the loop body is re-optimized with virtual loop-carried
  state, so accumulator boxes stay unboxed across iterations.

The optimizer is a forward pass over the recorded operations with a
value map (recorded value -> optimized value); loops run the pass twice
(preamble + peeled body) when virtual state crosses the back edge.
"""

from repro.jit import ir
from repro.jit.resume import VirtualSpec
from repro.jit.semantics import EVAL, FOLDABLE
from repro.jit.trace import InputArg


class VInfo(object):
    """Optimization facts about one optimized value."""

    __slots__ = ("const", "known_class", "virtual_cls", "virtual_fields",
                 "virtual_size")

    def __init__(self):
        self.const = None
        self.known_class = None
        self.virtual_cls = None
        self.virtual_fields = None  # dict descr -> optimized value
        self.virtual_size = 0

    @property
    def is_virtual(self):
        return self.virtual_cls is not None


class _Bail(Exception):
    """Internal: peeling failed; fall back to the non-peeled form."""


class OptPass(object):
    """One forward optimization pass over recorded operations."""

    def __init__(self, cfg):
        self.cfg = cfg
        self.out = []
        self.map = {}
        self.infos = {}
        self.cse = {}
        self.heap = {}       # (obj_value, descr) -> value
        self.array = {}      # (arr_value, index_key) -> value

    # -- infrastructure -----------------------------------------------------------

    def info(self, value):
        info = self.infos.get(value)
        if info is None:
            info = VInfo()
            self.infos[value] = info
        return info

    def resolve(self, value):
        if isinstance(value, ir.Const):
            return value
        mapped = self.map[value]
        if not isinstance(mapped, ir.Const):
            info = self.infos.get(mapped)
            if info is not None and info.const is not None:
                return info.const
        return mapped

    def emit(self, op):
        self.out.append(op)
        return op

    def _emit_new(self, opnum, args, descr):
        return self.emit(ir.IROp(opnum, args, descr))

    def _argkey(self, values):
        return tuple(
            ("c", v.value) if isinstance(v, ir.Const) else ("v", id(v))
            for v in values
        )

    # -- virtuals --------------------------------------------------------------------

    def make_virtual(self, recorded_op, cls):
        placeholder = ir.IROp(ir.NEW_WITH_VTABLE, [ir.Const(cls)], cls)
        info = self.info(placeholder)
        info.virtual_cls = cls
        info.virtual_fields = {}
        info.known_class = cls
        self.map[recorded_op] = placeholder
        return placeholder

    def force(self, value):
        """Materialize a virtual at its escape point."""
        if isinstance(value, ir.Const):
            return value
        info = self.infos.get(value)
        if info is None or not info.is_virtual:
            return value
        fields = info.virtual_fields
        info.virtual_cls = None
        info.virtual_fields = None
        self.emit(value)  # the deferred new_with_vtable
        for descr in sorted(fields, key=lambda d: d.offset):
            field_value = self.force(fields[descr])
            self._emit_new(ir.SETFIELD_GC, [value, field_value], descr)
            self.heap[(value, descr)] = field_value
        return value

    # -- resume snapshots ----------------------------------------------------------------

    def map_snapshot(self, snapshot):
        memo = {}

        def resume_value(value):
            resolved = self.resolve(value)
            return self._spec_of(resolved, memo)

        return snapshot.map_values(resume_value)

    def _spec_of(self, resolved, memo):
        if isinstance(resolved, ir.Const):
            return resolved
        info = self.infos.get(resolved)
        if info is None or not info.is_virtual:
            return resolved
        spec = memo.get(resolved)
        if spec is not None:
            return spec
        spec = VirtualSpec(info.virtual_cls, {}, info.virtual_size)
        memo[resolved] = spec
        for descr, field_value in info.virtual_fields.items():
            field_resolved = field_value
            if not isinstance(field_resolved, ir.Const):
                field_info = self.infos.get(field_resolved)
                if field_info is not None and field_info.const is not None:
                    field_resolved = field_info.const
            spec.fields[descr] = self._spec_of(field_resolved, memo)
        return spec

    # -- the pass ---------------------------------------------------------------------------

    def run(self, recorded_ops):
        for op in recorded_ops:
            self._handle(op)

    def _handle(self, op):
        opnum = op.opnum
        if opnum == ir.DEBUG_MERGE_POINT:
            new_op = self._emit_new(ir.DEBUG_MERGE_POINT, [], op.descr)
            new_op.snapshot = self.map_snapshot(op.snapshot)
            self._last_snapshot = new_op.snapshot
            return
        if opnum in ir.GUARDS:
            self._handle_guard(op)
            return
        if opnum == ir.NEW_WITH_VTABLE:
            cls = op.args[0].value
            if self.cfg.opt_virtuals:
                self.make_virtual(op, cls)
            else:
                new_op = self._emit_new(
                    ir.NEW_WITH_VTABLE, [ir.Const(cls)], cls
                )
                self.info(new_op).known_class = cls
                self.map[op] = new_op
            return
        if opnum == ir.SETFIELD_GC:
            self._handle_setfield(op)
            return
        if opnum in (ir.GETFIELD_GC, ir.GETFIELD_GC_PURE):
            self._handle_getfield(op)
            return
        if opnum == ir.NEW_ARRAY:
            args = [self.resolve(a) for a in op.args]
            self.map[op] = self._emit_new(ir.NEW_ARRAY, args, op.descr)
            return
        if opnum == ir.SETARRAYITEM_GC:
            self._handle_setarrayitem(op)
            return
        if opnum == ir.GETARRAYITEM_GC:
            self._handle_getarrayitem(op)
            return
        if opnum == ir.ARRAYLEN_GC:
            self._handle_pure(op)
            return
        if opnum in (ir.CALL, ir.CALL_PURE):
            self._handle_call(op)
            return
        if opnum == ir.CALL_ASSEMBLER:
            args = [self.force(self.resolve(a)) for a in op.args]
            self.map[op] = self._emit_new(ir.CALL_ASSEMBLER, args, op.descr)
            self._invalidate_heap()
            return
        if opnum in (ir.PTR_EQ, ir.PTR_NE):
            self._handle_ptr_cmp(op)
            return
        # Everything else: pure arithmetic/str/float ops.
        self._handle_pure(op)

    # -- op families ----------------------------------------------------------------------------

    def _handle_pure(self, op):
        args = [self.resolve(a) for a in op.args]
        opnum = op.opnum
        if (self.cfg.opt_constfold and opnum in FOLDABLE
                and all(isinstance(a, ir.Const) for a in args)):
            result = EVAL[opnum]( *[a.value for a in args])
            self.map[op] = ir.Const(result)
            return
        if self.cfg.opt_cse and opnum in ir.PURE_OPS:
            key = (opnum, self._argkey(args), op.descr)
            existing = self.cse.get(key)
            if existing is not None:
                self.map[op] = existing
                return
            new_op = self._emit_new(opnum, args, op.descr)
            self.cse[key] = new_op
            self.map[op] = new_op
            return
        self.map[op] = self._emit_new(opnum, args, op.descr)

    def _handle_ptr_cmp(self, op):
        a = self.resolve(op.args[0])
        b = self.resolve(op.args[1])
        a_virtual = self._is_virtual(a)
        b_virtual = self._is_virtual(b)
        if a_virtual or b_virtual:
            # A virtual is a fresh allocation: identity is decidable.
            same = a is b
            result = same if op.opnum == ir.PTR_EQ else not same
            self.map[op] = ir.Const(result)
            return
        self._handle_pure(op)

    def _is_virtual(self, value):
        info = self.infos.get(value)
        return info is not None and info.is_virtual

    def _handle_guard(self, op):
        opnum = op.opnum
        args = [self.resolve(a) for a in op.args]
        value = args[0]
        info = None if isinstance(value, ir.Const) else self.info(value)
        if opnum == ir.GUARD_CLASS:
            cls = args[1].value
            if isinstance(value, ir.Const):
                return  # class of a constant is statically known
            if info.is_virtual:
                # The class of a removed allocation is statically known
                # (this is semantics, not deduplication: emitting the
                # guard would reference the removed op).
                assert info.virtual_cls is cls
                return
            if self.cfg.opt_guard_dedup and info.known_class is cls:
                return
            self._emit_guard(op, [value, ir.Const(cls)])
            info.known_class = cls
            return
        if opnum == ir.GUARD_VALUE:
            expected = args[1]
            if isinstance(value, ir.Const):
                return
            value = self.force(value)
            self._emit_guard(op, [value, expected])
            info.const = expected
            return
        if opnum in (ir.GUARD_TRUE, ir.GUARD_FALSE):
            if isinstance(value, ir.Const):
                return
            if self.cfg.opt_guard_dedup:
                key = (opnum, id(value))
                if key in self.cse:
                    return
                self.cse[key] = True
            self._emit_guard(op, [value])
            expected = op.opnum == ir.GUARD_TRUE
            info.const = ir.Const(expected)
            return
        if opnum in (ir.GUARD_NONNULL, ir.GUARD_ISNULL):
            if isinstance(value, ir.Const):
                return
            if self._is_virtual(value):
                return  # virtuals are never null
            if self.cfg.opt_guard_dedup:
                key = (opnum, id(value))
                if key in self.cse:
                    return
                self.cse[key] = True
            self._emit_guard(op, [value])
            return
        if opnum in (ir.GUARD_NO_OVERFLOW, ir.GUARD_OVERFLOW):
            if isinstance(value, ir.Const):
                return  # the checked op was folded: no overflow possible
            self._emit_guard(op, [value])
            return
        raise AssertionError("unhandled guard %s" % op.name)

    def _emit_guard(self, recorded, args):
        new_op = self._emit_new(recorded.opnum, args, recorded.descr)
        snapshot = recorded.snapshot
        if snapshot is not None:
            new_op.snapshot = self.map_snapshot(snapshot)
        return new_op

    def _handle_setfield(self, op):
        obj = self.resolve(op.args[0])
        value = self.resolve(op.args[1])
        descr = op.descr
        info = self.infos.get(obj)
        if info is not None and info.is_virtual:
            info.virtual_fields[descr] = value
            self.map[op] = value
            return
        value = self.force(value)
        self._emit_new(ir.SETFIELD_GC, [obj, value], descr)
        if self.cfg.opt_heap_cache:
            # Invalidate possibly-aliasing cached reads of this field.
            stale = [k for k in self.heap if k[1] is descr]
            for key in stale:
                del self.heap[key]
            self.heap[(obj, descr)] = value

    def _handle_getfield(self, op):
        obj = self.resolve(op.args[0])
        descr = op.descr
        info = self.infos.get(obj)
        if info is not None and info.is_virtual:
            self.map[op] = info.virtual_fields[descr]
            return
        if descr.immutable and isinstance(obj, ir.Const):
            self.map[op] = ir.Const(getattr(obj.value, descr.field))
            return
        if self.cfg.opt_heap_cache:
            cached = self.heap.get((obj, descr))
            if cached is not None:
                self.map[op] = cached
                return
        if descr.immutable and self.cfg.opt_cse:
            key = (ir.GETFIELD_GC_PURE, self._argkey([obj]), descr)
            existing = self.cse.get(key)
            if existing is not None:
                self.map[op] = existing
                return
            new_op = self._emit_new(ir.GETFIELD_GC_PURE, [obj], descr)
            self.cse[key] = new_op
            self.map[op] = new_op
            return
        new_op = self._emit_new(op.opnum, [obj], descr)
        self.map[op] = new_op
        if self.cfg.opt_heap_cache:
            self.heap[(obj, descr)] = new_op

    def _index_key(self, value):
        if isinstance(value, ir.Const):
            return ("c", value.value)
        return ("v", id(value))

    def _handle_setarrayitem(self, op):
        arr = self.resolve(op.args[0])
        index = self.resolve(op.args[1])
        value = self.force(self.resolve(op.args[2]))
        self._emit_new(ir.SETARRAYITEM_GC, [arr, index, value], op.descr)
        if self.cfg.opt_heap_cache:
            self.array.clear()  # conservative aliasing
            self.array[(arr, self._index_key(index))] = value

    def _handle_getarrayitem(self, op):
        arr = self.resolve(op.args[0])
        index = self.resolve(op.args[1])
        if self.cfg.opt_heap_cache:
            cached = self.array.get((arr, self._index_key(index)))
            if cached is not None:
                self.map[op] = cached
                return
        new_op = self._emit_new(
            ir.GETARRAYITEM_GC, [arr, index], op.descr
        )
        self.map[op] = new_op
        if self.cfg.opt_heap_cache:
            self.array[(arr, self._index_key(index))] = new_op

    def _handle_call(self, op):
        args = [self.force(self.resolve(a)) for a in op.args]
        func = op.descr.func
        if op.opnum == ir.CALL_PURE and self.cfg.opt_cse:
            key = (ir.CALL_PURE, self._argkey(args), func)
            existing = self.cse.get(key)
            if existing is not None:
                self.map[op] = existing
                return
            new_op = self._emit_new(ir.CALL_PURE, args, op.descr)
            self.cse[key] = new_op
            self.map[op] = new_op
            return
        new_op = self._emit_new(op.opnum, args, op.descr)
        self.map[op] = new_op
        if func.invalidates_heap:
            self._invalidate_heap()

    def _invalidate_heap(self):
        self.heap.clear()
        self.array.clear()


# -- loop construction -------------------------------------------------------------


def _virtual_state(pass_, values):
    """Describe each jump value: ('v', cls, descrs) or ('p', known_class)."""
    state = []
    for value in values:
        info = None if isinstance(value, ir.Const) else pass_.infos.get(value)
        if info is not None and info.is_virtual:
            descrs = tuple(
                sorted(info.virtual_fields, key=lambda d: d.offset)
            )
            state.append(("v", info.virtual_cls, descrs))
        else:
            known = info.known_class if info is not None else None
            state.append(("p", known))
    return state


def _flatten(pass_, values, state):
    """Expand jump values according to a virtual-state spec."""
    flat = []
    for value, slot in zip(values, state):
        if slot[0] == "v":
            info = pass_.infos[value]
            for descr in slot[2]:
                field = info.virtual_fields[descr]
                if not isinstance(field, ir.Const):
                    field_info = pass_.infos.get(field)
                    if field_info is not None and field_info.const is not None:
                        field = field_info.const
                flat.append(pass_.force(field))
        else:
            flat.append(pass_.force(value))
    return flat


def optimize_trace(cfg, trace, recorded_ops, jump, target, telemetry=None):
    """Optimize recorded ops into ``trace.ops`` (with label/jump wiring)."""
    strategy = "straight"
    if target is not None:
        _optimize_straight(cfg, trace, recorded_ops, jump, target)
    else:
        strategy = "simple_loop"
        if cfg.opt_loop_peeling and cfg.opt_virtuals:
            try:
                _optimize_peeled(cfg, trace, recorded_ops, jump)
                strategy = "peeled"
            except _Bail:
                _optimize_simple_loop(cfg, trace, recorded_ops, jump)
        else:
            _optimize_simple_loop(cfg, trace, recorded_ops, jump)
    if telemetry is not None:
        telemetry.count("jit.optimizer.ops_in", len(recorded_ops))
        telemetry.count("jit.optimizer.ops_out", len(trace.ops))
        telemetry.count("jit.optimizer.%s" % strategy)
        telemetry.annotate(strategy=strategy, ops_in=len(recorded_ops),
                           ops_out=len(trace.ops))


def _seed_pass(cfg, inputargs):
    pass_ = OptPass(cfg)
    for arg in inputargs:
        pass_.map[arg] = arg
    return pass_


def _optimize_straight(cfg, trace, recorded_ops, jump, target):
    """A bridge (or loop-to-loop) trace: no back edge of its own."""
    pass_ = _seed_pass(cfg, trace.inputargs)
    pass_.run(recorded_ops)
    args = [pass_.force(pass_.resolve(a)) for a in jump.args]
    out_jump = ir.IROp(ir.JUMP, args, target)
    trace.ops = pass_.out + [out_jump]
    trace.label_index = -1


def _optimize_simple_loop(cfg, trace, recorded_ops, jump):
    """Self-loop without peeling: all loop-carried state is forced."""
    pass_ = _seed_pass(cfg, trace.inputargs)
    label = ir.IROp(ir.LABEL, list(trace.inputargs), None)
    pass_.run(recorded_ops)
    args = [pass_.force(pass_.resolve(a)) for a in jump.args]
    out_jump = ir.IROp(ir.JUMP, args, label)
    trace.ops = [label] + pass_.out + [out_jump]
    trace.label_index = 0


def _optimize_peeled(cfg, trace, recorded_ops, jump):
    """RPython-style loop peeling: preamble + re-optimized loop body."""
    preamble = _seed_pass(cfg, trace.inputargs)
    preamble.run(recorded_ops)
    jump_values = [preamble.resolve(a) for a in jump.args]
    state = _virtual_state(preamble, jump_values)
    if not any(slot[0] == "v" for slot in state):
        raise _Bail  # nothing virtual crosses the back edge
    # Build the peeled label: one InputArg per flattened slot.
    label_args = []
    body = OptPass(cfg)
    for recorded_arg, slot in zip(
            _recorded_inputargs(trace), state):
        if slot[0] == "v":
            _, cls, descrs = slot
            placeholder = body.make_virtual(_FreshKey(), cls)
            # make_virtual mapped a fresh key; rebind to the recorded arg.
            body.map[recorded_arg] = placeholder
            info = body.infos[placeholder]
            for descr in descrs:
                field_arg = InputArg()
                label_args.append(field_arg)
                info.virtual_fields[descr] = field_arg
        else:
            arg = InputArg()
            label_args.append(arg)
            body.map[recorded_arg] = arg
            if slot[1] is not None:
                body.info(arg).known_class = slot[1]
    label = ir.IROp(ir.LABEL, label_args, None)
    body.run(recorded_ops)
    body_jump_values = [body.resolve(a) for a in jump.args]
    body_state = _virtual_state(body, body_jump_values)
    if not _states_compatible(state, body_state):
        raise _Bail
    preamble_args = _flatten(preamble, jump_values, state)
    body_args = _flatten(body, body_jump_values, state)
    entry_jump = ir.IROp(ir.JUMP, preamble_args, label)
    back_jump = ir.IROp(ir.JUMP, body_args, label)
    trace.ops = preamble.out + [entry_jump, label] + body.out + [back_jump]
    trace.label_index = len(preamble.out) + 1


class _FreshKey(object):
    """Placeholder key for seeding virtuals in the peeled body."""


def _recorded_inputargs(trace):
    return trace.inputargs


def _states_compatible(entry_state, body_state):
    for entry, body in zip(entry_state, body_state):
        if entry[0] == "v":
            if body[0] != "v" or entry[1] is not body[1]:
                return False
            if entry[2] != body[2]:
                return False
        else:
            if body[0] == "v":
                # A plain entry slot receiving a virtual: it will simply
                # be forced by _flatten; that is compatible.
                continue
            if entry[1] is not None and body[1] is not entry[1]:
                return False
    return True
