"""CpRef-specific unit tests (cost model mechanics, errors)."""

import pytest

from repro.core.config import SystemConfig
from repro.core.errors import GuestError
from repro.pylang.cpref import CpRef


def run(source, vm_cls=CpRef):
    vm = vm_cls(SystemConfig())
    vm.run_source(source)
    return vm


def test_mix_scale_carries_fractions():
    class Scaled(CpRef):
        mix_scale = 0.5

    full = run("x = 0\nfor i in range(1000):\n    x += i\nprint(x)")
    half = run("x = 0\nfor i in range(1000):\n    x += i\nprint(x)",
               vm_cls=Scaled)
    assert half.stdout() == full.stdout()
    ratio = half.machine.instructions / full.machine.instructions
    assert 0.4 < ratio < 0.85  # dispatch/annots are unscaled


def test_bignum_mul_charges_quadratically():
    linear = run("a = 2 ** 900\nb = a + a\nprint(b > 0)")
    quadratic = run("a = 2 ** 900\nb = a * a\nprint(b > 0)")
    assert (quadratic.machine.instructions
            > linear.machine.instructions + 500)


def test_guest_errors():
    with pytest.raises(GuestError):
        run("x = 1 // 0")
    with pytest.raises(GuestError):
        run("print(undefined_name)")
    with pytest.raises(GuestError):
        run("d = {}\nprint(d['missing'])")
    with pytest.raises(GuestError):
        run("x = 'a' + 1")


def test_attribute_errors():
    with pytest.raises(GuestError):
        run("class A:\n    pass\na = A()\nprint(a.missing)")
    with pytest.raises(GuestError):
        run("x = 5\nx.y = 1")


def test_builtin_methods_dispatch():
    vm = run('''
xs = [3, 1]
xs.sort()
d = {"k": [1]}
d["k"].append(2)
print(xs, d["k"], "A".lower(), max(2, 9))
''')
    assert vm.stdout() == "[1, 3] [1, 2] a 9\n"


def test_isinstance_classes():
    vm = run('''
class A:
    pass
class B(A):
    pass
b = B()
print(isinstance(b, A), isinstance(b, B), isinstance(5, A))
''')
    assert vm.stdout() == "True True False\n"


def test_stdout_empty():
    vm = run("x = 1")
    assert vm.stdout() == ""
