"""TinyPy object model (the RPython-interpreter side).

Mirrors PyPy's object-space design in miniature:

* immutable boxed primitives (``W_Int``, ``W_Float``, ``W_Str``) with
  ``_immutable_fields_`` so trace loads fold/CSE,
* automatic overflow to ``W_BigInt`` (rbigint-backed),
* lists with *strategies* (int-specialized vs. generic object storage),
* map-based instances (PyPy's mapdict): attribute names live in shared
  :class:`Shape` objects; instances carry a flat slots array, so traced
  attribute access is promote(shape) + constant-index array load,
* version-tagged classes and module dicts (PyPy's celldict), making
  method/global lookup an elidable call that constant-folds in traces.
"""

from repro.interp.objects import W_Root


class W_None(W_Root):
    _size_ = 16

    def __repr__(self):
        return "w_None"


w_None = W_None()


class W_Int(W_Root):
    _immutable_fields_ = ("intval",)
    _size_ = 16

    def __init__(self, intval):
        self.intval = intval

    def __repr__(self):
        return "W_Int(%d)" % self.intval


class W_Bool(W_Int):
    _size_ = 16


w_True = W_Bool(1)
w_False = W_Bool(0)


def wrap_bool(flag):
    return w_True if flag else w_False


class W_BigInt(W_Root):
    """Arbitrary-precision integer backed by rlib.rbigint."""

    _immutable_fields_ = ("bigval",)
    _size_ = 32

    def __init__(self, bigval):
        self.bigval = bigval  # a rlib.rbigint.BigInt

    def __repr__(self):
        return "W_BigInt(%r)" % self.bigval


class W_Float(W_Root):
    _immutable_fields_ = ("floatval",)
    _size_ = 16

    def __init__(self, floatval):
        self.floatval = floatval

    def __repr__(self):
        return "W_Float(%r)" % self.floatval


class W_Str(W_Root):
    _immutable_fields_ = ("strval",)
    _size_ = 24

    def __init__(self, strval):
        self.strval = strval

    def __repr__(self):
        return "W_Str(%r)" % self.strval


# -- lists with strategies ---------------------------------------------------------

STRATEGY_EMPTY = "empty"
STRATEGY_INT = "int"       # storage holds raw machine ints
STRATEGY_OBJECT = "object"  # storage holds W_ references


class W_List(W_Root):
    _size_ = 32

    def __init__(self, strategy, storage):
        self.strategy = strategy
        self.storage = storage  # LLArray; .items is the resizable payload

    def __repr__(self):
        return "W_List(%s, n=%d)" % (self.strategy, len(self.storage.items))


class W_Tuple(W_Root):
    _immutable_fields_ = ("items",)
    _size_ = 32

    def __init__(self, items):
        self.items = items  # LLArray of W_ values (fixed)


class W_Dict(W_Root):
    _size_ = 32

    def __init__(self, rdict):
        self.rdict = rdict  # RDict keyed by raw str/int or W_ identity


class W_Set(W_Root):
    _size_ = 32

    def __init__(self, rdict):
        self.rdict = rdict  # keys only; values are w_None


class W_Slice(W_Root):
    _immutable_fields_ = ("w_start", "w_stop", "w_step")
    _size_ = 32

    def __init__(self, w_start, w_stop, w_step):
        self.w_start = w_start
        self.w_stop = w_stop
        self.w_step = w_step


# -- functions, classes, instances ----------------------------------------------------


class W_Function(W_Root):
    _immutable_fields_ = ("code", "module", "defaults")
    _size_ = 48

    def __init__(self, code, module, defaults):
        self.code = code
        self.module = module
        self.defaults = defaults  # list of W_ values (tail-aligned)

    def __repr__(self):
        return "W_Function(%s)" % self.code.name


class W_Builtin(W_Root):
    _immutable_fields_ = ("name", "fn")
    _size_ = 32

    def __init__(self, name, fn):
        self.name = name
        self.fn = fn  # fn(interp, args_w) -> w_result

    def __repr__(self):
        return "W_Builtin(%s)" % self.name


class W_BoundMethod(W_Root):
    """A method bound to its receiver (virtualized away in traces)."""

    _immutable_fields_ = ("w_self", "w_func")
    _size_ = 24

    def __init__(self, w_self, w_func):
        self.w_self = w_self
        self.w_func = w_func


class VersionTag(object):
    """Identity token; replaced whenever a versioned dict mutates."""

    __slots__ = ()


class W_Class(W_Root):
    _size_ = 96

    def __init__(self, name, w_base):
        self.name = name
        self.w_base = w_base
        # VM-internal method table (PyPy: a specialized version-tagged
        # dict); lookups are elidable under a promoted version tag, so a
        # plain host dict carries the mechanics while costs are charged
        # explicitly at the call sites.
        self.methods = {}  # raw str -> W_ value
        self.version = VersionTag()
        self.shape = Shape(self)  # root shape for instances

    def __repr__(self):
        return "W_Class(%s)" % self.name


class Shape(object):
    """A mapdict shape: attribute name -> slot index, with transitions."""

    __slots__ = ("w_class", "slots", "transitions")

    def __init__(self, w_class, slots=()):
        self.w_class = w_class
        self.slots = slots  # tuple of attribute names in slot order
        self.transitions = {}

    def lookup(self, name):
        """Slot index for name, or -1 (elidable: shapes are immutable)."""
        try:
            return self.slots.index(name)
        except ValueError:
            return -1

    def transition(self, name):
        new_shape = self.transitions.get(name)
        if new_shape is None:
            new_shape = Shape(self.w_class, self.slots + (name,))
            self.transitions[name] = new_shape
        return new_shape

    def __repr__(self):
        return "<Shape %s %r>" % (self.w_class.name, self.slots)


class W_Instance(W_Root):
    _size_ = 40

    def __init__(self, shape, slots):
        self.shape = shape
        self.slots = slots  # LLArray of W_ values, parallel to shape.slots

    def __repr__(self):
        return "W_Instance(%s)" % self.shape.w_class.name


class Cell(W_Root):
    """A module-dict cell (PyPy's celldict): holds one global's value."""

    _size_ = 16

    def __init__(self, w_value):
        self.w_value = w_value


class W_Module(W_Root):
    _size_ = 64

    def __init__(self, name):
        self.name = name
        # Celldict: name -> Cell (a VM-internal versioned table).
        self.cells = {}
        self.version = VersionTag()

    def __repr__(self):
        return "W_Module(%s)" % self.name


# -- iterators --------------------------------------------------------------------------


class W_ListIter(W_Root):
    _size_ = 24

    def __init__(self, w_list):
        self.w_list = w_list
        self.index = 0


class W_TupleIter(W_Root):
    _size_ = 24

    def __init__(self, w_tuple):
        self.w_tuple = w_tuple
        self.index = 0


class W_StrIter(W_Root):
    _size_ = 24

    def __init__(self, w_str):
        self.w_str = w_str
        self.index = 0


class W_Range(W_Root):
    _immutable_fields_ = ("start", "stop", "step")
    _size_ = 32

    def __init__(self, start, stop, step):
        self.start = start
        self.stop = stop
        self.step = step


class W_RangeIter(W_Root):
    _size_ = 32

    def __init__(self, current, stop, step):
        self.current = current
        self.stop = stop
        self.step = step


class W_DictIter(W_Root):
    """Iterates a snapshot of keys (or items) of a dict."""

    _size_ = 32

    def __init__(self, items, mode):
        self.items = items  # raw list of (key, w_value)
        self.index = 0
        self.mode = mode  # "keys" | "values" | "items"
