"""The experiment runner: one entry point for every VM configuration.

Runs a benchmark program on one of the seven VM configurations the paper
compares and returns a :class:`RunResult` with every measurement the
tables/figures need (times, counters, phase windows, warmup timelines,
AOT-call profiles, JIT-IR statistics).  Results are cached in-process so
one simulation feeds all the tables and figures that share it, like the
paper's single instrumented runs.
"""

from repro.benchprogs import registry
from repro.core.config import SystemConfig
from repro.interp.context import VMContext
from repro.jit import executor, jitlog
from repro.nativeref.kernels import run_native
from repro.pintool.tool import PinTool
from repro.pylang.cpref import CpRef
from repro.pylang.interp import PyVM
from repro.rktlang.vm import RacketRef, RktVM
from repro.uarch.machine import SimulationLimitReached

# Simulated clock frequency used to report "seconds" (a 3.2 GHz part).
CLOCK_HZ = 3.2e9

VM_KINDS = ("cpython", "pypy_nojit", "pypy", "racket", "pycket_nojit",
            "pycket", "native")

_JIT_VMS = {"pypy": PyVM, "pypy_nojit": PyVM,
            "pycket": RktVM, "pycket_nojit": RktVM}
_REF_VMS = {"cpython": CpRef, "racket": RacketRef}


class RunResult(object):
    """Everything measured from one simulated benchmark run."""

    def __init__(self, program, vm_kind, n):
        self.program = program
        self.vm_kind = vm_kind
        self.n = n
        self.output = ""
        self.cycles = 0.0
        self.instructions = 0
        self.ipc = 0.0
        self.mpki = 0.0
        self.truncated = False
        self.phase_windows = None
        self.phase_breakdown = None
        self.timeline_segments = None
        self.bytecodes = 0
        self.bc_timeline = None
        self.aot_rows = []
        self.registry = None
        self.jitlog_obj = None
        self.gc_stats = None

    @property
    def seconds(self):
        return self.cycles / CLOCK_HZ

    @property
    def bytecodes_per_insn(self):
        if not self.instructions:
            return 0.0
        return self.bytecodes / self.instructions

    def __repr__(self):
        return "<RunResult %s/%s t=%.4fs>" % (
            self.program, self.vm_kind, self.seconds)


_CACHE = {}


def clear_cache():
    _CACHE.clear()


def _base_config(max_instructions, jit_enabled, overrides):
    config = SystemConfig()
    config.max_instructions = max_instructions
    config.jit.enabled = jit_enabled
    if overrides:
        for key, value in overrides.items():
            if hasattr(config.jit, key):
                setattr(config.jit, key, value)
            elif hasattr(config.uarch, key):
                setattr(config.uarch, key, value)
            elif hasattr(config.gc, key):
                setattr(config.gc, key, value)
            else:
                raise KeyError(key)
    return config


def run_program(program, vm_kind, n=None, timeline=False,
                max_instructions=0, jit_overrides=None,
                predictor="gshare", use_cache=True):
    """Run ``program`` (a BenchProgram or name) on one VM configuration."""
    if isinstance(program, str):
        try:
            program = registry.py_program(program)
        except KeyError:
            program = registry.rkt_program(program)
    if n is None:
        n = program.default_n
    overrides_key = tuple(sorted((jit_overrides or {}).items()))
    key = (program.language, program.name, vm_kind, n, timeline,
           max_instructions, overrides_key, predictor)
    if use_cache and key in _CACHE:
        return _CACHE[key]

    source = program.source(n=n)
    result = RunResult(program.name, vm_kind, n)

    if vm_kind == "native":
        config = _base_config(max_instructions, False, jit_overrides)
        try:
            native = run_native(program.name, n, config,
                                predictor=predictor)
        except SimulationLimitReached:
            result.truncated = True
            raise
        result.output = native.stdout()
        _fill_machine(result, native.machine)
    elif vm_kind in _REF_VMS:
        config = _base_config(max_instructions, False, jit_overrides)
        vm = _REF_VMS[vm_kind](config, predictor=predictor)
        tool = PinTool(vm.machine, record_timeline=timeline,
                       bucket_insns=config.timeline_bucket_insns
                       if timeline else 0)
        try:
            vm.run_source(source)
        except SimulationLimitReached:
            result.truncated = True
        tool.finish()
        result.output = vm.stdout()
        _fill_machine(result, vm.machine)
        _fill_pintool(result, tool)
    else:
        jit_enabled = not vm_kind.endswith("_nojit")
        config = _base_config(max_instructions, jit_enabled, jit_overrides)
        ctx = VMContext(config, predictor=predictor)
        tool = PinTool(ctx.machine, record_timeline=timeline,
                       bucket_insns=config.timeline_bucket_insns
                       if timeline else 0)
        vm = _JIT_VMS[vm_kind](ctx)
        try:
            vm.run_source(source)
        except SimulationLimitReached:
            result.truncated = True
        tool.finish()
        for trace in ctx.registry.traces:
            executor.sync_exec_counts(trace)
        result.output = vm.stdout()
        _fill_machine(result, ctx.machine)
        _fill_pintool(result, tool)
        result.registry = ctx.registry
        result.jitlog_obj = ctx.jitlog
        result.gc_stats = ctx.gc.stats()
        result.aot_rows = tool.aotcalls.all_rows(ctx.machine.cycles)

    if use_cache:
        _CACHE[key] = result
    return result


def _fill_machine(result, machine):
    result.cycles = machine.cycles
    result.instructions = machine.instructions
    result.ipc = machine.ipc
    result.mpki = machine.branch_mpki


def _fill_pintool(result, tool):
    result.phase_windows = tool.phases.windows
    result.phase_breakdown = tool.phases.breakdown()
    if tool.phases.record_timeline:
        result.timeline_segments = tool.phases.timeline_segments()
    result.bytecodes = tool.bcrate.bytecodes
    if tool.bcrate.bucket_insns:
        result.bc_timeline = list(tool.bcrate.timeline)


# -- JIT-IR statistics helpers (jitlog-backed) ---------------------------------


def ir_stats(result):
    """Figure 6 statistics for a JIT run."""
    reg = result.registry
    return {
        "nodes_compiled": jitlog.total_ir_nodes_compiled(reg),
        "hot_fraction": jitlog.hot_node_fraction(reg),
        "nodes_per_minsn": jitlog.ir_nodes_per_minsn(
            reg, result.instructions),
    }


def category_breakdown(result):
    return jitlog.dynamic_category_breakdown(result.registry)


def node_histogram(result):
    return jitlog.dynamic_node_type_histogram(result.registry)


def asm_per_node(result):
    return jitlog.asm_insns_per_node_type(result.registry)
