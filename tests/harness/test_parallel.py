"""Parallel runner: worker-process results must equal in-process results.

Simulations are deterministic by construction (simulated PCs and heap
addresses are content-derived, never ``id()``-based), so a result
computed in a spawned worker must match an in-process run field for
field — floats included.  This is what makes the persistent store and
the process-pool fan-out sound.
"""

import os

import pytest

from repro.harness import runner, store


@pytest.fixture
def no_store():
    old = os.environ.get("REPRO_STORE")
    os.environ["REPRO_STORE"] = "0"
    store.reset_default_store()
    yield
    if old is None:
        os.environ.pop("REPRO_STORE", None)
    else:
        os.environ["REPRO_STORE"] = old
    store.reset_default_store()


_COMPARED_FIELDS = (
    "program", "vm_kind", "n", "instructions", "cycles", "ipc", "mpki",
    "bytecodes", "truncated", "output", "phase_breakdown",
)


def test_worker_results_match_inprocess(no_store):
    # fannkuch exists in both languages; the racket job guards the
    # job-spec language round-trip ("tinyrkt" must resolve back to the
    # TinyRkt program, not fall through to the TinyPy one).
    jobs = [runner.job("richards", "pypy", n=1),
            runner.job("crypto_pyaes", "cpython", n=2),
            runner.job("fannkuch", "pycket", n=5, language="racket")]

    runner.clear_cache()
    local = runner.run_many([dict(j) for j in jobs], workers=1)
    runner.clear_cache()
    spawned = runner.run_many([dict(j) for j in jobs], workers=2)

    for in_proc, worker in zip(local, spawned):
        for field in _COMPARED_FIELDS:
            a = getattr(in_proc, field)
            b = getattr(worker, field)
            assert a == b, (field, a, b)
        # cycles is a float: require bit-identity, not closeness.
        assert repr(in_proc.cycles) == repr(worker.cycles)


def test_run_many_deduplicates_and_orders(no_store):
    runner.clear_cache()
    spec = runner.job("crypto_pyaes", "cpython", n=2)
    before = runner.simulation_count()
    results = runner.run_many([dict(spec), dict(spec)], workers=1)
    assert runner.simulation_count() == before + 1  # deduplicated
    assert results[0] is results[1]
    assert results[0].program == "crypto_pyaes"
