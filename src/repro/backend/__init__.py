"""Host simulation backends: compiled kernels for the machine hot loop.

Three interchangeable implementations of the :class:`~repro.uarch.
machine.Machine` event interface, selected by ``config.sim_backend``
(env override ``REPRO_BACKEND=python|fast|native``):

``python``
    The reference machine.  Its four fused dispatch kernels are
    themselves generated from :mod:`repro.backend.kernelspec`, so the
    reference path and the compiled backends share one source of truth
    for the delicate fragments (bulk-miss carry, block charge, inlined
    BTB).

``fast``
    :class:`repro.backend.fastmachine.FastMachine` — exec-compiled
    specialized Python kernels, one closure set per machine instance.
    Machine constants (issue width, penalties, predictor tables, the
    class-count list) are bound as closure locals and the listener/limit
    gating collapses to a cached per-tag check.  Always available.

``native``
    :class:`repro.backend.nativemachine.NativeMachine` — simulation
    state lives in a C struct and the hot kernels run as cffi-compiled C
    (built once per source digest, cached under the user cache dir).
    Requires a C toolchain + cffi; silently falls back to ``fast`` when
    unavailable (:func:`native_unavailable_reason` says why).

Every backend is bit-identical to the reference: same counters (the
float ``cycles`` compared by ``repr``), same phase windows, same jitlog
— enforced by tests/backend/ and the difftest oracle's backend engines.

This module stays import-light (no uarch imports at module level): the
reference machine imports the kernel spec from here, so the resolvers
import lazily.
"""

from repro.core.errors import ConfigError

BACKENDS = ("python", "fast", "native")


def machine_class(name):
    """Resolve a backend name to its Machine implementation class.

    ``native`` degrades to the ``fast`` class when no C toolchain or
    cffi is available (the reason is recorded; see
    :func:`native_unavailable_reason`) so ``REPRO_BACKEND=native`` is
    safe to set unconditionally in CI matrices.
    """
    if name in (None, "", "python"):
        from repro.uarch.machine import Machine
        return Machine
    if name == "fast":
        from repro.backend.fastmachine import FastMachine
        return FastMachine
    if name == "native":
        from repro.backend import native
        cls = native.machine_class_or_none()
        if cls is not None:
            return cls
        from repro.backend.fastmachine import FastMachine
        return FastMachine
    raise ConfigError("unknown sim backend %r (expected one of %s)"
                      % (name, "/".join(BACKENDS)))


def native_unavailable_reason():
    """Why the native backend is degraded to fast, or None if it works."""
    from repro.backend import native
    native.machine_class_or_none()
    return native.unavailable_reason()


def available_backends():
    """The backend names that resolve to distinct working classes here."""
    names = ["python", "fast"]
    if native_unavailable_reason() is None:
        names.append("native")
    return tuple(names)
