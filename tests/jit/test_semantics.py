"""Unit tests for jit.semantics: IR op evaluation and fold safety."""

import pytest

from repro.jit import ir
from repro.jit.semantics import (EVAL, FOLDABLE, INT_MAX, INT_MIN,
                                 LLOverflow, _int_floordiv, _int_mod,
                                 _wrap64, check_ovf)


class TestCheckOvf:
    def test_in_range_passes_through(self):
        assert check_ovf(0) == 0
        assert check_ovf(INT_MAX) == INT_MAX
        assert check_ovf(INT_MIN) == INT_MIN

    def test_out_of_range_raises(self):
        with pytest.raises(LLOverflow):
            check_ovf(INT_MAX + 1)
        with pytest.raises(LLOverflow):
            check_ovf(INT_MIN - 1)


class TestCDivision:
    """_int_floordiv/_int_mod are C-style (truncate toward zero),
    matching RPython ll semantics — NOT Python floor semantics."""

    @pytest.mark.parametrize("a,b", [
        (7, 2), (-7, 2), (7, -2), (-7, -2), (6, 3), (-6, 3), (0, 5),
        (1, 10), (-1, 10),
    ])
    def test_truncates_toward_zero(self, a, b):
        import math

        expected = math.trunc(a / b)
        assert _int_floordiv(a, b) == expected

    @pytest.mark.parametrize("a,b", [
        (7, 2), (-7, 2), (7, -2), (-7, -2), (1, 10), (-1, 10),
    ])
    def test_mod_identity(self, a, b):
        # a == (a // b) * b + (a % b) must hold with truncating //.
        assert _int_floordiv(a, b) * b + _int_mod(a, b) == a

    def test_mod_sign_follows_dividend(self):
        assert _int_mod(-7, 2) == -1   # Python's % would give 1
        assert _int_mod(7, -2) == 1    # Python's % would give -1


class TestWrap64:
    def test_identity_in_range(self):
        assert _wrap64(42) == 42
        assert _wrap64(-42) == -42

    def test_wraps_overflow(self):
        assert _wrap64(INT_MAX + 1) == INT_MIN
        assert _wrap64(INT_MIN - 1) == INT_MAX
        assert _wrap64(1 << 64) == 0


class TestEval:
    def test_int_add_wraps(self):
        assert EVAL[ir.INT_ADD](INT_MAX, 1) == INT_MIN

    def test_int_add_ovf_raises(self):
        with pytest.raises(LLOverflow):
            EVAL[ir.INT_ADD_OVF](INT_MAX, 1)
        assert EVAL[ir.INT_ADD_OVF](1, 2) == 3

    def test_int_mul_ovf(self):
        with pytest.raises(LLOverflow):
            EVAL[ir.INT_MUL_OVF](1 << 40, 1 << 40)
        assert EVAL[ir.INT_MUL_OVF](6, 7) == 42

    def test_int_neg_invert(self):
        assert EVAL[ir.INT_NEG](5) == -5
        assert EVAL[ir.INT_NEG](INT_MIN) == INT_MIN  # wraps like C
        assert EVAL[ir.INT_INVERT](0) == -1

    def test_lshift_wraps(self):
        assert EVAL[ir.INT_LSHIFT](1, 3) == 8
        assert EVAL[ir.INT_LSHIFT](1, 63) == INT_MIN

    def test_comparisons(self):
        assert EVAL[ir.INT_LT](1, 2) is True
        assert EVAL[ir.INT_GE](2, 2) is True
        assert EVAL[ir.INT_IS_TRUE](0) is False
        assert EVAL[ir.INT_IS_ZERO](0) is True

    def test_float_ops(self):
        assert EVAL[ir.FLOAT_ADD](1.5, 2.5) == 4.0
        assert EVAL[ir.FLOAT_SQRT](9.0) == 3.0
        assert EVAL[ir.FLOAT_ABS](-2.0) == 2.0

    def test_casts(self):
        assert EVAL[ir.CAST_INT_TO_FLOAT](3) == 3.0
        assert EVAL[ir.CAST_FLOAT_TO_INT](3.9) == 3
        assert EVAL[ir.CAST_FLOAT_TO_INT](-3.9) == -3

    def test_str_ops(self):
        assert EVAL[ir.STRLEN]("abc") == 3
        assert EVAL[ir.STRGETITEM]("abc", 1) == "b"
        assert EVAL[ir.STR_CONCAT]("ab", "cd") == "abcd"
        assert EVAL[ir.STR_EQ]("x", "x") is True

    def test_ptr_ops_are_identity_based(self):
        a = object()
        b = object()
        assert EVAL[ir.PTR_EQ](a, a) is True
        assert EVAL[ir.PTR_EQ](a, b) is False
        assert EVAL[ir.PTR_NE](a, b) is True
        assert EVAL[ir.SAME_AS](a) is a


class TestFoldable:
    def test_overflow_ops_never_fold(self):
        for opnum in ir.OVF_OPS:
            assert opnum not in FOLDABLE

    def test_raising_ops_never_fold(self):
        # Folding these at optimization time could raise (div by zero,
        # index out of range) for a path the program never executes.
        for opnum in (ir.INT_FLOORDIV, ir.INT_MOD, ir.FLOAT_TRUEDIV,
                      ir.STRGETITEM, ir.UNICODEGETITEM):
            assert opnum not in FOLDABLE

    def test_plain_arith_folds(self):
        for opnum in (ir.INT_ADD, ir.INT_MUL, ir.INT_XOR, ir.FLOAT_ADD,
                      ir.STR_CONCAT, ir.INT_LT):
            assert opnum in FOLDABLE

    def test_every_foldable_op_has_semantics(self):
        for opnum in FOLDABLE:
            assert opnum in EVAL
