"""Statically-compiled (C/C++) reference kernels.

The paper's Table II includes C/C++ CLBG implementations as the
static-language reference line.  We model them as the same algorithms
with *native* per-operation costs: no boxing, no dispatch, no guards —
each loop charges the handful of machine instructions a compiler would
emit.  Outputs are computed for real (so benches can sanity-check them);
only the cost model is synthetic, as DESIGN.md documents.
"""

from repro.core import tags
from repro.isa import insns
from repro.uarch.machine import Machine, SimulationLimitReached

_FLOP_MIX = insns.mix(fpu=4, alu=2, load=2, store=1)
_INT_MIX = insns.mix(alu=4, load=1, store=1, br_bulk=1)
_PTR_MIX = insns.mix(load=2, alu=2, store=1, br_bulk=1)


class NativeRun(object):
    """One native-reference execution with its machine."""

    def __init__(self, config, predictor="gshare"):
        self.machine = Machine(config, predictor=predictor)
        self.output = []
        self.truncated = False

    def charge(self, mix, times=1):
        if times > 1:
            mix = insns.scale_mix(mix, times)
        self.machine.exec_mix(mix)

    def emit(self, text):
        self.output.append(text)

    def stdout(self):
        return "\n".join(self.output) + ("\n" if self.output else "")


def nbody(run, n):
    # Positions/velocities as flat lists of floats (native arrays).
    from repro.benchprogs.registry import py_program  # noqa: F401

    bodies = _nbody_bodies()
    _nbody_offset(bodies)
    run.charge(_FLOP_MIX, 40)
    run.emit("nbody start %.9f" % _nbody_energy(bodies, run))
    for _ in range(n):
        _nbody_advance(bodies, 0.01, run)
    run.emit("nbody end %.9f" % _nbody_energy(bodies, run))


def _nbody_bodies():
    pi = 3.14159265358979323
    solar_mass = 4.0 * pi * pi
    dpy = 365.24
    return [
        [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, solar_mass],
        [4.84143144246472090, -1.16032004402742839, -0.103622044471123109,
         0.00166007664274403694 * dpy, 0.00769901118419740425 * dpy,
         -0.0000690460016972063023 * dpy,
         0.000954791938424326609 * solar_mass],
        [8.34336671824457987, 4.12479856412430479, -0.403523417114321381,
         -0.00276742510726862411 * dpy, 0.00499852801234917238 * dpy,
         0.0000230417297573763929 * dpy,
         0.000285885980666130812 * solar_mass],
        [12.8943695621391310, -15.1111514016986312, -0.223307578892655734,
         0.00296460137564761618 * dpy, 0.00237847173959480950 * dpy,
         -0.0000296589568540237556 * dpy,
         0.0000436624404335156298 * solar_mass],
        [15.3796971148509165, -25.9193146099879641, 0.179258772950371181,
         0.00268067772490389322 * dpy, 0.00162824170038242295 * dpy,
         -0.0000951592254519715870 * dpy,
         0.0000515138902046611451 * solar_mass],
    ]


def _nbody_offset(bodies):
    pi = 3.14159265358979323
    solar_mass = 4.0 * pi * pi
    px = sum(b[3] * b[6] for b in bodies)
    py = sum(b[4] * b[6] for b in bodies)
    pz = sum(b[5] * b[6] for b in bodies)
    bodies[0][3] = -px / solar_mass
    bodies[0][4] = -py / solar_mass
    bodies[0][5] = -pz / solar_mass


def _nbody_advance(bodies, dt, run):
    n = len(bodies)
    for i in range(n):
        bi = bodies[i]
        for j in range(i + 1, n):
            bj = bodies[j]
            dx = bi[0] - bj[0]
            dy = bi[1] - bj[1]
            dz = bi[2] - bj[2]
            d2 = dx * dx + dy * dy + dz * dz
            mag = dt / (d2 ** 1.5)
            run.charge(_FLOP_MIX, 5)
            bim = bi[6] * mag
            bjm = bj[6] * mag
            bi[3] -= dx * bjm
            bi[4] -= dy * bjm
            bi[5] -= dz * bjm
            bj[3] += dx * bim
            bj[4] += dy * bim
            bj[5] += dz * bim
        run.charge(_FLOP_MIX, 2)
        bi[0] += dt * bi[3]
        bi[1] += dt * bi[4]
        bi[2] += dt * bi[5]


def _nbody_energy(bodies, run):
    e = 0.0
    n = len(bodies)
    for i in range(n):
        bi = bodies[i]
        e += 0.5 * bi[6] * (bi[3] ** 2 + bi[4] ** 2 + bi[5] ** 2)
        for j in range(i + 1, n):
            bj = bodies[j]
            dx = bi[0] - bj[0]
            dy = bi[1] - bj[1]
            dz = bi[2] - bj[2]
            e -= bi[6] * bj[6] / ((dx * dx + dy * dy + dz * dz) ** 0.5)
            run.charge(_FLOP_MIX, 3)
    return e


def spectralnorm(run, n):
    u = [1.0] * n
    v = [0.0] * n
    tmp = [0.0] * n

    def eval_a(i, j):
        return 1.0 / ((i + j) * (i + j + 1) / 2.0 + i + 1.0)

    def times(src, dst, transpose):
        for i in range(n):
            total = 0.0
            for j in range(n):
                if transpose:
                    total += eval_a(j, i) * src[j]
                else:
                    total += eval_a(i, j) * src[j]
            dst[i] = total
            run.charge(_FLOP_MIX, n // 2 + 1)

    for _ in range(10):
        times(u, tmp, False)
        times(tmp, v, True)
        times(v, tmp, False)
        times(tmp, u, True)
    vbv = sum(u[i] * v[i] for i in range(n))
    vv = sum(v[i] * v[i] for i in range(n))
    run.charge(_FLOP_MIX, n)
    run.emit("spectralnorm %.9f" % ((vbv / vv) ** 0.5))


def mandelbrot(run, size):
    checksum = 0
    bit = 0
    byte = 0
    for y in range(size):
        ci = 2.0 * y / size - 1.0
        for x in range(size):
            cr = 2.0 * x / size - 1.5
            zr = zi = 0.0
            inside = 1
            iterations = 0
            for _ in range(50):
                iterations += 1
                zr2 = zr * zr
                zi2 = zi * zi
                if zr2 + zi2 > 4.0:
                    inside = 0
                    break
                zi = 2.0 * zr * zi + ci
                zr = zr2 - zi2 + cr
            run.charge(_FLOP_MIX, iterations)
            byte = byte * 2 + inside
            bit += 1
            if bit == 8:
                checksum = (checksum * 31 + byte) % 1000000007
                bit = byte = 0
    if bit:
        checksum = (checksum * 31 + byte) % 1000000007
    run.emit("mandelbrot %d" % checksum)


def fannkuch(run, n):
    perm1 = list(range(n))
    count = [0] * n
    max_flips = 0
    checksum = 0
    r = n
    sign = 1
    while True:
        if r != 1:
            for i in range(1, r):
                count[i] = i
            r = 1
        if perm1[0]:
            perm = perm1[:]
            flips = 0
            k = perm[0]
            while k:
                perm[:k + 1] = perm[k::-1]
                run.charge(_INT_MIX, k + 1)
                flips += 1
                k = perm[0]
            max_flips = max(max_flips, flips)
            checksum += sign * flips
        sign = -sign
        while True:
            if r == n:
                run.emit("fannkuch %d %d" % (checksum, max_flips))
                return
            first = perm1[0]
            perm1[:r] = perm1[1:r + 1]
            perm1[r] = first
            run.charge(_INT_MIX, r + 2)
            count[r] -= 1
            if count[r] > 0:
                break
            r += 1


def binarytrees(run, max_depth):
    min_depth = 4
    if max_depth < min_depth + 2:
        max_depth = min_depth + 2

    def make(depth):
        run.charge(_PTR_MIX, 2)
        if depth == 0:
            return (None, None)
        return (make(depth - 1), make(depth - 1))

    def check(node):
        run.charge(_PTR_MIX, 1)
        if node[0] is None:
            return 1
        return 1 + check(node[0]) + check(node[1])

    stretch = max_depth + 1
    run.emit("stretch tree of depth %d check: %d"
             % (stretch, check(make(stretch))))
    long_lived = make(max_depth)
    depth = min_depth
    while depth <= max_depth:
        iterations = 1 << (max_depth - depth + min_depth)
        total = 0
        for _ in range(iterations):
            total += check(make(depth))
        run.emit("%d trees of depth %d check: %d"
                 % (iterations, depth, total))
        depth += 2
    run.emit("long lived tree of depth %d check: %d"
             % (max_depth, check(long_lived)))


def pidigits(run, ndigits):
    digits = []
    k = 1
    n1, n2, d = 4, 3, 1
    while len(digits) < ndigits:
        # GMP-backed bignum arithmetic: cost per limb.
        limbs = max(1, n1.bit_length() // 64)
        run.charge(_INT_MIX, 4 * limbs)
        u = n1 // d
        v = n2 // d
        if u == v:
            digits.append(str(u))
            to_minus = u * 10 * d
            n1 = n1 * 10 - to_minus
            n2 = n2 * 10 - to_minus
        else:
            k2 = k * 2
            n1, n2 = n1 * (k2 - 1) + n2 * 2, n1 * (k - 1) + n2 * (k + 2)
            d *= k2 + 1
            k += 1
    text = "".join(digits)
    i = 0
    while i < len(text):
        chunk = text[i:i + 10]
        run.emit("%s :%d" % (chunk, i + len(chunk)))
        i += 10


def fasta(run, n):
    # Matches the TinyPy port's checksum protocol.
    alu = ("GGCCGGGCGCGGTGGCTCACGCCTGTAATCCCAGCACTTTGG"
           "GAGGCCGAGGCGGGCGGATCACCTGAGGTCAGGAGTTCGAGA"
           "CCAGCCTGGCCAACATGGTGAAACCCCGTCTCTACTAAAAAT")
    codes = "acgtBDHKMNRSVWY"
    weights = [0.27, 0.12, 0.12, 0.27] + [0.02] * 11
    out = [">ONE Homo sapiens alu"]
    width = len(alu)
    buffer = alu + alu
    pos = written = 0
    target = n * 2
    while written < target:
        line_len = min(60, target - written)
        out.append(buffer[pos:pos + line_len])
        run.charge(_PTR_MIX, line_len // 8 + 1)
        pos += line_len
        if pos >= width:
            pos -= width
        written += line_len
    out.append(">TWO IUB ambiguity codes")
    cumulative = []
    total = 0.0
    for w in weights:
        total += w
        cumulative.append(total)
    seed = 42
    written = 0
    line = []
    target = n * 3
    while written < target:
        seed = (seed * 3877 + 29573) % 139968
        r = seed / 139968.0
        i = 0
        while i < len(codes) - 1 and r >= cumulative[i]:
            i += 1
        run.charge(_INT_MIX, i + 2)
        line.append(codes[i])
        written += 1
        if len(line) == 60:
            out.append("".join(line))
            line = []
    if line:
        out.append("".join(line))
    checksum = 0
    for chunk in out:
        for ch in chunk:
            checksum = (checksum * 31 + ord(ch)) % 1000000007
    run.charge(_INT_MIX, sum(len(c) for c in out) // 4)
    run.emit("fasta %d %d" % (len(out), checksum))


def revcomp(run, n):
    complement = {"A": "T", "C": "G", "G": "C", "T": "A",
                  "a": "T", "c": "G", "g": "C", "t": "A",
                  "N": "N", "n": "N"}
    seed = 7
    bases = "ACGTacgtNn"
    parts = []
    for _ in range(n):
        seed = (seed * 1103515245 + 12345) % 2147483648
        parts.append(bases[seed % 10])
    seq = "".join(parts)
    run.charge(_INT_MIX, n // 2)
    result = "".join(complement[c] for c in reversed(seq))
    run.charge(_PTR_MIX, n)
    checksum = 0
    i = 0
    while i < len(result):
        checksum = (checksum * 31 + ord(result[i])) % 1000000007
        i += 97
    run.emit("revcomp %d %d" % (len(result), checksum))


def knucleotide(run, n):
    seed = 42
    bases = "acgt"
    parts = []
    for _ in range(n):
        seed = (seed * 3877 + 29573) % 139968
        parts.append(bases[seed % 4])
    seq = "".join(parts)
    run.charge(_INT_MIX, n)
    out = []

    def freq(frame):
        counts = {}
        for i in range(len(seq) - frame + 1):
            kmer = seq[i:i + frame]
            counts[kmer] = counts.get(kmer, 0) + 1
        run.charge(_PTR_MIX, (len(seq) - frame + 1) * 2)
        return counts

    for frame in (1, 2):
        counts = freq(frame)
        pairs = sorted(counts.items(), key=lambda p: (-p[1], p[0]))
        total = len(seq) - frame + 1
        for kmer, count in pairs:
            out.append("%s %.3f" % (kmer.upper(), 100.0 * count / total))
    for fragment in ("ggt", "ggta", "ggtatt"):
        counts = freq(len(fragment))
        out.append("%d\t%s" % (counts.get(fragment, 0), fragment.upper()))
    for line in out:
        run.emit(line)


KERNELS = {
    "nbody": nbody,
    "spectralnorm": spectralnorm,
    "mandelbrot": mandelbrot,
    "fannkuch": fannkuch,
    "binarytrees": binarytrees,
    "pidigits": pidigits,
    "fasta": fasta,
    "revcomp": revcomp,
    "knucleotide": knucleotide,
}


def run_native(name, n, config, predictor="gshare"):
    """Run a native-reference kernel; returns the NativeRun.

    A run that exceeds ``max_instructions`` comes back with
    ``truncated`` set and whatever output it produced, matching the
    interpreter/JIT paths (which also return truncated results instead
    of raising).
    """
    run = NativeRun(config, predictor=predictor)
    try:
        run.machine.annot(tags.VM_START)
        KERNELS[name](run, n)
        run.machine.annot(tags.VM_STOP)
    except SimulationLimitReached:
        run.truncated = True
    return run
