"""End-to-end JIT tests through the MiniLang tutorial VM.

These exercise the full stack: dispatch -> hot detection -> tracing ->
optimization (virtuals, peeling) -> codegen execution -> guard failure ->
blackhole deoptimization -> bridges.
"""

import pytest

from repro.core.config import SystemConfig
from repro.interp.context import VMContext
from repro.interp.minilang import Code, MiniInterp, W_Int
from repro.pintool.tool import PinTool


def countdown_code(n_iterations):
    # local0 = n; while local0 > 0: local0 = local0 - 1; return local0
    ops = [
        ("load_local", 0),     # 0: loop header
        ("load_const", 0),     # 1
        ("eq", None),          # 2
        ("jump_if_false", 5),  # 3
        ("jump", 10),          # 4: exit
        ("load_local", 0),     # 5
        ("load_const", 1),     # 6
        ("sub", None),         # 7
        ("store_local", 0),    # 8
        ("jump", 0),           # 9: backward jump (loop header target 0)
        ("load_local", 0),     # 10
        ("return", None),      # 11
    ]
    return Code("countdown", ops, n_locals=1), (n_iterations,)


def accumulate_code():
    # local0 = n; local1 = 0
    # while local0 != 0: local1 += local0; local0 -= 1
    # return local1  (sum 1..n)
    ops = [
        ("load_const", 0),      # 0
        ("store_local", 1),     # 1
        ("load_local", 0),      # 2: loop header
        ("load_const", 0),      # 3
        ("eq", None),           # 4
        ("jump_if_false", 7),   # 5
        ("jump", 16),           # 6 -> exit
        ("load_local", 1),      # 7
        ("load_local", 0),      # 8
        ("add", None),          # 9
        ("store_local", 1),     # 10
        ("load_local", 0),      # 11
        ("load_const", 1),      # 12
        ("sub", None),          # 13
        ("store_local", 0),     # 14
        ("jump", 2),            # 15: backward jump
        ("load_local", 1),      # 16
        ("return", None),       # 17
    ]
    return Code("accumulate", ops, n_locals=2)


def run_program(code, args, jit=True, threshold=10, pin=False):
    cfg = SystemConfig()
    cfg.jit.enabled = jit
    cfg.jit.hot_loop_threshold = threshold
    ctx = VMContext(cfg)
    tool = PinTool(ctx.machine) if pin else None
    interp = MiniInterp(ctx)
    result = interp.run(code, args)
    if tool is not None:
        tool.finish()
    return result, ctx, tool


def int_of(w_value):
    assert isinstance(w_value, W_Int)
    return w_value.intval


def test_countdown_no_jit():
    code, args = countdown_code(50)
    result, ctx, _ = run_program(code, args, jit=False)
    assert int_of(result) == 0
    assert ctx.registry.traces == []


def test_countdown_jit_compiles_and_matches():
    code, args = countdown_code(300)
    result, ctx, _ = run_program(code, args)
    assert int_of(result) == 0
    assert len(ctx.registry.traces) >= 1
    loop = ctx.registry.traces[0]
    assert loop.kind == "loop"
    assert loop.executions >= 1


def test_accumulate_result_matches_interpreter():
    code = accumulate_code()
    jit_result, jit_ctx, _ = run_program(code, (400,))
    plain_result, _, _ = run_program(code, (400,), jit=False)
    assert int_of(jit_result) == int_of(plain_result) == 400 * 401 // 2
    assert len(jit_ctx.registry.traces) >= 1


def test_jit_is_faster_in_cycles():
    code = accumulate_code()
    _, ctx_jit, _ = run_program(code, (3000,))
    _, ctx_nojit, _ = run_program(code, (3000,), jit=False)
    assert ctx_jit.machine.cycles < ctx_nojit.machine.cycles * 0.5


def test_loop_exit_deoptimizes_correctly():
    # The loop-exit guard fails at the end; the interpreter must resume
    # and produce the right value.
    code = accumulate_code()
    result, ctx, _ = run_program(code, (100,), threshold=5)
    assert int_of(result) == 5050


def test_escape_analysis_removes_boxes():
    # In the peeled loop body, the W_Int temporaries must be virtualized:
    # far fewer allocations in JIT execution than interpretation.
    code = accumulate_code()
    _, ctx_jit, _ = run_program(code, (5000,))
    _, ctx_nojit, _ = run_program(code, (5000,), jit=False)
    assert ctx_jit.gc.total_allocations < ctx_nojit.gc.total_allocations * 0.3


def test_phases_observed():
    code = accumulate_code()
    _, ctx, tool = run_program(code, (2000,), pin=True)
    breakdown = tool.phases.breakdown()
    assert breakdown["tracing"] > 0
    assert breakdown["jit"] > 0
    assert breakdown["interp"] > 0
    assert sum(breakdown.values()) == pytest.approx(1.0)


def test_bytecode_count_consistent_across_modes():
    # Same guest program => same number of DISPATCH events with and
    # without JIT (trace debug_merge_points stand in for dispatches).
    code = accumulate_code()
    n = 150

    def count(jit):
        cfg = SystemConfig()
        cfg.jit.enabled = jit
        cfg.jit.hot_loop_threshold = 10
        ctx = VMContext(cfg)
        tool = PinTool(ctx.machine)
        interp = MiniInterp(ctx)
        interp.run(code, (n,))
        tool.finish()
        return tool.bcrate.bytecodes

    with_jit = count(True)
    without_jit = count(False)
    assert abs(with_jit - without_jit) <= without_jit * 0.02 + 20


def test_function_call_inlined_into_trace():
    # main: while local0 != 0: local0 = f(local0); return local0
    # f(x) = x - 1
    f_ops = [
        ("load_local", 0),
        ("load_const", 1),
        ("sub", None),
        ("return", None),
    ]
    f_code = Code("f", f_ops, n_locals=1)
    main_ops = [
        ("load_local", 0),      # 0: loop header
        ("load_const", 0),      # 1
        ("eq", None),           # 2
        ("jump_if_false", 5),   # 3
        ("jump", 9),            # 4
        ("load_local", 0),      # 5
        ("call", "f"),          # 6
        ("store_local", 0),     # 7
        ("jump", 0),            # 8
        ("load_local", 0),      # 9
        ("return", None),       # 10
    ]
    main = Code("main", main_ops, n_locals=1)
    main.codes["f"] = f_code
    result, ctx, _ = run_program(main, (500,))
    assert int_of(result) == 0
    assert len(ctx.registry.traces) >= 1


def test_type_switch_creates_bridge_or_deopts():
    # Loop whose body alternates between two paths via a data-dependent
    # branch: guard failures should accumulate and attach a bridge.
    ops = [
        ("load_local", 0),      # 0: header
        ("load_const", 0),
        ("eq", None),
        ("jump_if_false", 5),
        ("jump", 18),           # exit
        ("load_local", 1),      # 5: parity check
        ("load_const", 0),
        ("eq", None),
        ("jump_if_false", 11),
        ("load_const", 1),      # 9: then-branch: local1 = 1
        ("jump", 12),
        ("load_const", 0),      # 11: else-branch: local1 = 0
        ("store_local", 1),     # 12
        ("load_local", 0),
        ("load_const", 1),
        ("sub", None),
        ("store_local", 0),
        ("jump", 0),
        ("load_local", 0),      # 18
        ("return", None),
    ]
    code = Code("alternating", ops, n_locals=2)
    cfg = SystemConfig()
    cfg.jit.hot_loop_threshold = 8
    cfg.jit.bridge_threshold = 5
    ctx = VMContext(cfg)
    interp = MiniInterp(ctx)
    result = interp.run(code, (400, 0))
    assert int_of(result) == 0
    kinds = {t.kind for t in ctx.registry.traces}
    assert "loop" in kinds
    assert "bridge" in kinds


def test_overflow_falls_back_to_bignum_call():
    # Repeated doubling overflows 64-bit and must take the residual-call
    # path; just check it does not crash pre-overflow with JIT on.
    ops = [
        ("load_local", 0),      # 0: header
        ("load_const", 0),      # 1
        ("eq", None),           # 2
        ("jump_if_false", 5),   # 3
        ("jump", 14),           # 4
        ("load_local", 1),      # 5
        ("load_local", 1),      # 6
        ("add", None),          # 7
        ("store_local", 1),     # 8
        ("load_local", 0),      # 9
        ("load_const", 1),      # 10
        ("sub", None),          # 11
        ("store_local", 0),     # 12
        ("jump", 0),            # 13
        ("load_local", 1),      # 14
        ("return", None),       # 15
    ]
    code = Code("doubling", ops, n_locals=2)
    cfg = SystemConfig()
    cfg.jit.hot_loop_threshold = 6
    ctx = VMContext(cfg)
    interp = MiniInterp(ctx)
    result = interp.run(code, (62, 1))
    assert int_of(result) == 2 ** 62


def test_jitlog_records_compilation():
    code = accumulate_code()
    _, ctx, _ = run_program(code, (500,))
    assert ctx.jitlog.count("compile") >= 1
