"""Metrics registry: counters, gauges, and log-bucketed histograms.

Each :class:`TelemetryBus` owns one :class:`MetricsRegistry`.  Metrics
are cheap scalar aggregates next to the span timeline: counters count
events (traces compiled, GC collections, deopts), gauges record
last-written values (heap bytes), histograms summarize distributions
(trace lengths, surviving bytes per collection) in power-of-two buckets
so merging across processes stays exact.
"""

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


def _bucket_index(value):
    """Log2 bucket index for ``value`` (0 for values < 1)."""
    index = 0
    value = int(value)
    while value > 1:
        value >>= 1
        index += 1
    return index


def bucket_bounds(index):
    """Half-open value range ``[lo, hi)`` covered by bucket ``index``."""
    if index == 0:
        return (0, 2)
    return (1 << index, 1 << (index + 1))


class Histogram(object):
    """A log-bucketed histogram (power-of-two buckets)."""

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self):
        self.buckets = {}
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def record(self, value):
        index = _bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def merge(self, other):
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        self.count += other.count
        self.total += other.total
        for bound in (other.min,):
            if bound is not None and (self.min is None or bound < self.min):
                self.min = bound
        for bound in (other.max,):
            if bound is not None and (self.max is None or bound > self.max):
                self.max = bound

    def to_dict(self):
        return {
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, data):
        histogram = cls()
        histogram.buckets = {int(k): v for k, v in data["buckets"].items()}
        histogram.count = data["count"]
        histogram.total = data["total"]
        histogram.min = data["min"]
        histogram.max = data["max"]
        return histogram


class MetricsRegistry(object):
    """Named counters/gauges/histograms behind one bus."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self):
        self.counters = {}
        self.gauges = {}
        self.histograms = {}

    def count(self, name, delta=1):
        self.counters[name] = self.counters.get(name, 0) + delta

    def gauge(self, name, value):
        self.gauges[name] = value

    def histogram(self, name, value):
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.record(value)

    def merge(self, other):
        """Fold another registry in (cross-process aggregation)."""
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        # Last write wins for gauges; merging processes have disjoint
        # gauge namespaces in practice (they are per-run values).
        self.gauges.update(other.gauges)
        for name, histogram in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = Histogram()
            mine.merge(histogram)

    def to_dict(self):
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: h.to_dict() for name, h in self.histograms.items()
            },
        }

    @classmethod
    def from_dict(cls, data):
        registry = cls()
        registry.counters = dict(data.get("counters", {}))
        registry.gauges = dict(data.get("gauges", {}))
        registry.histograms = {
            name: Histogram.from_dict(h)
            for name, h in data.get("histograms", {}).items()
        }
        return registry
