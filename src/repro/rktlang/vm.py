"""The TinyRkt VMs.

* :class:`RktVM` — TinyRkt on the meta-tracing framework (the Pycket
  analogue): same interpreter machinery as TinyPy, Scheme builtins.
* :class:`RacketRef` — the "Racket" baseline: same bytecode on the
  reference evaluator with a mature-custom-JIT cost factor.

Scheme data mapping: fixnums/flonums/strings/bools use the shared boxed
types; pairs are 2-cell lists; '() is None; vectors are lists;
characters are 1-character strings.  Only ``#f``-vs-truthy distinctions
that the benchmark ports rely on are preserved (Python truthiness is
used for 0/""; ports use explicit predicates).
"""

from repro.core.errors import GuestError
from repro.interp.context import VMContext
from repro.pylang.cpref import CpRef
from repro.pylang.interp import PyVM
from repro.pylang.objects import (
    W_Builtin,
    W_List,
    W_None,
    w_None,
    wrap_bool,
)
from repro.pylang.ops import is_intish
from repro.rktlang.compiler import compile_rkt
from repro.rktlang.tier1 import RKT_TIER


def _nary_arith(method_name):
    def builtin(vm, args_w):
        result = args_w[0]
        for w_arg in args_w[1:]:
            result = getattr(vm, method_name)(result, w_arg)
        return result
    return builtin


def bi_display(vm, args_w):
    text = vm.rkt_str_of(args_w[0])
    from repro.pylang.builtins import _write_stdout

    vm.llops.residual_call(_write_stdout, vm.output, text)
    return w_None


def bi_newline(vm, args_w):
    from repro.pylang.builtins import _write_stdout

    vm.llops.residual_call(_write_stdout, vm.output, "\n")
    return w_None


def bi_cons(vm, args_w):
    return vm.new_list([args_w[0], args_w[1]])


def bi_car(vm, args_w):
    return vm.list_getitem(args_w[0], 0)


def bi_cdr(vm, args_w):
    return vm.list_getitem(args_w[0], 1)


def bi_set_car(vm, args_w):
    vm.list_setitem(args_w[0], 0, args_w[1])
    return w_None


def bi_set_cdr(vm, args_w):
    vm.list_setitem(args_w[0], 1, args_w[1])
    return w_None


def bi_null_p(vm, args_w):
    return wrap_bool(vm.llops.is_true(vm.llops.ptr_eq(args_w[0], w_None)))


def bi_pair_p(vm, args_w):
    return wrap_bool(vm.llops.cls_of(args_w[0]) is W_List)


def bi_list(vm, args_w):
    result = w_None
    for w_item in reversed(args_w):
        result = vm.new_list([w_item, result])
    return result


def bi_length(vm, args_w):
    llops = vm.llops
    count = 0
    w_node = args_w[0]
    while not llops.is_true(llops.ptr_eq(w_node, w_None)):
        count += 1
        w_node = vm.list_getitem(w_node, 1)
    return vm.wrap_int(count)


def bi_reverse(vm, args_w):
    llops = vm.llops
    result = w_None
    w_node = args_w[0]
    while not llops.is_true(llops.ptr_eq(w_node, w_None)):
        result = vm.new_list([vm.list_getitem(w_node, 0), result])
        w_node = vm.list_getitem(w_node, 1)
    return result


def bi_make_vector(vm, args_w):
    length = vm.llops.promote(vm.int_val(args_w[0]))
    w_fill = args_w[1] if len(args_w) > 1 else vm.wrap_int(0)
    return vm.new_list([w_fill] * length)


def bi_vector(vm, args_w):
    return vm.new_list(list(args_w))


def bi_vector_ref(vm, args_w):
    return vm.list_getitem(args_w[0], vm.int_val(args_w[1]))


def bi_vector_set(vm, args_w):
    vm.list_setitem(args_w[0], vm.int_val(args_w[1]), args_w[2])
    return w_None


def bi_vector_length(vm, args_w):
    return vm.wrap_int(vm.list_len_raw(args_w[0]))


def bi_quotient(vm, args_w):
    llops = vm.llops
    cls_a = llops.cls_of(args_w[0])
    cls_b = llops.cls_of(args_w[1])
    if is_intish(cls_a) and is_intish(cls_b):
        a = vm.int_val(args_w[0])
        b = vm.int_val(args_w[1])
        if not llops.is_true(llops.int_is_true(b)):
            raise GuestError("quotient by zero")
        return vm.wrap_int(llops.int_floordiv(a, b))  # C-style truncation
    # Bignum path (floor division; benchmark operands are non-negative,
    # where floor and truncation agree).
    return vm.binary_floordiv(args_w[0], args_w[1])


def bi_remainder(vm, args_w):
    llops = vm.llops
    cls_a = llops.cls_of(args_w[0])
    cls_b = llops.cls_of(args_w[1])
    if is_intish(cls_a) and is_intish(cls_b):
        a = vm.int_val(args_w[0])
        b = vm.int_val(args_w[1])
        if not llops.is_true(llops.int_is_true(b)):
            raise GuestError("remainder by zero")
        return vm.wrap_int(llops.int_mod(a, b))  # sign follows dividend
    return vm.binary_mod(args_w[0], args_w[1])


def bi_sqrt(vm, args_w):
    llops = vm.llops
    cls = llops.cls_of(args_w[0])
    value = vm.as_float(args_w[0], cls)
    return vm.wrap_float(llops.float_sqrt(value))


def bi_number_to_string(vm, args_w):
    return vm.wrap_str(vm.str_of(args_w[0]))


def bi_string_length(vm, args_w):
    return vm.wrap_int(vm.llops.unicodelen(vm.str_val(args_w[0])))


def bi_string_ref(vm, args_w):
    llops = vm.llops
    text = vm.str_val(args_w[0])
    index = vm.int_val(args_w[1])
    return vm.wrap_str(llops.unicodegetitem(text, index))


def bi_substring(vm, args_w):
    from repro.rlib import rstr

    llops = vm.llops
    text = vm.str_val(args_w[0])
    start = vm.int_val(args_w[1])
    stop = vm.int_val(args_w[2])
    return vm.wrap_str(llops.residual_call(rstr.ll_slice, text, start, stop))


def bi_string_append(vm, args_w):
    llops = vm.llops
    text = ""
    for w_arg in args_w:
        text = llops.unicode_concat(text, vm.str_val(w_arg))
    return vm.wrap_str(text)


def bi_exact_to_inexact(vm, args_w):
    llops = vm.llops
    cls = llops.cls_of(args_w[0])
    return vm.wrap_float(vm.as_float(args_w[0], cls))


def bi_inexact_to_exact(vm, args_w):
    return vm.wrap_int(vm.llops.cast_float_to_int(
        vm.float_val(args_w[0])))


def bi_floor(vm, args_w):
    llops = vm.llops
    cls = llops.cls_of(args_w[0])
    if is_intish(cls):
        return args_w[0]
    from repro.pylang.ops import _c_floor

    return vm.wrap_float(llops.residual_call(
        _c_floor, vm.float_val(args_w[0])))


def bi_truncate(vm, args_w):
    return vm.wrap_int(vm.llops.cast_float_to_int(
        vm.float_val(args_w[0])))


def bi_zero_p(vm, args_w):
    return vm.compare("eq", args_w[0], vm.wrap_int(0))


def bi_even_p(vm, args_w):
    llops = vm.llops
    return wrap_bool(not llops.is_true(llops.int_and(
        vm.int_val(args_w[0]), 1)))


def bi_odd_p(vm, args_w):
    llops = vm.llops
    return wrap_bool(llops.is_true(llops.int_and(
        vm.int_val(args_w[0]), 1)))


def bi_abs(vm, args_w):
    from repro.pylang.builtins import bi_abs as py_abs

    return py_abs(vm, args_w)


def bi_min(vm, args_w):
    w_best = args_w[0]
    for w_arg in args_w[1:]:
        if vm.is_true_w(vm.compare("lt", w_arg, w_best)):
            w_best = w_arg
    return w_best


def bi_max(vm, args_w):
    w_best = args_w[0]
    for w_arg in args_w[1:]:
        if vm.is_true_w(vm.compare("gt", w_arg, w_best)):
            w_best = w_arg
    return w_best


def bi_char_to_integer(vm, args_w):
    from repro.pylang.builtins import bi_ord

    return bi_ord(vm, args_w)


def bi_integer_to_char(vm, args_w):
    from repro.pylang.builtins import bi_chr

    return bi_chr(vm, args_w)


def bi_arithmetic_shift(vm, args_w):
    llops = vm.llops
    value = args_w[0]
    amount = vm.int_val(args_w[1])
    if llops.is_true(llops.int_ge(amount, 0)):
        return vm.binary_lshift(value, args_w[1])
    return vm.wrap_int(llops.int_rshift(
        vm.int_val(value), llops.int_neg(amount)))


RKT_BUILTINS = {
    "display": bi_display,
    "newline": bi_newline,
    "cons": bi_cons, "car": bi_car, "cdr": bi_cdr,
    "set-car!": bi_set_car, "set-cdr!": bi_set_cdr,
    "null?": bi_null_p, "pair?": bi_pair_p,
    "list": bi_list, "length": bi_length, "reverse": bi_reverse,
    "make-vector": bi_make_vector, "vector": bi_vector,
    "vector-ref": bi_vector_ref, "vector-set!": bi_vector_set,
    "vector-length": bi_vector_length,
    "quotient": bi_quotient, "remainder": bi_remainder,
    "sqrt": bi_sqrt, "abs": bi_abs, "min": bi_min, "max": bi_max,
    "floor": bi_floor, "truncate": bi_truncate,
    "zero?": bi_zero_p, "even?": bi_even_p, "odd?": bi_odd_p,
    "number->string": bi_number_to_string,
    "string-length": bi_string_length, "string-ref": bi_string_ref,
    "substring": bi_substring, "string-append": bi_string_append,
    "exact->inexact": bi_exact_to_inexact,
    "inexact->exact": bi_inexact_to_exact,
    "char->integer": bi_char_to_integer,
    "integer->char": bi_integer_to_char,
    "arithmetic-shift": bi_arithmetic_shift,
}


class RktVM(PyVM):
    """TinyRkt on the meta-tracing framework (the Pycket analogue)."""

    # Scheme loops are tail calls: the tier also profiles frame entries
    # (see rktlang/tier1.py).
    _tier1_spec = RKT_TIER

    def run_source(self, source, module_name="<rkt>"):
        code = compile_rkt(source, module_name)
        return self.run_module_code(code, module_name)

    def builtin_global(self, name):
        w_builtin = self._builtin_cache.get(name)
        if w_builtin is None:
            fn = RKT_BUILTINS.get(name)
            if fn is None:
                return None
            w_builtin = W_Builtin(name, fn)
            w_builtin._addr = self.ctx.gc.allocate_static(W_Builtin._size_)
            self._builtin_cache[name] = w_builtin
        return w_builtin

    def rkt_str_of(self, w_obj):
        """Scheme `display` conventions (floats keep repr; ints plain)."""
        llops = self.llops
        cls = llops.cls_of(w_obj)
        if cls is W_None:
            return "()"
        from repro.pylang.objects import W_Bool

        if cls is W_Bool:
            return "#t" if self.is_true_w(w_obj) else "#f"
        return self.str_of(w_obj)

    def stdout(self):
        return "".join(self.output)


def run_rkt(source, config, predictor="gshare"):
    """Convenience: run TinyRkt source on a fresh framework VM."""
    ctx = VMContext(config, predictor=predictor)
    vm = RktVM(ctx)
    vm.run_source(source)
    return vm, ctx


class RacketRef(CpRef):
    """The 'Racket' baseline: a mature custom-JIT VM cost model.

    Runs the same bytecode with host values; per-operation costs are a
    fraction of CPython's (Racket's JIT compiles to native code, so its
    per-operation work is far lower than a pure interpreter's, though
    above our meta-tracing JIT's specialized traces for dynamic code).
    """

    mix_scale = 0.34
    #: Extra discount on float-arithmetic mixes: Racket's JIT compiles
    #: flonum loops to near-native code.
    fpu_scale = 0.45

    def _xm(self, mix):
        from repro.isa import insns as _insns

        if any(klass == _insns.FPU for klass, _ in mix):
            carry = self._mix_carry
            scaled = []
            factor = self.mix_scale * self.fpu_scale
            for klass, count in mix:
                exact = count * factor + carry.get(klass, 0.0)
                whole = int(exact)
                carry[klass] = exact - whole
                if whole:
                    scaled.append((klass, whole))
            if scaled:
                self.machine.exec_mix(tuple(scaled))
            return
        CpRef._xm(self, mix)

    def run_source(self, source, module_name="<rkt>"):
        code = compile_rkt(source, module_name)
        return self.run_module_code(code)

    def stdout(self):
        return "".join(self.output)

    def _rkt_str(self, value):
        if value is None:
            return "()"
        if value is True:
            return "#t"
        if value is False:
            return "#f"
        return self._str(value)

    def _make_builtins(self):
        base = CpRef._make_builtins(self)

        def simple(fn):
            def wrapped(vm, call_args):
                vm._xm(_REF_CALL_MIX)
                return fn(*call_args)
            return wrapped

        def display(vm, call_args):
            vm.output.append(vm._rkt_str(call_args[0]))
            return None

        def newline(vm, call_args):
            vm.output.append("\n")
            return None

        def scheme_list(vm, call_args):
            result = None
            for item in reversed(call_args):
                result = [item, result]
            return result

        def length(vm, call_args):
            node = call_args[0]
            count = 0
            while node is not None:
                vm._xm(_REF_CALL_MIX)
                count += 1
                node = node[1]
            return count

        def reverse(vm, call_args):
            node = call_args[0]
            result = None
            while node is not None:
                vm._xm(_REF_CALL_MIX)
                result = [node[0], result]
                node = node[1]
            return result

        def quotient(vm, call_args):
            a, b = call_args
            vm._xm(vm._num_mix(a, b, quadratic=True))
            q = abs(a) // abs(b)
            return q if (a >= 0) == (b >= 0) else -q

        def remainder(vm, call_args):
            a, b = call_args
            vm._xm(vm._num_mix(a, b, quadratic=True))
            return a - quotient(vm, call_args) * b

        def arithmetic_shift(vm, call_args):
            value, amount = call_args
            return value << amount if amount >= 0 else value >> -amount

        base.update({
            "display": display,
            "newline": newline,
            "cons": simple(lambda a, b: [a, b]),
            "car": simple(lambda p: p[0]),
            "cdr": simple(lambda p: p[1]),
            "set-car!": simple(lambda p, v: p.__setitem__(0, v)),
            "set-cdr!": simple(lambda p, v: p.__setitem__(1, v)),
            "null?": simple(lambda v: v is None),
            "pair?": simple(lambda v: isinstance(v, list)),
            "list": scheme_list,
            "length": length,
            "reverse": reverse,
            "make-vector": simple(
                lambda n, *fill: [fill[0] if fill else 0] * n),
            "vector": simple(lambda *items: list(items)),
            "vector-ref": simple(lambda v, i: v[i]),
            "vector-set!": simple(
                lambda v, i, x: v.__setitem__(i, x)),
            "vector-length": simple(len),
            "quotient": quotient,
            "remainder": remainder,
            "sqrt": simple(lambda v: float(v) ** 0.5),
            "floor": simple(_ref_floor),
            "truncate": simple(int),
            "zero?": simple(lambda v: v == 0),
            "even?": simple(lambda v: v % 2 == 0),
            "odd?": simple(lambda v: v % 2 == 1),
            "number->string": lambda vm, a: vm._str(a[0]),
            "string-length": simple(len),
            "string-ref": simple(lambda s, i: s[i]),
            "substring": simple(lambda s, a, b: s[a:b]),
            "string-append": simple(lambda *parts: "".join(parts)),
            "exact->inexact": simple(float),
            "inexact->exact": simple(int),
            "char->integer": simple(ord),
            "integer->char": simple(chr),
            "arithmetic-shift": arithmetic_shift,
        })
        return base


def _ref_floor(value):
    if isinstance(value, int):
        return value
    import math

    return math.floor(value) * 1.0


from repro.isa import insns  # noqa: E402

_REF_CALL_MIX = insns.mix(alu=3, load=3, store=1)
