# nbody (CLBG): Jovian planet orbital simulation; float arithmetic with
# pow calls (the paper's Table III shows C `pow` at 44.6% of nbody).
N = 8000

PI = 3.14159265358979323
SOLAR_MASS = 4.0 * PI * PI
DAYS_PER_YEAR = 365.24


def make_bodies():
    sun = [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, SOLAR_MASS]
    jupiter = [4.84143144246472090, -1.16032004402742839,
               -0.103622044471123109,
               0.00166007664274403694 * DAYS_PER_YEAR,
               0.00769901118419740425 * DAYS_PER_YEAR,
               -0.0000690460016972063023 * DAYS_PER_YEAR,
               0.000954791938424326609 * SOLAR_MASS]
    saturn = [8.34336671824457987, 4.12479856412430479,
              -0.403523417114321381,
              -0.00276742510726862411 * DAYS_PER_YEAR,
              0.00499852801234917238 * DAYS_PER_YEAR,
              0.0000230417297573763929 * DAYS_PER_YEAR,
              0.000285885980666130812 * SOLAR_MASS]
    uranus = [12.8943695621391310, -15.1111514016986312,
              -0.223307578892655734,
              0.00296460137564761618 * DAYS_PER_YEAR,
              0.00237847173959480950 * DAYS_PER_YEAR,
              -0.0000296589568540237556 * DAYS_PER_YEAR,
              0.0000436624404335156298 * SOLAR_MASS]
    neptune = [15.3796971148509165, -25.9193146099879641,
               0.179258772950371181,
               0.00268067772490389322 * DAYS_PER_YEAR,
               0.00162824170038242295 * DAYS_PER_YEAR,
               -0.0000951592254519715870 * DAYS_PER_YEAR,
               0.0000515138902046611451 * SOLAR_MASS]
    return [sun, jupiter, saturn, uranus, neptune]


def offset_momentum(bodies):
    px = 0.0
    py = 0.0
    pz = 0.0
    for b in bodies:
        px += b[3] * b[6]
        py += b[4] * b[6]
        pz += b[5] * b[6]
    sun = bodies[0]
    sun[3] = 0.0 - px / SOLAR_MASS
    sun[4] = 0.0 - py / SOLAR_MASS
    sun[5] = 0.0 - pz / SOLAR_MASS


def advance(bodies, dt):
    n = len(bodies)
    for i in range(n):
        bi = bodies[i]
        for j in range(i + 1, n):
            bj = bodies[j]
            dx = bi[0] - bj[0]
            dy = bi[1] - bj[1]
            dz = bi[2] - bj[2]
            d2 = dx * dx + dy * dy + dz * dz
            mag = dt / (d2 ** 1.5)
            bim = bi[6] * mag
            bjm = bj[6] * mag
            bi[3] -= dx * bjm
            bi[4] -= dy * bjm
            bi[5] -= dz * bjm
            bj[3] += dx * bim
            bj[4] += dy * bim
            bj[5] += dz * bim
    for i in range(n):
        b = bodies[i]
        b[0] += dt * b[3]
        b[1] += dt * b[4]
        b[2] += dt * b[5]


def energy(bodies):
    e = 0.0
    n = len(bodies)
    for i in range(n):
        bi = bodies[i]
        e += 0.5 * bi[6] * (bi[3] * bi[3] + bi[4] * bi[4] + bi[5] * bi[5])
        for j in range(i + 1, n):
            bj = bodies[j]
            dx = bi[0] - bj[0]
            dy = bi[1] - bj[1]
            dz = bi[2] - bj[2]
            distance = (dx * dx + dy * dy + dz * dz) ** 0.5
            e -= (bi[6] * bj[6]) / distance
    return e


def run_nbody(steps):
    bodies = make_bodies()
    offset_momentum(bodies)
    print("nbody start %.9f" % energy(bodies))
    for i in range(steps):
        advance(bodies, 0.01)
    print("nbody end %.9f" % energy(bodies))


run_nbody(N)
